module symcluster

go 1.22
