// Package multipartite generalises the bipartite degree-discounted
// co-clustering to k-partite directed graphs — completing the paper's
// §6 future-work item ("Extending our approaches to bi-partite and
// multi-partite graphs").
//
// A multipartite graph has disjoint node layers and directed relations
// between layers (users→items, items→tags, users→tags, …). A layer's
// nodes are similar when they share links through ANY relation
// touching the layer, so the layer similarity is the sum of the
// degree-discounted self-products over all incident relations:
//
//	Sim_L = Σ_{r: From(r)=L} D_r^{-α} B_r D_c^{-β} B_rᵀ D_r^{-α}
//	      + Σ_{r: To(r)=L}   D_c^{-β} B_rᵀ D_r^{-α} B_r D_c^{-β}
//
// Each layer is then clustered independently with MLR-MCL.
package multipartite

import (
	"fmt"
	"math"

	"symcluster/internal/matrix"
	"symcluster/internal/mcl"
)

// Relation is one directed relation between two layers: B[i][j] > 0
// means node i of layer From links to node j of layer To.
type Relation struct {
	From, To int
	B        *matrix.CSR
}

// Graph is a k-partite directed graph.
type Graph struct {
	// LayerSizes gives the node count of each layer.
	LayerSizes []int
	// Relations lists the inter-layer link matrices.
	Relations []Relation
}

// Validate checks layer indices and matrix dimensions.
func (g *Graph) Validate() error {
	if len(g.LayerSizes) == 0 {
		return fmt.Errorf("multipartite: no layers")
	}
	for i, n := range g.LayerSizes {
		if n <= 0 {
			return fmt.Errorf("multipartite: layer %d has size %d", i, n)
		}
	}
	for i, r := range g.Relations {
		if r.From < 0 || r.From >= len(g.LayerSizes) || r.To < 0 || r.To >= len(g.LayerSizes) {
			return fmt.Errorf("multipartite: relation %d links layers %d→%d outside [0,%d)", i, r.From, r.To, len(g.LayerSizes))
		}
		if r.From == r.To {
			return fmt.Errorf("multipartite: relation %d is intra-layer; layers must be independent sets", i)
		}
		if r.B == nil {
			return fmt.Errorf("multipartite: relation %d has nil matrix", i)
		}
		if r.B.Rows != g.LayerSizes[r.From] || r.B.Cols != g.LayerSizes[r.To] {
			return fmt.Errorf("multipartite: relation %d is %dx%d, want %dx%d",
				i, r.B.Rows, r.B.Cols, g.LayerSizes[r.From], g.LayerSizes[r.To])
		}
	}
	return nil
}

// Options configures LayerSimilarity and Cluster.
type Options struct {
	// Alpha discounts the degree of the nodes being compared.
	// Defaults to 0.5.
	Alpha float64
	// Beta discounts the degree of the shared neighbours.
	// Defaults to 0.5.
	Beta float64
	// Threshold prunes similarity entries below it.
	Threshold float64
	// Inflation is the MLR-MCL inflation per layer. Defaults to 2.
	Inflation float64
	// Seed drives clustering randomness.
	Seed int64
}

func (o *Options) fill() {
	if o.Alpha == 0 {
		o.Alpha = 0.5
	}
	if o.Beta == 0 {
		o.Beta = 0.5
	}
	if o.Inflation <= 1 {
		o.Inflation = 2
	}
}

// LayerSimilarity returns the degree-discounted similarity between the
// nodes of one layer, aggregated over every relation incident to it.
func LayerSimilarity(g *Graph, layer int, opt Options) (*matrix.CSR, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if layer < 0 || layer >= len(g.LayerSizes) {
		return nil, fmt.Errorf("multipartite: layer %d outside [0,%d)", layer, len(g.LayerSizes))
	}
	opt.fill()
	n := g.LayerSizes[layer]
	sim := matrix.Zero(n, n)
	for _, r := range g.Relations {
		// The discount factors fold into the fused self-product, so the
		// scaled relation matrix is never materialised; for incoming
		// relations the one explicit transpose doubles as the kernel's
		// transpose operand, since (Bᵀ)ᵀ is B again bit-exactly.
		var term *matrix.CSR
		switch {
		case r.From == layer:
			rs := invPow(r.B.RowCounts(), opt.Alpha)
			cs := invPow(r.B.ColCounts(), opt.Beta/2)
			term = matrix.MulXXTScaledPruned(r.B, r.B.Transpose(), rs, cs, opt.Threshold, 1)
		case r.To == layer:
			rs := invPow(r.B.ColCounts(), opt.Beta)
			cs := invPow(r.B.RowCounts(), opt.Alpha/2)
			term = matrix.MulXXTScaledPruned(r.B.Transpose(), r.B, rs, cs, opt.Threshold, 1)
		default:
			continue
		}
		sim = matrix.Add(sim, term, 1, 1)
	}
	return sim.DropDiagonal(), nil
}

func invPow(deg []int, exp float64) []float64 {
	f := make([]float64, len(deg))
	for i, d := range deg {
		if d <= 0 {
			f[i] = 1
			continue
		}
		f[i] = math.Pow(float64(d), -exp)
	}
	return f
}

// Result holds per-layer clusterings.
type Result struct {
	// Assign[l] maps layer l's nodes to cluster ids in [0, K[l]).
	Assign [][]int
	// K[l] counts layer l's clusters.
	K []int
}

// Cluster clusters every layer of the multipartite graph.
func Cluster(g *Graph, opt Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	opt.fill()
	res := &Result{
		Assign: make([][]int, len(g.LayerSizes)),
		K:      make([]int, len(g.LayerSizes)),
	}
	for l := range g.LayerSizes {
		sim, err := LayerSimilarity(g, l, opt)
		if err != nil {
			return nil, err
		}
		r, err := mcl.Cluster(sim, mcl.Options{Inflation: opt.Inflation, Seed: opt.Seed})
		if err != nil {
			return nil, fmt.Errorf("multipartite: clustering layer %d: %w", l, err)
		}
		res.Assign[l] = r.Assign
		res.K[l] = r.K
	}
	return res, nil
}
