package multipartite

import (
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

// tripartite builds users→items→tags with k aligned planted
// communities across all three layers.
func tripartite(rng *rand.Rand, k, usersPer, itemsPer, tagsPer int) (*Graph, [][]int) {
	users, items, tags := k*usersPer, k*itemsPer, k*tagsPer
	truth := [][]int{make([]int, users), make([]int, items), make([]int, tags)}
	ui := matrix.NewBuilder(users, items)
	it := matrix.NewBuilder(items, tags)
	for u := 0; u < users; u++ {
		truth[0][u] = u / usersPer
		for i := 0; i < items; i++ {
			p := 0.02
			if u/usersPer == i/itemsPer {
				p = 0.4
			}
			if rng.Float64() < p {
				ui.Add(u, i, 1)
			}
		}
	}
	for i := 0; i < items; i++ {
		truth[1][i] = i / itemsPer
		for t := 0; t < tags; t++ {
			p := 0.02
			if i/itemsPer == t/tagsPer {
				p = 0.4
			}
			if rng.Float64() < p {
				it.Add(i, t, 1)
			}
		}
	}
	for t := 0; t < tags; t++ {
		truth[2][t] = t / tagsPer
	}
	g := &Graph{
		LayerSizes: []int{users, items, tags},
		Relations: []Relation{
			{From: 0, To: 1, B: ui.Build()},
			{From: 1, To: 2, B: it.Build()},
		},
	}
	return g, truth
}

func purity(assign, truth []int) float64 {
	groups := map[int]map[int]int{}
	for i, tc := range truth {
		if groups[tc] == nil {
			groups[tc] = map[int]int{}
		}
		groups[tc][assign[i]]++
	}
	var sum, total float64
	for _, counts := range groups {
		best, n := 0, 0
		for _, c := range counts {
			if c > best {
				best = c
			}
			n += c
		}
		sum += float64(best)
		total += float64(n)
	}
	return sum / total
}

func TestValidate(t *testing.T) {
	g := &Graph{}
	if err := g.Validate(); err == nil {
		t.Fatal("accepted empty graph")
	}
	g = &Graph{LayerSizes: []int{2, 3}, Relations: []Relation{{From: 0, To: 0, B: matrix.Zero(2, 2)}}}
	if err := g.Validate(); err == nil {
		t.Fatal("accepted intra-layer relation")
	}
	g = &Graph{LayerSizes: []int{2, 3}, Relations: []Relation{{From: 0, To: 1, B: matrix.Zero(3, 2)}}}
	if err := g.Validate(); err == nil {
		t.Fatal("accepted dimension mismatch")
	}
	g = &Graph{LayerSizes: []int{2, 3}, Relations: []Relation{{From: 0, To: 5, B: matrix.Zero(2, 3)}}}
	if err := g.Validate(); err == nil {
		t.Fatal("accepted out-of-range layer")
	}
	g = &Graph{LayerSizes: []int{2, 3}, Relations: []Relation{{From: 0, To: 1, B: matrix.Zero(2, 3)}}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLayerSimilaritySymmetricAllLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, _ := tripartite(rng, 3, 15, 10, 8)
	for l := 0; l < 3; l++ {
		sim, err := LayerSimilarity(g, l, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sim.Rows != g.LayerSizes[l] {
			t.Fatalf("layer %d similarity dims %d", l, sim.Rows)
		}
		if !sim.IsSymmetric(1e-9) {
			t.Fatalf("layer %d similarity not symmetric", l)
		}
	}
}

func TestMiddleLayerAggregatesBothSides(t *testing.T) {
	// The items layer is touched by two relations; its similarity must
	// include contributions from both (strictly more mass than either
	// alone).
	rng := rand.New(rand.NewSource(2))
	g, _ := tripartite(rng, 2, 15, 12, 10)
	both, err := LayerSimilarity(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gOnlyUI := &Graph{LayerSizes: g.LayerSizes, Relations: g.Relations[:1]}
	onlyUI, err := LayerSimilarity(gOnlyUI, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sumBoth, sumUI float64
	for _, v := range both.Val {
		sumBoth += v
	}
	for _, v := range onlyUI.Val {
		sumUI += v
	}
	if sumBoth <= sumUI {
		t.Fatalf("aggregate %v not above single-relation %v", sumBoth, sumUI)
	}
}

func TestClusterRecoversAllLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, truth := tripartite(rng, 3, 20, 15, 12)
	res, err := Cluster(g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 3; l++ {
		if p := purity(res.Assign[l], truth[l]); p < 0.85 {
			t.Fatalf("layer %d purity %v", l, p)
		}
	}
}

func TestLayerSimilarityErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, _ := tripartite(rng, 2, 5, 5, 5)
	if _, err := LayerSimilarity(g, 7, Options{}); err == nil {
		t.Fatal("accepted out-of-range layer")
	}
	if _, err := LayerSimilarity(g, -1, Options{}); err == nil {
		t.Fatal("accepted negative layer")
	}
	bad := &Graph{LayerSizes: []int{2}, Relations: []Relation{{From: 0, To: 0, B: matrix.Zero(2, 2)}}}
	if _, err := LayerSimilarity(bad, 0, Options{}); err == nil {
		t.Fatal("accepted invalid graph")
	}
}

func TestClusterErrors(t *testing.T) {
	bad := &Graph{LayerSizes: []int{0}}
	if _, err := Cluster(bad, Options{}); err == nil {
		t.Fatal("accepted invalid graph")
	}
	// A layer with no incident relations clusters into singletons.
	g := &Graph{
		LayerSizes: []int{3, 2, 4},
		Relations:  []Relation{{From: 0, To: 1, B: matrix.Zero(3, 2)}},
	}
	res, err := Cluster(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K[2] != 4 {
		t.Fatalf("isolated layer K = %d, want 4 singletons", res.K[2])
	}
}
