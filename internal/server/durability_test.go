package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	symcluster "symcluster"
	"symcluster/internal/faultinject"
	"symcluster/internal/jobstore"
)

// blockEdgeList generates a reproducible directed block graph (blocks
// dense inside, sparse between) as edge-list text. MCL takes ~30
// iterations on 4×30 nodes, long enough for preemption and crash tests
// to interrupt a run mid-flight (figure1 converges after one iteration
// and is useless for that).
func blockEdgeList(blocks, size int, seed uint64) string {
	// xorshift so the fixture is reproducible without math/rand.
	x := seed
	next := func() uint64 { x ^= x << 13; x ^= x >> 7; x ^= x << 17; return x }
	var b strings.Builder
	n := blocks * size
	for i := 0; i < n; i++ {
		bi := i / size
		for d := 0; d < 6; d++ {
			var j int
			if d < 4 { // intra-block
				j = bi*size + int(next()%uint64(size))
			} else { // sparse inter-block
				j = int(next() % uint64(n))
			}
			if j != i {
				fmt.Fprintf(&b, "%d %d\n", i, j)
			}
		}
	}
	return b.String()
}

// durableServer builds a Server journaling to dir. The caller owns the
// lifecycle (Drain + Close) — unlike newTestServer, no cleanup is
// registered, because restart tests need to stop and reopen the same
// data dir mid-test.
func durableServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.DataDir = dir
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts
}

func stopServer(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// postCluster issues POST /v1/cluster with an optional Idempotency-Key
// and returns the response (caller closes the body).
func postCluster(t *testing.T, url string, req ClusterRequest, idemKey string) *http.Response {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/v1/cluster", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		hr.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJobRef(t *testing.T, resp *http.Response) JobRef {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ref JobRef
	if err := json.NewDecoder(resp.Body).Decode(&ref); err != nil {
		t.Fatal(err)
	}
	return ref
}

// waitJobState polls until the job reaches want or the deadline hits.
func waitJobState(t *testing.T, s *Server, id string, want JobState) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := s.jobs.Snapshot(id); ok && j.State == want {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	j, _ := s.jobs.Snapshot(id)
	t.Fatalf("job %s stuck in %q, want %q", id, j.State, want)
	return Job{}
}

// Concurrent duplicate submissions under one Idempotency-Key must all
// resolve to the same job: the store creates exactly one record however
// the races land.
func TestIdempotencyKeyConcurrent(t *testing.T) {
	s, ts := durableServer(t, t.TempDir(), Config{Workers: 2})
	defer stopServer(t, s, ts)
	info := s.RegisterGraph(mustFigure1Graph(t))
	req := ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 1, Async: true}

	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = decodeJobRef(t, postCluster(t, ts.URL, req, "retry-me")).JobID
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("duplicate key produced two jobs: %q and %q", ids[0], ids[i])
		}
	}
	// A different key is a different job.
	other := decodeJobRef(t, postCluster(t, ts.URL, req, "someone-else")).JobID
	if other == ids[0] {
		t.Fatalf("distinct keys shared job %q", other)
	}
	waitJobState(t, s, ids[0], JobDone)
	waitJobState(t, s, other, JobDone)
}

// An Idempotency-Key on a synchronous request is a client error: the
// result is returned inline and there is no job to dedup against.
func TestIdempotencyKeySyncRejected(t *testing.T) {
	s, ts := durableServer(t, t.TempDir(), Config{Workers: 1})
	defer stopServer(t, s, ts)
	info := s.RegisterGraph(mustFigure1Graph(t))
	resp := postCluster(t, ts.URL, ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl"}, "sync-key")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// A duplicate submission after a restart still dedups: the key rides
// the WAL, so the replayed store recognizes it and returns the original
// (already finished) job.
func TestIdempotencyKeyAfterRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := durableServer(t, dir, Config{Workers: 1})
	info := s1.RegisterGraph(mustFigure1Graph(t))
	req := ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 3, Async: true}
	ref := decodeJobRef(t, postCluster(t, ts1.URL, req, "once-only"))
	first := waitJobState(t, s1, ref.JobID, JobDone)
	stopServer(t, s1, ts1)

	s2, ts2 := durableServer(t, dir, Config{Workers: 1})
	defer stopServer(t, s2, ts2)
	ref2 := decodeJobRef(t, postCluster(t, ts2.URL, req, "once-only"))
	if ref2.JobID != ref.JobID {
		t.Fatalf("replayed duplicate created job %q, want %q", ref2.JobID, ref.JobID)
	}
	// The replayed job still carries its finished result.
	j, ok := s2.jobs.Snapshot(ref.JobID)
	if !ok || j.State != JobDone || j.Result == nil {
		t.Fatalf("replayed job = %+v, want done with result", j)
	}
	if len(j.Result.Assign) != len(first.Result.Assign) {
		t.Fatalf("replayed result lost assignments")
	}
}

// A drain that cannot finish in time preempts the running job: its
// kernel checkpoints on the way out, the WAL marks it pending again,
// and the next boot resumes and completes it with the same answer an
// uninterrupted run gives.
func TestDrainPreemptsAndRequeues(t *testing.T) {
	dir := t.TempDir()
	faultinject.Set("mcl.iterate", faultinject.Fault{Mode: faultinject.Delay, Delay: 25 * time.Millisecond})
	defer faultinject.Reset()

	s1, ts1 := durableServer(t, dir, Config{Workers: 1, CheckpointIters: 1, PreemptGrace: 10 * time.Second})
	g, err := symcluster.ReadEdgeList(strings.NewReader(blockEdgeList(4, 30, 7)))
	if err != nil {
		t.Fatal(err)
	}
	info := s1.RegisterGraph(g)
	req := ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 5, Async: true}
	ref := decodeJobRef(t, postCluster(t, ts1.URL, req, ""))
	waitJobState(t, s1, ref.JobID, JobRunning)

	// Give the kernel a couple of iterations so a checkpoint lands.
	deadline := time.Now().Add(10 * time.Second)
	for s1.jobs.CheckpointSaves() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s1.jobs.CheckpointSaves() == 0 {
		t.Fatal("no checkpoint saved while job was running")
	}

	ts1.Close()
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s1.Drain(drainCtx); err != nil {
		t.Fatalf("drain with preemption: %v", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// The WAL must show the job pending again, checkpoint attached.
	st, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := st.Lookup(ref.JobID)
	if !ok {
		t.Fatalf("job %s missing from reopened store", ref.JobID)
	}
	if rec.State != jobstore.Pending {
		t.Fatalf("preempted job state = %q, want pending", rec.State)
	}
	if ck, ok := rec.Checkpoints["mcl"]; !ok || ck.Iter == 0 {
		t.Fatalf("preempted job has no mcl checkpoint (have %v)", rec.Checkpoints)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart without the delay fault: the job resumes and finishes.
	faultinject.Reset()
	s2, ts2 := durableServer(t, dir, Config{Workers: 1, CheckpointIters: 1})
	defer stopServer(t, s2, ts2)
	done := waitJobState(t, s2, ref.JobID, JobDone)

	// Same answer as an uninterrupted run with the same seed.
	resp := postCluster(t, ts2.URL, ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 5}, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("baseline run: status %d: %s", resp.StatusCode, body)
	}
	var base ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&base); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(done.Result.Assign) != fmt.Sprint(base.Assign) {
		t.Fatalf("resumed assignments %v != uninterrupted %v", done.Result.Assign, base.Assign)
	}
}

// Once the summed estimates of queued jobs pass the byte watermark, new
// clustering requests are shed with 429 + Retry-After; the first job on
// an idle queue is always admitted regardless of its size.
func TestShed429(t *testing.T) {
	faultinject.Set("pool.task", faultinject.Fault{Mode: faultinject.Delay, Delay: 300 * time.Millisecond})
	defer faultinject.Reset()

	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16, MaxQueueBytes: 1})
	info := s.RegisterGraph(mustFigure1Graph(t))
	req := ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 1, Async: true}

	// Job 1 is dequeued by the idle worker (and stalls in the delay
	// fault); wait for that so job 2 lands in the queue, not a worker.
	decodeJobRef(t, postCluster(t, ts.URL, req, ""))
	deadline := time.Now().Add(10 * time.Second)
	for s.pool.Busy() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if s.pool.Busy() == 0 {
		t.Fatal("worker never picked up job 1")
	}

	// Job 2 queues: the watermark check sees 0 queued bytes, admits it,
	// and its estimate (far over 1 byte) arms the gate.
	decodeJobRef(t, postCluster(t, ts.URL, req, ""))

	// Job 3 must shed.
	resp := postCluster(t, ts.URL, req, "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "symclusterd_shed_total 1") {
		t.Fatalf("metrics missing shed count:\n%s", grepLines(string(mbody), "shed"))
	}
}

// grepLines returns the lines of s containing substr, for terse
// failure messages against the full metrics exposition.
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
