package server

import (
	"fmt"
	"testing"

	"symcluster/internal/graph"
	"symcluster/internal/matrix"
)

// pathGraph builds an undirected n-node path, a convenient way to get
// symmetric graphs of controllable byte size.
func pathGraph(t *testing.T, n int) *graph.Undirected {
	t.Helper()
	b := matrix.NewBuilder(n, n)
	for i := 0; i+1 < n; i++ {
		b.Add(i, i+1, 1)
		b.Add(i+1, i, 1)
	}
	u, err := graph.NewUndirected(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func key(i int) CacheKey {
	return CacheKey{Graph: uint64(i), Method: "dd", Alpha: 0.5, Beta: 0.5}
}

func TestCacheEvictsLRUUnderByteBudget(t *testing.T) {
	u := pathGraph(t, 16)
	per := GraphBytes(u)
	if per <= 0 {
		t.Fatalf("GraphBytes = %d", per)
	}
	c := NewCache(2*per + per/2) // room for exactly two graphs

	c.Put(key(1), u)
	c.Put(key(2), u)
	if c.Len() != 2 || c.Bytes() != 2*per {
		t.Fatalf("len=%d bytes=%d", c.Len(), c.Bytes())
	}

	// Touch 1 so 2 becomes least recently used, then overflow.
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("key 1 missing")
	}
	c.Put(key(3), u)
	if c.Len() != 2 {
		t.Fatalf("len = %d after eviction", c.Len())
	}
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	for _, k := range []int{1, 3} {
		if _, ok := c.Get(key(k)); !ok {
			t.Fatalf("entry %d evicted wrongly", k)
		}
	}
	if _, _, evictions := c.Stats(); evictions != 1 {
		t.Fatalf("evictions = %d", evictions)
	}
}

func TestCacheSkipsOversizedEntries(t *testing.T) {
	small, big := pathGraph(t, 4), pathGraph(t, 512)
	c := NewCache(GraphBytes(small) * 2)
	c.Put(key(1), small)
	c.Put(key(2), big) // larger than the whole budget: not stored
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("oversized graph was cached")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("small graph evicted by rejected insert")
	}
}

func TestCacheRefreshSameKey(t *testing.T) {
	a, b := pathGraph(t, 8), pathGraph(t, 10)
	c := NewCache(10 * GraphBytes(b))
	c.Put(key(1), a)
	c.Put(key(1), b)
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Bytes() != GraphBytes(b) {
		t.Fatalf("bytes = %d, want %d", c.Bytes(), GraphBytes(b))
	}
	got, ok := c.Get(key(1))
	if !ok || got.N() != 10 {
		t.Fatalf("refreshed entry = %v, %v", got, ok)
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	u := pathGraph(t, 4)
	c := NewCache(1 << 20)
	c.Get(key(1))
	c.Put(key(1), u)
	c.Get(key(1))
	c.Get(key(2))
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestCacheKeyDistinguishesParameters(t *testing.T) {
	u := pathGraph(t, 4)
	c := NewCache(1 << 20)
	base := CacheKey{Graph: 7, Method: "dd", Alpha: 0.5, Beta: 0.5, Threshold: 0}
	c.Put(base, u)
	variants := []CacheKey{
		{Graph: 8, Method: "dd", Alpha: 0.5, Beta: 0.5},
		{Graph: 7, Method: "bib", Alpha: 0.5, Beta: 0.5},
		{Graph: 7, Method: "dd", Alpha: 0.3, Beta: 0.5},
		{Graph: 7, Method: "dd", Alpha: 0.5, Beta: 0.3},
		{Graph: 7, Method: "dd", Alpha: 0.5, Beta: 0.5, Threshold: 0.01},
	}
	for i, k := range variants {
		if _, ok := c.Get(k); ok {
			t.Errorf("variant %d (%+v) hit the base entry", i, k)
		}
	}
	if _, ok := c.Get(base); !ok {
		t.Fatal("base key missing")
	}
}

func TestGraphBytesGrowsWithGraph(t *testing.T) {
	sizes := []int{4, 64, 1024}
	var prev int64
	for _, n := range sizes {
		b := GraphBytes(pathGraph(t, n))
		if b <= prev {
			t.Fatalf("GraphBytes(%d) = %d, not above %d", n, b, prev)
		}
		prev = b
	}
	// Sanity: the estimate tracks the CSR arrays, so a 1024-node path
	// (2046 entries) should be within a small factor of 2046*(8+4)+1025*8.
	if prev < 30000 || prev > 40000 {
		t.Fatalf("GraphBytes(1024-path) = %d, outside plausible range", prev)
	}
	_ = fmt.Sprint(prev)
}
