package server

import (
	"sync"

	"symcluster/internal/jobstore"
)

// jobSink adapts the JobStore's WAL to the checkpoint.Sink the kernels
// consume. One sink serves one job's context.
//
// Restore bookkeeping: a job may invoke the same kernel more than once
// (e.g. a random-walk symmetrization whose product misses the cache
// after a restart, then MCL). Checkpoints are journaled with the
// invocation ordinal as Seq, and a replayed snapshot is only served to
// the invocation whose ordinal matches — restoring the third solve's
// state into a fresh first solve would silently corrupt the run.
type jobSink struct {
	jobs     *JobStore
	jobID    string
	interval int

	mu      sync.Mutex
	calls   map[string]int // kernel → Restore invocations seen this process
	initial map[string]jobstore.Checkpoint
}

func newJobSink(jobs *JobStore, jobID string, interval int, initial map[string]jobstore.Checkpoint) *jobSink {
	return &jobSink{
		jobs:     jobs,
		jobID:    jobID,
		interval: interval,
		calls:    make(map[string]int),
		initial:  initial,
	}
}

func (s *jobSink) Interval() int { return s.interval }

func (s *jobSink) Restore(kernel string) (int, []byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls[kernel]++
	ck, ok := s.initial[kernel]
	if !ok || ck.Seq != s.calls[kernel] {
		return 0, nil, false
	}
	return ck.Iter, ck.Blob, true
}

func (s *jobSink) Save(kernel string, iter int, blob []byte) error {
	s.mu.Lock()
	seq := s.calls[kernel]
	s.mu.Unlock()
	if seq < 1 {
		// A kernel always calls Restore before its first Save; guard
		// anyway so a journaled Seq of 0 can never match spuriously.
		seq = 1
	}
	return s.jobs.SaveCheckpoint(s.jobID, kernel, jobstore.Checkpoint{
		Seq:  seq,
		Iter: iter,
		Blob: blob,
	})
}
