package server_test

// Two-node failover end-to-end: build the real symclusterd binary,
// boot a two-node cluster on a shared durable root, run a slow
// checkpointing job on whichever node owns the graph, SIGKILL that
// node mid-iteration, and require that the SURVIVOR (a) declares the
// peer down, (b) adopts the dead node's WAL, (c) finishes the job from
// its last checkpoint (resume_iter > 0), and (d) produces exactly the
// assignments an uninterrupted run gives. This is the acceptance gate
// for the multi-node PR; `make cluster` runs it under -race.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"symcluster/internal/server"
)

// startClusterDaemon launches one cluster member and waits for its
// /healthz. Peer-death detection is tuned fast (50ms probes, 2 fails)
// so the failover round-trip stays test-sized.
func startClusterDaemon(t *testing.T, bin, addr, dataDir, peers, faults string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-data-dir", dataDir,
		"-checkpoint-iters", "1",
		"-workers", "1",
		"-log-format", "text", "-log-level", "warn",
		"-peers", peers,
		"-self", addr,
		"-probe-interval", "50ms",
		"-peer-fail-threshold", "2",
		"-peer-recover-threshold", "1",
	)
	cmd.Env = append(os.Environ(), "SYMCLUSTER_FAULTS="+faults)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("cluster daemon never became healthy")
	return nil
}

func TestClusterFailoverResume(t *testing.T) {
	bin := buildSymclusterd(t)
	root := t.TempDir()
	addrA, addrB := freeAddr(t), freeAddr(t)
	peers := "http://" + addrA + ",http://" + addrB

	// Both nodes get the slow kernel: the job runs wherever the graph
	// hashes, and only the run needs slowing.
	faults := "mcl.iterate=delay:50ms"
	dA := startClusterDaemon(t, bin, addrA, root, peers, faults)
	defer func() { dA.Process.Kill(); dA.Wait() }()
	dB := startClusterDaemon(t, bin, addrB, root, peers, faults)
	defer func() { dB.Process.Kill(); dB.Wait() }()

	// Register through A; routing sends the graph to its owner.
	edges := blockEdges()
	resp, err := http.Post("http://"+addrA+"/v1/graphs", "text/plain", strings.NewReader(edges))
	if err != nil {
		t.Fatal(err)
	}
	var ginfo server.GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&ginfo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ginfo.ID == "" {
		t.Fatal("graph registration returned no id")
	}

	// Async submit through A; the qualified job id names the owner.
	req, _ := json.Marshal(server.ClusterRequest{
		GraphID: ginfo.ID, Method: "dd", Algorithm: "mcl", Seed: 5, Async: true,
	})
	resp, err = http.Post("http://"+addrA+"/v1/cluster", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	var ref server.JobRef
	if err := json.NewDecoder(resp.Body).Decode(&ref); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	_, ownerName, ok := strings.Cut(ref.JobID, "@")
	if !ok {
		t.Fatalf("job id %q carries no owner qualifier", ref.JobID)
	}
	var owner, survivor *exec.Cmd
	var ownerAddr, survivorAddr string
	switch ownerName {
	case addrA:
		owner, ownerAddr, survivor, survivorAddr = dA, addrA, dB, addrB
	case addrB:
		owner, ownerAddr, survivor, survivorAddr = dB, addrB, dA, addrA
	default:
		t.Fatalf("job owner %q is neither node", ownerName)
	}
	_ = survivor

	// Let the owner checkpoint at least twice, then SIGKILL it: no
	// drain, no goodbye — failover must come from probes plus the WAL.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := getBody(t, "http://"+ownerAddr+"/metrics")
		if metricValue(body, "symclusterd_checkpoints_total") >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoints observed before kill deadline")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := owner.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	owner.Wait()

	// Poll the SURVIVOR with the dead node's qualified id. While the
	// peer is merely suspect we may see 502/503; once it is declared
	// down the survivor adopts the WAL and the job finishes locally.
	var done server.JobInfo
	deadline = time.Now().Add(60 * time.Second)
	for {
		code, body := getBody(t, "http://"+survivorAddr+"/v1/jobs/"+ref.JobID)
		if code == http.StatusOK {
			if err := json.Unmarshal(body, &done); err != nil {
				t.Fatal(err)
			}
			if done.State == "done" {
				break
			}
			if done.State == "failed" {
				t.Fatalf("adopted job failed: %s", done.Error)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("adopted job never finished (last state %q)", done.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if done.Result == nil || len(done.Result.Assign) == 0 {
		t.Fatal("adopted job finished without assignments")
	}
	// The adopted run got a fresh trace, linked back to the dead node's
	// original trace id (journaled with the start op, so it survived
	// the crash).
	if done.LinkTraceID == "" {
		t.Fatal("adopted job carries no link_trace_id back to the dead run")
	}
	if done.TraceID == "" || done.TraceID == done.LinkTraceID {
		t.Fatalf("adopted trace_id %q must be fresh and distinct from link %q", done.TraceID, done.LinkTraceID)
	}

	// It resumed from the dead node's checkpoint, not from scratch.
	_, trace := getBody(t, "http://"+survivorAddr+"/v1/jobs/"+ref.JobID+"/trace")
	m := regexp.MustCompile(`"resume_iter":\s*(\d+)`).FindSubmatch(trace)
	if m == nil {
		t.Fatalf("trace has no resume_iter attribute:\n%s", trace)
	}
	if iter, _ := strconv.Atoi(string(m[1])); iter == 0 {
		t.Fatalf("resume_iter = 0: the adopted job restarted from scratch\n%s", trace)
	}
	if !bytes.Contains(trace, []byte(`"link_trace_id":"`+done.LinkTraceID+`"`)) {
		t.Fatalf("adopted trace root does not link trace %s:\n%s", done.LinkTraceID, trace)
	}

	// The survivor accounted for the failover.
	_, metrics := getBody(t, "http://"+survivorAddr+"/metrics")
	if metricValue(metrics, "symclusterd_jobs_adopted_total") < 1 {
		t.Fatalf("jobs_adopted_total < 1:\n%s", metrics)
	}
	if !strings.Contains(string(metrics), `symclusterd_peer_unhealthy{peer="`+ownerName+`"} 1`) {
		t.Fatalf("survivor does not flag %s unhealthy:\n%s", ownerName, metrics)
	}

	// Ground truth: the same job, uninterrupted, on the survivor (which
	// now owns the graph). Assignments must match exactly.
	syncReq, _ := json.Marshal(server.ClusterRequest{
		GraphID: ginfo.ID, Method: "dd", Algorithm: "mcl", Seed: 5,
	})
	resp, err = http.Post("http://"+survivorAddr+"/v1/cluster", "application/json", bytes.NewReader(syncReq))
	if err != nil {
		t.Fatal(err)
	}
	var baseResp server.ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&baseResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fmt.Sprint(done.Result.Assign) != fmt.Sprint(baseResp.Assign) {
		t.Fatalf("failover assignments %v != uninterrupted %v", done.Result.Assign, baseResp.Assign)
	}
}
