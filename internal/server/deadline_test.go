package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"symcluster/internal/cluster"
	"symcluster/internal/faultinject"
	"symcluster/internal/leakcheck"
)

// postClusterWithBudget sends POST /v1/cluster with the caller's
// remaining budget stamped on the request, exactly as the CLI's
// -timeout and the cluster client do.
func postClusterWithBudget(t *testing.T, ts *httptest.Server, req ClusterRequest, budget time.Duration) *http.Response {
	t.Helper()
	body := mustMarshal(t, req)
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/cluster", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	cluster.SetDeadlineHeader(hr.Header, budget)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// expositionValue extracts one un-labelled metric's value from an
// exposition body, or -1 when absent.
func expositionValue(body, name string) int64 {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			if v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64); err == nil {
				return v
			}
		}
	}
	return -1
}

func mustMarshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDeadlineExpiredAtSubmitFastFails: a request arriving with its
// budget already spent is answered 504 at the submit gate — no worker,
// no queue slot, no kernel — and counted in
// symclusterd_deadline_rejected_total.
func TestDeadlineExpiredAtSubmitFastFails(t *testing.T) {
	leakcheck.Guard(t)
	_, ts := newTestServer(t, Config{Workers: 1})
	info := registerFigure1(t, ts)

	req := ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: 1}
	resp := postClusterWithBudget(t, ts, req, 0)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if got := expositionValue(scrapeMetrics(t, ts.URL), "symclusterd_deadline_rejected_total"); got != 1 {
		t.Fatalf("symclusterd_deadline_rejected_total = %d, want 1", got)
	}
}

// TestDeadlineTooTightRejected: a live deadline that cannot possibly
// fit the job's estimated runtime is rejected up front with 504 rather
// than queued to die later. DeadlineThroughput is floored to 1 byte/s
// so even Figure 1 "needs" hundreds of seconds against a 200ms budget.
func TestDeadlineTooTightRejected(t *testing.T) {
	leakcheck.Guard(t)
	_, ts := newTestServer(t, Config{Workers: 1, DeadlineThroughput: 1})
	info := registerFigure1(t, ts)

	req := ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: 1}
	resp := postClusterWithBudget(t, ts, req, 200*time.Millisecond)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "deadline too tight") {
		t.Fatalf("error body %q does not explain the rejection", body)
	}
	if got := expositionValue(scrapeMetrics(t, ts.URL), "symclusterd_deadline_rejected_total"); got != 1 {
		t.Fatalf("symclusterd_deadline_rejected_total = %d, want 1", got)
	}

	// Control: at the default (optimistic) throughput the same budget
	// arithmetic fits easily, so a generously-budgeted request runs.
	_, ts2 := newTestServer(t, Config{Workers: 1})
	info2 := registerFigure1(t, ts2)
	req.GraphID = info2.ID
	ok := postClusterWithBudget(t, ts2, req, 30*time.Second)
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("status at default throughput = %d, want 200", ok.StatusCode)
	}
}

// TestDeadlineQueuedJobDroppedWithoutKernel is the acceptance
// scenario: a queued job whose deadline expires while it waits is
// answered 504, counted in symclusterd_deadline_rejected_total, and its
// kernel never starts — the worker drops the task at dequeue, so the
// run leaves no symmetrize/cluster stage sample (the proxy for "no
// kernel span in its trace": spans and stage samples are recorded by
// the same executed stages). The worker is released and serves the
// next request (the S3 guard: expired jobs must not pin workers).
func TestDeadlineQueuedJobDroppedWithoutKernel(t *testing.T) {
	leakcheck.Guard(t)
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{Workers: 1})
	info := registerFigure1(t, ts)

	// Occupy the single worker: the first task sleeps 1s before running
	// (Times: 1 — only job A hits the delay).
	faultinject.Set("pool.task", faultinject.Fault{Mode: faultinject.Delay, Delay: time.Second, Times: 1})
	jobA := ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: 1, Async: true}
	resp := postJSON(t, ts.URL+"/v1/cluster", jobA)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job A status = %d", resp.StatusCode)
	}
	ref := decode[JobRef](t, resp)

	// Job B queues behind A with a 300ms budget and dies waiting. Its
	// symmetrizer ("bib") is deliberately different from A's, so a bib
	// stage sample in /metrics would prove the kernel ran after all.
	jobB := ClusterRequest{GraphID: info.ID, Method: "bib", Algorithm: "mcl", Inflation: 2, Seed: 1}
	start := time.Now()
	respB := postClusterWithBudget(t, ts, jobB, 300*time.Millisecond)
	elapsed := time.Since(start)
	defer respB.Body.Close()
	if respB.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("job B status = %d, want 504", respB.StatusCode)
	}
	// The 504 arrives at B's deadline, not after A finishes.
	if elapsed > 900*time.Millisecond {
		t.Fatalf("504 took %v; the handler waited for the worker instead of the deadline", elapsed)
	}

	// A completes; B's drop is observed at dequeue, right after.
	waitFor(t, 10*time.Second, "job A done", func() bool {
		job, ok := s.jobs.Snapshot(ref.JobID)
		return ok && job.State == JobDone
	})
	waitFor(t, 5*time.Second, "deadline rejection counted", func() bool {
		return expositionValue(scrapeMetrics(t, ts.URL), "symclusterd_deadline_rejected_total") == 1
	})

	body := scrapeMetrics(t, ts.URL)
	if strings.Contains(body, `name="bib"`) {
		t.Fatal("dropped job B left a bib stage sample: its kernel ran")
	}
	if !strings.Contains(body, `name="dd"`) {
		t.Fatal("job A left no dd stage sample; the no-kernel check is vacuous")
	}

	// The worker is free again: a fresh request with a generous budget
	// runs immediately.
	respC := postClusterWithBudget(t, ts, ClusterRequest{GraphID: info.ID, Method: "bib", Algorithm: "mcl", Inflation: 2, Seed: 2}, 30*time.Second)
	defer respC.Body.Close()
	if respC.StatusCode != http.StatusOK {
		t.Fatalf("post-drop request status = %d, want 200", respC.StatusCode)
	}
}

// TestShedReleasesQueueAccounting: a request shed by the queued-byte
// watermark leaves no goroutines and no queued-byte residue behind.
func TestShedReleasesQueueAccounting(t *testing.T) {
	leakcheck.Guard(t)
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{Workers: 1, MaxQueueBytes: 1})
	info := registerFigure1(t, ts)

	// Occupy the single worker with job 1, then queue job 2: the queued
	// job's working-set estimate holds the watermark, so job 3 sheds.
	// (Estimates are released at dequeue, so only a job still waiting
	// in the queue counts against the budget.)
	faultinject.Set("pool.task", faultinject.Fault{Mode: faultinject.Delay, Delay: 500 * time.Millisecond, Times: 1})
	var refs []JobRef
	for seed := int64(1); seed <= 2; seed++ {
		resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: seed, Async: true})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("filler %d status = %d", seed, resp.StatusCode)
		}
		refs = append(refs, decode[JobRef](t, resp))
	}

	shed := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{GraphID: info.ID, Method: "bib", Algorithm: "mcl", Inflation: 2, Seed: 1})
	defer shed.Body.Close()
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", shed.StatusCode)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	waitFor(t, 10*time.Second, "fillers done", func() bool {
		for _, ref := range refs {
			if job, ok := s.jobs.Snapshot(ref.JobID); !ok || job.State != JobDone {
				return false
			}
		}
		return true
	})
	waitFor(t, 5*time.Second, "queued bytes released", func() bool {
		return s.queuedBytes.Load() == 0
	})
}
