package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	symcluster "symcluster"
	"symcluster/internal/csr"
	"symcluster/internal/jobstore"
)

// oocEdgeList generates a deterministic directed edge list: nodes
// pointing at an LCG-chosen fan-out plus a hub, dense enough that the
// product symmetrizations do real SpGEMM work.
func oocEdgeList(nodes, perNode int) string {
	var b strings.Builder
	state := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < nodes; i++ {
		fmt.Fprintf(&b, "%d 0 1.5\n", i) // hub edge, duplicated weight path
		for k := 0; k < perNode; k++ {
			state = state*6364136223846793005 + 1442695040888963407
			j := int(state>>33) % nodes
			if j != i {
				fmt.Fprintf(&b, "%d %d %d\n", i, j, 1+int(state>>60))
			}
		}
	}
	return b.String()
}

// uploadChunked drives the chunked-upload API: create a session, POST
// the text in chunks of the given size (splitting lines arbitrarily),
// finalize, and return the result.
func uploadChunked(t *testing.T, ts *httptest.Server, text string, chunk int) UploadResult {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v1/graphs/uploads", struct{}{})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload create: status %d", resp.StatusCode)
	}
	ref := decode[UploadRef](t, resp)
	for off := 0; off < len(text); off += chunk {
		end := off + chunk
		if end > len(text) {
			end = len(text)
		}
		resp, err := http.Post(ts.URL+ref.Location, "text/plain", strings.NewReader(text[off:end]))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("chunk append at %d: status %d", off, resp.StatusCode)
		}
		st := decode[UploadStatus](t, resp)
		if st.BytesReceived != int64(end) {
			t.Fatalf("bytes received = %d, want %d", st.BytesReceived, end)
		}
	}
	resp, err := http.Post(ts.URL+ref.Location+"/finalize", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("finalize: status %d", resp.StatusCode)
	}
	return decode[UploadResult](t, resp)
}

// clusterSync runs one synchronous clustering request and returns the
// response.
func clusterSync(t *testing.T, ts *httptest.Server, req ClusterRequest) *ClusterResponse {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v1/cluster", req)
	if resp.StatusCode != http.StatusOK {
		r := decode[ErrorResponse](t, resp)
		t.Fatalf("cluster: status %d: %s", resp.StatusCode, r.Error)
	}
	out := decode[ClusterResponse](t, resp)
	return &out
}

// TestChunkedUploadOutOfCoreIdenticalAssignments is the end-to-end
// out-of-core contract: a graph whose working-set estimate exceeds the
// job budget is uploaded in chunks (spilling during ingest), registered
// as a memory-mapped binary CSR file without ever living on the heap,
// admitted out-of-core instead of rejected with 413, and clusters to
// assignments identical to the same request running fully in core.
func TestChunkedUploadOutOfCoreIdenticalAssignments(t *testing.T) {
	text := oocEdgeList(600, 12)
	req := ClusterRequest{Method: "dd", Algorithm: "mcl", Threshold: 0.001, Seed: 7}

	// Reference: plain registration, generous budget, in-core run.
	_, tsRef := newTestServer(t, Config{Workers: 1})
	resp, err := http.Post(tsRef.URL+"/v1/graphs", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	refInfo := decode[GraphInfo](t, resp)
	req.GraphID = refInfo.ID
	want := clusterSync(t, tsRef, req)

	// Out-of-core: durable server with a job budget far below the
	// estimate and a tiny ingest buffer so the upload itself spills.
	dir := t.TempDir()
	s, ts := durableServer(t, dir, Config{
		Workers:        1,
		MaxJobBytes:    1 << 10,
		IngestMemBytes: 1, // floor: spill every 4096 edges
		SpillDir:       t.TempDir(),
	})
	defer stopServer(t, s, ts)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	up := uploadChunked(t, ts, text, 10_000)
	if up.Graph.ID != refInfo.ID {
		t.Fatalf("uploaded graph id %s != reference %s (content-derived ids must agree)", up.Graph.ID, refInfo.ID)
	}
	if up.SpillRuns == 0 {
		t.Fatal("upload ingest never spilled under a 1-byte buffer budget")
	}
	if up.Graph.Nodes != refInfo.Nodes || up.Graph.Edges != refInfo.Edges {
		t.Fatalf("uploaded graph %+v != reference %+v", up.Graph, refInfo)
	}

	// The adjacency must be a mapped view of the durable .csr file, not
	// a heap matrix: coarse resident-memory check plus the structural
	// one. (Parse garbage is collected; what stays live must be far
	// smaller than the matrix.)
	rg, ok := s.lookupGraph(up.Graph.ID)
	if !ok {
		t.Fatal("uploaded graph not registered")
	}
	if rg.mapped == nil {
		t.Fatal("uploaded graph is not memory-mapped")
	}
	if rg.csrPath == "" {
		t.Fatal("uploaded graph has no csr path for out-of-core runs")
	}
	if _, err := os.Stat(filepath.Join(dir, "graphs", up.Graph.ID+".csr")); err != nil {
		t.Fatalf("durable .csr file missing: %v", err)
	}
	matrixBytes := int64(12)*int64(rg.graph.Adj.NNZ()) + 8*int64(rg.graph.N()+1)
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > matrixBytes {
		t.Fatalf("upload left %d bytes live on the heap; the %d-byte matrix should be file-backed", growth, matrixBytes)
	}

	req.GraphID = up.Graph.ID
	got := clusterSync(t, ts, req)
	if len(got.Assign) != len(want.Assign) {
		t.Fatalf("assignment length %d != in-core %d", len(got.Assign), len(want.Assign))
	}
	for i := range got.Assign {
		if got.Assign[i] != want.Assign[i] {
			t.Fatalf("node %d: out-of-core cluster %d != in-core %d", i, got.Assign[i], want.Assign[i])
		}
	}
	if got.K != want.K {
		t.Fatalf("out-of-core k=%d != in-core k=%d", got.K, want.K)
	}

	body := fetchMetrics(t, ts)
	if !strings.Contains(body, "symclusterd_ooc_jobs_total 1") {
		t.Fatalf("metrics missing out-of-core job count:\n%s", body)
	}
	fileBytes := csr.FileBytes(rg.graph.N(), int64(rg.graph.Adj.NNZ()))
	var mapped int64
	for _, line := range strings.Split(body, "\n") {
		if n, _ := fmt.Sscanf(line, "symclusterd_csr_mapped_bytes %d", &mapped); n == 1 {
			break
		}
	}
	if mapped < fileBytes {
		t.Fatalf("mapped-bytes gauge %d below the graph's file size %d", mapped, fileBytes)
	}
}

// TestUploadedGraphSurvivesRestart reboots a durable server over a data
// dir holding a binary .csr graph and checks it comes back mapped and
// clusterable.
func TestUploadedGraphSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	text := oocEdgeList(120, 6)
	s, ts := durableServer(t, dir, Config{Workers: 1})
	up := uploadChunked(t, ts, text, 4096)
	stopServer(t, s, ts)

	s2, ts2 := durableServer(t, dir, Config{Workers: 1})
	defer stopServer(t, s2, ts2)
	rg, ok := s2.lookupGraph(up.Graph.ID)
	if !ok {
		t.Fatal("graph lost across restart")
	}
	if rg.mapped == nil {
		t.Fatal("reloaded graph is not memory-mapped")
	}
	out := clusterSync(t, ts2, ClusterRequest{GraphID: up.Graph.ID, Method: "aat", Algorithm: "mcl", Seed: 3})
	if len(out.Assign) != rg.graph.N() {
		t.Fatalf("assignments %d != nodes %d", len(out.Assign), rg.graph.N())
	}
}

// TestLegacyEdgeListMigration boots a server over a PR-5-era data dir
// — graphs persisted as edge-list text — and checks they are migrated
// to binary CSR in place: the .csr file appears, the .edges file is
// gone, and the graph serves requests.
func TestLegacyEdgeListMigration(t *testing.T) {
	dir := t.TempDir()
	text := oocEdgeList(80, 5)
	g, err := symcluster.ReadEdgeList(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	id := fmt.Sprintf("g-%016x", g.Fingerprint())

	st, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveGraph(id, []byte(text)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	s, ts := durableServer(t, dir, Config{Workers: 1})
	defer stopServer(t, s, ts)
	if _, err := os.Stat(filepath.Join(dir, "graphs", id+".csr")); err != nil {
		t.Fatalf("migration did not produce the binary file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "graphs", id+".edges")); !os.IsNotExist(err) {
		t.Fatalf("legacy edge list still present after migration (err=%v)", err)
	}
	rg, ok := s.lookupGraph(id)
	if !ok {
		t.Fatal("migrated graph not registered")
	}
	if rg.mapped == nil {
		t.Fatal("migrated graph is not memory-mapped")
	}
	if rg.graph.N() != g.N() || rg.graph.M() != g.M() {
		t.Fatalf("migrated graph %d nodes / %d edges, want %d / %d", rg.graph.N(), rg.graph.M(), g.N(), g.M())
	}
	out := clusterSync(t, ts, ClusterRequest{GraphID: id, Method: "bib", Algorithm: "mcl", Seed: 1})
	if len(out.Assign) != g.N() {
		t.Fatalf("assignments %d != nodes %d", len(out.Assign), g.N())
	}
}

// TestSpillBudgetRejects413 checks the one size rejection left for
// out-of-core capable methods: a projected spill footprint over the
// disk budget.
func TestSpillBudgetRejects413(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxJobBytes: 64, MaxSpillBytes: 1})
	info := registerFigure1(t, ts)
	resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 1})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	apiErr := decode[ErrorResponse](t, resp)
	if !strings.Contains(apiErr.Error, "max-spill-mb") {
		t.Fatalf("error %q does not name the disk-budget knob", apiErr.Error)
	}
}

// TestUploadSessionLifecycle covers the failure surface: malformed
// chunks poison the session, poisoned sessions refuse further input,
// aborts are idempotent, and unknown sessions 404.
func TestUploadSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp := postJSON(t, ts.URL+"/v1/graphs/uploads", struct{}{})
	ref := decode[UploadRef](t, resp)

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := post(ref.Location, "0 1\nnot an edge\n"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed chunk: status %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	// The session is poisoned: appends and finalize both refuse.
	if resp := post(ref.Location, "2 3\n"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("append to poisoned session: status %d, want 409", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := post(ref.Location+"/finalize", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("finalize of poisoned session: status %d, want 409", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	del, err := http.NewRequest(http.MethodDelete, ts.URL+ref.Location, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // abort is idempotent
		resp, err := http.DefaultClient.Do(del)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("abort #%d: status %d, want 204", i+1, resp.StatusCode)
		}
	}
	if resp := post(ref.Location, "0 1\n"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("append after abort: status %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := post("/v1/graphs/uploads/u-does-not-exist/finalize", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("finalize of unknown session: status %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Empty uploads cannot finalize.
	resp = postJSON(t, ts.URL+"/v1/graphs/uploads", struct{}{})
	ref = decode[UploadRef](t, resp)
	if resp := post(ref.Location+"/finalize", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("finalize of empty session: status %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestOutOfCoreAsyncJob runs the out-of-core path through the async
// job machinery so the admitted-over-budget contract holds there too.
func TestOutOfCoreAsyncJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxJobBytes: 1 << 10, SpillDir: t.TempDir()})
	info := registerFigure1(t, ts)
	resp := postJSON(t, ts.URL+"/v1/cluster",
		ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 1, Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d, want 202", resp.StatusCode)
	}
	ref := decode[JobRef](t, resp)
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, ok := s.jobs.Snapshot(ref.JobID)
		if ok && (j.State == JobDone || j.State == JobFailed) {
			if j.State != JobDone {
				t.Fatalf("job failed: %s", j.Err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if body := fetchMetrics(t, ts); !strings.Contains(body, "symclusterd_ooc_jobs_total 1") {
		t.Fatalf("metrics missing out-of-core job count:\n%s", body)
	}
}
