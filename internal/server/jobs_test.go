package server

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestJobLifecycle(t *testing.T) {
	s := NewJobStore(8, 0)
	j, _, _ := s.Create("", nil)
	if j.State != JobPending || j.ID == "" {
		t.Fatalf("created job = %+v", j)
	}
	s.Start(j.ID, "")
	if snap, _ := s.Snapshot(j.ID); snap.State != JobRunning {
		t.Fatalf("state = %s", snap.State)
	}
	s.Finish(j.ID, &ClusterResponse{K: 3}, nil, nil, nil, false)
	snap, ok := s.Snapshot(j.ID)
	if !ok || snap.State != JobDone || snap.Result.K != 3 {
		t.Fatalf("snapshot = %+v, %v", snap, ok)
	}
	if snap.Info().DurationMillis < 0 {
		t.Fatal("negative duration")
	}
}

func TestJobFailureAndCancel(t *testing.T) {
	s := NewJobStore(8, 0)
	fail, _, _ := s.Create("", nil)
	s.Start(fail.ID, "")
	s.Finish(fail.ID, nil, nil, nil, errors.New("boom"), false)
	if snap, _ := s.Snapshot(fail.ID); snap.State != JobFailed || snap.Err != "boom" {
		t.Fatalf("snapshot = %+v", snap)
	}

	canc, _, _ := s.Create("", nil)
	s.Finish(canc.ID, nil, nil, nil, errors.New("context canceled"), true)
	if snap, _ := s.Snapshot(canc.ID); snap.State != JobCanceled {
		t.Fatalf("snapshot = %+v", snap)
	}

	counts := s.Counts()
	if counts[JobFailed] != 1 || counts[JobCanceled] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestJobRetentionEvictsOldestFinished(t *testing.T) {
	s := NewJobStore(2, 0)
	var ids []string
	for i := 0; i < 4; i++ {
		j, _, _ := s.Create("", nil)
		ids = append(ids, j.ID)
		s.Start(j.ID, "")
		s.Finish(j.ID, &ClusterResponse{K: i}, nil, nil, nil, false)
	}
	for _, id := range ids[:2] {
		if _, ok := s.Snapshot(id); ok {
			t.Fatalf("job %s survived retention", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := s.Snapshot(id); !ok {
			t.Fatalf("job %s evicted wrongly", id)
		}
	}
	// Unfinished jobs are never evicted by retention.
	live, _, _ := s.Create("", nil)
	for i := 0; i < 4; i++ {
		j, _, _ := s.Create("", nil)
		s.Finish(j.ID, nil, nil, nil, nil, false)
	}
	if _, ok := s.Snapshot(live.ID); !ok {
		t.Fatal("pending job evicted by retention")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestJobIDsAreSequentialAndUnique(t *testing.T) {
	s := NewJobStore(16, 0)
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		j, _, _ := s.Create("", nil)
		if seen[j.ID] {
			t.Fatalf("duplicate id %s", j.ID)
		}
		seen[j.ID] = true
		if want := fmt.Sprintf("job-%06d", i+1); j.ID != want {
			t.Fatalf("id = %s, want %s", j.ID, want)
		}
	}
}

func TestJobTTLExpiry(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	s := NewJobStore(10, time.Minute)
	s.now = func() time.Time { return now }

	j, _, _ := s.Create("", nil)
	s.Start(j.ID, "")
	s.Finish(j.ID, nil, nil, nil, nil, false)

	// Inside the TTL the finished job is still visible.
	now = now.Add(59 * time.Second)
	if _, ok := s.Snapshot(j.ID); !ok {
		t.Fatal("job expired before its TTL")
	}

	now = now.Add(2 * time.Second)
	if _, ok := s.Snapshot(j.ID); ok {
		t.Fatal("job visible past its TTL")
	}
	if s.Expired() != 1 {
		t.Fatalf("expired = %d, want 1", s.Expired())
	}

	// Unfinished jobs are never expired, however old.
	running, _, _ := s.Create("", nil)
	s.Start(running.ID, "")
	now = now.Add(24 * time.Hour)
	if _, ok := s.Snapshot(running.ID); !ok {
		t.Fatal("running job expired")
	}
	if got := s.Counts()[JobRunning]; got != 1 {
		t.Fatalf("running count = %d, want 1", got)
	}
}

func TestJobTTLDisabled(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	s := NewJobStore(10, 0)
	s.now = func() time.Time { return now }
	j, _, _ := s.Create("", nil)
	s.Finish(j.ID, nil, nil, nil, nil, false)
	now = now.Add(1000 * time.Hour)
	if _, ok := s.Snapshot(j.ID); !ok {
		t.Fatal("job expired with TTL disabled")
	}
	if s.Expired() != 0 {
		t.Fatalf("expired = %d, want 0", s.Expired())
	}
}
