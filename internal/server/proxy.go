package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	symcluster "symcluster"
	"symcluster/internal/cluster"
	"symcluster/internal/csr"
	"symcluster/internal/jobstore"
	"symcluster/internal/obs"
)

// Coordinator mode: every symclusterd node in a -peers cluster is both
// a shard and a router. Graph ids are content-derived from the graph
// fingerprint, so any node can compute which peer owns a graph from
// the id alone (consistent hashing over the fingerprint, weighted by
// peer weight); requests that land on a non-owner are forwarded one hop
// to the owner through the retrying cluster.Client. Job and upload ids
// are only meaningful on the node that created them, so in cluster mode
// they are qualified at the API edge — "job-000042@host:port" — and
// routed back by that suffix; internally the ids stay unqualified so
// the WAL id sequence and every single-node code path are untouched.
//
// Failure handling: the active health checker declares a peer down
// after consecutive probe failures. Ownership lookups skip down peers,
// so a dead node's fingerprint ranges fall through to the next ring
// node; when no healthy owner exists the coordinator answers 503 with
// Retry-After instead of guessing. When the cluster shares a durable
// data root (-data-dir), the death of a peer additionally triggers WAL
// adoption: the ring-elected adopter replays the dead node's journal,
// re-creates its unfinished jobs locally (checkpoints included, so
// kernels resume mid-run), and fences the dead journal so a rebooted
// peer does not re-run adopted work. See DESIGN.md §14.
//
// One-hop guarantee: forwarded requests carry X-Symclusterd-Forwarded
// and are always served locally by the receiver, so divergent health
// views can never loop a request around the ring.

// ClusterConfig turns a Server into a member of a static multi-node
// cluster. Zero values select the defaults noted on each field.
type ClusterConfig struct {
	// Self is this node's peer name (the host:port of its public URL);
	// it must match one entry of Peers.
	Self string
	// Peers is the full static membership, this node included.
	Peers []*cluster.Peer
	// ProbeInterval is the health-probe period (default 2s).
	ProbeInterval time.Duration
	// FailThreshold and RecoverThreshold are the consecutive-probe
	// counts for declaring a peer down / back up (defaults 3 and 2).
	FailThreshold    int
	RecoverThreshold int
	// ProxyAttempts bounds tries per forwarded request (default 4).
	ProxyAttempts int
	// ProxyTimeout bounds each forwarding attempt (default 10s).
	ProxyTimeout time.Duration
	// ProxyMaxWait caps the backoff (and honored Retry-After) between
	// forwarding attempts (default 5s).
	ProxyMaxWait time.Duration
	// BreakerFailThreshold is the consecutive-failure count that opens a
	// peer's circuit breaker (default 5). The breaker is distinct from
	// the health prober: it reacts to real request traffic within
	// milliseconds and only gates this node's outbound calls, while the
	// prober owns ring membership.
	BreakerFailThreshold int
	// BreakerCooldown is how long an open breaker rejects before
	// admitting one half-open trial request (default 5s).
	BreakerCooldown time.Duration
	// RetryBudgetRatio is the token-bucket refill per request (default
	// 0.1: sustained retries are capped at ~10% of request volume).
	RetryBudgetRatio float64
	// RetryBudgetBurst caps banked retry tokens (default 10).
	RetryBudgetBurst float64
}

// forwardHeader marks a request as already forwarded once; receivers
// always serve it locally (the one-hop loop guard). The header is
// defined (and set) in internal/cluster so propagation headers stay in
// one place; servers only read it.
const forwardHeader = cluster.ForwardHeader

// internalCSRPath receives a finished binary CSR file from a peer that
// ingested a graph it does not own (registration or upload finalize on
// a non-owner node). The body is the raw CSR file; the response is the
// GraphInfo of the registered graph. The route is body-cap exempt:
// graphs routed here are exactly the ones too large for one request.
const internalCSRPath = "/internal/v1/graphs/csr"

// coordinator is the per-node cluster brain: ring, health, client.
type coordinator struct {
	s        *Server
	self     *cluster.Peer
	ring     *cluster.Ring
	health   *cluster.Health
	client   *cluster.Client
	breakers *cluster.BreakerSet

	// adoptMu serializes adoption passes and guards adopted: the peers
	// whose WAL this node took over during their current down period
	// (cleared on recovery so a later death re-adopts).
	adoptMu  sync.Mutex
	adopted  map[string]bool
	adoptedC chan string // test hook: receives peer name after adoption
}

// newCoordinator wires the cluster substrate for one node.
func newCoordinator(s *Server, cfg *ClusterConfig) (*coordinator, error) {
	c := &coordinator{
		s:       s,
		ring:    cluster.NewRing(cfg.Peers, 0),
		adopted: make(map[string]bool),
	}
	self, ok := c.ring.Peer(cfg.Self)
	if !ok {
		return nil, fmt.Errorf("cluster: -self %q is not in the peer list", cfg.Self)
	}
	c.self = self
	c.breakers = cluster.NewBreakerSet(cluster.BreakerConfig{
		FailThreshold: cfg.BreakerFailThreshold,
		Cooldown:      cfg.BreakerCooldown,
		OnChange: func(peer string, state cluster.BreakerState) {
			s.metrics.SetBreakerState(peer, state)
			s.log().Warn("breaker state change", "peer", peer, "state", state.String())
		},
	})
	budget := cluster.NewRetryBudget(cluster.RetryBudgetConfig{
		Ratio: cfg.RetryBudgetRatio,
		Burst: cfg.RetryBudgetBurst,
		OnExhausted: func() {
			s.metrics.IncRetryBudgetExhausted()
			s.log().Warn("retry budget exhausted; failing fast")
		},
	})
	c.client = cluster.NewClient(cluster.ClientConfig{
		MaxAttempts:    cfg.ProxyAttempts,
		AttemptTimeout: cfg.ProxyTimeout,
		MaxWait:        cfg.ProxyMaxWait,
		Breakers:       c.breakers,
		RetryBudget:    budget,
		OnRetry: func(reason string) {
			s.metrics.IncProxyRetry()
			s.log().Warn("proxy retry", "reason", reason)
		},
	})
	c.health = cluster.NewHealth(cfg.Peers, cluster.HealthConfig{
		Self:             cfg.Self,
		Interval:         cfg.ProbeInterval,
		FailThreshold:    cfg.FailThreshold,
		RecoverThreshold: cfg.RecoverThreshold,
		OnChange: func(p *cluster.Peer, up bool) {
			s.metrics.SetPeerUnhealthy(p.Name, !up)
			if up {
				s.log().Info("peer recovered", "peer", p.Name)
				c.forgetAdoption(p.Name)
			} else {
				s.log().Warn("peer declared down", "peer", p.Name)
			}
		},
		OnDown: func(p *cluster.Peer, err error) {
			go c.adoptIfNeeded(p, err)
		},
	})
	// Seed the gauges at 0 for every remote peer so the families are
	// present (and obviously healthy) before the first transition.
	for _, p := range cfg.Peers {
		if p.Name != cfg.Self {
			s.metrics.SetPeerUnhealthy(p.Name, false)
			s.metrics.SetBreakerState(p.Name, cluster.BreakerClosed)
		}
	}
	return c, nil
}

// nodeDirName maps a peer name to its per-node subdirectory under the
// shared durable data root. Colons (and anything else hostile to
// filesystems) become underscores.
func nodeDirName(peer string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-':
			return r
		default:
			return '_'
		}
	}, peer)
	return "node-" + mapped
}

// qualifyID appends "@self" to a job or upload id in cluster mode, so
// any node can route the id back to the node holding its state. In
// single-node mode ids pass through untouched.
func (s *Server) qualifyID(id string) string {
	if s.coord != nil {
		return id + "@" + s.coord.self.Name
	}
	return id
}

// splitQualified splits "id@peer" on the last '@'; peer is empty for
// unqualified ids.
func splitQualified(id string) (local, peer string) {
	if at := strings.LastIndexByte(id, '@'); at >= 0 {
		return id[:at], id[at+1:]
	}
	return id, ""
}

// adoptKey is the idempotency key under which a dead peer's job is
// re-created on the adopter. Keyed by (peer, original id), it dedups
// re-adoption across adopter restarts: replaying the adopter's own WAL
// re-arms the key, so a second adoption pass finds the existing job.
func adoptKey(peer, jobID string) string {
	return "adopt/" + peer + "/" + jobID
}

// forwarded reports whether the request already took its one hop.
func forwarded(r *http.Request) bool { return r.Header.Get(forwardHeader) != "" }

// ownerOf resolves the healthy owner of a graph id. Content-derived
// ids ("g-<16 hex>") are routed by the embedded fingerprint; anything
// else (a client typo, an internal name) hashes the id string so the
// lookup still lands deterministically somewhere.
func (c *coordinator) ownerOf(graphID string) (*cluster.Peer, bool) {
	fp := cluster.HashString(graphID)
	if hex, ok := strings.CutPrefix(graphID, "g-"); ok && len(hex) == 16 {
		if v, err := strconv.ParseUint(hex, 16, 64); err == nil {
			fp = v
		}
	}
	return c.ring.Owner(fp, c.health.Healthy)
}

// noOwner answers a request whose owning shard has no healthy node:
// degrade loudly (503 + Retry-After) rather than run on the wrong node.
func (c *coordinator) noOwner(w http.ResponseWriter, what string) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("no healthy node owns %s; retry shortly", what))
}

// forward proxies the request one hop to peer, relaying status,
// headers and body verbatim. body is the already-read request body
// (nil for bodyless methods). The hop is traced as a "proxy" span
// exported to the server's trace sink, and counted per peer and status
// in symclusterd_proxy_requests_total. The cluster client injects the
// proxy span's traceparent on the hop, so whatever the peer runs —
// including an async job outliving this request — joins the same trace
// and GET /v1/jobs/{id}/trace can stitch one tree across both nodes.
func (c *coordinator) forward(w http.ResponseWriter, r *http.Request, peer *cluster.Peer, body []byte) {
	tr := obs.NewTraceFrom(r.Context())
	ctx, span := tr.StartRoot(r.Context(), "proxy",
		obs.A("peer", peer.Name),
		obs.A("method", r.Method),
		obs.A("path", r.URL.Path))
	hdr := r.Header.Clone()
	cluster.MarkForwarded(hdr, c.self.Name)
	hdr.Del("Content-Length") // the client recomputes it per attempt
	url := peer.URL + r.URL.RequestURI()
	resp, err := c.client.Do(ctx, r.Method, url, hdr, body)
	if err != nil {
		span.EndErr(err)
		c.s.traces.Export(tr)
		// An open breaker means this node already knows the peer is
		// failing: answer 503 + Retry-After immediately instead of the
		// generic 502, without having touched the network.
		var boe *cluster.BreakerOpenError
		if errors.As(err, &boe) {
			c.s.metrics.IncProxyRequest(peer.Name, http.StatusServiceUnavailable)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(boe.RetryAfter)))
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("forwarding to %s: %w", peer.Name, err))
			return
		}
		c.s.metrics.IncProxyRequest(peer.Name, http.StatusBadGateway)
		writeError(w, http.StatusBadGateway, fmt.Errorf("forwarding to %s: %w", peer.Name, err))
		return
	}
	defer resp.Body.Close()
	span.SetAttr("code", resp.StatusCode)
	span.End()
	c.s.traces.Export(tr)
	c.s.metrics.IncProxyRequest(peer.Name, resp.StatusCode)
	for k, vs := range resp.Header {
		if k == "Content-Length" {
			continue
		}
		w.Header()[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// retryAfterSeconds renders a Retry-After header value from a
// duration, rounding up to at least one second (the header's floor).
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// readBody drains the (already MaxBytesReader-capped) request body for
// forwarding or local replay, translating an overflow into 413.
func (c *coordinator) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		code := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, fmt.Errorf("reading body: %w", err))
		return nil, false
	}
	return body, true
}

// wrapCluster routes POST /v1/cluster by the graph_id in the body: the
// owning shard runs it (locally or one forwarded hop away) so its
// symmetrization cache and WAL keep locality for that graph.
func (c *coordinator) wrapCluster(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if forwarded(r) {
			h(w, r)
			return
		}
		if c.s.Draining() {
			writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
			return
		}
		body, ok := c.readBody(w, r)
		if !ok {
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		var peek struct {
			GraphID string `json:"graph_id"`
		}
		// Routing needs only graph_id; full (strict) decoding happens on
		// the node that runs the request.
		if err := json.Unmarshal(body, &peek); err != nil || peek.GraphID == "" {
			h(w, r) // let the local handler produce the precise 400
			return
		}
		owner, ok := c.ownerOf(peek.GraphID)
		if !ok {
			c.noOwner(w, "graph "+peek.GraphID)
			return
		}
		if owner.Name == c.self.Name {
			h(w, r)
			return
		}
		c.forward(w, r, owner, body)
	}
}

// wrapJob routes job endpoints by the "@peer" suffix of the id. Ids
// minted by this node (or unqualified ones) are served locally; ids
// minted by a healthy peer are forwarded; ids minted by a down peer
// are answered from the adopted copy when this node adopted the peer's
// WAL, and with 503 + Retry-After while failover is still in flight.
func (c *coordinator) wrapJob(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		raw := r.PathValue("id")
		local, peerName := splitQualified(raw)
		if peerName == "" || peerName == c.self.Name || forwarded(r) {
			r.SetPathValue("id", local)
			h(w, r)
			return
		}
		peer, ok := c.ring.Peer(peerName)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q: %q is not a cluster member", raw, peerName))
			return
		}
		if c.health.Healthy(peerName) {
			c.forward(w, r, peer, nil)
			return
		}
		if adoptedID, ok := c.s.jobs.LookupByKey(adoptKey(peerName, local)); ok {
			r.SetPathValue("id", adoptedID)
			h(w, r)
			return
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("job %s lives on %s, which is down; failover in progress — retry shortly", raw, peerName))
	}
}

// wrapUpload routes upload-session endpoints by the "@peer" suffix.
// Sessions have no durable state, so a down creator means the session
// is gone; 503 + Retry-After covers the half-open window, after which
// the client aborts and re-uploads.
func (c *coordinator) wrapUpload(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		raw := r.PathValue("id")
		local, peerName := splitQualified(raw)
		if peerName == "" || peerName == c.self.Name || forwarded(r) {
			r.SetPathValue("id", local)
			h(w, r)
			return
		}
		peer, ok := c.ring.Peer(peerName)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown upload %q: %q is not a cluster member", raw, peerName))
			return
		}
		if !c.health.Healthy(peerName) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("upload %s lives on %s, which is down; if it stays down, abort and restart the upload", raw, peerName))
			return
		}
		body, ok := c.readBody(w, r)
		if !ok {
			return
		}
		c.forward(w, r, peer, body)
	}
}

// wrapGraphGet serves GET /v1/graphs/{id}: locally when the graph is
// registered here, otherwise one hop to the healthy owner.
func (c *coordinator) wrapGraphGet(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if forwarded(r) {
			h(w, r)
			return
		}
		if _, ok := c.s.lookupGraph(id); ok {
			h(w, r)
			return
		}
		owner, ok := c.ownerOf(id)
		if ok && owner.Name != c.self.Name {
			c.forward(w, r, owner, nil)
			return
		}
		h(w, r) // local 404 (or no healthy owner: this node's view is as good as any)
	}
}

// handleRegisterGraph is the cluster-mode POST /v1/graphs: parse the
// edge list locally (the fingerprint is not known until then), then
// register on the owning shard — directly when that is this node,
// otherwise by shipping the binary CSR to the owner over the internal
// endpoint. The response is identical either way, and the returned
// content-derived id routes every later request without qualification.
func (c *coordinator) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	if forwarded(r) {
		c.s.handleRegisterGraph(w, r)
		return
	}
	if c.s.Draining() {
		writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	g, err := readGraphBody(r)
	if err != nil {
		writeError(w, graphBodyStatus(err), err)
		return
	}
	id := fmt.Sprintf("g-%016x", g.Fingerprint())
	owner, ok := c.ownerOf(id)
	if !ok {
		c.noOwner(w, "graph "+id)
		return
	}
	if owner.Name == c.self.Name {
		writeJSON(w, http.StatusCreated, c.s.RegisterGraph(g))
		return
	}
	// The push hop is traced like a proxy hop: the peer's CSR receive
	// joins this root via the traceparent the cluster client injects.
	tr := obs.NewTraceFrom(r.Context())
	ctx, span := tr.StartRoot(r.Context(), "csr.push",
		obs.A("graph_id", id), obs.A("peer", owner.Name))
	dir, err := os.MkdirTemp(c.s.cfg.SpillDir, "symclusterd-push-*")
	if err != nil {
		span.EndErr(err)
		c.s.traces.Export(tr)
		writeError(w, http.StatusInternalServerError, fmt.Errorf("creating push scratch: %w", err))
		return
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "graph.csr")
	if err := csr.WriteMatrix(ctx, path, g.Adj); err != nil {
		span.EndErr(err)
		c.s.traces.Export(tr)
		writeError(w, http.StatusInternalServerError, fmt.Errorf("encoding graph for %s: %w", owner.Name, err))
		return
	}
	info, code, err := c.pushGraph(ctx, owner, path)
	span.EndErr(err)
	c.s.traces.Export(tr)
	if err != nil {
		var boe *cluster.BreakerOpenError
		if errors.As(err, &boe) {
			code = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(boe.RetryAfter)))
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// pushGraph ships a finished binary CSR file to peer over the internal
// endpoint and returns the GraphInfo the peer registered. The file is
// re-opened per attempt, so retries never send a half-consumed stream.
func (c *coordinator) pushGraph(ctx context.Context, peer *cluster.Peer, path string) (GraphInfo, int, error) {
	st, err := os.Stat(path)
	if err != nil {
		return GraphInfo{}, http.StatusInternalServerError, fmt.Errorf("pushing graph: %w", err)
	}
	hdr := http.Header{}
	cluster.MarkForwarded(hdr, c.self.Name)
	hdr.Set("Content-Type", "application/octet-stream")
	resp, err := c.client.DoStream(ctx, http.MethodPut, peer.URL+internalCSRPath, hdr,
		func() (io.ReadCloser, error) { return os.Open(path) }, st.Size())
	if err != nil {
		c.s.metrics.IncProxyRequest(peer.Name, http.StatusBadGateway)
		return GraphInfo{}, http.StatusBadGateway, fmt.Errorf("pushing graph to %s: %w", peer.Name, err)
	}
	defer resp.Body.Close()
	c.s.metrics.IncProxyRequest(peer.Name, resp.StatusCode)
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode/100 != 2 {
		var eresp ErrorResponse
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &eresp) == nil && eresp.Error != "" {
			msg = eresp.Error
		}
		return GraphInfo{}, http.StatusBadGateway,
			fmt.Errorf("peer %s rejected graph: %s (status %d)", peer.Name, msg, resp.StatusCode)
	}
	var info GraphInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		return GraphInfo{}, http.StatusBadGateway, fmt.Errorf("decoding %s's response: %w", peer.Name, err)
	}
	return info, 0, nil
}

// handleInternalGraphCSR receives a binary CSR file from a peer and
// registers it locally: PUT /internal/v1/graphs/csr. The file's CRCs
// are validated by csr.Open before anything trusts a byte of it, and
// the id is re-derived from the received content, so a corrupted or
// mis-routed transfer cannot poison the registry.
func (c *coordinator) handleInternalGraphCSR(w http.ResponseWriter, r *http.Request) {
	s := c.s
	// The receive is one segment of the pusher's trace (joined via the
	// traceparent seeded by the middleware); exporting it here makes the
	// stitched tree show both halves of the transfer.
	tr := obs.NewTraceFrom(r.Context())
	ctx, span := tr.StartRoot(r.Context(), "csr.receive", obs.A("peer", r.Header.Get(forwardHeader)))
	fail := func(code int, err error) {
		span.EndErr(err)
		s.traces.Export(tr)
		writeError(w, code, err)
	}
	dir, err := os.MkdirTemp(s.cfg.SpillDir, "symclusterd-recv-*")
	if err != nil {
		fail(http.StatusInternalServerError, fmt.Errorf("creating receive scratch: %w", err))
		return
	}
	path, err := csr.SaveStream(dir, "graph.csr", r.Body)
	if err != nil {
		os.RemoveAll(dir)
		fail(http.StatusBadRequest, fmt.Errorf("receiving graph: %w", err))
		return
	}
	mp, err := csr.Open(ctx, path)
	if err != nil {
		os.RemoveAll(dir)
		fail(http.StatusBadRequest, fmt.Errorf("validating received graph: %w", err))
		return
	}
	g, err := symcluster.NewDirectedGraph(mp.View(), nil)
	if err != nil {
		mp.Close()
		os.RemoveAll(dir)
		fail(http.StatusBadRequest, fmt.Errorf("wrapping received graph: %w", err))
		return
	}
	info := s.registerMappedCSR(g, mp, path, dir)
	span.SetAttr("graph_id", info.ID)
	span.SetAttr("bytes", mp.Bytes())
	span.End()
	s.traces.Export(tr)
	writeJSON(w, http.StatusOK, info)
}

// peerStates renders the health checker's verdicts for /healthz.
func (c *coordinator) peerStates() map[string]string {
	states := make(map[string]string, len(c.ring.Peers()))
	for _, p := range c.ring.Peers() {
		states[p.Name] = c.health.State(p.Name)
	}
	return states
}

// forgetAdoption clears the adopted flag when a peer recovers, so its
// next death triggers a fresh adoption pass.
func (c *coordinator) forgetAdoption(peer string) {
	c.adoptMu.Lock()
	delete(c.adopted, peer)
	c.adoptMu.Unlock()
}

// adoptIfNeeded runs on every failed probe of a down peer and decides
// whether this node must adopt the peer's WAL. Three gates:
//
//   - The probe failed at the transport level (refused, timeout). A
//     peer answering 503 is alive — draining or overloaded — and will
//     resume its own jobs; opening a live peer's WAL would mean two
//     writers on one file.
//   - This node is durable and the ring elects it: the adopter is the
//     healthy owner of HashString(deadPeerName), so every surviving
//     node computes the same answer without coordination.
//   - The peer has not already been adopted this down period.
//
// Adoption failures (e.g. the dead node's WAL directory is on its way
// over a network filesystem) leave the flag unset, so the next probe
// retries.
func (c *coordinator) adoptIfNeeded(dead *cluster.Peer, probeErr error) {
	var pse *cluster.ProbeStatusError
	if errors.As(probeErr, &pse) {
		return
	}
	if c.s.store == nil {
		return
	}
	owner, ok := c.ring.Owner(cluster.HashString(dead.Name), c.health.Healthy)
	if !ok || owner.Name != c.self.Name {
		return
	}
	c.adoptMu.Lock() // also serializes concurrent adoptFrom runs
	defer c.adoptMu.Unlock()
	if c.adopted[dead.Name] {
		return
	}
	if c.adoptFrom(dead) {
		c.adopted[dead.Name] = true
		if c.adoptedC != nil {
			c.adoptedC <- dead.Name
		}
	}
}

// adoptFrom replays the dead peer's journal and takes over its
// unfinished jobs: each pending job (interrupted running jobs replay as
// pending) is re-created locally under an idempotency key derived from
// (peer, original id) — so re-adoption after an adopter restart dedups
// — with its kernel checkpoints carried over, its graph imported from
// the dead store by hardlink-or-copy, and a canceled marker journaled
// into the dead peer's WAL so a rebooted peer does not re-run the job.
// The adopted jobs then go through the ordinary replay launcher, which
// resumes their kernels from the carried checkpoints.
func (c *coordinator) adoptFrom(dead *cluster.Peer) bool {
	s := c.s
	dir := filepath.Join(s.cfg.DataDir, nodeDirName(dead.Name))
	if _, err := os.Stat(dir); err != nil {
		// No journal to adopt: the peer never started, or the cluster
		// does not share a data root. Nothing to retry.
		return true
	}
	st, err := jobstore.Open(dir)
	if err != nil {
		s.log().Error("adopting peer WAL", "peer", dead.Name, "err", err)
		return false
	}
	defer st.Close()

	var adoptedJobs []*Job
	for _, rec := range st.Jobs() {
		if rec.State != jobstore.Pending {
			continue
		}
		var req ClusterRequest
		if err := json.Unmarshal(rec.Request, &req); err != nil {
			s.log().Error("adopting job: bad request record", "peer", dead.Name, "job", rec.ID, "err", err)
			continue
		}
		if _, ok := s.lookupGraph(req.GraphID); !ok {
			if err := c.importGraphFrom(st, req.GraphID); err != nil {
				// Adopt anyway: the job will fail with "unknown graph",
				// which is visible, instead of silently vanishing.
				s.log().Error("adopting job: importing graph", "peer", dead.Name,
					"job", rec.ID, "graph", req.GraphID, "err", err)
			}
		}
		// The dead record's trace id (journaled when the job started
		// there) becomes the adopted run's link: the new trace's root
		// span carries link_trace_id pointing at the original lineage.
		job, existing, err := s.jobs.CreateAdopted(adoptKey(dead.Name, rec.ID), rec.Request, rec.Checkpoints, rec.TraceID)
		if err != nil {
			s.log().Error("adopting job", "peer", dead.Name, "job", rec.ID, "err", err)
			continue
		}
		// Fence only after the local copy is durable: a crash between
		// the two writes double-runs (deterministic, so harmless) rather
		// than losing the job.
		if err := st.Finish(rec.ID, jobstore.Canceled, nil, "adopted by "+c.self.Name, nil, time.Now()); err != nil {
			s.log().Error("fencing adopted job", "peer", dead.Name, "job", rec.ID, "err", err)
		}
		if existing {
			continue
		}
		s.metrics.IncJobsAdopted()
		s.log().Info("adopted job", "peer", dead.Name, "job", rec.ID,
			"as", job.ID, "checkpoints", len(job.Checkpoints))
		adoptedJobs = append(adoptedJobs, job)
	}
	if len(adoptedJobs) > 0 {
		go s.resumeJobs(adoptedJobs)
	}
	return true
}

// importGraphFrom copies a graph's binary CSR file out of a dead
// peer's store into this node's (hardlink when possible; the source is
// left in place for the peer's eventual reboot), then maps and
// registers it.
func (c *coordinator) importGraphFrom(st *jobstore.Store, graphID string) error {
	src := st.GraphCSRPath(graphID)
	if _, err := os.Stat(src); err != nil {
		return fmt.Errorf("dead peer has no file for %s: %w", graphID, err)
	}
	dst, err := c.s.store.ImportGraphFile(graphID, src)
	if err != nil {
		return err
	}
	mp, err := csr.Open(bootContext(), dst)
	if err != nil {
		return fmt.Errorf("mapping imported graph: %w", err)
	}
	g, err := symcluster.NewDirectedGraph(mp.View(), nil)
	if err != nil {
		mp.Close()
		return fmt.Errorf("wrapping imported graph: %w", err)
	}
	c.s.addGraph(g, dst, mp, "")
	return nil
}
