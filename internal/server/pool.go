package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"symcluster/internal/faultinject"
)

// Pool errors distinguished by handlers: a full queue maps to 503 with
// Retry-After, a closed pool to 503 during drain.
var (
	ErrQueueFull  = errors.New("server: worker queue full")
	ErrPoolClosed = errors.New("server: worker pool closed")
)

// PanicError is the error a task resolves to when the kernel it ran
// panicked. The worker recovers the panic so one poisoned job cannot
// take down the daemon; Stack captures the goroutine stack at the
// panic for server-side logging (it is never sent to clients).
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value without the stack; handlers log the
// stack separately and keep client-facing messages short.
func (e *PanicError) Error() string {
	return fmt.Sprintf("server: worker panic: %v", e.Value)
}

// Pool is a bounded worker pool. A fixed number of goroutines drain a
// bounded task queue; Submit never blocks (it fails fast with
// ErrQueueFull so the HTTP layer can shed load), and every task carries
// the request context so client disconnects cancel queued work before
// it occupies a worker.
type Pool struct {
	tasks chan *poolTask
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool

	workers int
	busy    atomic.Int64
	panics  atomic.Int64
}

type poolTask struct {
	ctx context.Context
	fn  func(ctx context.Context) (any, error)
	// onDequeue, when set, fires the moment a worker takes the task off
	// the queue — whether it then runs or is dropped for a dead context.
	// The admission layer uses it to release queued-byte accounting.
	onDequeue func()
	// onDrop, when set, fires (after onDequeue) when the worker drops
	// the task instead of running it because its context died while it
	// waited — with the context's error, so the deadline-rejection
	// accounting can distinguish an expired deadline from a client
	// cancel.
	onDrop func(cause error)
	res    any
	err    error
	done   chan struct{}
}

// NewPool starts workers goroutines over a queue of depth queueDepth.
// Both arguments are clamped to at least 1.
func NewPool(workers, queueDepth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	p := &Pool{
		tasks:   make(chan *poolTask, queueDepth),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		if t.onDequeue != nil {
			t.onDequeue()
		}
		// A task whose client has already gone away — or whose deadline
		// expired while it waited — is dropped without occupying the
		// worker: its fn never runs, so an expired job produces no
		// kernel spans and burns no compute.
		if err := t.ctx.Err(); err != nil {
			if t.onDrop != nil {
				t.onDrop(err)
			}
			t.err = err
			close(t.done)
			continue
		}
		p.busy.Add(1)
		t.res, t.err = p.runTask(t)
		p.busy.Add(-1)
		close(t.done)
	}
}

// runTask executes one task with panic isolation: a panicking kernel is
// recovered into a *PanicError (counted for /metrics) instead of
// crashing the worker goroutine — and with it the daemon.
func (p *Pool) runTask(t *poolTask) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			res = nil
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if ferr := faultinject.Fire("pool.task"); ferr != nil {
		return nil, ferr
	}
	return t.fn(t.ctx)
}

// Submit enqueues fn and returns immediately with a wait function. The
// wait function blocks until the task finishes or ctx is cancelled;
// a cancelled wait abandons the task (the worker still completes it,
// but the result is discarded).
func (p *Pool) Submit(ctx context.Context, fn func(ctx context.Context) (any, error)) (wait func() (any, error), err error) {
	return p.SubmitHooked(ctx, fn, nil, nil)
}

// SubmitHooked is Submit with lifecycle hooks: onDequeue (if non-nil)
// fires exactly once when a worker pulls the task from the queue,
// before deciding whether to run or drop it; onDrop (if non-nil) fires
// when the worker then drops the task for a dead context, with the
// context's error.
func (p *Pool) SubmitHooked(ctx context.Context, fn func(ctx context.Context) (any, error), onDequeue func(), onDrop func(cause error)) (wait func() (any, error), err error) {
	t := &poolTask{ctx: ctx, fn: fn, onDequeue: onDequeue, onDrop: onDrop, done: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	select {
	case p.tasks <- t:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		return nil, ErrQueueFull
	}
	return func() (any, error) {
		select {
		case <-t.done:
			return t.res, t.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}, nil
}

// Run executes fn on the pool synchronously: it submits and waits.
func (p *Pool) Run(ctx context.Context, fn func(ctx context.Context) (any, error)) (any, error) {
	wait, err := p.Submit(ctx, fn)
	if err != nil {
		return nil, err
	}
	return wait()
}

// QueueDepth returns the number of tasks waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.tasks) }

// Busy returns the number of workers currently executing a task.
func (p *Pool) Busy() int { return int(p.busy.Load()) }

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// PanicsRecovered returns the number of worker panics recovered since
// the pool started.
func (p *Pool) PanicsRecovered() int64 { return p.panics.Load() }

// Close stops accepting tasks and waits for queued and running work to
// drain, or for ctx to expire — whichever comes first. It returns
// ctx.Err() if the drain deadline passed with work still in flight.
func (p *Pool) Close(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	return p.Wait(ctx)
}

// Wait blocks until every worker has exited (the pool must already be
// closed) or ctx expires. Drain calls it a second time after
// preempting stuck jobs: the first Close timed out, the preemption
// cancelled the in-flight contexts, and this wait gives the kernels a
// grace window to checkpoint and return.
func (p *Pool) Wait(ctx context.Context) error {
	drained := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
