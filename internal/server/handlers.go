package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"

	symcluster "symcluster"
	"symcluster/internal/checkpoint"
	"symcluster/internal/obs"
	"symcluster/internal/pipeline"
)

// apiError carries an HTTP status through the run path so handlers can
// distinguish client mistakes (400/404) from service faults (500).
type apiError struct {
	code int
	err  error
}

func (e *apiError) Error() string { return e.err.Error() }

func badRequest(format string, args ...any) error {
	return &apiError{code: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// errShed is returned when the queued-byte watermark is reached; it
// maps to 429 (the queue exists but is over budget — retry later),
// distinct from the 503 of a full task channel.
var errShed = errors.New("server: queued work over byte budget")

// httpStatus maps an error from the run path to a status code.
func httpStatus(err error) int {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae.code
	case errors.Is(err, errShed):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrPoolClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away; 499 is the conventional (nginx) code.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// readGraphBody parses a POST /v1/graphs body into a graph: either the
// raw edge list (the CLI interchange format: "src dst [weight]" lines)
// or, for clients that prefer a single content type, a JSON body
// {"edges": "..."}.
func readGraphBody(r *http.Request) (*symcluster.DirectedGraph, error) {
	var g *symcluster.DirectedGraph
	var err error
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var body struct {
			Edges string `json:"edges"`
		}
		if derr := json.NewDecoder(r.Body).Decode(&body); derr != nil {
			return nil, fmt.Errorf("decoding body: %w", derr)
		}
		g, err = symcluster.ReadEdgeList(strings.NewReader(body.Edges))
	} else {
		g, err = symcluster.ReadEdgeList(r.Body)
	}
	if err != nil {
		return nil, fmt.Errorf("parsing edge list: %w", err)
	}
	if g.N() == 0 {
		return nil, errors.New("empty graph")
	}
	return g, nil
}

// graphBodyStatus maps a readGraphBody error to a status code. Size
// rejections — the request body cap (either content type) or a single
// line overflowing the parser buffer — are 413, not 400: the input may
// be well-formed, it just does not fit.
func graphBodyStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) || errors.Is(err, symcluster.ErrInputTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// handleRegisterGraph ingests an edge list and registers it under a
// content-derived id (cluster mode routes through the coordinator's
// variant instead, which ships the graph to its owning shard).
func (s *Server) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	g, err := readGraphBody(r)
	if err != nil {
		writeError(w, graphBodyStatus(err), err)
		return
	}
	info := s.RegisterGraph(g)
	writeJSON(w, http.StatusCreated, info)
}

// handleGetGraph returns the registration info for one graph.
func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	rg, ok := s.lookupGraph(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, rg.info)
}

// handleCluster serves POST /v1/cluster. Synchronous requests run on
// the worker pool under the request context plus the configured
// timeout; async requests return 202 with a job reference and run
// detached from the client connection (but still on the pool, so drain
// waits for them).
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	var req ClusterRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		code := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, fmt.Errorf("decoding body: %w", err))
		return
	}
	idemKey := r.Header.Get("Idempotency-Key")
	if idemKey != "" && !req.Async {
		writeError(w, http.StatusBadRequest,
			errors.New("Idempotency-Key requires async: true (synchronous runs return their result inline and are never retried by job id)"))
		return
	}
	prep, err := s.prepareRun(&req)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}

	if req.Async {
		s.startAsyncJob(w, r, &req, idemKey, prep)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	// Synchronous runs get per-job resource accounting too: the snapshot
	// lands in the response's stats block (there is no job record).
	ctx = obs.WithJobStats(ctx, obs.NewJobStats())
	wait, err := s.submitJob(ctx, prep.est, func(ctx context.Context) (any, error) { return prep.runner(ctx) })
	var res any
	if err == nil {
		res, err = wait()
	}
	if err != nil {
		s.logWorkerPanic(err)
		code := httpStatus(err)
		if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, res.(*runOutcome).Resp)
}

// submitJob pushes work through the deadline and shedding gates onto
// the pool.
//
// The deadline gate fast-fails two cases with 504 before the job costs
// anything: a context already expired at submit, and a remaining
// budget smaller than even a wildly optimistic estimate of the job's
// runtime (its admission byte estimate over Config.DeadlineThroughput)
// — the job could not possibly answer in time, so queueing it only
// delays work that still can. A third case is caught later by the
// pool: a deadline that expires while the task waits in the queue
// drops it at dequeue, before fn runs (so no kernel ever starts and
// the trace stays empty). All three count into
// symclusterd_deadline_rejected_total.
//
// The shedding gate is a high watermark over the summed working-set
// estimates of queued tasks: once queuedBytes is at or past
// MaxQueueBytes the request is shed with 429 — but the incoming job's
// own estimate is not counted, so a single large job on an idle queue
// always gets in. Accepted estimates are released by the pool's
// dequeue hook (run or dropped, either way the bytes stop being
// "queued").
func (s *Server) submitJob(ctx context.Context, est int64, fn func(ctx context.Context) (any, error)) (func() (any, error), error) {
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.metrics.IncDeadlineRejected()
		}
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		need := time.Duration(float64(est) / float64(s.cfg.DeadlineThroughput) * float64(time.Second))
		if remaining := time.Until(dl); remaining < need {
			s.metrics.IncDeadlineRejected()
			return nil, &apiError{code: http.StatusGatewayTimeout,
				err: fmt.Errorf("deadline too tight: %v remaining, but the job needs at least %v even at best-case throughput", remaining.Round(time.Millisecond), need.Round(time.Millisecond))}
		}
	}
	if max := s.cfg.MaxQueueBytes; max > 0 && s.queuedBytes.Load() >= max {
		s.shedTotal.Add(1)
		return nil, fmt.Errorf("%w: %d bytes queued, budget %d; retry later",
			errShed, s.queuedBytes.Load(), max)
	}
	s.queuedBytes.Add(est)
	// The dequeue hook is the queue-wait measurement point: it fires the
	// moment a worker pulls the task, before the run begins.
	js := obs.JobStatsFrom(ctx)
	submitted := time.Now()
	wait, err := s.pool.SubmitHooked(ctx, fn, func() {
		js.SetQueueWait(time.Since(submitted))
		s.queuedBytes.Add(-est)
	}, func(cause error) {
		if errors.Is(cause, context.DeadlineExceeded) {
			s.metrics.IncDeadlineRejected()
		}
	})
	if err != nil {
		s.queuedBytes.Add(-est)
		return nil, err
	}
	return wait, nil
}

// startAsyncJob creates (or, under a repeated Idempotency-Key, finds)
// the job record and launches it. The 202 body is identical for the
// first request and its duplicates: same job id, same location.
func (s *Server) startAsyncJob(w http.ResponseWriter, r *http.Request, req *ClusterRequest, idemKey string, prep *preparedRun) {
	reqJSON, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	job, existing, err := s.jobs.Create(idemKey, reqJSON)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("journaling job: %w", err))
		return
	}
	if !existing {
		if lerr := s.launchJob(r.Context(), job, prep); lerr != nil {
			s.jobs.Finish(job.ID, nil, nil, nil, lerr, false)
			code := httpStatus(lerr)
			if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			writeError(w, code, lerr)
			return
		}
	}
	// In cluster mode the id is qualified with this node's name, so any
	// peer can route polls for it back here.
	id := s.qualifyID(job.ID)
	writeJSON(w, http.StatusAccepted, JobRef{
		JobID:    id,
		Location: "/v1/jobs/" + id,
	})
}

// launchJob submits one async job to the pool and wires its lifecycle:
// Start when a worker picks it up, checkpoints to the WAL while it
// runs (durable + checkpointable runs only), and on completion either
// Finish — or, when Drain preempted it, Requeue, because its kernel
// checkpointed on the way out and the next boot resumes it.
func (s *Server) launchJob(parent context.Context, job *Job, prep *preparedRun) error {
	// The job must outlive the HTTP request: detach from the request
	// context but keep its values for tracing. The cancel cause lets
	// Drain preempt the job distinguishably from a client cancel.
	jobCtx, cancel := context.WithCancelCause(context.WithoutCancel(parent))
	if prep.checkpointable && s.jobs.Durable() {
		jobCtx = checkpoint.With(jobCtx, newJobSink(s.jobs, job.ID, s.cfg.CheckpointIters, job.Checkpoints))
	}
	// Pin the job's trace identity before it is queued. A proxied submit
	// already carries the entry node's seed (joined by the middleware);
	// otherwise mint a fresh id. An adopted job additionally links back
	// to the dead owner's original trace. The id is journaled with the
	// start op so it survives restarts and adoption.
	seed, _ := obs.TraceSeedFrom(jobCtx)
	if seed.TraceID == "" {
		seed.TraceID = obs.NewTraceID()
	}
	if job.LinkTraceID != "" {
		seed.LinkTraceID = job.LinkTraceID
	}
	jobCtx = obs.WithTraceSeed(jobCtx, seed)
	js := obs.NewJobStats()
	jobCtx = obs.WithJobStats(jobCtx, js)
	wait, err := s.submitJob(jobCtx, prep.est, func(ctx context.Context) (any, error) {
		if serr := s.jobs.Start(job.ID, seed.TraceID); serr != nil {
			return nil, fmt.Errorf("journaling start: %w", serr)
		}
		return prep.runner(ctx)
	})
	if err != nil {
		cancel(nil)
		return err
	}
	s.jobMu.Lock()
	s.jobCancels[job.ID] = cancel
	s.jobMu.Unlock()

	s.jobWG.Add(1)
	go func() {
		defer s.jobWG.Done()
		defer func() {
			s.jobMu.Lock()
			delete(s.jobCancels, job.ID)
			s.jobMu.Unlock()
			cancel(nil)
		}()
		res, rerr := wait()
		s.logWorkerPanic(rerr)
		// The outcome carries the span tree even when the run
		// errored, so failed jobs keep their trace.
		out, _ := res.(*runOutcome)
		if out == nil {
			out = &runOutcome{}
		}
		if errors.Is(rerr, context.Canceled) && errors.Is(context.Cause(jobCtx), errPreempted) {
			// Drain preempted the run after its final checkpoint;
			// pending in the WAL means the next boot picks it up.
			if qerr := s.jobs.Requeue(job.ID); qerr != nil {
				s.log().Error("requeueing preempted job", "job", job.ID, "err", qerr)
			}
			return
		}
		if ferr := s.jobs.Finish(job.ID, out.Resp, out.Trace, js.Snapshot(), rerr, errors.Is(rerr, context.Canceled)); ferr != nil {
			s.log().Error("journaling job outcome", "job", job.ID, "err", ferr)
		}
	}()
	return nil
}

// runOutcome is what one clustering run hands back through the pool:
// the response (nil when the run failed) and the run's span tree,
// which survives errors so failed jobs keep their trace.
type runOutcome struct {
	Resp  *ClusterResponse
	Trace *obs.SpanNode
	Stats *obs.JobStatsSnapshot
}

// preparedRun is a validated, admitted request ready to submit: the
// closure that executes it, the admission byte estimate (charged
// against the queue watermark while it waits), whether admission
// routed the symmetrization out-of-core, and whether any stage
// supports kernel checkpointing (gates installing a job sink).
type preparedRun struct {
	runner         func(ctx context.Context) (*runOutcome, error)
	est            int64
	ooc            bool
	checkpointable bool
}

// prepareRun validates a ClusterRequest against the pipeline registry
// and returns the closure that executes it. Validation happens before
// the request is queued so bad input never occupies a worker.
func (s *Server) prepareRun(req *ClusterRequest) (*preparedRun, error) {
	if req.GraphID == "" {
		return nil, badRequest("graph_id is required")
	}
	rg, ok := s.lookupGraph(req.GraphID)
	if !ok {
		return nil, &apiError{code: http.StatusNotFound, err: fmt.Errorf("unknown graph %q", req.GraphID)}
	}
	cl, err := pipeline.LookupClusterer(req.Algorithm)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	// Directed-input substrates bypass symmetrization: method becomes
	// optional, but a method that is given must still be a real one.
	var sym pipeline.Symmetrizer
	if req.Method != "" || !cl.AcceptsDirected() {
		sym, err = pipeline.LookupSymmetrizer(req.Method)
		if err != nil {
			return nil, badRequest("%v", err)
		}
	}
	if cl.AcceptsDirected() {
		sym = nil
	}
	if req.K > rg.info.Nodes {
		return nil, badRequest("k=%d exceeds %d nodes", req.K, rg.info.Nodes)
	}
	clOpt := symcluster.ClusterOptions{
		TargetClusters: req.K,
		Inflation:      req.Inflation,
		Seed:           req.Seed,
	}
	if err := cl.Validate(clOpt); err != nil {
		return nil, badRequest("%v", err)
	}

	opt := symcluster.DefaultSymmetrizeOptions()
	if req.Alpha != nil {
		opt.Alpha = *req.Alpha
	}
	if req.Beta != nil {
		opt.Beta = *req.Beta
	}
	opt.Threshold = req.Threshold
	if sym != nil {
		if err := sym.Validate(opt); err != nil {
			return nil, badRequest("%v", err)
		}
	}
	est, ooc, err := s.admit(rg, sym, cl, req.K)
	if err != nil {
		return nil, err
	}

	ckpt := cl.Checkpointable() || (sym != nil && sym.Checkpointable())
	return &preparedRun{
		runner: func(ctx context.Context) (*runOutcome, error) {
			if ooc {
				// Route the symmetrization out-of-core: operands become
				// memory-mapped files under the spill dir; the result is
				// byte-identical to the in-core path (same cache key).
				s.oocTotal.Add(1)
				ctx = symcluster.WithOutOfCore(ctx, symcluster.OutOfCoreConfig{
					InputPath:        rg.csrPath, // empty: input written to scratch first
					ScratchDir:       s.cfg.SpillDir,
					MaxResidentBytes: s.cfg.MaxResidentBytes,
					SpillMemBytes:    s.cfg.IngestMemBytes,
				})
			}
			return s.runCluster(ctx, rg, sym, cl, opt, clOpt)
		},
		est:            est,
		ooc:            ooc,
		checkpointable: ckpt,
	}, nil
}

// runCluster executes the two-stage pipeline for one request under a
// fresh trace whose root "request" span nests the "symmetrize" and
// "cluster" stage spans (and, underneath those, the kernel spans the
// instrumented hot loops open). The finished tree is exported to the
// server's trace sink — including on error, so failed runs stay
// visible — and attached to the response's StageTrace on success.
//
// It runs on a pool worker; the context is threaded into both stages,
// whose kernels poll it at iteration and row-block boundaries, so a
// client disconnect or timeout frees the worker within one block of
// kernel work.
func (s *Server) runCluster(ctx context.Context, rg *registeredGraph, sym pipeline.Symmetrizer, cl pipeline.Clusterer, opt symcluster.SymmetrizeOptions, clOpt symcluster.ClusterOptions) (*runOutcome, error) {
	method := ""
	if sym != nil {
		method = sym.Name()
	}
	// NewTraceFrom joins whatever identity the context carries: the
	// entry node's traceparent on a proxied request, the pinned seed of
	// an async job, or nothing (fresh root trace for a local sync run).
	tr := obs.NewTraceFrom(ctx)
	ctx, root := tr.StartRoot(ctx, "request",
		obs.A("graph_id", rg.info.ID),
		obs.A("algorithm", cl.Name()),
		obs.A("method", method))
	out := &runOutcome{}
	resp, err := s.runStages(ctx, rg, sym, cl, opt, clOpt)
	root.EndErr(err)
	out.Trace = tr.Tree()
	s.traces.Export(tr)
	if jstats := obs.JobStatsFrom(ctx); jstats != nil {
		out.Stats = jstats.Snapshot()
	}
	if resp != nil {
		resp.Trace.Spans = out.Trace
		resp.Stats = out.Stats
		out.Resp = resp
	}
	return out, err
}

// runStages is the traced body of runCluster: symmetrize (served from
// cache when an identical product exists; directed-input substrates
// skip both the stage and the cache), then cluster.
func (s *Server) runStages(ctx context.Context, rg *registeredGraph, sym pipeline.Symmetrizer, cl pipeline.Clusterer, opt symcluster.SymmetrizeOptions, clOpt symcluster.ClusterOptions) (*ClusterResponse, error) {
	resp := &ClusterResponse{
		GraphID:   rg.info.ID,
		Algorithm: cl.Name(),
	}
	trace := &symcluster.StageTrace{Clusterer: cl.Name()}
	in := pipeline.Input{G: rg.graph}

	if sym != nil {
		resp.Method = sym.Name()
		trace.Symmetrizer = sym.Name()
		key := CacheKey{
			Graph:     rg.fingerprint,
			Method:    sym.Name(),
			Alpha:     opt.Alpha,
			Beta:      opt.Beta,
			Threshold: opt.Threshold,
		}
		symCtx, symSpan := obs.StartSpan(ctx, "symmetrize", obs.A("name", sym.Name()))
		endStage := obs.BeginStage(ctx, "symmetrize")
		start := time.Now()
		u, hit := s.cache.Get(key)
		obs.JobStatsFrom(ctx).AddCache(hit)
		if !hit {
			var err error
			u, err = sym.Run(symCtx, rg.graph, opt)
			if err != nil {
				endStage()
				symSpan.EndErr(err)
				return nil, fmt.Errorf("symmetrize: %w", err)
			}
			s.cache.Put(key, u)
			s.metrics.ObserveCacheObject(GraphBytes(u))
		}
		endStage()
		symSpan.SetAttr("cache_hit", hit)
		symSpan.SetAttr("nnz", u.Adj.NNZ())
		symSpan.End()
		resp.CacheHit = hit
		resp.SymmetrizeMillis = float64(time.Since(start)) / float64(time.Millisecond)
		trace.SymmetrizeMillis = resp.SymmetrizeMillis
		trace.SymmetrizedNNZ = u.Adj.NNZ()
		resp.Nodes = u.N()
		resp.UndirectedEdges = u.M()
		in.U = u
		if !hit {
			s.metrics.ObserveStage("symmetrize", sym.Name(), resp.SymmetrizeMillis/1000)
		}
	} else {
		resp.Nodes = rg.graph.N()
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	clCtx, clSpan := obs.StartSpan(ctx, "cluster", obs.A("name", cl.Name()))
	endStage := obs.BeginStage(ctx, "cluster")
	start := time.Now()
	res, err := cl.Run(clCtx, in, clOpt)
	endStage()
	if err != nil {
		clSpan.EndErr(err)
		return nil, fmt.Errorf("cluster: %w", err)
	}
	clSpan.SetAttr("clusters", res.K)
	clSpan.End()
	resp.ClusterMillis = float64(time.Since(start)) / float64(time.Millisecond)
	trace.ClusterMillis = resp.ClusterMillis
	s.metrics.ObserveStage("cluster", cl.Name(), resp.ClusterMillis/1000)
	resp.K = res.K
	resp.Assign = res.Assign
	resp.Trace = trace
	return resp, ctx.Err()
}

// logWorkerPanic logs the captured stack of a recovered worker panic.
// Clients only ever see the short PanicError message; the stack stays
// server-side.
func (s *Server) logWorkerPanic(err error) {
	var pe *PanicError
	if errors.As(err, &pe) {
		s.log().Error("recovered worker panic",
			"panic", fmt.Sprint(pe.Value), "stack", string(pe.Stack))
	}
}

// handleGetJob serves GET /v1/jobs/{id}.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Snapshot(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	info := job.Info()
	info.JobID = s.qualifyID(info.JobID)
	writeJSON(w, http.StatusOK, info)
}

// handleJobTrace serves GET /v1/jobs/{id}/trace: the span tree of a
// finished async job (including failed and canceled jobs, whose traces
// are retained precisely so the failure is debuggable).
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Snapshot(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if job.Trace == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q has no trace yet", job.ID))
		return
	}
	tree := job.Trace
	// A root with a remote parent is the owner's half of a cross-node
	// trace (the entry node holds the proxy span): stitch in whatever
	// segments the peers retain before serving.
	if s.coord != nil && job.TraceID != "" && tree.ParentSpanID != "" {
		tree = s.coord.mergeTrace(r.Context(), job.TraceID, tree)
	}
	writeJSON(w, http.StatusOK, tree)
}

// healthzBody is the GET /healthz response. Peers is present only in
// cluster mode: this node's probe verdict ("up", "down", "half-open")
// for every member, itself included.
type healthzBody struct {
	Status        string            `json:"status"`
	Version       string            `json:"version"`
	GoVersion     string            `json:"go_version"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Self          string            `json:"self,omitempty"`
	Peers         map[string]string `json:"peers,omitempty"`
}

// handleHealthz reports liveness plus build identity and uptime;
// during drain it turns 503 so load balancers — and peer health
// checkers, which shift ownership away — stop routing to this
// instance.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	body := healthzBody{
		Status:        "ok",
		Version:       obs.Version,
		GoVersion:     runtime.Version(),
		UptimeSeconds: time.Since(s.startTime).Seconds(),
	}
	if s.coord != nil {
		body.Self = s.coord.self.Name
		body.Peers = s.coord.peerStates()
	}
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics serves the text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteTo(w, s)
}
