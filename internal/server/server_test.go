package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	symcluster "symcluster"
)

// mustFigure1Graph returns the paper's Figure 1 graph for direct
// (non-HTTP) registration in tests.
func mustFigure1Graph(t *testing.T) *symcluster.DirectedGraph {
	t.Helper()
	return symcluster.Figure1().Graph
}

// figure1Edges is the paper's Figure 1 example in the edge-list
// interchange format: sources {0,1} → twins {4,5} → targets {2,3}.
const figure1Edges = `# figure 1
0 4
0 5
1 4
1 5
4 2
4 3
5 2
5 3
`

// mustNew builds a Server or fails the test (New only errors in
// durable mode, on a bad data dir).
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := mustNew(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding %T: %v", v, err)
	}
	return v
}

func registerFigure1(t *testing.T, ts *httptest.Server) GraphInfo {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/graphs", "text/plain", strings.NewReader(figure1Edges))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	return decode[GraphInfo](t, resp)
}

func TestClusterEndToEndWithCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	info := registerFigure1(t, ts)
	if info.Nodes != 6 || info.Edges != 8 {
		t.Fatalf("info = %+v", info)
	}
	if !strings.HasPrefix(info.ID, "g-") {
		t.Fatalf("id = %q", info.ID)
	}

	req := ClusterRequest{
		GraphID:   info.ID,
		Method:    "dd",
		Algorithm: "mcl",
		Inflation: 2,
		Seed:      1,
	}
	resp := postJSON(t, ts.URL+"/v1/cluster", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster: status %d", resp.StatusCode)
	}
	res := decode[ClusterResponse](t, resp)
	if len(res.Assign) != 6 {
		t.Fatalf("assign = %v", res.Assign)
	}
	// Figure 1's point: the twins cluster together despite sharing no
	// edge, and apart from the targets they both point at.
	if res.Assign[4] != res.Assign[5] {
		t.Fatalf("twins split: %v", res.Assign)
	}
	if res.Assign[4] == res.Assign[2] {
		t.Fatalf("twins merged with targets: %v", res.Assign)
	}
	if res.CacheHit {
		t.Fatal("first request claims a cache hit")
	}

	// The identical request is served from the symmetrization cache.
	resp = postJSON(t, ts.URL+"/v1/cluster", req)
	res2 := decode[ClusterResponse](t, resp)
	if !res2.CacheHit {
		t.Fatal("second identical request missed the cache")
	}
	if fmt.Sprint(res2.Assign) != fmt.Sprint(res.Assign) {
		t.Fatalf("cached run diverged: %v vs %v", res2.Assign, res.Assign)
	}

	// A different α is a different cache key.
	alpha := 0.3
	req.Alpha = &alpha
	resp = postJSON(t, ts.URL+"/v1/cluster", req)
	if res3 := decode[ClusterResponse](t, resp); res3.CacheHit {
		t.Fatal("different alpha hit the cache")
	}

	metricsResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metricsResp.Body.Close()
	raw, err := io.ReadAll(metricsResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"symclusterd_cache_hits_total 1",
		"symclusterd_cache_misses_total 2",
		`symclusterd_requests_total{route="POST /v1/cluster",code="200"} 3`,
		"symclusterd_workers_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestGraphRegistrationIdempotent(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	a := registerFigure1(t, ts)
	b := registerFigure1(t, ts)
	if a.ID != b.ID {
		t.Fatalf("same graph, different ids: %q vs %q", a.ID, b.ID)
	}
	resp, err := http.Get(ts.URL + "/v1/graphs/" + a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := decode[GraphInfo](t, resp); got != a {
		t.Fatalf("lookup = %+v, want %+v", got, a)
	}
}

func TestJSONGraphUpload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body, _ := json.Marshal(map[string]string{"edges": figure1Edges})
	resp, err := http.Post(ts.URL+"/v1/graphs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if info := decode[GraphInfo](t, resp); info.Nodes != 6 {
		t.Fatalf("info = %+v", info)
	}
}

func TestHandlerRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 512})
	info := registerFigure1(t, ts)

	cluster := func(mutate func(*ClusterRequest)) ClusterRequest {
		req := ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 1}
		mutate(&req)
		return req
	}

	tests := []struct {
		name string
		do   func() *http.Response
		want int
	}{
		{"method not allowed on cluster", func() *http.Response {
			resp, err := http.Get(ts.URL + "/v1/cluster")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusMethodNotAllowed},
		{"malformed json", func() *http.Response {
			resp, err := http.Post(ts.URL+"/v1/cluster", "application/json", strings.NewReader("{"))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest},
		{"unknown field", func() *http.Response {
			resp, err := http.Post(ts.URL+"/v1/cluster", "application/json",
				strings.NewReader(`{"graph_id":"x","method":"dd","algorithm":"mcl","bogus":1}`))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest},
		{"missing graph id", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/cluster", cluster(func(r *ClusterRequest) { r.GraphID = "" }))
		}, http.StatusBadRequest},
		{"unknown graph", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/cluster", cluster(func(r *ClusterRequest) { r.GraphID = "g-nope" }))
		}, http.StatusNotFound},
		{"unknown method", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/cluster", cluster(func(r *ClusterRequest) { r.Method = "cosine" }))
		}, http.StatusBadRequest},
		{"unknown algorithm", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/cluster", cluster(func(r *ClusterRequest) { r.Algorithm = "kmeans" }))
		}, http.StatusBadRequest},
		{"metis without k", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/cluster", cluster(func(r *ClusterRequest) { r.Algorithm = "metis" }))
		}, http.StatusBadRequest},
		{"k beyond nodes", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/cluster", cluster(func(r *ClusterRequest) {
				r.Algorithm = "metis"
				r.K = 100
			}))
		}, http.StatusBadRequest},
		{"alpha out of range", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/cluster", cluster(func(r *ClusterRequest) {
				a := 1.5
				r.Alpha = &a
			}))
		}, http.StatusBadRequest},
		{"negative threshold", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/cluster", cluster(func(r *ClusterRequest) { r.Threshold = -1 }))
		}, http.StatusBadRequest},
		{"inflation at or below one", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/cluster", cluster(func(r *ClusterRequest) { r.Inflation = 0.9 }))
		}, http.StatusBadRequest},
		{"unknown job", func() *http.Response {
			resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusNotFound},
		{"empty graph upload", func() *http.Response {
			resp, err := http.Post(ts.URL+"/v1/graphs", "text/plain", strings.NewReader("# nothing\n"))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest},
		{"oversized graph upload", func() *http.Response {
			big := strings.Repeat("0 1\n", 1024)
			resp, err := http.Post(ts.URL+"/v1/graphs", "text/plain", strings.NewReader(big))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			resp := tc.do()
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	info := registerFigure1(t, ts)

	resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
		GraphID:   info.ID,
		Method:    "bib",
		Algorithm: "graclus",
		K:         3,
		Seed:      1,
		Async:     true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async status = %d", resp.StatusCode)
	}
	ref := decode[JobRef](t, resp)
	if ref.JobID == "" || ref.Location == "" {
		t.Fatalf("ref = %+v", ref)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		jresp, err := http.Get(ts.URL + ref.Location)
		if err != nil {
			t.Fatal(err)
		}
		job := decode[JobInfo](t, jresp)
		switch job.State {
		case string(JobDone):
			if job.Result == nil || len(job.Result.Assign) != 6 {
				t.Fatalf("job result = %+v", job.Result)
			}
			if job.Result.K != 3 {
				t.Fatalf("k = %d", job.Result.K)
			}
			return
		case string(JobFailed), string(JobCanceled):
			t.Fatalf("job ended %s: %s", job.State, job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestClientDisconnectCancelsQueuedWork(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueDepth: 2})

	// Occupy the only worker so the request below waits in the queue.
	block := make(chan struct{})
	release := make(chan struct{})
	if _, err := s.pool.Submit(context.Background(), func(context.Context) (any, error) {
		close(block)
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-block
	defer close(release)

	info := s.RegisterGraph(mustFigure1Graph(t))
	body, _ := json.Marshal(ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/cluster", strings.NewReader(string(body))).WithContext(ctx)
	rec := httptest.NewRecorder()

	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the queue
	cancel()                          // client disconnects
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
	if rec.Code != 499 {
		t.Fatalf("status = %d, want 499", rec.Code)
	}
}

func TestGracefulDrain(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	info := registerFigure1(t, ts)
	resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
		GraphID:   info.ID,
		Method:    "rw",
		Algorithm: "metis",
		K:         3,
		Seed:      1,
		Async:     true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async status = %d", resp.StatusCode)
	}
	ref := decode[JobRef](t, resp)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Drain waits for the pool, so the job can only be finishing its
	// bookkeeping goroutine; give it a moment to record the result.
	deadline := time.Now().Add(2 * time.Second)
	for {
		job, ok := s.jobs.Snapshot(ref.JobID)
		if !ok {
			t.Fatal("job vanished")
		}
		if job.State == JobDone {
			break
		}
		if job.State == JobFailed || job.State == JobCanceled {
			t.Fatalf("job ended %s: %s", job.State, job.Err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not finished after drain: %s", job.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// After drain: health checks fail and new work is shed.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain = %d", hresp.StatusCode)
	}
	cresp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl"})
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cluster after drain = %d", cresp.StatusCode)
	}
}

func TestQueueFullShedsLoad(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	info := registerFigure1(t, ts)

	block := make(chan struct{})
	release := make(chan struct{})
	if _, err := s.pool.Submit(context.Background(), func(context.Context) (any, error) {
		close(block)
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-block
	// Fill the single queue slot.
	if _, err := s.pool.Submit(context.Background(), func(context.Context) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
