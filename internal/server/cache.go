package server

import (
	"container/list"
	"sync"

	"symcluster/internal/faultinject"
	"symcluster/internal/graph"
)

// CacheKey identifies one symmetrization product: the graph it was
// computed from (by structural fingerprint) plus every Symmetrize
// parameter that changes the output. Two requests with the same key
// would recompute the identical undirected graph, so the second can be
// served from cache.
type CacheKey struct {
	Graph     uint64
	Method    string
	Alpha     float64
	Beta      float64
	Threshold float64
}

// Cache is a mutex-guarded LRU of symmetrized graphs under a byte
// budget. Entries are charged their CSR storage cost; inserting past
// the budget evicts least-recently-used entries until the new entry
// fits. A single graph larger than the whole budget is never stored.
type Cache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	order  *list.List // front = most recent; values are *cacheEntry
	items  map[CacheKey]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key   CacheKey
	u     *graph.Undirected
	bytes int64
}

// NewCache returns a cache holding at most budget bytes of symmetrized
// graphs. A non-positive budget disables caching (every Get misses).
func NewCache(budget int64) *Cache {
	return &Cache{
		budget: budget,
		order:  list.New(),
		items:  make(map[CacheKey]*list.Element),
	}
}

// GraphBytes estimates the resident size of a symmetrized graph: the
// CSR arrays plus label headers. This is the quantity charged against
// the cache budget.
func GraphBytes(u *graph.Undirected) int64 {
	b := int64(len(u.Adj.RowPtr))*8 + int64(len(u.Adj.ColIdx))*4 + int64(len(u.Adj.Val))*8
	for _, l := range u.Labels {
		b += int64(len(l)) + 16
	}
	return b
}

// Get returns the cached graph for key, marking it most recently used.
// The "cache.get" fault site exercises delay and panic injection; Get
// has no error path, so injected errors are treated as misses.
func (c *Cache) Get(key CacheKey) (*graph.Undirected, bool) {
	if err := faultinject.Fire("cache.get"); err != nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).u, true
}

// Put inserts (or refreshes) the graph under key, evicting LRU entries
// until the budget holds. Oversized graphs are silently not cached.
// The "cache.put" fault site turns injected errors into dropped
// inserts (a legal cache behaviour callers must already tolerate).
func (c *Cache) Put(key CacheKey, u *graph.Undirected) {
	if err := faultinject.Fire("cache.put"); err != nil {
		return
	}
	bytes := GraphBytes(u)
	c.mu.Lock()
	defer c.mu.Unlock()
	if bytes > c.budget {
		return
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.used += bytes - ent.bytes
		ent.u, ent.bytes = u, bytes
		c.order.MoveToFront(el)
	} else {
		ent := &cacheEntry{key: key, u: u, bytes: bytes}
		c.items[key] = c.order.PushFront(ent)
		c.used += bytes
	}
	for c.used > c.budget {
		c.evictOldest()
	}
}

// evictOldest removes the least-recently-used entry. Callers hold c.mu.
func (c *Cache) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.order.Remove(el)
	delete(c.items, ent.key)
	c.used -= ent.bytes
	c.evictions++
}

// Len returns the number of cached graphs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes returns the bytes currently charged against the budget.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Stats returns cumulative hit, miss and eviction counts.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
