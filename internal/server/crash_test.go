package server_test

// Crash-recovery end-to-end: build the real symclusterd binary, start
// it with a durable data dir and a fault-injected slow MCL kernel,
// submit an async job, SIGKILL the process mid-iteration, restart on
// the same data dir, and require that the job (a) completes, (b)
// resumed from a checkpoint at iteration > 0 (asserted via the
// resume_iter trace attribute), and (c) produced exactly the
// assignments an uninterrupted run gives.
//
// The test is wall-clock bounded by the fault delay (50ms × ~30
// iterations before the kill) and runs under -short: crash safety is
// the PR's core claim, so `make check` exercises it every time.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"symcluster/internal/server"
)

// buildSymclusterd compiles the daemon once per test run into a temp
// dir and returns the binary path.
func buildSymclusterd(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "symclusterd")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/symclusterd")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building symclusterd: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves an ephemeral port and releases it for the daemon.
// The tiny window between Close and the daemon's bind is acceptable in
// tests.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches the binary and waits for /healthz. The returned
// cmd is running; callers kill or SIGTERM it.
func startDaemon(t *testing.T, bin, addr, dataDir string, faults string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-data-dir", dataDir,
		"-checkpoint-iters", "1",
		"-workers", "1",
		"-log-format", "text", "-log-level", "warn",
	)
	cmd.Env = append(os.Environ(), "SYMCLUSTER_FAULTS="+faults)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("daemon never became healthy")
	return nil
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// metricValue extracts one un-labelled metric's value from an
// exposition body, or -1 when absent.
func metricValue(body []byte, name string) int64 {
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err == nil {
				return v
			}
		}
	}
	return -1
}

// TestCrashRecoveryResume deliberately has no testing.Short() skip:
// crash recovery is cheap (seconds) and is the hard acceptance gate
// for durable jobs, so `make check` runs it even under -short.
func TestCrashRecoveryResume(t *testing.T) {
	bin := buildSymclusterd(t)
	dataDir := t.TempDir()
	base := "http://"

	// Phase 1: slow kernel (50ms per MCL iteration), checkpoint every
	// iteration, then SIGKILL mid-run.
	addr1 := freeAddr(t)
	d1 := startDaemon(t, bin, addr1, dataDir, "mcl.iterate=delay:50ms")

	edges := blockEdges()
	resp, err := http.Post(base+addr1+"/v1/graphs", "text/plain", strings.NewReader(edges))
	if err != nil {
		t.Fatal(err)
	}
	var ginfo server.GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&ginfo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, _ := json.Marshal(server.ClusterRequest{
		GraphID: ginfo.ID, Method: "dd", Algorithm: "mcl", Seed: 5, Async: true,
	})
	resp, err = http.Post(base+addr1+"/v1/cluster", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	var ref server.JobRef
	if err := json.NewDecoder(resp.Body).Decode(&ref); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ref.JobID == "" {
		t.Fatal("no job id")
	}

	// Wait until at least two checkpoints are journaled, so the last
	// saved iteration is ≥ 1 and a real mid-run resume is possible.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := getBody(t, base+addr1+"/metrics")
		if metricValue(body, "symclusterd_checkpoints_total") >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoints observed before kill deadline")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// SIGKILL: no drain, no requeue append — recovery must come from
	// the WAL replay coercing the running job back to pending.
	if err := d1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d1.Wait()

	// Phase 2: restart on the same data dir, kernel at full speed.
	addr2 := freeAddr(t)
	d2 := startDaemon(t, bin, addr2, dataDir, "")
	defer func() {
		d2.Process.Signal(syscall.SIGTERM)
		d2.Wait()
	}()

	// The replayed job must complete.
	var done server.JobInfo
	deadline = time.Now().Add(30 * time.Second)
	for {
		code, body := getBody(t, base+addr2+"/v1/jobs/"+ref.JobID)
		if code == http.StatusOK {
			if err := json.Unmarshal(body, &done); err != nil {
				t.Fatal(err)
			}
			if done.State == "done" {
				break
			}
			if done.State == "failed" || done.State == "canceled" {
				t.Fatalf("replayed job ended %q: %s", done.State, done.Error)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed job stuck in %q", done.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if done.Result == nil || len(done.Result.Assign) == 0 {
		t.Fatal("replayed job finished without assignments")
	}

	// It must have resumed mid-run, not restarted from scratch.
	_, trace := getBody(t, base+addr2+"/v1/jobs/"+ref.JobID+"/trace")
	m := regexp.MustCompile(`"resume_iter":\s*(\d+)`).FindSubmatch(trace)
	if m == nil {
		t.Fatalf("trace has no resume_iter attribute:\n%s", trace)
	}
	if iter, _ := strconv.Atoi(string(m[1])); iter == 0 {
		t.Fatalf("resume_iter = 0: the job restarted from scratch\n%s", trace)
	}

	// The resumed answer equals an uninterrupted run with the same
	// seed on the same daemon.
	syncReq, _ := json.Marshal(server.ClusterRequest{
		GraphID: ginfo.ID, Method: "dd", Algorithm: "mcl", Seed: 5,
	})
	resp, err = http.Post(base+addr2+"/v1/cluster", "application/json", bytes.NewReader(syncReq))
	if err != nil {
		t.Fatal(err)
	}
	var baseResp server.ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&baseResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fmt.Sprint(done.Result.Assign) != fmt.Sprint(baseResp.Assign) {
		t.Fatalf("resumed assignments %v != uninterrupted %v", done.Result.Assign, baseResp.Assign)
	}

	// The idempotency key from before the crash must still dedup after
	// replay (satellite d, e2e flavor): resubmitting the same async
	// request with a key twice yields one job id.
	for i, want := 0, ""; i < 2; i++ {
		hr, _ := http.NewRequest(http.MethodPost, base+addr2+"/v1/cluster", bytes.NewReader(req))
		hr.Header.Set("Content-Type", "application/json")
		hr.Header.Set("Idempotency-Key", "crash-retry")
		r2, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		var rr server.JobRef
		if err := json.NewDecoder(r2.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if i == 0 {
			want = rr.JobID
		} else if rr.JobID != want {
			t.Fatalf("post-crash duplicate key produced jobs %q and %q", want, rr.JobID)
		}
	}
}

// blockEdges mirrors blockEdgeList(4, 30, 7) from the in-process
// durability tests; duplicated here because this file is in the
// external test package (it consumes the server package like a real
// client).
func blockEdges() string {
	x := uint64(7)
	next := func() uint64 { x ^= x << 13; x ^= x >> 7; x ^= x << 17; return x }
	var b strings.Builder
	const blocks, size = 4, 30
	n := blocks * size
	for i := 0; i < n; i++ {
		bi := i / size
		for d := 0; d < 6; d++ {
			var j int
			if d < 4 {
				j = bi*size + int(next()%uint64(size))
			} else {
				j = int(next() % uint64(n))
			}
			if j != i {
				fmt.Fprintf(&b, "%d %d\n", i, j)
			}
		}
	}
	return b.String()
}
