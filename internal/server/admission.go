package server

import (
	"fmt"
	"net/http"

	symcluster "symcluster"
)

// Admission control: before a clustering request is queued, its working
// set is estimated from the registered graph's degree profile, and
// requests whose estimate exceeds Config.MaxJobBytes are rejected with
// 413 instead of being allowed to exhaust the process.
//
// The estimates are deliberate upper bounds. The dominant allocation of
// every method is sparse-matrix storage, so sizes are expressed in CSR
// bytes; for the product-based symmetrizations (Bibliometric and
// DegreeDiscounted) the output nonzero count is bounded by the SpGEMM
// flop count — Σ_j colCount(j)² for AAᵀ and Σ_i rowCount(i)² for AᵀA —
// capped at the dense n². Pruning (Threshold > 0) only shrinks the true
// working set, so a request admitted by the bound is safe and a
// rejected request reports the worst case it could have reached.

// csrBytes is the resident size of an n-row CSR matrix with nnz
// entries: an (n+1)-element int64 row-pointer array plus an int32
// column index and a float64 value per entry.
func csrBytes(n int, nnz int64) int64 {
	return 8*int64(n+1) + 12*nnz
}

// productFlops returns the SpGEMM flop bounds for the two self-products
// of the bibliometric family: coupling = Σ_j colCount(j)² bounds
// nnz(AAᵀ), cocitation = Σ_i rowCount(i)² bounds nnz(AᵀA). Both are
// additionally capped at n² by the caller.
func productFlops(m *symcluster.Matrix) (coupling, cocitation int64) {
	for _, c := range m.ColCounts() {
		coupling += int64(c) * int64(c)
	}
	for _, r := range m.RowCounts() {
		cocitation += int64(r) * int64(r)
	}
	return coupling, cocitation
}

// minInt64 avoids pulling in generics helpers for one comparison.
func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// estimateJobBytes bounds the peak extra memory a clustering run may
// allocate: the symmetrized graph (per-method, see package comment)
// plus the clustering substrate's working state.
func estimateJobBytes(rg *registeredGraph, method symcluster.SymMethod, algo symcluster.Algorithm) int64 {
	n := rg.info.Nodes
	nnz := int64(rg.info.Edges)
	dense := int64(n) * int64(n)

	var symBytes int64
	switch method {
	case symcluster.AAT:
		// U = A + Aᵀ: at most 2·nnz entries.
		symBytes = csrBytes(n, 2*nnz)
	case symcluster.RandomWalk:
		// Transition matrix + (ΠP + PᵀΠ)/2 (same structure as A + Aᵀ)
		// plus a handful of n-length iteration vectors.
		symBytes = csrBytes(n, nnz) + csrBytes(n, 2*nnz) + 32*int64(n)
	case symcluster.Bibliometric, symcluster.DegreeDiscounted:
		// Both products live at once while they are summed; the sum is
		// bounded by their combined size. DegreeDiscounted only rescales
		// the factors, so its sparsity bound matches Bibliometric's.
		coupling := minInt64(rg.couplingFlops, dense)
		cocit := minInt64(rg.cocitFlops, dense)
		total := minInt64(coupling+cocit, dense)
		symBytes = csrBytes(n, coupling) + csrBytes(n, cocit) + csrBytes(n, total)
	default:
		symBytes = csrBytes(n, 2*nnz)
	}

	var clusterBytes int64
	switch algo {
	case symcluster.MLRMCL:
		// The pruned MCL flow matrix holds at most MaxPerColumn (30)
		// entries per column, doubled for the in-progress expansion.
		clusterBytes = 2 * csrBytes(n, 30*int64(n))
	default:
		// Metis/Graclus coarsening hierarchies sum to at most ~2× the
		// input graph across geometrically shrinking levels.
		clusterBytes = 2 * csrBytes(n, 2*nnz)
	}
	return symBytes + clusterBytes
}

// admit applies the byte budget to one validated request. A nil return
// admits the job; otherwise the error is a 413 apiError carrying the
// estimate so clients can see how far over budget the request was.
func (s *Server) admit(rg *registeredGraph, method symcluster.SymMethod, algo symcluster.Algorithm) error {
	if s.cfg.MaxJobBytes <= 0 {
		return nil
	}
	est := estimateJobBytes(rg, method, algo)
	if est <= s.cfg.MaxJobBytes {
		return nil
	}
	s.metrics.IncAdmissionRejected()
	return &apiError{
		code: http.StatusRequestEntityTooLarge,
		err: fmt.Errorf("estimated working set %d bytes exceeds job budget %d bytes (method %q over %d nodes / %d edges); raise -max-job-mb or prune the graph",
			est, s.cfg.MaxJobBytes, method, rg.info.Nodes, rg.info.Edges),
	}
}
