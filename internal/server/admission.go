package server

import (
	"fmt"
	"net/http"

	"symcluster/internal/pipeline"
)

// Admission control: before a clustering request is queued, its working
// set is estimated from the registered graph's degree profile, and
// requests whose estimate exceeds Config.MaxJobBytes are rejected with
// 413 instead of being allowed to exhaust the process.
//
// The byte estimates come from the pipeline registry's per-stage cost
// models (Symmetrizer.CostModel + Clusterer.CostModel), so a newly
// registered stage carries its admission bound with it and this file
// never needs to know the catalog. Directed-input substrates skip the
// symmetrizer's share. The models are deliberate upper bounds: an
// admitted request is safe, and a rejected one reports the worst case
// it could have reached.

// admit applies the byte budget to one validated request and returns
// the working-set estimate, which the queue shedder charges against
// Config.MaxQueueBytes while the job waits for a worker. sym is nil
// when the substrate clusters the directed graph directly. A nil error
// admits the job; otherwise the error is a 413 apiError carrying the
// estimate so clients can see how far over budget the request was.
func (s *Server) admit(rg *registeredGraph, sym pipeline.Symmetrizer, cl pipeline.Clusterer, k int) (int64, error) {
	est := pipeline.EstimateJobBytes(sym, cl, rg.stats.WithK(k))
	if s.cfg.MaxJobBytes <= 0 || est <= s.cfg.MaxJobBytes {
		return est, nil
	}
	s.metrics.IncAdmissionRejected()
	stage := cl.Name()
	if sym != nil && !cl.AcceptsDirected() {
		stage = sym.Name() + "+" + stage
	}
	return est, &apiError{
		code: http.StatusRequestEntityTooLarge,
		err: fmt.Errorf("estimated working set %d bytes exceeds job budget %d bytes (%s over %d nodes / %d edges); raise -max-job-mb or prune the graph",
			est, s.cfg.MaxJobBytes, stage, rg.info.Nodes, rg.info.Edges),
	}
}
