package server

import (
	"fmt"
	"net/http"

	"symcluster/internal/csr"
	"symcluster/internal/pipeline"
)

// Admission control: before a clustering request is queued, its working
// set is estimated from the registered graph's degree profile. A
// request whose in-core estimate fits Config.MaxJobBytes runs in core,
// as before. One that does not is no longer rejected outright: when the
// symmetrizer is out-of-core capable, the job is admitted on the
// out-of-core path — the large operands become memory-mapped files and
// only the (pruned) products stay resident — and 413 remains only for
// the hard budgets no execution mode can evade: a method with no
// out-of-core kernel, or a projected spill footprint over
// Config.MaxSpillBytes.
//
// The byte estimates come from the pipeline registry's per-stage cost
// models (Symmetrizer.CostModel / OutOfCoreCost + Clusterer.CostModel),
// so a newly registered stage carries its admission bounds with it and
// this file never needs to know the catalog. Directed-input substrates
// skip the symmetrizer's share. The models are deliberate upper bounds:
// an admitted request is safe, and a rejected one reports the worst
// case it could have reached.

// spillFactor bounds an out-of-core run's scratch footprint in units of
// the input's file size: the input copy (worst case, when the graph has
// no on-disk file yet), the optional self-loop-augmented copy, and one
// shared transpose — the fused kernels fold the scalings in, so no
// scaled-factor files exist — plus external-sort runs for the
// transpose, which hold the same triplets again.
const spillFactor = 4

// admit applies the byte budgets to one validated request and returns
// the working-set estimate (which the queue shedder charges against
// Config.MaxQueueBytes while the job waits) and whether the run must go
// out-of-core. sym is nil when the substrate clusters the directed
// graph directly. A nil error admits the job; otherwise the error is a
// 413 apiError carrying the estimate so clients can see how far over
// budget the request was.
func (s *Server) admit(rg *registeredGraph, sym pipeline.Symmetrizer, cl pipeline.Clusterer, k int) (int64, bool, error) {
	gs := rg.stats.WithK(k)
	est := pipeline.EstimateJobBytes(sym, cl, gs)
	if s.cfg.MaxJobBytes <= 0 || est <= s.cfg.MaxJobBytes {
		return est, false, nil
	}

	stage := cl.Name()
	symShare := sym != nil && !cl.AcceptsDirected()
	if symShare {
		stage = sym.Name() + "+" + stage
	}

	// Over the in-core budget. The symmetrizer is the stage the
	// estimate blames (the substrate costs are input-sized); if it can
	// run out-of-core, re-estimate with its resident bound.
	if symShare {
		if oocSym, capable := sym.OutOfCoreCost(gs); capable {
			spill := spillFactor * csr.FileBytes(gs.Nodes, gs.Edges)
			if s.cfg.MaxSpillBytes > 0 && spill > s.cfg.MaxSpillBytes {
				s.metrics.IncAdmissionRejected()
				return est, false, &apiError{
					code: http.StatusRequestEntityTooLarge,
					err: fmt.Errorf("projected out-of-core spill %d bytes exceeds disk budget %d bytes (%s over %d nodes / %d edges); raise -max-spill-mb or prune the graph",
						spill, s.cfg.MaxSpillBytes, stage, rg.info.Nodes, rg.info.Edges),
				}
			}
			return oocSym + cl.CostModel(gs), true, nil
		}
	}

	s.metrics.IncAdmissionRejected()
	return est, false, &apiError{
		code: http.StatusRequestEntityTooLarge,
		err: fmt.Errorf("estimated working set %d bytes exceeds job budget %d bytes and %s cannot run out-of-core; raise -max-job-mb or prune the graph (%d nodes / %d edges)",
			est, s.cfg.MaxJobBytes, stage, rg.info.Nodes, rg.info.Edges),
	}
}
