package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"symcluster/internal/obs"
)

// TestObservabilityEndToEnd exercises the full observability surface
// the way an operator would wire it: a file-backed trace sink (the
// daemon's -trace-log), the job trace endpoint, kernel histograms on
// /metrics, and a CPU profile from the pprof debug mux.
func TestObservabilityEndToEnd(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "traces.jsonl")
	f, err := os.OpenFile(traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sink := obs.NewTraceSink(f, 8)

	s := mustNew(t, Config{Workers: 2, TraceSink: sink})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	info := registerFigure1(t, ts)

	// One sync run and one async run: both must reach the sink.
	resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
		GraphID: info.ID, Method: "rw", Algorithm: "mcl", Inflation: 2, Seed: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
		GraphID: info.ID, Method: "dd", Algorithm: "graclus", K: 3, Seed: 1,
		Async: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async: status %d", resp.StatusCode)
	}
	ref := decode[JobRef](t, resp)
	waitJobDone(t, ts, ref)

	// The async job's trace is served over HTTP and roots at "request".
	tresp, err := http.Get(ts.URL + ref.Location + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("job trace: status %d", tresp.StatusCode)
	}
	jobRoot := decode[*obs.SpanNode](t, tresp)
	if jobRoot.Name != "request" || findSpan(jobRoot, "cluster") == nil {
		t.Fatalf("job trace root = %q, children missing cluster stage", jobRoot.Name)
	}

	// The JSONL file holds one parseable span tree per run.
	if got := sink.Exported(); got != 2 {
		t.Fatalf("sink exported %d traces, want 2", got)
	}
	raw, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	lines := 0
	sc := bufio.NewScanner(raw)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var node obs.SpanNode
		if err := json.Unmarshal(sc.Bytes(), &node); err != nil {
			t.Fatalf("trace line %d does not parse: %v", lines+1, err)
		}
		if node.Name != "request" || node.TraceID == "" {
			t.Fatalf("trace line %d: root %q trace_id %q", lines+1, node.Name, node.TraceID)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != 2 {
		t.Fatalf("trace log holds %d lines, want 2", lines)
	}

	// Kernel instrumentation reached /metrics: the MCL run recorded
	// residuals and the rw symmetrization recorded a walk solve.
	metrics := scrapeMetrics(t, ts.URL)
	for _, fam := range []string{
		"symcluster_mcl_residual_count",
		"symcluster_walk_power_iterations_count",
		"symcluster_symmetrize_nnz_out_count",
	} {
		if !strings.Contains(metrics, fam) {
			t.Errorf("/metrics missing %s after instrumented runs", fam)
		}
	}
}

// TestDebugMuxServesProfiles hits the pprof mux the daemon mounts on
// -debug-addr: a short CPU profile and the heap profile must both
// come back non-empty.
func TestDebugMuxServesProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 1s CPU profile in -short mode")
	}
	dbg := httptest.NewServer(obs.DebugMux())
	defer dbg.Close()

	resp, err := http.Get(dbg.URL + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("cpu profile: status %d, %d bytes", resp.StatusCode, len(body))
	}

	resp, err = http.Get(dbg.URL + "/debug/pprof/heap")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("heap profile: status %d, %d bytes", resp.StatusCode, len(body))
	}
}

func waitJobDone(t *testing.T, ts *httptest.Server, ref JobRef) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		jresp, err := http.Get(ts.URL + ref.Location)
		if err != nil {
			t.Fatal(err)
		}
		job := decode[JobInfo](t, jresp)
		switch job.State {
		case string(JobDone):
			return
		case string(JobFailed), string(JobCanceled):
			t.Fatalf("job ended %s: %s", job.State, job.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never finished")
}
