package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics aggregates service counters for the /metrics text exposition.
// The format follows the Prometheus text conventions (counter and gauge
// lines with label sets) without importing any client library, keeping
// the daemon stdlib-only.
type Metrics struct {
	mu       sync.Mutex
	requests map[requestKey]int64
	latency  map[string]*latencyAgg
	stages   map[stageKey]*latencyAgg

	admissionRejected atomic.Int64
}

type requestKey struct {
	route string
	code  int
}

// stageKey labels a pipeline-stage observation: stage is "symmetrize"
// or "cluster", name is the registry's canonical entry name.
type stageKey struct {
	stage string
	name  string
}

type latencyAgg struct {
	sum   float64 // seconds
	count int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests: make(map[requestKey]int64),
		latency:  make(map[string]*latencyAgg),
		stages:   make(map[stageKey]*latencyAgg),
	}
}

// ObserveStage records the wall clock of one executed pipeline stage
// (cache hits are not observed — only work actually done).
func (m *Metrics) ObserveStage(stage, name string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	agg := m.stages[stageKey{stage, name}]
	if agg == nil {
		agg = &latencyAgg{}
		m.stages[stageKey{stage, name}] = agg
	}
	agg.sum += seconds
	agg.count++
}

// ObserveRequest records one served request on a route with its status
// code and duration.
func (m *Metrics) ObserveRequest(route string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{route, code}]++
	agg := m.latency[route]
	if agg == nil {
		agg = &latencyAgg{}
		m.latency[route] = agg
	}
	agg.sum += d.Seconds()
	agg.count++
}

// IncAdmissionRejected counts one clustering request rejected by the
// working-set byte budget.
func (m *Metrics) IncAdmissionRejected() { m.admissionRejected.Add(1) }

// WriteTo renders the exposition. The caller supplies the live gauges
// (cache, pool, jobs) so Metrics itself holds only request counters.
func (m *Metrics) WriteTo(w io.Writer, cache *Cache, pool *Pool, jobs *JobStore) {
	m.mu.Lock()
	reqKeys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].route != reqKeys[j].route {
			return reqKeys[i].route < reqKeys[j].route
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	latRoutes := make([]string, 0, len(m.latency))
	for r := range m.latency {
		latRoutes = append(latRoutes, r)
	}
	sort.Strings(latRoutes)
	stageKeys := make([]stageKey, 0, len(m.stages))
	for k := range m.stages {
		stageKeys = append(stageKeys, k)
	}
	sort.Slice(stageKeys, func(i, j int) bool {
		if stageKeys[i].stage != stageKeys[j].stage {
			return stageKeys[i].stage < stageKeys[j].stage
		}
		return stageKeys[i].name < stageKeys[j].name
	})

	fmt.Fprintln(w, "# TYPE symclusterd_requests_total counter")
	for _, k := range reqKeys {
		fmt.Fprintf(w, "symclusterd_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, m.requests[k])
	}
	fmt.Fprintln(w, "# TYPE symclusterd_request_seconds summary")
	for _, r := range latRoutes {
		agg := m.latency[r]
		fmt.Fprintf(w, "symclusterd_request_seconds_sum{route=%q} %.6f\n", r, agg.sum)
		fmt.Fprintf(w, "symclusterd_request_seconds_count{route=%q} %d\n", r, agg.count)
	}
	fmt.Fprintln(w, "# TYPE symclusterd_stage_seconds summary")
	for _, k := range stageKeys {
		agg := m.stages[k]
		fmt.Fprintf(w, "symclusterd_stage_seconds_sum{stage=%q,name=%q} %.6f\n", k.stage, k.name, agg.sum)
		fmt.Fprintf(w, "symclusterd_stage_seconds_count{stage=%q,name=%q} %d\n", k.stage, k.name, agg.count)
	}
	m.mu.Unlock()

	hits, misses, evictions := cache.Stats()
	fmt.Fprintln(w, "# TYPE symclusterd_cache_hits_total counter")
	fmt.Fprintf(w, "symclusterd_cache_hits_total %d\n", hits)
	fmt.Fprintln(w, "# TYPE symclusterd_cache_misses_total counter")
	fmt.Fprintf(w, "symclusterd_cache_misses_total %d\n", misses)
	fmt.Fprintln(w, "# TYPE symclusterd_cache_evictions_total counter")
	fmt.Fprintf(w, "symclusterd_cache_evictions_total %d\n", evictions)
	fmt.Fprintln(w, "# TYPE symclusterd_cache_bytes gauge")
	fmt.Fprintf(w, "symclusterd_cache_bytes %d\n", cache.Bytes())
	fmt.Fprintln(w, "# TYPE symclusterd_cache_entries gauge")
	fmt.Fprintf(w, "symclusterd_cache_entries %d\n", cache.Len())

	fmt.Fprintln(w, "# TYPE symclusterd_queue_depth gauge")
	fmt.Fprintf(w, "symclusterd_queue_depth %d\n", pool.QueueDepth())
	fmt.Fprintln(w, "# TYPE symclusterd_workers_busy gauge")
	fmt.Fprintf(w, "symclusterd_workers_busy %d\n", pool.Busy())
	fmt.Fprintln(w, "# TYPE symclusterd_workers_total gauge")
	fmt.Fprintf(w, "symclusterd_workers_total %d\n", pool.Workers())
	fmt.Fprintln(w, "# TYPE symclusterd_panics_recovered_total counter")
	fmt.Fprintf(w, "symclusterd_panics_recovered_total %d\n", pool.PanicsRecovered())
	fmt.Fprintln(w, "# TYPE symclusterd_admission_rejected_total counter")
	fmt.Fprintf(w, "symclusterd_admission_rejected_total %d\n", m.admissionRejected.Load())
	fmt.Fprintln(w, "# TYPE symclusterd_jobs_expired_total counter")
	fmt.Fprintf(w, "symclusterd_jobs_expired_total %d\n", jobs.Expired())

	fmt.Fprintln(w, "# TYPE symclusterd_jobs gauge")
	counts := jobs.Counts()
	for _, st := range []JobState{JobPending, JobRunning, JobDone, JobFailed, JobCanceled} {
		fmt.Fprintf(w, "symclusterd_jobs{state=%q} %d\n", st, counts[st])
	}
}
