package server

import (
	"io"
	"runtime"
	"strconv"
	"time"

	"symcluster/internal/cluster"
	"symcluster/internal/csr"
	"symcluster/internal/obs"
)

// Metrics is the daemon's metric surface: an obs.Registry holding the
// request/stage histograms, admission counters, build info, and — via
// obs.WithMeter on request contexts — every kernel-level
// symcluster_* histogram the compute underneath records. The /metrics
// exposition renders the registry plus the live cache/pool/job gauges,
// which are read at scrape time rather than double-bookkept.
//
// Naming convention: symclusterd_* for serving metrics owned by this
// package, symcluster_* for library/kernel metrics recorded through
// the hooks in internal/obs (see DESIGN.md §11).
type Metrics struct {
	reg *obs.Registry

	requests         *obs.Counter
	requestSeconds   *obs.Histogram
	stageSeconds     *obs.Histogram
	cacheObjectBytes *obs.Histogram
	admissionReject  *obs.Counter

	// Overload-survival families (PR 10): deadline fast-fails, breaker
	// positions and denied retries.
	deadlineRejected *obs.Counter
	breakerState     *obs.Gauge
	retryExhausted   *obs.Counter

	// Cluster-mode families. Registered unconditionally (zero in
	// single-node mode) so dashboards need not branch on deployment.
	proxyRequests  *obs.Counter
	proxyRetries   *obs.Counter
	peerUnhealthy  *obs.Gauge
	jobsAdopted    *obs.Counter
	uploadsExpired *obs.Counter
}

// NewMetrics returns a registry with the daemon families registered.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		reg: reg,
		requests: reg.Counter("symclusterd_requests_total",
			"Requests served, by route pattern and status code.", "route", "code"),
		requestSeconds: reg.Histogram("symclusterd_request_seconds",
			"Request latency in seconds, by route pattern.", obs.DurationBuckets, "route"),
		stageSeconds: reg.Histogram("symclusterd_stage_seconds",
			"Executed pipeline-stage wall clock in seconds (cache hits are not observed).", obs.DurationBuckets, "stage", "name"),
		cacheObjectBytes: reg.Histogram("symclusterd_cache_object_bytes",
			"Resident size of symmetrized graphs inserted into the cache.", obs.SizeBuckets),
		admissionReject: reg.Counter("symclusterd_admission_rejected_total",
			"Clustering requests rejected by the working-set byte budget."),
		deadlineRejected: reg.Counter("symclusterd_deadline_rejected_total",
			"Requests fast-failed with 504 because their propagated deadline expired (at submit or while queued) or their remaining budget cannot fit the estimated runtime."),
		breakerState: reg.Gauge("symclusterd_breaker_state",
			"Circuit-breaker position per peer: 0 closed, 1 half-open, 2 open.", "peer"),
		retryExhausted: reg.Counter("symclusterd_retry_budget_exhausted_total",
			"Retries denied because the token-bucket retry budget was empty."),
		proxyRequests: reg.Counter("symclusterd_proxy_requests_total",
			"Requests forwarded to the owning peer, by peer and relayed status code.", "peer", "code"),
		proxyRetries: reg.Counter("symclusterd_proxy_retries_total",
			"Proxy forward attempts retried after a transport error or shed status."),
		peerUnhealthy: reg.Gauge("symclusterd_peer_unhealthy",
			"1 while the named peer is considered down by this node's health checker.", "peer"),
		jobsAdopted: reg.Counter("symclusterd_jobs_adopted_total",
			"Pending jobs adopted from a dead peer's WAL and resumed locally."),
		uploadsExpired: reg.Counter("symclusterd_upload_sessions_expired_total",
			"Chunked-upload sessions reaped after exceeding the idle TTL."),
	}
	// Touch the unlabeled counters so the families appear in the
	// exposition before the first event (tests and dashboards rely on
	// the zero line).
	m.admissionReject.Add(0)
	m.deadlineRejected.Add(0)
	m.retryExhausted.Add(0)
	m.proxyRetries.Add(0)
	m.jobsAdopted.Add(0)
	m.uploadsExpired.Add(0)
	reg.Gauge("symclusterd_build_info",
		"Build metadata; the value is always 1.", "version", "go_version").
		Set(1, obs.Version, runtime.Version())
	obs.RegisterRuntimeMetrics(reg, "symclusterd")
	return m
}

// Registry exposes the underlying obs registry; request contexts carry
// it (obs.WithMeter) so kernel hooks record into the same exposition.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// ObserveStage records the wall clock of one executed pipeline stage
// (cache hits are not observed — only work actually done).
func (m *Metrics) ObserveStage(stage, name string, seconds float64) {
	m.stageSeconds.Observe(seconds, stage, name)
}

// ObserveRequest records one served request on a route with its status
// code and duration.
func (m *Metrics) ObserveRequest(route string, code int, d time.Duration) {
	m.requests.Inc(route, strconv.Itoa(code))
	m.requestSeconds.Observe(d.Seconds(), route)
}

// ObserveCacheObject records the byte size of one cache insert.
func (m *Metrics) ObserveCacheObject(bytes int64) {
	m.cacheObjectBytes.Observe(float64(bytes))
}

// IncAdmissionRejected counts one clustering request rejected by the
// working-set byte budget.
func (m *Metrics) IncAdmissionRejected() { m.admissionReject.Inc() }

// IncDeadlineRejected counts one request fast-failed 504 by the
// deadline gate (expired at submit, unfittable budget, or expired in
// the queue).
func (m *Metrics) IncDeadlineRejected() { m.deadlineRejected.Inc() }

// SetBreakerState records one peer's circuit-breaker position.
func (m *Metrics) SetBreakerState(peer string, state cluster.BreakerState) {
	var v float64
	switch state {
	case cluster.BreakerHalfOpen:
		v = 1
	case cluster.BreakerOpen:
		v = 2
	}
	m.breakerState.Set(v, peer)
}

// IncRetryBudgetExhausted counts one denied retry.
func (m *Metrics) IncRetryBudgetExhausted() { m.retryExhausted.Inc() }

// RetryBudgetExhaustedValue reads the denied-retry counter back for the
// cluster status plane.
func (m *Metrics) RetryBudgetExhaustedValue() int64 { return int64(m.retryExhausted.Value()) }

// IncProxyRequest counts one request forwarded to a peer, labeled by
// the peer name and the status code relayed to the client (502 when the
// forward itself failed).
func (m *Metrics) IncProxyRequest(peer string, code int) {
	m.proxyRequests.Inc(peer, strconv.Itoa(code))
}

// IncProxyRetry counts one retried proxy forward attempt.
func (m *Metrics) IncProxyRetry() { m.proxyRetries.Inc() }

// SetPeerUnhealthy flips the named peer's unhealthy gauge.
func (m *Metrics) SetPeerUnhealthy(peer string, down bool) {
	v := 0.0
	if down {
		v = 1.0
	}
	m.peerUnhealthy.Set(v, peer)
}

// IncJobsAdopted counts one pending job adopted from a dead peer's WAL.
func (m *Metrics) IncJobsAdopted() { m.jobsAdopted.Inc() }

// JobsAdoptedValue reads the adoption counter back for the cluster
// status plane.
func (m *Metrics) JobsAdoptedValue() int64 { return int64(m.jobsAdopted.Value()) }

// IncUploadExpired counts one chunked-upload session reaped by the idle
// TTL sweeper.
func (m *Metrics) IncUploadExpired() { m.uploadsExpired.Inc() }

// WriteTo renders the exposition: the registry families first, then the
// live gauges read from the server's cache, pool, job store and WAL at
// scrape time.
func (m *Metrics) WriteTo(w io.Writer, s *Server) {
	cache, pool, jobs := s.cache, s.pool, s.jobs
	m.reg.WriteText(w)

	p := func(help, typ, name string, v int64) {
		io.WriteString(w, "# HELP "+name+" "+help+"\n")
		io.WriteString(w, "# TYPE "+name+" "+typ+"\n")
		io.WriteString(w, name+" "+strconv.FormatInt(v, 10)+"\n")
	}
	hits, misses, evictions := cache.Stats()
	p("Symmetrization cache hits.", "counter", "symclusterd_cache_hits_total", hits)
	p("Symmetrization cache misses.", "counter", "symclusterd_cache_misses_total", misses)
	p("Symmetrization cache evictions.", "counter", "symclusterd_cache_evictions_total", evictions)
	p("Bytes resident in the symmetrization cache.", "gauge", "symclusterd_cache_bytes", cache.Bytes())
	p("Entries resident in the symmetrization cache.", "gauge", "symclusterd_cache_entries", int64(cache.Len()))

	p("Tasks waiting for a worker.", "gauge", "symclusterd_queue_depth", int64(pool.QueueDepth()))
	p("Workers currently running a task.", "gauge", "symclusterd_workers_busy", int64(pool.Busy()))
	p("Worker-pool size.", "gauge", "symclusterd_workers_total", int64(pool.Workers()))
	p("Worker panics recovered.", "counter", "symclusterd_panics_recovered_total", pool.PanicsRecovered())
	p("Finished async jobs dropped by TTL expiry.", "counter", "symclusterd_jobs_expired_total", jobs.Expired())

	// Durability surface. The families are always present (zero without
	// -data-dir) so dashboards and the crash-recovery tests can poll
	// them unconditionally.
	p("Clustering requests shed by the queued-byte watermark.", "counter", "symclusterd_shed_total", s.shedTotal.Load())
	p("Clustering jobs admitted on the out-of-core path.", "counter", "symclusterd_ooc_jobs_total", s.oocTotal.Load())
	p("Bytes of binary CSR files currently memory-mapped.", "gauge", "symclusterd_csr_mapped_bytes", csr.MappedBytes())
	p("Rendered-JSON bytes retained in the in-memory trace ring.", "gauge", "symclusterd_trace_ring_bytes", s.traces.RingBytes())
	p("Summed working-set estimate of queued clustering jobs.", "gauge", "symclusterd_queue_bytes", s.queuedBytes.Load())
	p("Kernel checkpoints journaled to the WAL.", "counter", "symclusterd_checkpoints_total", jobs.CheckpointSaves())
	p("Interrupted jobs replayed as pending at startup.", "counter", "symclusterd_jobs_replayed_total", jobs.Replayed())
	var walBytes, walAppends, walCompactions int64
	if s.store != nil {
		walBytes = s.store.LogBytes()
		walAppends = s.store.Appends()
		walCompactions = s.store.Compactions()
	}
	p("Current size of the job WAL in bytes.", "gauge", "symclusterd_wal_bytes", walBytes)
	p("Records appended to the job WAL.", "counter", "symclusterd_wal_appends_total", walAppends)
	p("Job WAL compactions performed.", "counter", "symclusterd_wal_compactions_total", walCompactions)

	io.WriteString(w, "# HELP symclusterd_jobs Async jobs by state.\n")
	io.WriteString(w, "# TYPE symclusterd_jobs gauge\n")
	counts := jobs.Counts()
	for _, st := range []JobState{JobPending, JobRunning, JobDone, JobFailed, JobCanceled} {
		io.WriteString(w, "symclusterd_jobs{state=\""+string(st)+"\"} "+strconv.Itoa(counts[st])+"\n")
	}
}
