package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"symcluster/internal/faultinject"
)

// TestSpectralAlgorithmsOverHTTP brings the registry's full algorithm
// catalog to the wire: the spectral substrate (undirected, needs a
// method) and the two directed baselines (bestwcut, zhou) all serve
// through POST /v1/cluster.
func TestSpectralAlgorithmsOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	info := registerFigure1(t, ts)

	t.Run("spectral needs a method", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
			GraphID: info.ID, Method: "dd", Algorithm: "spectral", K: 3, Seed: 1,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		res := decode[ClusterResponse](t, resp)
		if res.Method != "dd" || res.Algorithm != "spectral" || res.K != 3 {
			t.Fatalf("response = %+v", res)
		}
		if res.Trace == nil || res.Trace.Symmetrizer != "dd" || res.Trace.Clusterer != "spectral" {
			t.Fatalf("trace = %+v", res.Trace)
		}
		if res.Trace.SymmetrizedNNZ == 0 {
			t.Fatal("trace missing symmetrized nnz")
		}
	})

	for _, algo := range []string{"bestwcut", "zhou"} {
		t.Run(algo+" bypasses symmetrization", func(t *testing.T) {
			// Method deliberately omitted: directed baselines consume
			// the graph as-is.
			resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
				GraphID: info.ID, Algorithm: algo, K: 3, Seed: 1,
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d, want 200", resp.StatusCode)
			}
			res := decode[ClusterResponse](t, resp)
			if res.Method != "" || res.Algorithm != algo {
				t.Fatalf("response = %+v", res)
			}
			if res.Nodes != 6 || res.UndirectedEdges != 0 || res.CacheHit {
				t.Fatalf("bypass fields: nodes=%d edges=%d cacheHit=%v",
					res.Nodes, res.UndirectedEdges, res.CacheHit)
			}
			if len(res.Assign) != 6 || res.K != 3 {
				t.Fatalf("assign=%v k=%d", res.Assign, res.K)
			}
			if res.Trace == nil || res.Trace.Symmetrizer != "" || res.Trace.SymmetrizedNNZ != 0 ||
				res.Trace.Clusterer != algo {
				t.Fatalf("trace = %+v", res.Trace)
			}
		})
	}

	t.Run("directed algo with explicit method still validates it", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
			GraphID: info.ID, Method: "nope", Algorithm: "zhou", K: 2, Seed: 1,
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("k is required", func(t *testing.T) {
		for _, algo := range []string{"spectral", "bestwcut", "zhou"} {
			resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
				GraphID: info.ID, Method: "dd", Algorithm: algo, Seed: 1,
			})
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s without k: status = %d, want 400", algo, resp.StatusCode)
			}
		}
	})

	t.Run("aliases resolve to the canonical name", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
			GraphID: info.ID, Method: "degree-discounted", Algorithm: "spectral-ncut", K: 3, Seed: 1,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		res := decode[ClusterResponse](t, resp)
		if res.Method != "dd" || res.Algorithm != "spectral" {
			t.Fatalf("aliases not canonicalised: %+v", res)
		}
	})
}

// TestStageMetricsExposed checks the per-stage timing summaries reach
// /metrics with the canonical stage and name labels.
func TestStageMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	info := registerFigure1(t, ts)
	resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
		GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 1,
	})
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
		GraphID: info.ID, Algorithm: "bestwcut", K: 2, Seed: 1,
	})
	resp.Body.Close()

	metrics := fetchMetrics(t, ts)
	for _, want := range []string{
		`symclusterd_stage_seconds_count{stage="symmetrize",name="dd"} 1`,
		`symclusterd_stage_seconds_count{stage="cluster",name="mcl"} 1`,
		`symclusterd_stage_seconds_count{stage="cluster",name="bestwcut"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestSpectralKernelFaultFailsRequestNotDaemon arms the Lanczos fault
// site: an injected eigensolver error surfaces as 500 on the new
// directed endpoints, and the daemon serves the same request once the
// fault is cleared.
func TestSpectralKernelFaultFailsRequestNotDaemon(t *testing.T) {
	defer faultinject.Reset()
	_, ts := newTestServer(t, Config{Workers: 1})
	info := registerFigure1(t, ts)
	req := ClusterRequest{GraphID: info.ID, Algorithm: "zhou", K: 2, Seed: 1}

	faultinject.Set("spectral.lanczos", faultinject.Fault{Mode: faultinject.Error})
	resp := postJSON(t, ts.URL+"/v1/cluster", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if apiErr := decode[ErrorResponse](t, resp); !strings.Contains(apiErr.Error, "injected") {
		t.Fatalf("error %q does not name the injected fault", apiErr.Error)
	}

	faultinject.Reset()
	resp = postJSON(t, ts.URL+"/v1/cluster", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after recovery = %d, want 200", resp.StatusCode)
	}
	if res := decode[ClusterResponse](t, resp); len(res.Assign) != 6 {
		t.Fatalf("assign = %v", res.Assign)
	}
}

// TestCancellationReleasesWorkerMidSpectralRun mirrors the MCL
// cancellation chaos test for the directed spectral path: a stalled
// Lanczos step keeps the kernel mid-run while the client disconnects,
// and the worker must come back.
func TestCancellationReleasesWorkerMidSpectralRun(t *testing.T) {
	defer faultinject.Reset()
	s := mustNew(t, Config{Workers: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	info := s.RegisterGraph(mustFigure1Graph(t))
	faultinject.Set("spectral.lanczos", faultinject.Fault{Mode: faultinject.Delay, Delay: 200 * time.Millisecond})

	body, _ := json.Marshal(ClusterRequest{GraphID: info.ID, Algorithm: "bestwcut", K: 2, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest("POST", "/v1/cluster", strings.NewReader(string(body))).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(done)
	}()

	waitFor(t, 5*time.Second, "kernel running", func() bool {
		return s.pool.Busy() == 1 && faultinject.Hits("spectral.lanczos") > 0
	})
	cancel()

	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("handler did not return after cancellation")
	}
	if rec.Code != 499 {
		t.Fatalf("status = %d, want 499", rec.Code)
	}
	waitFor(t, 2*time.Second, "worker released", func() bool { return s.pool.Busy() == 0 })
}
