package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"symcluster/internal/faultinject"
	"symcluster/internal/leakcheck"
)

// The tests in this file arm the faultinject registry, which is global
// process state; Go runs tests in a package sequentially unless they
// opt into t.Parallel, and none here do. Every test that arms a fault
// defers a Reset so the registry is clean before the test server's
// drain cleanup runs.

// fetchMetrics returns the /metrics exposition as a string.
func fetchMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: not reached within %v", what, d)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestKernelPanicRecovered injects a panic inside the MCL iteration
// loop and checks the blast radius: the request fails with 500 and a
// short message (no stack leaked to the client), the panic is counted
// in /metrics, and the daemon keeps serving — the identical request
// succeeds once the fault is disarmed.
func TestKernelPanicRecovered(t *testing.T) {
	defer faultinject.Reset()
	_, ts := newTestServer(t, Config{Workers: 1})
	info := registerFigure1(t, ts)
	req := ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 1}

	faultinject.Set("mcl.iterate", faultinject.Fault{Mode: faultinject.Panic})
	resp := postJSON(t, ts.URL+"/v1/cluster", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	apiErr := decode[ErrorResponse](t, resp)
	if !strings.Contains(apiErr.Error, "panic") {
		t.Fatalf("error %q does not mention the panic", apiErr.Error)
	}
	if strings.Contains(apiErr.Error, "goroutine ") {
		t.Fatalf("stack trace leaked to the client: %q", apiErr.Error)
	}

	faultinject.Reset()
	resp = postJSON(t, ts.URL+"/v1/cluster", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after recovery = %d, want 200", resp.StatusCode)
	}
	if res := decode[ClusterResponse](t, resp); len(res.Assign) != 6 {
		t.Fatalf("assign = %v", res.Assign)
	}

	if body := fetchMetrics(t, ts); !strings.Contains(body, "symclusterd_panics_recovered_total 1") {
		t.Fatalf("metrics missing recovered panic:\n%s", body)
	}
}

// TestWorkerPanicFailsAsyncJob checks the async path: a panicking task
// marks its job failed (not stuck pending/running forever) and the
// worker survives to run the next job.
func TestWorkerPanicFailsAsyncJob(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{Workers: 1})
	info := registerFigure1(t, ts)

	// Times: 1 — only the first task panics; the follow-up job must run.
	faultinject.Set("pool.task", faultinject.Fault{Mode: faultinject.Panic, Times: 1})
	req := ClusterRequest{GraphID: info.ID, Method: "bib", Algorithm: "mcl", Seed: 1, Async: true}
	resp := postJSON(t, ts.URL+"/v1/cluster", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async status = %d", resp.StatusCode)
	}
	ref := decode[JobRef](t, resp)

	waitFor(t, 5*time.Second, "job failed", func() bool {
		job, ok := s.jobs.Snapshot(ref.JobID)
		return ok && job.State == JobFailed
	})
	job, _ := s.jobs.Snapshot(ref.JobID)
	if !strings.Contains(job.Err, "panic") {
		t.Fatalf("job error %q does not mention the panic", job.Err)
	}

	// The same worker goroutine serves the next job successfully.
	resp = postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after panic = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	if s.pool.PanicsRecovered() != 1 {
		t.Fatalf("panics recovered = %d, want 1", s.pool.PanicsRecovered())
	}
}

// TestCancellationReleasesWorkerMidRun cancels a request while its
// kernel is iterating (every MCL iteration is slowed by an injected
// delay) and checks the whole unwind: the handler answers 499
// promptly, the kernel notices the cancelled context within about one
// iteration and frees the worker, and no goroutines are left behind
// (enforced by stack signature, not a raw count, via leakcheck).
func TestCancellationReleasesWorkerMidRun(t *testing.T) {
	leakcheck.Guard(t)
	defer faultinject.Reset()
	s := mustNew(t, Config{Workers: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	info := s.RegisterGraph(mustFigure1Graph(t))
	// A long stall on the first iteration guarantees the cancel lands
	// while the kernel is mid-run (hits are counted before the sleep).
	faultinject.Set("mcl.iterate", faultinject.Fault{Mode: faultinject.Delay, Delay: 200 * time.Millisecond})

	body, _ := json.Marshal(ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest("POST", "/v1/cluster", strings.NewReader(string(body))).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(done)
	}()

	// Cancel only once the kernel is demonstrably mid-iteration.
	waitFor(t, 5*time.Second, "kernel running", func() bool {
		return s.pool.Busy() == 1 && faultinject.Hits("mcl.iterate") > 0
	})
	cancel()

	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("handler did not return after cancellation")
	}
	if rec.Code != 499 {
		t.Fatalf("status = %d, want 499", rec.Code)
	}
	// The kernel polls ctx at each iteration boundary; one delayed
	// iteration bounds how long the worker stays occupied. The leak
	// guard's cleanup then verifies no goroutines survive the unwind.
	waitFor(t, 2*time.Second, "worker released", func() bool { return s.pool.Busy() == 0 })
}

// TestSlowKernelTimeout checks that a kernel slower than the request
// timeout surfaces as 504 and that drain still completes afterwards
// (the worker abandons the run at the next iteration, it is not stuck).
func TestSlowKernelTimeout(t *testing.T) {
	defer faultinject.Reset()
	_, ts := newTestServer(t, Config{Workers: 1, RequestTimeout: 50 * time.Millisecond})
	info := registerFigure1(t, ts)

	// One stalled iteration outlasts the whole request budget.
	faultinject.Set("mcl.iterate", faultinject.Fault{Mode: faultinject.Delay, Delay: 250 * time.Millisecond})
	resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
}

// TestInjectedErrorFailsRequestNotDaemon checks the error fault mode
// end to end: a failing symmetrization kernel turns into a 500 whose
// body names the injected error, and the daemon stays healthy.
func TestInjectedErrorFailsRequestNotDaemon(t *testing.T) {
	defer faultinject.Reset()
	_, ts := newTestServer(t, Config{Workers: 1})
	info := registerFigure1(t, ts)

	faultinject.Set("core.symmetrize", faultinject.Fault{Mode: faultinject.Error})
	resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{GraphID: info.ID, Method: "rw", Algorithm: "mcl", Seed: 1})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if apiErr := decode[ErrorResponse](t, resp); !strings.Contains(apiErr.Error, "injected") {
		t.Fatalf("error %q does not name the injected fault", apiErr.Error)
	}

	faultinject.Reset()
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d after injected error", hresp.StatusCode)
	}
}

// TestAdmissionControlRejectsOversizedJobs checks the byte budget: a
// tiny MaxJobBytes rejects a clustering request whose symmetrizer has
// no out-of-core kernel with 413 before it reaches the pool, the
// rejection is counted, and a generous budget admits the same request.
// An out-of-core capable method under the same tiny budget is no
// longer rejected — it is admitted on the out-of-core path instead.
func TestAdmissionControlRejectsOversizedJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxJobBytes: 64})
	info := registerFigure1(t, ts)
	req := ClusterRequest{GraphID: info.ID, Method: "rw", Algorithm: "mcl", Seed: 1}

	resp := postJSON(t, ts.URL+"/v1/cluster", req)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	apiErr := decode[ErrorResponse](t, resp)
	if !strings.Contains(apiErr.Error, "max-job-mb") {
		t.Fatalf("error %q does not tell the operator which knob to raise", apiErr.Error)
	}
	if !strings.Contains(apiErr.Error, "cannot run out-of-core") {
		t.Fatalf("error %q does not explain why out-of-core did not save the job", apiErr.Error)
	}
	if s.pool.Busy() != 0 || s.pool.QueueDepth() != 0 {
		t.Fatal("rejected job reached the pool")
	}
	if body := fetchMetrics(t, ts); !strings.Contains(body, "symclusterd_admission_rejected_total 1") {
		t.Fatalf("metrics missing admission rejection:\n%s", body)
	}

	// The same graph with an out-of-core capable symmetrization is
	// admitted despite the tiny budget and runs to completion.
	req.Method = "bib"
	resp = postJSON(t, ts.URL+"/v1/cluster", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("out-of-core capable method status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	if body := fetchMetrics(t, ts); !strings.Contains(body, "symclusterd_ooc_jobs_total 1") {
		t.Fatalf("metrics missing out-of-core admission:\n%s", body)
	}

	// The rw request under a generous budget runs normally.
	_, ts2 := newTestServer(t, Config{Workers: 1, MaxJobBytes: 1 << 30})
	info2 := registerFigure1(t, ts2)
	req.GraphID = info2.ID
	req.Method = "rw"
	resp = postJSON(t, ts2.URL+"/v1/cluster", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status under generous budget = %d, want 200", resp.StatusCode)
	}
}

// TestOversizedEdgeListLineIs413 covers the plain-text upload path: a
// single line longer than the parser's buffer is a size problem, not a
// syntax problem, and must answer 413 like the body cap does.
func TestOversizedEdgeListLineIs413(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 64 << 20})
	long := "# " + strings.Repeat("x", 17*1024*1024)
	resp, err := http.Post(ts.URL+"/v1/graphs", "text/plain", strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}
