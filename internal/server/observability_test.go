package server_test

// Two-node observability end-to-end (`make cluster` runs it under
// -race): submit a job through the node that does NOT own the graph so
// the request is proxied, then require (a) one stitched span tree —
// the entry node's "proxy" root with the owner's "request" segment
// nested under it, every span sharing one trace id — retrievable from
// either node; (b) nonzero per-job resource accounting (queue wait,
// stage CPU, allocation) at /v1/jobs/{id}/stats, surviving a SIGKILL
// and restart of the owner because the snapshot rides the WAL finish
// record; and (c) a federated /v1/cluster/status that reports a killed
// peer down within the probe interval from the cached health verdict,
// without the report ever blocking on the dead socket (DESIGN.md §16).

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"symcluster/internal/obs"
	"symcluster/internal/server"
)

// spanNames flattens a span tree into its set of span names.
func spanNames(n *obs.SpanNode, into map[string]bool) {
	if n == nil {
		return
	}
	into[n.Name] = true
	for _, c := range n.Children {
		spanNames(c, into)
	}
}

// traceIDs collects every non-empty trace id in the tree. A correctly
// stitched cross-node tree has exactly one.
func traceIDs(n *obs.SpanNode, into map[string]bool) {
	if n == nil {
		return
	}
	if n.TraceID != "" {
		into[n.TraceID] = true
	}
	for _, c := range n.Children {
		traceIDs(c, into)
	}
}

// requireJobStats asserts the accounting a finished dd+mcl run must
// carry: the job waited in the queue, both stages ran, and the cluster
// stage burned measurable CPU and allocation.
func requireJobStats(t *testing.T, from string, stats *obs.JobStatsSnapshot) {
	t.Helper()
	if stats == nil {
		t.Fatalf("%s: stats are nil", from)
	}
	if stats.QueueWaitMillis <= 0 {
		t.Fatalf("%s: queue_wait_millis = %v, want > 0", from, stats.QueueWaitMillis)
	}
	for _, stage := range []string{"symmetrize", "cluster"} {
		if _, ok := stats.Stages[stage]; !ok {
			t.Fatalf("%s: no %q stage in %+v", from, stage, stats.Stages)
		}
	}
	cl := stats.Stages["cluster"]
	if cl.WallMillis <= 0 {
		t.Fatalf("%s: cluster stage wall_millis = %v, want > 0", from, cl.WallMillis)
	}
	if cl.CPUMillis <= 0 {
		t.Fatalf("%s: cluster stage cpu_millis = %v, want > 0", from, cl.CPUMillis)
	}
	if cl.AllocBytes <= 0 {
		t.Fatalf("%s: cluster stage alloc_bytes = %v, want > 0", from, cl.AllocBytes)
	}
	if stats.CacheHits+stats.CacheMisses == 0 {
		t.Fatalf("%s: no symmetrization-cache lookups recorded", from)
	}
}

func TestClusterObservability(t *testing.T) {
	bin := buildSymclusterd(t)
	root := t.TempDir()
	addrA, addrB := freeAddr(t), freeAddr(t)
	peers := "http://" + addrA + ",http://" + addrB

	faults := "mcl.iterate=delay:20ms"
	dA := startClusterDaemon(t, bin, addrA, root, peers, faults)
	defer func() { dA.Process.Kill(); dA.Wait() }()
	dB := startClusterDaemon(t, bin, addrB, root, peers, faults)
	defer func() { dB.Process.Kill(); dB.Wait() }()

	// Register through A; routing pushes the graph to its ring owner.
	resp, err := http.Post("http://"+addrA+"/v1/graphs", "text/plain", strings.NewReader(blockEdges()))
	if err != nil {
		t.Fatal(err)
	}
	var ginfo server.GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&ginfo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Submit through A; the qualified job id names the owner. When A
	// owns the graph that submission was local, so resubmit through B —
	// either way the job under test crossed the proxy hop.
	submit := func(via string) server.JobRef {
		req, _ := json.Marshal(server.ClusterRequest{
			GraphID: ginfo.ID, Method: "dd", Algorithm: "mcl", Seed: 5, Async: true,
		})
		resp, err := http.Post("http://"+via+"/v1/cluster", "application/json", bytes.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ref server.JobRef
		if err := json.NewDecoder(resp.Body).Decode(&ref); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted || ref.JobID == "" {
			t.Fatalf("submit via %s: status %d, ref %+v", via, resp.StatusCode, ref)
		}
		return ref
	}
	ref := submit(addrA)
	_, ownerName, ok := strings.Cut(ref.JobID, "@")
	if !ok {
		t.Fatalf("job id %q carries no owner qualifier", ref.JobID)
	}
	if ownerName == addrA {
		ref = submit(addrB)
	}
	ownerAddr, otherAddr := ownerName, addrA
	if ownerAddr == addrA {
		otherAddr = addrB
	}
	owner := dA
	if ownerAddr == addrB {
		owner = dB
	}

	// Wait for the proxied job to finish (polling the non-owner proves
	// routing on the way out too).
	var done server.JobInfo
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body := getBody(t, "http://"+otherAddr+"/v1/jobs/"+ref.JobID)
		if code == http.StatusOK {
			if err := json.Unmarshal(body, &done); err != nil {
				t.Fatal(err)
			}
			if done.State == "done" {
				break
			}
			if done.State == "failed" {
				t.Fatalf("proxied job failed: %s", done.Error)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("proxied job never finished (last state %q)", done.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if done.TraceID == "" {
		t.Fatal("finished job carries no trace_id")
	}

	// One stitched tree from either node: the entry node's "proxy" span
	// is the root, the owner's "request" segment (with its stage spans)
	// nests under it, and exactly one trace id covers everything.
	for _, via := range []string{ownerAddr, otherAddr} {
		code, body := getBody(t, "http://"+via+"/v1/jobs/"+ref.JobID+"/trace")
		if code != http.StatusOK {
			t.Fatalf("trace via %s: status %d: %s", via, code, body)
		}
		var tree obs.SpanNode
		if err := json.Unmarshal(body, &tree); err != nil {
			t.Fatal(err)
		}
		if tree.Name != "proxy" {
			t.Fatalf("trace via %s: root span is %q, want the entry node's \"proxy\" span:\n%s", via, tree.Name, body)
		}
		names := map[string]bool{}
		spanNames(&tree, names)
		for _, want := range []string{"proxy", "request", "symmetrize", "cluster"} {
			if !names[want] {
				t.Fatalf("trace via %s: no %q span in stitched tree:\n%s", via, want, body)
			}
		}
		ids := map[string]bool{}
		traceIDs(&tree, ids)
		if len(ids) != 1 || !ids[done.TraceID] {
			t.Fatalf("trace via %s: want exactly one trace id %q, got %v", via, done.TraceID, ids)
		}
	}

	// Resource accounting is served from either node (routed to the
	// owner) and is nonzero where the run must have spent resources.
	code, body := getBody(t, "http://"+otherAddr+"/v1/jobs/"+ref.JobID+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: status %d: %s", code, body)
	}
	var stats obs.JobStatsSnapshot
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	requireJobStats(t, "live stats", &stats)

	// SIGKILL the owner and restart it on the same durable root: the
	// snapshot rode the WAL finish record, so the replayed job still
	// serves its accounting.
	if err := owner.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	owner.Wait()
	owner = startClusterDaemon(t, bin, ownerAddr, root, peers, faults)
	defer func() { owner.Process.Kill(); owner.Wait() }()
	code, body = getBody(t, "http://"+ownerAddr+"/v1/jobs/"+ref.JobID+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats after restart: status %d: %s", code, body)
	}
	stats = obs.JobStatsSnapshot{}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	requireJobStats(t, "restarted stats", &stats)

	// Federated status: with both nodes up, the report names both as
	// "up" from live fan-out.
	waitStatus := func(via, peer, want string) server.ClusterStatus {
		t.Helper()
		var st server.ClusterStatus
		deadline := time.Now().Add(15 * time.Second)
		for {
			start := time.Now()
			code, body := getBody(t, "http://"+via+"/v1/cluster/status")
			if took := time.Since(start); took > 3*time.Second {
				t.Fatalf("/v1/cluster/status blocked for %v (must degrade, not block)", took)
			}
			if code == http.StatusOK {
				if err := json.Unmarshal(body, &st); err != nil {
					t.Fatal(err)
				}
				for _, n := range st.Nodes {
					if n.Name == peer && n.State == want {
						return st
					}
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("peer %s never reached state %q in %s", peer, want, body)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	st := waitStatus(ownerAddr, otherAddr, "up")
	if st.Self != ownerAddr {
		t.Fatalf("status self = %q, want %q", st.Self, ownerAddr)
	}
	for _, n := range st.Nodes {
		if n.Name == otherAddr && n.Version == "" {
			t.Fatalf("live peer row has no version (fan-out did not reach it): %+v", n)
		}
	}

	// Kill the other node: its row must flip to "down" within the probe
	// interval, from the cached verdict — the report keeps answering
	// fast while the socket is dead.
	other := dA
	if otherAddr == addrB {
		other = dB
	}
	if err := other.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	other.Wait()
	st = waitStatus(ownerAddr, otherAddr, "down")
	for _, n := range st.Nodes {
		if n.Name == ownerAddr && n.State != "up" {
			t.Fatalf("surviving node reports itself %q, want up", n.State)
		}
	}
}
