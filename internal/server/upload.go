package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	symcluster "symcluster"
	"symcluster/internal/csr"
)

// Chunked graph upload: graphs too large for one POST /v1/graphs body
// arrive as a sequence of requests against an upload session. Each
// append streams its chunk into a bounded-memory ingester (parsed edges
// spill to sorted runs under the spill dir once the buffer fills), so
// the daemon's resident cost of an upload is the ingest buffer, not the
// graph. Finalize merges the runs into a binary CSR file, memory-maps
// it, and registers the graph without the adjacency ever living on the
// heap — the natural companion of out-of-core clustering, which reads
// the same file.
//
//	POST   /v1/graphs/uploads               → 201 UploadRef
//	POST   /v1/graphs/uploads/{id}          → 202 UploadStatus (chunk in body)
//	POST   /v1/graphs/uploads/{id}/finalize → 201 UploadResult
//	DELETE /v1/graphs/uploads/{id}          → 204
//
// Chunks may split lines at any byte offset. A parse error poisons the
// session (the offending line is reported); it must be aborted and
// restarted. Sessions are single-writer: concurrent appends to the same
// session serialize, order among them unspecified.

// uploadSession is one in-flight chunked upload.
type uploadSession struct {
	id      string
	dir     string // scratch dir owning ingest state and the finalized file
	created time.Time

	// lastActive is the unix-nano time of the last client request against
	// the session; the TTL sweeper reaps sessions idle past -upload-ttl
	// (an abandoned upload otherwise pins spill files forever).
	lastActive atomic.Int64

	mu     sync.Mutex
	ing    *csr.Ingester
	failed error // first ingest error; poisons the session
	done   bool
}

// touch records client activity for the TTL sweeper.
func (sess *uploadSession) touch() { sess.lastActive.Store(time.Now().UnixNano()) }

// abort releases the session's ingest state and scratch. Idempotent;
// callers hold no locks.
func (sess *uploadSession) abort() {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.done = true
	sess.ing.Abort()
	if sess.dir != "" {
		os.RemoveAll(sess.dir)
		sess.dir = ""
	}
}

// handleUploadCreate opens a session: POST /v1/graphs/uploads.
func (s *Server) handleUploadCreate(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	dir, err := os.MkdirTemp(s.cfg.SpillDir, "symclusterd-upload-*")
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("creating upload scratch: %w", err))
		return
	}
	ing, err := csr.NewIngester(dir, s.cfg.IngestMemBytes)
	if err != nil {
		os.RemoveAll(dir)
		writeError(w, http.StatusInternalServerError, fmt.Errorf("creating ingester: %w", err))
		return
	}
	sess := &uploadSession{
		id:      "u-" + strconv.FormatInt(s.uploadSeq.Add(1), 10),
		dir:     dir,
		created: time.Now(),
		ing:     ing,
	}
	sess.touch()
	s.uploadMu.Lock()
	s.uploads[sess.id] = sess
	s.uploadMu.Unlock()
	// The id is qualified with this node's name in cluster mode: the
	// session (ingest buffer, spill runs) lives only here, so every
	// later chunk must route back.
	id := s.qualifyID(sess.id)
	writeJSON(w, http.StatusCreated, UploadRef{
		UploadID: id,
		Location: "/v1/graphs/uploads/" + id,
	})
}

// lookupUpload fetches a session by id.
func (s *Server) lookupUpload(id string) (*uploadSession, bool) {
	s.uploadMu.Lock()
	defer s.uploadMu.Unlock()
	sess, ok := s.uploads[id]
	return sess, ok
}

// dropUpload removes a session from the registry (it may already be
// gone — finalize and abort race benignly).
func (s *Server) dropUpload(id string) {
	s.uploadMu.Lock()
	delete(s.uploads, id)
	s.uploadMu.Unlock()
}

// handleUploadAppend streams one chunk into the session:
// POST /v1/graphs/uploads/{id} with the raw edge-list bytes as body.
func (s *Server) handleUploadAppend(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupUpload(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown upload %q", r.PathValue("id")))
		return
	}
	sess.touch()
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err := sess.usableLocked(); err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	buf := make([]byte, 256*1024)
	for {
		n, rerr := r.Body.Read(buf)
		if n > 0 {
			if aerr := sess.ing.Append(buf[:n]); aerr != nil {
				// A malformed line poisons the whole session: spill runs
				// already hold edges in arrival order, so there is no way
				// to un-append. The client aborts and restarts.
				sess.failed = aerr
				code := http.StatusBadRequest
				if errors.Is(aerr, symcluster.ErrInputTooLarge) {
					code = http.StatusRequestEntityTooLarge
				}
				writeError(w, code, fmt.Errorf("ingesting chunk: %w", aerr))
				return
			}
		}
		if rerr != nil {
			var mbe *http.MaxBytesError
			if errors.As(rerr, &mbe) {
				// The chunk overflowed the per-request body cap. Nothing
				// is lost — the bytes read so far were ingested — but the
				// client must resend the remainder as further chunks.
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("chunk exceeds per-request cap (%d bytes); split it and continue", s.cfg.MaxBodyBytes))
				return
			}
			if errors.Is(rerr, io.EOF) {
				break
			}
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading chunk: %w", rerr))
			return
		}
	}
	bytesIn, edges := sess.ing.Stats()
	writeJSON(w, http.StatusAccepted, UploadStatus{
		UploadID:      s.qualifyID(sess.id),
		BytesReceived: bytesIn,
		Edges:         edges,
	})
}

// usableLocked reports whether the session can accept more input.
func (sess *uploadSession) usableLocked() error {
	if sess.done {
		return &apiError{code: http.StatusConflict, err: fmt.Errorf("upload %s already finalized or aborted", sess.id)}
	}
	if sess.failed != nil {
		return &apiError{code: http.StatusConflict,
			err: fmt.Errorf("upload %s failed earlier (%v); abort and restart", sess.id, sess.failed)}
	}
	return nil
}

// handleUploadFinalize merges the session into a binary CSR file, maps
// it and registers the graph: POST /v1/graphs/uploads/{id}/finalize.
func (s *Server) handleUploadFinalize(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupUpload(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown upload %q", r.PathValue("id")))
		return
	}
	sess.touch()
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err := sess.usableLocked(); err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	sess.done = true
	s.dropUpload(sess.id)

	fail := func(code int, err error) {
		os.RemoveAll(sess.dir)
		sess.dir = ""
		writeError(w, code, err)
	}
	ctx := r.Context()
	dst := filepath.Join(sess.dir, "graph.csr")
	info, err := sess.ing.Finalize(ctx, dst)
	if err != nil {
		fail(http.StatusBadRequest, fmt.Errorf("finalizing upload: %w", err))
		return
	}
	mp, err := csr.Open(ctx, dst)
	if err != nil {
		fail(http.StatusInternalServerError, fmt.Errorf("mapping ingested graph: %w", err))
		return
	}
	g, err := symcluster.NewDirectedGraph(mp.View(), nil)
	if err != nil {
		mp.Close()
		fail(http.StatusInternalServerError, fmt.Errorf("wrapping ingested graph: %w", err))
		return
	}

	// In cluster mode the fingerprint — unknowable until the merge just
	// now — may place the graph on another shard. Ship the finished CSR
	// file to its owner so cache and WAL locality hold; the result is
	// the same UploadResult the client would have gotten locally. This
	// applies to forwarded finalizes too: the hop here was upload-id
	// affinity (back to the session's creator), not graph ownership, so
	// the creator still owes the relocation. No loop risk: the push
	// lands on the internal CSR endpoint, which registers locally.
	if c := s.coord; c != nil {
		id := fmt.Sprintf("g-%016x", g.Fingerprint())
		owner, ok := c.ownerOf(id)
		if !ok {
			mp.Close()
			w.Header().Set("Retry-After", "1")
			fail(http.StatusServiceUnavailable,
				fmt.Errorf("no healthy node owns graph %s; retry finalize shortly", id))
			return
		}
		if owner.Name != c.self.Name {
			mp.Close() // the push reads the file; the mapping is not needed
			ginfo, code, perr := c.pushGraph(ctx, owner, dst)
			if perr != nil {
				fail(code, perr)
				return
			}
			os.RemoveAll(sess.dir)
			sess.dir = ""
			writeJSON(w, http.StatusCreated, UploadResult{
				Graph:       ginfo,
				Edges:       info.Edges,
				BytesIn:     info.BytesIn,
				SpillRuns:   info.SpillRuns,
				MergedBytes: info.MergedBytes,
			})
			return
		}
	}

	ginfo := s.registerMappedCSR(g, mp, dst, sess.dir)
	sess.dir = "" // ownership moved to the graph registry (or the store)
	writeJSON(w, http.StatusCreated, UploadResult{
		Graph:       ginfo,
		Edges:       info.Edges,
		BytesIn:     info.BytesIn,
		SpillRuns:   info.SpillRuns,
		MergedBytes: info.MergedBytes,
	})
}

// registerMappedCSR registers an already-mapped on-disk CSR graph,
// moving the file into the durable store when one is configured (the
// rename preserves the inode, so the live mapping stays valid at the
// new path — and even when a content-identical file already sits there
// and ours is unlinked instead). ownDir is the scratch directory the
// file currently lives in; the graph registry takes ownership of it
// unless the store adoption made it redundant.
func (s *Server) registerMappedCSR(g *symcluster.DirectedGraph, mp *csr.Mapped, csrPath, ownDir string) GraphInfo {
	if s.store != nil {
		id := fmt.Sprintf("g-%016x", g.Fingerprint())
		adopted, aerr := s.store.AdoptGraphFile(id, csrPath)
		if aerr != nil {
			s.log().Error("persisting graph", "graph", id, "err", aerr)
		} else {
			csrPath = adopted
			os.RemoveAll(ownDir)
			ownDir = ""
		}
	}
	return s.addGraph(g, csrPath, mp, ownDir)
}

// sweepUploads periodically reaps upload sessions idle past UploadTTL,
// releasing their ingest buffers and spill files. It runs for the life
// of the server when -upload-ttl is set.
func (s *Server) sweepUploads() {
	interval := s.cfg.UploadTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.expireUploads(time.Now())
		}
	}
}

// expireUploads reaps every session idle at or past the TTL. Split from
// the sweep loop so tests can trigger a pass synchronously.
func (s *Server) expireUploads(now time.Time) {
	var expired []*uploadSession
	s.uploadMu.Lock()
	for id, sess := range s.uploads {
		if now.Sub(time.Unix(0, sess.lastActive.Load())) >= s.cfg.UploadTTL {
			delete(s.uploads, id)
			expired = append(expired, sess)
		}
	}
	s.uploadMu.Unlock()
	for _, sess := range expired {
		sess.abort()
		s.metrics.IncUploadExpired()
		s.log().Info("expired idle upload session", "upload", sess.id,
			"idle", now.Sub(time.Unix(0, sess.lastActive.Load())).String())
	}
}

// handleUploadAbort discards a session: DELETE /v1/graphs/uploads/{id}.
// Aborting an unknown session is a 204 no-op, so retrying is safe.
func (s *Server) handleUploadAbort(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.lookupUpload(r.PathValue("id")); ok {
		s.dropUpload(sess.id)
		sess.abort()
	}
	w.WriteHeader(http.StatusNoContent)
}
