package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"symcluster/internal/cluster"
	"symcluster/internal/obs"
)

// requestSeq numbers requests within the process for the request_id
// log attribute.
var requestSeq atomic.Int64

// statusRecorder captures the status code written by a handler so the
// request-accounting middleware can label its counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps a handler with panic recovery, a request body cap,
// and request/latency accounting under the given route label. It is
// applied per route so the label is the registered pattern, not the
// raw (unbounded-cardinality) URL path. It also assigns the request a
// process-unique request_id, installs a logger carrying it in the
// request context (obs.Log), and installs the metrics registry so
// kernel hooks underneath record into /metrics.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return s.instrumented(route, true, h)
}

// instrumentUncapped is instrument without the request body cap. It
// exists for the one route that legitimately carries graph-sized
// bodies: the peer-to-peer CSR push, whose payload was already
// admitted (chunk by capped chunk, or under the cap) on the node now
// forwarding it.
func (s *Server) instrumentUncapped(route string, h http.HandlerFunc) http.HandlerFunc {
	return s.instrumented(route, false, h)
}

func (s *Server) instrumented(route string, capped bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := "r-" + strconv.FormatInt(requestSeq.Add(1), 10)
		log := s.log().With("request_id", reqID, "route", route)
		ctx := r.Context()
		// End-to-end deadline: a caller that stamped its remaining budget
		// on the request (the CLI's -timeout, or the cluster client
		// deriving it from its own context minus the hop margin) gets a
		// real context deadline here, so queued work whose caller has
		// given up is dropped before it burns a worker, in-flight kernels
		// observe the expiry at their next poll, and every fan-out
		// underneath inherits min(its own timeout, what's left).
		if budget, ok := cluster.ParseDeadlineHeader(r.Header); ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, start.Add(budget))
			defer cancel()
			log = log.With("deadline_ms", budget.Milliseconds())
		}
		// Join a peer's trace: the cluster client stamps every forwarded
		// and internal hop with a traceparent header; seeding the context
		// here makes whatever trace this request starts (runCluster, the
		// CSR receive, an async job) a segment of the sender's trace
		// rather than a disconnected root.
		if tid, sid, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
			ctx = obs.WithTraceSeed(ctx, obs.TraceSeed{TraceID: tid, ParentSpanID: sid})
			log = log.With("trace_id", tid)
		}
		ctx = obs.WithLogger(ctx, log)
		ctx = obs.WithMeter(ctx, s.metrics.Registry())
		r = r.WithContext(ctx)
		rec := &statusRecorder{ResponseWriter: w}
		if capped && r.Body != nil && s.cfg.MaxBodyBytes > 0 {
			r.Body = http.MaxBytesReader(rec, r.Body, s.cfg.MaxBodyBytes)
		}
		defer func() {
			if p := recover(); p != nil {
				log.Error("panic serving request",
					"method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				if rec.code == 0 {
					writeError(rec, http.StatusInternalServerError, fmt.Errorf("internal error"))
				}
			}
			code := rec.code
			if code == 0 {
				code = http.StatusOK
			}
			s.metrics.ObserveRequest(route, code, time.Since(start))
			log.Debug("request served",
				"method", r.Method, "path", r.URL.Path,
				"code", code, "millis", float64(time.Since(start))/float64(time.Millisecond))
		}()
		h(rec, r)
	}
}

// writeJSON renders v with a status code. Encoding errors past the
// header write are unrecoverable and ignored.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError renders the uniform error body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}
