package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures the status code written by a handler so the
// request-accounting middleware can label its counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps a handler with panic recovery, a request body cap,
// and request/latency accounting under the given route label. It is
// applied per route so the label is the registered pattern, not the
// raw (unbounded-cardinality) URL path.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		if r.Body != nil && s.cfg.MaxBodyBytes > 0 {
			r.Body = http.MaxBytesReader(rec, r.Body, s.cfg.MaxBodyBytes)
		}
		defer func() {
			if p := recover(); p != nil {
				s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				if rec.code == 0 {
					writeError(rec, http.StatusInternalServerError, fmt.Errorf("internal error"))
				}
			}
			code := rec.code
			if code == 0 {
				code = http.StatusOK
			}
			s.metrics.ObserveRequest(route, code, time.Since(start))
		}()
		h(rec, r)
	}
}

// logf logs through the configured logger, or the standard logger when
// none was set.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// writeJSON renders v with a status code. Encoding errors past the
// header write are unrecoverable and ignored.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError renders the uniform error body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}
