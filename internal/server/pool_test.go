package server

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(2, 4)
	defer mustClose(t, p)
	var n atomic.Int64
	res, err := p.Run(context.Background(), func(context.Context) (any, error) {
		n.Add(1)
		return "ok", nil
	})
	if err != nil || res != "ok" || n.Load() != 1 {
		t.Fatalf("res=%v err=%v n=%d", res, err, n.Load())
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	defer mustClose(t, p)
	block := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if _, err := p.Submit(context.Background(), func(context.Context) (any, error) {
		close(block)
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-block
	// Queue slot.
	if _, err := p.Submit(context.Background(), func(context.Context) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	// Overflow.
	if _, err := p.Submit(context.Background(), func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestPoolDropsCanceledQueuedTask(t *testing.T) {
	p := NewPool(1, 2)
	defer mustClose(t, p)
	block := make(chan struct{})
	release := make(chan struct{})
	if _, err := p.Submit(context.Background(), func(context.Context) (any, error) {
		close(block)
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-block

	// Enqueue work whose client disconnects before a worker frees up.
	var ran atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	wait, err := p.Submit(ctx, func(context.Context) (any, error) {
		ran.Store(true)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(release)
	if _, err := wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Give the worker a chance to (wrongly) run the dropped task.
	deadline := time.Now().Add(200 * time.Millisecond)
	for p.Busy() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ran.Load() {
		t.Fatal("canceled task ran anyway")
	}
}

func TestPoolWaitRespectsContext(t *testing.T) {
	p := NewPool(1, 1)
	defer mustClose(t, p)
	release := make(chan struct{})
	defer close(release)
	ctx, cancel := context.WithCancel(context.Background())
	wait, err := p.Submit(ctx, func(context.Context) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPoolCloseDrainsQueuedWork(t *testing.T) {
	p := NewPool(1, 8)
	var done atomic.Int64
	for i := 0; i < 5; i++ {
		if _, err := p.Submit(context.Background(), func(context.Context) (any, error) {
			time.Sleep(time.Millisecond)
			done.Add(1)
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if done.Load() != 5 {
		t.Fatalf("done = %d, want 5", done.Load())
	}
	if _, err := p.Submit(context.Background(), func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
}

func TestPoolCloseDeadline(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	release := make(chan struct{})
	if _, err := p.Submit(context.Background(), func(context.Context) (any, error) {
		close(block)
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-block
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	close(release)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := p.Close(ctx2); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func mustClose(t *testing.T, p *Pool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatalf("pool close: %v", err)
	}
}

func TestPoolRecoversPanic(t *testing.T) {
	p := NewPool(1, 2)
	defer mustClose(t, p)
	res, err := p.Run(context.Background(), func(context.Context) (any, error) {
		panic("kernel exploded")
	})
	if res != nil {
		t.Fatalf("res = %v, want nil", res)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "kernel exploded" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
	if msg := pe.Error(); !strings.Contains(msg, "kernel exploded") || strings.Contains(msg, "goroutine ") {
		t.Fatalf("Error() = %q: want the value, never the stack", msg)
	}
	if p.PanicsRecovered() != 1 {
		t.Fatalf("panics recovered = %d, want 1", p.PanicsRecovered())
	}
	// The single worker survived the panic and still runs tasks.
	res, err = p.Run(context.Background(), func(context.Context) (any, error) { return 42, nil })
	if err != nil || res != 42 {
		t.Fatalf("post-panic run: res=%v err=%v", res, err)
	}
}
