package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"symcluster/internal/jobstore"
	"symcluster/internal/obs"
)

// JobState is the lifecycle phase of an async clustering job.
type JobState string

// Job lifecycle: pending (queued) → running → done | failed.
// Canceled marks jobs whose context expired before or during the run;
// a drain-preempted durable job goes running → pending instead, so the
// next boot finishes it.
const (
	JobPending  JobState = "pending"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one async clustering run. Fields are guarded by the owning
// JobStore's mutex; handlers read them only through Snapshot. ID,
// IdempotencyKey, Request and Checkpoints are set at creation (or
// replay) and never mutated after, so the launch path may read them
// without the lock.
type Job struct {
	ID    string
	State JobState
	// IdempotencyKey dedups retried submissions: a duplicate POST with
	// the same key returns this job instead of creating a second one.
	IdempotencyKey string
	// Request is the original ClusterRequest JSON, persisted so a
	// replayed job can rebuild its run after a restart.
	Request  json.RawMessage
	Result   *ClusterResponse
	Err      string
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// Trace is the run's span tree, retained for done, failed AND
	// canceled jobs (an errored run's trace is exactly what you want
	// when debugging why it errored). Served by GET /v1/jobs/{id}/trace.
	// In-memory only: traces do not survive restarts.
	Trace *obs.SpanNode
	// TraceID is the distributed-trace id the run joined, journaled at
	// start so it outlives both the process (WAL) and the node (a peer
	// adopting this job links its new trace back to this id).
	TraceID string
	// LinkTraceID is the dead owner's TraceID for a job this node
	// adopted; the adopted run's root span carries it as link_trace_id.
	LinkTraceID string
	// Stats is the job's resource accounting, journaled at finish so
	// GET /v1/jobs/{id}/stats answers across restarts.
	Stats *obs.JobStatsSnapshot
	// Checkpoints holds the kernel checkpoints replayed from the WAL
	// for an interrupted job; the job's sink serves them back to the
	// kernels so the run resumes mid-iteration. Nil for fresh jobs.
	Checkpoints map[string]jobstore.Checkpoint
}

// JobStore tracks async jobs in memory, optionally journaling every
// mutation to a WAL-backed jobstore.Store (durable mode, -data-dir).
// Finished jobs are retained (up to a cap, oldest evicted first) and
// expire after a TTL so an unattended daemon does not accumulate
// completed results forever. Without a backing store jobs die with the
// process, which graceful drain makes visible by finishing in-flight
// work first; with one, pending and running jobs are replayed and
// re-enqueued on the next boot.
type JobStore struct {
	mu       sync.Mutex
	seq      int64
	jobs     map[string]*Job
	byKey    map[string]string // idempotency key → job id
	finished []string          // finished job ids, oldest first
	retain   int
	ttl      time.Duration
	expired  int64
	replayed int64
	ckpts    int64
	now      func() time.Time // injectable for deterministic TTL tests

	st *jobstore.Store // nil in memory-only mode
}

// NewJobStore returns a memory-only store retaining at most retain
// finished jobs (clamped to at least 1). Finished jobs older than ttl
// are expired lazily on access; ttl <= 0 disables expiry.
func NewJobStore(retain int, ttl time.Duration) *JobStore {
	if retain < 1 {
		retain = 1
	}
	return &JobStore{
		jobs:   make(map[string]*Job),
		byKey:  make(map[string]string),
		retain: retain,
		ttl:    ttl,
		now:    time.Now,
	}
}

// NewDurableJobStore returns a store journaling to st, after replaying
// st's records into memory: finished jobs come back with their results,
// idempotency keys re-arm, the id sequence resumes past every replayed
// job, and jobs that were pending or running when the previous process
// died come back pending (the server re-enqueues them via PendingJobs).
func NewDurableJobStore(retain int, ttl time.Duration, st *jobstore.Store) *JobStore {
	s := NewJobStore(retain, ttl)
	s.st = st
	for _, rec := range st.Jobs() {
		j := &Job{
			ID:             rec.ID,
			State:          JobState(rec.State),
			IdempotencyKey: rec.IdempotencyKey,
			Request:        rec.Request,
			Err:            rec.Err,
			Created:        rec.Created,
			Started:        rec.Started,
			Finished:       rec.Finished,
			TraceID:        rec.TraceID,
			LinkTraceID:    rec.LinkTraceID,
			Checkpoints:    rec.Checkpoints,
		}
		if len(rec.Result) > 0 {
			var resp ClusterResponse
			if err := json.Unmarshal(rec.Result, &resp); err == nil {
				j.Result = &resp
			}
		}
		if len(rec.Stats) > 0 {
			var stats obs.JobStatsSnapshot
			if err := json.Unmarshal(rec.Stats, &stats); err == nil {
				j.Stats = &stats
			}
		}
		s.jobs[j.ID] = j
		if j.IdempotencyKey != "" {
			s.byKey[j.IdempotencyKey] = j.ID
		}
		switch j.State {
		case JobDone, JobFailed, JobCanceled:
			s.finished = append(s.finished, j.ID)
		case JobPending:
			s.replayed++
		}
	}
	if seq := st.MaxSeq(); seq > s.seq {
		s.seq = seq
	}
	return s
}

// Durable reports whether mutations are journaled to a WAL.
func (s *JobStore) Durable() bool { return s.st != nil }

// Replayed returns the number of interrupted jobs replayed as pending
// at startup.
func (s *JobStore) Replayed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayed
}

// CheckpointSaves returns the number of kernel checkpoints journaled.
func (s *JobStore) CheckpointSaves() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckpts
}

// dropLocked removes a job from the map and its idempotency key from
// the index, journaling the removal in durable mode (best-effort: a
// failed drop append means the job is resurrected on the next boot and
// re-expired then).
func (s *JobStore) dropLocked(id string) {
	if j, ok := s.jobs[id]; ok {
		if j.IdempotencyKey != "" {
			delete(s.byKey, j.IdempotencyKey)
		}
		delete(s.jobs, id)
		if s.st != nil {
			s.st.Drop(id)
		}
	}
}

// expireLocked drops finished jobs whose TTL has lapsed. Called with
// the mutex held from every accessor, so expiry needs no timer
// goroutine and costs one time comparison per retained job.
func (s *JobStore) expireLocked() {
	if s.ttl <= 0 || len(s.finished) == 0 {
		return
	}
	cutoff := s.now().Add(-s.ttl)
	kept := s.finished[:0]
	for _, id := range s.finished {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		if j.Finished.Before(cutoff) {
			s.dropLocked(id)
			s.expired++
			continue
		}
		kept = append(kept, id)
	}
	s.finished = kept
}

// Expired returns the number of finished jobs dropped by TTL expiry.
func (s *JobStore) Expired() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expired
}

// Create registers a new pending job carrying the original request
// JSON, journaling it in durable mode. When idemKey is non-empty and a
// job with that key already exists (including one replayed from the
// WAL), that job is returned with existing == true and nothing new is
// created — duplicate retries never produce two jobs.
func (s *JobStore) Create(idemKey string, request json.RawMessage) (job *Job, existing bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if idemKey != "" {
		if id, ok := s.byKey[idemKey]; ok {
			if j, ok := s.jobs[id]; ok {
				return j, true, nil
			}
		}
	}
	j := &Job{
		ID:             fmt.Sprintf("job-%06d", s.seq+1),
		State:          JobPending,
		IdempotencyKey: idemKey,
		Request:        request,
		Created:        s.now(),
	}
	if s.st != nil {
		rec := &jobstore.JobRecord{
			ID:             j.ID,
			State:          jobstore.Pending,
			IdempotencyKey: idemKey,
			Request:        request,
			Created:        j.Created,
		}
		if err := s.st.Create(rec); err != nil {
			return nil, false, err
		}
	}
	s.seq++
	s.jobs[j.ID] = j
	if idemKey != "" {
		s.byKey[idemKey] = j.ID
	}
	return j, false, nil
}

// CreateAdopted registers a pending job taken over from a dead peer's
// WAL: like Create, but the job starts with the checkpoints carried
// over from the dead record (persisted in the local journal too, so an
// adopter restart resumes from the same point) and with the dead run's
// trace id as its link, so the adopted run's trace points back at the
// original lineage. The idempotency key — derived from (dead peer,
// original id) by the caller — makes re-adoption a lookup instead of a
// duplicate.
func (s *JobStore) CreateAdopted(idemKey string, request json.RawMessage, ckpts map[string]jobstore.Checkpoint, linkTraceID string) (job *Job, existing bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if id, ok := s.byKey[idemKey]; ok {
		if j, ok := s.jobs[id]; ok {
			return j, true, nil
		}
	}
	j := &Job{
		ID:             fmt.Sprintf("job-%06d", s.seq+1),
		State:          JobPending,
		IdempotencyKey: idemKey,
		Request:        request,
		Created:        s.now(),
		LinkTraceID:    linkTraceID,
		Checkpoints:    ckpts,
	}
	if s.st != nil {
		rec := &jobstore.JobRecord{
			ID:             j.ID,
			State:          jobstore.Pending,
			IdempotencyKey: idemKey,
			Request:        request,
			Created:        j.Created,
			LinkTraceID:    linkTraceID,
			Checkpoints:    ckpts,
		}
		if err := s.st.Create(rec); err != nil {
			return nil, false, err
		}
	}
	s.seq++
	s.jobs[j.ID] = j
	s.byKey[idemKey] = j.ID
	return j, false, nil
}

// LookupByKey resolves an idempotency key to the id of the job it
// created, if any — the coordinator's route from a dead peer's job id
// to the local adopted copy.
func (s *JobStore) LookupByKey(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.byKey[key]
	if !ok {
		return "", false
	}
	if _, live := s.jobs[id]; !live {
		return "", false
	}
	return id, true
}

// Start transitions a job to running, journal-first: a failed append
// leaves the job pending so disk never lags memory. traceID is the
// distributed-trace id this run joined; journaling it is what lets a
// surviving peer link an adopted copy back to the original trace.
func (s *JobStore) Start(id, traceID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil
	}
	t := s.now()
	if s.st != nil {
		if err := s.st.Start(id, traceID, t); err != nil {
			return err
		}
	}
	j.State = JobRunning
	j.Started = t
	if traceID != "" {
		j.TraceID = traceID
	}
	return nil
}

// Requeue marks a preempted job pending again (graceful drain
// checkpointed it; the next boot finishes it).
func (s *JobStore) Requeue(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil
	}
	t := s.now()
	if s.st != nil {
		if err := s.st.Requeue(id, t); err != nil {
			return err
		}
	}
	j.State = JobPending
	j.Started = time.Time{}
	return nil
}

// SaveCheckpoint journals one kernel checkpoint for a running job.
// No-op (successfully) in memory-only mode: there is nothing to resume
// from after a restart anyway.
func (s *JobStore) SaveCheckpoint(id, kernel string, ck jobstore.Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st == nil {
		return nil
	}
	if err := s.st.SaveCheckpoint(id, kernel, ck); err != nil {
		return err
	}
	s.ckpts++
	return nil
}

// Finish records the outcome of a job and schedules retention. trace
// and stats may be nil (a run rejected before it started has neither).
// The journal append is best-effort: clients must see the outcome even
// if the disk is failing, so the in-memory state is updated regardless
// and the append error is returned for logging.
func (s *JobStore) Finish(id string, result *ClusterResponse, trace *obs.SpanNode, stats *obs.JobStatsSnapshot, err error, canceled bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil
	}
	j.Finished = s.now()
	j.Trace = trace
	if stats != nil {
		j.Stats = stats
	}
	switch {
	case canceled:
		j.State = JobCanceled
		if err != nil {
			j.Err = err.Error()
		}
	case err != nil:
		j.State = JobFailed
		j.Err = err.Error()
	default:
		j.State = JobDone
		j.Result = result
	}
	var jerr error
	if s.st != nil {
		var resJSON, statsJSON json.RawMessage
		if j.Result != nil {
			resJSON, _ = json.Marshal(j.Result)
		}
		if j.Stats != nil {
			statsJSON, _ = json.Marshal(j.Stats)
		}
		jerr = s.st.Finish(id, jobstore.State(j.State), resJSON, j.Err, statsJSON, j.Finished)
	}
	s.finished = append(s.finished, id)
	for len(s.finished) > s.retain {
		s.dropLocked(s.finished[0])
		s.finished = s.finished[1:]
	}
	return jerr
}

// Snapshot returns a copy of the job's current state, or false when the
// id is unknown (never created, or evicted by retention).
func (s *JobStore) Snapshot(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Counts returns the number of jobs per state, for /metrics.
func (s *JobStore) Counts() map[JobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	counts := make(map[JobState]int, 5)
	for _, j := range s.jobs {
		counts[j.State]++
	}
	return counts
}

// Pending returns the number of jobs not yet finished, for drain.
func (s *JobStore) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.State == JobPending || j.State == JobRunning {
			n++
		}
	}
	return n
}

// PendingJobs returns the pending jobs in id order — the replay
// surface the server re-enqueues at startup.
func (s *JobStore) PendingJobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, j := range s.jobs {
		if j.State == JobPending {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Info renders a snapshot as the wire JobInfo.
func (j Job) Info() JobInfo {
	info := JobInfo{
		JobID: j.ID, State: string(j.State), Result: j.Result, Error: j.Err,
		TraceID: j.TraceID, LinkTraceID: j.LinkTraceID,
	}
	if !j.Finished.IsZero() && !j.Started.IsZero() {
		info.DurationMillis = float64(j.Finished.Sub(j.Started)) / float64(time.Millisecond)
	}
	return info
}
