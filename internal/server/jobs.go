package server

import (
	"fmt"
	"sync"
	"time"

	"symcluster/internal/obs"
)

// JobState is the lifecycle phase of an async clustering job.
type JobState string

// Job lifecycle: pending (queued) → running → done | failed.
// Canceled marks jobs whose context expired before or during the run.
const (
	JobPending  JobState = "pending"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one async clustering run. Fields are guarded by the owning
// JobStore's mutex; handlers read them only through Snapshot.
type Job struct {
	ID       string
	State    JobState
	Result   *ClusterResponse
	Err      string
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// Trace is the run's span tree, retained for done, failed AND
	// canceled jobs (an errored run's trace is exactly what you want
	// when debugging why it errored). Served by GET /v1/jobs/{id}/trace.
	Trace *obs.SpanNode
}

// JobStore tracks async jobs in memory. Finished jobs are retained (up
// to a cap, oldest evicted first) and expire after a TTL so an
// unattended daemon does not accumulate completed results forever;
// there is no persistence — jobs die with the process, which graceful
// drain makes visible by finishing in-flight work first.
type JobStore struct {
	mu       sync.Mutex
	seq      int64
	jobs     map[string]*Job
	finished []string // finished job ids, oldest first
	retain   int
	ttl      time.Duration
	expired  int64
	now      func() time.Time // injectable for deterministic TTL tests
}

// NewJobStore returns a store retaining at most retain finished jobs
// (clamped to at least 1). Finished jobs older than ttl are expired
// lazily on access; ttl <= 0 disables expiry.
func NewJobStore(retain int, ttl time.Duration) *JobStore {
	if retain < 1 {
		retain = 1
	}
	return &JobStore{jobs: make(map[string]*Job), retain: retain, ttl: ttl, now: time.Now}
}

// expireLocked drops finished jobs whose TTL has lapsed. Called with
// the mutex held from every accessor, so expiry needs no timer
// goroutine and costs one time comparison per retained job.
func (s *JobStore) expireLocked() {
	if s.ttl <= 0 || len(s.finished) == 0 {
		return
	}
	cutoff := s.now().Add(-s.ttl)
	kept := s.finished[:0]
	for _, id := range s.finished {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		if j.Finished.Before(cutoff) {
			delete(s.jobs, id)
			s.expired++
			continue
		}
		kept = append(kept, id)
	}
	s.finished = kept
}

// Expired returns the number of finished jobs dropped by TTL expiry.
func (s *JobStore) Expired() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expired
}

// Create registers a new pending job and returns it.
func (s *JobStore) Create() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	s.seq++
	j := &Job{
		ID:      fmt.Sprintf("job-%06d", s.seq),
		State:   JobPending,
		Created: s.now(),
	}
	s.jobs[j.ID] = j
	return j
}

// Start transitions a job to running.
func (s *JobStore) Start(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		j.State = JobRunning
		j.Started = s.now()
	}
}

// Finish records the outcome of a job and schedules retention. trace
// may be nil (a run rejected before it started has no span tree).
func (s *JobStore) Finish(id string, result *ClusterResponse, trace *obs.SpanNode, err error, canceled bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	j.Finished = s.now()
	j.Trace = trace
	switch {
	case canceled:
		j.State = JobCanceled
		if err != nil {
			j.Err = err.Error()
		}
	case err != nil:
		j.State = JobFailed
		j.Err = err.Error()
	default:
		j.State = JobDone
		j.Result = result
	}
	s.finished = append(s.finished, id)
	for len(s.finished) > s.retain {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// Snapshot returns a copy of the job's current state, or false when the
// id is unknown (never created, or evicted by retention).
func (s *JobStore) Snapshot(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Counts returns the number of jobs per state, for /metrics.
func (s *JobStore) Counts() map[JobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	counts := make(map[JobState]int, 5)
	for _, j := range s.jobs {
		counts[j.State]++
	}
	return counts
}

// Pending returns the number of jobs not yet finished, for drain.
func (s *JobStore) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.State == JobPending || j.State == JobRunning {
			n++
		}
	}
	return n
}

// Info renders a snapshot as the wire JobInfo.
func (j Job) Info() JobInfo {
	info := JobInfo{JobID: j.ID, State: string(j.State), Result: j.Result, Error: j.Err}
	if !j.Finished.IsZero() && !j.Started.IsZero() {
		info.DurationMillis = float64(j.Finished.Sub(j.Started)) / float64(time.Millisecond)
	}
	return info
}
