package server

import (
	"net/http"
	"testing"
	"time"

	"symcluster/internal/faultinject"
	"symcluster/internal/obs"
)

// findSpan walks the span tree depth-first for the first node with the
// given name.
func findSpan(n *obs.SpanNode, name string) *obs.SpanNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if hit := findSpan(c, name); hit != nil {
			return hit
		}
	}
	return nil
}

// checkSpanTimes walks the tree asserting every span is well-formed:
// started, ended no earlier than it started, and contained within its
// parent's window.
func checkSpanTimes(t *testing.T, n *obs.SpanNode, parent *obs.SpanNode) {
	t.Helper()
	if n.StartUnixNano <= 0 {
		t.Errorf("span %s: start %d not positive", n.Name, n.StartUnixNano)
	}
	if n.EndUnixNano == 0 {
		t.Errorf("span %s: never ended", n.Name)
	} else if n.EndUnixNano < n.StartUnixNano {
		t.Errorf("span %s: ends %d before start %d", n.Name, n.EndUnixNano, n.StartUnixNano)
	}
	if n.DurationMillis < 0 {
		t.Errorf("span %s: negative duration %v", n.Name, n.DurationMillis)
	}
	if parent != nil {
		if n.StartUnixNano < parent.StartUnixNano {
			t.Errorf("span %s starts before parent %s", n.Name, parent.Name)
		}
		if parent.EndUnixNano != 0 && n.EndUnixNano > parent.EndUnixNano {
			t.Errorf("span %s ends after parent %s", n.Name, parent.Name)
		}
	}
	for _, c := range n.Children {
		checkSpanTimes(t, c, n)
	}
}

// TestClusterResponseSpanTree is the golden shape test for the span
// tree a synchronous clustering run embeds in its response:
// request → symmetrize → cluster, with the MCL kernel span nested
// under the cluster stage and all timestamps monotonic.
func TestClusterResponseSpanTree(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	info := registerFigure1(t, ts)
	resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
		GraphID: info.ID, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster: status %d", resp.StatusCode)
	}
	res := decode[ClusterResponse](t, resp)
	if res.Trace == nil || res.Trace.Spans == nil {
		t.Fatal("response carries no span tree")
	}
	root := res.Trace.Spans

	if root.Name != "request" {
		t.Fatalf("root span = %q, want request", root.Name)
	}
	if root.TraceID == "" {
		t.Error("root span has no trace_id")
	}
	if root.Error != "" {
		t.Errorf("successful run has root error %q", root.Error)
	}
	checkSpanTimes(t, root, nil)

	// Stage order under the root: symmetrize strictly before cluster.
	var sym, cl *obs.SpanNode
	for _, c := range root.Children {
		switch c.Name {
		case "symmetrize":
			sym = c
		case "cluster":
			cl = c
		}
	}
	if sym == nil || cl == nil {
		names := make([]string, len(root.Children))
		for i, c := range root.Children {
			names[i] = c.Name
		}
		t.Fatalf("root children %v, want symmetrize and cluster", names)
	}
	if sym.EndUnixNano > cl.StartUnixNano {
		t.Errorf("symmetrize ends at %d after cluster starts at %d",
			sym.EndUnixNano, cl.StartUnixNano)
	}
	if sym.Attrs["name"] != "dd" {
		t.Errorf("symmetrize name attr = %v, want dd", sym.Attrs["name"])
	}
	if cl.Attrs["name"] != "mcl" {
		t.Errorf("cluster name attr = %v, want mcl", cl.Attrs["name"])
	}

	// The symmetrization kernel span nests under the symmetrize stage
	// and the MCL kernel span under the cluster stage.
	if findSpan(sym, "core.symmetrize") == nil {
		t.Error("no core.symmetrize span under the symmetrize stage")
	}
	mcl := findSpan(cl, "mcl.iterate")
	if mcl == nil {
		t.Fatal("no mcl.iterate span under the cluster stage")
	}
	// JSON numbers decode as float64; just require a positive count.
	if v, ok := mcl.Attrs["iterations"].(float64); !ok || v < 1 {
		t.Errorf("mcl.iterate iterations attr = %v", mcl.Attrs["iterations"])
	}
}

// TestFaultedRunKeepsErroredSpan arms an injected fault inside the MCL
// iteration and verifies the failed async job still retains its trace,
// with the mcl.iterate span marked errored rather than dropped.
func TestFaultedRunKeepsErroredSpan(t *testing.T) {
	defer faultinject.Reset()
	_, ts := newTestServer(t, Config{Workers: 1})
	info := registerFigure1(t, ts)

	faultinject.Set("mcl.iterate", faultinject.Fault{Mode: faultinject.Error})
	resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
		GraphID: info.ID, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: 1,
		Async: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async status = %d", resp.StatusCode)
	}
	ref := decode[JobRef](t, resp)

	deadline := time.Now().Add(10 * time.Second)
	for {
		jresp, err := http.Get(ts.URL + ref.Location)
		if err != nil {
			t.Fatal(err)
		}
		job := decode[JobInfo](t, jresp)
		if job.State == string(JobFailed) {
			break
		}
		if job.State == string(JobDone) {
			t.Fatal("faulted job reported done")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	faultinject.Reset()

	tresp, err := http.Get(ts.URL + ref.Location + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace of failed job: status %d", tresp.StatusCode)
	}
	root := decode[*obs.SpanNode](t, tresp)
	if root.Name != "request" || root.Error == "" {
		t.Fatalf("root = %q error = %q, want errored request span", root.Name, root.Error)
	}
	mcl := findSpan(root, "mcl.iterate")
	if mcl == nil {
		t.Fatal("errored run dropped the mcl.iterate span")
	}
	if mcl.Error == "" {
		t.Error("mcl.iterate span not marked errored")
	}
	checkSpanTimes(t, root, nil)
}

// TestJobTraceEndpointUnknown covers the endpoint's 404 paths.
func TestJobTraceEndpointUnknown(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace: status %d", resp.StatusCode)
	}
}
