// Package server implements symclusterd, the HTTP clustering service
// over the paper's two-stage pipeline (Satuluri & Parthasarathy, EDBT
// 2011). Clients register directed graphs, then request clusterings by
// symmetrization method and substrate algorithm; the service caches
// symmetrized graphs — the expensive, reusable half of the pipeline —
// under a byte budget and runs the compute on a bounded worker pool
// with async jobs for large graphs.
//
// The package splits into:
//
//   - api.go        — JSON wire types, shared with cmd/symcluster -json
//   - server.go     — Server wiring, routing and lifecycle
//   - handlers.go   — the /v1 endpoint handlers
//   - admission.go  — working-set estimation and the job byte budget
//   - cache.go      — byte-budgeted LRU of symmetrized graphs
//   - pool.go       — bounded worker pool with cancellation and panic
//     isolation
//   - jobs.go       — async job store with TTL expiry
//   - metrics.go    — counters and text exposition for /metrics
//   - middleware.go — recovery, body limits, request accounting
package server

import (
	"fmt"
	"strings"

	symcluster "symcluster"
)

// ClusterRequest is the body of POST /v1/cluster. Method and Algorithm
// use the same short names as the symcluster CLI flags.
type ClusterRequest struct {
	// GraphID identifies a graph previously registered via
	// POST /v1/graphs.
	GraphID string `json:"graph_id"`
	// Method is the symmetrization: "dd", "bib", "aat" or "rw".
	Method string `json:"method"`
	// Algorithm is the clustering substrate: "mcl", "metis" or
	// "graclus".
	Algorithm string `json:"algorithm"`
	// K is the target cluster count (required for metis/graclus).
	K int `json:"k,omitempty"`
	// Alpha and Beta are the degree-discount exponents (dd only);
	// both default to 0.5 when omitted.
	Alpha *float64 `json:"alpha,omitempty"`
	Beta  *float64 `json:"beta,omitempty"`
	// Threshold prunes product entries below it (dd/bib only).
	Threshold float64 `json:"threshold,omitempty"`
	// Inflation overrides the MLR-MCL inflation directly.
	Inflation float64 `json:"inflation,omitempty"`
	// Seed drives all randomised choices.
	Seed int64 `json:"seed,omitempty"`
	// Async runs the request as a background job: the response is a
	// JobRef and the result is fetched from GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
}

// ClusterResponse is the result of a clustering run: the body of a
// synchronous POST /v1/cluster, the Result of a finished job, and the
// schema cmd/symcluster -json emits.
type ClusterResponse struct {
	GraphID   string `json:"graph_id,omitempty"`
	Method    string `json:"method"`
	Algorithm string `json:"algorithm"`
	// Nodes and UndirectedEdges describe the symmetrized graph the
	// substrate ran on.
	Nodes           int `json:"nodes"`
	UndirectedEdges int `json:"undirected_edges"`
	// K is the number of clusters found; Assign maps node → cluster.
	K      int   `json:"k"`
	Assign []int `json:"assign"`
	// CacheHit reports whether the symmetrized graph came from the
	// cache (always false for cmd/symcluster).
	CacheHit bool `json:"cache_hit"`
	// SymmetrizeMillis and ClusterMillis are wall-clock stage times.
	SymmetrizeMillis float64 `json:"symmetrize_millis"`
	ClusterMillis    float64 `json:"cluster_millis"`
	// AvgF is the micro-averaged best-match F-score against ground
	// truth, present only when truth is known (CLI -truth flag).
	AvgF *float64 `json:"avg_f,omitempty"`
}

// GraphInfo is the response of POST /v1/graphs and GET /v1/graphs/{id}.
type GraphInfo struct {
	ID                string  `json:"id"`
	Nodes             int     `json:"nodes"`
	Edges             int     `json:"edges"`
	SymmetricFraction float64 `json:"symmetric_fraction"`
}

// JobRef is the 202 response of an async POST /v1/cluster.
type JobRef struct {
	JobID string `json:"job_id"`
	// Location is the URL to poll for status and result.
	Location string `json:"location"`
}

// JobInfo is the response of GET /v1/jobs/{id}.
type JobInfo struct {
	JobID string `json:"job_id"`
	// State is one of "pending", "running", "done", "failed" or
	// "canceled".
	State string `json:"state"`
	// Result is present once State is "done".
	Result *ClusterResponse `json:"result,omitempty"`
	// Error is present once State is "failed".
	Error string `json:"error,omitempty"`
	// DurationMillis is the run time, present for finished jobs.
	DurationMillis float64 `json:"duration_millis,omitempty"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ParseMethod maps the wire name of a symmetrization ("dd", "bib",
// "aat", "rw") to the library constant.
func ParseMethod(name string) (symcluster.SymMethod, error) {
	switch strings.ToLower(name) {
	case "dd":
		return symcluster.DegreeDiscounted, nil
	case "bib":
		return symcluster.Bibliometric, nil
	case "aat":
		return symcluster.AAT, nil
	case "rw":
		return symcluster.RandomWalk, nil
	default:
		return 0, fmt.Errorf("unknown method %q (want dd, bib, aat or rw)", name)
	}
}

// ParseAlgorithm maps the wire name of a substrate ("mcl", "metis",
// "graclus") to the library constant.
func ParseAlgorithm(name string) (symcluster.Algorithm, error) {
	switch strings.ToLower(name) {
	case "mcl":
		return symcluster.MLRMCL, nil
	case "metis":
		return symcluster.Metis, nil
	case "graclus":
		return symcluster.Graclus, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want mcl, metis or graclus)", name)
	}
}
