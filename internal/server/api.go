// Package server implements symclusterd, the HTTP clustering service
// over the paper's two-stage pipeline (Satuluri & Parthasarathy, EDBT
// 2011). Clients register directed graphs, then request clusterings by
// symmetrization method and substrate algorithm; the service caches
// symmetrized graphs — the expensive, reusable half of the pipeline —
// under a byte budget and runs the compute on a bounded worker pool
// with async jobs for large graphs.
//
// The package splits into:
//
//   - api.go        — JSON wire types, shared with cmd/symcluster -json
//   - server.go     — Server wiring, routing and lifecycle
//   - handlers.go   — the /v1 endpoint handlers
//   - admission.go  — working-set estimation and the job byte budget
//   - cache.go      — byte-budgeted LRU of symmetrized graphs
//   - pool.go       — bounded worker pool with cancellation and panic
//     isolation
//   - jobs.go       — async job store with TTL expiry
//   - metrics.go    — counters and text exposition for /metrics
//   - middleware.go — recovery, body limits, request accounting
package server

import (
	symcluster "symcluster"
	"symcluster/internal/obs"
)

// ClusterRequest is the body of POST /v1/cluster. Method and Algorithm
// use the same names as the symcluster CLI flags: any canonical name
// or alias registered in the pipeline registry, case-insensitively.
type ClusterRequest struct {
	// GraphID identifies a graph previously registered via
	// POST /v1/graphs.
	GraphID string `json:"graph_id"`
	// Method is the symmetrization ("dd", "bib", "aat", "rw", or a
	// long-form alias such as "degree-discounted"). Ignored — and may
	// be empty — for algorithms that cluster the directed graph
	// directly (bestwcut, zhou).
	Method string `json:"method,omitempty"`
	// Algorithm is the clustering substrate ("mcl", "metis",
	// "graclus", "spectral", "bestwcut", "zhou", or an alias).
	Algorithm string `json:"algorithm"`
	// K is the target cluster count (required by every substrate
	// except mcl).
	K int `json:"k,omitempty"`
	// Alpha and Beta are the degree-discount exponents (dd only);
	// both default to 0.5 when omitted.
	Alpha *float64 `json:"alpha,omitempty"`
	Beta  *float64 `json:"beta,omitempty"`
	// Threshold prunes product entries below it (dd/bib only).
	Threshold float64 `json:"threshold,omitempty"`
	// Inflation overrides the MLR-MCL inflation directly.
	Inflation float64 `json:"inflation,omitempty"`
	// Seed drives all randomised choices.
	Seed int64 `json:"seed,omitempty"`
	// Async runs the request as a background job: the response is a
	// JobRef and the result is fetched from GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
}

// ClusterResponse is the result of a clustering run: the body of a
// synchronous POST /v1/cluster, the Result of a finished job, and the
// schema cmd/symcluster -json emits.
type ClusterResponse struct {
	GraphID string `json:"graph_id,omitempty"`
	// Method is the canonical name of the symmetrization that ran;
	// empty when the algorithm clustered the directed graph directly.
	Method    string `json:"method,omitempty"`
	Algorithm string `json:"algorithm"`
	// Nodes and UndirectedEdges describe the symmetrized graph the
	// substrate ran on; for directed-input algorithms Nodes is the
	// directed graph's node count and UndirectedEdges is 0.
	Nodes           int `json:"nodes"`
	UndirectedEdges int `json:"undirected_edges"`
	// K is the number of clusters found; Assign maps node → cluster.
	K      int   `json:"k"`
	Assign []int `json:"assign"`
	// CacheHit reports whether the symmetrized graph came from the
	// cache (always false for cmd/symcluster).
	CacheHit bool `json:"cache_hit"`
	// SymmetrizeMillis and ClusterMillis are wall-clock stage times.
	SymmetrizeMillis float64 `json:"symmetrize_millis"`
	ClusterMillis    float64 `json:"cluster_millis"`
	// Trace is the registry's per-stage trace: canonical stage names,
	// wall-clock timings, and the symmetrized edge count.
	Trace *symcluster.StageTrace `json:"trace,omitempty"`
	// Stats is the run's resource accounting (queue wait, per-stage
	// wall/CPU/allocation, cache and spill activity); see
	// obs.JobStatsSnapshot for the schema. Present on daemon responses
	// and on cmd/symcluster -json output.
	Stats *obs.JobStatsSnapshot `json:"stats,omitempty"`
	// AvgF is the micro-averaged best-match F-score against ground
	// truth, present only when truth is known (CLI -truth flag).
	AvgF *float64 `json:"avg_f,omitempty"`
}

// GraphInfo is the response of POST /v1/graphs and GET /v1/graphs/{id}.
type GraphInfo struct {
	ID                string  `json:"id"`
	Nodes             int     `json:"nodes"`
	Edges             int     `json:"edges"`
	SymmetricFraction float64 `json:"symmetric_fraction"`
}

// UploadRef is the 201 response of POST /v1/graphs/uploads: a chunked
// upload session for graphs too large for one request body.
type UploadRef struct {
	UploadID string `json:"upload_id"`
	// Location is the URL chunks are POSTed to (and /finalize appended
	// to when done).
	Location string `json:"location"`
}

// UploadStatus is the 202 response of each chunk append.
type UploadStatus struct {
	UploadID string `json:"upload_id"`
	// BytesReceived and Edges are running ingest totals across every
	// chunk so far.
	BytesReceived int64 `json:"bytes_received"`
	Edges         int64 `json:"edges"`
}

// UploadResult is the 201 response of POST
// /v1/graphs/uploads/{id}/finalize: the registered graph plus ingest
// statistics (spill runs and merged bytes are nonzero only when the
// upload exceeded the in-memory ingest buffer).
type UploadResult struct {
	Graph       GraphInfo `json:"graph"`
	Edges       int64     `json:"edges"`
	BytesIn     int64     `json:"bytes_in"`
	SpillRuns   int64     `json:"spill_runs"`
	MergedBytes int64     `json:"merged_bytes"`
}

// JobRef is the 202 response of an async POST /v1/cluster.
type JobRef struct {
	JobID string `json:"job_id"`
	// Location is the URL to poll for status and result.
	Location string `json:"location"`
}

// JobInfo is the response of GET /v1/jobs/{id}.
type JobInfo struct {
	JobID string `json:"job_id"`
	// State is one of "pending", "running", "done", "failed" or
	// "canceled".
	State string `json:"state"`
	// Result is present once State is "done".
	Result *ClusterResponse `json:"result,omitempty"`
	// Error is present once State is "failed".
	Error string `json:"error,omitempty"`
	// DurationMillis is the run time, present for finished jobs.
	DurationMillis float64 `json:"duration_millis,omitempty"`
	// TraceID is the distributed trace the job belongs to (assigned at
	// launch, stable across restarts and adoption); fetch the stitched
	// span tree from GET /v1/jobs/{id}/trace.
	TraceID string `json:"trace_id,omitempty"`
	// LinkTraceID, on a job adopted from a dead peer, is the trace id of
	// the original run on that peer.
	LinkTraceID string `json:"link_trace_id,omitempty"`
}

// NodeStatus is one node's row in the federated cluster status report
// (GET /v1/cluster/status) and the body of the internal self-report
// (GET /internal/v1/status). For a node this node could not reach, only
// Name, State and Error are set — the rest of the row degrades to zero
// rather than blocking the report.
type NodeStatus struct {
	Name string `json:"name"`
	// State is this node's probe verdict for the row: "up", "down" or
	// "half-open" ("up" for self).
	State         string  `json:"state"`
	Version       string  `json:"version,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
	Draining      bool    `json:"draining,omitempty"`
	// Jobs is the node's async-job census by state.
	Jobs map[string]int `json:"jobs,omitempty"`
	// QueueBytes is the summed working-set estimate of queued runs;
	// QueueDepth the tasks waiting for a worker.
	QueueBytes int64 `json:"queue_bytes"`
	QueueDepth int   `json:"queue_depth"`
	// WALBytes is the current size of the node's job journal (zero
	// without a data dir).
	WALBytes int64 `json:"wal_bytes"`
	// MappedCSRBytes is the bytes of binary CSR files the node has
	// memory-mapped; TraceRingBytes the rendered bytes retained in its
	// trace ring.
	MappedCSRBytes int64 `json:"mapped_csr_bytes"`
	TraceRingBytes int64 `json:"trace_ring_bytes"`
	// ShedTotal counts requests shed by the queued-byte watermark;
	// JobsAdopted the jobs taken over from dead peers' WALs.
	ShedTotal   int64 `json:"shed_total"`
	JobsAdopted int64 `json:"jobs_adopted"`
	// Breakers is this node's outbound circuit-breaker position per
	// peer ("closed", "half-open" or "open"); only peers whose breaker
	// has ever tripped — or been seeded — appear.
	Breakers map[string]string `json:"breakers,omitempty"`
	// RetryBudgetExhausted counts outbound retries this node denied
	// because its token-bucket retry budget was empty.
	RetryBudgetExhausted int64 `json:"retry_budget_exhausted"`
	// Error carries the fetch failure for degraded rows.
	Error string `json:"error,omitempty"`
}

// ClusterStatus is the response of GET /v1/cluster/status: the report's
// point of view (the node that assembled it) and one row per member.
type ClusterStatus struct {
	Self  string       `json:"self,omitempty"`
	Nodes []NodeStatus `json:"nodes"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ParseMethod maps the wire name or any registered alias of a
// symmetrization to the library constant. Unknown names yield an error
// listing the valid set, generated from the pipeline registry.
func ParseMethod(name string) (symcluster.SymMethod, error) {
	return symcluster.ParseMethod(name)
}

// ParseAlgorithm maps the wire name or any registered alias of a
// substrate to the library constant. Unknown names yield an error
// listing the valid set, generated from the pipeline registry.
func ParseAlgorithm(name string) (symcluster.Algorithm, error) {
	return symcluster.ParseAlgorithm(name)
}
