package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"symcluster/internal/cluster"
	"symcluster/internal/csr"
	"symcluster/internal/jobstore"
)

// clusterNode is one member of an in-process test cluster.
type clusterNode struct {
	s    *Server
	ts   *httptest.Server
	peer *cluster.Peer
}

// newTestCluster boots n in-process symclusterd nodes that know each
// other as peers. Listeners are bound before any server starts, so the
// peer list is complete up front; probe cadence is fast and thresholds
// forgiving enough to absorb the boot window where some listeners are
// bound but not yet serving.
func newTestCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	peers := make([]*cluster.Peer, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		peers[i] = &cluster.Peer{Name: l.Addr().String(), URL: "http://" + l.Addr().String(), Weight: 1}
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		cfg := Config{
			Workers: 2,
			Cluster: &ClusterConfig{
				Self:             peers[i].Name,
				Peers:            peers,
				ProbeInterval:    25 * time.Millisecond,
				FailThreshold:    3,
				RecoverThreshold: 1,
				ProxyTimeout:     5 * time.Second,
				ProxyMaxWait:     50 * time.Millisecond,
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s := mustNew(t, cfg)
		ts := httptest.NewUnstartedServer(s.Handler())
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Start()
		nodes[i] = &clusterNode{s: s, ts: ts, peer: peers[i]}
		t.Cleanup(ts.Close)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Drain(ctx)
			s.Close()
		})
	}
	return nodes
}

// ownerIndex resolves which test node owns a graph id.
func ownerIndex(t *testing.T, nodes []*clusterNode, graphID string) int {
	t.Helper()
	owner, ok := nodes[0].s.coord.ownerOf(graphID)
	if !ok {
		t.Fatalf("no healthy owner for %s", graphID)
	}
	for i, n := range nodes {
		if n.peer.Name == owner.Name {
			return i
		}
	}
	t.Fatalf("owner %s is not a test node", owner.Name)
	return -1
}

// getURL GETs and returns status plus body.
func getURL(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func TestClusterRoutesGraphToOwner(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	info := registerFigure1(t, nodes[0].ts)
	oi := ownerIndex(t, nodes, info.ID)

	// The graph lives only on its owning shard, wherever registration
	// happened to land.
	if _, ok := nodes[oi].s.lookupGraph(info.ID); !ok {
		t.Fatal("owner does not hold the graph")
	}
	if _, ok := nodes[1-oi].s.lookupGraph(info.ID); ok {
		t.Fatal("non-owner holds a copy of the graph")
	}

	// Registering the same content via the other node converges on the
	// same id (content-derived), with no duplicate state.
	if info2 := registerFigure1(t, nodes[1-oi].ts); info2.ID != info.ID {
		t.Fatalf("re-registration id %s != %s", info2.ID, info.ID)
	}

	// The graph is readable through any node: local on the owner, one
	// forwarded hop elsewhere.
	for i, n := range nodes {
		if code, body := getURL(t, n.ts.URL+"/v1/graphs/"+info.ID); code != http.StatusOK {
			t.Fatalf("GET graph via node %d: status %d: %s", i, code, body)
		}
	}

	// Synchronous clustering submitted to either node yields identical
	// assignments — the non-owner's request ran on the owner.
	req := ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: 1}
	var assigns [2]string
	for i, n := range nodes {
		resp := postJSON(t, n.ts.URL+"/v1/cluster", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cluster via node %d: status %d", i, resp.StatusCode)
		}
		assigns[i] = fmt.Sprint(decode[ClusterResponse](t, resp).Assign)
	}
	if assigns[0] != assigns[1] {
		t.Fatalf("assignments diverge between nodes: %s vs %s", assigns[0], assigns[1])
	}

	// The non-owner counted its forwarded hops.
	metrics := scrapeMetrics(t, nodes[1-oi].ts.URL)
	if !strings.Contains(metrics, `symclusterd_proxy_requests_total{peer="`+nodes[oi].peer.Name+`"`) {
		t.Fatalf("non-owner exposition lacks proxy request counts:\n%s", metrics)
	}
}

func TestClusterJobIDsRouteAcrossNodes(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	info := registerFigure1(t, nodes[0].ts)
	oi := ownerIndex(t, nodes, info.ID)
	owner, other := nodes[oi], nodes[1-oi]

	// Async submission through the NON-owner is forwarded: the job id
	// comes back qualified with the owner's name.
	req := ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: 1, Async: true}
	resp := postJSON(t, other.ts.URL+"/v1/cluster", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d", resp.StatusCode)
	}
	ref := decode[JobRef](t, resp)
	if !strings.HasSuffix(ref.JobID, "@"+owner.peer.Name) {
		t.Fatalf("job id %q not qualified with owner %q", ref.JobID, owner.peer.Name)
	}

	// Poll through the non-owner until done; the routed response echoes
	// the qualified id.
	var done JobInfo
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, body := getURL(t, other.ts.URL+"/v1/jobs/"+ref.JobID)
		if code == http.StatusOK {
			if err := json.Unmarshal(body, &done); err != nil {
				t.Fatal(err)
			}
			if done.State == "done" {
				break
			}
			if done.State == "failed" || done.State == "canceled" {
				t.Fatalf("job ended %q: %s", done.State, done.Error)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", done.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if done.JobID != ref.JobID {
		t.Fatalf("polled JobID = %q, want the qualified %q", done.JobID, ref.JobID)
	}
	if done.Result == nil || len(done.Result.Assign) == 0 {
		t.Fatal("done job has no assignments")
	}

	// The trace is reachable through both nodes.
	for i, n := range nodes {
		if code, body := getURL(t, n.ts.URL+"/v1/jobs/"+ref.JobID+"/trace"); code != http.StatusOK {
			t.Fatalf("trace via node %d: status %d: %s", i, code, body)
		}
	}
}

func TestClusterUploadRoutesByQualifiedID(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	a, b := nodes[0], nodes[1]

	// Create the session on A; its id is pinned to A.
	resp, err := http.Post(a.ts.URL+"/v1/graphs/uploads", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload create: status %d", resp.StatusCode)
	}
	ref := decode[UploadRef](t, resp)
	if !strings.HasSuffix(ref.UploadID, "@"+a.peer.Name) {
		t.Fatalf("upload id %q not qualified with creator %q", ref.UploadID, a.peer.Name)
	}

	// Append and finalize through B: both hop back to A by the suffix.
	resp, err = http.Post(b.ts.URL+"/v1/graphs/uploads/"+ref.UploadID, "text/plain", strings.NewReader(figure1Edges))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("append via peer: status %d", resp.StatusCode)
	}
	if status := decode[UploadStatus](t, resp); status.UploadID != ref.UploadID {
		t.Fatalf("append echoed id %q, want %q", status.UploadID, ref.UploadID)
	}
	resp, err = http.Post(b.ts.URL+"/v1/graphs/uploads/"+ref.UploadID+"/finalize", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("finalize via peer: status %d: %s", resp.StatusCode, body)
	}
	res := decode[UploadResult](t, resp)

	// Wherever ingest ran, the finished graph lives on its owner and is
	// immediately usable from any node.
	oi := ownerIndex(t, nodes, res.Graph.ID)
	if _, ok := nodes[oi].s.lookupGraph(res.Graph.ID); !ok {
		t.Fatalf("finalized graph %s not on its owner", res.Graph.ID)
	}
	req := ClusterRequest{GraphID: res.Graph.ID, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: 1}
	for i, n := range nodes {
		if resp := postJSON(t, n.ts.URL+"/v1/cluster", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("cluster via node %d: status %d", i, resp.StatusCode)
		} else {
			resp.Body.Close()
		}
	}
}

// waitPeerState polls a node's /healthz until its verdict on peer
// matches want.
func waitPeerState(t *testing.T, ts *httptest.Server, peer, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := getURL(t, ts.URL+"/healthz")
		if code == http.StatusOK {
			var hb healthzBody
			if err := json.Unmarshal(body, &hb); err == nil && hb.Peers[peer] == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer %s never became %q", peer, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClusterDownPeerAnswers503WithRetryAfter(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	info := registerFigure1(t, nodes[0].ts)
	oi := ownerIndex(t, nodes, info.ID)
	owner, other := nodes[oi], nodes[1-oi]

	// Park a job on the owner so its qualified id exists, then kill the
	// owner's listener.
	req := ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: 1, Async: true}
	resp := postJSON(t, owner.ts.URL+"/v1/cluster", req)
	ref := decode[JobRef](t, resp)
	owner.ts.Close()
	waitPeerState(t, other.ts, owner.peer.Name, "down")

	// Polling the dead node's job through the survivor: without a
	// shared durable root there is nothing to adopt, so the survivor
	// answers 503 + Retry-After rather than pretending.
	r, err := http.Get(other.ts.URL + "/v1/jobs/" + ref.JobID)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("job poll against dead peer: status %d", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// The survivor's gauge flags the dead peer.
	metrics := scrapeMetrics(t, other.ts.URL)
	want := `symclusterd_peer_unhealthy{peer="` + owner.peer.Name + `"} 1`
	if !strings.Contains(metrics, want) {
		t.Fatalf("exposition lacks %q:\n%s", want, metrics)
	}

	// Work against the dead owner's graph now reroutes to the survivor
	// (the ring skips down peers), who answers 404 locally — these nodes
	// share no durable root, so the data died with its owner. Crucially
	// it is a crisp local answer, not a 502 or a hang.
	syncReq := ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: 1}
	if resp := postJSON(t, other.ts.URL+"/v1/cluster", syncReq); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("rerouted cluster for dead graph: status %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// And the cluster keeps accepting fresh work: a new registration
	// lands on the survivor (sole healthy ring member) and clusters.
	info2 := registerFigure1(t, other.ts)
	syncReq.GraphID = info2.ID
	if resp := postJSON(t, other.ts.URL+"/v1/cluster", syncReq); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh cluster after failover: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// seedDeadPeerStore writes a jobstore under root for a fictitious dead
// node: one persisted graph and one pending job against it. Returns
// the dead peer's name and the graph id.
func seedDeadPeerStore(t *testing.T, root string) (string, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	name := l.Addr().String()
	l.Close() // nothing will ever listen here: probes get refused

	g := mustFigure1Graph(t)
	gid := fmt.Sprintf("g-%016x", g.Fingerprint())
	st, err := jobstore.Open(filepath.Join(root, nodeDirName(name)))
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(t.TempDir(), "g.csr")
	if err := csr.WriteMatrix(context.Background(), tmp, g.Adj); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AdoptGraphFile(gid, tmp); err != nil {
		t.Fatal(err)
	}
	reqJSON, err := json.Marshal(ClusterRequest{GraphID: gid, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Create(&jobstore.JobRecord{
		ID: "job-000001", State: jobstore.Pending, Request: reqJSON, Created: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	return name, gid
}

// newSurvivor boots one durable cluster node whose only peer is the
// (dead) named node, sharing the data root.
func newSurvivor(t *testing.T, root, deadName string) *clusterNode {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := &cluster.Peer{Name: l.Addr().String(), URL: "http://" + l.Addr().String(), Weight: 1}
	dead := &cluster.Peer{Name: deadName, URL: "http://" + deadName, Weight: 1}
	s := mustNew(t, Config{
		Workers: 2,
		DataDir: root,
		Cluster: &ClusterConfig{
			Self:             self.Name,
			Peers:            []*cluster.Peer{dead, self},
			ProbeInterval:    20 * time.Millisecond,
			FailThreshold:    2,
			RecoverThreshold: 1,
			ProxyMaxWait:     50 * time.Millisecond,
		},
	})
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
		s.Close()
	})
	return &clusterNode{s: s, ts: ts, peer: self}
}

func TestClusterAdoptsDeadPeerWAL(t *testing.T) {
	root := t.TempDir()
	deadName, _ := seedDeadPeerStore(t, root)
	node := newSurvivor(t, root, deadName)

	// The survivor detects the refused peer, adopts its WAL, resumes
	// the pending job, and serves it under the dead node's qualified id.
	var done JobInfo
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, body := getURL(t, node.ts.URL+"/v1/jobs/job-000001@"+deadName)
		if code == http.StatusOK {
			if err := json.Unmarshal(body, &done); err != nil {
				t.Fatal(err)
			}
			if done.State == "done" {
				break
			}
			if done.State == "failed" {
				t.Fatalf("adopted job failed: %s", done.Error)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("adopted job never finished (last state %q)", done.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if done.Result == nil || len(done.Result.Assign) == 0 {
		t.Fatal("adopted job finished without assignments")
	}
	metrics := scrapeMetrics(t, node.ts.URL)
	if !strings.Contains(metrics, "symclusterd_jobs_adopted_total 1") {
		t.Fatalf("jobs_adopted_total != 1:\n%s", metrics)
	}

	// The dead peer's journal was fenced: a reboot of that node replays
	// the job as canceled, not as runnable work.
	st, err := jobstore.Open(filepath.Join(root, nodeDirName(deadName)))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec, ok := st.Lookup("job-000001")
	if !ok {
		t.Fatal("fenced job vanished from the dead WAL")
	}
	if rec.State != jobstore.Canceled {
		t.Fatalf("dead WAL job state = %s, want canceled (fenced)", rec.State)
	}
	if !strings.Contains(rec.Err, "adopted by "+node.peer.Name) {
		t.Fatalf("fence marker = %q", rec.Err)
	}
}

func TestClusterDoesNotAdoptFromShedding503Peer(t *testing.T) {
	root := t.TempDir()

	// A peer that is alive but shedding: /healthz (and everything else)
	// answers 503. It must be declared down for routing, but its WAL
	// must NOT be adopted — the process owns it and will recover.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shedding := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})}
	go shedding.Serve(l)
	t.Cleanup(func() { shedding.Close() })
	deadName := l.Addr().String()

	// Seed that peer's store with a pending job, as if it crashed —
	// except it didn't: it is answering 503s.
	g := mustFigure1Graph(t)
	gid := fmt.Sprintf("g-%016x", g.Fingerprint())
	st, err := jobstore.Open(filepath.Join(root, nodeDirName(deadName)))
	if err != nil {
		t.Fatal(err)
	}
	reqJSON, _ := json.Marshal(ClusterRequest{GraphID: gid, Method: "dd", Algorithm: "mcl", Seed: 1})
	if err := st.Create(&jobstore.JobRecord{
		ID: "job-000001", State: jobstore.Pending, Request: reqJSON, Created: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	node := newSurvivor(t, root, deadName)
	waitPeerState(t, node.ts, deadName, "down")
	// Give several further probe rounds a chance to (wrongly) adopt.
	time.Sleep(150 * time.Millisecond)

	metrics := scrapeMetrics(t, node.ts.URL)
	if !strings.Contains(metrics, "symclusterd_jobs_adopted_total 0") {
		t.Fatalf("adoption ran against a live (shedding) peer:\n%s", metrics)
	}
	// And the job routes as "down, failover in progress", not adopted.
	code, _ := getURL(t, node.ts.URL+"/v1/jobs/job-000001@"+deadName)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("job poll: status %d, want 503", code)
	}
}

func TestUploadSessionsExpireAfterTTL(t *testing.T) {
	// TTL long enough that the background sweeper never fires during
	// the test; expiry is driven synchronously for determinism.
	s, ts := newTestServer(t, Config{Workers: 1, UploadTTL: time.Hour})
	resp, err := http.Post(ts.URL+"/v1/graphs/uploads", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := decode[UploadRef](t, resp)
	sess, ok := s.lookupUpload(ref.UploadID)
	if !ok {
		t.Fatal("session not registered")
	}
	scratch := sess.dir

	// A sweep before the TTL leaves the session alive.
	s.expireUploads(time.Now())
	r, err := http.Post(ts.URL+"/v1/graphs/uploads/"+ref.UploadID, "text/plain", strings.NewReader("0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("append before TTL: status %d", r.StatusCode)
	}

	// A sweep past the TTL reaps it: the session is gone, its scratch
	// directory deleted, and the expiry counted.
	s.expireUploads(time.Now().Add(2 * time.Hour))
	r, err = http.Post(ts.URL+"/v1/graphs/uploads/"+ref.UploadID, "text/plain", strings.NewReader("1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("append after expiry: status %d, want 404", r.StatusCode)
	}
	if _, err := os.Stat(scratch); !os.IsNotExist(err) {
		t.Fatalf("expired session scratch %s still present (err=%v)", scratch, err)
	}
	metrics := scrapeMetrics(t, ts.URL)
	if !strings.Contains(metrics, "symclusterd_upload_sessions_expired_total 1") {
		t.Fatalf("upload_sessions_expired_total != 1:\n%s", metrics)
	}
}

func TestSingleNodeIDsStayUnqualified(t *testing.T) {
	// Single-node mode must be byte-compatible with the pre-cluster
	// daemon: no "@" qualification anywhere.
	_, ts := newTestServer(t, Config{Workers: 1})
	info := registerFigure1(t, ts)
	req := ClusterRequest{GraphID: info.ID, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: 1, Async: true}
	resp := postJSON(t, ts.URL+"/v1/cluster", req)
	ref := decode[JobRef](t, resp)
	if strings.Contains(ref.JobID, "@") {
		t.Fatalf("single-node job id %q is qualified", ref.JobID)
	}
	r, err := http.Post(ts.URL+"/v1/graphs/uploads", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	uref := decode[UploadRef](t, r)
	if strings.Contains(uref.UploadID, "@") {
		t.Fatalf("single-node upload id %q is qualified", uref.UploadID)
	}
}
