package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"symcluster/internal/cluster"
	"symcluster/internal/csr"
	"symcluster/internal/obs"
)

// The cluster status plane and cross-node trace assembly:
//
//   - GET /v1/jobs/{id}/stats     — a finished job's resource accounting
//   - GET /v1/cluster/status      — federated per-node status report
//   - GET /internal/v1/status     — one node's cheap self-report
//   - GET /internal/v1/traces/{id}— one node's retained trace segments
//
// The federated report never blocks on a dead peer: rows for peers the
// health checker already considers down (or half-open) are rendered
// from the cached verdict without touching the network, and rows for
// nominally-up peers are fetched concurrently under a short per-peer
// timeout, degrading to a name + error on failure.

// internalStatusPath is the peer-to-peer self-report route.
const internalStatusPath = "/internal/v1/status"

// internalTracesPrefix is the peer-to-peer trace-segment route; append
// the path-escaped trace id.
const internalTracesPrefix = "/internal/v1/traces/"

// statusFanoutTimeout bounds each per-peer fetch of the status plane
// (status rows and trace segments). It is deliberately much shorter
// than the proxy timeout: the report degrades instead of waiting.
const statusFanoutTimeout = 2 * time.Second

// handleJobStats serves GET /v1/jobs/{id}/stats: the job's resource
// accounting, present once the job finished (the snapshot is taken at
// completion and, in durable mode, journaled with the finish record, so
// it answers across restarts).
func (s *Server) handleJobStats(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Snapshot(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if job.Stats == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("job %q has no stats yet (state %s)", job.ID, job.State))
		return
	}
	writeJSON(w, http.StatusOK, job.Stats)
}

// nodeStatus assembles this node's own status row, reading the same
// live sources as the /metrics exposition.
func (s *Server) nodeStatus() NodeStatus {
	ns := NodeStatus{
		State:          "up",
		Version:        obs.Version,
		UptimeSeconds:  time.Since(s.startTime).Seconds(),
		Draining:       s.Draining(),
		QueueBytes:     s.queuedBytes.Load(),
		QueueDepth:     s.pool.QueueDepth(),
		MappedCSRBytes: csr.MappedBytes(),
		TraceRingBytes: s.traces.RingBytes(),
		ShedTotal:      s.shedTotal.Load(),
		JobsAdopted:    s.metrics.JobsAdoptedValue(),
	}
	if s.store != nil {
		ns.WALBytes = s.store.LogBytes()
	}
	jobs := make(map[string]int)
	for st, n := range s.jobs.Counts() {
		jobs[string(st)] = n
	}
	ns.Jobs = jobs
	if s.coord != nil {
		ns.Name = s.coord.self.Name
		ns.RetryBudgetExhausted = s.metrics.RetryBudgetExhaustedValue()
		states := s.coord.breakers.States()
		if len(states) > 0 {
			breakers := make(map[string]string, len(states))
			for peer, st := range states {
				breakers[peer] = st.String()
			}
			ns.Breakers = breakers
		}
	}
	return ns
}

// handleInternalStatus serves a peer's status fan-out: this node's own
// row, cheap enough to answer on every poll.
func (s *Server) handleInternalStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.nodeStatus())
}

// handleInternalTraces serves the retained segments of one distributed
// trace from this node's ring, for a peer assembling the stitched tree.
func (s *Server) handleInternalTraces(w http.ResponseWriter, r *http.Request) {
	segs := s.traces.ByTraceID(r.PathValue("id"))
	if segs == nil {
		segs = []*obs.SpanNode{}
	}
	writeJSON(w, http.StatusOK, segs)
}

// handleClusterStatus serves GET /v1/cluster/status. In single-node
// mode the report is just this node; in cluster mode it federates one
// row per member.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	self := s.nodeStatus()
	status := ClusterStatus{Nodes: []NodeStatus{self}}
	if s.coord != nil {
		status.Self = s.coord.self.Name
		status.Nodes = s.coord.federateStatus(r.Context(), self)
	}
	writeJSON(w, http.StatusOK, status)
}

// federateStatus builds one row per cluster member: self locally, down
// and half-open peers from the health checker's cached verdict (no
// network — this is what keeps a dead peer from stalling the report),
// nominally-up peers whose outbound breaker is open from the breaker's
// verdict (same reasoning: the breaker just proved the peer is not
// answering, so the report says so without another doomed probe), and
// the rest via concurrent fetches under the fan-out timeout.
func (c *coordinator) federateStatus(ctx context.Context, self NodeStatus) []NodeStatus {
	peers := c.ring.Peers()
	rows := make([]NodeStatus, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		switch state := c.health.State(p.Name); {
		case p.Name == c.self.Name:
			rows[i] = self
		case state != "up":
			rows[i] = NodeStatus{Name: p.Name, State: state}
		case c.breakers.State(p.Name) == cluster.BreakerOpen:
			rows[i] = NodeStatus{Name: p.Name, State: state, Error: "breaker open"}
		default:
			wg.Add(1)
			go func(i int, p *cluster.Peer) {
				defer wg.Done()
				rows[i] = c.fetchStatus(ctx, p)
			}(i, p)
		}
	}
	wg.Wait()
	return rows
}

// fetchStatus pulls one up peer's self-report, degrading the row to
// name + error when the peer does not answer within the fan-out
// timeout (it may have died since its last probe). The effective
// per-peer timeout is min(statusFanoutTimeout, caller's remaining
// budget): WithTimeout never extends past the parent deadline, so a
// caller with 300ms left gets a 300ms fan-out, not a 2s one.
func (c *coordinator) fetchStatus(ctx context.Context, p *cluster.Peer) NodeStatus {
	if err := ctx.Err(); err != nil {
		// The caller's deadline already passed; skip the doomed fetch.
		return NodeStatus{Name: p.Name, State: "up", Error: err.Error()}
	}
	ctx, cancel := context.WithTimeout(ctx, statusFanoutTimeout)
	defer cancel()
	resp, err := c.client.Do(ctx, http.MethodGet, p.URL+internalStatusPath, http.Header{}, nil)
	if err != nil {
		return NodeStatus{Name: p.Name, State: "up", Error: err.Error()}
	}
	defer resp.Body.Close()
	var ns NodeStatus
	derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ns)
	if resp.StatusCode != http.StatusOK || derr != nil {
		return NodeStatus{Name: p.Name, State: "up",
			Error: fmt.Sprintf("status fetch failed (code %d)", resp.StatusCode)}
	}
	ns.Name = p.Name
	ns.State = "up"
	return ns
}

// mergeTrace assembles the stitched tree of one distributed trace: the
// local tree (deep-copied, so repeated GETs never mutate the stored
// job trace) plus whatever segments healthy peers retain for the same
// trace id, fetched concurrently under the fan-out timeout. Peers that
// evicted their segment — or died — just mean a shallower tree, as do
// peers behind an open breaker (the breaker just proved they are not
// answering; probing them again would only slow the merge down).
func (c *coordinator) mergeTrace(ctx context.Context, traceID string, local *obs.SpanNode) *obs.SpanNode {
	segments := []*obs.SpanNode{copySpanTree(local)}
	peers := c.ring.Peers()
	remote := make([][]*obs.SpanNode, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		if p.Name == c.self.Name || !c.health.Healthy(p.Name) {
			continue
		}
		if c.breakers.State(p.Name) == cluster.BreakerOpen {
			continue
		}
		wg.Add(1)
		go func(i int, p *cluster.Peer) {
			defer wg.Done()
			remote[i] = c.fetchTraceSegments(ctx, p, traceID)
		}(i, p)
	}
	wg.Wait()
	for _, segs := range remote {
		segments = append(segments, segs...)
	}
	if merged := obs.MergeSegments(segments); merged != nil {
		return merged
	}
	return local
}

// fetchTraceSegments pulls one peer's retained segments of a trace;
// failures degrade to no segments rather than failing the merge. Like
// fetchStatus, the per-peer timeout is capped by the caller's
// remaining budget.
func (c *coordinator) fetchTraceSegments(ctx context.Context, p *cluster.Peer, traceID string) []*obs.SpanNode {
	if ctx.Err() != nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(ctx, statusFanoutTimeout)
	defer cancel()
	resp, err := c.client.Do(ctx, http.MethodGet,
		p.URL+internalTracesPrefix+url.PathEscape(traceID), http.Header{}, nil)
	if err != nil {
		c.s.log().Debug("fetching trace segments", "peer", p.Name, "trace", traceID, "err", err)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var segs []*obs.SpanNode
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&segs); err != nil {
		c.s.log().Debug("decoding trace segments", "peer", p.Name, "trace", traceID, "err", err)
		return nil
	}
	return segs
}

// copySpanTree deep-copies a span tree (JSON round-trip): MergeSegments
// mutates the trees it stitches, and the input here is the long-lived
// tree stored on the job record.
func copySpanTree(n *obs.SpanNode) *obs.SpanNode {
	raw, err := json.Marshal(n)
	if err != nil {
		return n
	}
	out := new(obs.SpanNode)
	if err := json.Unmarshal(raw, out); err != nil {
		return n
	}
	return out
}
