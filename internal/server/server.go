package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	symcluster "symcluster"
	"symcluster/internal/csr"
	"symcluster/internal/jobstore"
	"symcluster/internal/obs"
	"symcluster/internal/pipeline"
)

// Config sizes the service. Zero values select the defaults noted on
// each field.
type Config struct {
	// Workers is the worker-pool size (default 2).
	Workers int
	// QueueDepth bounds tasks waiting for a worker (default 4×Workers).
	// When the queue is full, POST /v1/cluster sheds load with 503.
	QueueDepth int
	// CacheBytes budgets the symmetrization cache (default 256 MiB).
	CacheBytes int64
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
	// RequestTimeout bounds each synchronous clustering run (default
	// 60s). Async jobs are not subject to it.
	RequestTimeout time.Duration
	// DeadlineThroughput is the deliberately optimistic bytes-per-second
	// figure the submit-time deadline check divides a job's admission
	// byte estimate by: a request whose remaining budget is below even
	// that best-case runtime is rejected 504 before it occupies queue or
	// worker (default 4 GiB/s — high enough that only hopeless requests
	// are refused; real runs that merely MIGHT miss their deadline still
	// get to try, and in-flight expiry cancels them cleanly). Zero or
	// negative selects the default; tests lower it to force rejections.
	DeadlineThroughput int64
	// RetainJobs caps retained finished jobs (default 256).
	RetainJobs int
	// JobTTL expires finished async jobs after this duration so an
	// unattended daemon does not hold results forever. Zero or negative
	// disables expiry (the default; cmd/symclusterd sets 15m).
	JobTTL time.Duration
	// MaxJobBytes rejects clustering requests whose estimated working
	// set exceeds this many bytes with 413 (admission control). Zero or
	// negative disables the check (the default; cmd/symclusterd sets
	// 4 GiB).
	MaxJobBytes int64
	// MaxQueueBytes sheds new clustering requests with 429 once the
	// summed working-set estimates of queued (not yet dequeued) jobs
	// reach this level. It is a high-watermark check: a single request
	// on an empty queue is always admitted, however large its estimate,
	// so the limit never deadlocks a graph that passes MaxJobBytes.
	// Zero or negative disables shedding (the default).
	MaxQueueBytes int64
	// DataDir, when set, makes jobs durable: every job mutation is
	// journaled to a WAL under this directory, uploaded graphs are
	// persisted alongside it, and on startup interrupted jobs are
	// replayed and re-enqueued. Empty (the default) keeps the job store
	// purely in memory.
	//
	// In cluster mode (Cluster non-nil) DataDir is the SHARED data
	// root: each node journals under DataDir/node-<name>, and when a
	// peer dies its ring-elected successor adopts that subdirectory's
	// WAL to finish the peer's jobs from their checkpoints (DESIGN.md
	// §14).
	DataDir string
	// UploadTTL expires chunked-upload sessions idle longer than this:
	// their scratch (ingest buffers, spill runs) is reaped and further
	// requests against the session 404. Zero or negative disables
	// expiry (the default; cmd/symclusterd sets 15m).
	UploadTTL time.Duration
	// Cluster, when non-nil, runs this node as a member of a static
	// multi-node cluster: graphs are sharded over the peers by
	// fingerprint, mis-routed requests are forwarded to their owner,
	// peers are health-checked, and (with DataDir) dead peers' jobs
	// fail over. Nil (the default) is single-node mode, which behaves
	// exactly as if the cluster code did not exist.
	Cluster *ClusterConfig
	// SpillDir hosts out-of-core scratch: upload ingest state, external
	// sort runs, and the intermediate files of out-of-core
	// symmetrizations. Empty means the OS temp dir.
	SpillDir string
	// MaxSpillBytes is the hard disk budget for one out-of-core run's
	// scratch files. Requests whose projected spill exceeds it are
	// rejected with 413 — the only size rejection left for out-of-core
	// capable methods. Zero or negative disables the check (the
	// default).
	MaxSpillBytes int64
	// MaxResidentBytes bounds the heap-resident intermediates of each
	// out-of-core symmetrization (the pruned products, which cannot
	// live on disk); a run that exceeds it fails with
	// core.ErrResidentBudget. Zero or negative disables the bound (the
	// default).
	MaxResidentBytes int64
	// IngestMemBytes is the in-memory buffer of streaming graph
	// ingestion and of out-of-core transposes; past it, sorted runs
	// spill to SpillDir (default 64 MiB).
	IngestMemBytes int64
	// CheckpointIters is how often (in kernel iterations) a durable
	// async job snapshots its kernel state to the WAL so a crash or
	// drain resumes mid-run instead of starting over (default 25; only
	// meaningful with DataDir).
	CheckpointIters int
	// PreemptGrace bounds how long Drain waits, after cancelling stuck
	// jobs, for their kernels to write a final checkpoint and return
	// (default 5s; only meaningful with DataDir).
	PreemptGrace time.Duration
	// Logger receives request and lifecycle logs; nil means
	// slog.Default(). cmd/symclusterd installs a JSON-handler logger.
	Logger *slog.Logger
	// TraceSink receives the span tree of every clustering run (JSONL
	// file and/or in-memory ring; see obs.NewTraceSink). Nil means a
	// ring-only sink sized for the trace endpoint.
	TraceSink *obs.TraceSink
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.DeadlineThroughput <= 0 {
		c.DeadlineThroughput = 4 << 30
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 256
	}
	if c.CheckpointIters <= 0 {
		c.CheckpointIters = 25
	}
	if c.IngestMemBytes <= 0 {
		c.IngestMemBytes = 64 << 20
	}
	if c.PreemptGrace <= 0 {
		c.PreemptGrace = 5 * time.Second
	}
	return c
}

// errPreempted is the cancellation cause Drain attaches when it
// preempts a durable job that would not finish within the drain
// deadline; the completion path sees it and requeues the job (it was
// checkpointed, so the next boot resumes it) instead of marking it
// canceled.
var errPreempted = errors.New("server: job preempted by drain")

// Server is the symclusterd service: a graph registry, a symmetrization
// cache, a bounded worker pool and an async job store behind a JSON
// HTTP API. Construct with New, mount Handler, stop with Drain.
type Server struct {
	cfg       Config
	mux       *http.ServeMux
	pool      *Pool
	cache     *Cache
	jobs      *JobStore
	store     *jobstore.Store // nil without DataDir
	metrics   *Metrics
	traces    *obs.TraceSink
	startTime time.Time

	graphMu  sync.RWMutex
	graphs   map[string]*registeredGraph
	draining atomic.Bool

	// coord is the cluster coordinator (routing, health, failover);
	// nil in single-node mode, and every cluster behavior is gated on
	// it so single-node semantics are untouched.
	coord *coordinator
	// stop ends background loops (the upload-TTL sweeper); closeOnce
	// makes Close idempotent about it.
	stop      chan struct{}
	closeOnce sync.Once

	// uploadMu guards uploads, the in-flight chunked graph uploads
	// (streaming ingest sessions keyed by upload id).
	uploadMu  sync.Mutex
	uploads   map[string]*uploadSession
	uploadSeq atomic.Int64

	// queuedBytes is the summed working-set estimate of submitted tasks
	// not yet dequeued by a worker; shedTotal counts 429 rejections;
	// oocTotal counts jobs admitted out-of-core.
	queuedBytes atomic.Int64
	shedTotal   atomic.Int64
	oocTotal    atomic.Int64

	// jobMu guards jobCancels, the cancel funcs of in-flight async jobs
	// (keyed by job id) that Drain preempts; jobWG tracks their
	// completion goroutines so Drain can wait for the final journal
	// append (Finish or Requeue) before the process exits.
	jobMu      sync.Mutex
	jobCancels map[string]context.CancelCauseFunc
	jobWG      sync.WaitGroup
}

// registeredGraph is one uploaded graph plus the precomputed identity
// used in cache keys and the degree-profile stats the registry cost
// models consume for admission control (computed once at registration,
// O(nnz)).
//
// csrPath, when non-empty, is the graph's binary CSR file on disk —
// the zero-copy input of out-of-core runs. mapped is non-nil when the
// adjacency itself is a memory-mapped view of that file (chunked
// uploads and graphs reloaded from a durable store): the heap never
// held the matrix, and Server.Close unmaps it. ownDir, when set, is a
// scratch directory owning the file (non-durable uploads) removed on
// Close.
type registeredGraph struct {
	info        GraphInfo
	graph       *symcluster.DirectedGraph
	fingerprint uint64
	stats       pipeline.GraphStats
	csrPath     string
	mapped      *csr.Mapped
	ownDir      string
}

// New builds a ready-to-serve Server. With Config.DataDir set it opens
// (or creates) the WAL-backed job store there, reloads persisted
// graphs, replays interrupted jobs and re-enqueues them; the error
// covers a corrupt or unwritable data directory.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		pool:       NewPool(cfg.Workers, cfg.QueueDepth),
		cache:      NewCache(cfg.CacheBytes),
		metrics:    NewMetrics(),
		traces:     cfg.TraceSink,
		startTime:  time.Now(),
		jobCancels: make(map[string]context.CancelCauseFunc),
		uploads:    make(map[string]*uploadSession),
		stop:       make(chan struct{}),
	}
	if s.traces == nil {
		s.traces = obs.NewTraceSink(nil, 64)
	}
	s.graphs = make(map[string]*registeredGraph)

	if cfg.Cluster != nil {
		coord, err := newCoordinator(s, cfg.Cluster)
		if err != nil {
			return nil, err
		}
		s.coord = coord
	}

	// In cluster mode the configured DataDir is the shared root; each
	// node keeps its own WAL and graphs under a per-node subdirectory,
	// which is exactly what a surviving peer adopts on failover.
	dataDir := cfg.DataDir
	if s.coord != nil && dataDir != "" {
		dataDir = filepath.Join(dataDir, nodeDirName(s.coord.self.Name))
	}
	if dataDir != "" {
		st, err := jobstore.Open(dataDir)
		if err != nil {
			return nil, fmt.Errorf("opening job store: %w", err)
		}
		s.store = st
		if err := s.loadGraphs(); err != nil {
			st.Close()
			return nil, err
		}
		s.jobs = NewDurableJobStore(cfg.RetainJobs, cfg.JobTTL, st)
	} else {
		s.jobs = NewJobStore(cfg.RetainJobs, cfg.JobTTL)
	}

	s.routes()

	// Re-enqueue replayed jobs after routes are up; the goroutine
	// retries briefly when the replayed backlog alone overflows the
	// queue, so a deep backlog drains instead of failing.
	if s.store != nil {
		if pending := s.jobs.PendingJobs(); len(pending) > 0 {
			go s.resumeJobs(pending)
		}
	}
	if cfg.UploadTTL > 0 {
		go s.sweepUploads()
	}
	if s.coord != nil {
		s.coord.health.Start()
	}
	return s, nil
}

// loadGraphs re-registers every graph persisted under the data dir.
// Binary .csr files are memory-mapped (the adjacency never touches the
// heap); legacy edge-list files from stores written before the binary
// format are migrated in place — parsed once, rewritten as .csr,
// mapped, and the text file removed — so the next boot maps directly.
func (s *Server) loadGraphs() error {
	ctx := bootContext()
	return s.store.ForEachGraphFile(func(id, path string, legacy bool) error {
		if legacy {
			data, err := os.ReadFile(path)
			if err != nil {
				return fmt.Errorf("reloading graph %s: %w", id, err)
			}
			g, err := symcluster.ReadEdgeList(bytes.NewReader(data))
			if err != nil {
				return fmt.Errorf("reloading graph %s: %w", id, err)
			}
			dst := s.store.GraphCSRPath(id)
			if err := csr.WriteMatrix(ctx, dst, g.Adj); err != nil {
				// Migration is best-effort: the graph still serves from
				// the heap, and the next boot retries the rewrite.
				s.log().Error("migrating graph to binary CSR", "graph", id, "err", err)
				s.addGraph(g, "", nil, "")
				return nil
			}
			s.store.RemoveLegacyGraph(id)
			s.log().Info("migrated graph to binary CSR", "graph", id)
			path = dst
		}
		mp, err := csr.Open(ctx, path)
		if err != nil {
			return fmt.Errorf("reloading graph %s: %w", id, err)
		}
		g, err := symcluster.NewDirectedGraph(mp.View(), nil)
		if err != nil {
			mp.Close()
			return fmt.Errorf("reloading graph %s: %w", id, err)
		}
		s.addGraph(g, path, mp, "")
		return nil
	})
}

// resumeJobs rebuilds and re-submits jobs that were pending or running
// when the previous process died. Requests that no longer validate
// (e.g. the pipeline lost a stage) are failed rather than retried
// forever; submissions that bounce off a full queue back off and retry
// until the pool accepts them or shuts down.
func (s *Server) resumeJobs(pending []*Job) {
	for _, job := range pending {
		var req ClusterRequest
		if err := json.Unmarshal(job.Request, &req); err != nil {
			s.jobs.Finish(job.ID, nil, nil, nil, fmt.Errorf("replaying request: %w", err), false)
			continue
		}
		prep, err := s.prepareRun(&req)
		if err != nil {
			s.jobs.Finish(job.ID, nil, nil, nil, fmt.Errorf("replaying request: %w", err), false)
			continue
		}
		for {
			err := s.launchJob(bootContext(), job, prep)
			if err == nil {
				s.log().Info("replayed job re-enqueued", "job", job.ID)
				break
			}
			if errors.Is(err, ErrPoolClosed) {
				return // shutting down again; the job stays pending in the WAL
			}
			// Queue full or over the byte watermark: the backlog itself
			// is the contention, so wait for workers to drain it.
			time.Sleep(50 * time.Millisecond)
		}
	}
}

// log returns the configured logger, or slog.Default().
func (s *Server) log() *slog.Logger {
	if s.cfg.Logger != nil {
		return s.cfg.Logger
	}
	return slog.Default()
}

func (s *Server) routes() {
	route := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	if c := s.coord; c != nil {
		// Cluster mode: the public surface is identical, but requests
		// whose state lives on another shard take one forwarded hop to
		// it (see proxy.go). The internal CSR route receives whole
		// graphs from peers, so it is exempt from the request body cap.
		route("POST /v1/graphs", c.handleRegisterGraph)
		route("GET /v1/graphs/{id}", c.wrapGraphGet(s.handleGetGraph))
		route("POST /v1/graphs/uploads", s.handleUploadCreate)
		route("POST /v1/graphs/uploads/{id}", c.wrapUpload(s.handleUploadAppend))
		route("POST /v1/graphs/uploads/{id}/finalize", c.wrapUpload(s.handleUploadFinalize))
		route("DELETE /v1/graphs/uploads/{id}", c.wrapUpload(s.handleUploadAbort))
		route("POST /v1/cluster", c.wrapCluster(s.handleCluster))
		route("GET /v1/jobs/{id}", c.wrapJob(s.handleGetJob))
		route("GET /v1/jobs/{id}/trace", c.wrapJob(s.handleJobTrace))
		route("GET /v1/jobs/{id}/stats", c.wrapJob(s.handleJobStats))
		route("GET /v1/cluster/status", s.handleClusterStatus)
		route("GET "+internalStatusPath, s.handleInternalStatus)
		route("GET "+internalTracesPrefix+"{id}", s.handleInternalTraces)
		s.mux.HandleFunc("PUT "+internalCSRPath,
			s.instrumentUncapped("PUT "+internalCSRPath, c.handleInternalGraphCSR))
	} else {
		route("POST /v1/graphs", s.handleRegisterGraph)
		route("GET /v1/graphs/{id}", s.handleGetGraph)
		route("POST /v1/graphs/uploads", s.handleUploadCreate)
		route("POST /v1/graphs/uploads/{id}", s.handleUploadAppend)
		route("POST /v1/graphs/uploads/{id}/finalize", s.handleUploadFinalize)
		route("DELETE /v1/graphs/uploads/{id}", s.handleUploadAbort)
		route("POST /v1/cluster", s.handleCluster)
		route("GET /v1/jobs/{id}", s.handleGetJob)
		route("GET /v1/jobs/{id}/trace", s.handleJobTrace)
		route("GET /v1/jobs/{id}/stats", s.handleJobStats)
		route("GET /v1/cluster/status", s.handleClusterStatus)
	}
	route("GET /healthz", s.handleHealthz)
	route("GET /metrics", s.handleMetrics)
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops accepting new work and waits for the queue and running
// jobs to finish, bounded by ctx. Call after http.Server.Shutdown so
// no new requests race the drain. It is the SIGTERM half of graceful
// shutdown; safe to call more than once.
//
// In durable mode a drain deadline does not abandon work: jobs still
// running when ctx expires are preempted — their contexts are
// cancelled with a cause the completion path recognizes, the kernels
// write a final checkpoint at the next iteration boundary, and the
// jobs are requeued in the WAL so the next boot resumes them.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	err := s.pool.Close(ctx)
	if err == nil || s.store == nil {
		return err
	}

	// Deadline passed with work in flight: preempt.
	s.jobMu.Lock()
	n := len(s.jobCancels)
	for _, cancel := range s.jobCancels {
		cancel(errPreempted)
	}
	s.jobMu.Unlock()
	s.log().Info("drain deadline passed; preempting jobs for checkpoint", "jobs", n)

	graceCtx, cancel := context.WithTimeout(bootContext(), s.cfg.PreemptGrace)
	defer cancel()
	if werr := s.pool.Wait(graceCtx); werr != nil {
		return werr
	}
	// Workers are done; wait for the completion goroutines to journal
	// the requeues (they are fast — one WAL append each).
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-graceCtx.Done():
		return graceCtx.Err()
	}
}

// Close releases the WAL (durable mode only), stops the health checker
// and background sweepers, aborts in-flight uploads and unmaps
// memory-mapped graphs. Call after Drain: the mappings are unmapped
// here precisely because no job can still be reading them.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { close(s.stop) })
	if s.coord != nil {
		s.coord.health.Stop()
	}
	s.uploadMu.Lock()
	for id, sess := range s.uploads {
		sess.abort()
		delete(s.uploads, id)
	}
	s.uploadMu.Unlock()

	s.graphMu.Lock()
	for _, rg := range s.graphs {
		if rg.mapped != nil {
			rg.mapped.Close()
			rg.mapped = nil
		}
		if rg.ownDir != "" {
			os.RemoveAll(rg.ownDir)
			rg.ownDir = ""
		}
	}
	s.graphMu.Unlock()

	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// Draining reports whether Drain has begun (healthz turns 503 so load
// balancers stop routing here).
func (s *Server) Draining() bool { return s.draining.Load() }

// RegisterGraph adds a graph directly (used by tests and embedders; the
// HTTP path is POST /v1/graphs). The id is derived from the structural
// fingerprint, so registering the same graph twice is idempotent. In
// durable mode the edge list is persisted under the data dir so
// replayed jobs find their graph after a restart.
func (s *Server) RegisterGraph(g *symcluster.DirectedGraph) GraphInfo {
	return s.registerGraph(g, true)
}

func (s *Server) registerGraph(g *symcluster.DirectedGraph, persist bool) GraphInfo {
	var csrPath string
	if persist && s.store != nil {
		id := fmt.Sprintf("g-%016x", g.Fingerprint())
		path := s.store.GraphCSRPath(id)
		if err := csr.WriteMatrix(bootContext(), path, g.Adj); err != nil {
			s.log().Error("persisting graph", "graph", id, "err", err)
		} else {
			csrPath = path
		}
	}
	return s.addGraph(g, csrPath, nil, "")
}

// addGraph installs one graph in the registry under its content-derived
// id. When the id is already registered the existing entry wins — the
// content is identical by construction — and a newly mapped duplicate
// is released (its scratch too) rather than swapped under running jobs.
func (s *Server) addGraph(g *symcluster.DirectedGraph, csrPath string, mp *csr.Mapped, ownDir string) GraphInfo {
	fp := g.Fingerprint()
	id := fmt.Sprintf("g-%016x", fp)
	info := GraphInfo{
		ID:                id,
		Nodes:             g.N(),
		Edges:             g.M(),
		SymmetricFraction: g.SymmetricLinkFraction(),
	}
	s.graphMu.Lock()
	if prev, ok := s.graphs[id]; ok {
		if prev.csrPath == "" && csrPath != "" {
			// Same graph, but now it has a file: remember it so future
			// jobs can run out-of-core against it.
			prev.csrPath = csrPath
			if prev.mapped == nil {
				prev.mapped, prev.ownDir = mp, ownDir
				mp, ownDir = nil, ""
			}
		}
		info = prev.info
		s.graphMu.Unlock()
		if mp != nil {
			mp.Close()
		}
		if ownDir != "" {
			os.RemoveAll(ownDir)
		}
		return info
	}
	s.graphs[id] = &registeredGraph{
		info:        info,
		graph:       g,
		fingerprint: fp,
		stats:       pipeline.StatsFor(g),
		csrPath:     csrPath,
		mapped:      mp,
		ownDir:      ownDir,
	}
	s.graphMu.Unlock()
	return info
}

// lookupGraph fetches a registered graph by id.
func (s *Server) lookupGraph(id string) (*registeredGraph, bool) {
	s.graphMu.RLock()
	defer s.graphMu.RUnlock()
	rg, ok := s.graphs[id]
	return rg, ok
}
