package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	symcluster "symcluster"
	"symcluster/internal/obs"
	"symcluster/internal/pipeline"
)

// Config sizes the service. Zero values select the defaults noted on
// each field.
type Config struct {
	// Workers is the worker-pool size (default 2).
	Workers int
	// QueueDepth bounds tasks waiting for a worker (default 4×Workers).
	// When the queue is full, POST /v1/cluster sheds load with 503.
	QueueDepth int
	// CacheBytes budgets the symmetrization cache (default 256 MiB).
	CacheBytes int64
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
	// RequestTimeout bounds each synchronous clustering run (default
	// 60s). Async jobs are not subject to it.
	RequestTimeout time.Duration
	// RetainJobs caps retained finished jobs (default 256).
	RetainJobs int
	// JobTTL expires finished async jobs after this duration so an
	// unattended daemon does not hold results forever. Zero or negative
	// disables expiry (the default; cmd/symclusterd sets 15m).
	JobTTL time.Duration
	// MaxJobBytes rejects clustering requests whose estimated working
	// set exceeds this many bytes with 413 (admission control). Zero or
	// negative disables the check (the default; cmd/symclusterd sets
	// 4 GiB).
	MaxJobBytes int64
	// Logger receives request and lifecycle logs; nil means
	// slog.Default(). cmd/symclusterd installs a JSON-handler logger.
	Logger *slog.Logger
	// TraceSink receives the span tree of every clustering run (JSONL
	// file and/or in-memory ring; see obs.NewTraceSink). Nil means a
	// ring-only sink sized for the trace endpoint.
	TraceSink *obs.TraceSink
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 256
	}
	return c
}

// Server is the symclusterd service: a graph registry, a symmetrization
// cache, a bounded worker pool and an async job store behind a JSON
// HTTP API. Construct with New, mount Handler, stop with Drain.
type Server struct {
	cfg       Config
	mux       *http.ServeMux
	pool      *Pool
	cache     *Cache
	jobs      *JobStore
	metrics   *Metrics
	traces    *obs.TraceSink
	startTime time.Time

	graphMu  sync.RWMutex
	graphs   map[string]*registeredGraph
	draining atomic.Bool
}

// registeredGraph is one uploaded graph plus the precomputed identity
// used in cache keys and the degree-profile stats the registry cost
// models consume for admission control (computed once at registration,
// O(nnz)).
type registeredGraph struct {
	info        GraphInfo
	graph       *symcluster.DirectedGraph
	fingerprint uint64
	stats       pipeline.GraphStats
}

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		pool:      NewPool(cfg.Workers, cfg.QueueDepth),
		cache:     NewCache(cfg.CacheBytes),
		jobs:      NewJobStore(cfg.RetainJobs, cfg.JobTTL),
		metrics:   NewMetrics(),
		traces:    cfg.TraceSink,
		startTime: time.Now(),
	}
	if s.traces == nil {
		s.traces = obs.NewTraceSink(nil, 64)
	}
	s.graphs = make(map[string]*registeredGraph)
	s.routes()
	return s
}

// log returns the configured logger, or slog.Default().
func (s *Server) log() *slog.Logger {
	if s.cfg.Logger != nil {
		return s.cfg.Logger
	}
	return slog.Default()
}

func (s *Server) routes() {
	route := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	route("POST /v1/graphs", s.handleRegisterGraph)
	route("GET /v1/graphs/{id}", s.handleGetGraph)
	route("POST /v1/cluster", s.handleCluster)
	route("GET /v1/jobs/{id}", s.handleGetJob)
	route("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	route("GET /healthz", s.handleHealthz)
	route("GET /metrics", s.handleMetrics)
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops accepting new work and waits for the queue and running
// jobs to finish, bounded by ctx. Call after http.Server.Shutdown so
// no new requests race the drain. It is the SIGTERM half of graceful
// shutdown; safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	return s.pool.Close(ctx)
}

// Draining reports whether Drain has begun (healthz turns 503 so load
// balancers stop routing here).
func (s *Server) Draining() bool { return s.draining.Load() }

// RegisterGraph adds a graph directly (used by tests and embedders; the
// HTTP path is POST /v1/graphs). The id is derived from the structural
// fingerprint, so registering the same graph twice is idempotent.
func (s *Server) RegisterGraph(g *symcluster.DirectedGraph) GraphInfo {
	fp := g.Fingerprint()
	id := fmt.Sprintf("g-%016x", fp)
	info := GraphInfo{
		ID:                id,
		Nodes:             g.N(),
		Edges:             g.M(),
		SymmetricFraction: g.SymmetricLinkFraction(),
	}
	s.graphMu.Lock()
	s.graphs[id] = &registeredGraph{
		info:        info,
		graph:       g,
		fingerprint: fp,
		stats:       pipeline.StatsFor(g),
	}
	s.graphMu.Unlock()
	return info
}

// lookupGraph fetches a registered graph by id.
func (s *Server) lookupGraph(id string) (*registeredGraph, bool) {
	s.graphMu.RLock()
	defer s.graphMu.RUnlock()
	rg, ok := s.graphs[id]
	return rg, ok
}
