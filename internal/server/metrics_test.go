package server

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// expoSample is one parsed sample line of the Prometheus text
// exposition format 0.0.4.
type expoSample struct {
	name   string
	labels map[string]string
	value  float64
}

var (
	expoNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	expoLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parseExposition is a strict parser for the subset of the text
// exposition format the server emits: HELP/TYPE comments followed by
// sample lines. It fails the test on any malformed line, duplicate
// TYPE, or sample whose metric family has no TYPE — the round-trip
// guarantee that whatever Registry.WriteText and Metrics.WriteTo
// produce stays scrapeable.
func parseExposition(t *testing.T, text string) (samples []expoSample, types map[string]string) {
	t.Helper()
	types = make(map[string]string)
	help := make(map[string]string)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || parts[0] != "#" {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			switch parts[1] {
			case "HELP":
				if !expoNameRe.MatchString(parts[2]) {
					t.Fatalf("line %d: bad metric name in HELP: %q", ln+1, line)
				}
				if _, dup := help[parts[2]]; dup {
					t.Fatalf("line %d: duplicate HELP for %s", ln+1, parts[2])
				}
				help[parts[2]] = parts[3]
			case "TYPE":
				if !expoNameRe.MatchString(parts[2]) {
					t.Fatalf("line %d: bad metric name in TYPE: %q", ln+1, line)
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("line %d: unknown type %q", ln+1, parts[3])
				}
				if _, dup := types[parts[2]]; dup {
					t.Fatalf("line %d: duplicate TYPE for %s", ln+1, parts[2])
				}
				types[parts[2]] = parts[3]
			default:
				t.Fatalf("line %d: unknown comment keyword %q", ln+1, parts[1])
			}
			continue
		}
		samples = append(samples, parseSampleLine(t, ln+1, line))
	}
	for _, s := range samples {
		fam := familyOf(s.name)
		if _, ok := types[fam]; !ok {
			t.Errorf("sample %s has no # TYPE for family %s", s.name, fam)
		}
		if _, ok := help[fam]; !ok {
			t.Errorf("sample %s has no # HELP for family %s", s.name, fam)
		}
	}
	return samples, types
}

func parseSampleLine(t *testing.T, ln int, line string) expoSample {
	t.Helper()
	s := expoSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value separator: %q", ln, line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if !expoNameRe.MatchString(s.name) {
		t.Fatalf("line %d: bad metric name %q", ln, s.name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			t.Fatalf("line %d: unterminated label set: %q", ln, line)
		}
		for _, pair := range splitLabelPairs(t, ln, rest[1:end]) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				t.Fatalf("line %d: label pair %q has no =", ln, pair)
			}
			k, quoted := pair[:eq], pair[eq+1:]
			if !expoLabelRe.MatchString(k) {
				t.Fatalf("line %d: bad label name %q", ln, k)
			}
			v, err := strconv.Unquote(quoted)
			if err != nil {
				t.Fatalf("line %d: label value %s not a quoted string: %v", ln, quoted, err)
			}
			if _, dup := s.labels[k]; dup {
				t.Fatalf("line %d: duplicate label %q", ln, k)
			}
			s.labels[k] = v
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("line %d: bad sample value %q: %v", ln, rest, err)
	}
	s.value = v
	return s
}

// splitLabelPairs splits k1="v1",k2="v2" on commas outside quotes.
func splitLabelPairs(t *testing.T, ln int, body string) []string {
	t.Helper()
	if body == "" {
		return nil
	}
	var pairs []string
	start, inQuote := 0, false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				pairs = append(pairs, body[start:i])
				start = i + 1
			}
		}
	}
	if inQuote {
		t.Fatalf("line %d: unterminated quote in labels %q", ln, body)
	}
	return append(pairs, body[start:])
}

// familyOf strips the histogram/summary sample suffixes so a sample
// can be matched to its TYPE line.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// labelKey renders a label set (minus le) as a stable map key.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsExpositionRoundTrip drives a clustering request and then
// verifies the complete /metrics output parses as well-formed text
// exposition format, with every histogram internally consistent.
func TestMetricsExpositionRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	info := registerFigure1(t, ts)
	resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
		GraphID: info.ID, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	samples, types := parseExposition(t, scrapeMetrics(t, ts.URL))
	if len(samples) == 0 {
		t.Fatal("no samples scraped")
	}

	// Every histogram: buckets cumulative and non-decreasing, +Inf
	// bucket present and equal to _count, _sum present.
	type histState struct {
		buckets map[float64]float64
		hasInf  bool
		inf     float64
		sum     *float64
		count   *float64
	}
	hists := make(map[string]*histState) // family + label key
	get := func(fam, key string) *histState {
		h := hists[fam+"|"+key]
		if h == nil {
			h = &histState{buckets: map[float64]float64{}}
			hists[fam+"|"+key] = h
		}
		return h
	}
	for _, s := range samples {
		fam := familyOf(s.name)
		if types[fam] != "histogram" {
			continue
		}
		key := labelKey(s.labels)
		h := get(fam, key)
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("%s bucket sample without le label", s.name)
			}
			if le == "+Inf" {
				h.hasInf, h.inf = true, s.value
				break
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("%s: bad le %q: %v", s.name, le, err)
			}
			h.buckets[bound] = s.value
		case strings.HasSuffix(s.name, "_sum"):
			v := s.value
			h.sum = &v
		case strings.HasSuffix(s.name, "_count"):
			v := s.value
			h.count = &v
		}
	}
	for id, h := range hists {
		if !h.hasInf {
			t.Errorf("%s: no +Inf bucket", id)
			continue
		}
		if h.sum == nil || h.count == nil {
			t.Errorf("%s: missing _sum or _count", id)
			continue
		}
		if h.inf != *h.count {
			t.Errorf("%s: +Inf bucket %v != count %v", id, h.inf, *h.count)
		}
		bounds := make([]float64, 0, len(h.buckets))
		for b := range h.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		prev := 0.0
		for _, b := range bounds {
			if h.buckets[b] < prev {
				t.Errorf("%s: bucket le=%v count %v below previous %v", id, b, h.buckets[b], prev)
			}
			prev = h.buckets[b]
		}
		if h.inf < prev {
			t.Errorf("%s: +Inf %v below largest finite bucket %v", id, h.inf, prev)
		}
	}

	// The request must have landed in the serving and kernel families.
	want := map[string]string{
		"symclusterd_requests_total":           "counter",
		"symclusterd_request_seconds":          "histogram",
		"symclusterd_stage_seconds":            "histogram",
		"symclusterd_build_info":               "gauge",
		"symcluster_mcl_residual":              "histogram",
		"symcluster_mcl_iterations":            "histogram",
		"symcluster_symmetrize_nnz_out":        "histogram",
		"symclusterd_admission_rejected_total": "counter",
	}
	for fam, typ := range want {
		if got := types[fam]; got != typ {
			t.Errorf("family %s: type %q, want %q", fam, got, typ)
		}
	}
	var buildInfo *expoSample
	for i := range samples {
		if samples[i].name == "symclusterd_build_info" {
			buildInfo = &samples[i]
		}
	}
	if buildInfo == nil {
		t.Fatal("no symclusterd_build_info sample")
	}
	if buildInfo.value != 1 || buildInfo.labels["version"] == "" || buildInfo.labels["go_version"] == "" {
		t.Fatalf("build_info = %+v", *buildInfo)
	}

	// Stage histogram observed under the canonical labels the dashboards
	// key on.
	found := false
	for _, s := range samples {
		if s.name == "symclusterd_stage_seconds_count" &&
			s.labels["stage"] == "symmetrize" && s.labels["name"] == "dd" && s.value >= 1 {
			found = true
		}
	}
	if !found {
		t.Error(`no symclusterd_stage_seconds_count{stage="symmetrize",name="dd"} >= 1 sample`)
	}
}
