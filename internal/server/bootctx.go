package server

import "context"

// bootContext is the package's only sanctioned source of a fresh root
// context. Request paths must thread the request's context so the
// end-to-end deadline propagates — `make lint` rejects
// context.Background() in this package's non-test files — but some
// work legitimately has no caller: boot-time graph loading and WAL
// replay, drain's grace window, persisting a registered graph after
// the response went out, importing a dead peer's graph during WAL
// adoption. Routing those through a named helper keeps each use
// auditable (grep bootContext) instead of invisible among forbidden
// Backgrounds.
func bootContext() context.Context {
	return context.Background() // the lint excludes bootctx.go by name
}
