package server

import (
	"net/http"
	"testing"
	"time"

	"symcluster/internal/obs"
)

// TestJobStatsEndpoint runs one async job on a single-node server and
// checks the accounting surfaces: 404 before there is anything, 200
// with nonzero stage accounting afterwards, and the same snapshot
// embedded in a synchronous run's response.
func TestJobStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	info := registerFigure1(t, ts)

	code, _ := httpGet(t, ts.URL+"/v1/jobs/nope/stats")
	if code != http.StatusNotFound {
		t.Fatalf("unknown job stats: status %d, want 404", code)
	}

	resp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
		GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 1, Async: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d", resp.StatusCode)
	}
	ref := decode[JobRef](t, resp)

	deadline := time.Now().Add(10 * time.Second)
	var job JobInfo
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + ref.JobID)
		if err != nil {
			t.Fatal(err)
		}
		job = decode[JobInfo](t, r)
		if job.State == "done" {
			break
		}
		if job.State == "failed" {
			t.Fatalf("job failed: %s", job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished (state %s)", job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if job.TraceID == "" {
		t.Fatal("finished job has no trace_id")
	}

	r, err := http.Get(ts.URL + "/v1/jobs/" + ref.JobID + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", r.StatusCode)
	}
	stats := decode[*obs.JobStatsSnapshot](t, r)
	if stats.QueueWaitMillis <= 0 {
		t.Fatalf("queue_wait_millis = %v, want > 0", stats.QueueWaitMillis)
	}
	for _, stage := range []string{"symmetrize", "cluster"} {
		st, ok := stats.Stages[stage]
		if !ok || st.WallMillis <= 0 {
			t.Fatalf("stage %q = %+v, ok=%v", stage, st, ok)
		}
	}
	if stats.CacheHits+stats.CacheMisses == 0 {
		t.Fatal("no cache lookups recorded")
	}

	// The synchronous path embeds the same accounting inline.
	sresp := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
		GraphID: info.ID, Method: "dd", Algorithm: "mcl", Seed: 1,
	})
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("sync run: status %d", sresp.StatusCode)
	}
	cres := decode[ClusterResponse](t, sresp)
	if cres.Stats == nil || cres.Stats.QueueWaitMillis <= 0 {
		t.Fatalf("sync response stats = %+v, want embedded queue wait", cres.Stats)
	}
	// Second run over the same graph+method hits the symmetrization
	// cache, and the accounting says so.
	if cres.Stats.CacheHits < 1 {
		t.Fatalf("sync rerun cache hits = %d, want >= 1 (stats: %+v)", cres.Stats.CacheHits, cres.Stats)
	}
}

// TestClusterStatusSingleNode checks the degenerate federation: a
// lone node reports exactly its own row.
func TestClusterStatusSingleNode(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	r, err := http.Get(ts.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	st := decode[ClusterStatus](t, r)
	if st.Self != "" {
		t.Fatalf("single node has no cluster self, got %q", st.Self)
	}
	if len(st.Nodes) != 1 {
		t.Fatalf("nodes = %+v, want exactly one row", st.Nodes)
	}
	n := st.Nodes[0]
	if n.State != "up" || n.Version == "" || n.UptimeSeconds <= 0 {
		t.Fatalf("self row = %+v", n)
	}
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	return resp.StatusCode, buf[:n]
}
