package graph

import (
	"math"
	"testing"

	"symcluster/internal/matrix"
)

func directedFromDense(t *testing.T, d [][]float64) *Directed {
	t.Helper()
	g, err := NewDirected(matrix.FromDense(d), nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func undirectedFromDense(t *testing.T, d [][]float64) *Undirected {
	t.Helper()
	g, err := NewUndirected(matrix.FromDense(d), nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewDirectedRejectsNonSquare(t *testing.T) {
	if _, err := NewDirected(matrix.Zero(2, 3), nil); err == nil {
		t.Fatal("accepted non-square adjacency")
	}
}

func TestNewDirectedRejectsBadLabels(t *testing.T) {
	if _, err := NewDirected(matrix.Zero(2, 2), []string{"a"}); err == nil {
		t.Fatal("accepted mismatched labels")
	}
}

func TestLabelFallback(t *testing.T) {
	g := directedFromDense(t, [][]float64{{0, 1}, {0, 0}})
	if g.Label(1) != "v1" {
		t.Fatalf("unlabelled fallback = %q", g.Label(1))
	}
	g.Labels = []string{"alpha", "beta"}
	if g.Label(1) != "beta" {
		t.Fatalf("label = %q", g.Label(1))
	}
}

func TestDegrees(t *testing.T) {
	g := directedFromDense(t, [][]float64{
		{0, 1, 1},
		{0, 0, 1},
		{0, 0, 0},
	})
	out := g.OutDegrees()
	in := g.InDegrees()
	if out[0] != 2 || out[1] != 1 || out[2] != 0 {
		t.Fatalf("out degrees %v", out)
	}
	if in[0] != 0 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("in degrees %v", in)
	}
}

func TestSymmetricLinkFraction(t *testing.T) {
	// Edges: 0→1, 1→0 (reciprocal pair), 0→2 (one-way). 2 of 3 edges
	// have a reciprocal.
	g := directedFromDense(t, [][]float64{
		{0, 1, 1},
		{1, 0, 0},
		{0, 0, 0},
	})
	got := g.SymmetricLinkFraction()
	want := 2.0 / 3.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("symmetric fraction = %v, want %v", got, want)
	}
}

func TestSymmetricLinkFractionExtremes(t *testing.T) {
	empty := directedFromDense(t, [][]float64{{0, 0}, {0, 0}})
	if empty.SymmetricLinkFraction() != 0 {
		t.Fatal("empty graph fraction != 0")
	}
	full := directedFromDense(t, [][]float64{{0, 1}, {1, 0}})
	if full.SymmetricLinkFraction() != 1 {
		t.Fatal("fully reciprocal graph fraction != 1")
	}
	oneway := directedFromDense(t, [][]float64{{0, 1}, {0, 0}})
	if oneway.SymmetricLinkFraction() != 0 {
		t.Fatal("one-way edge counted as symmetric")
	}
}

func TestUndirectedRejectsAsymmetric(t *testing.T) {
	if _, err := NewUndirected(matrix.FromDense([][]float64{{0, 1}, {0, 0}}), nil); err == nil {
		t.Fatal("accepted asymmetric adjacency for small graph")
	}
}

func TestUndirectedEdgeCount(t *testing.T) {
	g := undirectedFromDense(t, [][]float64{
		{2, 1, 0},
		{1, 0, 3},
		{0, 3, 0},
	})
	// Edges: {0,1}, {1,2} and the self-loop at 0.
	if got := g.M(); got != 3 {
		t.Fatalf("M = %d, want 3", got)
	}
}

func TestWeightedDegrees(t *testing.T) {
	g := undirectedFromDense(t, [][]float64{
		{0, 2},
		{2, 0},
	})
	wd := g.WeightedDegrees()
	if wd[0] != 2 || wd[1] != 2 {
		t.Fatalf("weighted degrees %v", wd)
	}
}

func TestTopEdges(t *testing.T) {
	g := undirectedFromDense(t, [][]float64{
		{9, 5, 1},
		{5, 0, 7},
		{1, 7, 0},
	})
	top := g.TopEdges(2)
	if len(top) != 2 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].U != 1 || top[0].V != 2 || top[0].Weight != 7 {
		t.Fatalf("top edge = %+v (self-loop must be excluded)", top[0])
	}
	if top[1].U != 0 || top[1].V != 1 || top[1].Weight != 5 {
		t.Fatalf("second edge = %+v", top[1])
	}
	all := g.TopEdges(100)
	if len(all) != 3 {
		t.Fatalf("asked for more than exist: %d", len(all))
	}
}

func TestTopEdgesDeterministicTies(t *testing.T) {
	g := undirectedFromDense(t, [][]float64{
		{0, 1, 1},
		{1, 0, 1},
		{1, 1, 0},
	})
	top := g.TopEdges(3)
	if top[0].U != 0 || top[0].V != 1 || top[1].U != 0 || top[1].V != 2 || top[2].U != 1 || top[2].V != 2 {
		t.Fatalf("tie order not deterministic: %+v", top)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := undirectedFromDense(t, [][]float64{
		{0, 1, 0, 0},
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	})
	labels, count := g.ConnectedComponents()
	if count != 2 {
		t.Fatalf("components = %d, want 2", count)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[0] == labels[2] {
		t.Fatalf("labels = %v", labels)
	}
}

func TestSingletons(t *testing.T) {
	g := undirectedFromDense(t, [][]float64{
		{0, 1, 0},
		{1, 0, 0},
		{0, 0, 0},
	})
	if got := g.Singletons(); got != 1 {
		t.Fatalf("singletons = %d, want 1", got)
	}
	// A node with only a self-loop is still a singleton.
	loop := undirectedFromDense(t, [][]float64{{4}})
	if got := loop.Singletons(); got != 1 {
		t.Fatalf("self-loop-only singletons = %d, want 1", got)
	}
}

func TestHistogramDegrees(t *testing.T) {
	h := HistogramDegrees([]int{0, 1, 1, 2, 3, 4, 7, 8, 100})
	if h.Zero != 1 {
		t.Fatalf("zero bucket = %d", h.Zero)
	}
	// [1,2): two nodes; [2,4): two; [4,8): two; [8,16): one; [64,128): one.
	want := map[int]int{0: 2, 1: 2, 2: 2, 3: 1, 6: 1}
	for b, n := range want {
		if h.Buckets[b] != n {
			t.Fatalf("bucket %d = %d, want %d (%v)", b, h.Buckets[b], n, h.Buckets)
		}
	}
}

func TestDegreeSummaries(t *testing.T) {
	d := []int{1, 5, 3, 2}
	if MaxDegree(d) != 5 {
		t.Fatalf("max = %d", MaxDegree(d))
	}
	if MedianDegree(d) != 2 {
		t.Fatalf("median = %d", MedianDegree(d))
	}
	if MeanDegree(d) != 2.75 {
		t.Fatalf("mean = %v", MeanDegree(d))
	}
	if MaxDegree(nil) != 0 || MedianDegree(nil) != 0 || MeanDegree(nil) != 0 {
		t.Fatal("empty-sequence summaries non-zero")
	}
}
