package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"symcluster/internal/matrix"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := directedFromDense(t, [][]float64{
		{0, 1, 2.5},
		{0, 0, 0},
		{1, 0, 0},
	})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(g.Adj, back.Adj, 0) {
		t.Fatalf("round trip changed graph:\n%v\nvs\n%v", g.Adj.ToDense(), back.Adj.ToDense())
	}
}

func TestReadEdgeListCommentsAndBlank(t *testing.T) {
	in := "# header\n\n0 1\n1 2 3.5\n\n# trailing\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if g.Adj.At(1, 2) != 3.5 {
		t.Fatalf("weight = %v", g.Adj.At(1, 2))
	}
}

func TestReadEdgeListDuplicatesSummed(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1 2\n0 1 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Adj.At(0, 1) != 5 {
		t.Fatalf("duplicate edge weight = %v, want 5", g.Adj.At(0, 1))
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",          // too few fields
		"0 1 2 3\n",    // too many fields
		"a 1\n",        // bad source
		"0 b\n",        // bad destination
		"-1 0\n",       // negative id
		"0 1 weight\n", // bad weight
		"0 1 NaN\n",    // NaN weight
		"0 1 nan\n",    // NaN weight, lower case
		"0 1 Inf\n",    // infinite weight
		"0 1 +Inf\n",   // infinite weight, explicit sign
		"0 1 -Inf\n",   // negative infinity
		"0 1 1e400\n",  // overflows to +Inf
		"0 1 -2.5\n",   // negative weight
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted malformed input %q", in)
		}
	}
}

func TestReadEdgeListErrorNamesLine(t *testing.T) {
	_, err := ReadEdgeList(strings.NewReader("0 1\n# c\n2 3 NaN\n"))
	if err == nil {
		t.Fatal("accepted NaN weight")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q does not name line 3", err)
	}
}

func TestReadEdgeListZeroWeightAllowed(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1 0\n1 0 0.0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 {
		t.Fatalf("N = %d", g.N())
	}
}

func TestReadEdgeListOversizedLine(t *testing.T) {
	// A comment line longer than the scanner buffer must surface as
	// ErrInputTooLarge, not a generic parse failure, so servers can
	// answer 413 instead of 400.
	long := "# " + strings.Repeat("x", maxLineBytes+1)
	_, err := ReadEdgeList(strings.NewReader(long))
	if err == nil {
		t.Fatal("accepted oversized line")
	}
	if !errors.Is(err, ErrInputTooLarge) {
		t.Fatalf("error %v is not ErrInputTooLarge", err)
	}
}

func TestLabelsRoundTrip(t *testing.T) {
	labels := []string{"Area", "Square mile", "Guzmania lingulata"}
	var buf bytes.Buffer
	if err := WriteLabels(&buf, labels); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLabels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(labels) {
		t.Fatalf("len = %d", len(back))
	}
	for i := range labels {
		if back[i] != labels[i] {
			t.Fatalf("label %d = %q, want %q", i, back[i], labels[i])
		}
	}
}

func TestWriteLabelsRejectsNewline(t *testing.T) {
	if err := WriteLabels(&bytes.Buffer{}, []string{"bad\nlabel"}); err == nil {
		t.Fatal("accepted label with newline")
	}
}

func TestGroundTruthRoundTrip(t *testing.T) {
	cats := [][]int{
		{0, 3},
		nil, // unlabelled node
		{7},
	}
	var buf bytes.Buffer
	if err := WriteGroundTruth(&buf, cats); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGroundTruth(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("len = %d", len(back))
	}
	if len(back[0]) != 2 || back[0][0] != 0 || back[0][1] != 3 {
		t.Fatalf("node 0 cats = %v", back[0])
	}
	if back[1] != nil {
		t.Fatalf("node 1 cats = %v, want nil", back[1])
	}
	if len(back[2]) != 1 || back[2][0] != 7 {
		t.Fatalf("node 2 cats = %v", back[2])
	}
}

func TestReadGroundTruthRejectsBadIDs(t *testing.T) {
	if _, err := ReadGroundTruth(strings.NewReader("0 x\n")); err == nil {
		t.Fatal("accepted non-numeric category")
	}
	if _, err := ReadGroundTruth(strings.NewReader("-2\n")); err == nil {
		t.Fatal("accepted negative category")
	}
}
