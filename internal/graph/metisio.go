package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"symcluster/internal/matrix"
)

// The METIS graph format (Karypis & Kumar), the lingua franca of graph
// partitioning tools: a header "nvtxs nedges [fmt]" followed by one
// line per vertex listing its (1-indexed) neighbours, with edge weights
// interleaved when fmt's last digit is 1. Symmetrized graphs written in
// this format can be fed to the original metis/gpmetis binaries.

// WriteMetisGraph writes the undirected graph in METIS format. Edge
// weights are included (fmt "001") unless every weight equals 1.
// Self-loops are not representable in the format and are skipped.
// METIS requires integer edge weights; real-valued weights are scaled
// by weightScale and rounded (pass 1 for integer-weighted graphs, or
// e.g. 1000 to keep three decimal digits). Rounded-to-zero weights are
// written as 1 so the edge survives.
func WriteMetisGraph(w io.Writer, g *Undirected, weightScale float64) error {
	if weightScale <= 0 {
		weightScale = 1
	}
	weighted := false
	for i := 0; i < g.N() && !weighted; i++ {
		_, vals := g.Adj.Row(i)
		for _, v := range vals {
			if v != 1 {
				weighted = true
				break
			}
		}
	}
	edges := 0
	for i := 0; i < g.N(); i++ {
		cols, _ := g.Adj.Row(i)
		for _, c := range cols {
			if int(c) > i {
				edges++
			}
		}
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%% symcluster symmetrized graph\n")
	if weighted {
		fmt.Fprintf(bw, "%d %d 001\n", g.N(), edges)
	} else {
		fmt.Fprintf(bw, "%d %d\n", g.N(), edges)
	}
	for i := 0; i < g.N(); i++ {
		cols, vals := g.Adj.Row(i)
		first := true
		for k, c := range cols {
			if int(c) == i {
				continue // self-loops unsupported
			}
			if !first {
				fmt.Fprint(bw, " ")
			}
			first = false
			if weighted {
				wInt := int64(vals[k]*weightScale + 0.5)
				if wInt < 1 {
					wInt = 1
				}
				fmt.Fprintf(bw, "%d %d", c+1, wInt)
			} else {
				fmt.Fprintf(bw, "%d", c+1)
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadMetisGraph parses a METIS-format graph into an undirected graph.
// Vertex weights (fmt digits other than the last) are not supported.
func ReadMetisGraph(r io.Reader) (*Undirected, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var header []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		header = strings.Fields(line)
		break
	}
	if header == nil {
		return nil, fmt.Errorf("graph: metis: missing header")
	}
	if len(header) < 2 || len(header) > 3 {
		return nil, fmt.Errorf("graph: metis: header %q, want 'nvtxs nedges [fmt]'", strings.Join(header, " "))
	}
	n, err := strconv.Atoi(header[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("graph: metis: bad vertex count %q", header[0])
	}
	declaredEdges, err := strconv.Atoi(header[1])
	if err != nil || declaredEdges < 0 {
		return nil, fmt.Errorf("graph: metis: bad edge count %q", header[1])
	}
	weighted := false
	if len(header) == 3 {
		switch header[2] {
		case "0", "00", "000":
		case "1", "01", "001":
			weighted = true
		default:
			return nil, fmt.Errorf("graph: metis: unsupported fmt %q (vertex weights not supported)", header[2])
		}
	}

	b := matrix.NewBuilder(n, n)
	vertex := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "%") {
			continue
		}
		if vertex >= n {
			if line != "" {
				return nil, fmt.Errorf("graph: metis: line %d: more vertex lines than the declared %d", lineNo, n)
			}
			continue
		}
		fields := strings.Fields(line)
		step := 1
		if weighted {
			step = 2
			if len(fields)%2 != 0 {
				return nil, fmt.Errorf("graph: metis: line %d: odd field count in weighted adjacency", lineNo)
			}
		}
		for f := 0; f < len(fields); f += step {
			nb, err := strconv.Atoi(fields[f])
			if err != nil || nb < 1 || nb > n {
				return nil, fmt.Errorf("graph: metis: line %d: bad neighbour %q", lineNo, fields[f])
			}
			wv := 1.0
			if weighted {
				wv, err = strconv.ParseFloat(fields[f+1], 64)
				if err != nil || wv <= 0 {
					return nil, fmt.Errorf("graph: metis: line %d: bad weight %q", lineNo, fields[f+1])
				}
			}
			// The format lists every edge from both endpoints; add only
			// the (u < v) copy and mirror it, so asymmetric inputs are
			// still healed into a symmetric matrix.
			u, v := vertex, nb-1
			if u < v {
				b.Add(u, v, wv)
				b.Add(v, u, wv)
			}
		}
		vertex++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: metis: %w", err)
	}
	if vertex < n {
		return nil, fmt.Errorf("graph: metis: %d vertex lines, want %d", vertex, n)
	}
	return NewUndirected(b.Build(), nil)
}
