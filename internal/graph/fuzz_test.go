package graph

import (
	"bytes"
	"strings"
	"testing"

	"symcluster/internal/matrix"
)

// FuzzReadEdgeList checks that arbitrary text either parses into a
// structurally valid graph or fails cleanly, and that valid parses
// round-trip through WriteEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2 3.5\n# comment\n\n2 0\n")
	f.Add("0 0 1e10\n")
	f.Add("5 5\n")
	f.Add("not a graph")
	f.Add("1 2 -3\n")
	f.Add("999999 0\n")
	f.Add("0 1 NaN\n")
	f.Add("0 1 +Inf\n")
	f.Add("0 1 -Inf\n")
	f.Add("0 1 1e400\n")
	f.Add("0 1 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			t.Skip()
		}
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return // clean rejection is fine
		}
		if err := g.Adj.Validate(); err != nil {
			t.Fatalf("parsed graph fails validation: %v", err)
		}
		// Round trip: write and re-read; adjacency must be identical.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write failed on valid graph: %v", err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		// The round trip may shrink the node count when trailing
		// isolated nodes existed only implicitly; compare the stored
		// entries instead.
		if back.M() != g.M() {
			t.Fatalf("edge count changed: %d -> %d", g.M(), back.M())
		}
		for i := 0; i < back.N(); i++ {
			cols, vals := back.Adj.Row(i)
			for k, c := range cols {
				if g.Adj.At(i, int(c)) != vals[k] {
					t.Fatalf("weight (%d,%d) changed", i, c)
				}
			}
		}
	})
}

// FuzzReadGroundTruth checks the ground-truth parser never produces an
// invalid structure.
func FuzzReadGroundTruth(f *testing.F) {
	f.Add("0 1\n\n2\n")
	f.Add("7\n7\n7\n")
	f.Add("x\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			t.Skip()
		}
		cats, err := ReadGroundTruth(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, cs := range cats {
			for _, c := range cs {
				if c < 0 {
					t.Fatalf("node %d parsed negative category", i)
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteGroundTruth(&buf, cats); err != nil {
			t.Fatalf("write failed: %v", err)
		}
	})
}

// FuzzBuilderRoundTrip checks that arbitrary triplets assemble into a
// valid CSR matrix whose entries equal the summed duplicates.
func FuzzBuilderRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip()
		}
		const n = 17
		b := matrix.NewBuilder(n, n)
		type key struct{ r, c int }
		want := map[key]float64{}
		for i := 0; i+2 < len(data); i += 3 {
			r := int(data[i]) % n
			c := int(data[i+1]) % n
			v := float64(int8(data[i+2]))
			b.Add(r, c, v)
			want[key{r, c}] += v
		}
		m := b.Build()
		if err := m.Validate(); err != nil {
			t.Fatalf("built matrix invalid: %v", err)
		}
		for k, v := range want {
			if got := m.At(k.r, k.c); got != v {
				t.Fatalf("entry (%d,%d) = %v, want %v", k.r, k.c, got, v)
			}
		}
	})
}
