package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"symcluster/internal/matrix"
)

// ErrInputTooLarge marks inputs rejected for size rather than syntax —
// a single line longer than the scanner buffer allows. HTTP handlers
// map it to 413 Request Entity Too Large instead of 400.
var ErrInputTooLarge = errors.New("graph: input too large")

// MaxLineBytes bounds one edge-list line. Any legitimate
// "src dst weight" record fits in well under a hundred bytes; a longer
// line is either corruption or an attempt to exhaust memory. Exported
// so the streaming ingester (internal/csr) applies the same cap to
// chunked uploads.
const MaxLineBytes = 16 * 1024 * 1024

const maxLineBytes = MaxLineBytes

// scanErr converts a scanner failure into a caller-facing error,
// surfacing oversized lines as ErrInputTooLarge.
func scanErr(what string, err error) error {
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("%w: %s line exceeds %d bytes", ErrInputTooLarge, what, maxLineBytes)
	}
	return fmt.Errorf("graph: reading %s: %w", what, err)
}

// The edge-list text format, one record per line:
//
//	# comment
//	src dst [weight]
//
// Node ids are non-negative integers; weight defaults to 1. Blank lines
// are skipped. This is the interchange format of cmd/expgen and
// cmd/symcluster.

// WriteEdgeList writes g in edge-list format.
func WriteEdgeList(w io.Writer, g *Directed) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# directed graph: %d nodes, %d edges\n", g.N(), g.M())
	for i := 0; i < g.N(); i++ {
		cols, vals := g.Adj.Row(i)
		for k, c := range cols {
			if vals[k] == 1 {
				fmt.Fprintf(bw, "%d %d\n", i, c)
			} else {
				fmt.Fprintf(bw, "%d %d %g\n", i, c, vals[k])
			}
		}
	}
	return bw.Flush()
}

// ParseEdgeLine parses one line of the edge-list format. It returns
// skip=true for blank lines and comments. Malformed records —
// non-integer or negative ids, weights that are NaN, infinite or
// negative — are rejected with the given line number in the error.
// ReadEdgeList and the streaming ingester (internal/csr) share this
// parser so their accepted grammars can never drift apart.
func ParseEdgeLine(lineNo int, line string) (u, v int, w float64, skip bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return 0, 0, 0, true, nil
	}
	fields := strings.Fields(line)
	if len(fields) != 2 && len(fields) != 3 {
		return 0, 0, 0, false, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", lineNo, line)
	}
	u, err = strconv.Atoi(fields[0])
	if err != nil || u < 0 {
		return 0, 0, 0, false, fmt.Errorf("graph: line %d: bad source id %q", lineNo, fields[0])
	}
	v, err = strconv.Atoi(fields[1])
	if err != nil || v < 0 {
		return 0, 0, 0, false, fmt.Errorf("graph: line %d: bad destination id %q", lineNo, fields[1])
	}
	w = 1.0
	if len(fields) == 3 {
		w, err = strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return 0, 0, 0, false, fmt.Errorf("graph: line %d: bad weight %q", lineNo, fields[2])
		}
		// NaN poisons every downstream kernel silently, infinities
		// overflow the products, and the similarity semantics of the
		// symmetrizations assume non-negative weights — reject all
		// three here, with the line, rather than deep in a kernel.
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return 0, 0, 0, false, fmt.Errorf("graph: line %d: weight %q must be a finite non-negative number", lineNo, fields[2])
		}
	}
	return u, v, w, false, nil
}

// CheckIDDensity guards against absurdly sparse id spaces: a single
// stray id like 999999999 would otherwise allocate gigabytes of row
// pointers. Ids must be reasonably dense; renumber the input if they
// are not. edges is the number of parsed records (before dedup).
func CheckIDDensity(maxID int, edges int64) error {
	if maxID >= 0 && int64(maxID)+1 > 1000*edges+1024 {
		return fmt.Errorf("graph: node id %d too large for %d edges; renumber ids densely", maxID, edges)
	}
	return nil
}

// ReadEdgeList parses an edge-list stream into a directed graph. The
// node count is one greater than the largest id seen; duplicate edges
// have their weights summed. Malformed records — non-integer or
// negative ids, weights that are NaN, infinite or negative — are
// rejected with the offending line number; lines longer than the
// scanner buffer are rejected with ErrInputTooLarge.
func ReadEdgeList(r io.Reader) (*Directed, error) {
	type triplet struct {
		u, v int
		w    float64
	}
	var edges []triplet
	maxID := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		u, v, w, skip, err := ParseEdgeLine(lineNo, sc.Text())
		if err != nil {
			return nil, err
		}
		if skip {
			continue
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, triplet{u, v, w})
	}
	if err := sc.Err(); err != nil {
		return nil, scanErr("edge list", err)
	}
	if err := CheckIDDensity(maxID, int64(len(edges))); err != nil {
		return nil, err
	}
	b := matrix.NewBuilder(maxID+1, maxID+1)
	b.Reserve(len(edges))
	for _, e := range edges {
		b.Add(e.u, e.v, e.w)
	}
	return NewDirected(b.Build(), nil)
}

// WriteLabels writes one label per line, in node order.
func WriteLabels(w io.Writer, labels []string) error {
	bw := bufio.NewWriter(w)
	for _, l := range labels {
		if strings.ContainsRune(l, '\n') {
			return fmt.Errorf("graph: label %q contains newline", l)
		}
		fmt.Fprintln(bw, l)
	}
	return bw.Flush()
}

// ReadLabels reads one label per line.
func ReadLabels(r io.Reader) ([]string, error) {
	var labels []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		labels = append(labels, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, scanErr("labels", err)
	}
	return labels, nil
}

// WriteGroundTruth writes overlapping ground-truth categories, one line
// per node: space-separated category ids, or an empty line for an
// unlabelled node (the paper's datasets leave 20–35% of nodes
// unlabelled).
func WriteGroundTruth(w io.Writer, categories [][]int) error {
	bw := bufio.NewWriter(w)
	for _, cats := range categories {
		parts := make([]string, len(cats))
		for i, c := range cats {
			parts[i] = strconv.Itoa(c)
		}
		fmt.Fprintln(bw, strings.Join(parts, " "))
	}
	return bw.Flush()
}

// ReadGroundTruth parses the format written by WriteGroundTruth.
func ReadGroundTruth(r io.Reader) ([][]int, error) {
	var out [][]int
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			out = append(out, nil)
			continue
		}
		fields := strings.Fields(line)
		cats := make([]int, 0, len(fields))
		for _, f := range fields {
			c, err := strconv.Atoi(f)
			if err != nil || c < 0 {
				return nil, fmt.Errorf("graph: line %d: bad category id %q", lineNo, f)
			}
			cats = append(cats, c)
		}
		sort.Ints(cats)
		out = append(out, cats)
	}
	if err := sc.Err(); err != nil {
		return nil, scanErr("ground truth", err)
	}
	return out, nil
}
