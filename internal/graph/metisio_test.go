package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"symcluster/internal/matrix"
)

func randomUndirected(rng *rand.Rand, n int, avgDeg float64, weighted bool) *Undirected {
	b := matrix.NewBuilder(n, n)
	edges := int(float64(n) * avgDeg / 2)
	for e := 0; e < edges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		w := 1.0
		if weighted {
			w = float64(1 + rng.Intn(9))
		}
		b.Add(u, v, w)
		b.Add(v, u, w)
	}
	g, err := NewUndirected(b.Build(), nil)
	if err != nil {
		panic(err)
	}
	return g
}

func TestMetisRoundTripUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomUndirected(rng, 40, 5, false)
	var buf bytes.Buffer
	if err := WriteMetisGraph(&buf, g, 1); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMetisGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(back.Adj, g.Adj, 0) {
		t.Fatal("unweighted round trip changed the graph")
	}
}

func TestMetisRoundTripWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomUndirected(rng, 30, 4, true)
	var buf bytes.Buffer
	if err := WriteMetisGraph(&buf, g, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "001") {
		t.Fatal("weighted graph written without fmt 001")
	}
	back, err := ReadMetisGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(back.Adj, g.Adj, 0) {
		t.Fatal("weighted round trip changed the graph")
	}
}

func TestMetisWeightScaling(t *testing.T) {
	// Real-valued weights survive via scaling.
	b := matrix.NewBuilder(2, 2)
	b.Add(0, 1, 0.123)
	b.Add(1, 0, 0.123)
	g, _ := NewUndirected(b.Build(), nil)
	var buf bytes.Buffer
	if err := WriteMetisGraph(&buf, g, 1000); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMetisGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Adj.At(0, 1) != 123 {
		t.Fatalf("scaled weight = %v, want 123", back.Adj.At(0, 1))
	}
}

func TestMetisSkipsSelfLoops(t *testing.T) {
	b := matrix.NewBuilder(2, 2)
	b.Add(0, 0, 5)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	g, _ := NewUndirected(b.Build(), nil)
	var buf bytes.Buffer
	if err := WriteMetisGraph(&buf, g, 1); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMetisGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Adj.At(0, 0) != 0 {
		t.Fatal("self-loop survived METIS round trip")
	}
	// Note: fmt "001" is triggered by the self-loop weight 5 even
	// though the surviving edge is unit weight — harmless.
	if back.Adj.At(0, 1) != 1 {
		t.Fatalf("edge weight %v", back.Adj.At(0, 1))
	}
}

func TestReadMetisErrors(t *testing.T) {
	cases := []string{
		"",                      // no header
		"2\n",                   // short header
		"x 1\n1\n2\n",           // bad vertex count
		"2 1 011\n2\n1\n",       // vertex weights unsupported
		"2 1\n3\n1\n",           // neighbour out of range
		"2 1\n2\n",              // too few vertex lines
		"2 1\n2\n1\n1\n",        // extra vertex line
		"2 1 001\n2 1 1\n1 1\n", // odd fields in weighted row
		"2 1 001\n2 0\n1 0\n",   // non-positive weight
	}
	for _, in := range cases {
		if _, err := ReadMetisGraph(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted malformed input %q", in)
		}
	}
}

func TestReadMetisComments(t *testing.T) {
	in := "% header comment\n3 2\n2 3\n1\n1\n"
	g, err := ReadMetisGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
}
