// Package graph provides the directed- and undirected-graph substrate
// for symcluster: graph types over CSR adjacency matrices, node labels,
// edge-list I/O, degree statistics (Figure 4), symmetric-link
// percentages (Table 1) and top-weight edge extraction (Table 5).
package graph

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"symcluster/internal/matrix"
)

// Directed is a weighted directed graph. Adj[i][j] > 0 means an edge
// i → j. Labels, when present, give human-readable node names (used by
// the Table 5 experiment and the case studies); a nil Labels slice is
// valid and means anonymous nodes.
type Directed struct {
	Adj    *matrix.CSR
	Labels []string
}

// NewDirected wraps an adjacency matrix as a directed graph. The matrix
// must be square; labels may be nil or must match the node count.
func NewDirected(adj *matrix.CSR, labels []string) (*Directed, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("graph: adjacency matrix %dx%d not square", adj.Rows, adj.Cols)
	}
	if labels != nil && len(labels) != adj.Rows {
		return nil, fmt.Errorf("graph: %d labels for %d nodes", len(labels), adj.Rows)
	}
	return &Directed{Adj: adj, Labels: labels}, nil
}

// N returns the number of nodes.
func (g *Directed) N() int { return g.Adj.Rows }

// M returns the number of directed edges (stored entries).
func (g *Directed) M() int { return g.Adj.NNZ() }

// Label returns the label for node i, or its index rendered as text
// when the graph is unlabelled.
func (g *Directed) Label(i int) string {
	if g.Labels != nil {
		return g.Labels[i]
	}
	return fmt.Sprintf("v%d", i)
}

// Fingerprint returns a 64-bit FNV-1a hash of the graph's structure
// and weights (dimensions, row extents, column indices, edge weights).
// Two graphs with identical adjacency matrices hash identically
// regardless of labels, so the fingerprint can key caches of derived
// quantities such as symmetrized graphs.
func (g *Directed) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(g.Adj.Rows))
	put(uint64(g.Adj.NNZ()))
	for _, p := range g.Adj.RowPtr {
		put(uint64(p))
	}
	for _, c := range g.Adj.ColIdx {
		put(uint64(c))
	}
	for _, v := range g.Adj.Val {
		put(math.Float64bits(v))
	}
	return h.Sum64()
}

// OutDegrees returns the unweighted out-degree of every node.
func (g *Directed) OutDegrees() []int { return g.Adj.RowCounts() }

// InDegrees returns the unweighted in-degree of every node.
func (g *Directed) InDegrees() []int { return g.Adj.ColCounts() }

// SymmetricLinkFraction returns the fraction of directed edges (i, j)
// for which the reciprocal edge (j, i) also exists. This is the
// "percentage of symmetric links" column of Table 1 (as a fraction).
// Self-loops count as symmetric. Returns 0 for an edgeless graph.
func (g *Directed) SymmetricLinkFraction() float64 {
	m := g.M()
	if m == 0 {
		return 0
	}
	t := g.Adj.Transpose()
	recip := 0
	for i := 0; i < g.N(); i++ {
		ac, _ := g.Adj.Row(i)
		bc, _ := t.Row(i)
		p, q := 0, 0
		for p < len(ac) && q < len(bc) {
			switch {
			case ac[p] < bc[q]:
				p++
			case bc[q] < ac[p]:
				q++
			default:
				recip++
				p++
				q++
			}
		}
	}
	return float64(recip) / float64(m)
}

// Undirected is a weighted undirected graph stored as a symmetric
// adjacency matrix (both triangles present). It is the output type of
// every symmetrization.
type Undirected struct {
	Adj    *matrix.CSR
	Labels []string
}

// NewUndirected wraps a symmetric adjacency matrix. It validates
// squareness but, for cost reasons, only spot-checks symmetry when the
// graph is small; callers constructing adjacencies by hand should pass
// matrices they know to be symmetric (all symmetrizations do).
func NewUndirected(adj *matrix.CSR, labels []string) (*Undirected, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("graph: adjacency matrix %dx%d not square", adj.Rows, adj.Cols)
	}
	if labels != nil && len(labels) != adj.Rows {
		return nil, fmt.Errorf("graph: %d labels for %d nodes", len(labels), adj.Rows)
	}
	if adj.Rows <= 1024 && !adj.IsSymmetric(1e-9) {
		return nil, fmt.Errorf("graph: adjacency matrix not symmetric")
	}
	return &Undirected{Adj: adj, Labels: labels}, nil
}

// N returns the number of nodes.
func (g *Undirected) N() int { return g.Adj.Rows }

// M returns the number of undirected edges: off-diagonal stored entries
// divided by two, plus self-loops.
func (g *Undirected) M() int {
	loops := 0
	for i := 0; i < g.N(); i++ {
		if g.Adj.At(i, i) != 0 {
			loops++
		}
	}
	return (g.Adj.NNZ()-loops)/2 + loops
}

// Label returns the label for node i.
func (g *Undirected) Label(i int) string {
	if g.Labels != nil {
		return g.Labels[i]
	}
	return fmt.Sprintf("v%d", i)
}

// Degrees returns the unweighted degree (stored neighbours) per node.
func (g *Undirected) Degrees() []int { return g.Adj.RowCounts() }

// WeightedDegrees returns the weighted degree (row sum) per node, the
// quantity normalised cuts are defined over.
func (g *Undirected) WeightedDegrees() []float64 { return g.Adj.RowSums() }

// Edge is one weighted edge, used for ranked edge reports (Table 5).
type Edge struct {
	U, V   int
	Weight float64
}

// TopEdges returns the k heaviest edges of the undirected graph in
// descending weight order, counting each {u,v} pair once (u < v) and
// ignoring self-loops. Ties break by (u, v) for determinism.
func (g *Undirected) TopEdges(k int) []Edge {
	var edges []Edge
	for i := 0; i < g.N(); i++ {
		cols, vals := g.Adj.Row(i)
		for t, c := range cols {
			if int(c) > i {
				edges = append(edges, Edge{U: i, V: int(c), Weight: vals[t]})
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		ea, eb := edges[a], edges[b]
		if ea.Weight != eb.Weight {
			return ea.Weight > eb.Weight
		}
		if ea.U != eb.U {
			return ea.U < eb.U
		}
		return ea.V < eb.V
	})
	if k < len(edges) {
		edges = edges[:k]
	}
	return edges
}

// ConnectedComponents labels each node of the undirected graph with a
// component id in [0, count) and returns the labels and component count.
func (g *Undirected) ConnectedComponents() (labels []int, count int) {
	n := g.N()
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []int32
	for s := 0; s < n; s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = count
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cols, _ := g.Adj.Row(int(u))
			for _, v := range cols {
				if labels[v] == -1 {
					labels[v] = count
					stack = append(stack, v)
				}
			}
		}
		count++
	}
	return labels, count
}

// Singletons returns the number of isolated nodes (no incident edges,
// self-loops excluded). The paper uses singleton counts to show why
// pruned Bibliometric graphs are not viable (§5.3).
func (g *Undirected) Singletons() int {
	n := 0
	for i := 0; i < g.N(); i++ {
		cols, _ := g.Adj.Row(i)
		isolated := true
		for _, c := range cols {
			if int(c) != i {
				isolated = false
				break
			}
		}
		if isolated {
			n++
		}
	}
	return n
}

// DegreeHistogram bins a degree sequence into logarithmic buckets
// [1,2), [2,4), [4,8), … and returns the per-bucket node counts plus a
// count of degree-zero nodes. This reproduces the Figure 4 view of the
// symmetrized Wikipedia graphs.
type DegreeHistogram struct {
	Zero    int   // nodes with degree 0
	Buckets []int // Buckets[b] counts nodes with degree in [2^b, 2^(b+1))
}

// HistogramDegrees builds a DegreeHistogram from a degree sequence.
func HistogramDegrees(degrees []int) DegreeHistogram {
	var h DegreeHistogram
	for _, d := range degrees {
		if d <= 0 {
			h.Zero++
			continue
		}
		b := int(math.Log2(float64(d)))
		for len(h.Buckets) <= b {
			h.Buckets = append(h.Buckets, 0)
		}
		h.Buckets[b]++
	}
	return h
}

// MaxDegree returns the largest value in the degree sequence, 0 when
// empty.
func MaxDegree(degrees []int) int {
	mx := 0
	for _, d := range degrees {
		if d > mx {
			mx = d
		}
	}
	return mx
}

// MedianDegree returns the median of the degree sequence (lower median
// for even lengths), 0 when empty.
func MedianDegree(degrees []int) int {
	if len(degrees) == 0 {
		return 0
	}
	s := append([]int(nil), degrees...)
	sort.Ints(s)
	return s[(len(s)-1)/2]
}

// MeanDegree returns the arithmetic mean of the degree sequence.
func MeanDegree(degrees []int) float64 {
	if len(degrees) == 0 {
		return 0
	}
	sum := 0
	for _, d := range degrees {
		sum += d
	}
	return float64(sum) / float64(len(degrees))
}
