package metis

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"symcluster/internal/matrix"
)

// symGen generates random symmetric weighted graphs for testing/quick.
type symGen struct {
	Adj *matrix.CSR
}

// Generate implements quick.Generator.
func (symGen) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 2 + rng.Intn(40)
	b := matrix.NewBuilder(n, n)
	edges := rng.Intn(4 * n)
	for e := 0; e < edges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		w := 0.5 + rng.Float64()
		b.Add(u, v, w)
		b.Add(v, u, w)
	}
	return reflect.ValueOf(symGen{Adj: b.Build()})
}

func TestQuickPartitionAlwaysValid(t *testing.T) {
	f := func(g symGen, kRaw uint8, seed int64) bool {
		n := g.Adj.Rows
		k := 1 + int(kRaw)%n
		res, err := Partition(g.Adj, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		if len(res.Assign) != n || res.K != k {
			return false
		}
		seen := make([]bool, k)
		for _, a := range res.Assign {
			if a < 0 || a >= k {
				return false
			}
			seen[a] = true
		}
		for _, s := range seen {
			if !s {
				return false // empty part
			}
		}
		if res.EdgeCut < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEdgeCutBounds(t *testing.T) {
	// 0 <= cut <= total edge weight, and the all-in-one partition cuts
	// nothing.
	f := func(g symGen, seed int64) bool {
		n := g.Adj.Rows
		var total float64
		for _, v := range g.Adj.Val {
			total += v
		}
		total /= 2
		one := make([]int, n)
		if EdgeCut(g.Adj, one) != 0 {
			return false
		}
		if n < 2 {
			return true
		}
		res, err := Partition(g.Adj, 2, Options{Seed: seed})
		if err != nil {
			return false
		}
		return res.EdgeCut >= 0 && res.EdgeCut <= total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
