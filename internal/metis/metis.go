// Package metis implements a multilevel k-way graph partitioner in the
// style of Metis (Karypis & Kumar, SIAM J. Sci. Comput. 1999): k-way
// partitioning by recursive bisection, where each bisection coarsens
// the graph by heavy-edge matching, computes an initial split by greedy
// graph growing, and refines the split at every level with
// Fiduccia–Mattheyses boundary moves under a balance constraint.
//
// Unlike the original (integer-weighted) Metis, edge weights here are
// float64, because symmetrized similarity graphs carry real-valued
// weights.
package metis

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"

	"symcluster/internal/matrix"
	"symcluster/internal/multilevel"
)

// Options configures Partition.
type Options struct {
	// Imbalance is the allowed load imbalance: each part may weigh up to
	// (1+Imbalance)·target. Defaults to 0.1.
	Imbalance float64
	// CoarsenTo is the node count at which coarsening stops within each
	// bisection. Defaults to 64.
	CoarsenTo int
	// InitTrials is the number of greedy-graph-growing attempts for the
	// initial bisection; the best cut wins. Defaults to 8.
	InitTrials int
	// RefinePasses bounds the FM passes per level. Defaults to 8.
	RefinePasses int
	// Seed drives all randomised choices.
	Seed int64
}

func (o *Options) fill() {
	if o.Imbalance <= 0 {
		o.Imbalance = 0.1
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 64
	}
	if o.InitTrials <= 0 {
		o.InitTrials = 8
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 8
	}
}

// Result carries the partitioning output.
type Result struct {
	// Assign maps each node to a part in [0, K).
	Assign []int
	// K is the requested number of parts.
	K int
	// EdgeCut is the total weight of edges crossing between parts.
	EdgeCut float64
}

// Partition splits the symmetric weighted adjacency adj into k parts.
func Partition(adj *matrix.CSR, k int, opt Options) (*Result, error) {
	return PartitionCtx(context.Background(), adj, k, opt)
}

// PartitionCtx is Partition with cancellation: ctx is polled at the
// entry of every recursive bisection, before each coarsening level and
// before each k-way refinement pass, so a cancelled context aborts the
// partitioning within one bisection stage with ctx's error.
func PartitionCtx(ctx context.Context, adj *matrix.CSR, k int, opt Options) (*Result, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("metis: adjacency %dx%d not square", adj.Rows, adj.Cols)
	}
	if k < 1 {
		return nil, fmt.Errorf("metis: k = %d, want >= 1", k)
	}
	if k > adj.Rows && adj.Rows > 0 {
		return nil, fmt.Errorf("metis: k = %d exceeds node count %d", k, adj.Rows)
	}
	opt.fill()
	rng := rand.New(rand.NewSource(opt.Seed))

	n := adj.Rows
	assign := make([]int, n)
	if k > 1 && n > 0 {
		nodes := make([]int32, n)
		for i := range nodes {
			nodes[i] = int32(i)
		}
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
		if err := recurse(ctx, adj, nodes, weights, k, 0, assign, opt, rng); err != nil {
			return nil, err
		}
		// Direct k-way boundary refinement across the seams the
		// recursive bisection optimised in isolation.
		maxPart := float64(n) / float64(k) * (1 + opt.Imbalance)
		assign = kwayRefine(ctx, adj, assign, k, maxPart, opt.RefinePasses)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return &Result{Assign: assign, K: k, EdgeCut: EdgeCut(adj, assign)}, nil
}

// EdgeCut returns the total weight of edges whose endpoints are in
// different parts (each undirected edge counted once).
func EdgeCut(adj *matrix.CSR, assign []int) float64 {
	var cut float64
	for i := 0; i < adj.Rows; i++ {
		cols, vals := adj.Row(i)
		for t, c := range cols {
			if int(c) > i && assign[i] != assign[c] {
				cut += vals[t]
			}
		}
	}
	return cut
}

// recurse bisects the subgraph induced by nodes into parts of size
// proportional to ceil(k/2) : floor(k/2), labels the halves starting at
// base and base+ceil(k/2), and recurses until k = 1.
func recurse(ctx context.Context, full *matrix.CSR, nodes []int32, weights []float64, k, base int, assign []int, opt Options, rng *rand.Rand) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if k == 1 {
		for _, v := range nodes {
			assign[v] = base
		}
		return nil
	}
	k1 := (k + 1) / 2
	k2 := k - k1
	frac := float64(k1) / float64(k)

	sub, subWeights := induce(full, nodes, weights)
	side, err := bisect(ctx, sub, subWeights, frac, opt, rng)
	if err != nil {
		return err
	}

	var left, right []int32
	var lw, rw []float64
	for i, v := range nodes {
		if side[i] == 0 {
			left = append(left, v)
			lw = append(lw, weights[i])
		} else {
			right = append(right, v)
			rw = append(rw, weights[i])
		}
	}
	// Each side must carry at least as many nodes as the parts it will
	// produce; weight-balanced bisections of small or skewed subgraphs
	// can violate that, so rebalance by moving surplus nodes across.
	for len(left) < k1 {
		last := len(right) - 1
		left = append(left, right[last])
		lw = append(lw, rw[last])
		right = right[:last]
		rw = rw[:last]
	}
	for len(right) < k2 {
		last := len(left) - 1
		right = append(right, left[last])
		rw = append(rw, lw[last])
		left = left[:last]
		lw = lw[:last]
	}
	if err := recurse(ctx, full, left, lw, k1, base, assign, opt, rng); err != nil {
		return err
	}
	return recurse(ctx, full, right, rw, k2, base+k1, assign, opt, rng)
}

// induce extracts the subgraph of full induced by nodes, along with the
// corresponding node weights.
func induce(full *matrix.CSR, nodes []int32, weights []float64) (*matrix.CSR, []float64) {
	idx := make(map[int32]int32, len(nodes))
	for i, v := range nodes {
		idx[v] = int32(i)
	}
	b := matrix.NewBuilder(len(nodes), len(nodes))
	for i, v := range nodes {
		cols, vals := full.Row(int(v))
		for t, c := range cols {
			if j, ok := idx[c]; ok && int(j) != i {
				b.Add(i, int(j), vals[t])
			}
		}
	}
	w := append([]float64(nil), weights...)
	return b.Build(), w
}

// bisect splits adj (with node weights) into sides 0/1, targeting
// fraction frac of the weight on side 0, by multilevel FM.
func bisect(ctx context.Context, adj *matrix.CSR, nodeWeight []float64, frac float64, opt Options, rng *rand.Rand) ([]int, error) {
	n := adj.Rows
	if n == 0 {
		return nil, nil
	}
	if n == 1 {
		return []int{0}, nil
	}
	h, err := multilevel.CoarsenCtx(ctx, adj, multilevel.Options{MinNodes: opt.CoarsenTo, Seed: rng.Int63()})
	if err != nil {
		// Cancellation or an injected fault; the only other failure mode
		// is a non-square input, which bisect never constructs.
		return nil, fmt.Errorf("metis: coarsening: %w", err)
	}
	// Aggregate true node weights through the hierarchy: the finest
	// level's weights are the caller's, not all-ones.
	levelWeights := make([][]float64, h.Depth())
	levelWeights[0] = nodeWeight
	for l := 1; l < h.Depth(); l++ {
		lev := h.Levels[l]
		w := make([]float64, lev.Adj.Rows)
		for fine, c := range lev.Map {
			w[c] += levelWeights[l-1][fine]
		}
		levelWeights[l] = w
	}

	coarse := h.Coarsest()
	side := initialBisection(coarse.Adj, levelWeights[h.Depth()-1], frac, opt, rng)
	side = fmRefine(coarse.Adj, levelWeights[h.Depth()-1], side, frac, opt)
	for l := h.Depth() - 1; l >= 1; l-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		side = h.Project(l, side)
		side = fmRefine(h.Levels[l-1].Adj, levelWeights[l-1], side, frac, opt)
	}
	return side, nil
}

// initialBisection runs greedy graph growing InitTrials times and keeps
// the split with the lowest cut among balanced results.
func initialBisection(adj *matrix.CSR, nodeWeight []float64, frac float64, opt Options, rng *rand.Rand) []int {
	var total float64
	for _, w := range nodeWeight {
		total += w
	}
	target := frac * total

	var best []int
	bestCut := math.Inf(1)
	for trial := 0; trial < opt.InitTrials; trial++ {
		side := growRegion(adj, nodeWeight, target, rng)
		cut := EdgeCut(adj, side)
		if cut < bestCut {
			bestCut = cut
			best = side
		}
	}
	return best
}

// growRegion grows side 0 from a random seed by repeatedly absorbing
// the frontier node with the strongest connection to the region, until
// the region's weight reaches target.
func growRegion(adj *matrix.CSR, nodeWeight []float64, target float64, rng *rand.Rand) []int {
	n := adj.Rows
	side := make([]int, n)
	for i := range side {
		side[i] = 1
	}
	seed := rng.Intn(n)
	side[seed] = 0
	weight := nodeWeight[seed]

	gain := make([]float64, n)
	pq := &floatHeap{}
	heap.Init(pq)
	push := func(from int) {
		cols, vals := adj.Row(from)
		for t, c := range cols {
			if side[c] == 1 {
				gain[c] += vals[t]
				heap.Push(pq, heapItem{node: c, key: gain[c]})
			}
		}
	}
	push(seed)
	for weight < target && pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if side[it.node] == 0 || it.key != gain[it.node] {
			continue // stale entry
		}
		side[it.node] = 0
		weight += nodeWeight[it.node]
		push(int(it.node))
	}
	// Disconnected remainder: absorb arbitrary nodes until balanced.
	if weight < target {
		for i := 0; i < n && weight < target; i++ {
			if side[i] == 1 {
				side[i] = 0
				weight += nodeWeight[i]
			}
		}
	}
	return side
}

// fmRefine performs Fiduccia–Mattheyses passes on a 2-way split: each
// pass tentatively moves every node once in best-gain-first order,
// tracks the best prefix that satisfies balance, and rolls back the
// rest. Passes repeat until a pass yields no improvement.
func fmRefine(adj *matrix.CSR, nodeWeight []float64, side []int, frac float64, opt Options) []int {
	n := adj.Rows
	var total float64
	for _, w := range nodeWeight {
		total += w
	}
	target0 := frac * total
	maxSide0 := target0 * (1 + opt.Imbalance)
	minSide0 := target0 * (1 - opt.Imbalance)
	if minSide0 < 0 {
		minSide0 = 0
	}

	var weight0, maxNodeW float64
	for i, s := range side {
		if s == 0 {
			weight0 += nodeWeight[i]
		}
		if nodeWeight[i] > maxNodeW {
			maxNodeW = nodeWeight[i]
		}
	}
	// In-pass bounds are relaxed by one node weight so that pairwise
	// swaps (move one node out, then one in) are reachable; only
	// strictly balanced prefixes are committed.
	loosMax := maxSide0 + maxNodeW
	loosMin := minSide0 - maxNodeW
	if loosMin < 0 {
		loosMin = 0
	}

	gain := make([]float64, n)
	computeGain := func(i int) float64 {
		cols, vals := adj.Row(i)
		var ext, intl float64
		for t, c := range cols {
			if side[c] == side[i] {
				intl += vals[t]
			} else {
				ext += vals[t]
			}
		}
		return ext - intl
	}

	for pass := 0; pass < opt.RefinePasses; pass++ {
		pq := &floatHeap{}
		heap.Init(pq)
		locked := make([]bool, n)
		for i := 0; i < n; i++ {
			gain[i] = computeGain(i)
			heap.Push(pq, heapItem{node: int32(i), key: gain[i]})
		}

		type move struct {
			node int32
			gain float64
		}
		var moves []move
		var cum, bestCum float64
		bestPrefix := -1
		w0 := weight0

		for pq.Len() > 0 {
			it := heap.Pop(pq).(heapItem)
			i := int(it.node)
			if locked[i] || it.key != gain[i] {
				continue
			}
			// Respect balance for this tentative move.
			var nw0 float64
			if side[i] == 0 {
				nw0 = w0 - nodeWeight[i]
			} else {
				nw0 = w0 + nodeWeight[i]
			}
			if nw0 > loosMax || nw0 < loosMin {
				locked[i] = true // cannot move this pass
				continue
			}
			locked[i] = true
			moved := gain[i]
			side[i] = 1 - side[i]
			w0 = nw0
			cum += moved
			moves = append(moves, move{int32(i), moved})
			if cum > bestCum+1e-12 && w0 <= maxSide0 && w0 >= minSide0 {
				bestCum = cum
				bestPrefix = len(moves) - 1
			}
			// Update neighbour gains.
			cols, vals := adj.Row(i)
			for t, c := range cols {
				if locked[c] {
					continue
				}
				if side[c] == side[i] {
					gain[c] -= 2 * vals[t]
				} else {
					gain[c] += 2 * vals[t]
				}
				heap.Push(pq, heapItem{node: c, key: gain[c]})
			}
		}
		// Roll back moves after the best prefix.
		for m := len(moves) - 1; m > bestPrefix; m-- {
			i := moves[m].node
			side[i] = 1 - side[i]
			if side[i] == 0 {
				weight0 += nodeWeight[i]
			} else {
				weight0 -= nodeWeight[i]
			}
		}
		// Recompute weight0 for the kept prefix.
		weight0 = 0
		for i, s := range side {
			if s == 0 {
				weight0 += nodeWeight[i]
			}
		}
		if bestPrefix < 0 {
			break // pass produced no improvement
		}
	}
	return side
}

// heapItem and floatHeap implement a max-heap of (node, key) with lazy
// invalidation: stale entries are skipped when their key no longer
// matches the node's current gain.
type heapItem struct {
	node int32
	key  float64
}

type floatHeap []heapItem

func (h floatHeap) Len() int            { return len(h) }
func (h floatHeap) Less(i, j int) bool  { return h[i].key > h[j].key }
func (h floatHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floatHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *floatHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
