package metis

import (
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

func TestInduceSubgraph(t *testing.T) {
	full := matrix.FromDense([][]float64{
		{0, 1, 2, 0},
		{1, 0, 0, 3},
		{2, 0, 0, 4},
		{0, 3, 4, 0},
	})
	nodes := []int32{0, 2, 3}
	weights := []float64{1, 2, 3}
	sub, w := induce(full, nodes, weights)
	if sub.Rows != 3 {
		t.Fatalf("sub dims %d", sub.Rows)
	}
	// Local ids: 0→0, 2→1, 3→2. Edges: (0,2)=2 → (0,1); (2,3)=4 → (1,2).
	if sub.At(0, 1) != 2 || sub.At(1, 0) != 2 {
		t.Fatalf("edge (0,2) lost: %v", sub.ToDense())
	}
	if sub.At(1, 2) != 4 || sub.At(2, 1) != 4 {
		t.Fatalf("edge (2,3) lost: %v", sub.ToDense())
	}
	// Edge (0,1) of the full graph must vanish (node 1 not included).
	if sub.At(0, 2) != 0 {
		t.Fatalf("phantom edge: %v", sub.ToDense())
	}
	if w[0] != 1 || w[1] != 2 || w[2] != 3 {
		t.Fatalf("weights %v", w)
	}
}

func TestInduceDropsSelfLoops(t *testing.T) {
	full := matrix.FromDense([][]float64{
		{7, 1},
		{1, 0},
	})
	sub, _ := induce(full, []int32{0, 1}, []float64{1, 1})
	if sub.At(0, 0) != 0 {
		t.Fatal("self-loop survived induce")
	}
}

func TestGrowRegionReachesTarget(t *testing.T) {
	b := matrix.NewBuilder(10, 10)
	for i := 0; i < 9; i++ {
		b.Add(i, i+1, 1)
		b.Add(i+1, i, 1)
	}
	adj := b.Build()
	w := make([]float64, 10)
	for i := range w {
		w[i] = 1
	}
	for seed := int64(0); seed < 5; seed++ {
		side := growRegion(adj, w, 5, newRand(seed))
		count := 0
		for _, s := range side {
			if s == 0 {
				count++
			}
		}
		if count < 5 {
			t.Fatalf("seed %d: region grew to %d, want >= 5", seed, count)
		}
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
