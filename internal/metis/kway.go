package metis

import (
	"context"

	"symcluster/internal/matrix"
)

// kwayRefine runs greedy k-way boundary refinement after recursive
// bisection: each pass visits every node adjacent to another part and
// applies the edge-cut-reducing move with the best gain, subject to the
// balance constraint. Recursive bisection optimises each cut in
// isolation; this direct k-way pass fixes the seams between sibling
// parts. ctx is polled once per pass; a cancelled context stops
// refining and returns the assignment as improved so far (the caller
// surfaces the cancellation).
func kwayRefine(ctx context.Context, adj *matrix.CSR, assign []int, k int, maxWeight float64, passes int) []int {
	n := adj.Rows
	partWeight := make([]float64, k)
	for _, p := range assign {
		partWeight[p]++
	}

	linkTo := make([]float64, k)
	var touched []int
	for pass := 0; pass < passes; pass++ {
		if ctx.Err() != nil {
			break
		}
		moved := 0
		for i := 0; i < n; i++ {
			a := assign[i]
			if partWeight[a] <= 1 {
				continue
			}
			cols, vals := adj.Row(i)
			touched = touched[:0]
			for t, c := range cols {
				if int(c) == i {
					continue
				}
				p := assign[c]
				if linkTo[p] == 0 {
					touched = append(touched, p)
				}
				linkTo[p] += vals[t]
			}
			bestGain := 0.0
			bestPart := -1
			for _, p := range touched {
				if p == a || partWeight[p]+1 > maxWeight {
					continue
				}
				// Moving i from a to p reduces the cut by
				// linkTo[p] − linkTo[a].
				if gain := linkTo[p] - linkTo[a]; gain > bestGain+1e-12 {
					bestGain = gain
					bestPart = p
				}
			}
			if bestPart >= 0 {
				partWeight[a]--
				partWeight[bestPart]++
				assign[i] = bestPart
				moved++
			}
			for _, p := range touched {
				linkTo[p] = 0
			}
		}
		if moved == 0 {
			break
		}
	}
	return assign
}
