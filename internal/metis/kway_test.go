package metis

import (
	"context"
	"math/rand"
	"testing"
)

func TestKWayRefineImprovesCut(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	adj, truth := blockGraph(rng, 4, 30, 0.4, 0.01)
	// Start from a deliberately damaged version of the truth: swap a
	// band of nodes between parts.
	assign := append([]int(nil), truth...)
	for i := 0; i < 10; i++ {
		assign[i] = (assign[i] + 1) % 4
	}
	before := EdgeCut(adj, assign)
	refined := kwayRefine(context.Background(), adj, append([]int(nil), assign...), 4, 40, 8)
	after := EdgeCut(adj, refined)
	if after >= before {
		t.Fatalf("k-way refinement did not improve cut: %v -> %v", before, after)
	}
}

func TestKWayRefineRespectsBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	adj, _ := blockGraph(rng, 1, 100, 0.1, 0)
	assign := make([]int, 100)
	for i := range assign {
		assign[i] = i % 4
	}
	refined := kwayRefine(context.Background(), adj, assign, 4, 30, 8)
	counts := make([]int, 4)
	for _, p := range refined {
		counts[p]++
	}
	for p, c := range counts {
		if c == 0 || float64(c) > 30 {
			t.Fatalf("part %d weight %d violates balance cap 30: %v", p, c, counts)
		}
	}
}

func TestKWayRefineNeverEmptiesPart(t *testing.T) {
	// One node strongly attached elsewhere must stay if it is its
	// part's last member.
	rng := rand.New(rand.NewSource(33))
	adj, _ := blockGraph(rng, 2, 20, 0.5, 0.1)
	assign := make([]int, 40)
	assign[0] = 1 // singleton part 1
	refined := kwayRefine(context.Background(), adj, assign, 2, 45, 10)
	count1 := 0
	for _, p := range refined {
		if p == 1 {
			count1++
		}
	}
	if count1 == 0 {
		t.Fatal("refinement emptied a part")
	}
}
