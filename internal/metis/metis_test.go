package metis

import (
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

// blockGraph builds k dense blocks of size sz, symmetric.
func blockGraph(rng *rand.Rand, k, sz int, pin, pout float64) (*matrix.CSR, []int) {
	n := k * sz
	truth := make([]int, n)
	for i := range truth {
		truth[i] = i / sz
	}
	b := matrix.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pout
			if truth[i] == truth[j] {
				p = pin
			}
			if rng.Float64() < p {
				b.Add(i, j, 1)
				b.Add(j, i, 1)
			}
		}
	}
	return b.Build(), truth
}

func partSizes(assign []int, k int) []int {
	sizes := make([]int, k)
	for _, a := range assign {
		sizes[a]++
	}
	return sizes
}

func TestPartitionBasicValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	adj, _ := blockGraph(rng, 4, 25, 0.4, 0.02)
	res, err := Partition(adj, 4, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 || len(res.Assign) != 100 {
		t.Fatalf("K=%d len=%d", res.K, len(res.Assign))
	}
	for _, a := range res.Assign {
		if a < 0 || a >= 4 {
			t.Fatalf("part id %d out of range", a)
		}
	}
	sizes := partSizes(res.Assign, 4)
	for p, s := range sizes {
		if s == 0 {
			t.Fatalf("part %d empty: %v", p, sizes)
		}
	}
}

func TestPartitionRecoverseBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	adj, _ := blockGraph(rng, 4, 25, 0.5, 0.01)
	res, err := Partition(adj, 4, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every true block should be dominated by a single part.
	for blk := 0; blk < 4; blk++ {
		counts := map[int]int{}
		for i := blk * 25; i < (blk+1)*25; i++ {
			counts[res.Assign[i]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		if best < 20 {
			t.Fatalf("block %d scattered: %v", blk, counts)
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	adj, _ := blockGraph(rng, 1, 200, 0.05, 0) // one homogeneous blob
	res, err := Partition(adj, 4, Options{Seed: 6, Imbalance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	sizes := partSizes(res.Assign, 4)
	for p, s := range sizes {
		if s < 25 || s > 85 {
			t.Fatalf("part %d badly unbalanced: %v", p, sizes)
		}
	}
}

func TestPartitionCutBeatsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	adj, _ := blockGraph(rng, 4, 30, 0.4, 0.02)
	res, err := Partition(adj, 4, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	randAssign := make([]int, adj.Rows)
	for i := range randAssign {
		randAssign[i] = rng.Intn(4)
	}
	if res.EdgeCut >= EdgeCut(adj, randAssign) {
		t.Fatalf("partitioner cut %v not below random cut %v", res.EdgeCut, EdgeCut(adj, randAssign))
	}
}

func TestPartitionK1(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	adj, _ := blockGraph(rng, 2, 10, 0.5, 0.1)
	res, err := Partition(adj, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assign {
		if a != 0 {
			t.Fatal("k=1 must assign everything to part 0")
		}
	}
	if res.EdgeCut != 0 {
		t.Fatalf("k=1 cut = %v", res.EdgeCut)
	}
}

func TestPartitionOddK(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	adj, _ := blockGraph(rng, 5, 20, 0.5, 0.02)
	res, err := Partition(adj, 5, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sizes := partSizes(res.Assign, 5)
	for p, s := range sizes {
		if s == 0 {
			t.Fatalf("part %d empty with odd k: %v", p, sizes)
		}
	}
}

func TestPartitionKEqualsN(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	adj, _ := blockGraph(rng, 1, 8, 0.8, 0)
	res, err := Partition(adj, 8, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	sizes := partSizes(res.Assign, 8)
	for p, s := range sizes {
		if s != 1 {
			t.Fatalf("k=n: part %d has %d nodes: %v", p, s, sizes)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(matrix.Zero(2, 3), 2, Options{}); err == nil {
		t.Fatal("accepted non-square")
	}
	if _, err := Partition(matrix.Zero(3, 3), 0, Options{}); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := Partition(matrix.Zero(3, 3), 4, Options{}); err == nil {
		t.Fatal("accepted k>n")
	}
}

func TestPartitionEdgelessGraph(t *testing.T) {
	res, err := Partition(matrix.Zero(10, 10), 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sizes := partSizes(res.Assign, 3)
	for p, s := range sizes {
		if s == 0 {
			t.Fatalf("part %d empty on edgeless graph: %v", p, sizes)
		}
	}
	if res.EdgeCut != 0 {
		t.Fatalf("edgeless cut = %v", res.EdgeCut)
	}
}

func TestPartitionDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	adj, _ := blockGraph(rng, 3, 20, 0.5, 0.05)
	a, _ := Partition(adj, 3, Options{Seed: 15})
	b, _ := Partition(adj, 3, Options{Seed: 15})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestEdgeCut(t *testing.T) {
	adj := matrix.FromDense([][]float64{
		{0, 2, 1},
		{2, 0, 0},
		{1, 0, 0},
	})
	// Split {0,1} vs {2}: only edge (0,2) weight 1 crosses.
	if got := EdgeCut(adj, []int{0, 0, 1}); got != 1 {
		t.Fatalf("cut = %v, want 1", got)
	}
	if got := EdgeCut(adj, []int{0, 0, 0}); got != 0 {
		t.Fatalf("uncut = %v, want 0", got)
	}
}

func TestFMRefineImprovesCut(t *testing.T) {
	// Two triangles joined by one edge, split badly on purpose.
	b := matrix.NewBuilder(6, 6)
	add := func(u, v int, w float64) { b.Add(u, v, w); b.Add(v, u, w) }
	add(0, 1, 1)
	add(1, 2, 1)
	add(0, 2, 1)
	add(3, 4, 1)
	add(4, 5, 1)
	add(3, 5, 1)
	add(2, 3, 0.5)
	adj := b.Build()
	bad := []int{0, 1, 0, 1, 0, 1} // cut = 5.5... compute: edges crossing
	w := []float64{1, 1, 1, 1, 1, 1}
	opt := Options{}
	opt.fill()
	refined := fmRefine(adj, w, append([]int(nil), bad...), 0.5, opt)
	if EdgeCut(adj, refined) > EdgeCut(adj, bad) {
		t.Fatalf("FM worsened cut: %v -> %v", EdgeCut(adj, bad), EdgeCut(adj, refined))
	}
	if EdgeCut(adj, refined) > 0.5 {
		t.Fatalf("FM failed to find the natural split, cut %v", EdgeCut(adj, refined))
	}
}
