package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestSettleCleanProcess(t *testing.T) {
	b := Take()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	if err := b.Settle(2 * time.Second); err != nil {
		t.Fatalf("clean process reported a leak: %v", err)
	}
}

func TestSettleCatchesLeak(t *testing.T) {
	b := Take()
	stop := make(chan struct{})
	defer close(stop)
	go func() { <-stop }() // deliberately outlives the settle window
	err := b.Settle(200 * time.Millisecond)
	if err == nil {
		t.Fatal("Settle missed a parked goroutine")
	}
	if !strings.Contains(err.Error(), "above baseline") {
		t.Fatalf("unhelpful leak report: %v", err)
	}
}

func TestSettleWaitsForUnwind(t *testing.T) {
	// A goroutine that exits during the settle window is not a leak.
	b := Take()
	stop := make(chan struct{})
	go func() { <-stop }()
	go func() {
		time.Sleep(150 * time.Millisecond)
		close(stop)
	}()
	if err := b.Settle(5 * time.Second); err != nil {
		t.Fatalf("Settle failed before the goroutine could unwind: %v", err)
	}
}

func TestSignatureStripsAddresses(t *testing.T) {
	stanza := "goroutine 42 [chan receive]:\n" +
		"symcluster/internal/server.(*Pool).worker(0xc000100000)\n" +
		"\t/root/repo/internal/server/pool.go:91 +0x5c\n" +
		"created by symcluster/internal/server.NewPool in goroutine 1\n" +
		"\t/root/repo/internal/server/pool.go:86 +0xd1"
	sig, ok := signature(stanza)
	if !ok {
		t.Fatal("stanza filtered unexpectedly")
	}
	want := "symcluster/internal/server.(*Pool).worker <- symcluster/internal/server.NewPool"
	if sig != want {
		t.Fatalf("signature = %q, want %q", sig, want)
	}
}

func TestSignatureAllowlistsHarness(t *testing.T) {
	stanza := "goroutine 7 [select]:\n" +
		"net/http.(*persistConn).readLoop(0xc0001b2000)\n" +
		"\t/usr/local/go/src/net/http/transport.go:2205 +0x9a5\n" +
		"created by net/http.(*Transport).dialConn in goroutine 12\n" +
		"\t/usr/local/go/src/net/http/transport.go:1765 +0x16f1"
	if _, ok := signature(stanza); ok {
		t.Fatal("idle-pool goroutine not allowlisted")
	}
}
