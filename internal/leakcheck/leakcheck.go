// Package leakcheck detects goroutine leaks in end-to-end tests: take
// a Baseline before the code under test runs, then Settle afterwards
// and fail if goroutines above the baseline refuse to exit.
//
// The comparison is by stack signature (top frame plus creation site,
// addresses stripped), not by raw count, so an unrelated runtime
// goroutine starting mid-test cannot mask a real leak of a different
// shape. Goroutines owned by the runtime and the test harness — the
// testing framework, GC workers, signal handling, and net/http's
// pooled idle connections — are allowlisted: they come and go on their
// own schedule and are not leaks.
//
// Settle polls rather than asserting once: goroutines unwinding after
// a cancel need a moment to observe it, and failing before they do
// would make every guard flaky. The default window is five seconds —
// far beyond any legitimate unwind, short enough to not stall a suite.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// DefaultSettle is the settle window Guard uses: long enough for any
// legitimate post-cancel unwind, short enough to keep failing tests
// fast.
const DefaultSettle = 5 * time.Second

// allowlist marks goroutine stanzas that are never leaks: matched
// substrings anywhere in the stack dump.
var allowlist = []string{
	// The test harness itself.
	"testing.",
	// Runtime housekeeping workers.
	"runtime.gc",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.runfinq",
	"runtime.ReadTrace",
	// Signal delivery (installed once per process, never exits).
	"os/signal.",
	// net/http's idle connection pool: readLoop/writeLoop pairs linger
	// by design until the idle timeout and are reused across tests.
	"net/http.(*persistConn)",
	"net/http.(*Transport)",
	// This package's own snapshot machinery.
	"leakcheck.snapshot",
}

// Baseline is a goroutine census taken before the code under test.
type Baseline struct {
	counts map[string]int
}

// Take snapshots the current goroutines (allowlisted ones excluded).
func Take() *Baseline {
	return &Baseline{counts: snapshot()}
}

// Settle polls until every goroutine above the baseline has exited or
// the window elapses, then reports the survivors. A nil error means
// the process is back to its baseline shape.
func (b *Baseline) Settle(window time.Duration) error {
	deadline := time.Now().Add(window)
	var extra map[string]int
	for {
		extra = nil
		for sig, n := range snapshot() {
			if over := n - b.counts[sig]; over > 0 {
				if extra == nil {
					extra = make(map[string]int)
				}
				extra[sig] = over
			}
		}
		if len(extra) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	sigs := make([]string, 0, len(extra))
	total := 0
	for sig, n := range extra {
		sigs = append(sigs, fmt.Sprintf("  %dx %s", n, sig))
		total += n
	}
	sort.Strings(sigs)
	return fmt.Errorf("leakcheck: %d goroutine(s) above baseline after %v:\n%s",
		total, window, strings.Join(sigs, "\n"))
}

// TB is the sliver of testing.TB Guard needs; declared here so the
// package stays importable outside _test files (the soak harness links
// it into a non-test binary).
type TB interface {
	Helper()
	Cleanup(func())
	Error(args ...any)
}

// Guard is the one-line harness for tests: it takes a baseline now and
// registers a cleanup that fails the test if goroutines have not
// settled back within DefaultSettle. Register it before the code under
// test starts anything.
func Guard(t TB) {
	t.Helper()
	b := Take()
	t.Cleanup(func() {
		if err := b.Settle(DefaultSettle); err != nil {
			t.Error(err)
		}
	})
}

// snapshot counts live goroutines by signature, skipping allowlisted
// stanzas.
func snapshot() map[string]int {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	counts := make(map[string]int)
	for _, stanza := range strings.Split(string(buf), "\n\n") {
		if sig, ok := signature(stanza); ok {
			counts[sig]++
		}
	}
	return counts
}

// signature reduces one goroutine stanza to a stable identity: the top
// frame's function plus the creation site, with arguments and
// addresses stripped so two goroutines of the same shape compare
// equal. ok is false for allowlisted or malformed stanzas.
func signature(stanza string) (sig string, ok bool) {
	lines := strings.Split(stanza, "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "goroutine ") {
		return "", false
	}
	for _, allowed := range allowlist {
		if strings.Contains(stanza, allowed) {
			return "", false
		}
	}
	sig = strings.TrimSpace(lines[1])
	// Strip the trailing argument list only — the last '(' — so method
	// receivers like "(*Pool).worker" keep their parentheses.
	if i := strings.LastIndexByte(sig, '('); i > 0 {
		sig = sig[:i]
	}
	for _, l := range lines {
		if created, found := strings.CutPrefix(l, "created by "); found {
			if i := strings.Index(created, " in goroutine"); i > 0 {
				created = created[:i]
			}
			sig += " <- " + created
			break
		}
	}
	return sig, true
}
