// Package checkpoint carries kernel checkpoint sinks through contexts.
//
// Long-running iterative kernels (R-MCL flow iteration, random-walk
// power iteration) periodically hand their in-progress state — a
// serialized flow matrix or π vector plus the iteration counter — to a
// Sink installed in the request context. The serving layer persists
// those snapshots in the WAL-backed job store; when a job is replayed
// after a crash or a drain, the same sink feeds the last snapshot back
// through Restore and the kernel resumes mid-iteration instead of from
// scratch.
//
// The package intentionally knows nothing about jobs or storage: a Sink
// is any consumer of (kernel, iteration, blob) triples. Kernels that
// find no sink in their context run exactly as before — the hooks cost
// one nil check per iteration.
//
// Restore matching: a single job may invoke the same kernel several
// times (e.g. a random-walk symmetrization solves two stationary
// distributions). Sinks are expected to count Restore calls per kernel
// name and only return ok for the invocation whose saved sequence
// number matches, so a snapshot from solve #2 can never leak into a
// replayed solve #1.
package checkpoint

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
)

// Sink receives kernel snapshots and replays them on resume.
// Implementations must be safe for concurrent use by a single job's
// kernels (which run sequentially today, but nothing enforces that).
type Sink interface {
	// Interval is the checkpoint cadence in iterations; kernels save
	// every Interval iterations. Non-positive disables periodic saves
	// (kernels may still save on cancellation).
	Interval() int
	// Restore returns the snapshot for this invocation of kernel, if
	// one exists. ok reports whether iter/blob are valid. Each call
	// consumes one invocation slot for the kernel (see package doc).
	Restore(kernel string) (iter int, blob []byte, ok bool)
	// Save persists a snapshot taken after completing iteration iter
	// (i.e. a restore with this blob continues at iteration iter).
	Save(kernel string, iter int, blob []byte) error
}

type ctxKey struct{}

// With returns a context carrying sink.
func With(ctx context.Context, sink Sink) context.Context {
	return context.WithValue(ctx, ctxKey{}, sink)
}

// FromContext returns the sink installed in ctx, or nil.
func FromContext(ctx context.Context) Sink {
	s, _ := ctx.Value(ctxKey{}).(Sink)
	return s
}

// Vector codec: "VEC1" magic, u64 length, then float64 values, all
// little-endian. Used for the random-walk π vector.

var vecMagic = [4]byte{'V', 'E', 'C', '1'}

// EncodeVector serializes v in the VEC1 format.
func EncodeVector(v []float64) []byte {
	buf := make([]byte, 4+8+8*len(v))
	copy(buf, vecMagic[:])
	binary.LittleEndian.PutUint64(buf[4:], uint64(len(v)))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[12+8*i:], math.Float64bits(x))
	}
	return buf
}

// DecodeVector parses a VEC1 blob, verifying it holds exactly n values.
func DecodeVector(blob []byte, n int) ([]float64, error) {
	if len(blob) < 12 || [4]byte(blob[:4]) != vecMagic {
		return nil, fmt.Errorf("checkpoint: not a VEC1 blob")
	}
	m := binary.LittleEndian.Uint64(blob[4:])
	if m != uint64(n) {
		return nil, fmt.Errorf("checkpoint: vector length %d, want %d", m, n)
	}
	if uint64(len(blob)) != 12+8*m {
		return nil, fmt.Errorf("checkpoint: VEC1 blob truncated: %d bytes for %d values", len(blob), m)
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(blob[12+8*i:]))
	}
	return v, nil
}
