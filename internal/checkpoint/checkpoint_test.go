package checkpoint

import (
	"context"
	"math"
	"testing"
)

func TestVectorRoundTrip(t *testing.T) {
	v := []float64{0, 1.5, -2.25, math.Pi, math.SmallestNonzeroFloat64}
	blob := EncodeVector(v)
	got, err := DecodeVector(blob, len(v))
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("v[%d] = %v, want %v", i, got[i], v[i])
		}
	}
}

func TestDecodeVectorRejects(t *testing.T) {
	blob := EncodeVector([]float64{1, 2, 3})
	if _, err := DecodeVector(blob, 4); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := DecodeVector(blob[:len(blob)-1], 3); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if _, err := DecodeVector([]byte("BAD1xxxxxxxx"), 0); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := DecodeVector(nil, 0); err == nil {
		t.Fatal("empty blob accepted")
	}
}

type nopSink struct{}

func (nopSink) Interval() int                      { return 1 }
func (nopSink) Restore(string) (int, []byte, bool) { return 0, nil, false }
func (nopSink) Save(string, int, []byte) error     { return nil }

func TestContextCarriage(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("sink from empty context")
	}
	ctx := With(context.Background(), nopSink{})
	if FromContext(ctx) == nil {
		t.Fatal("installed sink not found")
	}
}
