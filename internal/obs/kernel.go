package obs

import (
	"context"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// Kernel instrumentation hooks. Each hook reads the context's metrics
// registry and returns immediately when none is installed, so the
// kernels call them unconditionally from iteration boundaries — the
// same boundaries that already poll ctx.Err() and faultinject.Fire.
// Metric names use the symcluster_ prefix (library-level kernels) as
// opposed to symclusterd_ (daemon-level serving metrics).
//
// To add a new kernel hook: pick the per-iteration quantities worth a
// histogram, add an ObserveXxx helper here with a shared bucket layout
// from metrics.go, and call it at the kernel's iteration boundary —
// never inside the innermost loops. See DESIGN.md §11.

// ObserveMCLIteration records one R-MCL iteration: the flow residual
// (mean per-column L1 change), the surviving flow nonzeros, and the
// entries killed by the prune threshold this iteration.
func ObserveMCLIteration(ctx context.Context, residual float64, flowNNZ, pruned int) {
	m := Meter(ctx)
	if m == nil {
		return
	}
	m.Histogram("symcluster_mcl_residual", "Per-iteration R-MCL flow residual (mean L1 column change).", ResidualBuckets).Observe(residual)
	m.Histogram("symcluster_mcl_flow_nnz", "Flow-matrix nonzeros after pruning, per R-MCL iteration.", SizeBuckets).Observe(float64(flowNNZ))
	m.Histogram("symcluster_mcl_pruned_entries", "Flow entries killed by the prune threshold, per R-MCL iteration.", SizeBuckets).Observe(float64(pruned))
}

// ObserveMCLRun records the iteration count of one completed R-MCL
// solve (one per hierarchy level under MLR-MCL).
func ObserveMCLRun(ctx context.Context, iterations int) {
	if m := Meter(ctx); m != nil {
		m.Histogram("symcluster_mcl_iterations", "R-MCL iterations per solve.", CountBuckets).Observe(float64(iterations))
	}
}

// ObserveWalkIteration records one stationary-distribution power
// iteration's L1 delta.
func ObserveWalkIteration(ctx context.Context, delta float64) {
	if m := Meter(ctx); m != nil {
		m.Histogram("symcluster_walk_power_delta", "Per-iteration L1 delta of the stationary-distribution power iteration.", ResidualBuckets).Observe(delta)
	}
}

// ObserveWalkRun records the iteration count of one power-iteration
// solve.
func ObserveWalkRun(ctx context.Context, iterations int) {
	if m := Meter(ctx); m != nil {
		m.Histogram("symcluster_walk_power_iterations", "Power iterations per stationary-distribution solve.", CountBuckets).Observe(float64(iterations))
	}
}

// ObserveCheckpoint records the serialized size of one kernel
// checkpoint snapshot, labeled by kernel ("mcl", "walk"), and charges
// it to the job's resource accounting.
func ObserveCheckpoint(ctx context.Context, kernel string, bytes int) {
	JobStatsFrom(ctx).AddCheckpointBytes(int64(bytes))
	if m := Meter(ctx); m != nil {
		m.Histogram("symcluster_checkpoint_bytes", "Serialized checkpoint snapshot size in bytes.", SizeBuckets, "kernel").Observe(float64(bytes), kernel)
	}
}

// ObserveLanczosStep records one Lanczos step's off-diagonal norm β,
// the convergence residual of the factorisation.
func ObserveLanczosStep(ctx context.Context, beta float64) {
	if m := Meter(ctx); m != nil {
		m.Histogram("symcluster_lanczos_residual", "Per-step Lanczos off-diagonal norm beta.", ResidualBuckets).Observe(beta)
	}
}

// ObserveLanczosRun records the basis size of one completed Lanczos
// factorisation.
func ObserveLanczosRun(ctx context.Context, basisSize int) {
	if m := Meter(ctx); m != nil {
		m.Histogram("symcluster_lanczos_basis_size", "Krylov basis size per Lanczos factorisation.", CountBuckets).Observe(float64(basisSize))
	}
}

// ObserveCoarsen records one completed coarsening hierarchy: its depth
// and the coarsest level's node count.
func ObserveCoarsen(ctx context.Context, levels, coarsestNodes int) {
	m := Meter(ctx)
	if m == nil {
		return
	}
	m.Histogram("symcluster_coarsen_levels", "Levels per coarsening hierarchy.", CountBuckets).Observe(float64(levels))
	m.Histogram("symcluster_coarsen_coarsest_nodes", "Coarsest-level node count per hierarchy.", SizeBuckets).Observe(float64(coarsestNodes))
}

// ObserveSymmetrize records one completed symmetrization: directed
// nonzeros in, undirected nonzeros out, and the product entries killed
// by the prune threshold (0 when no threshold was set), labeled by
// method.
func ObserveSymmetrize(ctx context.Context, method string, nnzIn, nnzOut int, pruned int64) {
	m := Meter(ctx)
	if m == nil {
		return
	}
	m.Histogram("symcluster_symmetrize_nnz_in", "Directed adjacency nonzeros entering symmetrization.", SizeBuckets, "method").Observe(float64(nnzIn), method)
	m.Histogram("symcluster_symmetrize_nnz_out", "Undirected nonzeros produced by symmetrization.", SizeBuckets, "method").Observe(float64(nnzOut), method)
	m.Histogram("symcluster_symmetrize_pruned_entries", "Product entries killed by the prune threshold per symmetrization.", SizeBuckets, "method").Observe(float64(pruned), method)
}

// ObserveCSRWrite records the on-disk size of one binary CSR file
// written by the csr package (tmp + fsync + rename completed). When a
// job's accounting is installed the bytes count as spill (out-of-core
// intermediates are CSR files written on the job's behalf).
func ObserveCSRWrite(ctx context.Context, bytes int64) {
	JobStatsFrom(ctx).AddSpillBytes(bytes)
	if m := Meter(ctx); m != nil {
		m.Histogram("symcluster_csr_write_bytes", "Binary CSR file bytes written per csr.Writer.Close.", SizeBuckets).Observe(float64(bytes))
	}
}

// ObserveCSRMap records the size of one binary CSR file opened for
// (zero-copy or fallback) reading.
func ObserveCSRMap(ctx context.Context, bytes int64) {
	if m := Meter(ctx); m != nil {
		m.Histogram("symcluster_csr_mapped_bytes", "Binary CSR file bytes opened per csr.Open.", SizeBuckets).Observe(float64(bytes))
	}
}

// ObserveCSRIngest records one finished streaming ingestion: how many
// sorted runs spilled to disk and how many bytes flowed through the
// k-way merge (charged to the job's spill accounting when installed).
func ObserveCSRIngest(ctx context.Context, spillRuns, mergedBytes int64) {
	if spillRuns > 0 {
		JobStatsFrom(ctx).AddSpillBytes(mergedBytes)
	}
	m := Meter(ctx)
	if m == nil {
		return
	}
	m.Histogram("symcluster_csr_spill_runs", "Spill runs written per streaming CSR ingestion.", CountBuckets).Observe(float64(spillRuns))
	m.Histogram("symcluster_csr_merged_bytes", "Bytes streamed through the ingest k-way merge.", SizeBuckets).Observe(float64(mergedBytes))
}

// PruneStats accumulates how many candidate entries the sparse-product
// kernels dropped below the prune threshold. The matrix kernels add
// their per-call totals when a collector is installed in the context;
// core.SymmetrizeCtx installs one and folds the total into metrics and
// the symmetrize span.
type PruneStats struct{ killed atomic.Int64 }

// Add records n dropped entries.
func (p *PruneStats) Add(n int64) {
	if p != nil && n > 0 {
		p.killed.Add(n)
	}
}

// Killed returns the running total.
func (p *PruneStats) Killed() int64 {
	if p == nil {
		return 0
	}
	return p.killed.Load()
}

// WithPruneStats installs a fresh collector and returns it.
func WithPruneStats(ctx context.Context) (context.Context, *PruneStats) {
	ps := &PruneStats{}
	return context.WithValue(ctx, pruneKey, ps), ps
}

// PruneStatsFrom returns the installed collector, or nil (every method
// of which is a no-op).
func PruneStatsFrom(ctx context.Context) *PruneStats {
	ps, _ := ctx.Value(pruneKey).(*PruneStats)
	return ps
}

// DebugMux returns the profiling handler tree served on the daemon's
// -debug-addr listener (and usable under httptest by the e2e tests):
// the standard net/http/pprof endpoints under /debug/pprof/.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
