// Package obs is the observability substrate for the whole codebase:
// structured logging on log/slog, context-propagated span tracing with
// a ring-buffered JSONL sink, fixed-bucket histogram metrics with a
// Prometheus text exposition, and pprof wiring for the binaries.
//
// Everything is carried through context.Context so the kernels stay
// decoupled from the daemon: a request installs a logger, a metrics
// registry and a root span; the kernels underneath call the cheap
// hooks in kernel.go. When nothing is installed — the library default,
// and the state every benchmark runs in — each hook is a single
// context value lookup followed by a nil check, so instrumentation
// costs nothing measurable on the hot paths.
//
// The package depends only on the standard library and must never
// import another symcluster package: internal/matrix and the kernel
// packages import it from their innermost loops.
package obs

import (
	"context"
	"io"
	"log/slog"
	"strings"
)

// Version is the build version, injected by the Makefile via
//
//	-ldflags "-X symcluster/internal/obs.Version=$(VERSION)"
//
// It appears in the symclusterd_build_info metric, the /healthz body,
// and the -version output of every binary.
var Version = "dev"

// ctxKey separates the obs context slots from everyone else's.
type ctxKey int

const (
	loggerKey ctxKey = iota
	meterKey
	spanKey
	pruneKey
	seedKey
	jobStatsKey
)

// NewLogger builds a slog.Logger writing to w. format selects the
// handler: "json" (the daemon default) or anything else for the
// human-readable text handler (the CLI default).
func NewLogger(w io.Writer, format string, level slog.Leveler) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if strings.EqualFold(format, "json") {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLevel maps a flag value ("debug", "info", "warn", "error",
// case-insensitive) to its slog level, defaulting to Info for anything
// unrecognised.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// WithLogger installs l as the context logger returned by Log.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// Log returns the context logger, or slog.Default() when none was
// installed, so call sites never need a nil check.
func Log(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok {
		return l
	}
	return slog.Default()
}

// WithMeter installs the metrics registry the kernel hooks record into.
func WithMeter(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, meterKey, r)
}

// Meter returns the context metrics registry, or nil when none was
// installed (hooks become no-ops).
func Meter(ctx context.Context) *Registry {
	r, _ := ctx.Value(meterKey).(*Registry)
	return r
}
