package obs

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// StageStats is the accounting for one named pipeline stage of a job.
// CPU time is process CPU (user+system via getrusage) and the alloc
// delta is the runtime's cumulative TotalAlloc across the stage, so
// both are approximate attributions when jobs run concurrently — good
// enough to answer "where did this job's time go".
type StageStats struct {
	WallMillis float64 `json:"wall_millis"`
	CPUMillis  float64 `json:"cpu_millis"`
	AllocBytes int64   `json:"alloc_bytes"`
}

// JobStatsSnapshot is the wire (and WAL) form of one job's resource
// accounting: embedded in ClusterResponse.Stats, served at
// GET /v1/jobs/{id}/stats, and persisted in the job's WAL record.
type JobStatsSnapshot struct {
	QueueWaitMillis      float64               `json:"queue_wait_millis"`
	Stages               map[string]StageStats `json:"stages,omitempty"`
	CacheHits            int64                 `json:"cache_hits"`
	CacheMisses          int64                 `json:"cache_misses"`
	SpillBytes           int64                 `json:"spill_bytes,omitempty"`
	CheckpointBytes      int64                 `json:"checkpoint_bytes,omitempty"`
	OOCResidentPeakBytes int64                 `json:"ooc_resident_peak_bytes,omitempty"`
}

// JobStats accumulates one job's resource accounting. It rides the
// context through pool, executor, and kernels the same way PruneStats
// does: the daemon (or CLI) installs one with WithJobStats, the layers
// underneath record into it via the nil-safe methods, and the owner
// reads it back with Snapshot when the job finishes. Safe for
// concurrent use.
type JobStats struct {
	mu   sync.Mutex
	snap JobStatsSnapshot
}

// NewJobStats returns an empty accumulator.
func NewJobStats() *JobStats { return &JobStats{} }

// WithJobStats installs js as the context's job accumulator.
func WithJobStats(ctx context.Context, js *JobStats) context.Context {
	return context.WithValue(ctx, jobStatsKey, js)
}

// JobStatsFrom returns the installed accumulator, or nil (every method
// of which is a no-op), so call sites never branch.
func JobStatsFrom(ctx context.Context) *JobStats {
	js, _ := ctx.Value(jobStatsKey).(*JobStats)
	return js
}

// SetQueueWait records how long the job sat in the worker-pool queue
// before a worker picked it up.
func (j *JobStats) SetQueueWait(d time.Duration) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.snap.QueueWaitMillis = float64(d) / float64(time.Millisecond)
	j.mu.Unlock()
}

// AddStage folds one stage execution's wall, CPU, and allocation
// deltas into the named stage (accumulating across retries/resumes).
func (j *JobStats) AddStage(name string, wall, cpu time.Duration, allocBytes int64) {
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.snap.Stages == nil {
		j.snap.Stages = make(map[string]StageStats)
	}
	st := j.snap.Stages[name]
	st.WallMillis += float64(wall) / float64(time.Millisecond)
	st.CPUMillis += float64(cpu) / float64(time.Millisecond)
	if allocBytes > 0 {
		st.AllocBytes += allocBytes
	}
	j.snap.Stages[name] = st
	j.mu.Unlock()
}

// AddCache records one symmetrization-cache lookup.
func (j *JobStats) AddCache(hit bool) {
	if j == nil {
		return
	}
	j.mu.Lock()
	if hit {
		j.snap.CacheHits++
	} else {
		j.snap.CacheMisses++
	}
	j.mu.Unlock()
}

// AddSpillBytes records bytes written to disk scratch (external-sort
// runs, out-of-core intermediates) on the job's behalf.
func (j *JobStats) AddSpillBytes(n int64) {
	if j == nil || n <= 0 {
		return
	}
	j.mu.Lock()
	j.snap.SpillBytes += n
	j.mu.Unlock()
}

// AddCheckpointBytes records one checkpoint snapshot's serialized size.
func (j *JobStats) AddCheckpointBytes(n int64) {
	if j == nil || n <= 0 {
		return
	}
	j.mu.Lock()
	j.snap.CheckpointBytes += n
	j.mu.Unlock()
}

// ObserveResident tracks the high-water mark of out-of-core resident
// bytes charged against the job's budget.
func (j *JobStats) ObserveResident(n int64) {
	if j == nil {
		return
	}
	j.mu.Lock()
	if n > j.snap.OOCResidentPeakBytes {
		j.snap.OOCResidentPeakBytes = n
	}
	j.mu.Unlock()
}

// Snapshot returns a deep copy of the accumulated stats, or nil on a
// nil accumulator.
func (j *JobStats) Snapshot() *JobStatsSnapshot {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := j.snap
	if j.snap.Stages != nil {
		out.Stages = make(map[string]StageStats, len(j.snap.Stages))
		for k, v := range j.snap.Stages {
			out.Stages[k] = v
		}
	}
	return &out
}

// BeginStage starts accounting one named stage against the context's
// JobStats and returns the closure that folds the wall/CPU/alloc
// deltas in. With no accumulator installed both halves are no-ops, so
// the pipeline calls it unconditionally:
//
//	done := obs.BeginStage(ctx, "symmetrize")
//	… run the stage …
//	done()
func BeginStage(ctx context.Context, name string) func() {
	js := JobStatsFrom(ctx)
	if js == nil {
		return func() {}
	}
	start := time.Now()
	cpu0 := ProcessCPUTime()
	alloc0 := totalAllocBytes()
	return func() {
		js.AddStage(name, time.Since(start), ProcessCPUTime()-cpu0, totalAllocBytes()-alloc0)
	}
}

// totalAllocBytes reads the runtime's cumulative allocation counter.
func totalAllocBytes() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.TotalAlloc)
}
