package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	// Trace ids contain dashes ("t-<base>-<seq>"); wire span ids never
	// do, so the parse must split from the right.
	traceID := NewTraceID()
	if !strings.HasPrefix(traceID, "t-") {
		t.Fatalf("trace id %q", traceID)
	}
	v := FormatTraceparent(traceID, "abc123.4")
	gotTrace, gotSpan, ok := ParseTraceparent(v)
	if !ok || gotTrace != traceID || gotSpan != "abc123.4" {
		t.Fatalf("ParseTraceparent(%q) = %q, %q, %v", v, gotTrace, gotSpan, ok)
	}

	for _, bad := range []string{
		"",
		"00",
		"01-t-aa-bb-span-01",   // wrong version
		"00-t-aa-bb-span-0100", // flags must be two chars
		"00--span-01",          // empty trace id
		"garbage",
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("ParseTraceparent(%q) accepted malformed input", bad)
		}
	}
}

func TestNewTraceFromJoinsSeed(t *testing.T) {
	seed := TraceSeed{TraceID: "t-entry-1", ParentSpanID: "seg0.1", LinkTraceID: "t-dead-7"}
	ctx := WithTraceSeed(context.Background(), seed)

	tr := NewTraceFrom(ctx)
	if tr.ID() != seed.TraceID {
		t.Fatalf("joined trace id %q, want %q", tr.ID(), seed.TraceID)
	}
	sctx, root := tr.StartRoot(ctx, "request")
	_, span := StartSpan(sctx, "stage")
	span.End()
	root.End()

	tree := tr.Tree()
	if tree.TraceID != seed.TraceID {
		t.Fatalf("root TraceID %q, want %q", tree.TraceID, seed.TraceID)
	}
	if tree.ParentSpanID != seed.ParentSpanID {
		t.Fatalf("root ParentSpanID %q, want remote parent %q", tree.ParentSpanID, seed.ParentSpanID)
	}
	if got := tree.Attrs["link_trace_id"]; got != seed.LinkTraceID {
		t.Fatalf("root link_trace_id attr = %v, want %q", got, seed.LinkTraceID)
	}

	// No seed installed: identical to NewTrace — fresh id, no remote
	// parent, no link.
	fresh := NewTraceFrom(context.Background())
	if fresh.ID() == seed.TraceID || fresh.ID() == "" {
		t.Fatalf("unseeded trace id %q", fresh.ID())
	}
	_, r2 := fresh.StartRoot(context.Background(), "request")
	r2.End()
	if tree2 := fresh.Tree(); tree2.ParentSpanID != "" || tree2.Attrs["link_trace_id"] != nil {
		t.Fatalf("unseeded tree carries propagation state: %+v", tree2)
	}
}

// TestMergeSegmentsStitchesCrossNodeTrace simulates the proxy hop: the
// entry node's segment holds the "proxy" span, the owner joins via the
// seed carrying that span's wire id, and MergeSegments reattaches the
// owner's segment beneath it.
func TestMergeSegmentsStitchesCrossNodeTrace(t *testing.T) {
	entry := NewTrace()
	ectx, proxy := entry.StartRoot(context.Background(), "proxy")
	traceID, parentSpan, ok := SpanContext(ectx)
	if !ok || traceID != entry.ID() {
		t.Fatalf("SpanContext = %q, %q, %v", traceID, parentSpan, ok)
	}
	proxy.End()

	// The owner parses the traceparent into a seed and joins.
	ownerCtx := WithTraceSeed(context.Background(), TraceSeed{TraceID: traceID, ParentSpanID: parentSpan})
	owner := NewTraceFrom(ownerCtx)
	octx, req := owner.StartRoot(ownerCtx, "request")
	_, stage := StartSpan(octx, "cluster")
	stage.End()
	req.End()

	merged := MergeSegments([]*SpanNode{owner.Tree(), entry.Tree()})
	if merged.Name != "proxy" {
		t.Fatalf("merged root %q, want the entry segment's proxy span", merged.Name)
	}
	if len(merged.Children) != 1 || merged.Children[0].Name != "request" {
		t.Fatalf("owner segment not nested under proxy: %+v", merged)
	}
	if merged.Children[0].TraceID != merged.TraceID {
		t.Fatalf("stitched tree spans two trace ids: %q vs %q", merged.Children[0].TraceID, merged.TraceID)
	}

	// A segment whose parent span is gone (evicted ring, dead peer)
	// still surfaces: attached under the root, ParentSpanID visible.
	orphanT := NewTraceFrom(WithTraceSeed(context.Background(),
		TraceSeed{TraceID: traceID, ParentSpanID: "gone.99"}))
	_, o := orphanT.StartRoot(context.Background(), "orphan")
	o.End()
	merged = MergeSegments([]*SpanNode{entry.Tree(), orphanT.Tree()})
	var found *SpanNode
	for _, c := range merged.Children {
		if c.Name == "orphan" {
			found = c
		}
	}
	if found == nil || found.ParentSpanID != "gone.99" {
		t.Fatalf("orphan segment lost: %+v", merged)
	}

	if MergeSegments(nil) != nil {
		t.Fatal("MergeSegments(nil) != nil")
	}
	single := entry.Tree()
	if MergeSegments([]*SpanNode{nil, single}) != single {
		t.Fatal("single segment must be returned as-is")
	}
}

func TestTraceSinkByteCap(t *testing.T) {
	sink := NewTraceSink(nil, 100)
	export := func(name string) {
		tr := NewTrace()
		_, root := tr.StartRoot(context.Background(), name, A("pad", strings.Repeat("x", 256)))
		root.End()
		sink.Export(tr)
	}
	for i := 0; i < 8; i++ {
		export("t")
	}
	if got := sink.RingBytes(); got <= 0 {
		t.Fatalf("RingBytes = %d after 8 exports", got)
	}
	if n := len(sink.Recent()); n != 8 {
		t.Fatalf("retained %d traces, want 8 (count cap 100)", n)
	}

	// Shrinking the byte cap evicts oldest-first down to the cap — but
	// never below one retained trace.
	sink.SetMaxBytes(1)
	if n := len(sink.Recent()); n != 1 {
		t.Fatalf("retained %d traces after 1-byte cap, want the newest only", n)
	}
	export("after")
	recent := sink.Recent()
	if len(recent) != 1 || recent[0].Name != "after" {
		t.Fatalf("ring after export under tiny cap: %+v", recent)
	}
	if sink.Exported() != 9 {
		t.Fatalf("Exported = %d, want 9 (eviction does not undo the count)", sink.Exported())
	}
}

func TestTraceSinkByTraceID(t *testing.T) {
	sink := NewTraceSink(nil, 10)
	tr := NewTrace()
	_, root := tr.StartRoot(context.Background(), "mine")
	root.End()
	sink.Export(tr)
	other := NewTrace()
	_, root2 := other.StartRoot(context.Background(), "other")
	root2.End()
	sink.Export(other)

	segs := sink.ByTraceID(tr.ID())
	if len(segs) != 1 || segs[0].Name != "mine" {
		t.Fatalf("ByTraceID(%q) = %+v", tr.ID(), segs)
	}
	if segs := sink.ByTraceID("t-nope"); len(segs) != 0 {
		t.Fatalf("ByTraceID miss returned %+v", segs)
	}
}

func TestJobStatsNilSafety(t *testing.T) {
	var js *JobStats
	js.SetQueueWait(time.Second)
	js.AddStage("x", time.Second, time.Second, 1)
	js.AddCache(true)
	js.AddSpillBytes(1)
	js.AddCheckpointBytes(1)
	js.ObserveResident(1)
	if js.Snapshot() != nil {
		t.Fatal("nil JobStats must snapshot to nil")
	}
	// A context with no accumulator yields nil and a no-op stage.
	if JobStatsFrom(context.Background()) != nil {
		t.Fatal("empty context must carry no JobStats")
	}
	BeginStage(context.Background(), "x")()
}

func TestJobStatsAccumulation(t *testing.T) {
	js := NewJobStats()
	js.SetQueueWait(1500 * time.Microsecond)
	js.AddStage("cluster", 10*time.Millisecond, 4*time.Millisecond, 100)
	js.AddStage("cluster", 10*time.Millisecond, 2*time.Millisecond, 50) // resume accumulates
	js.AddStage("cluster", 0, 0, -5)                                    // negative alloc deltas are noise, dropped
	js.AddCache(true)
	js.AddCache(false)
	js.AddSpillBytes(64)
	js.AddSpillBytes(-1)
	js.AddCheckpointBytes(32)
	js.ObserveResident(100)
	js.ObserveResident(40) // below the high-water mark

	s := js.Snapshot()
	if s.QueueWaitMillis != 1.5 {
		t.Fatalf("QueueWaitMillis = %v", s.QueueWaitMillis)
	}
	cl := s.Stages["cluster"]
	if cl.WallMillis != 20 || cl.CPUMillis != 6 || cl.AllocBytes != 150 {
		t.Fatalf("cluster stage = %+v", cl)
	}
	if s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("cache = %d/%d", s.CacheHits, s.CacheMisses)
	}
	if s.SpillBytes != 64 || s.CheckpointBytes != 32 || s.OOCResidentPeakBytes != 100 {
		t.Fatalf("snapshot = %+v", s)
	}

	// Snapshot is a deep copy: mutating the accumulator afterwards must
	// not reach through.
	js.AddStage("cluster", time.Millisecond, 0, 0)
	if s.Stages["cluster"].WallMillis != 20 {
		t.Fatal("snapshot aliases the live stage map")
	}
}

func TestBeginStageRecordsDeltas(t *testing.T) {
	js := NewJobStats()
	ctx := WithJobStats(context.Background(), js)
	done := BeginStage(ctx, "symmetrize")
	// Burn a little wall clock and allocation so the deltas are
	// observable.
	buf := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		buf = append(buf, make([]byte, 4096))
	}
	_ = buf
	time.Sleep(2 * time.Millisecond)
	done()

	s := js.Snapshot()
	st, ok := s.Stages["symmetrize"]
	if !ok {
		t.Fatalf("no symmetrize stage: %+v", s)
	}
	if st.WallMillis <= 0 {
		t.Fatalf("WallMillis = %v", st.WallMillis)
	}
	if st.AllocBytes <= 0 {
		t.Fatalf("AllocBytes = %v", st.AllocBytes)
	}
}

func TestRuntimeMetricsExposition(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r, "symclusterd")
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, name := range []string{
		"symclusterd_runtime_goroutines",
		"symclusterd_runtime_heap_inuse_bytes",
		"symclusterd_runtime_gc_pause_seconds_total",
		"symclusterd_runtime_open_fds",
	} {
		if !strings.Contains(out, name+" ") {
			t.Fatalf("no %s sample in exposition:\n%s", name, out)
		}
	}
}
