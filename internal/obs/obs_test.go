package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"testing"
)

func TestStartSpanWithoutTraceIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "orphan", A("k", 1))
	if sp != nil {
		t.Fatalf("StartSpan without a trace returned a span")
	}
	if ctx2 != ctx {
		t.Fatalf("StartSpan without a trace changed the context")
	}
	// All methods must be nil-safe.
	sp.SetAttr("x", 1)
	sp.End()
	sp.EndErr(errors.New("boom"))
}

func TestSpanTreeNestingAndAttrs(t *testing.T) {
	tr := NewTrace()
	ctx, root := tr.StartRoot(context.Background(), "request", A("graph", "g-1"))
	ctx1, symSp := StartSpan(ctx, "symmetrize", A("name", "dd"))
	_, kSp := StartSpan(ctx1, "core.symmetrize")
	kSp.SetAttr("nnz_out", 42)
	kSp.End()
	symSp.End()
	_, cluSp := StartSpan(ctx, "cluster", A("name", "mcl"))
	cluSp.EndErr(errors.New("injected"))
	root.End()

	tree := tr.Tree()
	if tree == nil || tree.Name != "request" {
		t.Fatalf("root = %+v", tree)
	}
	if tree.TraceID != tr.ID() || tree.TraceID == "" {
		t.Fatalf("root trace id %q, want %q", tree.TraceID, tr.ID())
	}
	if len(tree.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(tree.Children))
	}
	sym, clu := tree.Children[0], tree.Children[1]
	if sym.Name != "symmetrize" || clu.Name != "cluster" {
		t.Fatalf("children = %q, %q", sym.Name, clu.Name)
	}
	if len(sym.Children) != 1 || sym.Children[0].Name != "core.symmetrize" {
		t.Fatalf("symmetrize children = %+v", sym.Children)
	}
	if got := sym.Children[0].Attrs["nnz_out"]; got != 42 {
		t.Fatalf("nnz_out attr = %v", got)
	}
	if clu.Error != "injected" {
		t.Fatalf("cluster span error = %q, want injected", clu.Error)
	}
	// Timestamps: every span ends after it starts, and children nest
	// inside their parent.
	var check func(n *SpanNode)
	check = func(n *SpanNode) {
		if n.EndUnixNano < n.StartUnixNano {
			t.Fatalf("span %s ends before it starts", n.Name)
		}
		for _, c := range n.Children {
			if c.StartUnixNano < n.StartUnixNano || c.EndUnixNano > n.EndUnixNano {
				t.Fatalf("span %s escapes parent %s", c.Name, n.Name)
			}
			check(c)
		}
	}
	check(tree)
}

func TestStartRootTwicePanics(t *testing.T) {
	tr := NewTrace()
	tr.StartRoot(context.Background(), "a")
	defer func() {
		if recover() == nil {
			t.Fatalf("second StartRoot did not panic")
		}
	}()
	tr.StartRoot(context.Background(), "b")
}

func TestTraceSinkRingAndJSONL(t *testing.T) {
	var buf bytes.Buffer
	sink := NewTraceSink(&buf, 2)
	for i := 0; i < 3; i++ {
		tr := NewTrace()
		_, root := tr.StartRoot(context.Background(), "run")
		root.SetAttr("i", i)
		root.End()
		sink.Export(tr)
	}
	if got := sink.Exported(); got != 3 {
		t.Fatalf("Exported = %d, want 3", got)
	}
	recent := sink.Recent()
	if len(recent) != 2 {
		t.Fatalf("ring holds %d, want 2", len(recent))
	}
	// Oldest-first: entries 1 and 2 survive the ring of size 2.
	if recent[0].Attrs["i"] != 1 || recent[1].Attrs["i"] != 2 {
		t.Fatalf("ring order = %v, %v", recent[0].Attrs["i"], recent[1].Attrs["i"])
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL sink wrote %d lines, want 3", len(lines))
	}
	for _, l := range lines {
		var node SpanNode
		if err := json.Unmarshal([]byte(l), &node); err != nil {
			t.Fatalf("line %q: %v", l, err)
		}
		if node.Name != "run" {
			t.Fatalf("line root name = %q", node.Name)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help text", []float64{0.1, 1, 10}, "stage")
	h.Observe(0.05, "a")
	h.Observe(0.5, "a")
	h.Observe(100, "a")
	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP test_seconds help text",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{stage="a",le="0.1"} 1`,
		`test_seconds_bucket{stage="a",le="1"} 2`,
		`test_seconds_bucket{stage="a",le="10"} 2`,
		`test_seconds_bucket{stage="a",le="+Inf"} 3`,
		`test_seconds_sum{stage="a"} 100.55`,
		`test_seconds_count{stage="a"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterGaugeFuncExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests", "route", "code").Inc("/v1/x", "200")
	r.Gauge("depth", "queue depth").Set(7)
	r.Func("live_total", "live", TypeCounter, func() float64 { return 3 })
	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		`reqs_total{route="/v1/x",code="200"} 1`,
		"# TYPE depth gauge",
		"depth 7",
		"# TYPE live_total counter",
		"live_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", "v").Inc("a\"b\\c\nd")
	var buf bytes.Buffer
	r.WriteText(&buf)
	want := `esc_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped label missing %q:\n%s", want, buf.String())
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering counter as gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestRegistryGetOrCreateIsIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("y_total", "", "l").Inc("v")
	r.Counter("y_total", "", "l").Inc("v")
	if got := r.Counter("y_total", "", "l").Value("v"); got != 2 {
		t.Fatalf("value = %v, want 2 (families not shared)", got)
	}
}

func TestKernelHooksNoopWithoutMeter(t *testing.T) {
	ctx := context.Background()
	// Must not panic or allocate registries.
	ObserveMCLIteration(ctx, 0.1, 10, 2)
	ObserveMCLRun(ctx, 5)
	ObserveWalkIteration(ctx, 1e-6)
	ObserveWalkRun(ctx, 30)
	ObserveLanczosStep(ctx, 0.5)
	ObserveLanczosRun(ctx, 40)
	ObserveCoarsen(ctx, 3, 900)
	ObserveSymmetrize(ctx, "dd", 100, 200, 5)
}

func TestKernelHooksRecord(t *testing.T) {
	r := NewRegistry()
	ctx := WithMeter(context.Background(), r)
	ObserveMCLIteration(ctx, 0.1, 10, 2)
	ObserveSymmetrize(ctx, "dd", 100, 200, 5)
	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"symcluster_mcl_residual_count 1",
		`symcluster_symmetrize_nnz_out_count{method="dd"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPruneStats(t *testing.T) {
	ctx, ps := WithPruneStats(context.Background())
	PruneStatsFrom(ctx).Add(3)
	PruneStatsFrom(ctx).Add(0) // no-op
	if got := ps.Killed(); got != 3 {
		t.Fatalf("Killed = %d, want 3", got)
	}
	if PruneStatsFrom(context.Background()) != nil {
		t.Fatalf("PruneStatsFrom on empty ctx != nil")
	}
	var nilPS *PruneStats
	nilPS.Add(5) // nil-safe
	if nilPS.Killed() != 0 {
		t.Fatalf("nil PruneStats.Killed != 0")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, "json", slog.LevelInfo).Info("hello", "k", "v")
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("json handler output not JSON: %v: %s", err, buf.String())
	}
	if doc["msg"] != "hello" || doc["k"] != "v" {
		t.Fatalf("json log doc = %v", doc)
	}
	buf.Reset()
	NewLogger(&buf, "text", slog.LevelInfo).Info("hello", "k", "v")
	if !strings.Contains(buf.String(), "msg=hello") {
		t.Fatalf("text handler output = %q", buf.String())
	}
	buf.Reset()
	NewLogger(&buf, "text", slog.LevelInfo).Debug("quiet")
	if buf.Len() != 0 {
		t.Fatalf("debug line emitted at info level: %q", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
		"bogus": slog.LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Fatalf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestLogFallsBackToDefault(t *testing.T) {
	if Log(context.Background()) == nil {
		t.Fatalf("Log on empty ctx returned nil")
	}
	l := slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil))
	if Log(WithLogger(context.Background(), l)) != l {
		t.Fatalf("Log did not return installed logger")
	}
}
