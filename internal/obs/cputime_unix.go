//go:build unix

package obs

import (
	"syscall"
	"time"
)

// ProcessCPUTime returns the process's cumulative CPU time
// (user + system) via getrusage. It backs the per-stage CPU column of
// JobStats; on platforms without getrusage it reports 0 and the column
// stays empty rather than failing.
func ProcessCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
