package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values must be
// JSON-marshalable; the wire format renders them under "attrs".
type Attr struct {
	Key   string
	Value any
}

// A builds an Attr (shorthand for span call sites).
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// traceSeq numbers traces within the process; combined with the
// process start time it makes trace ids unique across restarts.
var (
	traceSeq  atomic.Uint64
	traceBase = time.Now().UnixNano()
)

// Trace collects the spans of one logical operation (an HTTP request,
// a CLI run, an async job). Create with NewTrace, begin the root span
// with StartRoot, and read the finished tree with Tree. A Trace is
// safe for concurrent use by the spans it owns.
//
// A Trace is one *segment* of a possibly distributed trace: when a
// request hops to a peer node, the receiver joins the same trace id via
// NewTraceFrom, and each node exports its own segment. Span ids are
// namespaced by a process-unique segment prefix so segments produced
// independently on different nodes never collide and can be stitched
// back into one tree with MergeSegments.
type Trace struct {
	id  string
	seg string // process-unique wire-id prefix for this segment's spans

	// remoteParent is the wire span id of the parent span on the sending
	// node when this segment was joined from a TraceSeed; it surfaces as
	// the root SpanNode's ParentSpanID so MergeSegments can reattach it.
	remoteParent string
	// linkTrace is the trace id of a causally-linked but separate trace
	// (an adopted job records the dead owner's trace here); it surfaces
	// as a link_trace_id attribute on the root span.
	linkTrace string

	mu     sync.Mutex
	nextID uint64
	spans  []*Span
}

// NewTraceID returns a fresh process-unique trace id ("t-…"). Exposed
// so the daemon can mint the id of an async job's trace before the job
// runs and journal it alongside the job record.
func NewTraceID() string {
	return fmt.Sprintf("t-%012x-%06x", traceBase&0xffffffffffff, traceSeq.Add(1))
}

// NewTrace returns an empty trace with a process-unique id.
func NewTrace() *Trace {
	return &Trace{
		id:  NewTraceID(),
		seg: fmt.Sprintf("%012x.%06x", traceBase&0xffffffffffff, traceSeq.Add(1)),
	}
}

// TraceSeed carries the cross-node joining state of a distributed
// trace: the trace id to continue, the wire span id of the remote
// parent to nest beneath, and optionally a linked trace id (the
// originating trace of a crash-adopted job).
type TraceSeed struct {
	TraceID      string
	ParentSpanID string
	LinkTraceID  string
}

// WithTraceSeed installs seed so a later NewTraceFrom joins it.
func WithTraceSeed(ctx context.Context, seed TraceSeed) context.Context {
	return context.WithValue(ctx, seedKey, seed)
}

// TraceSeedFrom returns the installed seed, if any.
func TraceSeedFrom(ctx context.Context) (TraceSeed, bool) {
	seed, ok := ctx.Value(seedKey).(TraceSeed)
	return seed, ok
}

// NewTraceFrom returns a new trace segment joined to the context's
// TraceSeed: it continues the seeded trace id, records the remote
// parent span so the segment can be stitched beneath it, and carries
// the linked trace id onto the root span. With no seed installed it is
// identical to NewTrace.
func NewTraceFrom(ctx context.Context) *Trace {
	t := NewTrace()
	if seed, ok := TraceSeedFrom(ctx); ok {
		if seed.TraceID != "" {
			t.id = seed.TraceID
		}
		t.remoteParent = seed.ParentSpanID
		t.linkTrace = seed.LinkTraceID
	}
	return t
}

// ID returns the trace id ("t-…").
func (t *Trace) ID() string { return t.id }

// wireID renders a span's globally-unique wire id.
func (t *Trace) wireID(spanID uint64) string {
	return t.seg + "." + strconv.FormatUint(spanID, 16)
}

// SpanContext returns the trace id and wire span id of the context's
// current span, for injecting into an outbound request header. ok is
// false when no span is active.
func SpanContext(ctx context.Context) (traceID, spanID string, ok bool) {
	s, _ := ctx.Value(spanKey).(*Span)
	if s == nil {
		return "", "", false
	}
	return s.t.id, s.t.wireID(s.id), true
}

// TraceparentHeader is the header carrying trace propagation state on
// forwarded and internal peer requests, in a W3C-traceparent-style
// format (see FormatTraceparent). Only internal/cluster's retrying
// client may set it; the server middleware parses it.
const TraceparentHeader = "Traceparent"

// FormatTraceparent renders the propagation header value:
//
//	00-<trace id>-<wire span id>-01
//
// The trace id may itself contain dashes; the wire span id never does,
// so ParseTraceparent splits unambiguously from the right.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent parses a FormatTraceparent value. ok is false for
// anything malformed (wrong version, missing fields), in which case the
// request simply starts a fresh trace.
func ParseTraceparent(v string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) < 4 || parts[0] != "00" || len(parts[len(parts)-1]) != 2 {
		return "", "", false
	}
	spanID = parts[len(parts)-2]
	traceID = strings.Join(parts[1:len(parts)-2], "-")
	if traceID == "" || spanID == "" {
		return "", "", false
	}
	return traceID, spanID, true
}

// start allocates and records a new span. Spans are appended at start
// time, so Tree's sibling order is span creation order.
func (t *Trace) start(name string, parent uint64, attrs []Attr) *Span {
	t.mu.Lock()
	t.nextID++
	s := &Span{
		t:      t,
		id:     t.nextID,
		parent: parent,
		name:   name,
		start:  time.Now(),
		attrs:  append([]Attr(nil), attrs...),
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// StartRoot begins the root span of t and installs it in ctx so
// StartSpan calls underneath nest beneath it. Each trace has exactly
// one root; calling StartRoot twice is a programming error (the second
// root would detach the tree) and panics.
func (t *Trace) StartRoot(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t.mu.Lock()
	rooted := len(t.spans) > 0
	t.mu.Unlock()
	if rooted {
		panic("obs: StartRoot called twice on one trace")
	}
	if t.linkTrace != "" {
		attrs = append(append([]Attr(nil), attrs...), A("link_trace_id", t.linkTrace))
	}
	s := t.start(name, 0, attrs)
	return context.WithValue(ctx, spanKey, s), s
}

// StartSpan begins a child of the context's current span and installs
// it as the new current span. When no trace is active — the library
// default — it returns ctx unchanged and a nil span, and every method
// on the nil span is a safe no-op, so call sites never branch on
// whether tracing is on.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey).(*Span)
	if parent == nil {
		return ctx, nil
	}
	s := parent.t.start(name, parent.id, attrs)
	return context.WithValue(ctx, spanKey, s), s
}

// Span is one timed, named, attributed node of a trace.
type Span struct {
	t      *Trace
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu     sync.Mutex
	end    time.Time
	attrs  []Attr
	errMsg string
}

// SetAttr annotates the span. Safe on a nil span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span. Safe on a nil span; the first End wins.
func (s *Span) End() { s.EndErr(nil) }

// EndErr closes the span, recording err (when non-nil) so failed and
// cancelled stages stay visible in the tree instead of vanishing.
// Safe on a nil span.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
		if err != nil {
			s.errMsg = err.Error()
		}
	}
	s.mu.Unlock()
}

// SpanNode is the wire form of a span subtree: the JSONL sink writes
// one root node per line, GET /v1/jobs/{id}/trace returns the job's
// root node, and StageTrace.Spans embeds it in CLI/daemon responses.
type SpanNode struct {
	Name    string `json:"name"`
	TraceID string `json:"trace_id,omitempty"` // set on the root only
	// SpanID is the span's globally-unique wire id (segment prefix +
	// in-trace counter); ParentSpanID is set only on a segment root
	// whose parent span lives on another node, and is what MergeSegments
	// matches against SpanID to stitch segments back together.
	SpanID       string `json:"span_id,omitempty"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
	// StartUnixNano and EndUnixNano bound the span; EndUnixNano is 0
	// for a span that never ended (a crashed or leaked stage).
	StartUnixNano  int64          `json:"start_unix_nano"`
	EndUnixNano    int64          `json:"end_unix_nano,omitempty"`
	DurationMillis float64        `json:"duration_millis"`
	Attrs          map[string]any `json:"attrs,omitempty"`
	Error          string         `json:"error,omitempty"`
	Children       []*SpanNode    `json:"children,omitempty"`
}

// Tree assembles the finished span tree. Spans whose parent is missing
// (never possible through the public API) attach to the root; a trace
// with no spans yields nil.
func (t *Trace) Tree() *SpanNode {
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	if len(spans) == 0 {
		return nil
	}
	nodes := make(map[uint64]*SpanNode, len(spans))
	var root *SpanNode
	for _, s := range spans {
		s.mu.Lock()
		n := &SpanNode{
			Name:          s.name,
			SpanID:        t.wireID(s.id),
			StartUnixNano: s.start.UnixNano(),
		}
		if !s.end.IsZero() {
			n.EndUnixNano = s.end.UnixNano()
			n.DurationMillis = float64(s.end.Sub(s.start)) / float64(time.Millisecond)
		}
		if len(s.attrs) > 0 {
			n.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		n.Error = s.errMsg
		s.mu.Unlock()
		nodes[s.id] = n
		if s.parent == 0 && root == nil {
			root = n
			n.TraceID = t.id
			n.ParentSpanID = t.remoteParent
			continue
		}
		parent := nodes[s.parent]
		if parent == nil {
			parent = root
		}
		if parent != nil && parent != n {
			parent.Children = append(parent.Children, n)
		}
	}
	return root
}

// DefaultTraceRingBytes caps the bytes a TraceSink retains when the
// caller does not choose its own cap via SetMaxBytes.
const DefaultTraceRingBytes = 16 << 20

// TraceSink receives finished traces: each is rendered to its span
// tree, written as one JSON line to the writer (when one is set), and
// retained in a bounded ring so the daemon can serve recent traces
// without any file configured. The ring is bounded both by trace count
// and by retained bytes (the rendered JSON size of each tree), so a few
// enormous traces cannot dominate the heap. Safe for concurrent use.
type TraceSink struct {
	mu       sync.Mutex
	w        io.Writer
	maxCount int
	maxBytes int64
	entries  []sinkEntry // FIFO, oldest first
	bytes    int64
	exported int64
}

type sinkEntry struct {
	node  *SpanNode
	bytes int64
}

// NewTraceSink builds a sink writing JSONL to w (nil for ring-only)
// and retaining the last ringSize traces (clamped to at least 1), up
// to DefaultTraceRingBytes of rendered JSON.
func NewTraceSink(w io.Writer, ringSize int) *TraceSink {
	if ringSize < 1 {
		ringSize = 1
	}
	return &TraceSink{w: w, maxCount: ringSize, maxBytes: DefaultTraceRingBytes}
}

// SetMaxBytes overrides the ring's byte cap (clamped to at least 1;
// the newest trace is always retained even when it alone exceeds the
// cap, so the ring can never go empty through eviction).
func (s *TraceSink) SetMaxBytes(n int64) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.maxBytes = n
	s.evictLocked()
	s.mu.Unlock()
}

func (s *TraceSink) evictLocked() {
	for len(s.entries) > 1 && (len(s.entries) > s.maxCount || s.bytes > s.maxBytes) {
		s.bytes -= s.entries[0].bytes
		s.entries[0] = sinkEntry{}
		s.entries = s.entries[1:]
	}
}

// Export records the trace's span tree. Traces with no spans are
// dropped. Write errors are reported on stderr once per call but never
// fail the request that produced the trace.
func (s *TraceSink) Export(t *Trace) {
	root := t.Tree()
	if root == nil {
		return
	}
	var line bytes.Buffer
	enc := json.NewEncoder(&line)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(root); err != nil {
		fmt.Fprintf(os.Stderr, "obs: trace sink encode: %v\n", err)
		line.Reset()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = append(s.entries, sinkEntry{node: root, bytes: int64(line.Len())})
	s.bytes += int64(line.Len())
	s.evictLocked()
	s.exported++
	if s.w != nil && line.Len() > 0 {
		if _, err := s.w.Write(line.Bytes()); err != nil {
			fmt.Fprintf(os.Stderr, "obs: trace sink write: %v\n", err)
		}
	}
}

// Exported returns the number of traces exported since construction.
func (s *TraceSink) Exported() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exported
}

// RingBytes returns the rendered-JSON bytes currently retained in the
// ring (the symclusterd_trace_ring_bytes gauge).
func (s *TraceSink) RingBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Recent returns the retained traces, oldest first.
func (s *TraceSink) Recent() []*SpanNode {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*SpanNode, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e.node)
	}
	return out
}

// ByTraceID returns the retained segments of one distributed trace,
// oldest first. Peers call this (via GET /internal/v1/traces/{id}) to
// collect remote segments for MergeSegments.
func (s *TraceSink) ByTraceID(id string) []*SpanNode {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*SpanNode
	for _, e := range s.entries {
		if e.node.TraceID == id {
			out = append(out, e.node)
		}
	}
	return out
}

// MergeSegments stitches the segments of one distributed trace into a
// single tree: a segment whose root's ParentSpanID matches a span in
// another segment is attached beneath that span; the segment with no
// remote parent becomes the root. Segments whose parent span is
// missing (evicted from a peer's ring, or the peer is gone) attach
// under the root with their ParentSpanID left visible. Returns nil for
// no segments; a single segment is returned as-is.
func MergeSegments(segments []*SpanNode) *SpanNode {
	segs := make([]*SpanNode, 0, len(segments))
	for _, s := range segments {
		if s != nil {
			segs = append(segs, s)
		}
	}
	if len(segs) == 0 {
		return nil
	}
	if len(segs) == 1 {
		return segs[0]
	}
	// Index every span of every segment by wire id.
	byID := make(map[string]*SpanNode)
	var index func(n *SpanNode)
	index = func(n *SpanNode) {
		if n.SpanID != "" {
			byID[n.SpanID] = n
		}
		for _, c := range n.Children {
			index(c)
		}
	}
	for _, s := range segs {
		index(s)
	}
	var root *SpanNode
	var orphans []*SpanNode
	for _, s := range segs {
		if s.ParentSpanID == "" {
			if root == nil {
				root = s
				continue
			}
			orphans = append(orphans, s)
			continue
		}
		if parent := byID[s.ParentSpanID]; parent != nil && parent != s {
			parent.Children = append(parent.Children, s)
			continue
		}
		orphans = append(orphans, s)
	}
	if root == nil {
		root, orphans = orphans[0], orphans[1:]
	}
	root.Children = append(root.Children, orphans...)
	return root
}
