package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values must be
// JSON-marshalable; the wire format renders them under "attrs".
type Attr struct {
	Key   string
	Value any
}

// A builds an Attr (shorthand for span call sites).
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// traceSeq numbers traces within the process; combined with the
// process start time it makes trace ids unique across restarts.
var (
	traceSeq  atomic.Uint64
	traceBase = time.Now().UnixNano()
)

// Trace collects the spans of one logical operation (an HTTP request,
// a CLI run, an async job). Create with NewTrace, begin the root span
// with StartRoot, and read the finished tree with Tree. A Trace is
// safe for concurrent use by the spans it owns.
type Trace struct {
	id string

	mu     sync.Mutex
	nextID uint64
	spans  []*Span
}

// NewTrace returns an empty trace with a process-unique id.
func NewTrace() *Trace {
	return &Trace{id: fmt.Sprintf("t-%012x-%06x", traceBase&0xffffffffffff, traceSeq.Add(1))}
}

// ID returns the trace id ("t-…").
func (t *Trace) ID() string { return t.id }

// start allocates and records a new span. Spans are appended at start
// time, so Tree's sibling order is span creation order.
func (t *Trace) start(name string, parent uint64, attrs []Attr) *Span {
	t.mu.Lock()
	t.nextID++
	s := &Span{
		t:      t,
		id:     t.nextID,
		parent: parent,
		name:   name,
		start:  time.Now(),
		attrs:  append([]Attr(nil), attrs...),
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// StartRoot begins the root span of t and installs it in ctx so
// StartSpan calls underneath nest beneath it. Each trace has exactly
// one root; calling StartRoot twice is a programming error (the second
// root would detach the tree) and panics.
func (t *Trace) StartRoot(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t.mu.Lock()
	rooted := len(t.spans) > 0
	t.mu.Unlock()
	if rooted {
		panic("obs: StartRoot called twice on one trace")
	}
	s := t.start(name, 0, attrs)
	return context.WithValue(ctx, spanKey, s), s
}

// StartSpan begins a child of the context's current span and installs
// it as the new current span. When no trace is active — the library
// default — it returns ctx unchanged and a nil span, and every method
// on the nil span is a safe no-op, so call sites never branch on
// whether tracing is on.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey).(*Span)
	if parent == nil {
		return ctx, nil
	}
	s := parent.t.start(name, parent.id, attrs)
	return context.WithValue(ctx, spanKey, s), s
}

// Span is one timed, named, attributed node of a trace.
type Span struct {
	t      *Trace
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu     sync.Mutex
	end    time.Time
	attrs  []Attr
	errMsg string
}

// SetAttr annotates the span. Safe on a nil span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span. Safe on a nil span; the first End wins.
func (s *Span) End() { s.EndErr(nil) }

// EndErr closes the span, recording err (when non-nil) so failed and
// cancelled stages stay visible in the tree instead of vanishing.
// Safe on a nil span.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
		if err != nil {
			s.errMsg = err.Error()
		}
	}
	s.mu.Unlock()
}

// SpanNode is the wire form of a span subtree: the JSONL sink writes
// one root node per line, GET /v1/jobs/{id}/trace returns the job's
// root node, and StageTrace.Spans embeds it in CLI/daemon responses.
type SpanNode struct {
	Name    string `json:"name"`
	TraceID string `json:"trace_id,omitempty"` // set on the root only
	// StartUnixNano and EndUnixNano bound the span; EndUnixNano is 0
	// for a span that never ended (a crashed or leaked stage).
	StartUnixNano  int64          `json:"start_unix_nano"`
	EndUnixNano    int64          `json:"end_unix_nano,omitempty"`
	DurationMillis float64        `json:"duration_millis"`
	Attrs          map[string]any `json:"attrs,omitempty"`
	Error          string         `json:"error,omitempty"`
	Children       []*SpanNode    `json:"children,omitempty"`
}

// Tree assembles the finished span tree. Spans whose parent is missing
// (never possible through the public API) attach to the root; a trace
// with no spans yields nil.
func (t *Trace) Tree() *SpanNode {
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	if len(spans) == 0 {
		return nil
	}
	nodes := make(map[uint64]*SpanNode, len(spans))
	var root *SpanNode
	for _, s := range spans {
		s.mu.Lock()
		n := &SpanNode{
			Name:          s.name,
			StartUnixNano: s.start.UnixNano(),
		}
		if !s.end.IsZero() {
			n.EndUnixNano = s.end.UnixNano()
			n.DurationMillis = float64(s.end.Sub(s.start)) / float64(time.Millisecond)
		}
		if len(s.attrs) > 0 {
			n.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		n.Error = s.errMsg
		s.mu.Unlock()
		nodes[s.id] = n
		if s.parent == 0 && root == nil {
			root = n
			n.TraceID = t.id
			continue
		}
		parent := nodes[s.parent]
		if parent == nil {
			parent = root
		}
		if parent != nil && parent != n {
			parent.Children = append(parent.Children, n)
		}
	}
	return root
}

// TraceSink receives finished traces: each is rendered to its span
// tree, written as one JSON line to the writer (when one is set), and
// retained in a bounded ring so the daemon can serve recent traces
// without any file configured. Safe for concurrent use.
type TraceSink struct {
	mu       sync.Mutex
	w        io.Writer
	ring     []*SpanNode
	next     int
	exported int64
}

// NewTraceSink builds a sink writing JSONL to w (nil for ring-only)
// and retaining the last ringSize traces (clamped to at least 1).
func NewTraceSink(w io.Writer, ringSize int) *TraceSink {
	if ringSize < 1 {
		ringSize = 1
	}
	return &TraceSink{w: w, ring: make([]*SpanNode, 0, ringSize)}
}

// Export records the trace's span tree. Traces with no spans are
// dropped. Write errors are reported on stderr once per call but never
// fail the request that produced the trace.
func (s *TraceSink) Export(t *Trace) {
	root := t.Tree()
	if root == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, root)
	} else {
		s.ring[s.next] = root
		s.next = (s.next + 1) % cap(s.ring)
	}
	s.exported++
	if s.w != nil {
		enc := json.NewEncoder(s.w)
		enc.SetEscapeHTML(false)
		if err := enc.Encode(root); err != nil {
			fmt.Fprintf(os.Stderr, "obs: trace sink write: %v\n", err)
		}
	}
}

// Exported returns the number of traces exported since construction.
func (s *TraceSink) Exported() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exported
}

// Recent returns the retained traces, oldest first.
func (s *TraceSink) Recent() []*SpanNode {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*SpanNode, 0, len(s.ring))
	if len(s.ring) < cap(s.ring) {
		return append(out, s.ring...)
	}
	out = append(out, s.ring[s.next:]...)
	return append(out, s.ring[:s.next]...)
}
