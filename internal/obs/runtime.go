package obs

import (
	"os"
	"runtime"
)

// RegisterRuntimeMetrics registers Func-backed Go runtime health series
// under <prefix>_runtime_*: live goroutines, heap in-use bytes, total
// GC pause seconds, and open file descriptors. The daemon registers
// them with prefix "symclusterd"; each callback samples the runtime at
// scrape time so the gauges are always current.
func RegisterRuntimeMetrics(r *Registry, prefix string) {
	r.Func(prefix+"_runtime_goroutines", "Live goroutines.", TypeGauge,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.Func(prefix+"_runtime_heap_inuse_bytes", "Bytes in in-use heap spans.", TypeGauge,
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapInuse)
		})
	r.Func(prefix+"_runtime_gc_pause_seconds_total", "Cumulative stop-the-world GC pause seconds.", TypeCounter,
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
	r.Func(prefix+"_runtime_open_fds", "Open file descriptors (0 where /proc is unavailable).", TypeGauge,
		func() float64 { return float64(OpenFDs()) })
}

// OpenFDs counts the process's open file descriptors by listing
// /proc/self/fd, returning 0 on platforms without procfs. The listing
// itself holds one descriptor, which is excluded.
func OpenFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil || len(ents) == 0 {
		return 0
	}
	return len(ents) - 1
}
