//go:build !unix

package obs

import "time"

// ProcessCPUTime is unavailable off unix; JobStats CPU columns read 0.
func ProcessCPUTime() time.Duration { return 0 }
