package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricType is the Prometheus exposition type of a metric family.
type MetricType string

// The exposition types the registry supports.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Registry holds metric families and renders the Prometheus text
// exposition (format 0.0.4) without any client library, keeping the
// module stdlib-only. Families are get-or-create: registering the same
// name twice returns the existing family, and a name registered under
// two different types or label sets panics (a wiring bug that must not
// ship).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric with its labeled series.
type family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
	order  []string // series keys in first-observation order

	fn func() float64 // callback-backed single unlabeled series
}

// series is one label-value combination of a family.
type series struct {
	labelValues []string
	value       float64 // counter / gauge

	count        int64 // histogram
	sum          float64
	bucketCounts []int64 // parallel to family.buckets, non-cumulative
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family for name, creating it on first use and
// panicking when a second registration disagrees on type or labels.
func (r *Registry) lookup(name, help string, typ MetricType, buckets []float64, labels []string) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{
				name:    name,
				help:    help,
				typ:     typ,
				labels:  append([]string(nil), labels...),
				buckets: append([]float64(nil), buckets...),
				series:  make(map[string]*series),
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s with %d labels (was %s with %d)",
			name, typ, len(labels), f.typ, len(f.labels)))
	}
	return f
}

// get returns the series for the given label values, creating it on
// first observation.
func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q observed with %d label values, want %d",
			f.name, len(labelValues), len(f.labels)))
	}
	key := strings.Join(labelValues, "\x00")
	s := f.series[key]
	if s == nil {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		if f.typ == TypeHistogram {
			s.bucketCounts = make([]int64, len(f.buckets))
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter is a monotonically increasing metric family.
type Counter struct{ f *family }

// Counter registers (or returns) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return &Counter{r.lookup(name, help, TypeCounter, nil, labels)}
}

// Add increments the series for labelValues by v (v must be >= 0).
func (c *Counter) Add(v float64, labelValues ...string) {
	c.f.mu.Lock()
	c.f.get(labelValues).value += v
	c.f.mu.Unlock()
}

// Inc adds 1.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Value returns the current value of one series (0 if never observed).
func (c *Counter) Value(labelValues ...string) float64 {
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	return c.f.get(labelValues).value
}

// Gauge is a set-to-current-value metric family.
type Gauge struct{ f *family }

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return &Gauge{r.lookup(name, help, TypeGauge, nil, labels)}
}

// Set stores v on the series for labelValues.
func (g *Gauge) Set(v float64, labelValues ...string) {
	g.f.mu.Lock()
	g.f.get(labelValues).value = v
	g.f.mu.Unlock()
}

// Histogram is a fixed-bucket histogram family. Buckets are upper
// bounds in increasing order; the implicit +Inf bucket is always
// appended in the exposition.
type Histogram struct{ f *family }

// Histogram registers (or returns) a histogram family with the given
// bucket upper bounds (sorted ascending; an empty slice means only the
// +Inf bucket).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	return &Histogram{r.lookup(name, help, TypeHistogram, buckets, labels)}
}

// Observe records v on the series for labelValues.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	h.f.mu.Lock()
	s := h.f.get(labelValues)
	s.count++
	s.sum += v
	for i, ub := range h.f.buckets {
		if v <= ub {
			s.bucketCounts[i]++
			break
		}
	}
	h.f.mu.Unlock()
}

// Count returns the observation count of one series.
func (h *Histogram) Count(labelValues ...string) int64 {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return h.f.get(labelValues).count
}

// Func registers a callback-backed metric: one unlabeled series whose
// value is read at exposition time. typ must be TypeCounter or
// TypeGauge. It is how live values (queue depth, cache bytes, …) join
// the exposition without double bookkeeping.
func (r *Registry) Func(name, help string, typ MetricType, fn func() float64) {
	if typ != TypeCounter && typ != TypeGauge {
		panic(fmt.Sprintf("obs: Func metric %q must be counter or gauge, got %s", name, typ))
	}
	f := r.lookup(name, help, typ, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// ExpBuckets returns count upper bounds start, start·factor,
// start·factor², … — the standard exponential histogram layout.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Shared bucket layouts, so the same quantity is always histogrammed
// the same way and dashboards can be copy-pasted between metrics.
var (
	// DurationBuckets spans 1ms…~65s, the request/stage latency range.
	DurationBuckets = ExpBuckets(0.001, 2, 17)
	// ResidualBuckets spans 1e-10…10 decade-by-decade, the convergence
	// residual range of the power/Lanczos/flow iterations.
	ResidualBuckets = ExpBuckets(1e-10, 10, 12)
	// CountBuckets spans 1…~65k doubling, for iteration/level counts.
	CountBuckets = ExpBuckets(1, 2, 17)
	// SizeBuckets spans 64…~4.3e9 with factor 4, for nnz and byte sizes.
	SizeBuckets = ExpBuckets(64, 4, 14)
)

// WriteText renders the full text exposition, families sorted by name
// and series in first-observation order. Histograms emit cumulative
// _bucket lines (ending at le="+Inf"), then _sum and _count.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		f.write(w)
	}
}

func (f *family) write(w io.Writer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fn == nil && len(f.order) == 0 {
		return // nothing observed yet; skip the family entirely
	}
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	if f.fn != nil {
		fmt.Fprintf(w, "%s %s\n", f.name, formatValue(f.fn()))
		return
	}
	for _, key := range f.order {
		s := f.series[key]
		switch f.typ {
		case TypeHistogram:
			var cum int64
			for i, ub := range f.buckets {
				cum += s.bucketCounts[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelValues, "le", formatBucket(ub)), cum)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelValues, "le", "+Inf"), s.count)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""), formatValue(s.sum))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, s.labelValues, "", ""), s.count)
		default:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""), formatValue(s.value))
		}
	}
}

// labelString renders {k="v",…}, appending one extra pair (the le
// bound) when extraKey is non-empty. No labels yields the empty string.
func labelString(names, values []string, extraKey, extraValue string) string {
	if len(names) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatBucket renders a le bound; integral bounds print without an
// exponent so the output stays human-scannable.
func formatBucket(ub float64) string {
	return strconv.FormatFloat(ub, 'g', -1, 64)
}
