// Package eval implements the paper's evaluation machinery: the
// micro-averaged best-match F-measure of §4.3, normalised cuts
// (undirected and directed), and the paired binomial sign test of §5.6
// in log domain (the paper reports p-values as small as 1e-22767,
// which only exist in log space).
package eval

import (
	"fmt"
	"math"
)

// GroundTruth holds overlapping category assignments: Categories[i]
// lists the category ids of node i (nil/empty for unlabelled nodes,
// which the paper's datasets have 20–35% of). K is the number of
// categories.
type GroundTruth struct {
	Categories [][]int
	K          int
}

// NewGroundTruth validates and wraps per-node category lists. K is
// inferred as max id + 1.
func NewGroundTruth(categories [][]int) (*GroundTruth, error) {
	k := 0
	for i, cats := range categories {
		for _, c := range cats {
			if c < 0 {
				return nil, fmt.Errorf("eval: node %d has negative category %d", i, c)
			}
			if c+1 > k {
				k = c + 1
			}
		}
	}
	return &GroundTruth{Categories: categories, K: k}, nil
}

// Labelled returns the number of nodes with at least one category.
func (g *GroundTruth) Labelled() int {
	n := 0
	for _, cats := range g.Categories {
		if len(cats) > 0 {
			n++
		}
	}
	return n
}

// categorySizes returns |G_j| for every category.
func (g *GroundTruth) categorySizes() []int {
	sizes := make([]int, g.K)
	for _, cats := range g.Categories {
		for _, c := range cats {
			sizes[c]++
		}
	}
	return sizes
}

// F1 returns the harmonic mean of precision and recall (0 when both
// vanish).
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// ClusterScore is the evaluation of one output cluster against its
// best-matching ground-truth category.
type ClusterScore struct {
	Cluster      int     // cluster id
	Size         int     // |C_i|
	BestCategory int     // argmax_j F(C_i, G_j); -1 when no overlap
	Precision    float64 // |C_i ∩ G_j| / |C_i|
	Recall       float64 // |C_i ∩ G_j| / |G_j|
	F            float64 // harmonic mean
}

// Report is the full evaluation of a clustering.
type Report struct {
	// AvgF is the size-weighted (micro-averaged) mean of per-cluster
	// best-match F-measures (paper §4.3), in [0,1].
	AvgF float64
	// Clusters holds the per-cluster detail, indexed by cluster id.
	Clusters []ClusterScore
	// K is the number of clusters evaluated.
	K int
}

// Evaluate scores the clustering assign (node → cluster id in [0,k))
// against the ground truth, implementing §4.3 exactly: each cluster is
// matched with the category maximising F(C_i, G_j), and the clustering
// score is the cluster-size-weighted average of those F values.
// Unlabelled nodes count toward |C_i| (hurting precision) but belong to
// no category, exactly as in the paper's datasets.
func Evaluate(assign []int, truth *GroundTruth) (*Report, error) {
	if len(assign) != len(truth.Categories) {
		return nil, fmt.Errorf("eval: %d assignments for %d nodes", len(assign), len(truth.Categories))
	}
	k := 0
	for i, c := range assign {
		if c < 0 {
			return nil, fmt.Errorf("eval: node %d has negative cluster %d", i, c)
		}
		if c+1 > k {
			k = c + 1
		}
	}

	sizes := make([]int, k)
	// Per-cluster overlap counts with each category, kept sparse.
	overlap := make([]map[int]int, k)
	for i, c := range assign {
		sizes[c]++
		for _, cat := range truth.Categories[i] {
			if overlap[c] == nil {
				overlap[c] = make(map[int]int)
			}
			overlap[c][cat]++
		}
	}
	catSize := truth.categorySizes()

	rep := &Report{K: k, Clusters: make([]ClusterScore, k)}
	var weighted float64
	var total int
	for c := 0; c < k; c++ {
		best := ClusterScore{Cluster: c, Size: sizes[c], BestCategory: -1}
		for cat, inter := range overlap[c] {
			p := float64(inter) / float64(sizes[c])
			r := float64(inter) / float64(catSize[cat])
			f := F1(p, r)
			if f > best.F || (f == best.F && (best.BestCategory == -1 || cat < best.BestCategory)) {
				best.BestCategory = cat
				best.Precision = p
				best.Recall = r
				best.F = f
			}
		}
		rep.Clusters[c] = best
		weighted += float64(sizes[c]) * best.F
		total += sizes[c]
	}
	if total > 0 {
		rep.AvgF = weighted / float64(total)
	}
	return rep, nil
}

// CorrectNodes returns, for each node, whether it is "correctly
// clustered": its cluster's best-match category contains the node.
// This is the per-node notion of correctness used by the paired sign
// test (§5.6). Unlabelled nodes are never correct.
func CorrectNodes(assign []int, truth *GroundTruth) ([]bool, error) {
	rep, err := Evaluate(assign, truth)
	if err != nil {
		return nil, err
	}
	correct := make([]bool, len(assign))
	for i, c := range assign {
		bc := rep.Clusters[c].BestCategory
		if bc < 0 {
			continue
		}
		for _, cat := range truth.Categories[i] {
			if cat == bc {
				correct[i] = true
				break
			}
		}
	}
	return correct, nil
}

// SignTestResult holds the paired binomial sign test output.
type SignTestResult struct {
	// NAOnly counts nodes correct under clustering A but not B; NBOnly
	// the converse.
	NAOnly, NBOnly int
	// Log10P is the one-sided p-value in log10 (e.g. -22767 means
	// 1e-22767): the probability under the null (p = 1/2) of a split at
	// least as extreme as the observed one.
	Log10P float64
}

// SignTest runs the paired binomial sign test of §5.6 on two
// correctness vectors (from CorrectNodes). The null hypothesis is that
// a node correct under exactly one clustering is equally likely to
// favour either; the returned p-value is one-sided toward the better
// clustering.
func SignTest(correctA, correctB []bool) (*SignTestResult, error) {
	if len(correctA) != len(correctB) {
		return nil, fmt.Errorf("eval: sign test length mismatch %d vs %d", len(correctA), len(correctB))
	}
	res := &SignTestResult{}
	for i := range correctA {
		switch {
		case correctA[i] && !correctB[i]:
			res.NAOnly++
		case correctB[i] && !correctA[i]:
			res.NBOnly++
		}
	}
	n := res.NAOnly + res.NBOnly
	if n == 0 {
		res.Log10P = 0 // p = 1: no discordant pairs
		return res, nil
	}
	k := res.NAOnly
	if res.NBOnly > k {
		k = res.NBOnly
	}
	res.Log10P = logBinomTail(n, k)
	return res, nil
}

// logBinomTail returns log10 P(X >= k) for X ~ Binomial(n, 1/2),
// computed in log space so that astronomically small tails stay
// representable.
func logBinomTail(n, k int) float64 {
	if k <= 0 {
		return 0
	}
	// log P = logsumexp_{i=k..n} [ logC(n,i) - n·log 2 ].
	ln2 := math.Log(2)
	maxTerm := math.Inf(-1)
	terms := make([]float64, 0, n-k+1)
	for i := k; i <= n; i++ {
		t := lchoose(n, i) - float64(n)*ln2
		terms = append(terms, t)
		if t > maxTerm {
			maxTerm = t
		}
	}
	var sum float64
	for _, t := range terms {
		sum += math.Exp(t - maxTerm)
	}
	lnP := maxTerm + math.Log(sum)
	if lnP > 0 {
		lnP = 0 // numerical guard: probabilities cannot exceed 1
	}
	return lnP / math.Ln10
}

// lchoose returns ln C(n, k) via lgamma.
func lchoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}
