package eval

import (
	"math"
	"testing"
)

func mustTruth(t *testing.T, cats [][]int) *GroundTruth {
	t.Helper()
	g, err := NewGroundTruth(cats)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGroundTruth(t *testing.T) {
	g := mustTruth(t, [][]int{{0, 2}, nil, {1}})
	if g.K != 3 {
		t.Fatalf("K = %d, want 3", g.K)
	}
	if g.Labelled() != 2 {
		t.Fatalf("Labelled = %d, want 2", g.Labelled())
	}
	if _, err := NewGroundTruth([][]int{{-1}}); err == nil {
		t.Fatal("accepted negative category")
	}
}

func TestF1(t *testing.T) {
	if F1(0, 0) != 0 {
		t.Fatal("F1(0,0) != 0")
	}
	if got := F1(1, 1); got != 1 {
		t.Fatalf("F1(1,1) = %v", got)
	}
	if got := F1(0.5, 1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("F1(0.5,1) = %v", got)
	}
}

func TestEvaluatePerfectClustering(t *testing.T) {
	truth := mustTruth(t, [][]int{{0}, {0}, {1}, {1}})
	rep, err := Evaluate([]int{0, 0, 1, 1}, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.AvgF-1) > 1e-12 {
		t.Fatalf("AvgF = %v, want 1", rep.AvgF)
	}
	if rep.Clusters[0].BestCategory != 0 || rep.Clusters[1].BestCategory != 1 {
		t.Fatalf("best categories wrong: %+v", rep.Clusters)
	}
}

func TestEvaluateHandComputed(t *testing.T) {
	// Cluster 0 = {0,1,2}: two nodes of cat 0, one of cat 1.
	// Cat sizes: cat0 = 2, cat1 = 2.
	// vs cat0: P = 2/3, R = 1 → F = 0.8.
	// vs cat1: P = 1/3, R = 1/2 → F = 0.4.
	// Cluster 1 = {3}: cat 1. P = 1, R = 1/2 → F = 2/3.
	// AvgF = (3·0.8 + 1·2/3) / 4 = (2.4 + 0.6667)/4 = 0.76667.
	truth := mustTruth(t, [][]int{{0}, {0}, {1}, {1}})
	rep, err := Evaluate([]int{0, 0, 0, 1}, truth)
	if err != nil {
		t.Fatal(err)
	}
	want := (3*0.8 + 2.0/3.0) / 4
	if math.Abs(rep.AvgF-want) > 1e-12 {
		t.Fatalf("AvgF = %v, want %v", rep.AvgF, want)
	}
	c0 := rep.Clusters[0]
	if c0.BestCategory != 0 || math.Abs(c0.Precision-2.0/3.0) > 1e-12 || c0.Recall != 1 {
		t.Fatalf("cluster 0 score: %+v", c0)
	}
}

func TestEvaluateUnlabelledNodesHurtPrecision(t *testing.T) {
	// Cluster of 4 nodes, 2 labelled cat 0 (the entire category):
	// P = 2/4, R = 1 → F = 2/3.
	truth := mustTruth(t, [][]int{{0}, {0}, nil, nil})
	rep, err := Evaluate([]int{0, 0, 0, 0}, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.AvgF-2.0/3.0) > 1e-12 {
		t.Fatalf("AvgF = %v, want 2/3", rep.AvgF)
	}
}

func TestEvaluateOverlappingCategories(t *testing.T) {
	// Node 0 belongs to both cats; the cluster may match either.
	truth := mustTruth(t, [][]int{{0, 1}, {0}, {1}})
	rep, err := Evaluate([]int{0, 0, 1}, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 0 = {0,1}: vs cat0 P=1, R=1, F=1. Cluster 1 = {2}: vs
	// cat1 P=1, R=1/2, F=2/3.
	want := (2*1.0 + 2.0/3.0) / 3
	if math.Abs(rep.AvgF-want) > 1e-12 {
		t.Fatalf("AvgF = %v, want %v", rep.AvgF, want)
	}
}

func TestEvaluateNoOverlapCluster(t *testing.T) {
	truth := mustTruth(t, [][]int{nil, nil})
	rep, err := Evaluate([]int{0, 1}, truth)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AvgF != 0 {
		t.Fatalf("AvgF = %v, want 0", rep.AvgF)
	}
	if rep.Clusters[0].BestCategory != -1 {
		t.Fatalf("expected no best category: %+v", rep.Clusters[0])
	}
}

func TestEvaluateErrors(t *testing.T) {
	truth := mustTruth(t, [][]int{{0}})
	if _, err := Evaluate([]int{0, 1}, truth); err == nil {
		t.Fatal("accepted length mismatch")
	}
	if _, err := Evaluate([]int{-1}, truth); err == nil {
		t.Fatal("accepted negative cluster id")
	}
}

func TestCorrectNodes(t *testing.T) {
	truth := mustTruth(t, [][]int{{0}, {0}, {1}, nil})
	correct, err := CorrectNodes([]int{0, 0, 0, 1}, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 0 best-matches cat 0: nodes 0,1 correct, node 2 (cat 1)
	// not. Node 3 unlabelled → never correct.
	want := []bool{true, true, false, false}
	for i := range want {
		if correct[i] != want[i] {
			t.Fatalf("correct[%d] = %v, want %v", i, correct[i], want[i])
		}
	}
}

func TestSignTestBasic(t *testing.T) {
	// A correct on 10 nodes B misses; B correct on 0 A misses.
	a := make([]bool, 20)
	b := make([]bool, 20)
	for i := 0; i < 10; i++ {
		a[i] = true
	}
	res, err := SignTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.NAOnly != 10 || res.NBOnly != 0 {
		t.Fatalf("counts %d,%d", res.NAOnly, res.NBOnly)
	}
	// P(X >= 10 | n=10, p=.5) = 2^-10 → log10 ≈ -3.0103.
	want := -10 * math.Log10(2)
	if math.Abs(res.Log10P-want) > 1e-9 {
		t.Fatalf("log10 p = %v, want %v", res.Log10P, want)
	}
}

func TestSignTestSymmetricNull(t *testing.T) {
	// Equal discordant counts: p should be large (near 1 → log10 near
	// 0). For n=10, k=5: P(X>=5) ≈ 0.623 → log10 ≈ -0.2056.
	a := make([]bool, 10)
	b := make([]bool, 10)
	for i := 0; i < 5; i++ {
		a[i] = true
	}
	for i := 5; i < 10; i++ {
		b[i] = true
	}
	res, err := SignTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Log10P < -0.3 || res.Log10P > 0 {
		t.Fatalf("log10 p = %v, want ≈ -0.206", res.Log10P)
	}
}

func TestSignTestNoDiscordance(t *testing.T) {
	a := []bool{true, false}
	res, err := SignTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Log10P != 0 {
		t.Fatalf("log10 p = %v, want 0 (p=1)", res.Log10P)
	}
}

func TestSignTestExtremeCounts(t *testing.T) {
	// Very large one-sided counts must stay finite in log space.
	n := 100000
	a := make([]bool, n)
	b := make([]bool, n)
	for i := 0; i < 80000; i++ {
		a[i] = true
	}
	for i := 80000; i < 90000; i++ {
		b[i] = true
	}
	res, err := SignTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.Log10P, 0) || math.IsNaN(res.Log10P) {
		t.Fatalf("log10 p = %v", res.Log10P)
	}
	if res.Log10P > -1000 {
		t.Fatalf("log10 p = %v, expected extremely small", res.Log10P)
	}
}

func TestSignTestLengthMismatch(t *testing.T) {
	if _, err := SignTest([]bool{true}, []bool{}); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
}

func TestLogBinomTailAgainstDirectSum(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 7}, {20, 10}, {30, 25}, {5, 0}} {
		got := logBinomTail(tc.n, tc.k)
		var direct float64
		for i := tc.k; i <= tc.n; i++ {
			direct += math.Exp(lchoose(tc.n, i)) / math.Pow(2, float64(tc.n))
		}
		want := math.Log10(direct)
		if tc.k <= 0 {
			want = 0
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("n=%d k=%d: got %v want %v", tc.n, tc.k, got, want)
		}
	}
}
