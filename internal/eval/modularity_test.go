package eval

import (
	"math"
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

func twoCliquesBridge() *matrix.CSR {
	b := matrix.NewBuilder(6, 6)
	add := func(u, v int) { b.Add(u, v, 1); b.Add(v, u, 1) }
	add(0, 1)
	add(1, 2)
	add(0, 2)
	add(3, 4)
	add(4, 5)
	add(3, 5)
	add(2, 3)
	return b.Build()
}

func TestModularityNaturalSplitPositive(t *testing.T) {
	adj := twoCliquesBridge()
	good, err := Modularity(adj, []int{0, 0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Hand computation: total (directed-count) weight W = 14; within
	// each cluster = 6; degree mass = 7 per cluster.
	// Q = 2·[6/14 − (7/14)²] = 2·[0.42857 − 0.25] = 0.35714.
	want := 2 * (6.0/14.0 - 0.25)
	if math.Abs(good-want) > 1e-12 {
		t.Fatalf("Q = %v, want %v", good, want)
	}
	// The all-in-one clustering has Q = 0.
	one, err := Modularity(adj, []int{0, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one) > 1e-12 {
		t.Fatalf("trivial Q = %v, want 0", one)
	}
	if good <= one {
		t.Fatal("natural split not more modular than trivial")
	}
}

func TestModularityRandomSplitNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 400
	b := matrix.NewBuilder(n, n)
	for e := 0; e < 3*n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.Add(u, v, 1)
			b.Add(v, u, 1)
		}
	}
	adj := b.Build()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = rng.Intn(4)
	}
	q, err := Modularity(adj, assign)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q) > 0.05 {
		t.Fatalf("random split on random graph Q = %v, want ≈ 0", q)
	}
}

func TestModularityErrors(t *testing.T) {
	if _, err := Modularity(matrix.Zero(2, 3), []int{0, 0}); err == nil {
		t.Fatal("accepted non-square")
	}
	if _, err := Modularity(matrix.Zero(2, 2), []int{0}); err == nil {
		t.Fatal("accepted length mismatch")
	}
	if _, err := Modularity(matrix.Zero(2, 2), []int{0, 0}); err == nil {
		t.Fatal("accepted edgeless graph")
	}
	if _, err := Modularity(twoCliquesBridge(), []int{-1, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("accepted negative cluster")
	}
}

func TestModularityDirectedMatchesUndirectedOnSymmetric(t *testing.T) {
	adj := twoCliquesBridge()
	assign := []int{0, 0, 0, 1, 1, 1}
	qu, err := Modularity(adj, assign)
	if err != nil {
		t.Fatal(err)
	}
	qd, err := ModularityDirected(adj, assign)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qu-qd) > 1e-12 {
		t.Fatalf("directed %v vs undirected %v on symmetric graph", qd, qu)
	}
}

func TestModularityDirectedFlowCluster(t *testing.T) {
	// Two directed 3-cycles joined by one edge: splitting them is
	// strongly modular.
	b := matrix.NewBuilder(6, 6)
	b.Add(0, 1, 1)
	b.Add(1, 2, 1)
	b.Add(2, 0, 1)
	b.Add(3, 4, 1)
	b.Add(4, 5, 1)
	b.Add(5, 3, 1)
	b.Add(2, 3, 1)
	a := b.Build()
	q, err := ModularityDirected(a, []int{0, 0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.3 {
		t.Fatalf("directed Q = %v, want high", q)
	}
	if _, err := ModularityDirected(matrix.Zero(2, 3), []int{0, 0}); err == nil {
		t.Fatal("accepted non-square")
	}
}
