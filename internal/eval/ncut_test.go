package eval

import (
	"math"
	"testing"

	"symcluster/internal/matrix"
)

func TestNCutTwoTriangles(t *testing.T) {
	b := matrix.NewBuilder(6, 6)
	add := func(u, v int) { b.Add(u, v, 1); b.Add(v, u, 1) }
	add(0, 1)
	add(1, 2)
	add(0, 2)
	add(3, 4)
	add(4, 5)
	add(3, 5)
	add(2, 3)
	got, err := NCut(b.Build(), []int{0, 0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0/7.0) > 1e-12 {
		t.Fatalf("ncut = %v, want 2/7", got)
	}
}

func TestNCutSingleCluster(t *testing.T) {
	b := matrix.NewBuilder(3, 3)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	got, err := NCut(b.Build(), []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("single-cluster ncut = %v", got)
	}
}

func TestNCutErrors(t *testing.T) {
	if _, err := NCut(matrix.Zero(2, 3), []int{0, 0}); err == nil {
		t.Fatal("accepted non-square")
	}
	if _, err := NCut(matrix.Zero(2, 2), []int{0}); err == nil {
		t.Fatal("accepted length mismatch")
	}
}

func TestNCutDirectedMatchesUndirectedOnSymmetricGraph(t *testing.T) {
	// On a symmetric graph with no teleport, the directed ncut under
	// the natural walk coincides with the undirected ncut (π ∝ degree).
	b := matrix.NewBuilder(6, 6)
	add := func(u, v int) { b.Add(u, v, 1); b.Add(v, u, 1) }
	add(0, 1)
	add(1, 2)
	add(0, 2)
	add(3, 4)
	add(4, 5)
	add(3, 5)
	add(2, 3)
	adj := b.Build()
	assign := []int{0, 0, 0, 1, 1, 1}
	undirected, err := NCut(adj, assign)
	if err != nil {
		t.Fatal(err)
	}
	directed, err := NCutDirected(adj, assign, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(undirected-directed) > 1e-3 {
		t.Fatalf("directed %v vs undirected %v", directed, undirected)
	}
}

func TestNCutDirectedFigure1IsHigh(t *testing.T) {
	// The Figure-1 cluster {4,5} must have a high directed ncut (its
	// every walk step crosses the boundary) — the paper's §2.1.1.
	b := matrix.NewBuilder(6, 6)
	for _, src := range []int{0, 1} {
		for _, dst := range []int{4, 5} {
			b.Add(src, dst, 1)
		}
	}
	for _, src := range []int{4, 5} {
		for _, dst := range []int{2, 3} {
			b.Add(src, dst, 1)
		}
	}
	// Clustering that puts {4,5} together: directed ncut of that
	// cluster alone is near maximal.
	got, err := NCutDirected(b.Build(), []int{0, 0, 1, 1, 2, 2}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.9 {
		t.Fatalf("directed ncut = %v, expected high (> 0.9)", got)
	}
}

func TestNCutDirectedErrors(t *testing.T) {
	if _, err := NCutDirected(matrix.Zero(2, 3), []int{0, 0}, 0.05); err == nil {
		t.Fatal("accepted non-square")
	}
	if _, err := NCutDirected(matrix.Zero(2, 2), []int{0}, 0.05); err == nil {
		t.Fatal("accepted length mismatch")
	}
}
