package eval

import (
	"fmt"

	"symcluster/internal/matrix"
	"symcluster/internal/walk"
)

// NCut returns the undirected normalised cut Σ_c cut(c)/deg(c) of the
// assignment over the symmetric adjacency adj (paper Eq. 1 summed over
// all clusters). Degree-less clusters contribute nothing.
func NCut(adj *matrix.CSR, assign []int) (float64, error) {
	if adj.Rows != adj.Cols {
		return 0, fmt.Errorf("eval: adjacency %dx%d not square", adj.Rows, adj.Cols)
	}
	if len(assign) != adj.Rows {
		return 0, fmt.Errorf("eval: %d assignments for %d nodes", len(assign), adj.Rows)
	}
	k := 0
	for _, c := range assign {
		if c+1 > k {
			k = c + 1
		}
	}
	cut := make([]float64, k)
	deg := make([]float64, k)
	for i := 0; i < adj.Rows; i++ {
		ci := assign[i]
		cols, vals := adj.Row(i)
		for t, c := range cols {
			deg[ci] += vals[t]
			if assign[c] != ci {
				cut[ci] += vals[t]
			}
		}
	}
	var total float64
	for c := 0; c < k; c++ {
		if deg[c] > 0 {
			total += cut[c] / deg[c]
		}
	}
	return total, nil
}

// NCutDirected returns the directed normalised cut of the assignment
// over the directed adjacency a (paper Eq. 3 summed over all
// clusters): for each cluster S,
//
//	NCut_dir(S) = P(S→S̄)/π(S) + P(S̄→S)/π(S̄)
//
// under the random walk with the given teleport probability (0 means
// walk.DefaultTeleport). Clusters with zero stationary mass contribute
// nothing.
func NCutDirected(a *matrix.CSR, assign []int, teleport float64) (float64, error) {
	if a.Rows != a.Cols {
		return 0, fmt.Errorf("eval: adjacency %dx%d not square", a.Rows, a.Cols)
	}
	if len(assign) != a.Rows {
		return 0, fmt.Errorf("eval: %d assignments for %d nodes", len(assign), a.Rows)
	}
	if teleport == 0 {
		teleport = walk.DefaultTeleport
	}
	p := walk.TransitionMatrix(a)
	pi, err := walk.StationaryDistribution(p, walk.Options{Teleport: teleport})
	if err != nil {
		return 0, fmt.Errorf("eval: directed ncut: %w", err)
	}
	k := 0
	for _, c := range assign {
		if c+1 > k {
			k = c + 1
		}
	}
	outFlow := make([]float64, k) // P(S→S̄)
	inFlow := make([]float64, k)  // P(S̄→S)
	vol := make([]float64, k)     // π(S)
	var totalPi float64
	for i := 0; i < a.Rows; i++ {
		ci := assign[i]
		vol[ci] += pi[i]
		totalPi += pi[i]
		cols, vals := p.Row(i)
		for t, c := range cols {
			if assign[c] != ci {
				outFlow[ci] += pi[i] * vals[t]
				inFlow[assign[c]] += pi[i] * vals[t]
			}
		}
	}
	var total float64
	for c := 0; c < k; c++ {
		volBar := totalPi - vol[c]
		if vol[c] > 0 {
			total += outFlow[c] / vol[c]
		}
		if volBar > 0 {
			total += inFlow[c] / volBar
		}
	}
	// Eq. 3 counts each boundary crossing from both sides of the cut;
	// summed over all k clusters that double-counts, so the k-way score
	// is halved. On a symmetric graph with no teleport this then reduces
	// exactly to the undirected k-way NCut.
	return total / 2, nil
}
