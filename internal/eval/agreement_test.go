package eval

import (
	"math"
	"math/rand"
	"testing"
)

func TestNMIIdenticalPartitions(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	got, err := NMI(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI = %v, want 1", got)
	}
}

func TestNMIRelabelledPartitions(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{5, 5, 9, 9, 1, 1}
	got, err := NMI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI under relabelling = %v, want 1", got)
	}
}

func TestNMIIndependentPartitionsLow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 3000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(5)
		b[i] = rng.Intn(5)
	}
	got, err := NMI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.05 {
		t.Fatalf("NMI of independent partitions = %v, want near 0", got)
	}
}

func TestNMITrivialPartitions(t *testing.T) {
	a := []int{0, 0, 0}
	got, err := NMI(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("NMI of identical trivial partitions = %v, want 1", got)
	}
}

func TestNMIErrors(t *testing.T) {
	if _, err := NMI([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
	if _, err := NMI([]int{-1}, []int{0}); err == nil {
		t.Fatal("accepted negative id")
	}
	if _, err := NMI(nil, nil); err == nil {
		t.Fatal("accepted empty input")
	}
}

func TestARIIdenticalAndRelabelled(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{7, 7, 3, 3, 0, 0}
	got, err := ARI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI = %v, want 1", got)
	}
}

func TestARIIndependentNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 3000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(4)
		b[i] = rng.Intn(4)
	}
	got, err := ARI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 0.05 {
		t.Fatalf("ARI of independent partitions = %v, want near 0", got)
	}
}

func TestARIKnownValue(t *testing.T) {
	// Hand-computed example: a = {0,0,1,1}, b = {0,1,1,1}.
	// Contingency: (0,0)=1 (0,1)=1 (1,1)=2.
	// sumIJ = C(2,2)=1. sumA = C(2,2)+C(2,2)=2. sumB = C(1,2)+C(3,2)=3.
	// total = C(4,2)=6. expected = 2*3/6 = 1. maxIdx = 2.5.
	// ARI = (1-1)/(2.5-1) = 0.
	got, err := ARI([]int{0, 0, 1, 1}, []int{0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 1e-12 {
		t.Fatalf("ARI = %v, want 0", got)
	}
}

func TestARITrivial(t *testing.T) {
	got, err := ARI([]int{0, 0}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("ARI trivial = %v, want 1", got)
	}
}

func TestPurity(t *testing.T) {
	// Cluster 0 = {ref 0, ref 0, ref 1}: majority 2. Cluster 1 = {ref 1}: 1.
	// Purity = 3/4.
	got, err := Purity([]int{0, 0, 0, 1}, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("purity = %v, want 0.75", got)
	}
}

func TestPurityPerfect(t *testing.T) {
	got, err := Purity([]int{0, 1, 2}, []int{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("singleton purity = %v, want 1", got)
	}
}
