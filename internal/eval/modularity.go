package eval

import (
	"fmt"

	"symcluster/internal/matrix"
)

// Modularity returns the Newman–Girvan modularity of a clustering over
// a symmetric weighted adjacency:
//
//	Q = Σ_c [ w_in(c)/W − (deg(c)/2W)² ]
//
// where w_in(c) is the weight inside cluster c counting each
// undirected edge once (self-loops fully), W the total edge weight and
// deg(c) the weighted degree mass of c. Q ∈ [−1/2, 1); higher is more
// modular.
func Modularity(adj *matrix.CSR, assign []int) (float64, error) {
	if adj.Rows != adj.Cols {
		return 0, fmt.Errorf("eval: adjacency %dx%d not square", adj.Rows, adj.Cols)
	}
	if len(assign) != adj.Rows {
		return 0, fmt.Errorf("eval: %d assignments for %d nodes", len(assign), adj.Rows)
	}
	k := 0
	for i, c := range assign {
		if c < 0 {
			return 0, fmt.Errorf("eval: node %d has negative cluster", i)
		}
		if c+1 > k {
			k = c + 1
		}
	}
	within := make([]float64, k)  // Σ A(i,j) for i,j in c (both directions)
	degMass := make([]float64, k) // Σ degrees
	var total float64
	for i := 0; i < adj.Rows; i++ {
		ci := assign[i]
		cols, vals := adj.Row(i)
		for t, c := range cols {
			total += vals[t]
			degMass[ci] += vals[t]
			if assign[c] == ci {
				within[ci] += vals[t]
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("eval: modularity of an edgeless graph is undefined")
	}
	var q float64
	for c := 0; c < k; c++ {
		q += within[c]/total - (degMass[c]/total)*(degMass[c]/total)
	}
	return q, nil
}

// ModularityDirected returns the directed modularity of Leicht &
// Newman over a directed adjacency:
//
//	Q = Σ_c [ w_in(c)/W − (out(c)/W)·(in(c)/W) ]
//
// where w_in(c) is the weight of edges starting AND ending in c, W the
// total edge weight, and out(c)/in(c) the cluster's out-/in-weight.
func ModularityDirected(a *matrix.CSR, assign []int) (float64, error) {
	if a.Rows != a.Cols {
		return 0, fmt.Errorf("eval: adjacency %dx%d not square", a.Rows, a.Cols)
	}
	if len(assign) != a.Rows {
		return 0, fmt.Errorf("eval: %d assignments for %d nodes", len(assign), a.Rows)
	}
	k := 0
	for i, c := range assign {
		if c < 0 {
			return 0, fmt.Errorf("eval: node %d has negative cluster", i)
		}
		if c+1 > k {
			k = c + 1
		}
	}
	within := make([]float64, k)
	outMass := make([]float64, k)
	inMass := make([]float64, k)
	var total float64
	for i := 0; i < a.Rows; i++ {
		ci := assign[i]
		cols, vals := a.Row(i)
		for t, c := range cols {
			total += vals[t]
			outMass[ci] += vals[t]
			inMass[assign[c]] += vals[t]
			if assign[c] == ci {
				within[ci] += vals[t]
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("eval: modularity of an edgeless graph is undefined")
	}
	var q float64
	for c := 0; c < k; c++ {
		q += within[c]/total - (outMass[c]/total)*(inMass[c]/total)
	}
	return q, nil
}
