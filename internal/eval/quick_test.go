package eval

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// labelled generates a random clustering + overlapping ground truth
// over the same nodes.
type labelled struct {
	Assign []int
	Truth  *GroundTruth
}

// Generate implements quick.Generator.
func (labelled) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 1 + rng.Intn(60)
	k := 1 + rng.Intn(8)
	cats := 1 + rng.Intn(8)
	assign := make([]int, n)
	truth := make([][]int, n)
	for i := range assign {
		assign[i] = rng.Intn(k)
		switch rng.Intn(4) {
		case 0: // unlabelled
		case 1: // two categories
			a, b := rng.Intn(cats), rng.Intn(cats)
			if a == b {
				truth[i] = []int{a}
			} else if a < b {
				truth[i] = []int{a, b}
			} else {
				truth[i] = []int{b, a}
			}
		default:
			truth[i] = []int{rng.Intn(cats)}
		}
	}
	gt, err := NewGroundTruth(truth)
	if err != nil {
		panic(err)
	}
	return reflect.ValueOf(labelled{Assign: assign, Truth: gt})
}

var quickCfg = &quick.Config{MaxCount: 200}

func TestQuickAvgFInUnitInterval(t *testing.T) {
	f := func(l labelled) bool {
		rep, err := Evaluate(l.Assign, l.Truth)
		if err != nil {
			return false
		}
		if rep.AvgF < 0 || rep.AvgF > 1 {
			return false
		}
		for _, c := range rep.Clusters {
			if c.F < 0 || c.F > 1 || c.Precision < 0 || c.Precision > 1 || c.Recall < 0 || c.Recall > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPerfectClusteringScoresPerfect(t *testing.T) {
	// Clustering by the (single) true category of fully labelled nodes
	// scores AvgF = 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		cats := 1 + rng.Intn(6)
		assign := make([]int, n)
		truth := make([][]int, n)
		for i := range assign {
			c := rng.Intn(cats)
			assign[i] = c
			truth[i] = []int{c}
		}
		gt, err := NewGroundTruth(truth)
		if err != nil {
			return false
		}
		rep, err := Evaluate(assign, gt)
		if err != nil {
			return false
		}
		return rep.AvgF > 1-1e-12
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSignTestSymmetry(t *testing.T) {
	// Swapping the clusterings swaps the counts and keeps the p-value.
	f := func(l labelled, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		other := make([]int, len(l.Assign))
		for i := range other {
			other[i] = rng.Intn(4)
		}
		ca, err := CorrectNodes(l.Assign, l.Truth)
		if err != nil {
			return false
		}
		cb, err := CorrectNodes(other, l.Truth)
		if err != nil {
			return false
		}
		ab, err := SignTest(ca, cb)
		if err != nil {
			return false
		}
		ba, err := SignTest(cb, ca)
		if err != nil {
			return false
		}
		if ab.NAOnly != ba.NBOnly || ab.NBOnly != ba.NAOnly {
			return false
		}
		diff := ab.Log10P - ba.Log10P
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCorrectNodesSubsetOfLabelled(t *testing.T) {
	f := func(l labelled) bool {
		correct, err := CorrectNodes(l.Assign, l.Truth)
		if err != nil {
			return false
		}
		for i, c := range correct {
			if c && len(l.Truth.Categories[i]) == 0 {
				return false // unlabelled nodes can never be correct
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNMIARIBounds(t *testing.T) {
	f := func(l labelled, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		other := make([]int, len(l.Assign))
		for i := range other {
			other[i] = rng.Intn(5)
		}
		nmi, err := NMI(l.Assign, other)
		if err != nil {
			return false
		}
		if nmi < 0 || nmi > 1 {
			return false
		}
		ari, err := ARI(l.Assign, other)
		if err != nil {
			return false
		}
		if ari > 1+1e-12 {
			return false
		}
		p, err := Purity(l.Assign, other)
		if err != nil {
			return false
		}
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
