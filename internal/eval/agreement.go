package eval

import (
	"fmt"
	"math"
)

// The agreement measures below compare two flat partitions of the same
// node set (they do not handle overlapping ground truth; use Evaluate
// for the paper's best-match F-measure). They are provided for library
// users who want standard clustering indices alongside the paper's
// metric.

// contingency builds the joint count table of two assignments and the
// marginals.
func contingency(a, b []int) (table map[[2]int]int, aCount, bCount map[int]int, n int, err error) {
	if len(a) != len(b) {
		return nil, nil, nil, 0, fmt.Errorf("eval: assignments length mismatch %d vs %d", len(a), len(b))
	}
	table = make(map[[2]int]int)
	aCount = make(map[int]int)
	bCount = make(map[int]int)
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			return nil, nil, nil, 0, fmt.Errorf("eval: negative cluster id at node %d", i)
		}
		table[[2]int{a[i], b[i]}]++
		aCount[a[i]]++
		bCount[b[i]]++
	}
	return table, aCount, bCount, len(a), nil
}

// NMI returns the normalised mutual information between two
// assignments, in [0, 1], using the arithmetic-mean normalisation
// NMI = 2·I(A;B) / (H(A)+H(B)). Two identical partitions score 1;
// independent partitions score near 0. By convention two trivial
// single-cluster partitions score 1.
func NMI(a, b []int) (float64, error) {
	table, aCount, bCount, n, err := contingency(a, b)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("eval: empty assignments")
	}
	var ha, hb, mi float64
	for _, c := range aCount {
		p := float64(c) / float64(n)
		ha -= p * math.Log(p)
	}
	for _, c := range bCount {
		p := float64(c) / float64(n)
		hb -= p * math.Log(p)
	}
	for key, c := range table {
		pxy := float64(c) / float64(n)
		px := float64(aCount[key[0]]) / float64(n)
		py := float64(bCount[key[1]]) / float64(n)
		mi += pxy * math.Log(pxy/(px*py))
	}
	if ha+hb == 0 {
		return 1, nil // both partitions trivial and identical
	}
	v := 2 * mi / (ha + hb)
	if v < 0 {
		v = 0 // numerical noise
	}
	if v > 1 {
		v = 1
	}
	return v, nil
}

// ARI returns the adjusted Rand index between two assignments: 1 for
// identical partitions, ~0 for independent ones, negative for
// less-than-chance agreement.
func ARI(a, b []int) (float64, error) {
	table, aCount, bCount, n, err := contingency(a, b)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("eval: empty assignments")
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumIJ, sumA, sumB float64
	for _, c := range table {
		sumIJ += choose2(c)
	}
	for _, c := range aCount {
		sumA += choose2(c)
	}
	for _, c := range bCount {
		sumB += choose2(c)
	}
	total := choose2(n)
	expected := sumA * sumB / total
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 1, nil // both partitions trivial
	}
	return (sumIJ - expected) / (maxIdx - expected), nil
}

// Purity returns the weighted purity of assignment a against reference
// b: each cluster of a contributes its majority-reference-class share.
func Purity(a, b []int) (float64, error) {
	table, aCount, _, n, err := contingency(a, b)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("eval: empty assignments")
	}
	best := make(map[int]int)
	for key, c := range table {
		if c > best[key[0]] {
			best[key[0]] = c
		}
	}
	var sum int
	for cluster := range aCount {
		sum += best[cluster]
	}
	return float64(sum) / float64(n), nil
}
