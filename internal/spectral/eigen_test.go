package spectral

import (
	"math"
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

func TestTql2Diagonal(t *testing.T) {
	d := []float64{3, 1, 2}
	e := []float64{0, 0, 0}
	z := identity(3)
	if err := tql2(d, e, z); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Fatalf("eigenvalues %v, want %v", d, want)
		}
	}
}

func TestTql2Known2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3 with eigenvectors
	// (1,-1)/√2 and (1,1)/√2.
	d := []float64{2, 2}
	e := []float64{0, 1}
	z := identity(2)
	if err := tql2(d, e, z); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d[0]-1) > 1e-12 || math.Abs(d[1]-3) > 1e-12 {
		t.Fatalf("eigenvalues %v, want [1 3]", d)
	}
	// Check eigenvector property for both columns.
	a := [][]float64{{2, 1}, {1, 2}}
	for j := 0; j < 2; j++ {
		for i := 0; i < 2; i++ {
			var av float64
			for k := 0; k < 2; k++ {
				av += a[i][k] * z[k][j]
			}
			if math.Abs(av-d[j]*z[i][j]) > 1e-10 {
				t.Fatalf("A·v != λ·v for eigenpair %d", j)
			}
		}
	}
}

func TestTql2RandomTridiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(20)
		diag := make([]float64, n)
		sub := make([]float64, n) // sub[i] couples i-1 and i
		for i := range diag {
			diag[i] = rng.NormFloat64() * 3
			if i > 0 {
				sub[i] = rng.NormFloat64()
			}
		}
		d := append([]float64(nil), diag...)
		e := append([]float64(nil), sub...)
		z := identity(n)
		if err := tql2(d, e, z); err != nil {
			t.Fatal(err)
		}
		// Ascending order.
		for i := 1; i < n; i++ {
			if d[i] < d[i-1]-1e-12 {
				t.Fatalf("trial %d: eigenvalues not ascending: %v", trial, d)
			}
		}
		// Trace preserved.
		var trA, trD float64
		for i := 0; i < n; i++ {
			trA += diag[i]
			trD += d[i]
		}
		if math.Abs(trA-trD) > 1e-8 {
			t.Fatalf("trial %d: trace %v -> %v", trial, trA, trD)
		}
		// Residual ‖Tv − λv‖ small for every eigenpair.
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				tv := diag[i] * z[i][j]
				if i > 0 {
					tv += sub[i] * z[i-1][j]
				}
				if i < n-1 {
					tv += sub[i+1] * z[i+1][j]
				}
				if math.Abs(tv-d[j]*z[i][j]) > 1e-8 {
					t.Fatalf("trial %d: residual too large at (%d,%d)", trial, i, j)
				}
			}
		}
		// Eigenvectors orthonormal.
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				var s float64
				for i := 0; i < n; i++ {
					s += z[i][a] * z[i][b]
				}
				want := 0.0
				if a == b {
					want = 1
				}
				if math.Abs(s-want) > 1e-8 {
					t.Fatalf("trial %d: z columns not orthonormal (%d,%d): %v", trial, a, b, s)
				}
			}
		}
	}
}

func identity(n int) [][]float64 {
	z := make([][]float64, n)
	for i := range z {
		z[i] = make([]float64, n)
		z[i][i] = 1
	}
	return z
}

func TestTopEigenDiagonalOperator(t *testing.T) {
	m := matrix.Diagonal([]float64{5, -1, 3, 0.5, 2})
	eig, err := TopEigen(Operator(m), 2, LanczosOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig.Values[0]-5) > 1e-8 || math.Abs(eig.Values[1]-3) > 1e-8 {
		t.Fatalf("top eigenvalues %v, want [5 3]", eig.Values)
	}
	// Top eigenvector must be ±e_0.
	v := eig.Vectors[0]
	if math.Abs(math.Abs(v[0])-1) > 1e-6 {
		t.Fatalf("top eigenvector %v, want ±e0", v)
	}
}

func TestTopEigenSymmetricRandom(t *testing.T) {
	// Build a random symmetric matrix, compare Lanczos results against
	// residual norms.
	rng := rand.New(rand.NewSource(2))
	n := 40
	b := matrix.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if rng.Float64() < 0.2 {
				w := rng.NormFloat64()
				b.Add(i, j, w)
				if i != j {
					b.Add(j, i, w)
				}
			}
		}
	}
	m := b.Build()
	k := 5
	eig, err := TopEigen(Operator(m), k, LanczosOptions{Seed: 3, Steps: n})
	if err != nil {
		t.Fatal(err)
	}
	for t2 := 0; t2 < k; t2++ {
		v := eig.Vectors[t2]
		mv := m.MulVec(v)
		var res float64
		for i := range v {
			d := mv[i] - eig.Values[t2]*v[i]
			res += d * d
		}
		if math.Sqrt(res) > 1e-6 {
			t.Fatalf("eigenpair %d residual %v", t2, math.Sqrt(res))
		}
	}
	// Descending order.
	for t2 := 1; t2 < k; t2++ {
		if eig.Values[t2] > eig.Values[t2-1]+1e-10 {
			t.Fatalf("eigenvalues not descending: %v", eig.Values)
		}
	}
}

func TestTopEigenOrthogonalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 30
	b := matrix.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				b.Add(i, j, 1)
				b.Add(j, i, 1)
			}
		}
	}
	eig, err := TopEigen(Operator(b.Build()), 4, LanczosOptions{Seed: 5, Steps: n})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		for c := a + 1; c < 4; c++ {
			if d := math.Abs(dot(eig.Vectors[a], eig.Vectors[c])); d > 1e-6 {
				t.Fatalf("eigenvectors %d,%d not orthogonal: %v", a, c, d)
			}
		}
	}
}

func TestTopEigenErrors(t *testing.T) {
	m := matrix.Identity(3)
	if _, err := TopEigen(Operator(m), 0, LanczosOptions{}); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := TopEigen(Operator(m), 4, LanczosOptions{}); err == nil {
		t.Fatal("accepted k>n")
	}
}

func TestTopEigenFuncOperator(t *testing.T) {
	// Operator x ↦ 2x has eigenvalue 2 everywhere.
	op := FuncOperator{N: 6, F: func(x []float64) []float64 {
		y := make([]float64, len(x))
		for i := range x {
			y[i] = 2 * x[i]
		}
		return y
	}}
	eig, err := TopEigen(op, 1, LanczosOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig.Values[0]-2) > 1e-9 {
		t.Fatalf("eigenvalue %v, want 2", eig.Values[0])
	}
}

func TestOperatorPanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Operator(matrix.Zero(2, 3))
}
