package spectral

import (
	"context"
	"fmt"
	"math"

	"symcluster/internal/matrix"
	"symcluster/internal/walk"
)

// WCutWeighting selects the (T, T') weighting of the WCut objective
// (Meila & Pentney, Eq. 4 in the paper) that BestWCut minimises.
type WCutWeighting int

const (
	// StationaryWeights uses T(i) = π(i) and T'(i) = π(i)/d_out(i),
	// which makes WCut coincide with the directed normalised cut
	// NCut_dir (paper Eq. 3). This is the default.
	StationaryWeights WCutWeighting = iota
	// DegreeWeights uses T(i) = d_out(i)+d_in(i) and T'(i) = 1, which
	// makes WCut coincide with the undirected normalised cut of A+Aᵀ.
	DegreeWeights
)

// BestWCutOptions configures BestWCut.
type BestWCutOptions struct {
	// Weighting selects the WCut instance. Defaults to
	// StationaryWeights.
	Weighting WCutWeighting
	// Teleport for the stationary distribution (StationaryWeights
	// only). Defaults to walk.DefaultTeleport.
	Teleport float64
	// KMeans configures the final embedding clustering.
	KMeans KMeansOptions
	// Lanczos configures the eigensolver.
	Lanczos LanczosOptions
	// DenseEig replaces the Lanczos eigensolver with a full dense
	// eigendecomposition (O(n³)), matching how the 2007-era reference
	// implementations computed eigenvectors. Use for era-faithful
	// timing comparisons (Figure 6(b)); results are equivalent.
	DenseEig bool
}

// Result is the output of the spectral clusterers.
type Result struct {
	Assign []int
	K      int
	// Eigenvalues of the relaxation, descending (diagnostic).
	Eigenvalues []float64
}

// BestWCut reimplements the weighted-cut spectral algorithm of Meila &
// Pentney ("Clustering by Weighted Cuts in Directed Graphs", SDM 2007):
// minimise WCut(S) over k-way partitions by the standard spectral
// relaxation. With T' row weights and T volume weights, the relaxation
// clusters the rows of the top-k eigenvectors of the normalised
// symmetric matrix
//
//	N = D_T^{-1/2} · (T̂'A + AᵀT̂')/2 · D_T^{-1/2}
//
// (T̂' = diag(T')), followed by k-means on the row-normalised
// embedding.
//
// This is a faithful-in-structure reimplementation: the original
// authors' code is unavailable, and the defining properties preserved
// here are (i) the WCut objective family with pluggable T, T', and
// (ii) the dependence on eigenvector computations that makes the
// method slow at scale (the paper's §5.2, Figure 6).
func BestWCut(a *matrix.CSR, k int, opt BestWCutOptions) (*Result, error) {
	return BestWCutCtx(context.Background(), a, k, opt)
}

// BestWCutCtx is BestWCut with cancellation: ctx is threaded through
// the stationary-distribution power iteration, the Lanczos
// factorisation and the k-means restarts, so a cancelled context aborts
// the pipeline at the next iteration boundary with ctx's error.
func BestWCutCtx(ctx context.Context, a *matrix.CSR, k int, opt BestWCutOptions) (*Result, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("spectral: adjacency %dx%d not square", a.Rows, a.Cols)
	}
	n := a.Rows
	if k < 1 || (k > n && n > 0) {
		return nil, fmt.Errorf("spectral: k = %d out of range for %d nodes", k, n)
	}
	if n == 0 {
		return &Result{Assign: []int{}, K: k}, nil
	}

	var tvec, tprime []float64
	switch opt.Weighting {
	case DegreeWeights:
		out := a.RowCounts()
		in := a.ColCounts()
		tvec = make([]float64, n)
		tprime = make([]float64, n)
		for i := 0; i < n; i++ {
			tvec[i] = float64(out[i] + in[i])
			tprime[i] = 1
		}
	default: // StationaryWeights
		teleport := opt.Teleport
		if teleport == 0 {
			teleport = walk.DefaultTeleport
		}
		pi, err := walk.PageRankCtx(ctx, a, teleport)
		if err != nil {
			return nil, fmt.Errorf("spectral: BestWCut stationary distribution: %w", err)
		}
		out := a.RowCounts()
		tvec = pi
		tprime = make([]float64, n)
		for i := 0; i < n; i++ {
			if out[i] > 0 {
				tprime[i] = pi[i] / float64(out[i])
			} else {
				tprime[i] = pi[i]
			}
		}
	}

	// S = (T̂'A + AᵀT̂')/2; N = D_T^{-1/2} S D_T^{-1/2}.
	tpa := a.ScaleRows(tprime)
	s := matrix.AddTransposeSym(tpa, 0.5)
	dinv := make([]float64, n)
	for i, t := range tvec {
		if t > 0 {
			dinv[i] = 1 / math.Sqrt(t)
		}
	}
	nmat := s.ScaleRows(dinv).ScaleCols(dinv)

	if opt.DenseEig {
		return denseEmbedCluster(ctx, nmat, k, opt.KMeans)
	}
	return spectralEmbedCluster(ctx, Operator(nmat), n, k, opt.Lanczos, opt.KMeans)
}

// ZhouOptions configures ZhouDirected.
type ZhouOptions struct {
	// Teleport for the stationary distribution. Defaults to
	// walk.DefaultTeleport.
	Teleport float64
	KMeans   KMeansOptions
	Lanczos  LanczosOptions
}

// ZhouDirected implements the directed spectral clustering of Zhou,
// Huang & Schölkopf (ICML 2005): compute the directed Laplacian of the
// paper's Eq. 5,
//
//	L = I − (Π^{1/2} P Π^{-1/2} + Π^{-1/2} Pᵀ Π^{1/2}) / 2,
//
// take the k eigenvectors of L with smallest eigenvalues (equivalently
// the top-k of the symmetrized transition term), and k-means the
// row-normalised embedding.
func ZhouDirected(a *matrix.CSR, k int, opt ZhouOptions) (*Result, error) {
	return ZhouDirectedCtx(context.Background(), a, k, opt)
}

// ZhouDirectedCtx is ZhouDirected with cancellation at iteration
// boundaries of the power iteration, Lanczos and k-means stages.
func ZhouDirectedCtx(ctx context.Context, a *matrix.CSR, k int, opt ZhouOptions) (*Result, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("spectral: adjacency %dx%d not square", a.Rows, a.Cols)
	}
	n := a.Rows
	if k < 1 || (k > n && n > 0) {
		return nil, fmt.Errorf("spectral: k = %d out of range for %d nodes", k, n)
	}
	if n == 0 {
		return &Result{Assign: []int{}, K: k}, nil
	}
	teleport := opt.Teleport
	if teleport == 0 {
		teleport = walk.DefaultTeleport
	}
	p := walk.TransitionMatrix(a)
	pi, err := walk.StationaryDistributionCtx(ctx, p, walk.Options{Teleport: teleport})
	if err != nil {
		return nil, fmt.Errorf("spectral: Zhou stationary distribution: %w", err)
	}
	sqrtPi := make([]float64, n)
	invSqrtPi := make([]float64, n)
	for i, v := range pi {
		if v > 0 {
			sqrtPi[i] = math.Sqrt(v)
			invSqrtPi[i] = 1 / sqrtPi[i]
		}
	}
	half := p.ScaleRows(sqrtPi).ScaleCols(invSqrtPi) // Π^{1/2} P Π^{-1/2}
	nmat := matrix.AddTransposeSym(half, 0.5)

	return spectralEmbedCluster(ctx, Operator(nmat), n, k, opt.Lanczos, opt.KMeans)
}

// denseEmbedCluster is spectralEmbedCluster with the dense O(n³)
// eigensolver, for era-faithful timing runs.
func denseEmbedCluster(ctx context.Context, nmat *matrix.CSR, k int, kopt KMeansOptions) (*Result, error) {
	eig, err := DenseEigen(nmat, k)
	if err != nil {
		return nil, fmt.Errorf("spectral: dense eigensolver: %w", err)
	}
	return embedAndKMeans(ctx, eig, nmat.Rows, k, kopt)
}

// spectralEmbedCluster computes the top-k eigenvectors of op, builds
// the n×k embedding, row-normalises it and k-means it.
func spectralEmbedCluster(ctx context.Context, op MatVec, n, k int, lopt LanczosOptions, kopt KMeansOptions) (*Result, error) {
	eig, err := TopEigenCtx(ctx, op, k, lopt)
	if err != nil {
		return nil, fmt.Errorf("spectral: eigensolver: %w", err)
	}
	return embedAndKMeans(ctx, eig, n, k, kopt)
}

// embedAndKMeans builds the n×k eigenvector embedding, row-normalises
// it and k-means it.
func embedAndKMeans(ctx context.Context, eig *Eigen, n, k int, kopt KMeansOptions) (*Result, error) {
	embed := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, k)
		for t := 0; t < k; t++ {
			row[t] = eig.Vectors[t][i]
		}
		embed[i] = row
	}
	NormalizeRowsUnit(embed)
	assign, _, err := KMeansCtx(ctx, embed, k, kopt)
	if err != nil {
		return nil, fmt.Errorf("spectral: kmeans: %w", err)
	}
	return &Result{Assign: assign, K: k, Eigenvalues: eig.Values}, nil
}
