package spectral

import (
	"math/rand"
	"testing"
)

func TestBestWCutDenseModeEquivalentQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, truth := directedBlocks(rng, 3, 20, 0.3, 0.01)
	lanczos, err := BestWCut(a, 3, BestWCutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := BestWCut(a, 3, BestWCutOptions{DenseEig: true})
	if err != nil {
		t.Fatal(err)
	}
	pl := clusterPurity(lanczos.Assign, truth, 3)
	pd := clusterPurity(dense.Assign, truth, 3)
	if pd < pl-0.1 {
		t.Fatalf("dense mode purity %v well below lanczos %v", pd, pl)
	}
	if pd < 0.85 {
		t.Fatalf("dense mode purity %v too low", pd)
	}
}
