package spectral

import (
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

func symBlocks(rng *rand.Rand, k, sz int, pin, pout float64) (*matrix.CSR, []int) {
	n := k * sz
	truth := make([]int, n)
	for i := range truth {
		truth[i] = i / sz
	}
	b := matrix.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pout
			if truth[i] == truth[j] {
				p = pin
			}
			if rng.Float64() < p {
				b.Add(i, j, 1)
				b.Add(j, i, 1)
			}
		}
	}
	return b.Build(), truth
}

func TestNormalizedCutRecoversBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	adj, truth := symBlocks(rng, 3, 30, 0.4, 0.01)
	res, err := NormalizedCut(adj, 3, NormalizedCutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p := clusterPurity(res.Assign, truth, 3); p < 0.9 {
		t.Fatalf("purity %v", p)
	}
}

func TestNormalizedCutErrors(t *testing.T) {
	if _, err := NormalizedCut(matrix.Zero(2, 3), 2, NormalizedCutOptions{}); err == nil {
		t.Fatal("accepted non-square")
	}
	if _, err := NormalizedCut(matrix.Zero(3, 3), 0, NormalizedCutOptions{}); err == nil {
		t.Fatal("accepted k=0")
	}
	res, err := NormalizedCut(matrix.Zero(0, 0), 2, NormalizedCutOptions{})
	if err != nil || len(res.Assign) != 0 {
		t.Fatal("empty graph handling")
	}
}

func TestNormalizedCutIsolatedNodes(t *testing.T) {
	// Graph with isolated nodes must not NaN out.
	b := matrix.NewBuilder(6, 6)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	b.Add(2, 3, 1)
	b.Add(3, 2, 1)
	res, err := NormalizedCut(b.Build(), 2, NormalizedCutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 6 {
		t.Fatalf("assign len %d", len(res.Assign))
	}
}
