package spectral

import (
	"context"
	"fmt"
	"math"
	"math/rand"
)

// KMeansOptions configures KMeans.
type KMeansOptions struct {
	// MaxIter bounds the Lloyd iterations. Defaults to 100.
	MaxIter int
	// Restarts runs the whole algorithm multiple times and keeps the
	// lowest-inertia result. Defaults to 3.
	Restarts int
	// Seed drives the k-means++ seeding.
	Seed int64
}

func (o *KMeansOptions) fill() {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Restarts <= 0 {
		o.Restarts = 3
	}
}

// KMeans clusters the points (rows of x) into k clusters with
// k-means++ seeding and Lloyd iterations, returning the assignment and
// the final inertia (sum of squared distances to centroids).
func KMeans(x [][]float64, k int, opt KMeansOptions) ([]int, float64, error) {
	return KMeansCtx(context.Background(), x, k, opt)
}

// KMeansCtx is KMeans with cancellation: ctx is polled before each
// restart, so a cancelled context aborts the clustering within one full
// k-means run with ctx's error.
func KMeansCtx(ctx context.Context, x [][]float64, k int, opt KMeansOptions) ([]int, float64, error) {
	n := len(x)
	if k < 1 {
		return nil, 0, fmt.Errorf("spectral: kmeans k = %d, want >= 1", k)
	}
	if n == 0 {
		return []int{}, 0, nil
	}
	if k > n {
		return nil, 0, fmt.Errorf("spectral: kmeans k = %d exceeds %d points", k, n)
	}
	opt.fill()
	rng := rand.New(rand.NewSource(opt.Seed + 7))

	var bestAssign []int
	bestInertia := math.Inf(1)
	for r := 0; r < opt.Restarts; r++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		assign, inertia := kmeansOnce(x, k, opt.MaxIter, rng)
		if inertia < bestInertia {
			bestInertia = inertia
			bestAssign = assign
		}
	}
	return bestAssign, bestInertia, nil
}

func kmeansOnce(x [][]float64, k, maxIter int, rng *rand.Rand) ([]int, float64) {
	n, dim := len(x), len(x[0])
	centers := seedPlusPlus(x, k, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}

	for iter := 0; iter < maxIter; iter++ {
		changed := false
		counts := make([]int, k)
		for i, p := range x {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				d := sqDist(p, centers[c])
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			counts[best]++
		}
		// Recompute centroids; reseed empty clusters with the point
		// farthest from its centroid.
		for c := range centers {
			for d := 0; d < dim; d++ {
				centers[c][d] = 0
			}
		}
		for i, p := range x {
			c := assign[i]
			for d := 0; d < dim; d++ {
				centers[c][d] += p[d]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				far, farD := 0, -1.0
				for i, p := range x {
					d := sqDist(p, centers[assign[i]])
					if d > farD {
						far, farD = i, d
					}
				}
				copy(centers[c], x[far])
				assign[far] = c
				changed = true
				continue
			}
			inv := 1 / float64(counts[c])
			for d := 0; d < dim; d++ {
				centers[c][d] *= inv
			}
		}
		if !changed {
			break
		}
	}

	var inertia float64
	for i, p := range x {
		inertia += sqDist(p, centers[assign[i]])
	}
	return assign, inertia
}

// seedPlusPlus picks k initial centers with the k-means++ rule: the
// first uniformly, each next with probability proportional to the
// squared distance from the nearest chosen center.
func seedPlusPlus(x [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(x)
	centers := make([][]float64, 0, k)
	first := append([]float64(nil), x[rng.Intn(n)]...)
	centers = append(centers, first)
	d2 := make([]float64, n)
	for i, p := range x {
		d2[i] = sqDist(p, first)
	}
	for len(centers) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var idx int
		if total <= 0 {
			idx = rng.Intn(n) // all points coincide with centers
		} else {
			r := rng.Float64() * total
			for idx = 0; idx < n-1; idx++ {
				r -= d2[idx]
				if r <= 0 {
					break
				}
			}
		}
		c := append([]float64(nil), x[idx]...)
		centers = append(centers, c)
		for i, p := range x {
			if d := sqDist(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// NormalizeRowsUnit scales each row of x to unit Euclidean norm in
// place (zero rows are left untouched). Spectral clustering pipelines
// apply this to the eigenvector embedding before k-means.
func NormalizeRowsUnit(x [][]float64) {
	for _, row := range x {
		var s float64
		for _, v := range row {
			s += v * v
		}
		if s > 0 {
			inv := 1 / math.Sqrt(s)
			for d := range row {
				row[d] *= inv
			}
		}
	}
}
