package spectral

import (
	"fmt"
	"math"

	"symcluster/internal/matrix"
)

// tred2 reduces a dense symmetric matrix (given as row-major z, which
// is overwritten with the accumulated orthogonal transformation) to
// symmetric tridiagonal form with diagonal d and sub-diagonal e
// (EISPACK tred2, Householder reduction). On return, the original
// matrix A satisfies A = Z·T·Zᵀ where T is tridiag(d, e) and Z is the
// matrix left in z.
func tred2(z [][]float64, d, e []float64) {
	n := len(z)
	for i := 0; i < n; i++ {
		d[i] = z[n-1][i]
	}
	for i := n - 1; i > 0; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(d[k])
			}
			if scale == 0 {
				e[i] = d[l]
				for j := 0; j <= l; j++ {
					d[j] = z[l][j]
					z[i][j] = 0
					z[j][i] = 0
				}
			} else {
				for k := 0; k <= l; k++ {
					d[k] /= scale
					h += d[k] * d[k]
				}
				f := d[l]
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				d[l] = f - g
				for j := 0; j <= l; j++ {
					e[j] = 0
				}
				for j := 0; j <= l; j++ {
					f = d[j]
					z[j][i] = f
					g = e[j] + z[j][j]*f
					for k := j + 1; k <= l; k++ {
						g += z[k][j] * d[k]
						e[k] += z[k][j] * f
					}
					e[j] = g
				}
				f = 0
				for j := 0; j <= l; j++ {
					e[j] /= h
					f += e[j] * d[j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					e[j] -= hh * d[j]
				}
				for j := 0; j <= l; j++ {
					f = d[j]
					g = e[j]
					for k := j; k <= l; k++ {
						z[k][j] -= f*e[k] + g*d[k]
					}
					d[j] = z[l][j]
					z[i][j] = 0
				}
			}
		} else {
			e[i] = d[l]
			d[0] = z[0][0] // j == l == 0 case folded in below
			z[i][0] = 0
			z[0][i] = 0
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		z[n-1][i] = z[i][i]
		z[i][i] = 1
		l := i + 1
		if d[l] != 0 {
			for k := 0; k <= i; k++ {
				d[k] = z[k][l] / d[l]
			}
			for j := 0; j <= i; j++ {
				var g float64
				for k := 0; k <= i; k++ {
					g += z[k][l] * z[k][j]
				}
				for k := 0; k <= i; k++ {
					z[k][j] -= g * d[k]
				}
			}
		}
		for k := 0; k <= i; k++ {
			z[k][l] = 0
		}
	}
	for j := 0; j < n; j++ {
		d[j] = z[n-1][j]
		z[n-1][j] = 0
	}
	z[n-1][n-1] = 1
	e[0] = 0
}

// DenseEigen computes the FULL eigendecomposition of a symmetric
// matrix by dense Householder tridiagonalization followed by implicit
// QL — O(n³) time, O(n²) memory. This is how the 2007-era spectral
// clustering codes (Matlab `eig`) computed their eigenvectors, and it
// is what makes BestWCut-style methods orders of magnitude slower than
// the multilevel clusterers at scale (paper Figure 6(b)). Returns the
// k largest eigenpairs, descending.
func DenseEigen(m *matrix.CSR, k int) (*Eigen, error) {
	n := m.Rows
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("spectral: matrix %dx%d not square", m.Rows, m.Cols)
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("spectral: k = %d out of range for %d nodes", k, n)
	}
	z := m.ToDense()
	// Symmetrise defensively against floating-point asymmetry.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (z[i][j] + z[j][i]) / 2
			z[i][j], z[j][i] = v, v
		}
	}
	d := make([]float64, n)
	e := make([]float64, n)
	if n == 1 {
		return &Eigen{Values: []float64{z[0][0]}, Vectors: [][]float64{{1}}}, nil
	}
	tred2(z, d, e)
	if err := tql2(d, e, z); err != nil {
		return nil, err
	}
	out := &Eigen{Values: make([]float64, k), Vectors: make([][]float64, k)}
	for t := 0; t < k; t++ {
		col := n - 1 - t
		out.Values[t] = d[col]
		vec := make([]float64, n)
		for i := 0; i < n; i++ {
			vec[i] = z[i][col]
		}
		out.Vectors[t] = vec
	}
	return out, nil
}
