package spectral

import (
	"context"
	"fmt"
	"math"

	"symcluster/internal/matrix"
)

// NormalizedCutOptions configures NormalizedCut.
type NormalizedCutOptions struct {
	KMeans  KMeansOptions
	Lanczos LanczosOptions
}

// NormalizedCut is classic undirected spectral clustering (Shi &
// Malik / Ng–Jordan–Weiss): compute the top-k eigenvectors of the
// normalised adjacency N = D^{-1/2} A D^{-1/2} (equivalently the
// smallest of the normalised Laplacian), row-normalise the embedding
// and k-means it. Provided as the textbook baseline the two-stage
// framework plugs arbitrary clusterers into.
func NormalizedCut(adj *matrix.CSR, k int, opt NormalizedCutOptions) (*Result, error) {
	return NormalizedCutCtx(context.Background(), adj, k, opt)
}

// NormalizedCutCtx is NormalizedCut with cancellation at iteration
// boundaries of the Lanczos and k-means stages.
func NormalizedCutCtx(ctx context.Context, adj *matrix.CSR, k int, opt NormalizedCutOptions) (*Result, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("spectral: adjacency %dx%d not square", adj.Rows, adj.Cols)
	}
	n := adj.Rows
	if k < 1 || (k > n && n > 0) {
		return nil, fmt.Errorf("spectral: k = %d out of range for %d nodes", k, n)
	}
	if n == 0 {
		return &Result{Assign: []int{}, K: k}, nil
	}
	deg := adj.RowSums()
	dinv := make([]float64, n)
	for i, d := range deg {
		if d > 0 {
			dinv[i] = 1 / math.Sqrt(d)
		}
	}
	nmat := adj.ScaleRows(dinv).ScaleCols(dinv)
	return spectralEmbedCluster(ctx, Operator(nmat), n, k, opt.Lanczos, opt.KMeans)
}
