package spectral

import (
	"math"
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

func randomSymmetric(rng *rand.Rand, n int, density float64) *matrix.CSR {
	b := matrix.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if rng.Float64() < density {
				w := rng.NormFloat64()
				b.Add(i, j, w)
				if i != j {
					b.Add(j, i, w)
				}
			}
		}
	}
	return b.Build()
}

func TestDenseEigenDiagonal(t *testing.T) {
	m := matrix.Diagonal([]float64{4, -2, 7, 0})
	eig, err := DenseEigen(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 4, 0, -2}
	for i := range want {
		if math.Abs(eig.Values[i]-want[i]) > 1e-10 {
			t.Fatalf("values %v, want %v", eig.Values, want)
		}
	}
}

func TestDenseEigenResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(25)
		m := randomSymmetric(rng, n, 0.5)
		eig, err := DenseEigen(m, n)
		if err != nil {
			t.Fatal(err)
		}
		for t2 := 0; t2 < n; t2++ {
			v := eig.Vectors[t2]
			mv := m.MulVec(v)
			var res, vn float64
			for i := range v {
				d := mv[i] - eig.Values[t2]*v[i]
				res += d * d
				vn += v[i] * v[i]
			}
			if math.Abs(math.Sqrt(vn)-1) > 1e-8 {
				t.Fatalf("trial %d: eigenvector %d not unit (%v)", trial, t2, math.Sqrt(vn))
			}
			if math.Sqrt(res) > 1e-7 {
				t.Fatalf("trial %d: eigenpair %d residual %v", trial, t2, math.Sqrt(res))
			}
		}
		// Trace check.
		var trA, trD float64
		for i := 0; i < n; i++ {
			trA += m.At(i, i)
		}
		for _, v := range eig.Values {
			trD += v
		}
		if math.Abs(trA-trD) > 1e-8 {
			t.Fatalf("trial %d: trace %v vs %v", trial, trA, trD)
		}
	}
}

func TestDenseEigenMatchesLanczos(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 30
	m := randomSymmetric(rng, n, 0.4)
	dense, err := DenseEigen(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	lanczos, err := TopEigen(Operator(m), 3, LanczosOptions{Seed: 3, Steps: n})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(dense.Values[i]-lanczos.Values[i]) > 1e-7 {
			t.Fatalf("eigenvalue %d: dense %v vs lanczos %v", i, dense.Values[i], lanczos.Values[i])
		}
	}
}

func TestDenseEigenErrors(t *testing.T) {
	if _, err := DenseEigen(matrix.Zero(2, 3), 1); err == nil {
		t.Fatal("accepted non-square")
	}
	if _, err := DenseEigen(matrix.Identity(3), 0); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := DenseEigen(matrix.Identity(3), 4); err == nil {
		t.Fatal("accepted k>n")
	}
}

func TestDenseEigen1x1(t *testing.T) {
	m := matrix.Diagonal([]float64{5})
	eig, err := DenseEigen(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eig.Values[0] != 5 || eig.Vectors[0][0] != 1 {
		t.Fatalf("1x1 eigen: %+v", eig)
	}
}

func TestDenseEigen2x2(t *testing.T) {
	m := matrix.FromDense([][]float64{{2, 1}, {1, 2}})
	eig, err := DenseEigen(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig.Values[0]-3) > 1e-10 || math.Abs(eig.Values[1]-1) > 1e-10 {
		t.Fatalf("2x2 values %v", eig.Values)
	}
}
