package spectral

import (
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

func TestSuggestKFindsPlantedCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{2, 4, 6} {
		adj, _ := symBlocks(rng, k, 40, 0.4, 0.005)
		got, err := SuggestK(adj, 2, 12, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Fatalf("planted %d clusters, suggested %d", k, got)
		}
	}
}

func TestSuggestKErrors(t *testing.T) {
	if _, err := SuggestK(matrix.Zero(2, 3), 2, 5, 1); err == nil {
		t.Fatal("accepted non-square")
	}
	if _, err := SuggestK(matrix.Identity(10), 5, 5, 1); err == nil {
		t.Fatal("accepted maxK <= minK")
	}
	if _, err := SuggestK(matrix.Identity(3), 2, 10, 1); err == nil {
		t.Fatal("accepted range beyond graph size")
	}
}
