package spectral

import (
	"fmt"
	"math"

	"symcluster/internal/matrix"
)

// SuggestK estimates the number of clusters in a symmetric adjacency
// by the eigengap heuristic: compute the top maxK+1 eigenvalues of the
// normalised adjacency D^{-1/2}AD^{-1/2} (whose spectrum mirrors the
// normalised Laplacian's) and return the k ≥ minK with the largest gap
// λ_k − λ_{k+1}. For a graph with k well-separated clusters the first
// k eigenvalues crowd near 1 and the gap after them is large.
func SuggestK(adj *matrix.CSR, minK, maxK int, seed int64) (int, error) {
	if adj.Rows != adj.Cols {
		return 0, fmt.Errorf("spectral: adjacency %dx%d not square", adj.Rows, adj.Cols)
	}
	n := adj.Rows
	if minK < 1 {
		minK = 1
	}
	if maxK <= minK {
		return 0, fmt.Errorf("spectral: maxK %d must exceed minK %d", maxK, minK)
	}
	if maxK+1 > n {
		maxK = n - 1
		if maxK <= minK {
			return 0, fmt.Errorf("spectral: graph too small for the requested range")
		}
	}
	deg := adj.RowSums()
	dinv := make([]float64, n)
	for i, d := range deg {
		if d > 0 {
			dinv[i] = 1 / math.Sqrt(d)
		}
	}
	nmat := adj.ScaleRows(dinv).ScaleCols(dinv)
	eig, err := TopEigen(Operator(nmat), maxK+1, LanczosOptions{Seed: seed})
	if err != nil {
		return 0, err
	}
	bestK, bestGap := minK, -1.0
	for k := minK; k <= maxK; k++ {
		gap := eig.Values[k-1] - eig.Values[k]
		if gap > bestGap {
			bestGap = gap
			bestK = k
		}
	}
	return bestK, nil
}
