package spectral

import (
	"symcluster/internal/matrix"
	"symcluster/internal/walk"
)

func pageRankForTest(a *matrix.CSR) ([]float64, error) {
	return walk.PageRank(a, walk.DefaultTeleport)
}

func mustTransition(a *matrix.CSR) *matrix.CSR {
	return walk.TransitionMatrix(a)
}
