package spectral

import (
	"math"
	"math/rand"
	"testing"
)

// gaussBlobs makes k Gaussian blobs of sz points each around distant
// centers.
func gaussBlobs(rng *rand.Rand, k, sz, dim int, spread float64) ([][]float64, []int) {
	var x [][]float64
	var truth []int
	for c := 0; c < k; c++ {
		center := make([]float64, dim)
		for d := range center {
			center[d] = float64(c*10) * float64(d%2*2-1)
		}
		center[0] = float64(c * 10)
		for p := 0; p < sz; p++ {
			pt := make([]float64, dim)
			for d := range pt {
				pt[d] = center[d] + rng.NormFloat64()*spread
			}
			x = append(x, pt)
			truth = append(truth, c)
		}
	}
	return x, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, truth := gaussBlobs(rng, 3, 40, 2, 0.5)
	assign, inertia, err := KMeans(x, 3, KMeansOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if inertia <= 0 {
		t.Fatalf("inertia = %v", inertia)
	}
	// Each true blob must be (almost) pure in one cluster.
	for c := 0; c < 3; c++ {
		counts := map[int]int{}
		for i, tc := range truth {
			if tc == c {
				counts[assign[i]]++
			}
		}
		best := 0
		for _, v := range counts {
			if v > best {
				best = v
			}
		}
		if best < 38 {
			t.Fatalf("blob %d impure: %v", c, counts)
		}
	}
}

func TestKMeansK1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, _ := gaussBlobs(rng, 2, 10, 2, 1)
	assign, _, err := KMeans(x, 1, KMeansOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range assign {
		if a != 0 {
			t.Fatal("k=1 must assign all to 0")
		}
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	x := [][]float64{{0}, {5}, {10}}
	assign, inertia, err := KMeans(x, 3, KMeansOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range assign {
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Fatalf("k=n should give singleton clusters: %v", assign)
	}
	if inertia > 1e-12 {
		t.Fatalf("k=n inertia = %v", inertia)
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	assign, _, err := KMeans(x, 2, KMeansOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 4 {
		t.Fatalf("assign len %d", len(assign))
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, _, err := KMeans([][]float64{{1}}, 0, KMeansOptions{}); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, _, err := KMeans([][]float64{{1}}, 2, KMeansOptions{}); err == nil {
		t.Fatal("accepted k>n")
	}
	assign, inertia, err := KMeans(nil, 3, KMeansOptions{})
	if err != nil || len(assign) != 0 || inertia != 0 {
		t.Fatal("empty input should return empty assignment")
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, _ := gaussBlobs(rng, 3, 20, 3, 1)
	a, _, _ := KMeans(x, 3, KMeansOptions{Seed: 7})
	b, _, _ := KMeans(x, 3, KMeansOptions{Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestNormalizeRowsUnit(t *testing.T) {
	x := [][]float64{{3, 4}, {0, 0}, {-2, 0}}
	NormalizeRowsUnit(x)
	if math.Abs(x[0][0]-0.6) > 1e-12 || math.Abs(x[0][1]-0.8) > 1e-12 {
		t.Fatalf("row 0 = %v", x[0])
	}
	if x[1][0] != 0 || x[1][1] != 0 {
		t.Fatalf("zero row modified: %v", x[1])
	}
	if math.Abs(x[2][0]+1) > 1e-12 {
		t.Fatalf("row 2 = %v", x[2])
	}
}
