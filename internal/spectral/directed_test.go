package spectral

import (
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

// directedBlocks builds k directed blocks: dense random directed edges
// inside each block, sparse across.
func directedBlocks(rng *rand.Rand, k, sz int, pin, pout float64) (*matrix.CSR, []int) {
	n := k * sz
	truth := make([]int, n)
	for i := range truth {
		truth[i] = i / sz
	}
	b := matrix.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			p := pout
			if truth[i] == truth[j] {
				p = pin
			}
			if rng.Float64() < p {
				b.Add(i, j, 1)
			}
		}
	}
	return b.Build(), truth
}

func clusterPurity(assign, truth []int, k int) float64 {
	// For each true block, the fraction captured by its majority
	// cluster, averaged.
	blocks := map[int][]int{}
	for i, tc := range truth {
		blocks[tc] = append(blocks[tc], assign[i])
	}
	var total float64
	for _, members := range blocks {
		counts := map[int]int{}
		for _, a := range members {
			counts[a]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		total += float64(best) / float64(len(members))
	}
	return total / float64(len(blocks))
}

func TestBestWCutRecoversDirectedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, truth := directedBlocks(rng, 3, 30, 0.3, 0.01)
	res, err := BestWCut(a, 3, BestWCutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p := clusterPurity(res.Assign, truth, 3); p < 0.9 {
		t.Fatalf("purity %v too low", p)
	}
	if len(res.Eigenvalues) != 3 {
		t.Fatalf("eigenvalues %v", res.Eigenvalues)
	}
}

func TestBestWCutDegreeWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, truth := directedBlocks(rng, 3, 25, 0.3, 0.01)
	res, err := BestWCut(a, 3, BestWCutOptions{Weighting: DegreeWeights})
	if err != nil {
		t.Fatal(err)
	}
	if p := clusterPurity(res.Assign, truth, 3); p < 0.85 {
		t.Fatalf("purity %v too low", p)
	}
}

func TestBestWCutErrors(t *testing.T) {
	if _, err := BestWCut(matrix.Zero(2, 3), 2, BestWCutOptions{}); err == nil {
		t.Fatal("accepted non-square")
	}
	if _, err := BestWCut(matrix.Zero(3, 3), 0, BestWCutOptions{}); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := BestWCut(matrix.Zero(3, 3), 7, BestWCutOptions{}); err == nil {
		t.Fatal("accepted k>n")
	}
	res, err := BestWCut(matrix.Zero(0, 0), 2, BestWCutOptions{})
	if err != nil || len(res.Assign) != 0 {
		t.Fatal("empty graph should return empty result")
	}
}

func TestZhouDirectedRecoversBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, truth := directedBlocks(rng, 3, 30, 0.3, 0.01)
	res, err := ZhouDirected(a, 3, ZhouOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p := clusterPurity(res.Assign, truth, 3); p < 0.9 {
		t.Fatalf("purity %v too low", p)
	}
}

func TestZhouDirectedErrors(t *testing.T) {
	if _, err := ZhouDirected(matrix.Zero(2, 3), 2, ZhouOptions{}); err == nil {
		t.Fatal("accepted non-square")
	}
	if _, err := ZhouDirected(matrix.Zero(3, 3), 0, ZhouOptions{}); err == nil {
		t.Fatal("accepted k=0")
	}
}

func TestDirectedSpectralMissFigure1Pattern(t *testing.T) {
	// The paper's core argument (§2.1.1): clusters defined by shared
	// in/out-links without interlinkage have a HIGH directed ncut, so
	// ncut-minimising spectral methods do not recover them reliably. We
	// verify the premise numerically: the {4,5} group of Figure 1 has a
	// directed ncut close to the worst case (every walk step leaves the
	// group).
	b := matrix.NewBuilder(6, 6)
	for _, src := range []int{0, 1} {
		for _, dst := range []int{4, 5} {
			b.Add(src, dst, 1)
		}
	}
	for _, src := range []int{4, 5} {
		for _, dst := range []int{2, 3} {
			b.Add(src, dst, 1)
		}
	}
	a := b.Build()
	// Directed ncut of S = {4,5} under the teleported walk: compute
	// from first principles.
	// All out-edges of 4 and 5 leave S; all in-edges of 4,5 come from
	// outside. The ncut must therefore be near its maximum (≈ 2 without
	// teleport smoothing). Anything above 1 confirms "high".
	pi := mustPageRank(t, a)
	p := mustTransition(a)
	var cutOut, cutIn, volS, volSbar float64
	inS := []bool{false, false, false, false, true, true}
	for i := 0; i < 6; i++ {
		if inS[i] {
			volS += pi[i]
		} else {
			volSbar += pi[i]
		}
		cols, vals := p.Row(i)
		for k, c := range cols {
			if inS[i] && !inS[c] {
				cutOut += pi[i] * vals[k]
			}
			if !inS[i] && inS[c] {
				cutIn += pi[i] * vals[k]
			}
		}
	}
	ncut := cutOut/volS + cutIn/volSbar
	if ncut < 1 {
		t.Fatalf("Figure-1 cluster directed ncut %v unexpectedly low", ncut)
	}
}

func mustPageRank(t *testing.T, a *matrix.CSR) []float64 {
	t.Helper()
	pi, err := pageRankForTest(a)
	if err != nil {
		t.Fatal(err)
	}
	return pi
}
