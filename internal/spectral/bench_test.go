package spectral

import (
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

func benchSym(n, avgDeg int) *matrix.CSR {
	rng := rand.New(rand.NewSource(5))
	b := matrix.NewBuilder(n, n)
	for e := 0; e < n*avgDeg/2; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.Add(u, v, 1)
		b.Add(v, u, 1)
	}
	return b.Build()
}

func BenchmarkLanczosTop10(b *testing.B) {
	m := benchSym(3000, 10)
	op := Operator(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TopEigen(op, 10, LanczosOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseEigenN300(b *testing.B) {
	m := benchSym(300, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DenseEigen(m, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := make([][]float64, 5000)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64() + float64(i%5)*3}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := KMeans(x, 5, KMeansOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestWCutLanczos(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	a, _ := directedBlocks(rng, 5, 100, 0.1, 0.005)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BestWCut(a, 5, BestWCutOptions{
			KMeans:  KMeansOptions{Seed: int64(i)},
			Lanczos: LanczosOptions{Seed: int64(i)},
		}); err != nil {
			b.Fatal(err)
		}
	}
}
