// Package spectral implements the eigenvector-based clustering
// substrate: a symmetric Lanczos eigensolver with full
// reorthogonalisation, an implicit-shift QL eigensolver for symmetric
// tridiagonal matrices, k-means++ for embedding rows, and the two
// directed spectral baselines the paper compares against — BestWCut
// (Meila & Pentney, SDM 2007) and the directed-Laplacian method of
// Zhou, Huang & Schölkopf (ICML 2005).
package spectral

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"symcluster/internal/faultinject"
	"symcluster/internal/matrix"
	"symcluster/internal/obs"
)

// tql2 computes all eigenvalues and eigenvectors of a symmetric
// tridiagonal matrix with diagonal d and sub-diagonal e (e[0] unused),
// using the implicit-shift QL algorithm (EISPACK tql2). On return d
// holds the eigenvalues in ascending order and z the eigenvectors as
// columns (z[i][j] = component i of eigenvector j). z must come in as
// the identity (or an orthogonal basis to rotate).
func tql2(d, e []float64, z [][]float64) error {
	n := len(d)
	if n == 0 {
		return nil
	}
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	for l := 0; l < n; l++ {
		iter := 0
		for {
			// Find a small off-diagonal element to split at.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-15*dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > 50 {
				return fmt.Errorf("spectral: tql2 failed to converge at eigenvalue %d", l)
			}
			// Implicit shift.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			sgn := 1.0
			if g < 0 {
				sgn = -1
			}
			g = d[m] - d[l] + e[l]/(g+sgn*r)
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					f := z[k][i+1]
					z[k][i+1] = s*z[k][i] + c*f
					z[k][i] = c*z[k][i] - s*f
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	// Sort eigenvalues (and vectors) ascending.
	for i := 0; i < n-1; i++ {
		k := i
		for j := i + 1; j < n; j++ {
			if d[j] < d[k] {
				k = j
			}
		}
		if k != i {
			d[i], d[k] = d[k], d[i]
			for r := 0; r < n; r++ {
				z[r][i], z[r][k] = z[r][k], z[r][i]
			}
		}
	}
	return nil
}

// MatVec abstracts the operator a Lanczos iteration multiplies by, so
// composite operators (shifted, normalised, implicitly symmetrized)
// need not be materialised.
type MatVec interface {
	Dim() int
	Apply(x []float64) []float64
}

// csrOp wraps a symmetric CSR matrix as a MatVec.
type csrOp struct{ m *matrix.CSR }

func (o csrOp) Dim() int                    { return o.m.Rows }
func (o csrOp) Apply(x []float64) []float64 { return o.m.MulVec(x) }

// Operator wraps a symmetric CSR matrix as a MatVec operator.
func Operator(m *matrix.CSR) MatVec {
	if m.Rows != m.Cols {
		panic("spectral: operator matrix not square")
	}
	return csrOp{m}
}

// FuncOperator adapts a function to MatVec.
type FuncOperator struct {
	N int
	F func(x []float64) []float64
}

// Dim returns the operator dimension.
func (f FuncOperator) Dim() int { return f.N }

// Apply applies the operator.
func (f FuncOperator) Apply(x []float64) []float64 { return f.F(x) }

// Eigen holds the output of the Lanczos solver: Values in descending
// order and the corresponding unit eigenvectors as Vectors[j] (each of
// length Dim).
type Eigen struct {
	Values  []float64
	Vectors [][]float64
}

// LanczosOptions configures TopEigen.
type LanczosOptions struct {
	// Steps is the Krylov subspace dimension. Defaults to
	// min(dim, max(2k+20, 40)).
	Steps int
	// Seed drives the random start vector.
	Seed int64
}

// TopEigen computes the k algebraically largest eigenpairs of the
// symmetric operator op using Lanczos with full reorthogonalisation.
// The operator must be symmetric; no check is possible through the
// MatVec interface, so callers are responsible.
func TopEigen(op MatVec, k int, opt LanczosOptions) (*Eigen, error) {
	return TopEigenCtx(context.Background(), op, k, opt)
}

// TopEigenCtx is TopEigen with cancellation: ctx is polled before each
// Lanczos step, so a cancelled context aborts the factorisation within
// one operator application with ctx's error. Each call opens a
// "spectral.lanczos" span and records per-step off-diagonal residuals
// and the final basis size through the obs hooks.
func TopEigenCtx(ctx context.Context, op MatVec, k int, opt LanczosOptions) (eig *Eigen, err error) {
	n := op.Dim()
	if k < 1 {
		return nil, fmt.Errorf("spectral: k = %d, want >= 1", k)
	}
	if k > n {
		return nil, fmt.Errorf("spectral: k = %d exceeds dimension %d", k, n)
	}
	steps := opt.Steps
	if steps <= 0 {
		steps = 2*k + 20
		if steps < 40 {
			steps = 40
		}
	}
	if steps > n {
		steps = n
	}
	if steps < k {
		steps = k
	}
	rng := rand.New(rand.NewSource(opt.Seed + 1))

	// Lanczos vectors, kept for full reorthogonalisation and Ritz
	// vector assembly.
	v := make([][]float64, 0, steps+1)
	var sp *obs.Span
	ctx, sp = obs.StartSpan(ctx, "spectral.lanczos",
		obs.A("dim", n), obs.A("k", k), obs.A("max_steps", steps))
	defer func() {
		sp.SetAttr("basis_size", len(v))
		sp.EndErr(err)
		obs.ObserveLanczosRun(ctx, len(v))
	}()
	alpha := make([]float64, 0, steps)
	beta := make([]float64, 0, steps) // beta[i] links v[i] and v[i+1]

	q := randomUnit(rng, n)
	v = append(v, q)
	var prev []float64
	var prevBeta float64

	for j := 0; j < steps; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faultinject.Fire("spectral.lanczos"); err != nil {
			return nil, fmt.Errorf("spectral: %w", err)
		}
		w := op.Apply(v[j])
		if prev != nil {
			axpy(w, prev, -prevBeta)
		}
		a := dot(w, v[j])
		alpha = append(alpha, a)
		axpy(w, v[j], -a)
		// Full reorthogonalisation (twice for stability).
		for pass := 0; pass < 2; pass++ {
			for _, u := range v {
				axpy(w, u, -dot(w, u))
			}
		}
		b := norm(w)
		obs.ObserveLanczosStep(ctx, b)
		if j == steps-1 {
			break
		}
		if b < 1e-12 {
			// Invariant subspace found; restart with a fresh random
			// direction orthogonal to everything so far. The new vector
			// is uncoupled from the previous one, so the tridiagonal
			// off-diagonal entry must be zero.
			w = randomUnit(rng, n)
			for pass := 0; pass < 2; pass++ {
				for _, u := range v {
					axpy(w, u, -dot(w, u))
				}
			}
			nb := norm(w)
			if nb < 1e-12 {
				break // space exhausted (n small)
			}
			scale(w, 1/nb)
			beta = append(beta, 0)
			prev = nil
			prevBeta = 0
			v = append(v, w)
			continue
		}
		scale(w, 1/b)
		beta = append(beta, b)
		prev = v[j]
		prevBeta = b
		v = append(v, w)
	}

	m := len(alpha)
	if m < k {
		return nil, fmt.Errorf("spectral: Krylov space dimension %d below k=%d", m, k)
	}
	// Solve the tridiagonal eigenproblem.
	d := append([]float64(nil), alpha...)
	e := make([]float64, m)
	for i := 1; i < m; i++ {
		e[i] = beta[i-1]
	}
	z := make([][]float64, m)
	for i := range z {
		z[i] = make([]float64, m)
		z[i][i] = 1
	}
	if err := tql2(d, e, z); err != nil {
		return nil, err
	}

	// Assemble the top-k Ritz vectors (eigenvalues ascending → take the
	// last k, reversed to descending).
	out := &Eigen{
		Values:  make([]float64, k),
		Vectors: make([][]float64, k),
	}
	for t := 0; t < k; t++ {
		col := m - 1 - t
		out.Values[t] = d[col]
		vec := make([]float64, n)
		for i := 0; i < m; i++ {
			if z[i][col] != 0 {
				axpy(vec, v[i], z[i][col])
			}
		}
		// Normalise (reorthogonalisation keeps this near 1 already).
		if nv := norm(vec); nv > 0 {
			scale(vec, 1/nv)
		}
		out.Vectors[t] = vec
	}
	return out, nil
}

func randomUnit(rng *rand.Rand, n int) []float64 {
	q := make([]float64, n)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	scale(q, 1/norm(q))
	return q
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func axpy(y, x []float64, alpha float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

func scale(a []float64, s float64) {
	for i := range a {
		a[i] *= s
	}
}
