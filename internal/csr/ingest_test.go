package csr

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"symcluster/internal/graph"
)

// genEdgeList builds a deterministic edge-list text with integer
// weights (exactly representable, so duplicate-summing order cannot
// change the result), duplicate edges, comments and blank lines.
func genEdgeList(nodes, edges int, seed uint64) string {
	var sb strings.Builder
	sb.WriteString("# generated test graph\n\n")
	x := seed
	next := func(n int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return int((x >> 33) % uint64(n))
	}
	for e := 0; e < edges; e++ {
		u, v := next(nodes), next(nodes)
		w := next(9) + 1
		fmt.Fprintf(&sb, "%d %d %d\n", u, v, w)
		if next(5) == 0 { // duplicate to exercise summing
			fmt.Fprintf(&sb, "%d %d %d\n", u, v, next(3)+1)
		}
	}
	return sb.String()
}

// ingestText runs text through an Ingester, splitting it into chunks
// of the given size, and returns the finalized file's view.
func ingestText(t *testing.T, text string, chunk int, budget int64) (*Mapped, *IngestInfo) {
	t.Helper()
	dir := t.TempDir()
	in, err := NewIngester(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(text)
	for len(data) > 0 {
		n := chunk
		if n > len(data) {
			n = len(data)
		}
		if err := in.Append(data[:n]); err != nil {
			in.Abort()
			t.Fatalf("Append: %v", err)
		}
		data = data[n:]
	}
	dst := filepath.Join(dir, "g.csr")
	info, err := in.Finalize(context.Background(), dst)
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	mp, err := Open(context.Background(), dst)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { mp.Close() })
	return mp, info
}

func TestIngestMatchesReadEdgeList(t *testing.T) {
	// Enough records to overflow the sorter's 4096-triplet floor several
	// times, so the tiny budget below forces multiple spill runs.
	text := genEdgeList(200, 12000, 42)
	want, err := graph.ReadEdgeList(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	// Chunk sizes that split lines mid-token, and a spill budget so
	// small the sorter writes many runs.
	for _, chunk := range []int{1 << 20, 4096, 37, 1} {
		t.Run(fmt.Sprintf("chunk-%d", chunk), func(t *testing.T) {
			if chunk == 1 && testing.Short() {
				t.Skip("byte-at-a-time is slow")
			}
			mp, info := ingestText(t, text, chunk, 1)
			if info.SpillRuns == 0 {
				t.Fatal("tiny budget produced no spill runs; merge path untested")
			}
			sameMatrix(t, want.Adj, mp.View())
			g, err := graph.NewDirected(mp.View(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if got, wantFP := g.Fingerprint(), want.Fingerprint(); got != wantFP {
				t.Fatalf("fingerprint %x, want %x", got, wantFP)
			}
		})
	}
}

func TestIngestInMemoryPath(t *testing.T) {
	// Large budget: no spills, pure in-memory sort + merge with the tail.
	text := genEdgeList(80, 400, 7)
	want, err := graph.ReadEdgeList(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	mp, info := ingestText(t, text, 1<<20, 64<<20)
	if info.SpillRuns != 0 {
		t.Fatalf("unexpected spills: %d", info.SpillRuns)
	}
	sameMatrix(t, want.Adj, mp.View())
}

func TestIngestTrailingLineWithoutNewline(t *testing.T) {
	text := "0 1 2\n1 2 3" // no trailing newline
	mp, info := ingestText(t, text, 1<<20, 64<<20)
	if info.Edges != 2 || info.NNZ != 2 {
		t.Fatalf("edges=%d nnz=%d, want 2/2", info.Edges, info.NNZ)
	}
	if got := mp.View().At(1, 2); got != 3 {
		t.Fatalf("At(1,2) = %v, want 3", got)
	}
}

func TestIngestRejectsBadInput(t *testing.T) {
	for _, tc := range []struct{ name, text string }{
		{"negative-id", "0 -1\n"},
		{"non-numeric", "a b\n"},
		{"bad-weight", "0 1 nan\n"},
		{"too-many-fields", "0 1 2 3\n"},
		{"sparse-ids", "0 999999999\n"},
		{"empty", "# only comments\n\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			in, err := NewIngester(dir, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			defer in.Abort()
			aerr := in.Append([]byte(tc.text))
			if aerr != nil {
				return // rejected at parse time: fine
			}
			if _, err := in.Finalize(context.Background(), filepath.Join(dir, "g.csr")); err == nil {
				t.Fatal("bad input accepted")
			}
		})
	}
}

func TestIngestZeroWeightCancellation(t *testing.T) {
	// Edges whose weights sum to exactly zero (explicit zero weights are
	// legal) are dropped, matching the in-memory builder.
	text := "0 1 0\n0 1 0\n1 0 1\n"
	want, err := graph.ReadEdgeList(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	mp, _ := ingestText(t, text, 1<<20, 64<<20)
	sameMatrix(t, want.Adj, mp.View())
	if mp.View().NNZ() != 1 {
		t.Fatalf("nnz = %d, want 1 (cancelled edge kept)", mp.View().NNZ())
	}
}
