package csr

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"

	"symcluster/internal/matrix"
	"symcluster/internal/obs"
)

// mappedBytes is the process-wide gauge of bytes currently
// memory-mapped through Open, surfaced as symclusterd_csr_mapped_bytes.
var mappedBytes atomic.Int64

// MappedBytes reports the bytes of graph data currently memory-mapped
// by this process.
func MappedBytes() int64 { return mappedBytes.Load() }

// Mapped is an open binary CSR file. On little-endian hosts with mmap
// support the matrix View aliases the mapped file directly: reading a
// row touches file-backed pages the OS loads on demand and evicts
// under pressure, so arbitrarily large graphs cost bounded resident
// memory. Close unmaps; the View (and every row slice taken from it)
// is invalid afterwards.
type Mapped struct {
	path string
	data []byte // nil when the fallback decode copied to the heap
	m    *matrix.CSR
	size int64
}

// Open maps (or, on unsupported platforms, reads) the binary CSR file
// at path, verifying its CRCs and structural invariants. It opens a
// "csr.mmap" span and records the mapped size.
func Open(ctx context.Context, path string) (mp *Mapped, err error) {
	_, sp := obs.StartSpan(ctx, "csr.mmap", obs.A("file", filepath.Base(path)))
	defer func() { sp.EndErr(err) }()

	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("csr: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("csr: %w", err)
	}
	size := st.Size()
	if size < headerSize {
		return nil, fmt.Errorf("%w: %s is %d bytes, shorter than the %d-byte header", ErrFormat, path, size, headerSize)
	}
	if size > int64(math.MaxInt) {
		return nil, fmt.Errorf("%w: %s is too large to map on this platform", ErrFormat, path)
	}

	if mmapSupported && hostLittleEndian {
		data, merr := mmapFile(f, size)
		if merr != nil {
			return nil, fmt.Errorf("csr: mapping %s: %w", path, merr)
		}
		m, derr := Decode(data)
		if derr != nil {
			munmapFile(data)
			return nil, fmt.Errorf("csr: %s: %w", path, derr)
		}
		mappedBytes.Add(size)
		sp.SetAttr("bytes", size)
		sp.SetAttr("zero_copy", true)
		obs.ObserveCSRMap(ctx, size)
		return &Mapped{path: path, data: data, m: m, size: size}, nil
	}

	// Fallback: no mmap or a big-endian host. Correct, but the graph is
	// resident; documented degradation, not an error.
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("csr: %w", err)
	}
	m, derr := Decode(data)
	if derr != nil {
		return nil, fmt.Errorf("csr: %s: %w", path, derr)
	}
	if hostLittleEndian {
		// The decode zero-copied over the heap buffer; keep it alive via m.
		data = nil
	}
	sp.SetAttr("bytes", size)
	sp.SetAttr("zero_copy", false)
	obs.ObserveCSRMap(ctx, size)
	return &Mapped{path: path, m: m, size: size}, nil
}

// View returns the matrix backed by the mapped file. The view and any
// row slices taken from it are invalidated by Close.
func (mp *Mapped) View() *matrix.CSR { return mp.m }

// Path returns the file backing this mapping.
func (mp *Mapped) Path() string { return mp.path }

// Bytes returns the mapped file size.
func (mp *Mapped) Bytes() int64 { return mp.size }

// Close unmaps the file. Safe to call twice.
func (mp *Mapped) Close() error {
	if mp.data == nil {
		return nil
	}
	data := mp.data
	mp.data = nil
	mp.m = nil
	mappedBytes.Add(-mp.size)
	return munmapFile(data)
}
