package csr

import (
	"context"
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"symcluster/internal/matrix"
)

// testMatrix builds a deterministic sparse matrix with rows×cols shape,
// ~density nonzeros per row, empty rows sprinkled in, and non-integer
// values.
func testMatrix(t *testing.T, rows, cols, perRow int, seed uint64) *matrix.CSR {
	t.Helper()
	b := matrix.NewBuilder(rows, cols)
	x := seed
	next := func(n int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return int((x >> 33) % uint64(n))
	}
	for i := 0; i < rows; i++ {
		if next(7) == 0 {
			continue // empty row
		}
		for k := 0; k < perRow; k++ {
			c := next(cols)
			v := float64(next(1000)+1) / 7.0
			b.Add(i, c, v)
		}
	}
	return b.Build()
}

func sameMatrix(t *testing.T, want, got *matrix.CSR) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	if want.NNZ() != got.NNZ() {
		t.Fatalf("nnz %d, want %d", got.NNZ(), want.NNZ())
	}
	for i := range want.RowPtr {
		if want.RowPtr[i] != got.RowPtr[i] {
			t.Fatalf("RowPtr[%d] = %d, want %d", i, got.RowPtr[i], want.RowPtr[i])
		}
	}
	for k := range want.ColIdx {
		if want.ColIdx[k] != got.ColIdx[k] {
			t.Fatalf("ColIdx[%d] = %d, want %d", k, got.ColIdx[k], want.ColIdx[k])
		}
		if math.Float64bits(want.Val[k]) != math.Float64bits(got.Val[k]) {
			t.Fatalf("Val[%d] = %v, want %v (not bit-identical)", k, got.Val[k], want.Val[k])
		}
	}
}

func writeAndOpen(t *testing.T, m *matrix.CSR) (*Mapped, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.csr")
	if err := WriteMatrix(context.Background(), path, m); err != nil {
		t.Fatalf("WriteMatrix: %v", err)
	}
	mp, err := Open(context.Background(), path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { mp.Close() })
	return mp, path
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *matrix.CSR
	}{
		{"dense-ish", testMatrix(t, 50, 50, 8, 1)},
		{"rectangular", testMatrix(t, 31, 77, 4, 2)},
		{"single", testMatrix(t, 1, 1, 1, 3)},
		{"empty-rows", &matrix.CSR{Rows: 5, Cols: 5, RowPtr: make([]int64, 6)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mp, _ := writeAndOpen(t, tc.m)
			sameMatrix(t, tc.m, mp.View())
		})
	}
}

func TestRoundTripKernelsWork(t *testing.T) {
	// The whole point of the mapped view: existing kernels consume it
	// unchanged and produce bit-identical results.
	m := testMatrix(t, 60, 60, 6, 9)
	mp, _ := writeAndOpen(t, m)
	v := mp.View()

	wantT := m.Transpose()
	gotT := v.Transpose()
	sameMatrix(t, wantT, gotT)

	want, err := matrix.MulPrunedCtx(context.Background(), m, wantT, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	got, err := matrix.MulPrunedCtx(context.Background(), v, gotT, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sameMatrix(t, want, got)
}

func TestMappedBytesGauge(t *testing.T) {
	before := MappedBytes()
	m := testMatrix(t, 40, 40, 5, 4)
	mp, _ := writeAndOpen(t, m)
	if mmapSupported && hostLittleEndian {
		if MappedBytes() != before+mp.Bytes() {
			t.Fatalf("gauge %d after open, want %d", MappedBytes(), before+mp.Bytes())
		}
	}
	mp.Close()
	mp.Close() // idempotent
	if MappedBytes() != before {
		t.Fatalf("gauge %d after close, want %d", MappedBytes(), before)
	}
}

func TestWriterRejectsBadAppends(t *testing.T) {
	dir := t.TempDir()
	newW := func() *Writer {
		w, err := NewWriter(filepath.Join(dir, "w.csr"), 4, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	w := newW()
	if err := w.Append(2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, 0, 1); err == nil {
		t.Fatal("row going backwards not rejected")
	}
	w.Abort()

	w = newW()
	w.Append(0, 2, 1)
	if err := w.Append(0, 2, 1); err == nil {
		t.Fatal("duplicate column not rejected")
	}
	w.Abort()

	w = newW()
	if err := w.Append(0, 5, 1); err == nil {
		t.Fatal("out-of-range column not rejected")
	}
	w.Abort()

	w = newW()
	w.Append(0, 0, 1)
	if err := w.Close(context.Background()); err == nil {
		t.Fatal("Close with missing entries not rejected")
	}
	if _, err := os.Stat(filepath.Join(dir, "w.csr")); !os.IsNotExist(err) {
		t.Fatal("failed Close left a destination file behind")
	}
}

// corrupt opens a valid file's bytes, applies f, and expects Decode to
// reject the result.
func corrupt(t *testing.T, name string, f func(data []byte) []byte) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		m := testMatrix(t, 20, 20, 4, 7)
		path := filepath.Join(t.TempDir(), "m.csr")
		if err := WriteMatrix(context.Background(), path, m); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mutated := f(append([]byte(nil), data...))
		if _, err := Decode(mutated); err == nil {
			t.Fatalf("Decode accepted corrupted input")
		}
	})
}

func TestDecodeRejectsCorruption(t *testing.T) {
	corrupt(t, "bad-magic", func(d []byte) []byte { d[0] ^= 0xff; return d })
	corrupt(t, "bad-version", func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[4:8], 99)
		return d
	})
	corrupt(t, "truncated-header", func(d []byte) []byte { return d[:headerSize-1] })
	corrupt(t, "truncated-body", func(d []byte) []byte { return d[:len(d)-1] })
	corrupt(t, "trailing-garbage", func(d []byte) []byte { return append(d, 0) })
	corrupt(t, "header-crc", func(d []byte) []byte {
		// Flip a count without fixing the header CRC.
		d[8] ^= 1
		return d
	})
	corrupt(t, "rowptr-bitflip", func(d []byte) []byte { d[headerSize] ^= 1; return d })
	corrupt(t, "colidx-bitflip", func(d []byte) []byte {
		nnz := int64(binary.LittleEndian.Uint64(d[24:32]))
		l, _ := layoutFor(20, 20, nnz)
		d[l.colIdxOff] ^= 1
		return d
	})
	corrupt(t, "val-bitflip", func(d []byte) []byte { d[len(d)-1] ^= 0x80; return d })
	corrupt(t, "reserved-nonzero", func(d []byte) []byte { d[50] = 1; return d })
}

func TestDecodeHostileCounts(t *testing.T) {
	// A header claiming absurd counts must fail before any allocation
	// sized by them: layoutFor's bounds reject first.
	var h [headerSize]byte
	copy(h[0:4], Magic)
	binary.LittleEndian.PutUint32(h[4:8], Version)
	binary.LittleEndian.PutUint64(h[8:16], 1<<50)  // rows
	binary.LittleEndian.PutUint64(h[16:24], 1<<50) // cols
	binary.LittleEndian.PutUint64(h[24:32], 1<<60) // nnz
	// Stamp a valid header CRC so the counts are actually reached.
	hdr := encodeHeaderRaw(h)
	if _, err := Decode(hdr[:]); err == nil {
		t.Fatal("hostile counts accepted")
	}
}

func TestTransposeToFile(t *testing.T) {
	m := testMatrix(t, 45, 30, 5, 11)
	dir := t.TempDir()
	dst := filepath.Join(dir, "t.csr")
	// Tiny budget to force spill runs through the merge path.
	if err := TransposeToFile(context.Background(), m, dir, dst, 1); err != nil {
		t.Fatal(err)
	}
	mp, err := Open(context.Background(), dst)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	sameMatrix(t, m.Transpose(), mp.View())
}

func TestAugmentIdentityToFile(t *testing.T) {
	m := testMatrix(t, 30, 30, 4, 17)
	// Force one diagonal that cancels to exactly zero and one that sums.
	b := matrix.NewBuilder(30, 30)
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			b.Add(i, int(c), vals[k])
		}
	}
	b.Add(3, 3, -1)
	b.Add(4, 4, 2.5)
	m = b.Build()

	dst := filepath.Join(t.TempDir(), "i.csr")
	if err := AugmentIdentityToFile(context.Background(), m, dst); err != nil {
		t.Fatal(err)
	}
	mp, err := Open(context.Background(), dst)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	sameMatrix(t, m.AddIdentity(), mp.View())
}

// encodeHeaderRaw stamps the header CRC over arbitrary header bytes so
// tests can craft hostile-but-CRC-valid headers.
func encodeHeaderRaw(h [headerSize]byte) [headerSize]byte {
	binary.LittleEndian.PutUint32(h[44:48], crc32.ChecksumIEEE(h[:44]))
	return h
}
