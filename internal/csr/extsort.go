package csr

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// triplet is one (row, col, value) record of the external sorter. 16
// bytes on disk: row u32 | col u32 | value f64, little-endian.
type triplet struct {
	r, c int32
	v    float64
}

const tripletBytes = 16

// extSorter sorts a stream of triplets by (row, col) in bounded
// memory: adds accumulate in a buffer that spills to sorted run files
// when full, and each() k-way-merges the runs plus the in-memory tail.
//
// Duplicate coordinates are preserved (never combined inside a run) in
// their arrival order — the stable spill sort plus the run-ordered
// merge replay them to the consumer exactly as they were added, so a
// summing consumer reproduces the in-memory Builder's left-to-right
// accumulation order.
type extSorter struct {
	dir     string
	limit   int // buffered triplets before a spill
	buf     []triplet
	sorted  bool
	runs    []string
	spills  int64
	merged  int64 // bytes streamed through the merge so far
	scratch []byte
}

// newExtSorter sorts under dir (which must exist) with roughly
// budgetBytes of buffered triplets (minimum 64 KiB).
func newExtSorter(dir string, budgetBytes int64) *extSorter {
	limit := int(budgetBytes / tripletBytes)
	if limit < 4096 {
		limit = 4096
	}
	// Allocate the full buffer once: growing it incrementally would
	// cumulatively allocate ~5x the budget in discarded copies.
	return &extSorter{dir: dir, limit: limit, buf: make([]triplet, 0, limit)}
}

// add buffers one triplet, spilling a sorted run when the buffer is
// full.
func (s *extSorter) add(t triplet) error {
	s.buf = append(s.buf, t)
	s.sorted = false
	if len(s.buf) >= s.limit {
		return s.spill()
	}
	return nil
}

// sortBuf stably sorts the buffer by (row, col), preserving arrival
// order of duplicates.
func (s *extSorter) sortBuf() {
	if s.sorted {
		return
	}
	sort.SliceStable(s.buf, func(i, j int) bool {
		if s.buf[i].r != s.buf[j].r {
			return s.buf[i].r < s.buf[j].r
		}
		return s.buf[i].c < s.buf[j].c
	})
	s.sorted = true
}

// spill writes the sorted buffer as one run file and resets it.
func (s *extSorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	s.sortBuf()
	path := filepath.Join(s.dir, fmt.Sprintf("run-%06d", len(s.runs)))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("csr: spilling run: %w", err)
	}
	bw := bufio.NewWriterSize(f, 256*1024)
	var b [tripletBytes]byte
	for _, t := range s.buf {
		binary.LittleEndian.PutUint32(b[0:4], uint32(t.r))
		binary.LittleEndian.PutUint32(b[4:8], uint32(t.c))
		binary.LittleEndian.PutUint64(b[8:16], math.Float64bits(t.v))
		if _, err := bw.Write(b[:]); err != nil {
			f.Close()
			return fmt.Errorf("csr: spilling run: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("csr: spilling run: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("csr: spilling run: %w", err)
	}
	s.runs = append(s.runs, path)
	s.spills++
	s.buf = s.buf[:0]
	s.sorted = false
	return nil
}

// runReader streams one run file (or the in-memory tail) during a
// merge.
type runReader struct {
	f    *os.File
	br   *bufio.Reader
	mem  []triplet // in-memory tail, when f is nil
	pos  int
	cur  triplet
	done bool
	seq  int // temporal order for stable duplicate replay
	// rec is the read buffer — a field because a local passed to the
	// io.Reader interface escapes, costing an allocation per record.
	rec [tripletBytes]byte
}

func (r *runReader) next() (bool, error) {
	if r.f == nil {
		if r.pos >= len(r.mem) {
			r.done = true
			return false, nil
		}
		r.cur = r.mem[r.pos]
		r.pos++
		return true, nil
	}
	b := &r.rec
	if _, err := io.ReadFull(r.br, b[:]); err != nil {
		if err == io.EOF {
			r.done = true
			return false, nil
		}
		return false, fmt.Errorf("csr: reading run: %w", err)
	}
	r.cur = triplet{
		r: int32(binary.LittleEndian.Uint32(b[0:4])),
		c: int32(binary.LittleEndian.Uint32(b[4:8])),
		v: math.Float64frombits(binary.LittleEndian.Uint64(b[8:16])),
	}
	return true, nil
}

// runHeap orders readers by (row, col, seq): equal coordinates pop in
// run-creation order, which is arrival order.
type runHeap []*runReader

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.cur.r != b.cur.r {
		return a.cur.r < b.cur.r
	}
	if a.cur.c != b.cur.c {
		return a.cur.c < b.cur.c
	}
	return a.seq < b.seq
}
func (h runHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.(*runReader)) }
func (h *runHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// each merges the runs and the in-memory tail, calling fn for every
// triplet in (row, col, arrival) order. It may be called more than
// once (run files are re-read); the caller must not add concurrently.
func (s *extSorter) each(fn func(t triplet) error) (err error) {
	s.sortBuf()
	h := make(runHeap, 0, len(s.runs)+1)
	defer func() {
		for _, r := range h {
			if r.f != nil {
				r.f.Close()
			}
		}
	}()
	for i, path := range s.runs {
		f, oerr := os.Open(path)
		if oerr != nil {
			return fmt.Errorf("csr: reopening run: %w", oerr)
		}
		h = append(h, &runReader{f: f, br: bufio.NewReaderSize(f, 256*1024), seq: i})
	}
	h = append(h, &runReader{mem: s.buf, seq: len(s.runs)})
	live := h[:0:0]
	for _, r := range h {
		ok, nerr := r.next()
		if nerr != nil {
			return nerr
		}
		if ok {
			live = append(live, r)
		} else if r.f != nil {
			r.f.Close()
			r.f = nil
		}
	}
	h = live
	heap.Init(&h)
	for h.Len() > 0 {
		r := h[0]
		if err := fn(r.cur); err != nil {
			return err
		}
		s.merged += tripletBytes
		ok, nerr := r.next()
		if nerr != nil {
			return nerr
		}
		if ok {
			heap.Fix(&h, 0)
		} else {
			if r.f != nil {
				r.f.Close()
				r.f = nil
			}
			heap.Pop(&h)
		}
	}
	return nil
}

// eachSummed merges like each but groups duplicate (row, col)
// coordinates, summing their values in arrival order and dropping
// groups that sum to exactly zero — the in-memory Builder's semantics.
func (s *extSorter) eachSummed(fn func(t triplet) error) error {
	var cur triplet
	have := false
	flush := func() error {
		if !have || cur.v == 0 {
			have = false
			return nil
		}
		have = false
		return fn(cur)
	}
	if err := s.each(func(t triplet) error {
		if have && t.r == cur.r && t.c == cur.c {
			cur.v += t.v
			return nil
		}
		if err := flush(); err != nil {
			return err
		}
		cur = t
		have = true
		return nil
	}); err != nil {
		return err
	}
	return flush()
}

// stats reports the spill-run count and merged byte volume so far.
func (s *extSorter) stats() (spills, mergedBytes int64) { return s.spills, s.merged }

// cleanup removes the run files.
func (s *extSorter) cleanup() {
	for _, path := range s.runs {
		os.Remove(path)
	}
	s.runs = nil
	s.buf = nil
}
