// Package csr is the out-of-core graph store: a versioned binary
// on-disk CSR format with an mmap-backed zero-copy reader, plus
// external-sort streaming ingestion that builds the file from chunked
// edge-list input in bounded memory.
//
// # On-disk format (version 1, DESIGN.md §13)
//
// A .csr file is a 64-byte header followed by three sections, each
// 8-byte aligned, all little-endian:
//
//	offset  size        field
//	0       4           magic "SCSR"
//	4       4           format version (uint32, currently 1)
//	8       8           rows (uint64)
//	16      8           cols (uint64)
//	24      8           nnz (uint64)
//	32      4           CRC32-IEEE of the row-pointer section
//	36      4           CRC32-IEEE of the column-index section
//	40      4           CRC32-IEEE of the value section
//	44      4           CRC32-IEEE of header bytes [0, 44)
//	48      16          reserved, must be zero
//	64      8·(rows+1)  row pointers (int64)
//	...     4·nnz       column indices (int32), padded to 8 bytes
//	...     8·nnz       values (float64)
//
// Section CRCs cover exactly the section payload (padding excluded).
// Writers produce the file under a temporary name, fsync, and rename
// into place, so a crash leaves either the old file or the complete
// new one. Readers verify all four CRCs and the structural CSR
// invariants before returning a view, so a truncated, corrupted or
// hostile file yields an error — never a panic, never an
// over-allocation (every allocation is bounded by the actual file
// size, which is checked against the header's claimed layout first).
//
// # Zero-copy mapping
//
// On little-endian hosts the decoded sections are unsafe.Slice views
// directly over the mapped file, so a *matrix.CSR returned by
// Mapped.View costs no copy and no resident heap: the kernels stream
// file-backed pages that the OS evicts under memory pressure, which is
// what bounds peak RSS for out-of-core runs. On big-endian or
// mmap-less platforms Open falls back to reading and decoding the file
// into ordinary heap slices (correct, just not out-of-core).
//
// Fault injection: the "csr.write" site fires before a file is
// finalized and "csr.ingest" before an ingest merge begins.
package csr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"

	"symcluster/internal/matrix"
)

// Magic identifies a binary CSR file.
const Magic = "SCSR"

// Version is the current format version. Readers reject newer
// versions (forward compatibility is explicit, never guessed); any
// older version must keep decoding forever.
const Version = 1

// headerSize is the fixed header length in bytes.
const headerSize = 64

// maxCount bounds rows and nnz as claimed by a header. Far above any
// real graph, low enough that every layout computation below fits in
// int64 without overflow.
const maxCount = int64(1) << 40

// ErrFormat marks a file rejected by the decoder: wrong magic, bad
// version, corrupt CRC, truncation, or violated CSR invariants.
var ErrFormat = errors.New("csr: bad file format")

// hostLittleEndian reports whether this host stores integers
// little-endian, which is what gates the zero-copy view.
var hostLittleEndian = func() bool {
	var x uint16 = 0x0102
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// header is the decoded fixed header.
type header struct {
	version    uint32
	rows, cols int64
	nnz        int64
	crcRowPtr  uint32
	crcColIdx  uint32
	crcVal     uint32
}

// layout is the byte layout implied by (rows, nnz): section offsets
// and the total file size.
type layout struct {
	rowPtrOff, colIdxOff, valOff, total int64
}

// align8 rounds n up to the next multiple of 8.
func align8(n int64) int64 { return (n + 7) &^ 7 }

// layoutFor computes the section layout, rejecting dimension claims
// that are negative, absurd, or would overflow the arithmetic.
func layoutFor(rows, cols, nnz int64) (layout, error) {
	var l layout
	if rows < 0 || cols < 0 || nnz < 0 {
		return l, fmt.Errorf("%w: negative dimensions %dx%d nnz=%d", ErrFormat, rows, cols, nnz)
	}
	if rows > maxCount || nnz > maxCount {
		return l, fmt.Errorf("%w: dimensions %dx%d nnz=%d exceed format bounds", ErrFormat, rows, cols, nnz)
	}
	if cols > math.MaxInt32 {
		return l, fmt.Errorf("%w: %d columns exceed int32 index range", ErrFormat, cols)
	}
	l.rowPtrOff = headerSize
	l.colIdxOff = l.rowPtrOff + 8*(rows+1)
	l.valOff = align8(l.colIdxOff + 4*nnz)
	l.total = l.valOff + 8*nnz
	return l, nil
}

// encodeHeader renders the fixed header with its own CRC stamped.
func encodeHeader(h header) [headerSize]byte {
	var b [headerSize]byte
	copy(b[0:4], Magic)
	binary.LittleEndian.PutUint32(b[4:8], h.version)
	binary.LittleEndian.PutUint64(b[8:16], uint64(h.rows))
	binary.LittleEndian.PutUint64(b[16:24], uint64(h.cols))
	binary.LittleEndian.PutUint64(b[24:32], uint64(h.nnz))
	binary.LittleEndian.PutUint32(b[32:36], h.crcRowPtr)
	binary.LittleEndian.PutUint32(b[36:40], h.crcColIdx)
	binary.LittleEndian.PutUint32(b[40:44], h.crcVal)
	binary.LittleEndian.PutUint32(b[44:48], crc32.ChecksumIEEE(b[0:44]))
	return b
}

// parseHeader decodes and verifies the fixed header. The header CRC is
// checked before any claimed count is trusted.
func parseHeader(data []byte) (header, error) {
	var h header
	if len(data) < headerSize {
		return h, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrFormat, len(data), headerSize)
	}
	if string(data[0:4]) != Magic {
		return h, fmt.Errorf("%w: bad magic %q", ErrFormat, data[0:4])
	}
	if got, want := binary.LittleEndian.Uint32(data[44:48]), crc32.ChecksumIEEE(data[0:44]); got != want {
		return h, fmt.Errorf("%w: header checksum mismatch (got %08x, want %08x)", ErrFormat, got, want)
	}
	h.version = binary.LittleEndian.Uint32(data[4:8])
	if h.version == 0 || h.version > Version {
		return h, fmt.Errorf("%w: unsupported format version %d (this build reads <= %d)", ErrFormat, h.version, Version)
	}
	for _, b := range data[48:headerSize] {
		if b != 0 {
			return h, fmt.Errorf("%w: reserved header bytes are not zero", ErrFormat)
		}
	}
	rows := binary.LittleEndian.Uint64(data[8:16])
	cols := binary.LittleEndian.Uint64(data[16:24])
	nnz := binary.LittleEndian.Uint64(data[24:32])
	if rows > uint64(maxCount) || cols > uint64(maxCount) || nnz > uint64(maxCount) {
		return h, fmt.Errorf("%w: dimensions %dx%d nnz=%d exceed format bounds", ErrFormat, rows, cols, nnz)
	}
	h.rows, h.cols, h.nnz = int64(rows), int64(cols), int64(nnz)
	h.crcRowPtr = binary.LittleEndian.Uint32(data[32:36])
	h.crcColIdx = binary.LittleEndian.Uint32(data[36:40])
	h.crcVal = binary.LittleEndian.Uint32(data[40:44])
	return h, nil
}

// Decode parses a complete in-memory (or memory-mapped) binary CSR
// image and returns it as a matrix. On little-endian hosts the
// returned matrix's slices alias data (zero-copy); the caller must
// keep data alive and unmodified for the matrix's lifetime. All four
// CRCs and the full CSR structural invariants are verified: a
// truncated, corrupted or hostile image returns an error wrapping
// ErrFormat without panicking and without allocating beyond the input.
func Decode(data []byte) (*matrix.CSR, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	l, err := layoutFor(h.rows, h.cols, h.nnz)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != l.total {
		return nil, fmt.Errorf("%w: file is %d bytes, header claims %d", ErrFormat, len(data), l.total)
	}
	sections := []struct {
		name     string
		off, len int64
		want     uint32
	}{
		{"row-pointer", l.rowPtrOff, 8 * (h.rows + 1), h.crcRowPtr},
		{"column-index", l.colIdxOff, 4 * h.nnz, h.crcColIdx},
		{"value", l.valOff, 8 * h.nnz, h.crcVal},
	}
	for _, s := range sections {
		if got := crc32.ChecksumIEEE(data[s.off : s.off+s.len]); got != s.want {
			return nil, fmt.Errorf("%w: %s section checksum mismatch (got %08x, want %08x)", ErrFormat, s.name, got, s.want)
		}
	}
	m := &matrix.CSR{Rows: int(h.rows), Cols: int(h.cols)}
	if hostLittleEndian {
		m.RowPtr = unsafe.Slice((*int64)(unsafe.Pointer(&data[l.rowPtrOff])), h.rows+1)
		if h.nnz > 0 {
			m.ColIdx = unsafe.Slice((*int32)(unsafe.Pointer(&data[l.colIdxOff])), h.nnz)
			m.Val = unsafe.Slice((*float64)(unsafe.Pointer(&data[l.valOff])), h.nnz)
		}
	} else {
		m.RowPtr = make([]int64, h.rows+1)
		for i := range m.RowPtr {
			m.RowPtr[i] = int64(binary.LittleEndian.Uint64(data[l.rowPtrOff+8*int64(i):]))
		}
		m.ColIdx = make([]int32, h.nnz)
		m.Val = make([]float64, h.nnz)
		for i := int64(0); i < h.nnz; i++ {
			m.ColIdx[i] = int32(binary.LittleEndian.Uint32(data[l.colIdxOff+4*i:]))
			m.Val[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[l.valOff+8*i:]))
		}
	}
	// Full structural validation (monotone row pointers, sorted in-range
	// column indices, finite values): the kernels index by these without
	// bounds checks of their own, so a hostile file must die here.
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if int64(len(m.ColIdx)) != h.nnz || m.RowPtr[h.rows] != h.nnz {
		return nil, fmt.Errorf("%w: row pointers end at %d, header claims nnz=%d", ErrFormat, m.RowPtr[h.rows], h.nnz)
	}
	return m, nil
}

// FileBytes returns the on-disk size of a binary CSR file holding a
// rows×anything matrix with nnz entries (admission's disk-budget
// arithmetic).
func FileBytes(rows int, nnz int64) int64 {
	l, err := layoutFor(int64(rows), 0, nnz)
	if err != nil {
		return math.MaxInt64
	}
	return l.total
}
