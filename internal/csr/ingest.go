package csr

import (
	"bytes"
	"context"
	"fmt"
	"os"

	"symcluster/internal/faultinject"
	"symcluster/internal/graph"
	"symcluster/internal/obs"
)

// IngestInfo summarizes a finished ingestion.
type IngestInfo struct {
	Rows        int   // node count (max id + 1)
	NNZ         int64 // distinct edges after duplicate summing
	Edges       int64 // raw edge records parsed
	BytesIn     int64 // input bytes consumed
	SpillRuns   int64
	MergedBytes int64
}

// Ingester builds a binary CSR file from an edge-list text stream
// delivered in arbitrary chunks, in bounded memory. Parsing shares
// graph.ParseEdgeLine with ReadEdgeList, so the accepted grammar —
// comments, blank lines, optional weights, id and weight validation —
// is identical. Parsed edges go through an external sorter; Finalize
// merges the runs, sums duplicate coordinates in input order (dropping
// exact-zero sums, as the in-memory builder does), and streams the
// result through a Writer.
type Ingester struct {
	dir     string // scratch dir owning the spill runs
	sorter  *extSorter
	partial []byte // carried bytes of an incomplete trailing line
	lineNo  int
	maxID   int
	records int64
	bytesIn int64
	done    bool
}

// NewIngester creates an ingester spilling under scratchDir (a fresh
// subdirectory is created) with roughly memBudgetBytes of buffered
// edges.
func NewIngester(scratchDir string, memBudgetBytes int64) (*Ingester, error) {
	dir, err := os.MkdirTemp(scratchDir, "ingest-*")
	if err != nil {
		return nil, fmt.Errorf("csr: creating spill dir: %w", err)
	}
	return &Ingester{dir: dir, sorter: newExtSorter(dir, memBudgetBytes)}, nil
}

// Append consumes one chunk of edge-list text. Chunks may split lines
// at any byte; the trailing partial line is carried into the next
// chunk.
func (in *Ingester) Append(chunk []byte) error {
	if in.done {
		return fmt.Errorf("csr: Append after Finalize")
	}
	in.bytesIn += int64(len(chunk))
	for len(chunk) > 0 {
		nl := bytes.IndexByte(chunk, '\n')
		if nl < 0 {
			in.partial = append(in.partial, chunk...)
			if len(in.partial) > graph.MaxLineBytes {
				return fmt.Errorf("csr: line %d longer than %d bytes", in.lineNo+1, graph.MaxLineBytes)
			}
			return nil
		}
		line := chunk[:nl]
		chunk = chunk[nl+1:]
		if len(in.partial) > 0 {
			line = append(in.partial, line...)
			in.partial = in.partial[:0]
		}
		if err := in.line(line); err != nil {
			return err
		}
	}
	return nil
}

// line parses and buffers one complete input line.
func (in *Ingester) line(raw []byte) error {
	in.lineNo++
	u, v, w, skip, err := graph.ParseEdgeLine(in.lineNo, string(raw))
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	if u > in.maxID {
		in.maxID = u
	}
	if v > in.maxID {
		in.maxID = v
	}
	in.records++
	// Fail fast on absurdly sparse id spaces instead of discovering it
	// at Finalize after gigabytes of spill.
	if err := graph.CheckIDDensity(in.maxID, in.records); err != nil {
		return err
	}
	return in.sorter.add(triplet{r: int32(u), c: int32(v), v: w})
}

// Finalize flushes the trailing line, merges the spill runs and writes
// the binary CSR file at dstPath (tmp + fsync + rename). The ingester
// cannot be used afterwards; its scratch directory is removed.
func (in *Ingester) Finalize(ctx context.Context, dstPath string) (info *IngestInfo, err error) {
	if in.done {
		return nil, fmt.Errorf("csr: double Finalize")
	}
	_, sp := obs.StartSpan(ctx, "csr.ingest.merge",
		obs.A("edges", in.records), obs.A("spill_runs", len(in.sorter.runs)))
	defer func() {
		sp.EndErr(err)
		in.Abort() // idempotent scratch cleanup
	}()
	in.done = true
	if err := faultinject.Fire("csr.ingest"); err != nil {
		return nil, fmt.Errorf("csr: ingest: %w", err)
	}
	if len(in.partial) > 0 {
		line := in.partial
		in.partial = nil
		in.done = false
		lerr := in.line(line)
		in.done = true
		if lerr != nil {
			return nil, lerr
		}
	}
	if in.records == 0 {
		return nil, fmt.Errorf("csr: no edges in input")
	}
	if err := graph.CheckIDDensity(in.maxID, in.records); err != nil {
		return nil, err
	}
	rows := in.maxID + 1

	// Pass 1: count surviving entries so the Writer can lay the file out.
	var nnz int64
	if err := in.sorter.eachSummed(func(triplet) error { nnz++; return nil }); err != nil {
		return nil, err
	}
	// Pass 2: stream the merged entries into the file.
	w, err := NewWriter(dstPath, rows, rows, nnz)
	if err != nil {
		return nil, err
	}
	if err := in.sorter.eachSummed(func(t triplet) error {
		return w.Append(int(t.r), t.c, t.v)
	}); err != nil {
		w.Abort()
		return nil, err
	}
	if err := w.Close(ctx); err != nil {
		return nil, err
	}
	spills, merged := in.sorter.stats()
	sp.SetAttr("rows", rows)
	sp.SetAttr("nnz", nnz)
	obs.ObserveCSRIngest(ctx, spills, merged)
	return &IngestInfo{
		Rows:        rows,
		NNZ:         nnz,
		Edges:       in.records,
		BytesIn:     in.bytesIn,
		SpillRuns:   spills,
		MergedBytes: merged,
	}, nil
}

// Abort discards all ingester state, including the scratch directory.
// Safe to call after Finalize or repeatedly.
func (in *Ingester) Abort() {
	in.done = true
	if in.sorter != nil {
		in.sorter.cleanup()
	}
	if in.dir != "" {
		os.RemoveAll(in.dir)
		in.dir = ""
	}
}

// Stats exposes running ingest counters (bytes consumed, edge records
// parsed) for progress reporting while the upload is still open.
func (in *Ingester) Stats() (bytesIn, edges int64) { return in.bytesIn, in.records }
