package csr

import (
	"context"
	"fmt"
	"sort"

	"symcluster/internal/matrix"
)

// This file holds the streaming file-to-file matrix operations the
// out-of-core symmetrization path needs: transpose, diagonal scaling
// and A+I augmentation. Each reads a mapped source one row at a time
// and writes a new binary CSR file, so peak resident memory is the
// external-sort buffer (transpose) or one row (the others) — never a
// full matrix. Value arithmetic replicates the in-memory kernels
// bit-for-bit (same operations in the same order), which is what lets
// out-of-core runs produce byte-identical results to in-core runs.

// TransposeToFile writes srcᵀ to dstPath. The entries are reordered
// with an external sort under scratchDir using roughly memBudgetBytes
// of buffer; values are exact copies, and within each output row they
// land in ascending original-row order — the same layout
// (*matrix.CSR).Transpose produces.
func TransposeToFile(ctx context.Context, src *matrix.CSR, scratchDir, dstPath string, memBudgetBytes int64) error {
	s := newExtSorter(scratchDir, memBudgetBytes)
	defer s.cleanup()
	for i := 0; i < src.Rows; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		cols, vals := src.Row(i)
		for k, c := range cols {
			if err := s.add(triplet{r: c, c: int32(i), v: vals[k]}); err != nil {
				return err
			}
		}
	}
	w, err := NewWriter(dstPath, src.Cols, src.Rows, int64(src.NNZ()))
	if err != nil {
		return err
	}
	// Source columns are unique per row, so (r, c) pairs are unique: a
	// plain merge needs no duplicate handling.
	if err := s.each(func(t triplet) error {
		return w.Append(int(t.r), t.c, t.v)
	}); err != nil {
		w.Abort()
		return err
	}
	return w.Close(ctx)
}

// AugmentIdentityToFile writes src + I to dstPath for square src,
// streaming one row at a time. Semantics match
// (*matrix.CSR).AddIdentity exactly: an existing diagonal entry v
// becomes v + 1 and is dropped when the sum is exactly zero; missing
// diagonals are inserted as 1.
func AugmentIdentityToFile(ctx context.Context, src *matrix.CSR, dstPath string) error {
	if src.Rows != src.Cols {
		return fmt.Errorf("csr: AugmentIdentity on non-square %dx%d matrix", src.Rows, src.Cols)
	}
	// Pass 1: exact output nnz. Each row gains one entry unless the
	// diagonal already exists, and loses one when v + 1 == 0.
	nnz := int64(src.NNZ())
	for i := 0; i < src.Rows; i++ {
		cols, vals := src.Row(i)
		k := sort.Search(len(cols), func(j int) bool { return cols[j] >= int32(i) })
		if k < len(cols) && cols[k] == int32(i) {
			if vals[k]+1 == 0 {
				nnz--
			}
		} else {
			nnz++
		}
	}
	w, err := NewWriter(dstPath, src.Rows, src.Cols, nnz)
	if err != nil {
		return err
	}
	abort := func(err error) error { w.Abort(); return err }
	for i := 0; i < src.Rows; i++ {
		if err := ctx.Err(); err != nil {
			return abort(err)
		}
		cols, vals := src.Row(i)
		placed := false
		for k, c := range cols {
			switch {
			case c == int32(i):
				placed = true
				if v := vals[k] + 1; v != 0 {
					if err := w.Append(i, c, v); err != nil {
						return abort(err)
					}
				}
				continue
			case c > int32(i) && !placed:
				placed = true
				if err := w.Append(i, int32(i), 1); err != nil {
					return abort(err)
				}
			}
			if err := w.Append(i, c, vals[k]); err != nil {
				return abort(err)
			}
		}
		if !placed {
			if err := w.Append(i, int32(i), 1); err != nil {
				return abort(err)
			}
		}
	}
	return w.Close(ctx)
}
