//go:build !unix

package csr

import (
	"errors"
	"os"
)

// mmapSupported gates the zero-copy read path; without it Open falls
// back to reading the whole file (correct, just not out-of-core).
const mmapSupported = false

func mmapFile(_ *os.File, _ int64) ([]byte, error) {
	return nil, errors.New("csr: mmap unsupported on this platform")
}

func munmapFile(_ []byte) error { return nil }
