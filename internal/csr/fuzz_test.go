package csr

import (
	"context"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"symcluster/internal/graph"
)

// FuzzDecode throws arbitrary bytes at the binary CSR decoder. The
// contract under fuzzing: Decode either returns a valid matrix or an
// error — never a panic, never an allocation sized by unvalidated
// header counts (the size cross-check runs before any section view).
// The seed corpus is round-tripped real graphs plus targeted
// single-byte corruptions of one.
func FuzzDecode(f *testing.F) {
	seed := func(m string) []byte {
		g, err := graph.ReadEdgeList(strings.NewReader(m))
		if err != nil {
			f.Fatal(err)
		}
		path := filepath.Join(f.TempDir(), "seed.csr")
		if err := WriteMatrix(context.Background(), path, g.Adj); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	valid := seed("0 1\n1 2 2.5\n2 0\n3 3 0.125\n")
	f.Add(valid)
	f.Add(seed("0 1\n"))
	f.Add(seed("0 0 1\n1 1 2\n2 2 3\n"))
	for _, off := range []int{0, 5, 9, 33, 45, 50, headerSize, len(valid) - 1} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0xff
		f.Add(mut)
	}
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-3])
	// A CRC-valid header with hostile counts over an empty body.
	var h [headerSize]byte
	copy(h[0:4], Magic)
	binary.LittleEndian.PutUint32(h[4:8], Version)
	binary.LittleEndian.PutUint64(h[8:16], 1<<39)
	binary.LittleEndian.PutUint64(h[24:32], 1<<39)
	hostile := encodeHeaderRaw(h)
	f.Add(hostile[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Anything the decoder accepts must satisfy the invariants the
		// kernels index by without bounds checks.
		if verr := m.Validate(); verr != nil {
			t.Fatalf("Decode accepted a matrix failing Validate: %v", verr)
		}
		if m.Rows > 0 {
			m.Row(m.Rows - 1) // must not panic
		}
	})
}
