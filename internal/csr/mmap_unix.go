//go:build unix

package csr

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy read path; on these platforms
// Open maps the file instead of reading it into the heap.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared: pages are
// file-backed and clean, so the OS evicts them freely under memory
// pressure — this is what bounds resident memory for out-of-core runs.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
