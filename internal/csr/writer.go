package csr

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"symcluster/internal/faultinject"
	"symcluster/internal/matrix"
	"symcluster/internal/obs"
)

// Writer streams a binary CSR file to disk with the dimensions
// declared up front, so each section is written sequentially at its
// final offset and the whole matrix never lives in memory. Entries
// arrive through Append in row-major, column-sorted order; Close
// stamps the header (with all section CRCs), fsyncs, and renames the
// temporary file into place.
type Writer struct {
	path, tmpPath string
	f             *os.File
	rows, cols    int
	nnz           int64

	rowPtrW, colIdxW, valW *sectionWriter

	written    int64 // entries appended so far
	ptrWritten int64 // row-pointer entries written so far (rowPtr[0] counts)
	lastCol    int32
	closed     bool
}

// sectionWriter buffers sequential writes to one section of the file
// while folding every byte into the section's CRC. scratch is the
// encode buffer for the fixed-width helpers — a field, not a local,
// because locals passed to the hash interface escape and would cost
// one heap allocation per appended entry.
type sectionWriter struct {
	bw      *bufio.Writer
	crc     hash.Hash32
	scratch [8]byte
}

func newSectionWriter(f *os.File, off int64) *sectionWriter {
	return &sectionWriter{
		bw:  bufio.NewWriterSize(io.NewOffsetWriter(f, off), 64*1024),
		crc: crc32.NewIEEE(),
	}
}

func (s *sectionWriter) write(p []byte) error {
	s.crc.Write(p)
	_, err := s.bw.Write(p)
	return err
}

func (s *sectionWriter) u64(v uint64) error {
	binary.LittleEndian.PutUint64(s.scratch[:], v)
	return s.write(s.scratch[:8])
}

func (s *sectionWriter) u32(v uint32) error {
	binary.LittleEndian.PutUint32(s.scratch[:4], v)
	return s.write(s.scratch[:4])
}

// NewWriter creates path's temporary sibling and returns a Writer
// expecting exactly nnz entries over rows rows. The file is
// pre-extended to its final size so the alignment padding is zero
// bytes without an explicit write.
func NewWriter(path string, rows, cols int, nnz int64) (*Writer, error) {
	l, err := layoutFor(int64(rows), int64(cols), nnz)
	if err != nil {
		return nil, err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("csr: creating %s: %w", tmp, err)
	}
	if err := f.Truncate(l.total); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("csr: sizing %s: %w", tmp, err)
	}
	w := &Writer{
		path:    path,
		tmpPath: tmp,
		f:       f,
		rows:    rows,
		cols:    cols,
		nnz:     nnz,
		rowPtrW: newSectionWriter(f, l.rowPtrOff),
		colIdxW: newSectionWriter(f, l.colIdxOff),
		valW:    newSectionWriter(f, l.valOff),
		lastCol: -1,
	}
	// rowPtr[0] is always zero.
	if err := w.rowPtrW.u64(0); err != nil {
		w.Abort()
		return nil, fmt.Errorf("csr: writing row pointers: %w", err)
	}
	w.ptrWritten = 1
	return w, nil
}

// row returns the row currently being filled.
func (w *Writer) row() int64 { return w.ptrWritten - 1 }

// Append adds one entry. Rows must be non-decreasing and column
// indices strictly increasing within a row (the CSR invariants);
// skipped rows are recorded as empty.
func (w *Writer) Append(row int, col int32, val float64) error {
	if w.closed {
		return fmt.Errorf("csr: Append after Close")
	}
	if row < 0 || row >= w.rows {
		return fmt.Errorf("csr: row %d out of range [0, %d)", row, w.rows)
	}
	if int64(row) < w.row() {
		return fmt.Errorf("csr: rows must be appended in order (row %d after %d)", row, w.row())
	}
	if col < 0 || int64(col) >= int64(w.cols) {
		return fmt.Errorf("csr: column %d out of range [0, %d)", col, w.cols)
	}
	if w.written >= w.nnz {
		return fmt.Errorf("csr: more than the declared %d entries", w.nnz)
	}
	for w.row() < int64(row) {
		if err := w.rowPtrW.u64(uint64(w.written)); err != nil {
			return fmt.Errorf("csr: writing row pointers: %w", err)
		}
		w.ptrWritten++
		w.lastCol = -1
	}
	if col <= w.lastCol {
		return fmt.Errorf("csr: column %d not strictly increasing after %d in row %d", col, w.lastCol, row)
	}
	w.lastCol = col
	if err := w.colIdxW.u32(uint32(col)); err != nil {
		return fmt.Errorf("csr: writing column indices: %w", err)
	}
	if err := w.valW.u64(math.Float64bits(val)); err != nil {
		return fmt.Errorf("csr: writing values: %w", err)
	}
	w.written++
	return nil
}

// AppendRow adds one whole row (cols sorted strictly increasing).
func (w *Writer) AppendRow(row int, cols []int32, vals []float64) error {
	if len(cols) != len(vals) {
		return fmt.Errorf("csr: row %d has %d columns but %d values", row, len(cols), len(vals))
	}
	for k, c := range cols {
		if err := w.Append(row, c, vals[k]); err != nil {
			return err
		}
	}
	return nil
}

// Close finishes the remaining row pointers, verifies the declared
// entry count, writes the header, fsyncs and renames the file into
// place. It opens a "csr.write" span and fires the "csr.write" fault
// site before finalizing.
func (w *Writer) Close(ctx context.Context) (err error) {
	if w.closed {
		return fmt.Errorf("csr: double Close")
	}
	w.closed = true
	_, sp := obs.StartSpan(ctx, "csr.write",
		obs.A("file", filepath.Base(w.path)),
		obs.A("rows", w.rows), obs.A("nnz", w.nnz))
	defer func() {
		sp.EndErr(err)
		if err != nil {
			w.f.Close()
			os.Remove(w.tmpPath)
		}
	}()
	if err := faultinject.Fire("csr.write"); err != nil {
		return fmt.Errorf("csr: write: %w", err)
	}
	if w.written != w.nnz {
		return fmt.Errorf("csr: %d entries appended, %d declared", w.written, w.nnz)
	}
	for w.ptrWritten < int64(w.rows)+1 {
		if err := w.rowPtrW.u64(uint64(w.written)); err != nil {
			return fmt.Errorf("csr: writing row pointers: %w", err)
		}
		w.ptrWritten++
	}
	for _, s := range []*sectionWriter{w.rowPtrW, w.colIdxW, w.valW} {
		if err := s.bw.Flush(); err != nil {
			return fmt.Errorf("csr: flushing sections: %w", err)
		}
	}
	hdr := encodeHeader(header{
		version:   Version,
		rows:      int64(w.rows),
		cols:      int64(w.cols),
		nnz:       w.nnz,
		crcRowPtr: w.rowPtrW.crc.Sum32(),
		crcColIdx: w.colIdxW.crc.Sum32(),
		crcVal:    w.valW.crc.Sum32(),
	})
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("csr: writing header: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("csr: syncing %s: %w", w.tmpPath, err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("csr: closing %s: %w", w.tmpPath, err)
	}
	if err := os.Rename(w.tmpPath, w.path); err != nil {
		os.Remove(w.tmpPath)
		return fmt.Errorf("csr: renaming into place: %w", err)
	}
	syncDir(filepath.Dir(w.path))
	obs.ObserveCSRWrite(ctx, FileBytes(w.rows, w.nnz))
	return nil
}

// Abort discards the temporary file. Safe after a failed Close.
func (w *Writer) Abort() {
	if w.f != nil {
		w.f.Close()
	}
	os.Remove(w.tmpPath)
	w.closed = true
}

// WriteMatrix writes an in-memory matrix to path in the binary CSR
// format (tmp + fsync + rename).
func WriteMatrix(ctx context.Context, path string, m *matrix.CSR) error {
	w, err := NewWriter(path, m.Rows, m.Cols, int64(m.NNZ()))
	if err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		if err := w.AppendRow(i, cols, vals); err != nil {
			w.Abort()
			return err
		}
	}
	return w.Close(ctx)
}

// SaveStream writes r verbatim to dir/name, fsyncing the file before
// returning its path. It performs no validation — callers receiving a
// CSR file from elsewhere (the cluster's internal graph push) are
// expected to Open the result, which verifies every section CRC,
// before trusting a byte of it.
func SaveStream(dir, name string, r io.Reader) (string, error) {
	path := filepath.Join(dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("csr: %w", err)
	}
	if _, err := io.Copy(f, r); err != nil {
		f.Close()
		os.Remove(path)
		return "", fmt.Errorf("csr: saving stream: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return "", fmt.Errorf("csr: syncing stream: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return "", fmt.Errorf("csr: %w", err)
	}
	return path, nil
}

// syncDir fsyncs a directory so a just-renamed file is durable. Errors
// are ignored: the rename already happened and some filesystems refuse
// directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
