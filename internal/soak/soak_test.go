// Package soak is the chaos-soak harness: it boots a real two-node
// symclusterd cluster (binaries built with -race), drives mixed
// sync/async clustering load through it while randomized fault
// schedules fire inside the daemons, SIGKILLs and restarts a node in
// half the episodes, and checks the survival invariants after every
// episode:
//
//   - no accepted job is lost (every job id reaches a terminal state
//     and is still resolvable after a final fault-free restart);
//   - no job is duplicated (a repeated Idempotency-Key submission
//     returns the same job id, before and after WAL replay);
//   - a job may fail only while error faults are armed, and may be
//     canceled only in episodes that killed a node;
//   - completed assignments are bit-identical to a fault-free control
//     run of the same request;
//   - the WAL replays clean: killing both nodes and restarting them
//     without faults leaves every done job done with its result intact
//     and finishes every replayed pending job;
//   - the surviving node's goroutine count and heap return to their
//     pre-load baseline once the episode drains.
//
// The harness is time-bounded, not episode-bounded: it loops fresh
// episodes until SOAK_SECONDS (default 60) elapses. SOAK_SEED pins the
// fault schedule for reproduction; every run logs the seed it used.
// `make soak` is the entry point.
package soak

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"symcluster/internal/cluster"
	"symcluster/internal/server"
)

// soakClient tolerates the long retry/backoff tails that injected
// proxy faults produce.
var soakClient = &http.Client{Timeout: 30 * time.Second}

// node is one cluster member; cmd is replaced across kill/restart.
type node struct {
	addr  string // API listen address (also the node's ring name)
	debug string // pprof listen address (heap?gc=1 forces GC)
	cmd   *exec.Cmd
}

func (n *node) stop() {
	if n.cmd != nil && n.cmd.Process != nil {
		n.cmd.Process.Kill()
		n.cmd.Wait()
		n.cmd = nil
	}
}

// trackedJob is one accepted async submission and what became of it.
type trackedJob struct {
	id     string
	method string
	seed   int64
	state  string // terminal state observed while the episode drained
	assign string // fmt.Sprint of the done result's assignments
}

func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak runs only in full mode (make soak)")
	}
	budget := 60 * time.Second
	if s := os.Getenv("SOAK_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil || secs <= 0 {
			t.Fatalf("bad SOAK_SECONDS %q", s)
		}
		budget = time.Duration(secs) * time.Second
	}
	seed := time.Now().UnixNano()
	if s := os.Getenv("SOAK_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SOAK_SEED %q", s)
		}
		seed = v
	}
	rng := rand.New(rand.NewSource(seed))
	t.Logf("soak: budget=%v seed=%d (pin with SOAK_SEED=%d)", budget, seed, seed)

	bin := buildRaceBinary(t)
	start := time.Now()
	for ep := 0; ep == 0 || time.Since(start) < budget; ep++ {
		runEpisode(t, bin, rng, ep)
		if t.Failed() {
			t.Fatalf("soak: invariant violated in episode %d (seed %d)", ep, seed)
		}
		t.Logf("soak: episode %d clean (%v elapsed)", ep, time.Since(start).Round(time.Second))
	}
}

// runEpisode runs one full fault schedule against a fresh two-node
// cluster and checks every invariant before returning.
func runEpisode(t *testing.T, bin string, rng *rand.Rand, ep int) {
	root := t.TempDir()
	a := &node{addr: freeAddr(t), debug: freeAddr(t)}
	b := &node{addr: freeAddr(t), debug: freeAddr(t)}
	defer a.stop()
	defer b.stop()
	peers := "http://" + a.addr + ",http://" + b.addr

	kill := ep%2 == 1
	victim, survivor := b, a
	if kill && rng.Intn(2) == 0 {
		victim, survivor = a, b
	}
	faults, hasErrorFault := episodeFaults(rng, kill)
	t.Logf("episode %d: kill=%v victim=%s faults=%q", ep, kill, victim.addr, faults)

	startNode(t, bin, a, root, peers, faults)
	startNode(t, bin, b, root, peers, faults)

	// Register the block graph, retrying through bounded ingest faults.
	graphID := registerGraph(t, a.addr)
	if graphID == "" {
		t.Errorf("episode %d: graph registration never succeeded under %q", ep, faults)
		return
	}

	// Baseline the survivor's shape before any load: goroutines and
	// post-GC heap must return here once the episode drains.
	g0, h0 := runtimeShape(t, survivor)

	// Async load: a handful of deterministic jobs, retried through
	// bounded submit faults; only accepted ids are tracked.
	jobs := submitAsyncLoad(t, a.addr, graphID, ep)

	// Idempotency pair, submitted while both nodes are healthy: two
	// POSTs under one key must name one job.
	idemKey := fmt.Sprintf("soak-%d", ep)
	idemSeed := int64(1000 + ep)
	idemID := submitIdempotentPair(t, a.addr, graphID, idemKey, idemSeed)
	if idemID != "" {
		jobs = append(jobs, &trackedJob{id: idemID, method: "dd", seed: idemSeed})
	}

	// A sync request whose budget is already spent must be turned away
	// at the door — quickly, and never with a 2xx.
	checkZeroBudgetFastFail(t, a.addr, graphID)

	// A generously budgeted sync request may succeed or shed under
	// faults; a success is held to the bit-identical control later.
	syncDone := runBudgetedSync(t, a.addr, graphID, int64(2000+ep))

	if kill {
		// Let the load get going, then SIGKILL with no goodbye: recovery
		// must come from probes, breakers, and the shared WAL.
		time.Sleep(time.Duration(200+rng.Intn(400)) * time.Millisecond)
		victim.cmd.Process.Kill()
		victim.cmd.Wait()
		victim.cmd = nil
		// Give the survivor a beat to declare the peer down and adopt,
		// then bring the victim back fault-free on the same dirs.
		time.Sleep(time.Second)
		startNode(t, bin, victim, root, peers, "")
	}

	// Drain: every accepted job reaches a terminal state.
	drainJobs(t, []*node{a, b}, jobs, kill, hasErrorFault)
	if t.Failed() {
		return
	}

	// The survivor's goroutines and heap settle back to baseline.
	checkRuntimeSettles(t, survivor, g0, h0)

	// Final fault-free restart of BOTH nodes (SIGKILL, so recovery is
	// pure WAL replay): nothing lost, done results intact, replayed
	// pending work finishes, the idempotency key still dedups, and done
	// assignments match a fault-free control run.
	a.stop()
	b.stop()
	startNode(t, bin, a, root, peers, "")
	startNode(t, bin, b, root, peers, "")
	verifyAfterReplay(t, a.addr, graphID, jobs, idemKey, idemID, idemSeed, syncDone)
}

// soakSites is the fault menu: every site that sits on the job path,
// each with an error and a delay flavor. Error faults are always
// bounded (@skip+times) so the episode can converge.
var soakSites = []struct {
	site  string
	modes []string
}{
	{"proxy.forward", []string{"error", "delay:30ms"}},
	{"jobstore.append", []string{"error", "delay:10ms"}},
	{"mcl.iterate", []string{"error", "delay:10ms"}},
	{"csr.write", []string{"error", "delay:20ms"}},
	{"pool.task", []string{"error", "delay:40ms"}},
}

// episodeFaults rolls a randomized SYMCLUSTER_FAULTS spec. Kill
// episodes always slow the kernel so the SIGKILL lands mid-run.
func episodeFaults(rng *rand.Rand, kill bool) (spec string, hasError bool) {
	var parts []string
	if kill {
		parts = append(parts, "mcl.iterate=delay:25ms")
	}
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		s := soakSites[rng.Intn(len(soakSites))]
		if kill && s.site == "mcl.iterate" {
			continue // the unbounded slow-kernel entry already owns the site
		}
		mode := s.modes[rng.Intn(len(s.modes))]
		skip, times := rng.Intn(3), 1+rng.Intn(2)
		parts = append(parts, fmt.Sprintf("%s=%s@%d+%d", s.site, mode, skip, times))
		if strings.HasPrefix(mode, "error") {
			hasError = true
		}
	}
	return strings.Join(parts, ";"), hasError
}

// startNode launches one cluster member on n.addr and waits for its
// /healthz. Probe, breaker, and retry tuning is test-sized so failover
// and breaker recovery both fit inside an episode.
func startNode(t *testing.T, bin string, n *node, root, peers, faults string) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", n.addr,
		"-debug-addr", n.debug,
		"-data-dir", root,
		"-checkpoint-iters", "1",
		"-workers", "1",
		"-log-format", "text", "-log-level", "warn",
		"-peers", peers,
		"-self", n.addr,
		"-probe-interval", "50ms",
		"-peer-fail-threshold", "2",
		"-peer-recover-threshold", "1",
		"-proxy-timeout", "2s",
		"-proxy-max-wait", "250ms",
		"-breaker-fail-threshold", "3",
		"-breaker-cooldown", "500ms",
	)
	cmd.Env = append(os.Environ(), "SYMCLUSTER_FAULTS="+faults)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	n.cmd = cmd
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + n.addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	n.stop()
	t.Fatalf("node %s never became healthy", n.addr)
}

// registerGraph posts the block edge list, retrying through bounded
// ingest/WAL faults. Returns "" if registration never lands.
func registerGraph(t *testing.T, addr string) string {
	t.Helper()
	edges := blockEdges()
	for i := 0; i < 8; i++ {
		resp, err := soakClient.Post("http://"+addr+"/v1/graphs", "text/plain", strings.NewReader(edges))
		if err == nil {
			var info server.GraphInfo
			dec := json.NewDecoder(resp.Body)
			if resp.StatusCode < 300 && dec.Decode(&info) == nil && info.ID != "" {
				resp.Body.Close()
				return info.ID
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		time.Sleep(100 * time.Millisecond)
	}
	return ""
}

// submitAsyncLoad fires a handful of deterministic async jobs. Submits
// rejected by injected faults are retried a few times; only accepted
// ids are tracked (a rejected submission is not a lost job).
func submitAsyncLoad(t *testing.T, addr, graphID string, ep int) []*trackedJob {
	t.Helper()
	methods := []string{"dd", "bib", "dd"}
	var jobs []*trackedJob
	for i, method := range methods {
		seed := int64(ep*10 + i + 1)
		req := server.ClusterRequest{GraphID: graphID, Method: method, Algorithm: "mcl", Inflation: 2, Seed: seed, Async: true}
		if id := submitAsync(t, addr, req, ""); id != "" {
			jobs = append(jobs, &trackedJob{id: id, method: method, seed: seed})
		}
	}
	return jobs
}

// submitAsync posts one async request (optionally keyed) and returns
// the accepted job id, or "" when every attempt was turned away.
func submitAsync(t *testing.T, addr string, req server.ClusterRequest, idemKey string) string {
	t.Helper()
	body, _ := json.Marshal(req)
	for attempt := 0; attempt < 4; attempt++ {
		hr, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/cluster", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set("Content-Type", "application/json")
		if idemKey != "" {
			hr.Header.Set("Idempotency-Key", idemKey)
		}
		resp, err := soakClient.Do(hr)
		if err != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if resp.StatusCode == http.StatusAccepted {
			var ref server.JobRef
			err := json.NewDecoder(resp.Body).Decode(&ref)
			resp.Body.Close()
			if err == nil && ref.JobID != "" {
				return ref.JobID
			}
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		time.Sleep(100 * time.Millisecond)
	}
	return ""
}

// submitIdempotentPair submits the same keyed async request twice and
// requires both accepted copies to name the same job. Returns the job
// id ("" when faults rejected the submissions — nothing to dedup).
func submitIdempotentPair(t *testing.T, addr, graphID, key string, seed int64) string {
	t.Helper()
	req := server.ClusterRequest{GraphID: graphID, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: seed, Async: true}
	first := submitAsync(t, addr, req, key)
	if first == "" {
		return ""
	}
	second := submitAsync(t, addr, req, key)
	if second != "" && second != first {
		t.Errorf("idempotency violated: key %q produced jobs %q and %q", key, first, second)
	}
	return first
}

// checkZeroBudgetFastFail sends a sync request whose deadline budget
// is already spent: the cluster must refuse it without running
// anything, and must answer at the deadline, not after the queue.
func checkZeroBudgetFastFail(t *testing.T, addr, graphID string) {
	t.Helper()
	body, _ := json.Marshal(server.ClusterRequest{GraphID: graphID, Method: "bib", Algorithm: "mcl", Inflation: 2, Seed: 999})
	hr, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/cluster", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	cluster.SetDeadlineHeader(hr.Header, 0)
	start := time.Now()
	resp, err := soakClient.Do(hr)
	elapsed := time.Since(start)
	if err != nil {
		t.Errorf("zero-budget request errored instead of fast-failing: %v", err)
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode < 500 {
		t.Errorf("zero-budget request returned %d; an expired deadline must never succeed", resp.StatusCode)
	}
	if elapsed > 5*time.Second {
		t.Errorf("zero-budget request took %v; expired deadlines must fail fast", elapsed)
	}
}

// runBudgetedSync runs one generously budgeted sync request. Under
// faults it may shed (5xx) — that is survival, not failure — but a 200
// is recorded and later held to the fault-free control.
func runBudgetedSync(t *testing.T, addr, graphID string, seed int64) *trackedJob {
	t.Helper()
	body, _ := json.Marshal(server.ClusterRequest{GraphID: graphID, Method: "bib", Algorithm: "mcl", Inflation: 2, Seed: seed})
	hr, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/cluster", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	cluster.SetDeadlineHeader(hr.Header, 15*time.Second)
	resp, err := soakClient.Do(hr)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var cr server.ClusterResponse
	if json.NewDecoder(resp.Body).Decode(&cr) != nil || len(cr.Assign) == 0 {
		t.Error("budgeted sync run returned 200 with no assignments")
		return nil
	}
	return &trackedJob{method: "bib", seed: seed, state: "done", assign: fmt.Sprint(cr.Assign)}
}

// drainJobs polls every accepted job to a terminal state, tolerating
// 502/503 while failover is in flight, then checks the state-machine
// invariants: failed only under armed error faults, canceled only in
// kill episodes, done always with assignments.
func drainJobs(t *testing.T, nodes []*node, jobs []*trackedJob, kill, hasErrorFault bool) {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for _, job := range jobs {
		var info server.JobInfo
		for {
			if getJobInfo(nodes, job.id, &info) && terminal(info.State) {
				break
			}
			if time.Now().After(deadline) {
				t.Errorf("job %s lost: never reached a terminal state (last %q)", job.id, info.State)
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
		job.state = info.State
		switch info.State {
		case "done":
			if info.Result == nil || len(info.Result.Assign) == 0 {
				t.Errorf("job %s done without assignments", job.id)
				continue
			}
			job.assign = fmt.Sprint(info.Result.Assign)
		case "failed":
			if !hasErrorFault && !kill {
				t.Errorf("job %s failed with no error fault armed: %s", job.id, info.Error)
			}
			if info.Error == "" {
				t.Errorf("job %s failed without an error message", job.id)
			}
		case "canceled":
			if !kill {
				t.Errorf("job %s canceled in an episode that killed nothing", job.id)
			}
		}
	}
}

// getJobInfo asks each live node for the qualified job id, accepting
// the first 200. False while the cluster is mid-failover.
func getJobInfo(nodes []*node, id string, out *server.JobInfo) bool {
	for _, n := range nodes {
		if n.cmd == nil {
			continue
		}
		resp, err := http.Get("http://" + n.addr + "/v1/jobs/" + id)
		if err != nil {
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && json.Unmarshal(body, out) == nil {
			return true
		}
	}
	return false
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "canceled"
}

// runtimeShape samples a node's live goroutines and post-GC heap via
// its runtime gauges, forcing a collection through the pprof heap
// endpoint first so the heap number is garbage-free.
func runtimeShape(t *testing.T, n *node) (goroutines, heap int64) {
	t.Helper()
	forceGC(n)
	body := scrape(t, n.addr)
	g := gaugeValue(body, "symclusterd_runtime_goroutines")
	h := gaugeValue(body, "symclusterd_runtime_heap_inuse_bytes")
	if g < 0 || h < 0 {
		t.Fatalf("node %s exports no runtime gauges:\n%s", n.addr, body)
	}
	return g, h
}

// checkRuntimeSettles polls the survivor until its goroutine count and
// heap return to the pre-load baseline (with slack for idle HTTP
// conns and allocator hysteresis), failing if they never do — the
// episode leaked.
func checkRuntimeSettles(t *testing.T, n *node, g0, h0 int64) {
	t.Helper()
	maxG := g0 + 15
	maxH := 2*h0 + 64<<20
	deadline := time.Now().Add(15 * time.Second)
	var g, h int64
	for {
		forceGC(n)
		body := scrape(t, n.addr)
		g = gaugeValue(body, "symclusterd_runtime_goroutines")
		h = gaugeValue(body, "symclusterd_runtime_heap_inuse_bytes")
		if g >= 0 && g <= maxG && h >= 0 && h <= maxH {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	t.Errorf("survivor %s did not settle: goroutines %d (baseline %d, cap %d), heap %d (baseline %d, cap %d)",
		n.addr, g, g0, maxG, h, h0, maxH)
}

// forceGC hits the node's pprof heap endpoint with gc=1, which runs a
// full collection before writing the profile.
func forceGC(n *node) {
	resp, err := http.Get("http://" + n.debug + "/debug/pprof/heap?gc=1")
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// verifyAfterReplay checks the world after a fault-free SIGKILL
// restart of both nodes: every tracked job is still resolvable, done
// results survived with their assignments intact, replayed pending
// work finishes, the idempotency key still dedups, and every recorded
// done result matches a fresh fault-free control run bit for bit.
func verifyAfterReplay(t *testing.T, addr, graphID string, jobs []*trackedJob, idemKey, idemID string, idemSeed int64, syncDone *trackedJob) {
	t.Helper()
	// Re-register the graph first: an injected fault may have eaten the
	// durable CSR write (registration deliberately degrades to
	// memory-only and logs), in which case the graph died with the
	// episode's processes. Ids are content hashes, so re-registering
	// heals the same id — the documented client recovery — and must
	// never mint a different one.
	if healed := registerGraph(t, addr); healed != graphID {
		t.Errorf("re-registered graph id %q != original %q: content hashing broke", healed, graphID)
		return
	}
	deadline := time.Now().Add(90 * time.Second)
	for _, job := range jobs {
		var info server.JobInfo
		for {
			if ok := getJobInfoAddr(addr, job.id, &info); ok && terminal(info.State) {
				break
			}
			if time.Now().After(deadline) {
				t.Errorf("job %s lost across replay: state %q", job.id, info.State)
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
		if job.state == "done" {
			if info.State != "done" {
				t.Errorf("job %s was done before replay, now %q", job.id, info.State)
				continue
			}
			if got := fmt.Sprint(info.Result.Assign); got != job.assign {
				t.Errorf("job %s result changed across replay:\n  before %s\n  after  %s", job.id, job.assign, got)
			}
		}
		// A job that was pending/failed pre-replay may legitimately have
		// been re-run fault-free; done or failed are both terminal truth.
	}

	// The idempotency key journaled before the replay still dedups.
	if idemID != "" {
		req := server.ClusterRequest{GraphID: graphID, Method: "dd", Algorithm: "mcl", Inflation: 2, Seed: idemSeed, Async: true}
		if again := submitAsync(t, addr, req, idemKey); again != "" && again != idemID {
			t.Errorf("idempotency key %q forgot job %q across replay; new job %q", idemKey, idemID, again)
		}
	}

	// Fault-free controls: every done result must be reproducible bit
	// for bit on the healthy cluster.
	controls := append([]*trackedJob(nil), jobs...)
	if syncDone != nil {
		controls = append(controls, syncDone)
	}
	for _, job := range controls {
		if job.state != "done" || job.assign == "" {
			continue
		}
		body, _ := json.Marshal(server.ClusterRequest{GraphID: graphID, Method: job.method, Algorithm: "mcl", Inflation: 2, Seed: job.seed})
		resp, err := soakClient.Post("http://"+addr+"/v1/cluster", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("control run for (%s, seed %d) errored: %v", job.method, job.seed, err)
			continue
		}
		var cr server.ClusterResponse
		decodeErr := json.NewDecoder(resp.Body).Decode(&cr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decodeErr != nil {
			t.Errorf("control run for (%s, seed %d): status %d, decode %v", job.method, job.seed, resp.StatusCode, decodeErr)
			continue
		}
		if got := fmt.Sprint(cr.Assign); got != job.assign {
			t.Errorf("(%s, seed %d) diverged from fault-free control:\n  soak    %s\n  control %s", job.method, job.seed, job.assign, got)
		}
	}
}

// getJobInfoAddr is getJobInfo against one known-healthy node.
func getJobInfoAddr(addr, id string, out *server.JobInfo) bool {
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + id)
	if err != nil {
		return false
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK && json.Unmarshal(body, out) == nil
}

// scrape fetches one node's /metrics exposition.
func scrape(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// gaugeValue extracts one un-labelled metric's value, or -1 if absent.
func gaugeValue(body, name string) int64 {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
				return int64(v)
			}
		}
	}
	return -1
}

// buildRaceBinary compiles symclusterd with the race detector enabled
// — the soak cluster runs entirely under -race.
func buildRaceBinary(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "symclusterd")
	cmd := exec.Command("go", "build", "-race", "-o", bin, "./cmd/symclusterd")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building symclusterd -race: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves an ephemeral port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// blockEdges mirrors the 4×30 block graph the durability e2e tests
// use: deterministic, clusterable, big enough for MCL to iterate.
func blockEdges() string {
	x := uint64(7)
	next := func() uint64 { x ^= x << 13; x ^= x >> 7; x ^= x << 17; return x }
	var b strings.Builder
	const blocks, size = 4, 30
	n := blocks * size
	for i := 0; i < n; i++ {
		bi := i / size
		for d := 0; d < 6; d++ {
			var j int
			if d < 4 {
				j = bi*size + int(next()%uint64(size))
			} else {
				j = int(next() % uint64(n))
			}
			if j != i {
				fmt.Fprintf(&b, "%d %d\n", i, j)
			}
		}
	}
	return b.String()
}
