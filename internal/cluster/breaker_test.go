package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives breaker cooldowns without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func testBreakers(cfg BreakerConfig, clk *fakeClock) *BreakerSet {
	cfg.now = clk.now
	return NewBreakerSet(cfg)
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	var changes []string
	b := testBreakers(BreakerConfig{
		FailThreshold: 3,
		Cooldown:      5 * time.Second,
		OnChange: func(peer string, st BreakerState) {
			changes = append(changes, peer+"="+st.String())
		},
	}, clk)

	for i := 0; i < 2; i++ {
		if err := b.Allow("p1"); err != nil {
			t.Fatalf("Allow before threshold: %v", err)
		}
		b.Record("p1", false)
	}
	if st := b.State("p1"); st != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", st)
	}
	b.Record("p1", false) // third consecutive failure trips it
	if st := b.State("p1"); st != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", st)
	}
	err := b.Allow("p1")
	var boe *BreakerOpenError
	if !errors.As(err, &boe) {
		t.Fatalf("Allow while open = %v, want *BreakerOpenError", err)
	}
	if boe.RetryAfter <= 0 || boe.RetryAfter > 5*time.Second {
		t.Fatalf("RetryAfter = %v, want within the cooldown", boe.RetryAfter)
	}
	if len(changes) != 1 || changes[0] != "p1=open" {
		t.Fatalf("OnChange calls = %v, want [p1=open]", changes)
	}
}

func TestBreakerHalfOpenSingleTrial(t *testing.T) {
	clk := newFakeClock()
	b := testBreakers(BreakerConfig{FailThreshold: 1, Cooldown: time.Second}, clk)
	b.Record("p1", false)
	if st := b.State("p1"); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}
	clk.advance(1100 * time.Millisecond)
	if st := b.State("p1"); st != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", st)
	}
	if err := b.Allow("p1"); err != nil {
		t.Fatalf("half-open trial rejected: %v", err)
	}
	// The trial slot is taken: a concurrent caller must wait it out.
	if err := b.Allow("p1"); err == nil {
		t.Fatal("second concurrent half-open request admitted")
	}
	b.Record("p1", true)
	if st := b.State("p1"); st != BreakerClosed {
		t.Fatalf("state after successful trial = %v, want closed", st)
	}
	if err := b.Allow("p1"); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreakers(BreakerConfig{FailThreshold: 3, Cooldown: time.Second}, clk)
	for i := 0; i < 3; i++ {
		b.Record("p1", false)
	}
	clk.advance(1100 * time.Millisecond)
	if err := b.Allow("p1"); err != nil {
		t.Fatalf("trial rejected: %v", err)
	}
	b.Record("p1", false) // one failed trial reopens immediately
	if st := b.State("p1"); st != BreakerOpen {
		t.Fatalf("state after failed trial = %v, want open", st)
	}
	if err := b.Allow("p1"); err == nil {
		t.Fatal("reopened breaker admitted a request before the next cooldown")
	}
}

func TestBreakerReleaseClearsTrialWithoutJudgment(t *testing.T) {
	clk := newFakeClock()
	b := testBreakers(BreakerConfig{FailThreshold: 1, Cooldown: time.Second}, clk)
	b.Record("p1", false)
	clk.advance(1100 * time.Millisecond)
	if err := b.Allow("p1"); err != nil {
		t.Fatalf("trial rejected: %v", err)
	}
	// The caller's own context died mid-trial: neither success nor
	// failure. Release frees the slot so the next caller can probe.
	b.Release("p1")
	if st := b.State("p1"); st != BreakerHalfOpen {
		t.Fatalf("state after released trial = %v, want half-open", st)
	}
	if err := b.Allow("p1"); err != nil {
		t.Fatalf("trial slot not freed: %v", err)
	}
}

func TestBreakerPeersAreIndependent(t *testing.T) {
	clk := newFakeClock()
	b := testBreakers(BreakerConfig{FailThreshold: 1, Cooldown: time.Second}, clk)
	b.Record("bad", false)
	if err := b.Allow("good"); err != nil {
		t.Fatalf("healthy peer gated by another peer's breaker: %v", err)
	}
	states := b.States()
	if states["bad"] != BreakerOpen {
		t.Fatalf("States()[bad] = %v, want open", states["bad"])
	}
	if st, ok := states["good"]; ok && st != BreakerClosed {
		t.Fatalf("States()[good] = %v, want closed", st)
	}
}

func TestBreakerNilReceiverIsNoop(t *testing.T) {
	var b *BreakerSet
	if err := b.Allow("p"); err != nil {
		t.Fatalf("nil BreakerSet.Allow = %v", err)
	}
	b.Record("p", false)
	b.Release("p")
	if st := b.State("p"); st != BreakerClosed {
		t.Fatalf("nil BreakerSet.State = %v", st)
	}
	if states := b.States(); len(states) != 0 {
		t.Fatalf("nil BreakerSet.States = %v", states)
	}
}

func TestRetryBudgetRefillsAndExhausts(t *testing.T) {
	var exhausted atomic.Int32
	rb := NewRetryBudget(RetryBudgetConfig{
		Ratio:       0.5,
		Burst:       2,
		OnExhausted: func() { exhausted.Add(1) },
	})
	// Seeded at burst: two retries succeed, the third is denied.
	if !rb.AllowRetry() || !rb.AllowRetry() {
		t.Fatal("seeded budget denied an affordable retry")
	}
	if rb.AllowRetry() {
		t.Fatal("empty budget granted a retry")
	}
	if exhausted.Load() != 1 {
		t.Fatalf("OnExhausted fired %d times, want 1", exhausted.Load())
	}
	// Two requests at ratio 0.5 earn one retry back.
	rb.RecordRequest()
	rb.RecordRequest()
	if !rb.AllowRetry() {
		t.Fatal("refilled budget denied a retry")
	}
	if rb.AllowRetry() {
		t.Fatal("budget granted more than it earned")
	}
}

func TestRetryBudgetCapsAtBurst(t *testing.T) {
	rb := NewRetryBudget(RetryBudgetConfig{Ratio: 1, Burst: 2})
	for i := 0; i < 100; i++ {
		rb.RecordRequest()
	}
	if got := rb.Tokens(); got != 2 {
		t.Fatalf("tokens after heavy traffic = %v, want capped at 2", got)
	}
}

func TestRetryBudgetNilIsUnlimited(t *testing.T) {
	var rb *RetryBudget
	rb.RecordRequest()
	for i := 0; i < 50; i++ {
		if !rb.AllowRetry() {
			t.Fatal("nil RetryBudget denied a retry")
		}
	}
}

func TestDeadlineHeaderRoundTrip(t *testing.T) {
	h := http.Header{}
	SetDeadlineHeader(h, 1500*time.Millisecond)
	got, ok := ParseDeadlineHeader(h)
	if !ok || got != 1500*time.Millisecond {
		t.Fatalf("round trip = %v, %v; want 1.5s, true", got, ok)
	}
	// A budget already spent clamps to zero, not a negative sleep.
	SetDeadlineHeader(h, -time.Second)
	got, ok = ParseDeadlineHeader(h)
	if !ok || got != 0 {
		t.Fatalf("negative budget = %v, %v; want 0, true", got, ok)
	}
}

func TestDeadlineHeaderMalformed(t *testing.T) {
	for _, v := range []string{"", "abc", "12.5x", "-", "9e99e9"} {
		h := http.Header{}
		if v != "" {
			h.Set(DeadlineHeader, v)
		}
		if _, ok := ParseDeadlineHeader(h); ok {
			t.Fatalf("ParseDeadlineHeader accepted %q", v)
		}
	}
}

func TestClientStampsDeadlineHeader(t *testing.T) {
	var gotMs atomic.Int64
	gotMs.Store(-1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if budget, ok := ParseDeadlineHeader(r.Header); ok {
			gotMs.Store(budget.Milliseconds())
		}
	}))
	defer srv.Close()
	c := NewClient(ClientConfig{MaxAttempts: 1, HopMargin: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := c.Do(ctx, http.MethodGet, srv.URL, nil, nil)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	resp.Body.Close()
	ms := gotMs.Load()
	// remaining(≈2000ms) minus the 50ms hop margin, minus scheduling.
	if ms <= 0 || ms > 1950 {
		t.Fatalf("propagated budget = %dms, want (0, 1950]", ms)
	}
}

func TestClientBreakerFailsFastAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer srv.Close()

	clk := newFakeClock()
	breakers := testBreakers(BreakerConfig{FailThreshold: 2, Cooldown: time.Second}, clk)
	c := NewClient(ClientConfig{MaxAttempts: 1, Breakers: breakers})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		resp, err := c.Do(ctx, http.MethodGet, srv.URL, nil, nil)
		if err != nil {
			t.Fatalf("Do %d: %v", i, err)
		}
		resp.Body.Close()
	}
	before := hits.Load()
	// Breaker open: the next call fails fast without touching the wire.
	_, err := c.Do(ctx, http.MethodGet, srv.URL, nil, nil)
	var boe *BreakerOpenError
	if !errors.As(err, &boe) {
		t.Fatalf("Do with open breaker = %v, want *BreakerOpenError", err)
	}
	if hits.Load() != before {
		t.Fatal("open breaker let a request reach the peer")
	}
	// After the cooldown the half-open trial goes through; a healthy
	// answer closes the breaker again.
	healthy.Store(true)
	clk.advance(1100 * time.Millisecond)
	resp, err := c.Do(ctx, http.MethodGet, srv.URL, nil, nil)
	if err != nil {
		t.Fatalf("Do after recovery: %v", err)
	}
	resp.Body.Close()
	if st := breakers.State(peerKey(srv.URL)); st != BreakerClosed {
		t.Fatalf("breaker after healthy trial = %v, want closed", st)
	}
}

func TestClientRetryBudgetStopsRetryStorm(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	rb := NewRetryBudget(RetryBudgetConfig{Ratio: 0.1, Burst: 1})
	c := NewClient(ClientConfig{
		MaxAttempts: 10,
		BaseWait:    time.Millisecond,
		MaxWait:     time.Millisecond,
		Jitter:      noJitter,
		RetryBudget: rb,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := c.Do(ctx, http.MethodGet, srv.URL, nil, nil)
	if err != nil {
		t.Fatalf("Do: %v (want the shed response relayed)", err)
	}
	resp.Body.Close()
	// One seeded token: the first attempt plus one retry, not ten.
	if got := hits.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2 (budget of 1 retry)", got)
	}
}
