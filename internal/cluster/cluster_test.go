package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("http://a:8080, http://b:8081*3 ,https://c:9000")
	if err != nil {
		t.Fatalf("ParsePeers: %v", err)
	}
	if len(peers) != 3 {
		t.Fatalf("got %d peers, want 3", len(peers))
	}
	want := []Peer{
		{Name: "a:8080", URL: "http://a:8080", Weight: 1},
		{Name: "b:8081", URL: "http://b:8081", Weight: 3},
		{Name: "c:9000", URL: "https://c:9000", Weight: 1},
	}
	for i, w := range want {
		if *peers[i] != w {
			t.Errorf("peer %d = %+v, want %+v", i, *peers[i], w)
		}
	}
}

func TestParsePeersErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		" , ",
		"ftp://a:1",
		"http://a:1*0",
		"http://a:1*x",
		"http://a:1/path",
		"http://",
		"http://a:1,http://a:1",
	} {
		if _, err := ParsePeers(spec); err == nil {
			t.Errorf("ParsePeers(%q): expected error", spec)
		}
	}
}

func testRing(t *testing.T, names ...string) *Ring {
	t.Helper()
	var peers []*Peer
	for _, n := range names {
		p, err := ParsePeer("http://" + n)
		if err != nil {
			t.Fatalf("ParsePeer(%q): %v", n, err)
		}
		peers = append(peers, p)
	}
	return NewRing(peers, 0)
}

func TestRingDeterministicAndStable(t *testing.T) {
	r1 := testRing(t, "a:1", "b:2", "c:3")
	r2 := testRing(t, "c:3", "a:1", "b:2") // order must not matter
	for fp := uint64(0); fp < 500; fp++ {
		o1, ok1 := r1.Owner(fp, nil)
		o2, ok2 := r2.Owner(fp, nil)
		if !ok1 || !ok2 {
			t.Fatalf("fp %d: no owner (ok1=%v ok2=%v)", fp, ok1, ok2)
		}
		if o1.Name != o2.Name {
			t.Fatalf("fp %d: owner depends on peer order: %s vs %s", fp, o1.Name, o2.Name)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := testRing(t, "a:1", "b:2", "c:3", "d:4")
	counts := map[string]int{}
	const n = 20000
	for fp := uint64(0); fp < n; fp++ {
		o, _ := r.Owner(fp, nil)
		counts[o.Name]++
	}
	for name, c := range counts {
		share := float64(c) / n
		if share < 0.10 || share > 0.45 {
			t.Errorf("peer %s owns %.1f%% of keys — ring badly unbalanced", name, share*100)
		}
	}
}

func TestRingWeights(t *testing.T) {
	peers := []*Peer{
		{Name: "small", URL: "http://s:1", Weight: 1},
		{Name: "big", URL: "http://b:1", Weight: 4},
	}
	r := NewRing(peers, 0)
	counts := map[string]int{}
	const n = 20000
	for fp := uint64(0); fp < n; fp++ {
		o, _ := r.Owner(fp, nil)
		counts[o.Name]++
	}
	if counts["big"] < 2*counts["small"] {
		t.Errorf("weight-4 peer owns %d keys vs weight-1 peer's %d — want at least 2x", counts["big"], counts["small"])
	}
}

func TestRingFailover(t *testing.T) {
	r := testRing(t, "a:1", "b:2", "c:3")
	down := map[string]bool{}
	healthy := func(name string) bool { return !down[name] }

	// With b down, every key b owned must move to another peer, and
	// keys a/c owned must stay put.
	var moved, kept int
	for fp := uint64(0); fp < 2000; fp++ {
		before, _ := r.Owner(fp, nil)
		down["b:2"] = true
		after, ok := r.Owner(fp, healthy)
		down["b:2"] = false
		if !ok {
			t.Fatalf("fp %d: no owner with one peer down", fp)
		}
		if after.Name == "b:2" {
			t.Fatalf("fp %d: unhealthy peer still owns key", fp)
		}
		if before.Name == "b:2" {
			moved++
		} else if before.Name != after.Name {
			t.Fatalf("fp %d: key moved from healthy peer %s to %s", fp, before.Name, after.Name)
		} else {
			kept++
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}

	// All peers down: no owner.
	allDown := func(string) bool { return false }
	if _, ok := r.Owner(42, allDown); ok {
		t.Fatal("Owner returned a peer with every peer unhealthy")
	}
}

func TestRetryAfterParsing(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	if d, ok := RetryAfter(mk("3")); !ok || d != 3*time.Second {
		t.Errorf("seconds: got %v %v", d, ok)
	}
	if _, ok := RetryAfter(mk("")); ok {
		t.Error("absent header parsed as present")
	}
	if _, ok := RetryAfter(mk("soon")); ok {
		t.Error("garbage header parsed as present")
	}
	if _, ok := RetryAfter(mk("-2")); ok {
		t.Error("negative seconds accepted")
	}
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d, ok := RetryAfter(mk(future)); !ok || d <= 5*time.Second || d > 11*time.Second {
		t.Errorf("http-date: got %v %v", d, ok)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d, ok := RetryAfter(mk(past)); !ok || d != 0 {
		t.Errorf("past http-date: got %v %v, want 0 true", d, ok)
	}
}

func noJitter(d time.Duration) time.Duration { return d }

func TestClientRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	var retries []string
	c := NewClient(ClientConfig{
		MaxAttempts: 4,
		BaseWait:    time.Millisecond,
		MaxWait:     5 * time.Millisecond,
		Jitter:      noJitter,
		OnRetry:     func(reason string) { retries = append(retries, reason) },
	})
	resp, err := c.Do(context.Background(), http.MethodGet, srv.URL, nil, nil)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if len(retries) != 2 || retries[0] != "status 503" {
		t.Fatalf("OnRetry calls = %v", retries)
	}
}

func TestClientRelaysFinalShedStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()
	c := NewClient(ClientConfig{MaxAttempts: 2, BaseWait: time.Millisecond, MaxWait: time.Millisecond, Jitter: noJitter})
	resp, err := c.Do(context.Background(), http.MethodGet, srv.URL, nil, nil)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want the relayed 429", resp.StatusCode)
	}
}

func TestClientReopensBodyPerAttempt(t *testing.T) {
	var got []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b := make([]byte, 32)
		n, _ := r.Body.Read(b)
		got = append(got, string(b[:n]))
		if len(got) < 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer srv.Close()
	c := NewClient(ClientConfig{MaxAttempts: 3, BaseWait: time.Millisecond, MaxWait: time.Millisecond, Jitter: noJitter})
	resp, err := c.Do(context.Background(), http.MethodPost, srv.URL, nil, []byte("payload"))
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	resp.Body.Close()
	if len(got) != 2 || got[0] != "payload" || got[1] != "payload" {
		t.Fatalf("bodies seen by server = %q, want full payload on every attempt", got)
	}
}

func TestClientTransportErrorExhaustsAttempts(t *testing.T) {
	// A listener that is closed immediately: connection refused.
	srv := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	url := srv.URL
	srv.Close()

	var retries atomic.Int32
	c := NewClient(ClientConfig{
		MaxAttempts: 3,
		BaseWait:    time.Millisecond,
		MaxWait:     time.Millisecond,
		Jitter:      noJitter,
		OnRetry:     func(string) { retries.Add(1) },
	})
	_, err := c.Do(context.Background(), http.MethodGet, url, nil, nil)
	if err == nil {
		t.Fatal("expected error against closed listener")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error %q does not mention exhausted attempts", err)
	}
	if retries.Load() != 2 {
		t.Fatalf("OnRetry fired %d times, want 2", retries.Load())
	}
}

func TestClientHonorsCallerContext(t *testing.T) {
	// A peer sheds with Retry-After far beyond the caller's remaining
	// budget. Sleeping would outlive the request, so the client relays
	// the shed response immediately instead of burning the deadline.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := NewClient(ClientConfig{MaxAttempts: 5, MaxWait: time.Minute, Jitter: noJitter})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	resp, err := c.Do(ctx, http.MethodGet, srv.URL, nil, nil)
	if err != nil {
		t.Fatalf("Do: %v (want the shed response relayed, not an error)", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 relayed", resp.StatusCode)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("Do slept past the caller's deadline: %v", time.Since(start))
	}
}

func TestClientBackoffCapped(t *testing.T) {
	c := NewClient(ClientConfig{BaseWait: 10 * time.Millisecond, MaxWait: 40 * time.Millisecond, Jitter: noJitter})
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if got := c.backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func healthPeers(t *testing.T, urls ...string) []*Peer {
	t.Helper()
	var peers []*Peer
	for _, u := range urls {
		p, err := ParsePeer(u)
		if err != nil {
			t.Fatalf("ParsePeer(%q): %v", u, err)
		}
		peers = append(peers, p)
	}
	return peers
}

func TestHealthThresholdsAndRecovery(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer srv.Close()

	peers := healthPeers(t, srv.URL)
	var transitions []string
	h := NewHealth(peers, HealthConfig{
		FailThreshold:    2,
		RecoverThreshold: 2,
		ProbeTimeout:     time.Second,
		OnChange: func(p *Peer, up bool) {
			transitions = append(transitions, fmt.Sprintf("%s=%v", p.Name, up))
		},
	})
	p := peers[0]

	if !h.Healthy(p.Name) {
		t.Fatal("peer should start up")
	}
	healthy.Store(false)
	h.Probe(p)
	if !h.Healthy(p.Name) {
		t.Fatal("one failure must not cross FailThreshold=2")
	}
	h.Probe(p)
	if h.Healthy(p.Name) {
		t.Fatal("two consecutive failures should mark peer down")
	}
	if h.State(p.Name) != "down" {
		t.Fatalf("state = %q, want down", h.State(p.Name))
	}

	healthy.Store(true)
	h.Probe(p)
	if h.Healthy(p.Name) {
		t.Fatal("one success must not cross RecoverThreshold=2")
	}
	if h.State(p.Name) != "half-open" {
		t.Fatalf("state = %q, want half-open", h.State(p.Name))
	}
	h.Probe(p)
	if !h.Healthy(p.Name) {
		t.Fatal("two consecutive successes should recover the peer")
	}

	want := []string{p.Name + "=false", p.Name + "=true"}
	if len(transitions) != 2 || transitions[0] != want[0] || transitions[1] != want[1] {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
}

func TestHealthSelfAlwaysUp(t *testing.T) {
	peers := healthPeers(t, "http://self:1", "http://other:1")
	h := NewHealth(peers, HealthConfig{Self: "self:1", FailThreshold: 1})
	h.Probe(peers[1]) // other:1 is unreachable → down after 1 failure
	if h.Healthy("other:1") {
		t.Fatal("unreachable peer should be down")
	}
	if !h.Healthy("self:1") || h.State("self:1") != "up" {
		t.Fatal("self must always be healthy")
	}
}

func TestHealthInterruptedFlapDoesNotRecover(t *testing.T) {
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	peers := healthPeers(t, srv.URL)
	h := NewHealth(peers, HealthConfig{FailThreshold: 1, RecoverThreshold: 2, ProbeTimeout: time.Second})
	p := peers[0]

	h.Probe(p) // down
	healthy.Store(true)
	h.Probe(p) // 1 success
	healthy.Store(false)
	h.Probe(p) // failure resets the success streak
	healthy.Store(true)
	h.Probe(p) // 1 success again — still short of threshold
	if h.Healthy(p.Name) {
		t.Fatal("interrupted success streak must not recover the peer")
	}
	h.Probe(p)
	if !h.Healthy(p.Name) {
		t.Fatal("two uninterrupted successes should recover the peer")
	}
}

func TestHealthStartStop(t *testing.T) {
	var probes atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	h := NewHealth(healthPeers(t, srv.URL), HealthConfig{Interval: 5 * time.Millisecond, ProbeTimeout: time.Second})
	h.Start()
	deadline := time.Now().Add(2 * time.Second)
	for probes.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	h.Stop()
	if probes.Load() < 2 {
		t.Fatalf("probe loop made %d probes, want >= 2", probes.Load())
	}
	h.Stop() // idempotent
}
