// Package cluster is the multi-node substrate of symclusterd: the
// pieces a coordinator needs to shard graphs across a static peer list
// and keep serving when a peer dies.
//
//   - peers.go  — peer specs ("http://host:port[*weight]") and parsing
//   - ring.go   — weighted consistent hashing of graph fingerprints,
//     with ownership falling through to the next healthy peer
//   - health.go — active /healthz prober with failure-count thresholds
//     and half-open recovery
//   - client.go — the retrying HTTP client every inter-node hop goes
//     through: per-attempt timeouts, capped exponential backoff with
//     jitter, and honor-the-server's-Retry-After semantics
//
// The package is deliberately free of symcluster imports: it knows
// about peers, hashes and HTTP, not about graphs or jobs, so
// internal/server composes it without a dependency cycle and the CLI
// reuses the client for its own retries.
//
// Fault injection: the "proxy.forward" site fires before every client
// attempt and "peer.health" before every health probe, so chaos tests
// can force retries, declare peers dead, and replay failovers
// deterministically (see internal/faultinject).
package cluster

import (
	"fmt"
	"hash/fnv"
	"net/url"
	"strconv"
	"strings"
)

// Peer is one symclusterd node in the static cluster membership.
type Peer struct {
	// Name identifies the peer in logs, metrics and job-id
	// qualification: the host:port of its URL.
	Name string
	// URL is the peer's base URL ("http://host:port"), no trailing
	// slash.
	URL string
	// Weight scales the peer's share of the fingerprint ring (virtual
	// node count). Operators size it to capacity; 1 is the default.
	Weight int
}

// ParsePeers parses the -peers flag: a comma-separated list of
// "http://host:port" entries, each optionally suffixed with "*weight"
// to give bigger machines a proportionally larger slice of the
// fingerprint ring. Names (host:port) must be unique.
func ParsePeers(spec string) ([]*Peer, error) {
	var peers []*Peer
	seen := make(map[string]bool)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		p, err := ParsePeer(entry)
		if err != nil {
			return nil, err
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p.Name)
		}
		seen[p.Name] = true
		peers = append(peers, p)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return peers, nil
}

// ParsePeer parses one "http://host:port[*weight]" entry.
func ParsePeer(entry string) (*Peer, error) {
	weight := 1
	if at := strings.LastIndexByte(entry, '*'); at >= 0 {
		w, err := strconv.Atoi(entry[at+1:])
		if err != nil || w < 1 {
			return nil, fmt.Errorf("cluster: bad peer weight in %q (want a positive integer)", entry)
		}
		weight = w
		entry = entry[:at]
	}
	u, err := url.Parse(entry)
	if err != nil {
		return nil, fmt.Errorf("cluster: bad peer URL %q: %w", entry, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("cluster: peer %q must use http or https", entry)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("cluster: peer %q has no host", entry)
	}
	if u.Path != "" && u.Path != "/" {
		return nil, fmt.Errorf("cluster: peer %q must not have a path", entry)
	}
	return &Peer{
		Name:   u.Host,
		URL:    u.Scheme + "://" + u.Host,
		Weight: weight,
	}, nil
}

// HashString returns the 64-bit FNV-1a hash of s — the ring position
// function, exported so callers can place non-fingerprint keys (e.g. a
// dead peer's name, when electing its adoption owner) on the same ring.
func HashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
