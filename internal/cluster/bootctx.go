package cluster

import "context"

// bootContext is the package's only sanctioned source of a fresh root
// context. Request paths must thread the caller's context so deadlines
// propagate end-to-end — `make lint` rejects context.Background() in
// this package's non-test files — but some work legitimately has no
// caller: the health prober's probe loop, whose cadence is owned by the
// prober itself, not by any request. Routing those through a named
// helper keeps each use auditable (grep bootContext) instead of
// invisible among forbidden Backgrounds.
func bootContext() context.Context {
	return context.Background() // the lint excludes bootctx.go by name
}
