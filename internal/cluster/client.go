package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"symcluster/internal/faultinject"
	"symcluster/internal/obs"
)

// ForwardHeader marks a request as already forwarded once: the
// receiving node must answer it itself rather than proxy again, so a
// stale ring can never bounce a request in a loop. Its value is the
// forwarding node's name. Like the traceparent header it is set only
// here in internal/cluster (enforced by `make lint`); servers read it
// freely.
const ForwardHeader = "X-Symclusterd-Forwarded"

// MarkForwarded stamps h with the one-hop forwarding marker.
func MarkForwarded(h http.Header, self string) {
	h.Set(ForwardHeader, self)
}

// DeadlineHeader carries the caller's remaining time budget, in whole
// milliseconds, across a hop: "how long are you still willing to wait",
// not an absolute timestamp, so clock skew between nodes cannot corrupt
// it. The client stamps it on every attempt from the context deadline
// (minus HopMargin, reserving time for the reply to travel back);
// server middleware converts it into a context.WithDeadline, so a
// queued job whose caller has given up is dropped before it burns a
// worker. Like every X-Symclusterd-* header it is written only in this
// package (enforced by `make lint`).
const DeadlineHeader = "X-Symclusterd-Deadline-Ms"

// SetDeadlineHeader stamps h with a remaining budget. Negative budgets
// clamp to zero — an explicit "already dead" the receiver fast-fails.
// Exported because this package is the module's only propagation-header
// writer; tests and clients needing an explicit budget go through it.
func SetDeadlineHeader(h http.Header, remaining time.Duration) {
	if remaining < 0 {
		remaining = 0
	}
	h.Set(DeadlineHeader, strconv.FormatInt(remaining.Milliseconds(), 10))
}

// ParseDeadlineHeader reads a request's remaining-budget header. ok is
// false when the header is absent or malformed (a malformed budget is
// ignored, never treated as zero — that would 504 valid traffic on a
// corrupt proxy).
func ParseDeadlineHeader(h http.Header) (time.Duration, bool) {
	v := h.Get(DeadlineHeader)
	if v == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms < 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// Client is the retrying HTTP client every inter-node hop (and the
// CLI's -server mode) goes through. Each request gets up to
// MaxAttempts tries; an attempt fails on a transport error or a
// shedding status (429 Too Many Requests / 503 Service Unavailable).
// Between attempts the client sleeps the server's Retry-After when one
// was given, otherwise capped exponential backoff with full jitter —
// both bounded by MaxWait so a misbehaving server can't park a caller.
//
// This file is the only place in the module allowed to construct an
// http.Client (enforced by `make lint`): a raw client has no attempt
// timeout, no backoff and no Retry-After handling, which is exactly
// how cascading retry storms start.
type Client struct {
	cfg  ClientConfig
	http *http.Client
}

// ClientConfig sizes a Client. Zero values select the defaults noted
// on each field.
type ClientConfig struct {
	// MaxAttempts bounds total tries per request (default 4; 1 disables
	// retries).
	MaxAttempts int
	// AttemptTimeout bounds each individual attempt (default 10s).
	AttemptTimeout time.Duration
	// BaseWait is the first backoff step (default 100ms); attempt n
	// waits ~BaseWait×2ⁿ, jittered.
	BaseWait time.Duration
	// MaxWait caps every wait, whether from backoff or a server's
	// Retry-After (default 5s).
	MaxWait time.Duration
	// OnRetry, when non-nil, is called once per retry sleep with the
	// reason ("status 503", "connection refused", …) — the metrics
	// hook behind symclusterd_proxy_retries_total.
	OnRetry func(reason string)
	// HopMargin is subtracted from the context's remaining budget when
	// stamping DeadlineHeader on an outgoing request (default 50ms),
	// reserving time for the reply to travel back so the peer does not
	// spend the caller's entire budget computing an answer nobody will
	// be there to read.
	HopMargin time.Duration
	// Breakers, when non-nil, gates every attempt through the per-peer
	// circuit breaker set: requests to a peer whose breaker is open fail
	// fast with a *BreakerOpenError instead of burning AttemptTimeout.
	Breakers *BreakerSet
	// RetryBudget, when non-nil, bounds what fraction of this client's
	// traffic may be retries; when the bucket is empty the last shed
	// response (or transport error) is returned instead of retried.
	RetryBudget *RetryBudget
	// Transport overrides the HTTP transport (tests; nil means
	// http.DefaultTransport).
	Transport http.RoundTripper
	// Jitter overrides the backoff jitter for deterministic tests; nil
	// selects full jitter in [d/2, d].
	Jitter func(d time.Duration) time.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 10 * time.Second
	}
	if c.BaseWait <= 0 {
		c.BaseWait = 100 * time.Millisecond
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 5 * time.Second
	}
	if c.HopMargin <= 0 {
		c.HopMargin = 50 * time.Millisecond
	}
	if c.Jitter == nil {
		c.Jitter = func(d time.Duration) time.Duration {
			if d <= 1 {
				return d
			}
			return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
		}
	}
	return c
}

// NewClient builds a retrying client.
func NewClient(cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		cfg: cfg,
		// The per-attempt deadline is applied via context (so a slow
		// body read counts against it too); the http.Client itself has
		// no global timeout, which would cap the whole retry sequence.
		http: &http.Client{Transport: cfg.Transport},
	}
}

// Retryable reports whether an HTTP status is worth retrying: the two
// shedding codes whose contract is "come back later".
func Retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// RetryAfter parses a response's Retry-After header (delta-seconds or
// HTTP-date). ok is false when the header is absent or malformed.
func RetryAfter(resp *http.Response) (time.Duration, bool) {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// Do sends one buffered-body request with retries. header may be nil;
// it is copied into every attempt. The returned response's body must
// be closed by the caller; a non-2xx final response is returned, not
// turned into an error, so callers can relay status and body.
func (c *Client) Do(ctx context.Context, method, url string, header http.Header, body []byte) (*http.Response, error) {
	return c.DoStream(ctx, method, url, header, func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(body)), nil
	}, int64(len(body)))
}

// DoStream is Do for bodies too large to buffer: open is called once
// per attempt to produce a fresh body reader (e.g. re-opening a file),
// so retries never resend a half-consumed stream. contentLength < 0
// means unknown.
func (c *Client) DoStream(ctx context.Context, method, url string, header http.Header, open func() (io.ReadCloser, error), contentLength int64) (*http.Response, error) {
	peer := peerKey(url)
	c.cfg.RetryBudget.RecordRequest()
	var lastErr error
	for attempt := 1; ; attempt++ {
		// The breaker is consulted per attempt, not per request: a
		// breaker tripped by THIS request's earlier failures stops the
		// remaining attempts too.
		if berr := c.cfg.Breakers.Allow(peer); berr != nil {
			return nil, fmt.Errorf("cluster: %s %s: %w", method, url, berr)
		}
		resp, err := c.attempt(ctx, method, url, header, open, contentLength)
		c.recordOutcome(ctx, peer, resp, err)
		if err == nil && !Retryable(resp.StatusCode) {
			return resp, nil
		}
		last := attempt >= c.cfg.MaxAttempts
		var wait time.Duration
		var reason string
		if err != nil {
			if ctx.Err() != nil {
				// The caller's context expired (or was canceled): the
				// request is dead no matter how many attempts remain.
				return nil, err
			}
			lastErr = err
			if last {
				return nil, fmt.Errorf("cluster: %s %s failed after %d attempts: %w", method, url, attempt, lastErr)
			}
			wait = c.backoff(attempt)
			reason = fmt.Sprintf("attempt error: %v", err)
			if !deadlineAllows(ctx, wait) {
				return nil, fmt.Errorf("cluster: %s %s: retry would outlive the deadline: %w", method, url, lastErr)
			}
			if !c.cfg.RetryBudget.AllowRetry() {
				return nil, fmt.Errorf("cluster: %s %s: retry budget exhausted: %w", method, url, lastErr)
			}
		} else {
			if last {
				return resp, nil // relay the final 429/503 to the caller
			}
			if ra, ok := RetryAfter(resp); ok {
				if ra > c.cfg.MaxWait {
					ra = c.cfg.MaxWait
				}
				wait = ra
			} else {
				wait = c.backoff(attempt)
			}
			reason = "status " + strconv.Itoa(resp.StatusCode)
			// Never sleep past the point where the request is already
			// dead: when honoring the wait (Retry-After or backoff) would
			// outlive the caller's deadline, relay the shed response now —
			// the caller still has time to act on it.
			if !deadlineAllows(ctx, wait) {
				return resp, nil
			}
			if !c.cfg.RetryBudget.AllowRetry() {
				return resp, nil
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
		if c.cfg.OnRetry != nil {
			c.cfg.OnRetry(reason)
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// recordOutcome feeds one attempt's result to the breaker. A transport
// error or shedding status counts as a failure — both mean "stop
// sending this peer work for a while". An attempt killed by the
// caller's own cancellation or deadline is neither: the trial slot is
// released without judging the peer.
func (c *Client) recordOutcome(ctx context.Context, peer string, resp *http.Response, err error) {
	if c.cfg.Breakers == nil {
		return
	}
	if err != nil && ctx.Err() != nil {
		c.cfg.Breakers.Release(peer)
		return
	}
	c.cfg.Breakers.Record(peer, err == nil && !Retryable(resp.StatusCode))
}

// deadlineAllows reports whether sleeping for wait still leaves time
// before ctx's deadline. No deadline always allows.
func deadlineAllows(ctx context.Context, wait time.Duration) bool {
	dl, ok := ctx.Deadline()
	if !ok {
		return true
	}
	return time.Until(dl) > wait
}

// peerKey derives the breaker key for a request URL: the host:port,
// which matches cluster peer names.
func peerKey(rawURL string) string {
	if u, err := url.Parse(rawURL); err == nil && u.Host != "" {
		return u.Host
	}
	return rawURL
}

// backoff returns the jittered, capped exponential wait before retrying
// after the given 1-based attempt.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseWait
	for i := 1; i < attempt && d < c.cfg.MaxWait; i++ {
		d *= 2
	}
	if d > c.cfg.MaxWait {
		d = c.cfg.MaxWait
	}
	return c.cfg.Jitter(d)
}

// cancelBody ties an attempt's context cancel to the response body's
// lifetime, so the per-attempt deadline covers the body read without
// killing it early.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// attempt performs one try under the per-attempt timeout. The
// "proxy.forward" fault site fires first, so chaos tests can fail or
// slow individual attempts deterministically.
func (c *Client) attempt(ctx context.Context, method, url string, header http.Header, open func() (io.ReadCloser, error), contentLength int64) (*http.Response, error) {
	if err := faultinject.Fire("proxy.forward"); err != nil {
		return nil, err
	}
	body, err := open()
	if err != nil {
		return nil, fmt.Errorf("cluster: opening request body: %w", err)
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	req, err := http.NewRequestWithContext(actx, method, url, body)
	if err != nil {
		body.Close()
		cancel()
		return nil, err
	}
	req.ContentLength = contentLength
	for k, vs := range header {
		req.Header[k] = append([]string(nil), vs...)
	}
	// Deadline propagation: the caller's remaining budget rides every
	// hop as DeadlineHeader, minus HopMargin for the reply's travel.
	// Stamped from the live context — overwriting any relayed value, so
	// a forwarded request carries the budget as of THIS hop, not a stale
	// figure from when the entry node received it.
	if dl, ok := ctx.Deadline(); ok {
		SetDeadlineHeader(req.Header, time.Until(dl)-c.cfg.HopMargin)
	}
	// Trace propagation: every hop through this client carries the
	// caller's current span as a traceparent-style header, so the peer
	// joins the same trace instead of starting a disconnected one. This
	// client is the single injection point (enforced by `make lint`).
	if tid, sid, ok := obs.SpanContext(ctx); ok && req.Header.Get(obs.TraceparentHeader) == "" {
		req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(tid, sid))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}
