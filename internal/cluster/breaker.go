package cluster

import (
	"fmt"
	"sync"
	"time"
)

// Per-peer circuit breakers. A breaker watches the outcomes of real
// traffic to one peer and, after FailThreshold consecutive failures
// (transport errors or shedding statuses), opens: further requests to
// that peer fail fast with *BreakerOpenError instead of burning an
// attempt timeout against a node that is down or drowning. After
// Cooldown the breaker goes half-open and admits exactly one trial
// request; success closes it, failure re-opens it for another cooldown.
//
// The breaker is deliberately distinct from the health prober
// (health.go): the prober owns ring membership — it decides who OWNS
// data — while the breaker only decides whether THIS node should spend
// a connection on a peer right now. A peer can be "up" in the ring
// (serving its shard fine for others) while this node's breaker to it
// is open because the last N forwards shed; conversely membership never
// moves just because a breaker opened.

// BreakerState is one breaker's position in the closed → open →
// half-open cycle.
type BreakerState int

const (
	// BreakerClosed passes traffic and counts failures.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits one trial request after the cooldown.
	BreakerHalfOpen
	// BreakerOpen fails fast until the cooldown elapses.
	BreakerOpen
)

// String renders the state for logs, metrics help text and status rows.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerOpenError is returned (wrapped) by the client when a peer's
// breaker refuses the request without sending it. RetryAfter is the
// time until the breaker next admits a trial; servers relay it as a
// Retry-After header with a 503.
type BreakerOpenError struct {
	Peer       string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("cluster: breaker open for peer %s (retry in %s)", e.Peer, e.RetryAfter.Round(time.Millisecond))
}

// BreakerConfig sizes a BreakerSet. Zero values select the defaults
// noted on each field.
type BreakerConfig struct {
	// FailThreshold is the consecutive-failure count that opens a
	// breaker (default 5).
	FailThreshold int
	// Cooldown is how long an open breaker rejects before going
	// half-open (default 5s).
	Cooldown time.Duration
	// OnChange, when non-nil, is called (outside the lock) on every
	// state transition — the metrics hook behind
	// symclusterd_breaker_state.
	OnChange func(peer string, state BreakerState)
	// now overrides the clock for deterministic tests.
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// BreakerSet holds one breaker per peer, created lazily on first use.
type BreakerSet struct {
	cfg BreakerConfig

	mu    sync.Mutex
	peers map[string]*breaker
}

type breaker struct {
	state      BreakerState
	consecFail int
	openedAt   time.Time
	// trial marks the single in-flight half-open request; further
	// requests are rejected until its outcome is recorded.
	trial bool
}

// NewBreakerSet builds an empty set; breakers appear as peers are used.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), peers: make(map[string]*breaker)}
}

// Allow reports whether a request to peer may proceed. It returns nil
// when the breaker is closed or this request won the half-open trial
// slot, and a *BreakerOpenError otherwise. Every Allow that returns nil
// MUST be paired with exactly one Record, or a half-open breaker
// wedges with its trial slot taken.
func (b *BreakerSet) Allow(peer string) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	br := b.peers[peer]
	if br == nil {
		br = &breaker{}
		b.peers[peer] = br
	}
	var changed bool
	now := b.cfg.now()
	if br.state == BreakerOpen && now.Sub(br.openedAt) >= b.cfg.Cooldown {
		br.state = BreakerHalfOpen
		br.trial = false
		changed = true
	}
	var err error
	switch br.state {
	case BreakerClosed:
	case BreakerHalfOpen:
		if br.trial {
			err = &BreakerOpenError{Peer: peer, RetryAfter: b.cfg.Cooldown}
		} else {
			br.trial = true
		}
	case BreakerOpen:
		err = &BreakerOpenError{Peer: peer, RetryAfter: b.cfg.Cooldown - now.Sub(br.openedAt)}
	}
	b.mu.Unlock()
	if changed && b.cfg.OnChange != nil {
		b.cfg.OnChange(peer, BreakerHalfOpen)
	}
	return err
}

// Record feeds one allowed request's outcome back. Success closes a
// half-open breaker and resets the failure run; failure re-opens a
// half-open breaker immediately and opens a closed one once the
// consecutive run reaches FailThreshold.
func (b *BreakerSet) Record(peer string, ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	br := b.peers[peer]
	if br == nil {
		br = &breaker{}
		b.peers[peer] = br
	}
	var to BreakerState = -1
	if ok {
		br.consecFail = 0
		br.trial = false
		if br.state != BreakerClosed {
			br.state = BreakerClosed
			to = BreakerClosed
		}
	} else {
		br.consecFail++
		br.trial = false
		if br.state == BreakerHalfOpen || (br.state == BreakerClosed && br.consecFail >= b.cfg.FailThreshold) {
			br.state = BreakerOpen
			br.openedAt = b.cfg.now()
			to = BreakerOpen
		}
	}
	b.mu.Unlock()
	if to >= 0 && b.cfg.OnChange != nil {
		b.cfg.OnChange(peer, to)
	}
}

// Release frees an Allow'd slot without judging the peer: the attempt
// died of the caller's own cancellation or deadline, which says nothing
// about the peer's health. Without this a half-open breaker's trial
// slot would wedge shut on a caller timeout.
func (b *BreakerSet) Release(peer string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if br := b.peers[peer]; br != nil {
		br.trial = false
	}
	b.mu.Unlock()
}

// State returns the breaker's current position for the named peer
// (closed for peers never seen). An open breaker whose cooldown has
// elapsed reports half-open, matching what the next Allow would do.
func (b *BreakerSet) State(peer string) BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.peers[peer]
	if br == nil {
		return BreakerClosed
	}
	if br.state == BreakerOpen && b.cfg.now().Sub(br.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return br.state
}

// States snapshots every known peer's state, for the cluster status
// plane.
func (b *BreakerSet) States() map[string]BreakerState {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]BreakerState, len(b.peers))
	now := b.cfg.now()
	for peer, br := range b.peers {
		st := br.state
		if st == BreakerOpen && now.Sub(br.openedAt) >= b.cfg.Cooldown {
			st = BreakerHalfOpen
		}
		out[peer] = st
	}
	return out
}
