package cluster

import (
	"io"
	"net/http"
	"sync"
	"time"

	"symcluster/internal/faultinject"
)

// Health actively probes every peer's /healthz and classifies each as
// up or down. Classification is hysteretic: a peer must fail
// FailThreshold consecutive probes to be declared down (one dropped
// packet doesn't trigger a failover) and must pass RecoverThreshold
// consecutive probes to come back (a flapping peer doesn't yo-yo
// ownership). Between those two points a down peer with recent
// successes is "half-open": still excluded from ownership, but on its
// way back. The local node (Self) is always healthy — a coordinator
// never routes away from itself on the word of its own prober.
type Health struct {
	cfg    HealthConfig
	client *Client

	mu    sync.Mutex
	peers map[string]*peerHealth

	stop chan struct{}
	done chan struct{}
}

type peerHealth struct {
	peer       *Peer
	up         bool
	consecFail int
	consecOK   int
	lastErr    error
}

// HealthConfig sizes a Health checker. Zero values select the defaults
// noted on each field.
type HealthConfig struct {
	// Self is the local peer's name; it is reported healthy without
	// probing.
	Self string
	// Interval is the probe period (default 2s).
	Interval time.Duration
	// ProbeTimeout bounds one probe (default Interval, capped at 5s).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive-failure count that declares a
	// peer down (default 3).
	FailThreshold int
	// RecoverThreshold is the consecutive-success count that brings a
	// down peer back (default 2).
	RecoverThreshold int
	// OnChange, when non-nil, is called (outside the state lock) on
	// every up/down transition.
	OnChange func(peer *Peer, up bool)
	// OnDown, when non-nil, is called (outside the state lock, after
	// OnChange) on every failed probe of a down peer — the transition
	// probe included — with the probe's error. Callers use it to drive
	// recovery work that must retry while the peer stays dead (e.g. WAL
	// adoption) without re-implementing a poll loop.
	OnDown func(peer *Peer, err error)
	// Transport overrides the probe HTTP transport (tests).
	Transport http.RoundTripper
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.Interval
		if c.ProbeTimeout > 5*time.Second {
			c.ProbeTimeout = 5 * time.Second
		}
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RecoverThreshold <= 0 {
		c.RecoverThreshold = 2
	}
	return c
}

// NewHealth builds a checker over the given peers. All peers start up:
// assuming the cluster healthy at boot avoids a thundering herd of
// reroutes while the first probe round is still in flight.
func NewHealth(peers []*Peer, cfg HealthConfig) *Health {
	cfg = cfg.withDefaults()
	h := &Health{
		cfg: cfg,
		// Probes never retry: a failed attempt IS the signal, and the
		// thresholds provide the damping a retry loop would duplicate.
		client: NewClient(ClientConfig{
			MaxAttempts:    1,
			AttemptTimeout: cfg.ProbeTimeout,
			Transport:      cfg.Transport,
		}),
		peers: make(map[string]*peerHealth, len(peers)),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, p := range peers {
		h.peers[p.Name] = &peerHealth{peer: p, up: true}
	}
	return h
}

// Start launches the probe loop. The first round runs immediately.
func (h *Health) Start() {
	go func() {
		defer close(h.done)
		h.probeAll()
		t := time.NewTicker(h.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				h.probeAll()
			}
		}
	}()
}

// Stop halts the probe loop and waits for it to exit.
func (h *Health) Stop() {
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
}

// Healthy reports whether the named peer is currently up. Self and
// unknown names are healthy (the ring only asks about known peers, and
// failing open for self keeps single-name clusters serving).
func (h *Health) Healthy(name string) bool {
	if name == h.cfg.Self {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ph, ok := h.peers[name]
	if !ok {
		return true
	}
	return ph.up
}

// State returns the probe state of a peer for /healthz-style
// introspection: "up", "down", or "half-open" (down but with recent
// probe successes short of RecoverThreshold). Self is always "up".
func (h *Health) State(name string) string {
	if name == h.cfg.Self {
		return "up"
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ph, ok := h.peers[name]
	switch {
	case !ok || ph.up:
		return "up"
	case ph.consecOK > 0:
		return "half-open"
	default:
		return "down"
	}
}

// probeAll runs one probe round, sequentially — peer lists are small
// and sequential probes keep transitions ordered deterministically.
func (h *Health) probeAll() {
	h.mu.Lock()
	targets := make([]*peerHealth, 0, len(h.peers))
	for _, ph := range h.peers {
		if ph.peer.Name != h.cfg.Self {
			targets = append(targets, ph)
		}
	}
	h.mu.Unlock()
	for _, ph := range targets {
		h.Probe(ph.peer)
	}
}

// Probe performs one health probe of the peer and records the result,
// firing OnChange if the verdict crossed a threshold. Exposed so tests
// drive rounds synchronously instead of racing the ticker.
func (h *Health) Probe(p *Peer) {
	err := h.probe(p)
	var changed *Peer
	var nowUp, downProbe bool
	h.mu.Lock()
	ph := h.peers[p.Name]
	if ph != nil {
		if err != nil {
			ph.lastErr = err
			ph.consecOK = 0
			ph.consecFail++
			if ph.up && ph.consecFail >= h.cfg.FailThreshold {
				ph.up = false
				changed, nowUp = ph.peer, false
			}
			downProbe = !ph.up
		} else {
			ph.lastErr = nil
			ph.consecFail = 0
			ph.consecOK++
			if !ph.up && ph.consecOK >= h.cfg.RecoverThreshold {
				ph.up = true
				changed, nowUp = ph.peer, true
			}
		}
	}
	h.mu.Unlock()
	if changed != nil && h.cfg.OnChange != nil {
		h.cfg.OnChange(changed, nowUp)
	}
	if downProbe && h.cfg.OnDown != nil {
		h.cfg.OnDown(p, err)
	}
}

// probe issues one GET /healthz; any transport error or non-200 is a
// failure (a draining peer deliberately serves 503 so traffic moves
// before it exits). The "peer.health" fault site lets chaos tests
// declare a peer dead without killing its process.
func (h *Health) probe(p *Peer) error {
	if err := faultinject.Fire("peer.health"); err != nil {
		return err
	}
	resp, err := h.client.Do(bootContext(), http.MethodGet, p.URL+"/healthz", nil, nil)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &ProbeStatusError{Peer: p.Name, Status: resp.StatusCode}
	}
	return nil
}

// ProbeStatusError reports a health probe answered with a non-200.
type ProbeStatusError struct {
	Peer   string
	Status int
}

func (e *ProbeStatusError) Error() string {
	return "cluster: peer " + e.Peer + " healthz returned " + http.StatusText(e.Status)
}
