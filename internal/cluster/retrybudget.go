package cluster

import "sync"

// RetryBudget is a token bucket that bounds what fraction of recent
// traffic may be retries, so the retrying client cannot amplify a
// brownout into a retry storm: when every request to a shedding peer
// fails and is retried MaxAttempts-1 times, the retry traffic is a
// multiple of the offered load — exactly the amplification that keeps
// an overloaded peer overloaded.
//
// Each first attempt deposits Ratio tokens (default 0.1); each retry
// withdraws one. The balance is capped at Burst, so a long quiet
// stretch cannot bank an unbounded retry burst. Sustained, retries are
// therefore at most ~Ratio of the request rate; transient blips still
// retry freely out of the Burst cushion.
type RetryBudget struct {
	ratio float64
	burst float64
	// onExhausted, when non-nil, fires once per denied retry — the hook
	// behind symclusterd_retry_budget_exhausted_total.
	onExhausted func()

	mu     sync.Mutex
	tokens float64
}

// RetryBudgetConfig sizes a RetryBudget. Zero values select the
// defaults noted on each field.
type RetryBudgetConfig struct {
	// Ratio is the sustained retries-per-request allowance (default 0.1:
	// at most ~10% of recent requests may be retried).
	Ratio float64
	// Burst caps banked tokens (default 10), bounding the retry burst
	// after a quiet period and seeding the bucket at start.
	Burst float64
	// OnExhausted, when non-nil, is called once per retry denied for an
	// empty bucket.
	OnExhausted func()
}

// NewRetryBudget builds a budget starting with a full burst allowance.
func NewRetryBudget(cfg RetryBudgetConfig) *RetryBudget {
	if cfg.Ratio <= 0 {
		cfg.Ratio = 0.1
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 10
	}
	return &RetryBudget{
		ratio:       cfg.Ratio,
		burst:       cfg.Burst,
		onExhausted: cfg.OnExhausted,
		tokens:      cfg.Burst,
	}
}

// RecordRequest deposits one request's worth of retry allowance. The
// client calls it once per Do/DoStream, not per attempt.
func (b *RetryBudget) RecordRequest() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// AllowRetry withdraws one token if available, reporting whether the
// retry may proceed. A denied retry fires OnExhausted; the caller
// returns the last response (or error) instead of sleeping and trying
// again.
func (b *RetryBudget) AllowRetry() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	b.mu.Unlock()
	if !ok && b.onExhausted != nil {
		b.onExhausted()
	}
	return ok
}

// Tokens reads the current balance (tests and status reporting).
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
