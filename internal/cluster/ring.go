package cluster

import (
	"fmt"
	"sort"
)

// Ring consistent-hashes graph fingerprints over the peer set. Each
// peer owns Weight × replicas virtual points on a 64-bit ring; a
// fingerprint belongs to the peer of the first point at or after its
// (mixed) hash. Ownership is health-aware at lookup time: Owner skips
// peers the caller reports unhealthy, so when a node dies its
// fingerprint ranges fall through to the next healthy peer on the ring
// — and fall back automatically when it recovers. The ring itself is
// immutable after construction (membership is static, from -peers).
type Ring struct {
	peers  []*Peer
	byName map[string]*Peer
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	peer *Peer
}

// DefaultReplicas is the virtual-node count per unit of peer weight.
// 64 keeps the maximum ownership imbalance under a few percent for
// small clusters while the ring stays tiny (N × weight × 64 points).
const DefaultReplicas = 64

// NewRing builds the ring. replicas ≤ 0 selects DefaultReplicas.
func NewRing(peers []*Peer, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{byName: make(map[string]*Peer, len(peers))}
	for _, p := range peers {
		r.peers = append(r.peers, p)
		r.byName[p.Name] = p
		w := p.Weight
		if w < 1 {
			w = 1
		}
		for i := 0; i < w*replicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: HashString(fmt.Sprintf("%s#%d", p.Name, i)),
				peer: p,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// mix64 is the splitmix64 finalizer: graph fingerprints are already
// hashes, but mixing decorrelates them from the FNV vnode positions so
// near-identical fingerprints don't clump on the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the healthy peer owning fingerprint fp, walking
// clockwise from fp's ring position past any peers the healthy
// predicate rejects. ok is false when no healthy peer exists (the
// coordinator degrades to 503 + Retry-After). A nil predicate treats
// every peer as healthy.
func (r *Ring) Owner(fp uint64, healthy func(name string) bool) (*Peer, bool) {
	if len(r.points) == 0 {
		return nil, false
	}
	h := mix64(fp)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.peers))
	for i := 0; i < len(r.points) && len(seen) < len(r.peers); i++ {
		pt := r.points[(start+i)%len(r.points)]
		if seen[pt.peer.Name] {
			continue
		}
		seen[pt.peer.Name] = true
		if healthy == nil || healthy(pt.peer.Name) {
			return pt.peer, true
		}
	}
	return nil, false
}

// Peer returns the member with the given name.
func (r *Ring) Peer(name string) (*Peer, bool) {
	p, ok := r.byName[name]
	return p, ok
}

// Peers returns the static membership, in -peers order.
func (r *Ring) Peers() []*Peer { return append([]*Peer(nil), r.peers...) }
