package matrix

import (
	"math/rand"
	"testing"
)

// benchGraph builds a power-law-ish random sparse matrix reused across
// the kernel benchmarks.
func benchGraph(n, avgDeg int) *CSR {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(n, n)
	b.Reserve(n * avgDeg)
	for i := 0; i < n; i++ {
		deg := 1 + rng.Intn(2*avgDeg)
		for d := 0; d < deg; d++ {
			// Skew targets toward low ids for a heavy-tailed in-degree.
			t := int(float64(n) * rng.Float64() * rng.Float64())
			if t != i {
				b.Add(i, t, 1)
			}
		}
	}
	return b.Build()
}

func BenchmarkTranspose(b *testing.B) {
	m := benchGraph(20000, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transpose()
	}
}

func BenchmarkSpGEMM(b *testing.B) {
	m := benchGraph(5000, 8)
	mt := m.Transpose()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulPruned(m, mt, 0)
	}
}

func BenchmarkSpGEMMPruned(b *testing.B) {
	m := benchGraph(5000, 8)
	mt := m.Transpose()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulPruned(m, mt, 2)
	}
}

func BenchmarkSpGEMMTopK(b *testing.B) {
	m := benchGraph(5000, 8)
	mt := m.Transpose()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulPrunedTopK(m, mt, 0, 30)
	}
}

func BenchmarkBuilderBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	n := 50000
	type trip struct {
		r, c int
		v    float64
	}
	trips := make([]trip, 8*n)
	for i := range trips {
		trips[i] = trip{rng.Intn(n), rng.Intn(n), 1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu := NewBuilder(n, n)
		bu.Reserve(len(trips))
		for _, t := range trips {
			bu.Add(t.r, t.c, t.v)
		}
		bu.Build()
	}
}

func BenchmarkMulVec(b *testing.B) {
	m := benchGraph(50000, 10)
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x)
	}
}
