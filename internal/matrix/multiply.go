package matrix

import (
	"context"
	"fmt"
	"math"
	"sort"

	"symcluster/internal/obs"
)

// ctxCheckRows is the row stride at which the cancellable kernels poll
// ctx.Err(). One check per 512 rows keeps the overhead unmeasurable
// while bounding post-cancellation work to a small row block.
const ctxCheckRows = 512

// rowCancelled reports ctx's error at row-block boundaries: it polls
// ctx.Err() only when row is a multiple of ctxCheckRows.
func rowCancelled(ctx context.Context, row int) error {
	if row%ctxCheckRows != 0 {
		return nil
	}
	return ctx.Err()
}

// Add returns alpha·a + beta·b. The operands must have identical
// dimensions. Entries that cancel to exactly zero are dropped.
func Add(a, b *CSR, alpha, beta float64) *CSR {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: Add dimension mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		p, q := 0, 0
		for p < len(ac) || q < len(bc) {
			var col int32
			var val float64
			switch {
			case q >= len(bc) || (p < len(ac) && ac[p] < bc[q]):
				col, val = ac[p], alpha*av[p]
				p++
			case p >= len(ac) || bc[q] < ac[p]:
				col, val = bc[q], beta*bv[q]
				q++
			default:
				col, val = ac[p], alpha*av[p]+beta*bv[q]
				p++
				q++
			}
			if val != 0 {
				out.ColIdx = append(out.ColIdx, col)
				out.Val = append(out.Val, val)
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// accumulator is a dense scatter workspace (SPA) for row-wise sparse
// products. acc holds partial sums indexed by output column; mark holds
// a per-column generation stamp so resetting between rows is O(1), and
// touched lists the columns hit in the current generation.
type accumulator struct {
	acc     []float64
	mark    []uint32
	gen     uint32
	touched []int32
}

func newAccumulator(cols int) *accumulator {
	return &accumulator{
		acc:     make([]float64, cols),
		mark:    make([]uint32, cols),
		gen:     1,
		touched: make([]int32, 0, 256),
	}
}

func (s *accumulator) add(col int32, v float64) {
	if s.mark[col] != s.gen {
		s.mark[col] = s.gen
		s.acc[col] = 0
		s.touched = append(s.touched, col)
	}
	s.acc[col] += v
}

// flush appends the accumulated row to out (whose RowPtr for this row is
// finalised by the caller), pruning entries below threshold, and resets
// the workspace. It returns how many nonzero entries the threshold
// killed, the quantity the obs prune accounting aggregates.
func (s *accumulator) flush(out *CSR, threshold float64) int {
	// Filter before sorting: with an aggressive threshold most touched
	// columns are dropped, and sorting only the survivors is much
	// cheaper than sorting everything.
	killed := 0
	kept := s.touched[:0]
	for _, c := range s.touched {
		v := s.acc[c]
		if v == 0 {
			continue
		}
		if math.Abs(v) >= threshold {
			kept = append(kept, c)
		} else {
			killed++
		}
	}
	sort.Slice(kept, func(x, y int) bool { return kept[x] < kept[y] })
	for _, c := range kept {
		out.ColIdx = append(out.ColIdx, c)
		out.Val = append(out.Val, s.acc[c])
	}
	s.touched = s.touched[:0]
	s.gen++
	if s.gen == 0 { // wrapped: clear stale marks and restart
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.gen = 1
	}
	return killed
}

// Mul returns the sparse product a·b with no pruning.
func Mul(a, b *CSR) *CSR {
	return MulPruned(a, b, 0)
}

// MulPrunedTopK returns a·b keeping, per output row, only entries with
// absolute value ≥ threshold and at most the topK largest of those
// (ties resolved toward lower column ids). topK ≤ 0 means unlimited.
// This is the workhorse of flow-based clustering, where each column of
// the flow matrix only ever keeps its heaviest entries: selecting
// during the product avoids materialising and sorting the long tail.
func MulPrunedTopK(a, b *CSR, threshold float64, topK int) *CSR {
	out, _ := MulPrunedTopKCtx(context.Background(), a, b, threshold, topK)
	return out
}

// MulPrunedTopKCtx is MulPrunedTopK with cancellation: ctx is polled
// every ctxCheckRows output rows, and a cancelled context abandons the
// product and returns ctx's error.
func MulPrunedTopKCtx(ctx context.Context, a, b *CSR, threshold float64, topK int) (*CSR, error) {
	if topK <= 0 {
		return MulPrunedCtx(ctx, a, b, threshold)
	}
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int64, a.Rows+1)}
	spa := newAccumulator(b.Cols)
	var killed int64
	var kept []int32
	for i := 0; i < a.Rows; i++ {
		if err := rowCancelled(ctx, i); err != nil {
			return nil, err
		}
		ac, av := a.Row(i)
		for k, c := range ac {
			bcols, bvals := b.Row(int(c))
			w := av[k]
			for t, bc := range bcols {
				spa.add(bc, w*bvals[t])
			}
		}
		// Filter by threshold, select top-K by value, then sort the
		// survivors by column for CSR order.
		kept = kept[:0]
		for _, c := range spa.touched {
			v := spa.acc[c]
			if v == 0 {
				continue
			}
			if math.Abs(v) >= threshold {
				kept = append(kept, c)
			} else {
				killed++
			}
		}
		if len(kept) > topK {
			quickselectTopK(kept, spa.acc, topK)
			kept = kept[:topK]
		}
		sort.Slice(kept, func(x, y int) bool { return kept[x] < kept[y] })
		for _, c := range kept {
			out.ColIdx = append(out.ColIdx, c)
			out.Val = append(out.Val, spa.acc[c])
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
		spa.touched = spa.touched[:0]
		spa.gen++
		if spa.gen == 0 {
			for t := range spa.mark {
				spa.mark[t] = 0
			}
			spa.gen = 1
		}
	}
	obs.PruneStatsFrom(ctx).Add(killed)
	return out, nil
}

// quickselectTopK partially orders cols so that the k entries with the
// largest |acc| values occupy cols[:k]. Ties break toward lower column
// ids for determinism.
func quickselectTopK(cols []int32, acc []float64, k int) {
	lo, hi := 0, len(cols)-1
	greater := func(a, b int32) bool {
		va, vb := math.Abs(acc[a]), math.Abs(acc[b])
		if va != vb {
			return va > vb
		}
		return a < b
	}
	for lo < hi {
		p := cols[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for greater(cols[i], p) {
				i++
			}
			for greater(p, cols[j]) {
				j--
			}
			if i <= j {
				cols[i], cols[j] = cols[j], cols[i]
				i++
				j--
			}
		}
		if k-1 <= j {
			hi = j
		} else if k-1 >= i {
			lo = i
		} else {
			return
		}
	}
}

// MulPruned returns the sparse product a·b, dropping every result entry
// whose absolute value is strictly below threshold. Pruning happens as
// each output row is produced, so the unpruned product never
// materialises — this is what makes bibliometric-style products on
// hub-heavy graphs tractable (paper §3.5).
//
// The implementation is Gustavson's row-wise SpGEMM with a dense scatter
// accumulator, costing O(flops) time and O(cols) workspace; for the
// self-products used by symmetrization the flop count is Σ_k d_k² as
// analysed in the paper's §3.6.
func MulPruned(a, b *CSR, threshold float64) *CSR {
	out, _ := MulPrunedCtx(context.Background(), a, b, threshold)
	return out
}

// MulPrunedCtx is MulPruned with cancellation: ctx is polled every
// ctxCheckRows output rows, and a cancelled context abandons the
// product and returns ctx's error. This is what makes the expensive
// symmetrization products abort promptly on client disconnects and
// request deadlines.
func MulPrunedCtx(ctx context.Context, a, b *CSR, threshold float64) (*CSR, error) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int64, a.Rows+1)}
	spa := newAccumulator(b.Cols)
	var killed int64
	for i := 0; i < a.Rows; i++ {
		if err := rowCancelled(ctx, i); err != nil {
			return nil, err
		}
		ac, av := a.Row(i)
		for k, c := range ac {
			bcols, bvals := b.Row(int(c))
			w := av[k]
			for t, bc := range bcols {
				spa.add(bc, w*bvals[t])
			}
		}
		killed += int64(spa.flush(out, threshold))
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	obs.PruneStatsFrom(ctx).Add(killed)
	return out, nil
}

// MulAAT returns x·xᵀ with pruning, without materialising xᵀ separately
// in the inner loop: the product is computed as an SpGEMM between x and
// a precomputed transpose, which is the fastest stdlib-only formulation.
// The result is symmetric; both triangles are stored.
//
// The degree-discounted terms B_d and C_d are computed through this
// kernel after diagonal scaling (see internal/core), since
// B_d = (D_o^{-α} A D_i^{-β/2})(D_o^{-α} A D_i^{-β/2})ᵀ.
func MulAAT(x *CSR, threshold float64) *CSR {
	return MulPruned(x, x.Transpose(), threshold)
}

// MulAATCtx is MulAAT with cancellation at row-block boundaries.
func MulAATCtx(ctx context.Context, x *CSR, threshold float64) (*CSR, error) {
	return MulPrunedCtx(ctx, x, x.Transpose(), threshold)
}

// Pow returns mᵏ for square m and k ≥ 1 by repeated multiplication,
// pruning intermediate entries below threshold. Used by tests and the
// random-walk substrate.
func Pow(m *CSR, k int, threshold float64) *CSR {
	if m.Rows != m.Cols {
		panic("matrix: Pow on non-square matrix")
	}
	if k < 1 {
		panic("matrix: Pow exponent must be >= 1")
	}
	out := m.Clone()
	for i := 1; i < k; i++ {
		out = MulPruned(out, m, threshold)
	}
	return out
}
