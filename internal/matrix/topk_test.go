package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestMulPrunedTopKMatchesSortedTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(15)
		a := randomCSR(rng, n, n, 0.4, 0, 3)
		b := randomCSR(rng, n, n, 0.4, 0, 3)
		k := 1 + rng.Intn(5)
		got := MulPrunedTopK(a, b, 0, k)
		mustValidate(t, got)
		full := Mul(a, b)
		for i := 0; i < n; i++ {
			// Reference: take row i of the full product, keep the k
			// largest by |value| (ties toward lower columns).
			cols, vals := full.Row(i)
			type ent struct {
				c int32
				v float64
			}
			ref := make([]ent, len(cols))
			for t2 := range cols {
				ref[t2] = ent{cols[t2], vals[t2]}
			}
			for x := 0; x < len(ref); x++ {
				for y := x + 1; y < len(ref); y++ {
					ax, ay := math.Abs(ref[x].v), math.Abs(ref[y].v)
					if ay > ax || (ay == ax && ref[y].c < ref[x].c) {
						ref[x], ref[y] = ref[y], ref[x]
					}
				}
			}
			keep := ref
			if len(keep) > k {
				keep = keep[:k]
			}
			want := map[int32]float64{}
			for _, e := range keep {
				want[e.c] = e.v
			}
			gcols, gvals := got.Row(i)
			if len(gcols) != len(want) {
				t.Fatalf("trial %d row %d: kept %d entries, want %d", trial, i, len(gcols), len(want))
			}
			for t2, c := range gcols {
				wv, ok := want[c]
				if !ok || math.Abs(gvals[t2]-wv) > 1e-9 {
					t.Fatalf("trial %d row %d: column %d value %v not in reference set", trial, i, c, gvals[t2])
				}
			}
		}
	}
}

func TestMulPrunedTopKUnlimited(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	a := randomCSR(rng, 10, 10, 0.4, -2, 2)
	if !Equal(MulPrunedTopK(a, a, 0, 0), Mul(a, a), 1e-12) {
		t.Fatal("topK<=0 should match unpruned product")
	}
}

func TestMulPrunedTopKWithThreshold(t *testing.T) {
	a := FromDense([][]float64{
		{1, 0.1, 0.01},
	})
	b := Identity(3)
	got := MulPrunedTopK(a, b, 0.05, 10)
	if got.NNZ() != 2 {
		t.Fatalf("threshold not applied: %v", got.ToDense())
	}
	got2 := MulPrunedTopK(a, b, 0.05, 1)
	if got2.NNZ() != 1 || got2.At(0, 0) != 1 {
		t.Fatalf("topK not applied after threshold: %v", got2.ToDense())
	}
}

func TestMulPrunedTopKPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MulPrunedTopK(Zero(2, 3), Zero(2, 3), 0, 1)
}
