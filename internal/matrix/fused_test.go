package matrix

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"symcluster/internal/obs"
)

// requireBitIdentical fails unless got and want have identical
// structure and bit-identical values — the contract every fused kernel
// must satisfy against its materialized counterpart.
func requireBitIdentical(t *testing.T, want, got *CSR) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols || want.NNZ() != got.NNZ() {
		t.Fatalf("shape/nnz mismatch: got %dx%d/%d, want %dx%d/%d",
			got.Rows, got.Cols, got.NNZ(), want.Rows, want.Cols, want.NNZ())
	}
	for i := range want.RowPtr {
		if want.RowPtr[i] != got.RowPtr[i] {
			t.Fatalf("RowPtr[%d] differs: %d vs %d", i, got.RowPtr[i], want.RowPtr[i])
		}
	}
	for k := range want.ColIdx {
		if want.ColIdx[k] != got.ColIdx[k] {
			t.Fatalf("ColIdx[%d] differs: %d vs %d", k, got.ColIdx[k], want.ColIdx[k])
		}
		if math.Float64bits(want.Val[k]) != math.Float64bits(got.Val[k]) {
			t.Fatalf("Val[%d]: %v vs %v — not bit-identical", k, got.Val[k], want.Val[k])
		}
	}
}

func randomScale(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 0.05 + rng.Float64()
	}
	return s
}

func TestMulScaledPrunedMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		rows := 5 + rng.Intn(60)
		inner := 5 + rng.Intn(40)
		cols := 5 + rng.Intn(60)
		a := randomCSR(rng, rows, inner, 0.15, -1, 2)
		b := randomCSR(rng, inner, cols, 0.15, -1, 2)
		aRow := randomScale(rng, rows)
		aCol := randomScale(rng, inner)
		bRow := randomScale(rng, inner)
		bCol := randomScale(rng, cols)
		for _, th := range []float64{0, 0.05, 0.4} {
			want := MulPruned(a.ScaleRows(aRow).ScaleCols(aCol), b.ScaleRows(bRow).ScaleCols(bCol), th)
			got := MulScaledPruned(a, b, aRow, aCol, bRow, bCol, th)
			requireBitIdentical(t, want, got)
		}
		// Nil scale vectors are the identity: must match the plain kernel.
		requireBitIdentical(t, MulPruned(a, b, 0.1), MulScaledPruned(a, b, nil, nil, nil, nil, 0.1))
	}
}

func TestMulXXTScaledPrunedMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		rows := 5 + rng.Intn(100)
		cols := 5 + rng.Intn(60)
		x := randomCSR(rng, rows, cols, 0.15, 0, 2)
		rs := randomScale(rng, rows)
		cs := randomScale(rng, cols)
		xt := x.Transpose()
		for _, th := range []float64{0, 0.05, 0.5} {
			xs := x.ScaleRows(rs).ScaleCols(cs)
			want := MulPruned(xs, xs.Transpose(), th)
			got := MulXXTScaledPruned(x, xt, rs, cs, th, 1)
			requireBitIdentical(t, want, got)
			// Unscaled: must match MulAAT exactly.
			requireBitIdentical(t, MulAAT(x, th), MulXXTScaledPruned(x, xt, nil, nil, th, 1))
		}
	}
}

// TestMulXXTScaledPrunedTiledParallel exercises the tiled row-block
// driver (requires ≥ 2 tiles of rows) across worker counts; every run
// must be bit-identical to the sequential triangle kernel and to the
// materialized product.
func TestMulXXTScaledPrunedTiledParallel(t *testing.T) {
	x := benchGraph(3*fusedTileRows, 6) // 3 tiles: uneven split across workers
	rng := rand.New(rand.NewSource(43))
	rs := randomScale(rng, x.Rows)
	cs := randomScale(rng, x.Cols)
	xt := x.Transpose()
	for _, th := range []float64{0, 0.2} {
		xs := x.ScaleRows(rs).ScaleCols(cs)
		want := MulPruned(xs, xs.Transpose(), th)
		for _, workers := range []int{1, 2, 3, 8} {
			got := MulXXTScaledPruned(x, xt, rs, cs, th, workers)
			requireBitIdentical(t, want, got)
		}
	}
}

// TestFusedPruneStatsParity: the triangle kernel's weighted kill
// accounting (mirrored kills count twice, diagonal once) must equal the
// full materialized product's tally exactly, sequential and tiled.
func TestFusedPruneStatsParity(t *testing.T) {
	x := benchGraph(2*fusedTileRows+57, 5)
	rng := rand.New(rand.NewSource(44))
	rs := randomScale(rng, x.Rows)
	cs := randomScale(rng, x.Cols)
	xt := x.Transpose()
	xs := x.ScaleRows(rs).ScaleCols(cs)
	for _, th := range []float64{0.05, 0.3} {
		ctx, want := obs.WithPruneStats(context.Background())
		if _, err := MulPrunedCtx(ctx, xs, xs.Transpose(), th); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			ctx, got := obs.WithPruneStats(context.Background())
			if _, err := MulXXTScaledPrunedCtx(ctx, x, xt, rs, cs, th, workers); err != nil {
				t.Fatal(err)
			}
			if got.Killed() != want.Killed() {
				t.Fatalf("th=%v workers=%d: killed %d, want %d", th, workers, got.Killed(), want.Killed())
			}
		}
	}
}

func TestAddTransposeSymMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(80)
		m := randomCSR(rng, n, n, 0.2, -2, 2)
		for _, scale := range []float64{1, 0.5} {
			want := Add(m, m.Transpose(), scale, scale)
			got := AddTransposeSym(m, scale)
			requireBitIdentical(t, want, got)
		}
	}
	// Reciprocal entries that cancel to exactly zero must be dropped,
	// matching Add's zero-drop, and the diagonal must double.
	b := NewBuilder(3, 3)
	b.Add(0, 1, 2)
	b.Add(1, 0, -2)
	b.Add(2, 2, 1.5)
	b.Add(0, 2, 1)
	m := b.Build()
	requireBitIdentical(t, Add(m, m.Transpose(), 1, 1), AddTransposeSym(m, 1))
}

// countingErrCtx cancels after a fixed number of Err polls, pinning
// cancellation to a deterministic poll boundary.
type countingErrCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *countingErrCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestFusedKernelsPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := benchGraph(100, 4)
	if _, err := MulXXTScaledPrunedCtx(ctx, x, x.Transpose(), nil, nil, 0, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential: err = %v, want context.Canceled", err)
	}
	if _, err := MulScaledPrunedCtx(ctx, x, x.Transpose(), nil, nil, nil, nil, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("scaled: err = %v, want context.Canceled", err)
	}
}

// TestMulXXTScaledPrunedCancelAtTileBoundary cancels mid-run and
// requires the tiled parallel driver to abandon the product at the next
// tile boundary rather than finishing the remaining tiles.
func TestMulXXTScaledPrunedCancelAtTileBoundary(t *testing.T) {
	x := benchGraph(4*fusedTileRows, 6)
	xt := x.Transpose()
	// Sequential kernel: second ctxCheckRows poll fires mid-product.
	ctx := &countingErrCtx{Context: context.Background(), after: 1}
	if out, err := MulXXTScaledPrunedCtx(ctx, x, xt, nil, nil, 0, 1); !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("sequential: out=%v err=%v, want nil/context.Canceled", out, err)
	}
	// Tiled driver: each worker checks ctx when claiming a tile; a
	// cancellation after the first claims must abort the remaining tiles.
	ctx = &countingErrCtx{Context: context.Background(), after: 1}
	if out, err := MulXXTScaledPrunedCtx(ctx, x, xt, nil, nil, 0, 2); !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("tiled: out=%v err=%v, want nil/context.Canceled", out, err)
	}
	if polls := ctx.polls.Load(); polls > 5 {
		t.Fatalf("tiled driver kept polling after cancellation: %d polls", polls)
	}
}
