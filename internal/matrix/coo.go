package matrix

import (
	"fmt"
	"sort"
)

// Builder accumulates (row, col, value) triplets and assembles them into
// a CSR matrix. Duplicate coordinates are summed. It is the standard way
// to construct matrices from edge lists and generators.
type Builder struct {
	rows, cols int
	r, c       []int32
	v          []float64
}

// NewBuilder returns a Builder for a rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Reserve grows the internal triplet storage to hold at least n entries,
// avoiding repeated reallocation when the caller knows the edge count.
func (b *Builder) Reserve(n int) {
	if cap(b.r) < n {
		r := make([]int32, len(b.r), n)
		copy(r, b.r)
		b.r = r
		c := make([]int32, len(b.c), n)
		copy(c, b.c)
		b.c = c
		v := make([]float64, len(b.v), n)
		copy(v, b.v)
		b.v = v
	}
}

// Add records the triplet (i, j, val). Panics on out-of-range indices:
// silently clipping would corrupt downstream experiments.
func (b *Builder) Add(i, j int, val float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("matrix: Builder.Add index (%d,%d) out of range %dx%d", i, j, b.rows, b.cols))
	}
	b.r = append(b.r, int32(i))
	b.c = append(b.c, int32(j))
	b.v = append(b.v, val)
}

// Len returns the number of recorded triplets (before deduplication).
func (b *Builder) Len() int { return len(b.r) }

// Build assembles the triplets into CSR form, summing duplicates and
// dropping entries that sum to exactly zero. The Builder is drained and
// may be reused afterwards.
func (b *Builder) Build() *CSR {
	m := &CSR{Rows: b.rows, Cols: b.cols, RowPtr: make([]int64, b.rows+1)}
	if len(b.r) == 0 {
		return m
	}

	// Counting sort by row, then sort each row's slice by column. This is
	// O(nnz + rows + Σ r log r) and avoids sorting the full triplet list.
	counts := make([]int64, b.rows+1)
	for _, i := range b.r {
		counts[i+1]++
	}
	for i := 0; i < b.rows; i++ {
		counts[i+1] += counts[i]
	}
	cs := make([]int32, len(b.c))
	vs := make([]float64, len(b.v))
	next := make([]int64, b.rows)
	copy(next, counts[:b.rows])
	for k, i := range b.r {
		p := next[i]
		cs[p] = b.c[k]
		vs[p] = b.v[k]
		next[i]++
	}

	for i := 0; i < b.rows; i++ {
		lo, hi := counts[i], counts[i+1]
		row := rowSorter{cols: cs[lo:hi], vals: vs[lo:hi]}
		sort.Sort(row)
		// Merge duplicates within the sorted row.
		var prev int32 = -1
		for k := lo; k < hi; k++ {
			if cs[k] == prev {
				m.Val[len(m.Val)-1] += vs[k]
				continue
			}
			prev = cs[k]
			m.ColIdx = append(m.ColIdx, cs[k])
			m.Val = append(m.Val, vs[k])
		}
		// Drop exact zeros produced by cancellation.
		w := int(m.RowPtr[i])
		for k := w; k < len(m.ColIdx); k++ {
			if m.Val[k] != 0 {
				m.ColIdx[w] = m.ColIdx[k]
				m.Val[w] = m.Val[k]
				w++
			}
		}
		m.ColIdx = m.ColIdx[:w]
		m.Val = m.Val[:w]
		m.RowPtr[i+1] = int64(w)
	}

	b.r, b.c, b.v = b.r[:0], b.c[:0], b.v[:0]
	return m
}

type rowSorter struct {
	cols []int32
	vals []float64
}

func (s rowSorter) Len() int           { return len(s.cols) }
func (s rowSorter) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s rowSorter) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// FromDense builds a CSR matrix from a dense row-major matrix, storing
// only the non-zero entries. Intended for tests and tiny examples.
func FromDense(d [][]float64) *CSR {
	rows := len(d)
	cols := 0
	if rows > 0 {
		cols = len(d[0])
	}
	b := NewBuilder(rows, cols)
	for i, row := range d {
		if len(row) != cols {
			panic("matrix: FromDense ragged input")
		}
		for j, v := range row {
			if v != 0 {
				b.Add(i, j, v)
			}
		}
	}
	return b.Build()
}

// ToDense expands the matrix to a dense row-major [][]float64. Intended
// for tests and tiny examples only.
func (m *CSR) ToDense() [][]float64 {
	d := make([][]float64, m.Rows)
	for i := range d {
		d[i] = make([]float64, m.Cols)
		cols, vals := m.Row(i)
		for k, c := range cols {
			d[i][c] = vals[k]
		}
	}
	return d
}
