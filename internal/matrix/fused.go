package matrix

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"symcluster/internal/obs"
)

// Fused symmetrization kernels: the diagonal row/column scalings and
// the prune threshold are folded into the SpGEMM accumulator loop, so
// the scaled factor matrices (the X and Y of the degree-discounted
// symmetrization, paper §3.4) are never materialised. Every scaled
// entry value is computed on the fly as (v·row)·col — the exact
// multiplication order of ScaleRows followed by ScaleCols — and the
// product terms accumulate in the same order as the materialized
// Gustavson kernel, so results are bit-identical to scaling, transposing
// and multiplying explicitly.
//
// The self-product kernel additionally exploits symmetry: X·Xᵀ entry
// (j,i) is the same multiset of products as (i,j) with each factor pair
// commuted, and IEEE-754 multiplication and two-operand addition are
// commutative, so the lower triangle is a bit-exact mirror of the
// upper. Only the upper triangle (≈half the flops) is computed and the
// result is mirrored. The row driver is tiled into cache-sized row
// blocks claimed from a shared counter, so parallel runs load-balance
// across skewed degree distributions while staying bit-identical
// (row-partitioned work has no cross-row interaction).

// fusedTileRows is the row-block granularity of the tiled self-product
// driver. One tile's output rows stay cache-resident while the block is
// produced, and tiles double as the cancellation poll boundary.
const fusedTileRows = 512

// applyScale folds a diagonal scale factor into v; a nil vector is the
// identity. Kept trivially inlinable — this runs once per operand entry
// touch in the fused inner loops.
func applyScale(v float64, scale []float64, i int32) float64 {
	if scale != nil {
		return v * scale[i]
	}
	return v
}

// MulScaledPruned is MulScaledPrunedCtx without cancellation.
func MulScaledPruned(a, b *CSR, aRow, aCol, bRow, bCol []float64, threshold float64) *CSR {
	out, _ := MulScaledPrunedCtx(context.Background(), a, b, aRow, aCol, bRow, bCol, threshold)
	return out
}

// MulScaledPrunedCtx returns the fused scaled-pruned product
//
//	(diag(aRow)·a·diag(aCol)) · (diag(bRow)·b·diag(bCol))
//
// without materialising either scaled operand: entry values are formed
// on the fly as (v·row)·col, the multiplication order of ScaleRows
// followed by ScaleCols, and entries below threshold are killed during
// accumulation. The result is bit-identical to
//
//	MulPrunedCtx(ctx, a.ScaleRows(aRow).ScaleCols(aCol), b.ScaleRows(bRow).ScaleCols(bCol), threshold)
//
// with none of the four intermediate clones. Nil scale vectors mean
// identity. ctx is polled every ctxCheckRows output rows.
func MulScaledPrunedCtx(ctx context.Context, a, b *CSR, aRow, aCol, bRow, bCol []float64, threshold float64) (*CSR, error) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkScaleLen("MulScaledPruned aRow", aRow, a.Rows)
	checkScaleLen("MulScaledPruned aCol", aCol, a.Cols)
	checkScaleLen("MulScaledPruned bRow", bRow, b.Rows)
	checkScaleLen("MulScaledPruned bCol", bCol, b.Cols)
	out := &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int64, a.Rows+1)}
	spa := newAccumulator(b.Cols)
	var killed int64
	for i := 0; i < a.Rows; i++ {
		if err := rowCancelled(ctx, i); err != nil {
			return nil, err
		}
		ac, av := a.Row(i)
		for k, c := range ac {
			w := applyScale(applyScale(av[k], aRow, int32(i)), aCol, c)
			bcols, bvals := b.Row(int(c))
			for t, bc := range bcols {
				bv := applyScale(applyScale(bvals[t], bRow, c), bCol, bc)
				spa.add(bc, w*bv)
			}
		}
		killed += int64(spa.flush(out, threshold))
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	obs.PruneStatsFrom(ctx).Add(killed)
	return out, nil
}

func checkScaleLen(name string, scale []float64, want int) {
	if scale != nil && len(scale) != want {
		panic(fmt.Sprintf("matrix: %s vector length %d, want %d", name, len(scale), want))
	}
}

// MulXXTScaledPruned is MulXXTScaledPrunedCtx without cancellation.
func MulXXTScaledPruned(x, xt *CSR, rowScale, colScale []float64, threshold float64, workers int) *CSR {
	out, _ := MulXXTScaledPrunedCtx(context.Background(), x, xt, rowScale, colScale, threshold, workers)
	return out
}

// MulXXTScaledPrunedCtx returns the fused symmetric self-product
// S = X·Xᵀ for X = diag(rowScale)·x·diag(colScale), given x and its
// exact transpose xt (xt must carry bit-identical values to
// x.Transpose(); a mapped on-disk transpose qualifies). Neither X nor
// Xᵀ is materialised: scaled values are formed in the inner loop as
// (v·row)·col, the ScaleRows-then-ScaleCols order. Sub-threshold
// entries are killed during accumulation and never allocated.
//
// Only the upper triangle (j ≥ i) is computed — each inner row of xt is
// entered at its first column ≥ i, halving the flop count — and the
// strict upper entries are mirrored into the lower triangle.
// Commutativity of IEEE multiplication and two-operand addition makes
// the mirrored triangle bit-identical to computing it directly, so the
// result is bit-identical to
//
//	MulPrunedCtx(ctx, X, X.Transpose(), threshold)
//
// for the materialized X, including the prune accounting reported
// through obs.PruneStats (mirrored kills count twice, diagonal kills
// once — exactly the full-product tally).
//
// workers > 1 runs the row driver over fusedTileRows-sized tiles
// claimed from a shared counter; results are bit-identical to the
// sequential kernel. workers <= 0 selects GOMAXPROCS; a cancelled ctx
// aborts at the next tile or ctxCheckRows boundary with ctx's error.
func MulXXTScaledPrunedCtx(ctx context.Context, x, xt *CSR, rowScale, colScale []float64, threshold float64, workers int) (*CSR, error) {
	if x.Cols != xt.Rows || x.Rows != xt.Cols {
		panic(fmt.Sprintf("matrix: MulXXTScaledPruned transpose shape mismatch %dx%d vs %dx%d", x.Rows, x.Cols, xt.Rows, xt.Cols))
	}
	checkScaleLen("MulXXTScaledPruned rowScale", rowScale, x.Rows)
	checkScaleLen("MulXXTScaledPruned colScale", colScale, x.Cols)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 && x.Rows >= 2*fusedTileRows {
		return fusedXXTParallel(ctx, x, xt, rowScale, colScale, threshold, workers)
	}
	up := &CSR{Rows: x.Rows, Cols: x.Rows, RowPtr: make([]int64, x.Rows+1)}
	spa := newAccumulator(x.Rows)
	var killed int64
	for i := 0; i < x.Rows; i++ {
		if err := rowCancelled(ctx, i); err != nil {
			return nil, err
		}
		xxtUpperRow(x, xt, rowScale, colScale, i, spa)
		kept, k := flushUpper(spa, threshold, i)
		killed += k
		up.ColIdx = append(up.ColIdx, kept...)
		for _, c := range kept {
			up.Val = append(up.Val, spa.acc[c])
		}
		spa.reset()
		up.RowPtr[i+1] = int64(len(up.ColIdx))
	}
	obs.PruneStatsFrom(ctx).Add(killed)
	return mirrorUpper(up), nil
}

// xxtUpperRow scatters the upper-triangle contributions (output columns
// j ≥ i) of self-product row i into spa. For each entry (c, v) of x's
// row i the matching inner row of xt is entered at its first column
// ≥ i, so strict-lower flops are skipped rather than branched over.
func xxtUpperRow(x, xt *CSR, rowScale, colScale []float64, i int, spa *accumulator) {
	ac, av := x.Row(i)
	for k, c := range ac {
		w := applyScale(applyScale(av[k], rowScale, int32(i)), colScale, c)
		bcols, bvals := xt.Row(int(c))
		start := sort.Search(len(bcols), func(p int) bool { return bcols[p] >= int32(i) })
		for t := start; t < len(bcols); t++ {
			j := bcols[t]
			// xt entry (c, j) carries x's raw value at (j, c); scaling it
			// row-factor-first reproduces X.Transpose()'s value exactly.
			bv := applyScale(applyScale(bvals[t], rowScale, j), colScale, c)
			spa.add(j, w*bv)
		}
	}
}

// flushUpper filters and sorts the accumulated upper-triangle row i,
// returning the surviving columns (aliasing spa.touched — consume
// before reset) and the prune tally weighted for the mirror: a killed
// strict-upper entry counts twice (its mirror image dies with it), a
// killed diagonal entry once, matching the full-product accounting.
func flushUpper(spa *accumulator, threshold float64, row int) ([]int32, int64) {
	var killed int64
	kept := spa.touched[:0]
	for _, c := range spa.touched {
		v := spa.acc[c]
		if v == 0 {
			continue
		}
		if math.Abs(v) >= threshold {
			kept = append(kept, c)
		} else if int(c) == row {
			killed++
		} else {
			killed += 2
		}
	}
	sort.Slice(kept, func(a, b int) bool { return kept[a] < kept[b] })
	return kept, killed
}

// reset clears the accumulator between rows without flushing (used by
// the triangle kernels, whose flush is flushUpper).
func (s *accumulator) reset() {
	s.touched = s.touched[:0]
	s.gen++
	if s.gen == 0 {
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.gen = 1
	}
}

// upperTile is one row block of the tiled triangle driver's output.
type upperTile struct {
	lo, hi int
	rowPtr []int64 // local, len hi-lo+1
	cols   []int32
	vals   []float64
}

// fusedXXTParallel is the tiled row-parallel triangle driver: workers
// claim fusedTileRows-sized row blocks from a shared counter (dynamic
// scheduling — skewed rows do not serialise behind one static block),
// each with a private accumulator, and the tiles are stitched in row
// order before mirroring. Bit-identical to the sequential kernel.
func fusedXXTParallel(ctx context.Context, x, xt *CSR, rowScale, colScale []float64, threshold float64, workers int) (*CSR, error) {
	nTiles := (x.Rows + fusedTileRows - 1) / fusedTileRows
	if workers > nTiles {
		workers = nTiles
	}
	tiles := make([]upperTile, nTiles)
	var next atomic.Int64
	var cancelled atomic.Bool
	var killed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			spa := newAccumulator(x.Rows)
			for {
				t := int(next.Add(1) - 1)
				if t >= nTiles {
					return
				}
				if cancelled.Load() || ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				lo := t * fusedTileRows
				hi := lo + fusedTileRows
				if hi > x.Rows {
					hi = x.Rows
				}
				tile := &tiles[t]
				tile.lo, tile.hi = lo, hi
				tile.rowPtr = make([]int64, hi-lo+1)
				var tileKilled int64
				for i := lo; i < hi; i++ {
					xxtUpperRow(x, xt, rowScale, colScale, i, spa)
					kept, k := flushUpper(spa, threshold, i)
					tileKilled += k
					tile.cols = append(tile.cols, kept...)
					for _, c := range kept {
						tile.vals = append(tile.vals, spa.acc[c])
					}
					spa.reset()
					tile.rowPtr[i-lo+1] = int64(len(tile.cols))
				}
				killed.Add(tileKilled)
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, context.Canceled
	}
	obs.PruneStatsFrom(ctx).Add(killed.Load())

	total := 0
	for t := range tiles {
		total += len(tiles[t].cols)
	}
	up := &CSR{
		Rows:   x.Rows,
		Cols:   x.Rows,
		RowPtr: make([]int64, x.Rows+1),
		ColIdx: make([]int32, 0, total),
		Val:    make([]float64, 0, total),
	}
	row := 0
	for t := range tiles {
		tile := &tiles[t]
		for r := tile.lo; r < tile.hi; r++ {
			lo, hi := tile.rowPtr[r-tile.lo], tile.rowPtr[r-tile.lo+1]
			up.ColIdx = append(up.ColIdx, tile.cols[lo:hi]...)
			up.Val = append(up.Val, tile.vals[lo:hi]...)
			row++
			up.RowPtr[row] = int64(len(up.ColIdx))
		}
	}
	return mirrorUpper(up), nil
}

// mirrorUpper expands an upper-triangular matrix (every stored entry of
// row i has column ≥ i) into the full symmetric matrix, copying each
// strict-upper value to its mirror position. One counting pass sizes
// the result exactly; the scatter pass preserves sorted column order
// because mirrored entries of row j (columns i < j) arrive in ascending
// i before row j's own entries (columns ≥ j) are appended.
func mirrorUpper(up *CSR) *CSR {
	n := up.Rows
	out := &CSR{Rows: n, Cols: up.Cols, RowPtr: make([]int64, n+1)}
	counts := make([]int64, n)
	for i := 0; i < n; i++ {
		cols, _ := up.Row(i)
		counts[i] += int64(len(cols))
		for _, j := range cols {
			if int(j) != i {
				counts[j]++
			}
		}
	}
	var nnz int64
	for i, c := range counts {
		nnz += c
		out.RowPtr[i+1] = nnz
	}
	out.ColIdx = make([]int32, nnz)
	out.Val = make([]float64, nnz)
	next := make([]int64, n)
	copy(next, out.RowPtr[:n])
	for i := 0; i < n; i++ {
		cols, vals := up.Row(i)
		for k, j := range cols {
			p := next[i]
			out.ColIdx[p] = j
			out.Val[p] = vals[k]
			next[i]++
			if int(j) != i {
				q := next[j]
				out.ColIdx[q] = int32(i)
				out.Val[q] = vals[k]
				next[j]++
			}
		}
	}
	return out
}

// AddTransposeSym returns scale·M + scale·Mᵀ for square m without
// materialising the full transpose: only the strict lower triangle is
// transposed (half the transpose workspace), the upper triangle of the
// sum is merged directly, and the strict-upper entries are mirrored.
// Because both coefficients are equal, the mirrored entry
// scale·M[i,j] + scale·M[j,i] is the bit-exact commutation of the
// directly-computed scale·M[j,i] + scale·M[i,j], so the result is
// bit-identical to Add(m, m.Transpose(), scale, scale) — this is the
// shared triangle-and-mirror helper behind the A+Aᵀ and random-walk
// (Zhou-style ΠP + PᵀΠ) symmetrizations.
func AddTransposeSym(m *CSR, scale float64) *CSR {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("matrix: AddTransposeSym on non-square %dx%d matrix", m.Rows, m.Cols))
	}
	n := m.Rows
	// Transpose of the strict lower triangle: ltCols/ltVals row c holds
	// the original rows i > c with an (i, c) entry, in ascending i —
	// exactly the columns > c of Mᵀ's row c.
	ltPtr := make([]int64, n+1)
	for i := 0; i < n; i++ {
		cols, _ := m.Row(i)
		for _, c := range cols {
			if int(c) < i {
				ltPtr[c+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		ltPtr[i+1] += ltPtr[i]
	}
	ltCols := make([]int32, ltPtr[n])
	ltVals := make([]float64, ltPtr[n])
	ltNext := make([]int64, n)
	copy(ltNext, ltPtr[:n])
	for i := 0; i < n; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			if int(c) < i {
				p := ltNext[c]
				ltCols[p] = int32(i)
				ltVals[p] = vals[k]
				ltNext[c]++
			}
		}
	}

	// Merge the upper triangle of scale·M + scale·Mᵀ row by row. The
	// value arithmetic replicates Add's merge exactly: both present ⇒
	// scale·av + scale·bv (a-side term first), one side ⇒ that term
	// alone, exact zeros dropped.
	up := &CSR{Rows: n, Cols: n, RowPtr: make([]int64, n+1)}
	for i := 0; i < n; i++ {
		acols, avals := m.Row(i)
		p := sort.Search(len(acols), func(k int) bool { return acols[k] >= int32(i) })
		blo, bhi := ltPtr[i], ltPtr[i+1]
		q := blo
		for p < len(acols) || q < bhi {
			var col int32
			var val float64
			switch {
			case q >= bhi || (p < len(acols) && acols[p] < ltCols[q]):
				col = acols[p]
				if int(col) == i {
					// Diagonal: Mᵀ holds the same entry, so both merge
					// arms fire with the same value.
					val = scale*avals[p] + scale*avals[p]
				} else {
					val = scale * avals[p]
				}
				p++
			case p >= len(acols) || ltCols[q] < acols[p]:
				col, val = ltCols[q], scale*ltVals[q]
				q++
			default:
				col, val = acols[p], scale*avals[p]+scale*ltVals[q]
				p++
				q++
			}
			if val != 0 {
				up.ColIdx = append(up.ColIdx, col)
				up.Val = append(up.Val, val)
			}
		}
		up.RowPtr[i+1] = int64(len(up.ColIdx))
	}
	return mirrorUpper(up)
}
