package matrix

import (
	"math/rand"
	"testing"
)

func TestMulPrunedParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(200)
		a := randomCSR(rng, n, n, 0.1, 0, 2)
		b := randomCSR(rng, n, n, 0.1, 0, 2)
		for _, workers := range []int{1, 2, 3, 8} {
			for _, th := range []float64{0, 0.5} {
				seq := MulPruned(a, b, th)
				par := MulPrunedParallel(a, b, th, workers)
				if !Equal(seq, par, 0) {
					t.Fatalf("trial %d workers=%d th=%v: parallel differs", trial, workers, th)
				}
				// Structure must be bit-identical too, not just values.
				if seq.NNZ() != par.NNZ() {
					t.Fatalf("trial %d: nnz %d vs %d", trial, seq.NNZ(), par.NNZ())
				}
			}
		}
	}
}

func TestMulPrunedParallelTinyMatrix(t *testing.T) {
	a := FromDense([][]float64{{1, 2}, {3, 4}})
	got := MulPrunedParallel(a, a, 0, 16) // workers > rows: sequential path
	if !Equal(got, Mul(a, a), 1e-12) {
		t.Fatal("tiny-matrix fallback wrong")
	}
}

func TestSelfProductParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	x := randomCSR(rng, 120, 60, 0.2, 0, 2)
	seq := MulAAT(x, 0.1)
	par := MulPrunedParallel(x, x.Transpose(), 0.1, 4)
	if !Equal(seq, par, 0) {
		t.Fatal("parallel self-product differs")
	}
}

func BenchmarkSpGEMMParallel(b *testing.B) {
	m := benchGraph(5000, 8)
	mt := m.Transpose()
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulPrunedParallel(m, mt, 2, workers)
			}
		})
	}
}
