package matrix

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"symcluster/internal/obs"
)

// MulPrunedParallel computes a·b with pruning like MulPruned, using up
// to workers goroutines over disjoint row blocks. The result is
// bit-identical to the sequential kernel (row-partitioned work has no
// cross-row interaction). workers <= 0 selects GOMAXPROCS.
//
// The paper's experiments are single-threaded to mirror its setup;
// this kernel is for production use of the library, where the
// symmetrization products dominate end-to-end time on large graphs.
func MulPrunedParallel(a, b *CSR, threshold float64, workers int) *CSR {
	out, _ := MulPrunedParallelCtx(context.Background(), a, b, threshold, workers)
	return out
}

// MulPrunedParallelCtx is MulPrunedParallel with cancellation: every
// worker polls ctx at row-block boundaries, so a cancelled context
// stops all blocks within ctxCheckRows rows and the call returns ctx's
// error.
func MulPrunedParallelCtx(ctx context.Context, a, b *CSR, threshold float64, workers int) (*CSR, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || a.Rows < 2*workers {
		return MulPrunedCtx(ctx, a, b, threshold)
	}
	if a.Cols != b.Rows {
		// Delegate the panic message to the sequential kernel.
		return MulPrunedCtx(ctx, a, b, threshold)
	}

	type block struct {
		lo, hi int
		out    *CSR
	}
	blocks := make([]block, workers)
	per := (a.Rows + workers - 1) / workers
	for w := range blocks {
		lo := w * per
		hi := lo + per
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo > hi {
			lo = hi
		}
		blocks[w] = block{lo: lo, hi: hi}
	}

	// First cancellation observed by any worker; the other workers see
	// the flag at their next block boundary and abandon their block.
	var cancelled atomic.Bool
	var killed atomic.Int64
	var wg sync.WaitGroup
	for w := range blocks {
		wg.Add(1)
		go func(blk *block) {
			defer wg.Done()
			out := &CSR{Rows: blk.hi - blk.lo, Cols: b.Cols, RowPtr: make([]int64, blk.hi-blk.lo+1)}
			spa := newAccumulator(b.Cols)
			var blockKilled int64
			for i := blk.lo; i < blk.hi; i++ {
				if (i-blk.lo)%ctxCheckRows == 0 {
					if cancelled.Load() || ctx.Err() != nil {
						cancelled.Store(true)
						return
					}
				}
				ac, av := a.Row(i)
				for k, c := range ac {
					bcols, bvals := b.Row(int(c))
					w := av[k]
					for t, bc := range bcols {
						spa.add(bc, w*bvals[t])
					}
				}
				blockKilled += int64(spa.flush(out, threshold))
				out.RowPtr[i-blk.lo+1] = int64(len(out.ColIdx))
			}
			killed.Add(blockKilled)
			blk.out = out
		}(&blocks[w])
	}
	wg.Wait()
	if cancelled.Load() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, context.Canceled
	}
	obs.PruneStatsFrom(ctx).Add(killed.Load())

	// Stitch the blocks.
	total := 0
	for _, blk := range blocks {
		total += blk.out.NNZ()
	}
	out := &CSR{
		Rows:   a.Rows,
		Cols:   b.Cols,
		RowPtr: make([]int64, a.Rows+1),
		ColIdx: make([]int32, 0, total),
		Val:    make([]float64, 0, total),
	}
	row := 0
	for _, blk := range blocks {
		for r := 0; r < blk.out.Rows; r++ {
			lo, hi := blk.out.RowPtr[r], blk.out.RowPtr[r+1]
			out.ColIdx = append(out.ColIdx, blk.out.ColIdx[lo:hi]...)
			out.Val = append(out.Val, blk.out.Val[lo:hi]...)
			row++
			out.RowPtr[row] = int64(len(out.ColIdx))
		}
	}
	return out, nil
}
