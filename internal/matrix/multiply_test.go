package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// denseMul multiplies two dense matrices for use as a reference oracle.
func denseMul(a, b [][]float64) [][]float64 {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, cols)
		for k := 0; k < inner; k++ {
			if a[i][k] == 0 {
				continue
			}
			for j := 0; j < cols; j++ {
				out[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return out
}

func TestAddBasic(t *testing.T) {
	a := FromDense([][]float64{{1, 0}, {2, 3}})
	b := FromDense([][]float64{{0, 5}, {-2, 1}})
	s := Add(a, b, 1, 1)
	mustValidate(t, s)
	want := [][]float64{{1, 5}, {0, 4}}
	got := s.ToDense()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("Add (%d,%d) = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	// The cancelled (1,0) entry must be structurally absent.
	if s.RowNNZ(1) != 1 {
		t.Fatalf("cancelled entry stored: row 1 nnz = %d", s.RowNNZ(1))
	}
}

func TestAddScalars(t *testing.T) {
	a := FromDense([][]float64{{2}})
	b := FromDense([][]float64{{3}})
	s := Add(a, b, 2, -1)
	if s.At(0, 0) != 1 {
		t.Fatalf("2·2 - 3 = %v, want 1", s.At(0, 0))
	}
}

func TestAddDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(Zero(2, 2), Zero(2, 3), 1, 1)
}

func TestMulAgainstDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		r := 1 + rng.Intn(15)
		k := 1 + rng.Intn(15)
		c := 1 + rng.Intn(15)
		a := randomCSR(rng, r, k, 0.3, -3, 3)
		b := randomCSR(rng, k, c, 0.3, -3, 3)
		got := Mul(a, b)
		mustValidate(t, got)
		want := denseMul(a.ToDense(), b.ToDense())
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if math.Abs(got.At(i, j)-want[i][j]) > 1e-9 {
					t.Fatalf("trial %d: product (%d,%d) = %v, want %v", trial, i, j, got.At(i, j), want[i][j])
				}
			}
		}
	}
}

func TestMulPrunedDropsSmallEntries(t *testing.T) {
	a := FromDense([][]float64{
		{0.1, 0.1},
		{1, 1},
	})
	b := FromDense([][]float64{
		{0.1, 1},
		{0.1, 1},
	})
	// a·b = [[0.02, 0.2], [0.2, 2]]
	p := MulPruned(a, b, 0.1)
	mustValidate(t, p)
	if p.At(0, 0) != 0 {
		t.Fatal("entry below threshold kept")
	}
	if math.Abs(p.At(0, 1)-0.2) > 1e-12 || math.Abs(p.At(1, 1)-2) > 1e-12 {
		t.Fatalf("entries above threshold wrong: %v", p.ToDense())
	}
}

func TestMulPrunedZeroThresholdKeepsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomCSR(rng, 10, 10, 0.4, 0.1, 1)
	p0 := MulPruned(a, a, 0)
	pn := Mul(a, a)
	if !Equal(p0, pn, 0) {
		t.Fatal("threshold 0 differs from unpruned product")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomCSR(rng, 12, 12, 0.3, -2, 2)
	if !Equal(Mul(m, Identity(12)), m, 1e-12) {
		t.Fatal("m·I != m")
	}
	if !Equal(Mul(Identity(12), m), m, 1e-12) {
		t.Fatal("I·m != m")
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(Zero(2, 3), Zero(2, 3))
}

func TestMulAATSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		m := randomCSR(rng, 1+rng.Intn(20), 1+rng.Intn(20), 0.25, 0, 2)
		p := MulAAT(m, 0)
		mustValidate(t, p)
		if !p.IsSymmetric(1e-9) {
			t.Fatalf("trial %d: x·xᵀ not symmetric", trial)
		}
		want := denseMul(m.ToDense(), m.Transpose().ToDense())
		for i := 0; i < p.Rows; i++ {
			for j := 0; j < p.Cols; j++ {
				if math.Abs(p.At(i, j)-want[i][j]) > 1e-9 {
					t.Fatalf("trial %d: AAᵀ (%d,%d) mismatch", trial, i, j)
				}
			}
		}
	}
}

func TestMulAATDiagonalIsRowNormSquared(t *testing.T) {
	m := FromDense([][]float64{
		{1, 2, 0},
		{0, 0, 3},
	})
	p := MulAAT(m, 0)
	if p.At(0, 0) != 5 || p.At(1, 1) != 9 {
		t.Fatalf("diagonal = %v, %v; want 5, 9", p.At(0, 0), p.At(1, 1))
	}
}

func TestPow(t *testing.T) {
	m := FromDense([][]float64{
		{0, 1},
		{0, 0},
	})
	if !Equal(Pow(m, 1, 0), m, 0) {
		t.Fatal("m¹ != m")
	}
	sq := Pow(m, 2, 0)
	if sq.NNZ() != 0 {
		t.Fatalf("nilpotent square has %d entries", sq.NNZ())
	}
	perm := FromDense([][]float64{
		{0, 1, 0},
		{0, 0, 1},
		{1, 0, 0},
	})
	if !Equal(Pow(perm, 3, 0), Identity(3), 1e-12) {
		t.Fatal("3-cycle cubed != I")
	}
}

func TestAccumulatorGenerationWrap(t *testing.T) {
	// Force the generation counter to wrap and verify products stay
	// correct across the wrap.
	spa := newAccumulator(4)
	spa.gen = ^uint32(0) - 1
	out := Zero(1, 4)
	out.RowPtr = make([]int64, 2)
	spa.add(2, 5)
	spa.flush(out, 0)
	out.RowPtr[1] = int64(len(out.ColIdx))
	if out.At(0, 2) != 5 {
		t.Fatalf("pre-wrap flush lost value: %v", out.ToDense())
	}
	out2 := Zero(1, 4)
	out2.RowPtr = make([]int64, 2)
	spa.add(2, 7) // gen is now max; next flush wraps
	spa.flush(out2, 0)
	out2.RowPtr[1] = int64(len(out2.ColIdx))
	if out2.At(0, 2) != 7 {
		t.Fatalf("wrap flush lost value: %v", out2.ToDense())
	}
	if spa.gen != 1 {
		t.Fatalf("gen after wrap = %d, want 1", spa.gen)
	}
	out3 := Zero(1, 4)
	out3.RowPtr = make([]int64, 2)
	spa.add(1, 3)
	spa.flush(out3, 0)
	out3.RowPtr[1] = int64(len(out3.ColIdx))
	if out3.At(0, 1) != 3 || out3.At(0, 2) != 0 {
		t.Fatalf("post-wrap accumulation stale: %v", out3.ToDense())
	}
}

// Property: (a·b)ᵀ = bᵀ·aᵀ on random sparse matrices.
func TestMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		a := randomCSR(rng, 1+rng.Intn(12), 1+rng.Intn(12), 0.3, -2, 2)
		b := randomCSR(rng, a.Cols, 1+rng.Intn(12), 0.3, -2, 2)
		lhs := Mul(a, b).Transpose()
		rhs := Mul(b.Transpose(), a.Transpose())
		if !Equal(lhs, rhs, 1e-9) {
			t.Fatalf("trial %d: (ab)ᵀ != bᵀaᵀ", trial)
		}
	}
}

// Property: matrix product distributes over addition.
func TestMulDistributesOverAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(10)
		a := randomCSR(rng, n, n, 0.3, -2, 2)
		b := randomCSR(rng, n, n, 0.3, -2, 2)
		c := randomCSR(rng, n, n, 0.3, -2, 2)
		lhs := Mul(a, Add(b, c, 1, 1))
		rhs := Add(Mul(a, b), Mul(a, c), 1, 1)
		if !Equal(lhs, rhs, 1e-9) {
			t.Fatalf("trial %d: a(b+c) != ab+ac", trial)
		}
	}
}
