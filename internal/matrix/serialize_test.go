package matrix

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		m := randomCSR(rng, 1+rng.Intn(50), 1+rng.Intn(50), 0.2, -5, 5)
		var buf bytes.Buffer
		if err := m.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(m, back, 0) || m.NNZ() != back.NNZ() {
			t.Fatalf("trial %d: round trip changed the matrix", trial)
		}
	}
}

func TestBinaryEmptyMatrix(t *testing.T) {
	var buf bytes.Buffer
	if err := Zero(3, 4).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != 3 || back.Cols != 4 || back.NNZ() != 0 {
		t.Fatalf("empty round trip: %dx%d nnz %d", back.Rows, back.Cols, back.NNZ())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("accepted bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("CSR1\x01"))); err == nil {
		t.Fatal("accepted truncated header")
	}
	// Corrupt an otherwise valid stream: flip a column index out of
	// range and confirm validation catches it.
	m := FromDense([][]float64{{1, 2}, {3, 4}})
	var buf bytes.Buffer
	if err := m.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// ColIdx begins after magic(4) + header(24) + RowPtr(3×8).
	off := 4 + 24 + 24
	data[off] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("accepted corrupt column index")
	}
}

func TestBinaryImplausibleHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("CSR1")
	// rows = 2^60.
	for _, b := range []byte{0, 0, 0, 0, 0, 0, 0, 0x10, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0} {
		buf.WriteByte(b)
	}
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("accepted implausible dimensions")
	}
}
