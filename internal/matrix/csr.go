// Package matrix implements the sparse-matrix kernel used by every other
// subsystem in symcluster: compressed sparse row (CSR) matrices, a COO
// builder, transpose, sparse products with optional prune thresholds,
// diagonal scaling and stochastic normalisation.
//
// All matrices are real-valued with float64 entries. A CSR value is
// immutable by convention once built: operations return new matrices.
// Column indices within each row are kept sorted and duplicate-free,
// which the builders guarantee and the kernels rely on.
package matrix

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row form. Row i occupies
// the half-open range [RowPtr[i], RowPtr[i+1]) of ColIdx and Val.
// ColIdx entries within a row are strictly increasing.
type CSR struct {
	Rows, Cols int
	RowPtr     []int64
	ColIdx     []int32
	Val        []float64
}

// NNZ returns the number of stored (structurally non-zero) entries.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// Row returns the column indices and values of row i. The returned
// slices alias the matrix storage and must not be modified.
func (m *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// At returns the entry at (i, j), zero if not stored. It binary-searches
// the row and therefore costs O(log nnz(row i)).
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.Row(i)
	k := sort.Search(len(cols), func(p int) bool { return cols[p] >= int32(j) })
	if k < len(cols) && cols[k] == int32(j) {
		return vals[k]
	}
	return 0
}

// Clone returns a deep copy of the matrix.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int64(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	return c
}

// Zero returns an empty Rows×Cols matrix with no stored entries.
func Zero(rows, cols int) *CSR {
	return &CSR{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSR {
	m := &CSR{
		Rows:   n,
		Cols:   n,
		RowPtr: make([]int64, n+1),
		ColIdx: make([]int32, n),
		Val:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = int64(i + 1)
		m.ColIdx[i] = int32(i)
		m.Val[i] = 1
	}
	return m
}

// Diagonal returns the square matrix with d on the diagonal.
func Diagonal(d []float64) *CSR {
	n := len(d)
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int64, n+1)}
	for i, v := range d {
		if v != 0 {
			m.ColIdx = append(m.ColIdx, int32(i))
			m.Val = append(m.Val, v)
		}
		m.RowPtr[i+1] = int64(len(m.ColIdx))
	}
	return m
}

// Diag extracts the main diagonal as a dense vector.
func (m *CSR) Diag() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// Validate checks structural invariants: monotone row pointers, in-range
// sorted column indices, finite values. It returns a descriptive error
// for the first violation found, or nil. Intended for tests and for
// checking matrices read from external files.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("matrix: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("matrix: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("matrix: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if int(m.RowPtr[m.Rows]) != len(m.ColIdx) || len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("matrix: nnz mismatch: RowPtr end %d, len(ColIdx) %d, len(Val) %d",
			m.RowPtr[m.Rows], len(m.ColIdx), len(m.Val))
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("matrix: RowPtr not monotone at row %d", i)
		}
		cols, vals := m.Row(i)
		for k, c := range cols {
			if c < 0 || int(c) >= m.Cols {
				return fmt.Errorf("matrix: row %d col %d out of range [0,%d)", i, c, m.Cols)
			}
			if k > 0 && cols[k-1] >= c {
				return fmt.Errorf("matrix: row %d columns not strictly increasing at position %d", i, k)
			}
			if math.IsNaN(vals[k]) || math.IsInf(vals[k], 0) {
				return fmt.Errorf("matrix: row %d col %d value %v not finite", i, c, vals[k])
			}
		}
	}
	return nil
}

// Transpose returns mᵀ using a counting pass followed by a scatter pass.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int64, m.Cols+1),
		ColIdx: make([]int32, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int64, m.Cols)
	copy(next, t.RowPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			p := next[c]
			t.ColIdx[p] = int32(i)
			t.Val[p] = vals[k]
			next[c]++
		}
	}
	return t
}

// IsSymmetric reports whether the matrix equals its transpose to within
// tol in absolute value on every entry.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	t := m.Transpose()
	if m.NNZ() != t.NNZ() {
		// Structure may still match with explicit zeros; fall through to
		// the entrywise comparison via Add below only when counts match.
		// Cheaper: compare entrywise using At on the smaller side.
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			if math.Abs(vals[k]-t.At(i, int(c))) > tol {
				return false
			}
		}
	}
	for i := 0; i < t.Rows; i++ {
		cols, vals := t.Row(i)
		for k, c := range cols {
			if math.Abs(vals[k]-m.At(i, int(c))) > tol {
				return false
			}
		}
	}
	return true
}

// Scale returns s·m.
func (m *CSR) Scale(s float64) *CSR {
	c := m.Clone()
	for i := range c.Val {
		c.Val[i] *= s
	}
	return c
}

// ScaleRows returns diag(d)·m, i.e. row i multiplied by d[i].
func (m *CSR) ScaleRows(d []float64) *CSR {
	if len(d) != m.Rows {
		panic(fmt.Sprintf("matrix: ScaleRows vector length %d, want %d", len(d), m.Rows))
	}
	c := m.Clone()
	for i := 0; i < c.Rows; i++ {
		lo, hi := c.RowPtr[i], c.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			c.Val[k] *= d[i]
		}
	}
	return c
}

// ScaleCols returns m·diag(d), i.e. column j multiplied by d[j].
func (m *CSR) ScaleCols(d []float64) *CSR {
	if len(d) != m.Cols {
		panic(fmt.Sprintf("matrix: ScaleCols vector length %d, want %d", len(d), m.Cols))
	}
	c := m.Clone()
	for k, col := range c.ColIdx {
		c.Val[k] *= d[col]
	}
	return c
}

// RowSums returns the vector of row sums.
func (m *CSR) RowSums() []float64 {
	s := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		_, vals := m.Row(i)
		for _, v := range vals {
			s[i] += v
		}
	}
	return s
}

// ColSums returns the vector of column sums.
func (m *CSR) ColSums() []float64 {
	s := make([]float64, m.Cols)
	for k, c := range m.ColIdx {
		s[c] += m.Val[k]
	}
	return s
}

// RowCounts returns the number of stored entries per row (out-degrees
// when the matrix is an adjacency matrix).
func (m *CSR) RowCounts() []int {
	d := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		d[i] = m.RowNNZ(i)
	}
	return d
}

// ColCounts returns the number of stored entries per column (in-degrees
// for an adjacency matrix).
func (m *CSR) ColCounts() []int {
	d := make([]int, m.Cols)
	for _, c := range m.ColIdx {
		d[c]++
	}
	return d
}

// NormalizeRows returns the row-stochastic version of m: each non-empty
// row is divided by its sum. Rows whose sum is zero are left empty; the
// caller decides how to handle such dangling rows (see package walk).
func (m *CSR) NormalizeRows() *CSR {
	c := m.Clone()
	for i := 0; i < c.Rows; i++ {
		lo, hi := c.RowPtr[i], c.RowPtr[i+1]
		var sum float64
		for k := lo; k < hi; k++ {
			sum += c.Val[k]
		}
		if sum == 0 {
			continue
		}
		inv := 1 / sum
		for k := lo; k < hi; k++ {
			c.Val[k] *= inv
		}
	}
	return c
}

// Prune returns a copy with every entry whose absolute value is strictly
// below threshold removed. Explicitly stored zeros are removed whenever
// threshold > 0.
func (m *CSR) Prune(threshold float64) *CSR {
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int64, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			if math.Abs(vals[k]) >= threshold && vals[k] != 0 {
				out.ColIdx = append(out.ColIdx, c)
				out.Val = append(out.Val, vals[k])
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// DropDiagonal returns a copy with all diagonal entries removed.
func (m *CSR) DropDiagonal() *CSR {
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int64, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			if int(c) != i {
				out.ColIdx = append(out.ColIdx, c)
				out.Val = append(out.Val, vals[k])
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// AddIdentity returns m + I for square m (used for the A := A + I
// self-loop option prior to bibliometric symmetrization, §3.3).
func (m *CSR) AddIdentity() *CSR {
	if m.Rows != m.Cols {
		panic("matrix: AddIdentity on non-square matrix")
	}
	return Add(m, Identity(m.Rows), 1, 1)
}

// MulVec returns m·x as a new dense vector.
func (m *CSR) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("matrix: MulVec vector length %d, want %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = s
	}
	return y
}

// MulVecT returns mᵀ·x (equivalently xᵀ·m) without materialising the
// transpose.
func (m *CSR) MulVecT(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("matrix: MulVecT vector length %d, want %d", len(x), m.Rows))
	}
	y := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			y[c] += vals[k] * x[i]
		}
	}
	return y
}

// FrobeniusNorm returns the Frobenius norm of the matrix.
func (m *CSR) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Val {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry value, 0 for an empty matrix.
func (m *CSR) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Val {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether a and b have identical dimensions and all
// entries agree to within tol (comparing the union of both structures).
func Equal(a, b *CSR, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	d := Add(a, b, 1, -1)
	return d.MaxAbs() <= tol
}
