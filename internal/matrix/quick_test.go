package matrix

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// sparseGen is a generator of random sparse matrices for testing/quick.
// Dimensions stay small so dense oracles are cheap.
type sparseGen struct {
	M *CSR
}

// Generate implements quick.Generator.
func (sparseGen) Generate(rng *rand.Rand, size int) reflect.Value {
	rows := 1 + rng.Intn(12)
	cols := 1 + rng.Intn(12)
	b := NewBuilder(rows, cols)
	entries := rng.Intn(rows * cols)
	for e := 0; e < entries; e++ {
		// Small integer-ish values keep dense-oracle comparisons exact
		// enough for tight tolerances.
		v := float64(rng.Intn(9) - 4)
		if v != 0 {
			b.Add(rng.Intn(rows), rng.Intn(cols), v)
		}
	}
	return reflect.ValueOf(sparseGen{M: b.Build()})
}

// squareGen generates random square sparse matrices.
type squareGen struct {
	M *CSR
}

// Generate implements quick.Generator.
func (squareGen) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 1 + rng.Intn(10)
	b := NewBuilder(n, n)
	entries := rng.Intn(n * n)
	for e := 0; e < entries; e++ {
		v := float64(rng.Intn(9) - 4)
		if v != 0 {
			b.Add(rng.Intn(n), rng.Intn(n), v)
		}
	}
	return reflect.ValueOf(squareGen{M: b.Build()})
}

var quickCfg = &quick.Config{MaxCount: 200}

func TestQuickBuildValidates(t *testing.T) {
	f := func(g sparseGen) bool {
		return g.M.Validate() == nil
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(g sparseGen) bool {
		return Equal(g.M.Transpose().Transpose(), g.M, 0)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransposePreservesNNZ(t *testing.T) {
	f := func(g sparseGen) bool {
		return g.M.Transpose().NNZ() == g.M.NNZ()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddCommutes(t *testing.T) {
	f := func(g, h squareGen) bool {
		a, b := padToSame(g.M, h.M)
		return Equal(Add(a, b, 1, 1), Add(b, a, 1, 1), 1e-12)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddSubtractRoundTrip(t *testing.T) {
	f := func(g, h squareGen) bool {
		a, b := padToSame(g.M, h.M)
		// (a + b) - b == a
		return Equal(Add(Add(a, b, 1, 1), b, 1, -1), a, 1e-12)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulAssociativeWithVector(t *testing.T) {
	// (a·b)·x == a·(b·x) for random square matrices and vectors.
	f := func(g, h squareGen, seed int64) bool {
		a, b := padToSame(g.M, h.M)
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, a.Cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		lhs := Mul(a, b).MulVec(x)
		rhs := a.MulVec(b.MulVec(x))
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAATSymmetricPSDDiagonal(t *testing.T) {
	f := func(g sparseGen) bool {
		p := MulAAT(g.M, 0)
		if !p.IsSymmetric(1e-9) {
			return false
		}
		// Diagonal of X·Xᵀ is a sum of squares: never negative.
		for _, d := range p.Diag() {
			if d < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPruneSubsetAndThreshold(t *testing.T) {
	f := func(g sparseGen, thRaw uint8) bool {
		th := float64(thRaw) / 64
		p := g.M.Prune(th)
		if p.NNZ() > g.M.NNZ() {
			return false
		}
		for i := 0; i < p.Rows; i++ {
			cols, vals := p.Row(i)
			for k, c := range cols {
				if math.Abs(vals[k]) < th {
					return false
				}
				if g.M.At(i, int(c)) != vals[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormalizeRowsStochastic(t *testing.T) {
	f := func(g sparseGen) bool {
		// Use absolute values so row sums are positive where non-empty.
		m := g.M.Clone()
		for i := range m.Val {
			m.Val[i] = math.Abs(m.Val[i])
		}
		m = m.Prune(1e-12)
		n := m.NormalizeRows()
		for i := 0; i < n.Rows; i++ {
			_, vals := n.Row(i)
			if len(vals) == 0 {
				continue
			}
			var sum float64
			for _, v := range vals {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickScaleRowsColsViaDiagonal(t *testing.T) {
	// diag(d)·m == ScaleRows and m·diag(d) == ScaleCols.
	f := func(g sparseGen, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dr := make([]float64, g.M.Rows)
		for i := range dr {
			dr[i] = rng.NormFloat64()
		}
		dc := make([]float64, g.M.Cols)
		for i := range dc {
			dc[i] = rng.NormFloat64()
		}
		if !Equal(Mul(Diagonal(dr), g.M), g.M.ScaleRows(dr), 1e-9) {
			return false
		}
		return Equal(Mul(g.M, Diagonal(dc)), g.M.ScaleCols(dc), 1e-9)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// padToSame embeds two square matrices into a common dimension so
// binary operations are well-defined for independently generated
// operands.
func padToSame(a, b *CSR) (*CSR, *CSR) {
	n := a.Rows
	if b.Rows > n {
		n = b.Rows
	}
	return pad(a, n), pad(b, n)
}

func pad(m *CSR, n int) *CSR {
	if m.Rows == n && m.Cols == n {
		return m
	}
	bld := NewBuilder(n, n)
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			bld.Add(i, int(c), vals[k])
		}
	}
	return bld.Build()
}
