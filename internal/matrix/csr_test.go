package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func mustValidate(t *testing.T, m *CSR) {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("invalid matrix: %v", err)
	}
}

// randomCSR builds a random rows×cols matrix with the given expected
// density and values in [lo, hi]. Deterministic for a given rng.
func randomCSR(rng *rand.Rand, rows, cols int, density, lo, hi float64) *CSR {
	b := NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				b.Add(i, j, lo+rng.Float64()*(hi-lo))
			}
		}
	}
	return b.Build()
}

func TestZero(t *testing.T) {
	m := Zero(3, 4)
	mustValidate(t, m)
	if m.NNZ() != 0 {
		t.Fatalf("Zero NNZ = %d, want 0", m.NNZ())
	}
	if m.At(1, 2) != 0 {
		t.Fatalf("Zero At = %v, want 0", m.At(1, 2))
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(5)
	mustValidate(t, m)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := m.At(i, j); got != want {
				t.Fatalf("I(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestDiagonal(t *testing.T) {
	m := Diagonal([]float64{2, 0, -3})
	mustValidate(t, m)
	if m.NNZ() != 2 {
		t.Fatalf("Diagonal NNZ = %d, want 2 (zero dropped)", m.NNZ())
	}
	if m.At(0, 0) != 2 || m.At(2, 2) != -3 || m.At(1, 1) != 0 {
		t.Fatalf("Diagonal entries wrong: %v", m.ToDense())
	}
	d := m.Diag()
	if d[0] != 2 || d[1] != 0 || d[2] != -3 {
		t.Fatalf("Diag() = %v", d)
	}
}

func TestBuilderDuplicatesSummed(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 1.5)
	b.Add(0, 1, 2.5)
	b.Add(1, 0, -1)
	b.Add(1, 0, 1) // cancels to zero -> dropped
	m := b.Build()
	mustValidate(t, m)
	if got := m.At(0, 1); got != 4 {
		t.Fatalf("summed duplicate = %v, want 4", got)
	}
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (cancelled entry dropped)", m.NNZ())
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Add")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestBuilderReuseAfterBuild(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	first := b.Build()
	if first.NNZ() != 1 {
		t.Fatalf("first build NNZ = %d", first.NNZ())
	}
	b.Add(1, 1, 2)
	second := b.Build()
	mustValidate(t, second)
	if second.NNZ() != 1 || second.At(1, 1) != 2 || second.At(0, 0) != 0 {
		t.Fatalf("builder not drained between builds: %v", second.ToDense())
	}
}

func TestBuilderReserve(t *testing.T) {
	b := NewBuilder(10, 10)
	b.Add(0, 0, 1)
	b.Reserve(100)
	b.Add(1, 1, 2)
	m := b.Build()
	if m.At(0, 0) != 1 || m.At(1, 1) != 2 {
		t.Fatalf("Reserve lost entries: %v", m.ToDense())
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	d := [][]float64{
		{1, 0, 2},
		{0, 0, 0},
		{-3, 4, 0},
	}
	m := FromDense(d)
	mustValidate(t, m)
	got := m.ToDense()
	for i := range d {
		for j := range d[i] {
			if got[i][j] != d[i][j] {
				t.Fatalf("round trip (%d,%d): got %v want %v", i, j, got[i][j], d[i][j])
			}
		}
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", m.NNZ())
	}
}

func TestTranspose(t *testing.T) {
	m := FromDense([][]float64{
		{1, 2, 0},
		{0, 3, 4},
	})
	tr := m.Transpose()
	mustValidate(t, tr)
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m := randomCSR(rng, 1+rng.Intn(30), 1+rng.Intn(30), 0.2, -5, 5)
		tt := m.Transpose().Transpose()
		if !Equal(m, tt, 0) {
			t.Fatalf("trial %d: (mᵀ)ᵀ != m", trial)
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	sym := FromDense([][]float64{
		{1, 2, 0},
		{2, 0, 3},
		{0, 3, 5},
	})
	if !sym.IsSymmetric(0) {
		t.Fatal("symmetric matrix reported asymmetric")
	}
	asym := FromDense([][]float64{
		{0, 1},
		{0, 0},
	})
	if asym.IsSymmetric(0) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	rect := Zero(2, 3)
	if rect.IsSymmetric(0) {
		t.Fatal("rectangular matrix reported symmetric")
	}
}

func TestScaleRowsCols(t *testing.T) {
	m := FromDense([][]float64{
		{1, 2},
		{3, 4},
	})
	r := m.ScaleRows([]float64{2, 10})
	if r.At(0, 1) != 4 || r.At(1, 0) != 30 {
		t.Fatalf("ScaleRows wrong: %v", r.ToDense())
	}
	c := m.ScaleCols([]float64{2, 10})
	if c.At(0, 1) != 20 || c.At(1, 0) != 6 {
		t.Fatalf("ScaleCols wrong: %v", c.ToDense())
	}
	// Originals untouched.
	if m.At(0, 1) != 2 {
		t.Fatal("ScaleRows mutated receiver")
	}
}

func TestRowColSumsAndCounts(t *testing.T) {
	m := FromDense([][]float64{
		{1, 0, 2},
		{0, 3, 0},
	})
	rs := m.RowSums()
	if rs[0] != 3 || rs[1] != 3 {
		t.Fatalf("RowSums = %v", rs)
	}
	cs := m.ColSums()
	if cs[0] != 1 || cs[1] != 3 || cs[2] != 2 {
		t.Fatalf("ColSums = %v", cs)
	}
	rc := m.RowCounts()
	if rc[0] != 2 || rc[1] != 1 {
		t.Fatalf("RowCounts = %v", rc)
	}
	cc := m.ColCounts()
	if cc[0] != 1 || cc[1] != 1 || cc[2] != 1 {
		t.Fatalf("ColCounts = %v", cc)
	}
}

func TestNormalizeRows(t *testing.T) {
	m := FromDense([][]float64{
		{2, 2, 0},
		{0, 0, 0},
		{0, 0, 5},
	})
	n := m.NormalizeRows()
	mustValidate(t, n)
	if n.At(0, 0) != 0.5 || n.At(0, 1) != 0.5 {
		t.Fatalf("row 0 not normalised: %v", n.ToDense())
	}
	if n.RowNNZ(1) != 0 {
		t.Fatal("empty row gained entries")
	}
	if n.At(2, 2) != 1 {
		t.Fatalf("row 2 = %v, want 1", n.At(2, 2))
	}
}

func TestPrune(t *testing.T) {
	m := FromDense([][]float64{
		{0.5, -0.01, 2},
		{0.009, 0, 1},
	})
	p := m.Prune(0.01)
	mustValidate(t, p)
	if p.NNZ() != 4 {
		t.Fatalf("Prune NNZ = %d, want 4 (|-0.01| kept, 0.009 dropped)", p.NNZ())
	}
	if p.At(1, 0) != 0 {
		t.Fatal("entry below threshold survived")
	}
	if p.At(0, 1) != -0.01 {
		t.Fatal("entry at threshold dropped (threshold is inclusive)")
	}
}

func TestDropDiagonal(t *testing.T) {
	m := FromDense([][]float64{
		{5, 1},
		{2, 7},
	})
	d := m.DropDiagonal()
	mustValidate(t, d)
	if d.At(0, 0) != 0 || d.At(1, 1) != 0 || d.At(0, 1) != 1 || d.At(1, 0) != 2 {
		t.Fatalf("DropDiagonal wrong: %v", d.ToDense())
	}
}

func TestAddIdentity(t *testing.T) {
	m := FromDense([][]float64{
		{1, 1},
		{0, 0},
	})
	ai := m.AddIdentity()
	if ai.At(0, 0) != 2 || ai.At(1, 1) != 1 || ai.At(0, 1) != 1 {
		t.Fatalf("AddIdentity wrong: %v", ai.ToDense())
	}
}

func TestMulVec(t *testing.T) {
	m := FromDense([][]float64{
		{1, 2, 0},
		{0, 0, 3},
	})
	y := m.MulVec([]float64{1, 1, 1})
	if y[0] != 3 || y[1] != 3 {
		t.Fatalf("MulVec = %v", y)
	}
	yt := m.MulVecT([]float64{1, 2})
	if yt[0] != 1 || yt[1] != 2 || yt[2] != 6 {
		t.Fatalf("MulVecT = %v", yt)
	}
}

func TestMulVecTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		m := randomCSR(rng, 1+rng.Intn(20), 1+rng.Intn(20), 0.3, -2, 2)
		x := make([]float64, m.Rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		a := m.MulVecT(x)
		b := m.Transpose().MulVec(x)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				t.Fatalf("trial %d: MulVecT disagrees with Transpose().MulVec at %d: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}

func TestFrobeniusNormAndMaxAbs(t *testing.T) {
	m := FromDense([][]float64{
		{3, 0},
		{0, -4},
	})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Frobenius = %v, want 5", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
	if got := Zero(2, 2).MaxAbs(); got != 0 {
		t.Fatalf("MaxAbs of zero matrix = %v", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := FromDense([][]float64{{1, 2}, {3, 4}})
	m.ColIdx[0] = 9 // out of range
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range column")
	}
	m = FromDense([][]float64{{1, 2}})
	m.Val[0] = math.NaN()
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted NaN")
	}
	m = FromDense([][]float64{{1, 2}})
	m.RowPtr[1] = 5
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted bad RowPtr")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromDense([][]float64{{1, 2}})
	c := m.Clone()
	c.Val[0] = 99
	if m.Val[0] == 99 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestEqual(t *testing.T) {
	a := FromDense([][]float64{{1, 0}, {0, 2}})
	b := FromDense([][]float64{{1, 0}, {0, 2 + 1e-12}})
	if !Equal(a, b, 1e-9) {
		t.Fatal("Equal rejected near-identical matrices")
	}
	if Equal(a, b, 0) {
		t.Fatal("Equal with zero tol accepted differing matrices")
	}
	if Equal(a, Zero(2, 3), 1) {
		t.Fatal("Equal accepted different shapes")
	}
}
