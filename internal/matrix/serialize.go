package matrix

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary CSR serialization, so expensive symmetrization products can be
// computed once and cached. Format (little-endian):
//
//	magic "CSR1" | rows u64 | cols u64 | nnz u64
//	RowPtr  (rows+1) × u64
//	ColIdx  nnz × u32
//	Val     nnz × f64
const csrMagic = "CSR1"

// WriteBinary serialises the matrix.
func (m *CSR) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(csrMagic); err != nil {
		return err
	}
	hdr := []uint64{uint64(m.Rows), uint64(m.Cols), uint64(m.NNZ())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, m.RowPtr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.ColIdx); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.Val); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserialises a matrix written by WriteBinary and validates
// its structural invariants before returning it.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(csrMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("matrix: reading magic: %w", err)
	}
	if string(magic) != csrMagic {
		return nil, fmt.Errorf("matrix: bad magic %q", magic)
	}
	var rows, cols, nnz uint64
	for _, p := range []*uint64{&rows, &cols, &nnz} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("matrix: reading header: %w", err)
		}
	}
	const maxDim = 1 << 33 // ~8.5e9: defends against corrupt headers
	if rows > maxDim || cols > maxDim || nnz > maxDim {
		return nil, fmt.Errorf("matrix: implausible dimensions %d x %d, nnz %d", rows, cols, nnz)
	}
	m := &CSR{
		Rows:   int(rows),
		Cols:   int(cols),
		RowPtr: make([]int64, rows+1),
		ColIdx: make([]int32, nnz),
		Val:    make([]float64, nnz),
	}
	if err := binary.Read(br, binary.LittleEndian, m.RowPtr); err != nil {
		return nil, fmt.Errorf("matrix: reading row pointers: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, m.ColIdx); err != nil {
		return nil, fmt.Errorf("matrix: reading column indices: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, m.Val); err != nil {
		return nil, fmt.Errorf("matrix: reading values: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("matrix: deserialised matrix invalid: %w", err)
	}
	return m, nil
}
