package bipartite

import (
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

// plantedBipartite builds k planted co-clusters: rows of block i
// connect (with probability pin) to columns of block i, and with pout
// to other columns.
func plantedBipartite(rng *rand.Rand, k, rowsPer, colsPer int, pin, pout float64) (*matrix.CSR, []int, []int) {
	rows, cols := k*rowsPer, k*colsPer
	rowTruth := make([]int, rows)
	colTruth := make([]int, cols)
	b := matrix.NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		rowTruth[i] = i / rowsPer
		for j := 0; j < cols; j++ {
			colTruth[j] = j / colsPer
			p := pout
			if rowTruth[i] == j/colsPer {
				p = pin
			}
			if rng.Float64() < p {
				b.Add(i, j, 1)
			}
		}
	}
	return b.Build(), rowTruth, colTruth
}

func purity(assign, truth []int) float64 {
	groups := map[int]map[int]int{}
	for i, a := range assign {
		if groups[truth[i]] == nil {
			groups[truth[i]] = map[int]int{}
		}
		groups[truth[i]][a]++
	}
	var total, sum float64
	for _, counts := range groups {
		best, n := 0, 0
		for _, c := range counts {
			if c > best {
				best = c
			}
			n += c
		}
		sum += float64(best)
		total += float64(n)
	}
	return sum / total
}

func TestRowSimilaritySymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b, _, _ := plantedBipartite(rng, 3, 15, 10, 0.5, 0.02)
	rs := RowSimilarity(b, Options{})
	if !rs.IsSymmetric(1e-9) {
		t.Fatal("row similarity not symmetric")
	}
	if rs.Rows != b.Rows {
		t.Fatalf("row similarity dims %d", rs.Rows)
	}
	cs := ColSimilarity(b, Options{})
	if !cs.IsSymmetric(1e-9) {
		t.Fatal("column similarity not symmetric")
	}
	if cs.Rows != b.Cols {
		t.Fatalf("column similarity dims %d", cs.Rows)
	}
}

func TestRowSimilarityFavoursSameBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b, rowTruth, _ := plantedBipartite(rng, 2, 20, 15, 0.6, 0.02)
	rs := RowSimilarity(b, Options{})
	var same, cross float64
	var sameN, crossN int
	for i := 0; i < rs.Rows; i++ {
		cols, vals := rs.Row(i)
		for k, c := range cols {
			if rowTruth[i] == rowTruth[c] {
				same += vals[k]
				sameN++
			} else {
				cross += vals[k]
				crossN++
			}
		}
	}
	if sameN == 0 || same/float64(sameN) <= cross/float64(max(crossN, 1)) {
		t.Fatalf("same-block similarity not above cross-block: %v vs %v",
			same/float64(max(sameN, 1)), cross/float64(max(crossN, 1)))
	}
}

func TestCoClusterRecoversBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b, rowTruth, colTruth := plantedBipartite(rng, 4, 20, 15, 0.5, 0.01)
	res, err := CoCluster(b, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p := purity(res.RowAssign, rowTruth); p < 0.9 {
		t.Fatalf("row purity %v", p)
	}
	if p := purity(res.ColAssign, colTruth); p < 0.9 {
		t.Fatalf("column purity %v", p)
	}
}

func TestCoClusterAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b, rowTruth, colTruth := plantedBipartite(rng, 3, 20, 15, 0.6, 0.01)
	res, err := CoCluster(b, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// For each column cluster dominated by true block t, its aligned
	// row cluster should be dominated by the same block.
	colBlock := dominantBlock(res.ColAssign, colTruth, res.ColK)
	rowBlock := dominantBlock(res.RowAssign, rowTruth, res.RowK)
	matched := 0
	for cc, rc := range res.ColToRow {
		if rc < 0 {
			continue
		}
		if colBlock[cc] == rowBlock[rc] {
			matched++
		}
	}
	if matched < len(res.ColToRow)*2/3 {
		t.Fatalf("only %d/%d column clusters aligned with their block's row cluster",
			matched, len(res.ColToRow))
	}
}

// dominantBlock maps each cluster id to the true block holding most of
// its members.
func dominantBlock(assign, truth []int, k int) []int {
	counts := make([]map[int]int, k)
	for i, a := range assign {
		if counts[a] == nil {
			counts[a] = map[int]int{}
		}
		counts[a][truth[i]]++
	}
	out := make([]int, k)
	for c := range out {
		best, bestN := -1, 0
		for blk, n := range counts[c] {
			if n > bestN {
				best, bestN = blk, n
			}
		}
		out[c] = best
	}
	return out
}

func TestCoClusterEmptyColumnCluster(t *testing.T) {
	// A column with no edges forms its own cluster with ColToRow -1.
	b := matrix.FromDense([][]float64{
		{1, 0},
		{1, 0},
	})
	res, err := CoCluster(b, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	foundUnaligned := false
	for _, rc := range res.ColToRow {
		if rc == -1 {
			foundUnaligned = true
		}
	}
	if !foundUnaligned {
		t.Fatalf("edgeless column cluster should be unaligned: %+v", res)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
