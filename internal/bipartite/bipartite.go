// Package bipartite extends the degree-discounted symmetrization to
// bipartite directed graphs — the extension the paper's §6 names as
// future work ("Extending our approaches to bi-partite and
// multi-partite graphs also seems to be a promising avenue").
//
// A bipartite graph (users → items, papers → venues, documents →
// terms) has an n×m biadjacency matrix B. Neither side has internal
// edges, so every cluster is of the Figure-1 kind: members share
// out-links (rows pointing to the same columns) or in-links, and the
// degree-discounted similarity applies directly:
//
//	RowSim = D_r^{-α} B D_c^{-β} Bᵀ D_r^{-α}
//	ColSim = D_c^{-β} Bᵀ D_r^{-α} B D_c^{-β}
//
// where D_r are row degrees and D_c column degrees. CoCluster clusters
// both sides and pairs each column cluster with the row cluster it is
// most strongly attached to.
package bipartite

import (
	"fmt"
	"math"

	"symcluster/internal/matrix"
	"symcluster/internal/mcl"
)

// Options configures the bipartite symmetrization and co-clustering.
type Options struct {
	// Alpha is the row-degree discount exponent. Defaults to 0.5.
	Alpha float64
	// Beta is the column-degree discount exponent. Defaults to 0.5.
	Beta float64
	// Threshold prunes similarity entries below it.
	Threshold float64
	// Inflation is the MLR-MCL inflation for both sides. Defaults to 2.
	Inflation float64
	// Seed drives clustering randomness.
	Seed int64
}

func (o *Options) fill() {
	if o.Alpha == 0 {
		o.Alpha = 0.5
	}
	if o.Beta == 0 {
		o.Beta = 0.5
	}
	if o.Inflation <= 1 {
		o.Inflation = 2
	}
}

// RowSimilarity returns the degree-discounted similarity between the
// rows of the biadjacency matrix b (n×n symmetric, diagonal dropped).
// The discount factors fold into the fused self-product kernel, so the
// scaled factor X = D_r^{-α} B D_c^{-β/2} is never materialised.
func RowSimilarity(b *matrix.CSR, opt Options) *matrix.CSR {
	opt.fill()
	rowDeg := b.RowCounts()
	colDeg := b.ColCounts()
	rs := discount(rowDeg, opt.Alpha, 1)
	cs := discount(colDeg, opt.Beta, 0.5)
	return matrix.MulXXTScaledPruned(b, b.Transpose(), rs, cs, opt.Threshold, 1).DropDiagonal()
}

// ColSimilarity returns the degree-discounted similarity between the
// columns of b (m×m symmetric, diagonal dropped). Bᵀ's own transpose
// is B again (bit-exactly), so the one explicit transpose here is the
// only copy the fused kernel needs.
func ColSimilarity(b *matrix.CSR, opt Options) *matrix.CSR {
	opt.fill()
	rowDeg := b.RowCounts()
	colDeg := b.ColCounts()
	rs := discount(colDeg, opt.Beta, 1)
	cs := discount(rowDeg, opt.Alpha, 0.5)
	return matrix.MulXXTScaledPruned(b.Transpose(), b, rs, cs, opt.Threshold, 1).DropDiagonal()
}

func discount(deg []int, exp, share float64) []float64 {
	f := make([]float64, len(deg))
	for i, d := range deg {
		if d <= 0 {
			f[i] = 1
			continue
		}
		f[i] = math.Pow(float64(d), -exp*share)
	}
	return f
}

// Result is the output of CoCluster.
type Result struct {
	// RowAssign / ColAssign map rows and columns to cluster ids.
	RowAssign, ColAssign []int
	// RowK / ColK count the clusters per side.
	RowK, ColK int
	// ColToRow pairs each column cluster with the row cluster holding
	// the largest share of its incident edge weight (-1 if a column
	// cluster has no edges).
	ColToRow []int
}

// CoCluster clusters both sides of the bipartite graph with MLR-MCL on
// the degree-discounted similarities, then aligns column clusters to
// row clusters through the biadjacency weights.
func CoCluster(b *matrix.CSR, opt Options) (*Result, error) {
	opt.fill()
	rowSim := RowSimilarity(b, opt)
	colSim := ColSimilarity(b, opt)

	rowRes, err := mcl.Cluster(rowSim, mcl.Options{Inflation: opt.Inflation, Seed: opt.Seed})
	if err != nil {
		return nil, fmt.Errorf("bipartite: row clustering: %w", err)
	}
	colRes, err := mcl.Cluster(colSim, mcl.Options{Inflation: opt.Inflation, Seed: opt.Seed})
	if err != nil {
		return nil, fmt.Errorf("bipartite: column clustering: %w", err)
	}

	// Align: for each column cluster, the row cluster with the largest
	// total edge weight into it.
	weight := make([]map[int]float64, colRes.K)
	for i := 0; i < b.Rows; i++ {
		rc := rowRes.Assign[i]
		cols, vals := b.Row(i)
		for k, c := range cols {
			cc := colRes.Assign[c]
			if weight[cc] == nil {
				weight[cc] = make(map[int]float64)
			}
			weight[cc][rc] += vals[k]
		}
	}
	colToRow := make([]int, colRes.K)
	for cc := range colToRow {
		best, bestW := -1, 0.0
		for rc, w := range weight[cc] {
			if w > bestW || (w == bestW && best != -1 && rc < best) {
				best, bestW = rc, w
			}
		}
		colToRow[cc] = best
	}

	return &Result{
		RowAssign: rowRes.Assign,
		ColAssign: colRes.Assign,
		RowK:      rowRes.K,
		ColK:      colRes.K,
		ColToRow:  colToRow,
	}, nil
}
