// Package local implements local graph partitioning via approximate
// personalised PageRank, after Andersen, Chung & Lang ("Local
// partitioning for directed graphs using PageRank", WAW 2007) — the
// one line of directed-graph clustering work the paper credits with
// scalability (§2.1). Combined with a symmetrization it extracts a
// low-conductance cluster around a seed node in time proportional to
// the cluster size, independent of the graph size.
//
// The two pieces are the standard ACL push algorithm for approximate
// PPR and a sweep cut over the degree-normalised PPR ordering.
package local

import (
	"fmt"
	"sort"

	"symcluster/internal/matrix"
)

// PPROptions configures ApproxPPR.
type PPROptions struct {
	// Alpha is the PPR teleport probability. Defaults to 0.15.
	Alpha float64
	// Epsilon is the residual tolerance: the push loop stops when every
	// node u has residual r(u) < ε·deg(u). Smaller ε explores more of
	// the graph. Defaults to 1e-4.
	Epsilon float64
}

func (o *PPROptions) fill() {
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = 0.15
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-4
	}
}

// ApproxPPR computes an ε-approximate personalised PageRank vector
// from the seed node over the weighted undirected adjacency adj, using
// the ACL push algorithm. The returned map holds only the (typically
// few) nodes with positive mass.
func ApproxPPR(adj *matrix.CSR, seed int, opt PPROptions) (map[int32]float64, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("local: adjacency %dx%d not square", adj.Rows, adj.Cols)
	}
	if seed < 0 || seed >= adj.Rows {
		return nil, fmt.Errorf("local: seed %d outside [0,%d)", seed, adj.Rows)
	}
	opt.fill()
	deg := adj.RowSums()
	if deg[seed] == 0 {
		return map[int32]float64{int32(seed): 1}, nil
	}

	p := make(map[int32]float64)
	r := map[int32]float64{int32(seed): 1}
	queue := []int32{int32(seed)}
	inQueue := map[int32]bool{int32(seed): true}

	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		ru := r[u]
		if deg[u] == 0 || ru < opt.Epsilon*deg[u] {
			continue
		}
		// Push: keep α·r(u) as settled mass, spread half the rest over
		// the neighbours, keep half as residual at u.
		p[u] += opt.Alpha * ru
		rest := (1 - opt.Alpha) * ru
		r[u] = rest / 2
		cols, vals := adj.Row(int(u))
		for k, v := range cols {
			share := rest / 2 * vals[k] / deg[u]
			r[v] += share
			if !inQueue[v] && deg[v] > 0 && r[v] >= opt.Epsilon*deg[v] {
				queue = append(queue, v)
				inQueue[v] = true
			}
		}
		if !inQueue[u] && r[u] >= opt.Epsilon*deg[u] {
			queue = append(queue, u)
			inQueue[u] = true
		}
	}
	return p, nil
}

// Cluster is the output of a sweep cut.
type Cluster struct {
	// Nodes is the extracted node set, in sweep order.
	Nodes []int32
	// Conductance is cut(S) / min(vol(S), vol(V)−vol(S)).
	Conductance float64
}

// SweepCut orders the support of the PPR vector by p(u)/deg(u) and
// returns the prefix with the smallest conductance.
func SweepCut(adj *matrix.CSR, ppr map[int32]float64) (*Cluster, error) {
	if len(ppr) == 0 {
		return nil, fmt.Errorf("local: empty PPR vector")
	}
	deg := adj.RowSums()
	var totalVol float64
	for _, d := range deg {
		totalVol += d
	}

	type ranked struct {
		node  int32
		score float64
	}
	order := make([]ranked, 0, len(ppr))
	for u, pu := range ppr {
		if deg[u] > 0 {
			order = append(order, ranked{u, pu / deg[u]})
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("local: PPR support has no edges")
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].score != order[b].score {
			return order[a].score > order[b].score
		}
		return order[a].node < order[b].node
	})

	inS := make(map[int32]bool, len(order))
	var vol, cut float64
	best := &Cluster{Conductance: 2} // conductance is ≤ 1
	var prefix []int32
	for _, rk := range order {
		u := rk.node
		cols, vals := adj.Row(int(u))
		var toS float64
		for k, v := range cols {
			if inS[v] {
				toS += vals[k]
			}
		}
		inS[u] = true
		prefix = append(prefix, u)
		vol += deg[u]
		cut += deg[u] - 2*toS
		denom := vol
		if totalVol-vol < denom {
			denom = totalVol - vol
		}
		if denom <= 0 {
			break // swept the whole graph
		}
		phi := cut / denom
		if phi < best.Conductance {
			best.Conductance = phi
			best.Nodes = append([]int32(nil), prefix...)
		}
	}
	if best.Nodes == nil {
		best.Nodes = append([]int32(nil), prefix...)
		best.Conductance = 1
	}
	return best, nil
}

// LocalCluster extracts a low-conductance cluster around seed:
// approximate PPR followed by a sweep cut.
func LocalCluster(adj *matrix.CSR, seed int, opt PPROptions) (*Cluster, error) {
	ppr, err := ApproxPPR(adj, seed, opt)
	if err != nil {
		return nil, err
	}
	return SweepCut(adj, ppr)
}
