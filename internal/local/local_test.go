package local

import (
	"math"
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

func blocks(rng *rand.Rand, k, sz int, pin, pout float64) (*matrix.CSR, []int) {
	n := k * sz
	truth := make([]int, n)
	for i := range truth {
		truth[i] = i / sz
	}
	b := matrix.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pout
			if truth[i] == truth[j] {
				p = pin
			}
			if rng.Float64() < p {
				b.Add(i, j, 1)
				b.Add(j, i, 1)
			}
		}
	}
	return b.Build(), truth
}

func TestApproxPPRMassBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	adj, _ := blocks(rng, 3, 20, 0.4, 0.02)
	ppr, err := ApproxPPR(adj, 5, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range ppr {
		if v < 0 {
			t.Fatalf("negative PPR mass %v", v)
		}
		total += v
	}
	if total > 1+1e-9 {
		t.Fatalf("total settled mass %v exceeds 1", total)
	}
	if total < 0.1 {
		t.Fatalf("total settled mass %v suspiciously low", total)
	}
	if ppr[5] <= 0 {
		t.Fatal("seed has no settled mass")
	}
}

func TestApproxPPRLocalised(t *testing.T) {
	// Most of the PPR mass from a seed stays inside the seed's block.
	rng := rand.New(rand.NewSource(2))
	adj, truth := blocks(rng, 4, 25, 0.4, 0.005)
	seed := 30 // block 1
	ppr, err := ApproxPPR(adj, seed, PPROptions{Epsilon: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	var inside, outside float64
	for u, v := range ppr {
		if truth[u] == truth[seed] {
			inside += v
		} else {
			outside += v
		}
	}
	if inside <= 4*outside {
		t.Fatalf("PPR not localised: inside %v vs outside %v", inside, outside)
	}
}

func TestApproxPPRIsolatedSeed(t *testing.T) {
	adj := matrix.Zero(5, 5)
	ppr, err := ApproxPPR(adj, 2, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ppr[2]-1) > 1e-12 || len(ppr) != 1 {
		t.Fatalf("isolated seed PPR = %v", ppr)
	}
}

func TestApproxPPRErrors(t *testing.T) {
	if _, err := ApproxPPR(matrix.Zero(2, 3), 0, PPROptions{}); err == nil {
		t.Fatal("accepted non-square")
	}
	if _, err := ApproxPPR(matrix.Zero(3, 3), 7, PPROptions{}); err == nil {
		t.Fatal("accepted out-of-range seed")
	}
}

func TestLocalClusterRecoversSeedBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	adj, truth := blocks(rng, 4, 25, 0.45, 0.004)
	res, err := LocalCluster(adj, 60, PPROptions{Epsilon: 1e-5}) // block 2
	if err != nil {
		t.Fatal(err)
	}
	if res.Conductance > 0.3 {
		t.Fatalf("conductance %v too high", res.Conductance)
	}
	inBlock := 0
	for _, u := range res.Nodes {
		if truth[u] == 2 {
			inBlock++
		}
	}
	if inBlock < 18 {
		t.Fatalf("recovered only %d of block 2 (%d nodes total)", inBlock, len(res.Nodes))
	}
	if purity := float64(inBlock) / float64(len(res.Nodes)); purity < 0.8 {
		t.Fatalf("cluster purity %v", purity)
	}
}

func TestSweepCutTwoTriangles(t *testing.T) {
	// PPR from node 0 of two bridged triangles should sweep out the
	// first triangle with conductance 1/7.
	b := matrix.NewBuilder(6, 6)
	add := func(u, v int) { b.Add(u, v, 1); b.Add(v, u, 1) }
	add(0, 1)
	add(1, 2)
	add(0, 2)
	add(3, 4)
	add(4, 5)
	add(3, 5)
	add(2, 3)
	adj := b.Build()
	res, err := LocalCluster(adj, 0, PPROptions{Epsilon: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 3 {
		t.Fatalf("swept %d nodes, want 3: %v", len(res.Nodes), res.Nodes)
	}
	if math.Abs(res.Conductance-1.0/7.0) > 1e-9 {
		t.Fatalf("conductance %v, want 1/7", res.Conductance)
	}
}

func TestSweepCutErrors(t *testing.T) {
	if _, err := SweepCut(matrix.Zero(3, 3), nil); err == nil {
		t.Fatal("accepted empty PPR")
	}
	if _, err := SweepCut(matrix.Zero(3, 3), map[int32]float64{0: 1}); err == nil {
		t.Fatal("accepted support without edges")
	}
}
