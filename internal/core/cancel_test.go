package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"symcluster/internal/graph"
)

// countingCtx cancels after a fixed number of Err polls, pinning
// cancellation to a deterministic point mid-computation.
type countingCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *countingCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestSymmetrizeCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g, err := graph.NewDirected(figure1(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{AAT, RandomWalk, Bibliometric, DegreeDiscounted} {
		if _, err := SymmetrizeCtx(ctx, g, m, Defaults()); !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", m, err)
		}
	}
}

func TestBibliometricCtxCancelledMidProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomDirected(rng, 400, 12)
	ctx := &countingCtx{Context: context.Background(), after: 1}
	u, err := SymmetrizeBibliometricCtx(ctx, a, Defaults())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if u != nil {
		t.Fatalf("u = %v, want nil on cancellation", u)
	}
}

func TestRandomWalkCtxCancelledMidPowerIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomDirected(rng, 200, 6)
	ctx := &countingCtx{Context: context.Background(), after: 2}
	u, err := SymmetrizeRandomWalkCtx(ctx, a, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if u != nil {
		t.Fatal("partial result returned on cancellation")
	}
}
