package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"symcluster/internal/matrix"
)

// digraphGen generates random directed adjacency matrices with
// non-negative unit weights for testing/quick.
type digraphGen struct {
	A *matrix.CSR
}

// Generate implements quick.Generator.
func (digraphGen) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 2 + rng.Intn(14)
	b := matrix.NewBuilder(n, n)
	edges := rng.Intn(3 * n)
	for e := 0; e < edges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.Add(u, v, 1)
		}
	}
	m := b.Build()
	// Deduplicate weights back to 1 (Builder sums duplicates).
	for i := range m.Val {
		m.Val[i] = 1
	}
	return reflect.ValueOf(digraphGen{A: m})
}

var quickCfg = &quick.Config{MaxCount: 150}

// symmetrizeQuick runs one method's kernel with the paper defaults
// (teleport 0.05, diagonal dropped), dispatching through the same
// kernel map production code uses.
func symmetrizeQuick(m Method, a *matrix.CSR) (*matrix.CSR, error) {
	return kernels[m](context.Background(), a, Defaults())
}

func TestQuickAllMethodsSymmetric(t *testing.T) {
	f := func(g digraphGen) bool {
		for _, m := range Methods {
			u, err := symmetrizeQuick(m, g.A)
			if err != nil || !u.IsSymmetric(1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAllMethodsNonNegative(t *testing.T) {
	f := func(g digraphGen) bool {
		for _, m := range Methods {
			u, err := symmetrizeQuick(m, g.A)
			if err != nil {
				return false
			}
			for _, v := range u.Val {
				if v < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDegreeDiscountedDominatedByBibliometric(t *testing.T) {
	// With α, β ≥ 0 every discount factor is ≤ 1, so each
	// degree-discounted entry is bounded by the bibliometric entry.
	f := func(g digraphGen) bool {
		bib := SymmetrizeBibliometric(g.A, Options{DropDiagonal: true})
		dd, err := SymmetrizeDegreeDiscounted(g.A, Defaults())
		if err != nil {
			return false
		}
		for i := 0; i < dd.Rows; i++ {
			cols, vals := dd.Row(i)
			for k, c := range cols {
				if vals[k] > bib.At(i, int(c))+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAATStructureIsUnionOfDirections(t *testing.T) {
	f := func(g digraphGen) bool {
		u := SymmetrizeAAT(g.A)
		for i := 0; i < u.Rows; i++ {
			cols, _ := u.Row(i)
			for _, c := range cols {
				j := int(c)
				if g.A.At(i, j) == 0 && g.A.At(j, i) == 0 {
					return false // edge appeared from nowhere
				}
			}
		}
		// And every original edge survives.
		for i := 0; i < g.A.Rows; i++ {
			cols, _ := g.A.Row(i)
			for _, c := range cols {
				if u.At(i, int(c)) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomWalkMassConservation(t *testing.T) {
	// Total weight of (ΠP + PᵀΠ)/2 equals Σπ over non-dangling rows
	// ≤ 1, and equals 1 when there are no dangling nodes.
	f := func(g digraphGen) bool {
		u, err := SymmetrizeRandomWalk(g.A, 0.05)
		if err != nil {
			return false
		}
		var total float64
		for _, v := range u.Val {
			total += v
		}
		return total <= 1+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickThresholdMonotone(t *testing.T) {
	// Raising the prune threshold never adds entries.
	f := func(g digraphGen, lowRaw, highRaw uint8) bool {
		lo := float64(lowRaw) / 255
		hi := lo + float64(highRaw)/255
		optLo := Defaults()
		optLo.Threshold = lo
		optHi := Defaults()
		optHi.Threshold = hi
		uLo, err1 := SymmetrizeDegreeDiscounted(g.A, optLo)
		uHi, err2 := SymmetrizeDegreeDiscounted(g.A, optHi)
		if err1 != nil || err2 != nil {
			return false
		}
		return uHi.NNZ() <= uLo.NNZ()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSelfLoopOptionPreservesEdges(t *testing.T) {
	// §3.3: with A := A + I, the symmetrized graph keeps every original
	// edge for both product methods.
	f := func(g digraphGen) bool {
		for _, m := range []Method{Bibliometric, DegreeDiscounted} {
			opt := Defaults()
			opt.AddSelfLoops = true
			var u *matrix.CSR
			var err error
			if m == Bibliometric {
				u = SymmetrizeBibliometric(g.A, Options{AddSelfLoops: true, DropDiagonal: true})
			} else {
				u, err = SymmetrizeDegreeDiscounted(g.A, opt)
			}
			if err != nil {
				return false
			}
			for i := 0; i < g.A.Rows; i++ {
				cols, _ := g.A.Row(i)
				for _, c := range cols {
					if u.At(i, int(c)) <= 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDiscountVectorRanges(t *testing.T) {
	f := func(degsRaw []uint16, expRaw uint8) bool {
		if len(degsRaw) == 0 {
			return true
		}
		degs := make([]int, len(degsRaw))
		for i, d := range degsRaw {
			degs[i] = int(d % 1000)
		}
		exp := float64(expRaw) / 128 // 0..2
		for _, kind := range []DiscountKind{PowerDiscount, LogDiscount} {
			v := discountVector(degs, kind, exp, 1)
			for i, f := range v {
				if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
					return false
				}
				if degs[i] <= 1 && kind == LogDiscount && f != 1 {
					// log discount of degree 1 is 1/(1+ln 1) = 1;
					// degree 0 maps to 1.
					return false
				}
				if f > 1+1e-12 {
					return false // discounts never amplify
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
