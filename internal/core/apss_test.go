package core

import (
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

func TestAPSSBackendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		a := randomDirected(rng, 30, 4)

		for _, dropDiag := range []bool{true, false} {
			spgemm := Options{Alpha: 0.5, Beta: 0.5, Threshold: 0.1, DropDiagonal: dropDiag}
			apss := spgemm
			apss.UseAPSS = true

			u1, err := SymmetrizeDegreeDiscounted(a, spgemm)
			if err != nil {
				t.Fatal(err)
			}
			u2, err := SymmetrizeDegreeDiscounted(a, apss)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(u1, u2, 1e-9) {
				t.Fatalf("trial %d dropDiag=%v: APSS degree-discounted differs from SpGEMM", trial, dropDiag)
			}

			b1 := SymmetrizeBibliometric(a, Options{Threshold: 2, DropDiagonal: dropDiag})
			b2 := SymmetrizeBibliometric(a, Options{Threshold: 2, DropDiagonal: dropDiag, UseAPSS: true})
			if !matrix.Equal(b1, b2, 1e-9) {
				t.Fatalf("trial %d dropDiag=%v: APSS bibliometric differs from SpGEMM", trial, dropDiag)
			}
		}
	}
}

func TestParallelWorkersEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	a := randomDirected(rng, 200, 5)
	seq := Defaults()
	seq.Threshold = 0.05
	par := seq
	par.Workers = 4
	u1, err := SymmetrizeDegreeDiscounted(a, seq)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := SymmetrizeDegreeDiscounted(a, par)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(u1, u2, 0) {
		t.Fatal("parallel degree-discounted differs from sequential")
	}
	b1 := SymmetrizeBibliometric(a, Options{Threshold: 2, DropDiagonal: true})
	b2 := SymmetrizeBibliometric(a, Options{Threshold: 2, DropDiagonal: true, Workers: 4})
	if !matrix.Equal(b1, b2, 0) {
		t.Fatal("parallel bibliometric differs from sequential")
	}
}

func TestAPSSZeroThresholdFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a := randomDirected(rng, 20, 3)
	opt := Defaults()
	opt.UseAPSS = true // Threshold stays 0 → SpGEMM fallback
	u1, err := SymmetrizeDegreeDiscounted(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.UseAPSS = false
	u2, err := SymmetrizeDegreeDiscounted(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(u1, u2, 1e-12) {
		t.Fatal("APSS with zero threshold should fall back to SpGEMM result")
	}
}
