package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"symcluster/internal/csr"
	"symcluster/internal/matrix"
)

// Out-of-core symmetrization: the same kernels, but every large
// operand — the input adjacency, its transpose, and the scaled factor
// matrices — lives in memory-mapped binary CSR files instead of the
// heap. The products stream rows from file-backed pages the OS evicts
// under pressure, so peak resident memory is bounded by the (pruned)
// products themselves rather than by the input size. Results are
// byte-identical to the in-core path: every file operation replicates
// its in-memory counterpart's value arithmetic bit-for-bit, and the
// product kernels are the same functions consuming mapped views.

// ErrResidentBudget marks an out-of-core run aborted because its
// in-memory intermediates (the product matrices, which cannot live on
// disk) exceeded OutOfCoreConfig.MaxResidentBytes.
var ErrResidentBudget = errors.New("core: resident memory budget exceeded")

// OutOfCoreConfig enables the out-of-core symmetrization path when
// installed in the context with WithOutOfCore.
type OutOfCoreConfig struct {
	// InputPath is the graph's binary CSR file. When empty, the in-memory
	// adjacency is first written to scratch (correct, but the input was
	// evidently already resident).
	InputPath string
	// ScratchDir hosts intermediate files and spill runs. Empty means
	// the OS temp dir.
	ScratchDir string
	// MaxResidentBytes bounds the heap-resident intermediates (product
	// matrices and degree vectors). 0 means unlimited.
	MaxResidentBytes int64
	// SpillMemBytes is the external-sort buffer for file transposes.
	// 0 means 64 MiB.
	SpillMemBytes int64
}

type oocKey struct{}

// WithOutOfCore returns a context that routes SymmetrizeCtx through
// the out-of-core path.
func WithOutOfCore(ctx context.Context, cfg OutOfCoreConfig) context.Context {
	return context.WithValue(ctx, oocKey{}, &cfg)
}

// OutOfCoreFrom returns the installed out-of-core config, or nil.
func OutOfCoreFrom(ctx context.Context) *OutOfCoreConfig {
	cfg, _ := ctx.Value(oocKey{}).(*OutOfCoreConfig)
	return cfg
}

// oocState owns an out-of-core run's scratch directory and mapped
// files, and meters the heap-resident intermediates against the
// configured budget.
type oocState struct {
	cfg      *OutOfCoreConfig
	scratch  string
	a        *matrix.CSR // mapped view of the (possibly augmented) input
	maps     []*csr.Mapped
	resident int64
}

func newOOCState(ctx context.Context, a *matrix.CSR, cfg *OutOfCoreConfig) (*oocState, error) {
	scratch, err := os.MkdirTemp(cfg.ScratchDir, "symcluster-ooc-*")
	if err != nil {
		return nil, fmt.Errorf("core: out-of-core scratch: %w", err)
	}
	s := &oocState{cfg: cfg, scratch: scratch}
	input := cfg.InputPath
	if input == "" {
		input = s.path("input.csr")
		if err := csr.WriteMatrix(ctx, input, a); err != nil {
			s.close()
			return nil, err
		}
	}
	view, err := s.open(ctx, input)
	if err != nil {
		s.close()
		return nil, err
	}
	s.a = view
	return s, nil
}

func (s *oocState) path(name string) string { return filepath.Join(s.scratch, name) }

// open maps a binary CSR file and tracks the handle for close.
func (s *oocState) open(ctx context.Context, path string) (*matrix.CSR, error) {
	mp, err := csr.Open(ctx, path)
	if err != nil {
		return nil, err
	}
	s.maps = append(s.maps, mp)
	return mp.View(), nil
}

// close unmaps everything and removes the scratch directory. The
// returned matrices of the kernels never alias mapped memory (products
// are fresh heap allocations), so closing after the kernel is safe.
func (s *oocState) close() {
	for _, mp := range s.maps {
		mp.Close()
	}
	s.maps = nil
	os.RemoveAll(s.scratch)
}

// charge meters bytes of heap-resident intermediates.
func (s *oocState) charge(bytes int64) error {
	s.resident += bytes
	if s.cfg.MaxResidentBytes > 0 && s.resident > s.cfg.MaxResidentBytes {
		return fmt.Errorf("%w: %d bytes of in-memory intermediates over the %d-byte budget; raise the budget or the prune threshold", ErrResidentBudget, s.resident, s.cfg.MaxResidentBytes)
	}
	return nil
}

func (s *oocState) spillMem() int64 {
	if s.cfg.SpillMemBytes > 0 {
		return s.cfg.SpillMemBytes
	}
	return 64 << 20
}

// transpose writes srcᵀ to a scratch file and maps it.
func (s *oocState) transpose(ctx context.Context, src *matrix.CSR, name string) (*matrix.CSR, error) {
	dst := s.path(name)
	if err := csr.TransposeToFile(ctx, src, s.scratch, dst, s.spillMem()); err != nil {
		return nil, err
	}
	return s.open(ctx, dst)
}

// matBytes is the heap footprint of an in-memory CSR.
func matBytes(m *matrix.CSR) int64 {
	return 8*int64(m.Rows+1) + 12*int64(m.NNZ())
}

// symmetrizeOutOfCore dispatches to the method's out-of-core kernel.
// The input view comes from cfg.InputPath when set (the adjacency in g
// is then untouched and may itself be a mapped view), else from a
// scratch copy of g's adjacency.
func symmetrizeOutOfCore(ctx context.Context, a *matrix.CSR, method Method, opt Options, cfg *OutOfCoreConfig) (*matrix.CSR, error) {
	kernel, ok := oocKernels[method]
	if !ok {
		return nil, fmt.Errorf("core: symmetrization method %v cannot run out-of-core", method)
	}
	s, err := newOOCState(ctx, a, cfg)
	if err != nil {
		return nil, err
	}
	defer s.close()
	return kernel(ctx, s, opt)
}

// oocKernels maps each method to its out-of-core kernel, mirroring the
// in-core kernels map (and, like it, staying out of switch statements
// so the pipeline registry owns the catalog).
var oocKernels = map[Method]func(ctx context.Context, s *oocState, opt Options) (*matrix.CSR, error){
	AAT:              oocAAT,
	RandomWalk:       oocRandomWalk,
	Bibliometric:     oocBibliometric,
	DegreeDiscounted: oocDegreeDiscounted,
}

// oocSelfProduct computes x·xᵀ given xᵀ already on file, mirroring
// selfProductCtx's backend selection so results stay bit-identical.
// The APSS backend builds its own in-memory index, so it gains nothing
// from the transpose file and delegates to the in-core path over the
// mapped view.
func oocSelfProduct(ctx context.Context, x, xt *matrix.CSR, opt Options) (*matrix.CSR, error) {
	if !opt.UseAPSS || opt.Threshold <= 0 {
		if opt.Workers > 1 {
			return matrix.MulPrunedParallelCtx(ctx, x, xt, opt.Threshold, opt.Workers)
		}
		return matrix.MulPrunedCtx(ctx, x, xt, opt.Threshold)
	}
	return selfProductCtx(ctx, x, opt)
}

// augmented returns the input view, replaced by an A+I scratch file
// when opt.AddSelfLoops is set.
func (s *oocState) augmented(ctx context.Context, opt Options) (*matrix.CSR, error) {
	if !opt.AddSelfLoops {
		return s.a, nil
	}
	dst := s.path("aug.csr")
	if err := csr.AugmentIdentityToFile(ctx, s.a, dst); err != nil {
		return nil, err
	}
	return s.open(ctx, dst)
}

// oocAAT computes A + Aᵀ with the transpose streamed through a file.
func oocAAT(ctx context.Context, s *oocState, _ Options) (*matrix.CSR, error) {
	at, err := s.transpose(ctx, s.a, "at.csr")
	if err != nil {
		return nil, err
	}
	u := matrix.Add(s.a, at, 1, 1)
	if err := s.charge(matBytes(u)); err != nil {
		return nil, err
	}
	return u, nil
}

// oocRandomWalk runs the in-core random-walk kernel over the mapped
// view: its intermediates (transition matrix, ΠP and the result) are
// all sized like the input, so they are metered, but the algorithm has
// no product blow-up to keep on disk.
func oocRandomWalk(ctx context.Context, s *oocState, opt Options) (*matrix.CSR, error) {
	if err := s.charge(3 * matBytes(s.a)); err != nil {
		return nil, err
	}
	return SymmetrizeRandomWalkCtx(ctx, s.a, opt.Teleport)
}

// oocBibliometric computes AAᵀ + AᵀA with A and Aᵀ mapped. The
// co-citation term AᵀA is the self-product of Aᵀ, whose transpose is A
// again — bit-identically, since transposition copies values exactly —
// so one transpose file serves both products.
func oocBibliometric(ctx context.Context, s *oocState, opt Options) (*matrix.CSR, error) {
	a, err := s.augmented(ctx, opt)
	if err != nil {
		return nil, err
	}
	at, err := s.transpose(ctx, a, "at.csr")
	if err != nil {
		return nil, err
	}
	coupling, err := oocSelfProduct(ctx, a, at, opt) // AAᵀ
	if err != nil {
		return nil, err
	}
	if err := s.charge(matBytes(coupling)); err != nil {
		return nil, err
	}
	cocitation, err := oocSelfProduct(ctx, at, a, opt) // AᵀA
	if err != nil {
		return nil, err
	}
	if err := s.charge(matBytes(cocitation)); err != nil {
		return nil, err
	}
	u := matrix.Add(coupling, cocitation, 1, 1)
	if opt.DropDiagonal {
		u = u.DropDiagonal()
	}
	return u, nil
}

// oocDegreeDiscounted computes the degree-discounted similarity with
// every scaled factor matrix on file: X = D_o^{-α} A D_i^{-β/2} and
// Y = D_i^{-β} Aᵀ D_o^{-α/2} are produced by streaming scans of the
// mapped input (and its file transpose) and are themselves mapped for
// the two self-products.
func oocDegreeDiscounted(ctx context.Context, s *oocState, opt Options) (*matrix.CSR, error) {
	if opt.Alpha < 0 || opt.Beta < 0 {
		return nil, fmt.Errorf("core: negative discount exponents α=%v β=%v", opt.Alpha, opt.Beta)
	}
	a, err := s.augmented(ctx, opt)
	if err != nil {
		return nil, err
	}
	outDeg := a.RowCounts()
	inDeg := a.ColCounts()
	if err := s.charge(16 * int64(a.Rows)); err != nil { // two []int
		return nil, err
	}

	alphaFull := discountVector(outDeg, opt.AlphaKind, opt.Alpha, 1)
	alphaHalf := discountVector(outDeg, opt.AlphaKind, opt.Alpha, 0.5)
	betaFull := discountVector(inDeg, opt.BetaKind, opt.Beta, 1)
	betaHalf := discountVector(inDeg, opt.BetaKind, opt.Beta, 0.5)

	// X = D_o^{-α} A D_i^{-β/2}, its transpose, and B_d = X·Xᵀ.
	xPath := s.path("x.csr")
	if err := csr.ScaleToFile(ctx, a, alphaFull, betaHalf, xPath); err != nil {
		return nil, err
	}
	x, err := s.open(ctx, xPath)
	if err != nil {
		return nil, err
	}
	xt, err := s.transpose(ctx, x, "xt.csr")
	if err != nil {
		return nil, err
	}
	bd, err := oocSelfProduct(ctx, x, xt, opt)
	if err != nil {
		return nil, err
	}
	if err := s.charge(matBytes(bd)); err != nil {
		return nil, err
	}

	// Y = D_i^{-β} Aᵀ D_o^{-α/2} via the file transpose of A, and
	// C_d = Y·Yᵀ.
	at, err := s.transpose(ctx, a, "at.csr")
	if err != nil {
		return nil, err
	}
	yPath := s.path("y.csr")
	if err := csr.ScaleToFile(ctx, at, betaFull, alphaHalf, yPath); err != nil {
		return nil, err
	}
	y, err := s.open(ctx, yPath)
	if err != nil {
		return nil, err
	}
	yt, err := s.transpose(ctx, y, "yt.csr")
	if err != nil {
		return nil, err
	}
	cd, err := oocSelfProduct(ctx, y, yt, opt)
	if err != nil {
		return nil, err
	}
	if err := s.charge(matBytes(cd)); err != nil {
		return nil, err
	}

	u := matrix.Add(bd, cd, 1, 1)
	if opt.DropDiagonal {
		u = u.DropDiagonal()
	}
	return u, nil
}
