package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"symcluster/internal/csr"
	"symcluster/internal/matrix"
	"symcluster/internal/obs"
)

// Out-of-core symmetrization: the same plans as the in-core path
// (plan.go), lowered by the shared executor (executor.go) with the
// large operands — the input adjacency and its transpose — living in
// memory-mapped binary CSR files instead of the heap. The fused
// product kernels fold the diagonal scalings in, so no scaled factor
// file is ever written; they stream rows from file-backed pages the OS
// evicts under pressure, and peak resident memory is bounded by the
// (pruned) products themselves rather than by the input size. Results
// are byte-identical to the in-core path: both are lowerings of one
// plan through the same kernels, and every file operation replicates
// its in-memory counterpart's value arithmetic bit-for-bit.

// ErrResidentBudget marks an out-of-core run aborted because its
// in-memory intermediates (the product matrices, which cannot live on
// disk) exceeded OutOfCoreConfig.MaxResidentBytes.
var ErrResidentBudget = errors.New("core: resident memory budget exceeded")

// OutOfCoreConfig enables the out-of-core symmetrization path when
// installed in the context with WithOutOfCore.
type OutOfCoreConfig struct {
	// InputPath is the graph's binary CSR file. When empty, the in-memory
	// adjacency is first written to scratch (correct, but the input was
	// evidently already resident).
	InputPath string
	// ScratchDir hosts intermediate files and spill runs. Empty means
	// the OS temp dir.
	ScratchDir string
	// MaxResidentBytes bounds the heap-resident intermediates (product
	// matrices and degree vectors). 0 means unlimited.
	MaxResidentBytes int64
	// SpillMemBytes is the external-sort buffer for file transposes.
	// 0 means 64 MiB.
	SpillMemBytes int64
}

type oocKey struct{}

// WithOutOfCore returns a context that routes SymmetrizeCtx through
// the out-of-core path.
func WithOutOfCore(ctx context.Context, cfg OutOfCoreConfig) context.Context {
	return context.WithValue(ctx, oocKey{}, &cfg)
}

// OutOfCoreFrom returns the installed out-of-core config, or nil.
func OutOfCoreFrom(ctx context.Context) *OutOfCoreConfig {
	cfg, _ := ctx.Value(oocKey{}).(*OutOfCoreConfig)
	return cfg
}

// oocState owns an out-of-core run's scratch directory and mapped
// files, and meters the heap-resident intermediates against the
// configured budget.
type oocState struct {
	cfg      *OutOfCoreConfig
	scratch  string
	a        *matrix.CSR // mapped view of the (possibly augmented) input
	maps     []*csr.Mapped
	resident int64
	js       *obs.JobStats // per-job accounting from the run's context (may be nil)
}

func newOOCState(ctx context.Context, a *matrix.CSR, cfg *OutOfCoreConfig) (*oocState, error) {
	scratch, err := os.MkdirTemp(cfg.ScratchDir, "symcluster-ooc-*")
	if err != nil {
		return nil, fmt.Errorf("core: out-of-core scratch: %w", err)
	}
	s := &oocState{cfg: cfg, scratch: scratch, js: obs.JobStatsFrom(ctx)}
	input := cfg.InputPath
	if input == "" {
		input = s.path("input.csr")
		if err := csr.WriteMatrix(ctx, input, a); err != nil {
			s.close()
			return nil, err
		}
	}
	view, err := s.open(ctx, input)
	if err != nil {
		s.close()
		return nil, err
	}
	s.a = view
	return s, nil
}

func (s *oocState) path(name string) string { return filepath.Join(s.scratch, name) }

// open maps a binary CSR file and tracks the handle for close.
func (s *oocState) open(ctx context.Context, path string) (*matrix.CSR, error) {
	mp, err := csr.Open(ctx, path)
	if err != nil {
		return nil, err
	}
	s.maps = append(s.maps, mp)
	return mp.View(), nil
}

// close unmaps everything and removes the scratch directory. The
// returned matrices of the kernels never alias mapped memory (products
// are fresh heap allocations), so closing after the kernel is safe.
func (s *oocState) close() {
	for _, mp := range s.maps {
		mp.Close()
	}
	s.maps = nil
	os.RemoveAll(s.scratch)
}

// charge meters bytes of heap-resident intermediates, recording the
// high-water mark into the job's resource accounting.
func (s *oocState) charge(bytes int64) error {
	s.resident += bytes
	s.js.ObserveResident(s.resident)
	if s.cfg.MaxResidentBytes > 0 && s.resident > s.cfg.MaxResidentBytes {
		return fmt.Errorf("%w: %d bytes of in-memory intermediates over the %d-byte budget; raise the budget or the prune threshold", ErrResidentBudget, s.resident, s.cfg.MaxResidentBytes)
	}
	return nil
}

func (s *oocState) spillMem() int64 {
	if s.cfg.SpillMemBytes > 0 {
		return s.cfg.SpillMemBytes
	}
	return 64 << 20
}

// transpose writes srcᵀ to a scratch file and maps it.
func (s *oocState) transpose(ctx context.Context, src *matrix.CSR, name string) (*matrix.CSR, error) {
	dst := s.path(name)
	if err := csr.TransposeToFile(ctx, src, s.scratch, dst, s.spillMem()); err != nil {
		return nil, err
	}
	return s.open(ctx, dst)
}

// matBytes is the heap footprint of an in-memory CSR.
func matBytes(m *matrix.CSR) int64 {
	return 8*int64(m.Rows+1) + 12*int64(m.NNZ())
}

// symmetrizeOutOfCore dispatches to the method's out-of-core kernel.
// The input view comes from cfg.InputPath when set (the adjacency in g
// is then untouched and may itself be a mapped view), else from a
// scratch copy of g's adjacency.
func symmetrizeOutOfCore(ctx context.Context, a *matrix.CSR, method Method, opt Options, cfg *OutOfCoreConfig) (*matrix.CSR, error) {
	kernel, ok := oocKernels[method]
	if !ok {
		return nil, fmt.Errorf("core: symmetrization method %v cannot run out-of-core", method)
	}
	s, err := newOOCState(ctx, a, cfg)
	if err != nil {
		return nil, err
	}
	defer s.close()
	return kernel(ctx, s, opt)
}

// oocKernels maps each method to its out-of-core kernel, mirroring the
// in-core kernels map (and, like it, staying out of switch statements
// so the pipeline registry owns the catalog). The product-shaped
// methods reuse the in-core plans verbatim — the executor's s != nil
// lowering swaps heap transposes for mmap'd files; RandomWalk keeps a
// bespoke kernel, like in-core.
var oocKernels = map[Method]func(ctx context.Context, s *oocState, opt Options) (*matrix.CSR, error){
	AAT: func(ctx context.Context, s *oocState, opt Options) (*matrix.CSR, error) {
		return runPlan(ctx, s.a, aatPlan(), opt, s)
	},
	RandomWalk: oocRandomWalk,
	Bibliometric: func(ctx context.Context, s *oocState, opt Options) (*matrix.CSR, error) {
		return runPlan(ctx, s.a, bibliometricPlan(opt), opt, s)
	},
	DegreeDiscounted: func(ctx context.Context, s *oocState, opt Options) (*matrix.CSR, error) {
		plan, err := degreeDiscountedPlan(opt)
		if err != nil {
			return nil, err
		}
		return runPlan(ctx, s.a, plan, opt, s)
	},
}

// augmented returns the input view, replaced by an A+I scratch file
// when opt.AddSelfLoops is set.
func (s *oocState) augmented(ctx context.Context, opt Options) (*matrix.CSR, error) {
	if !opt.AddSelfLoops {
		return s.a, nil
	}
	dst := s.path("aug.csr")
	if err := csr.AugmentIdentityToFile(ctx, s.a, dst); err != nil {
		return nil, err
	}
	return s.open(ctx, dst)
}

// oocRandomWalk runs the in-core random-walk kernel over the mapped
// view: its intermediates (transition matrix, ΠP and the result) are
// all sized like the input, so they are metered, but the algorithm has
// no product blow-up to keep on disk.
func oocRandomWalk(ctx context.Context, s *oocState, opt Options) (*matrix.CSR, error) {
	if err := s.charge(3 * matBytes(s.a)); err != nil {
		return nil, err
	}
	return SymmetrizeRandomWalkCtx(ctx, s.a, opt.Teleport)
}
