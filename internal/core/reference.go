package core

import (
	"context"
	"fmt"

	"symcluster/internal/matrix"
	"symcluster/internal/walk"
)

// ReferenceSymmetrize is the pre-fusion materialized dataflow, kept as
// the executable specification of what the fused execution layer must
// reproduce bit-for-bit: every scaled factor is built as a full clone
// (ScaleRows then ScaleCols), every transpose is materialised, the
// products run through the plain pruned-SpGEMM kernels, and mirrors go
// through matrix.Add against an explicit transpose. The property tests
// in fused_quick_test.go hold SymmetrizeCtx bit-identical to this
// function across methods, thresholds, worker counts, and the
// out-of-core path, and cmd/symbench times it as the fused-vs-baseline
// denominator recorded in BENCH_PR8.json.
//
// The APSS backend is not modelled here (UseAPSS is ignored): APSS is
// an alternative candidate-pruning strategy, not an alternative
// dataflow, and its equivalence is covered by apss_test.go.
func ReferenceSymmetrize(ctx context.Context, a *matrix.CSR, method Method, opt Options) (*matrix.CSR, error) {
	switch {
	case method == AAT:
		return matrix.Add(a, a.Transpose(), 1, 1), nil
	case method == RandomWalk:
		teleport := opt.Teleport
		if teleport == 0 {
			teleport = walk.DefaultTeleport
		}
		p := walk.TransitionMatrix(a)
		pi, err := walk.StationaryDistributionCtx(ctx, p, walk.Options{Teleport: teleport})
		if err != nil {
			return nil, fmt.Errorf("core: random-walk symmetrization: %w", err)
		}
		piP := p.ScaleRows(pi)
		return matrix.Add(piP, piP.Transpose(), 0.5, 0.5), nil
	case method == Bibliometric:
		if opt.AddSelfLoops {
			a = a.AddIdentity()
		}
		at := a.Transpose()
		coupling, err := referenceSelfProduct(ctx, a, opt)
		if err != nil {
			return nil, err
		}
		cocitation, err := referenceSelfProduct(ctx, at, opt)
		if err != nil {
			return nil, err
		}
		u := matrix.Add(coupling, cocitation, 1, 1)
		if opt.DropDiagonal {
			u = u.DropDiagonal()
		}
		return u, nil
	case method == DegreeDiscounted:
		if opt.Alpha < 0 || opt.Beta < 0 {
			return nil, fmt.Errorf("core: negative discount exponents α=%v β=%v", opt.Alpha, opt.Beta)
		}
		if opt.AddSelfLoops {
			a = a.AddIdentity()
		}
		outDeg := a.RowCounts()
		inDeg := a.ColCounts()
		alphaFull := discountVector(outDeg, opt.AlphaKind, opt.Alpha, 1)
		alphaHalf := discountVector(outDeg, opt.AlphaKind, opt.Alpha, 0.5)
		betaFull := discountVector(inDeg, opt.BetaKind, opt.Beta, 1)
		betaHalf := discountVector(inDeg, opt.BetaKind, opt.Beta, 0.5)

		x := a.ScaleRows(alphaFull).ScaleCols(betaHalf) // D_o^{-α} A D_i^{-β/2}
		bd, err := referenceSelfProduct(ctx, x, opt)
		if err != nil {
			return nil, err
		}
		y := a.Transpose().ScaleRows(betaFull).ScaleCols(alphaHalf) // D_i^{-β} Aᵀ D_o^{-α/2}
		cd, err := referenceSelfProduct(ctx, y, opt)
		if err != nil {
			return nil, err
		}
		u := matrix.Add(bd, cd, 1, 1)
		if opt.DropDiagonal {
			u = u.DropDiagonal()
		}
		return u, nil
	}
	return nil, fmt.Errorf("core: unknown symmetrization method %v", method)
}

// referenceSelfProduct is the pre-fusion x·xᵀ: materialise the
// transpose, run the plain pruned SpGEMM, parallel over static row
// blocks when opt.Workers > 1.
func referenceSelfProduct(ctx context.Context, x *matrix.CSR, opt Options) (*matrix.CSR, error) {
	if opt.Workers > 1 {
		return matrix.MulPrunedParallelCtx(ctx, x, x.Transpose(), opt.Threshold, opt.Workers)
	}
	return matrix.MulPrunedCtx(ctx, x, x.Transpose(), opt.Threshold)
}
