package core

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"runtime"
	"testing"

	"symcluster/internal/csr"
	"symcluster/internal/graph"
	"symcluster/internal/matrix"
)

// oocTestGraph builds a deterministic directed graph with hubs,
// duplicate-free integer-ish weights and some reciprocal edges.
func oocTestGraph(t *testing.T, n, perNode int, seed uint64) *graph.Directed {
	t.Helper()
	b := matrix.NewBuilder(n, n)
	x := seed
	next := func(m int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return int((x >> 33) % uint64(m))
	}
	for i := 0; i < n; i++ {
		for k := 0; k < perNode; k++ {
			j := next(n)
			if j == i {
				continue
			}
			b.Add(i, j, float64(next(5)+1))
		}
		// Hub: everyone occasionally points at node 0.
		if next(3) == 0 {
			b.Add(i, 0, 1)
		}
	}
	g, err := graph.NewDirected(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func bitIdentical(t *testing.T, want, got *matrix.CSR) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols || want.NNZ() != got.NNZ() {
		t.Fatalf("shape/nnz mismatch: got %dx%d/%d, want %dx%d/%d",
			got.Rows, got.Cols, got.NNZ(), want.Rows, want.Cols, want.NNZ())
	}
	for i := range want.RowPtr {
		if want.RowPtr[i] != got.RowPtr[i] {
			t.Fatalf("RowPtr[%d] differs", i)
		}
	}
	for k := range want.ColIdx {
		if want.ColIdx[k] != got.ColIdx[k] {
			t.Fatalf("ColIdx[%d] differs", k)
		}
		if math.Float64bits(want.Val[k]) != math.Float64bits(got.Val[k]) {
			t.Fatalf("Val[%d]: %v vs %v — not bit-identical", k, want.Val[k], got.Val[k])
		}
	}
}

// TestOutOfCoreBitIdentity is the core contract: for every method and
// option mix, the out-of-core path produces byte-identical output to
// the in-core path.
func TestOutOfCoreBitIdentity(t *testing.T) {
	g := oocTestGraph(t, 300, 6, 99)
	for _, tc := range []struct {
		name   string
		method Method
		opt    Options
	}{
		{"aat", AAT, Defaults()},
		{"rw", RandomWalk, Defaults()},
		{"bib", Bibliometric, Defaults()},
		{"bib-selfloops-thr", Bibliometric, func() Options {
			o := Defaults()
			o.AddSelfLoops = true
			o.Threshold = 0.5
			return o
		}()},
		{"bib-keep-diag", Bibliometric, func() Options {
			o := Defaults()
			o.DropDiagonal = false
			return o
		}()},
		{"dd", DegreeDiscounted, Defaults()},
		{"dd-thr", DegreeDiscounted, func() Options {
			o := Defaults()
			o.Threshold = 0.01
			return o
		}()},
		{"dd-log", DegreeDiscounted, func() Options {
			o := Defaults()
			o.AlphaKind, o.BetaKind = LogDiscount, LogDiscount
			return o
		}()},
		{"dd-selfloops", DegreeDiscounted, func() Options {
			o := Defaults()
			o.AddSelfLoops = true
			return o
		}()},
		{"dd-workers", DegreeDiscounted, func() Options {
			o := Defaults()
			o.Workers = 4
			return o
		}()},
		{"dd-apss", DegreeDiscounted, func() Options {
			o := Defaults()
			o.Threshold = 0.01
			o.UseAPSS = true
			return o
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := SymmetrizeCtx(context.Background(), g, tc.method, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			ctx := WithOutOfCore(context.Background(), OutOfCoreConfig{ScratchDir: t.TempDir()})
			got, err := SymmetrizeCtx(ctx, g, tc.method, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			bitIdentical(t, want.Adj, got.Adj)
		})
	}
}

// TestOutOfCoreFromMappedFile runs the path a server job takes: the
// graph already lives in a binary CSR file and InputPath points at it,
// so no in-memory copy is ever written to scratch.
func TestOutOfCoreFromMappedFile(t *testing.T) {
	g := oocTestGraph(t, 200, 5, 7)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csr")
	if err := csr.WriteMatrix(context.Background(), path, g.Adj); err != nil {
		t.Fatal(err)
	}
	mp, err := csr.Open(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	mg, err := graph.NewDirected(mp.View(), nil)
	if err != nil {
		t.Fatal(err)
	}

	opt := Defaults()
	opt.Threshold = 0.01
	want, err := SymmetrizeCtx(context.Background(), g, DegreeDiscounted, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithOutOfCore(context.Background(), OutOfCoreConfig{InputPath: path, ScratchDir: dir})
	got, err := SymmetrizeCtx(ctx, mg, DegreeDiscounted, opt)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, want.Adj, got.Adj)
}

// TestOutOfCoreResidentBudget: a budget too small for the product
// matrices fails with ErrResidentBudget rather than OOMing.
func TestOutOfCoreResidentBudget(t *testing.T) {
	g := oocTestGraph(t, 300, 6, 13)
	ctx := WithOutOfCore(context.Background(), OutOfCoreConfig{
		ScratchDir:       t.TempDir(),
		MaxResidentBytes: 1024,
	})
	_, err := SymmetrizeCtx(ctx, g, DegreeDiscounted, Defaults())
	if !errors.Is(err, ErrResidentBudget) {
		t.Fatalf("err = %v, want ErrResidentBudget", err)
	}
}

// TestFusedAllocatesLess is the coarse "no materialized intermediates"
// check: both lowerings of the fused execution layer — in-core and
// out-of-core — must allocate meaningfully less heap than the
// materialized pre-fusion dataflow, which clones the input four times
// (ScaleRows and ScaleCols per factor) plus a transpose per product.
func TestFusedAllocatesLess(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is noisy under -short")
	}
	// A dense input with an aggressive prune threshold: the (pruned)
	// products are small, so the reference path's cost is dominated by
	// its input-sized clones — exactly the allocations the fused kernels
	// eliminate (in-core) or move to disk (out-of-core).
	g := oocTestGraph(t, 10000, 60, 31)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csr")
	if err := csr.WriteMatrix(context.Background(), path, g.Adj); err != nil {
		t.Fatal(err)
	}
	opt := Defaults()
	opt.Threshold = 1.0

	measure := func(f func()) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		f()
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}

	reference := measure(func() {
		if _, err := ReferenceSymmetrize(context.Background(), g.Adj, DegreeDiscounted, opt); err != nil {
			t.Fatal(err)
		}
	})
	inCore := measure(func() {
		if _, err := SymmetrizeCtx(context.Background(), g, DegreeDiscounted, opt); err != nil {
			t.Fatal(err)
		}
	})
	mp, err := csr.Open(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	mg, err := graph.NewDirected(mp.View(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithOutOfCore(context.Background(), OutOfCoreConfig{
		InputPath: path, ScratchDir: dir, SpillMemBytes: 4 << 20,
	})
	outOfCore := measure(func() {
		if _, err := SymmetrizeCtx(ctx, mg, DegreeDiscounted, opt); err != nil {
			t.Fatal(err)
		}
	})

	// The reference materialises four input-sized scale clones plus a
	// transpose per product; the fused in-core path keeps one shared
	// transpose and the out-of-core path keeps nothing input-sized on
	// the heap at all. A 1.5x gap keeps the check robust to allocator
	// noise while still failing if someone reintroduces an input-sized
	// heap copy into either lowering.
	if float64(inCore)*1.5 > float64(reference) {
		t.Fatalf("fused in-core allocated %d bytes vs reference %d — intermediates rematerialised", inCore, reference)
	}
	if float64(outOfCore)*1.5 > float64(reference) {
		t.Fatalf("out-of-core allocated %d bytes vs reference %d — not meaningfully bounded", outOfCore, reference)
	}
	t.Logf("reference allocated %.1f MiB, fused in-core %.1f MiB, out-of-core %.1f MiB",
		float64(reference)/(1<<20), float64(inCore)/(1<<20), float64(outOfCore)/(1<<20))
}
