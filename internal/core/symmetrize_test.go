package core

import (
	"math"
	"math/rand"
	"testing"

	"symcluster/internal/graph"
	"symcluster/internal/matrix"
	"symcluster/internal/walk"
)

// figure1 builds the paper's Figure 1 graph: nodes 4 and 5 never link
// to each other, but both point to nodes 2 and 3 and are both pointed
// to by nodes 0 and 1. They form a natural cluster that A+Aᵀ-style
// symmetrizations cannot connect.
func figure1() *matrix.CSR {
	b := matrix.NewBuilder(6, 6)
	for _, src := range []int{0, 1} {
		for _, dst := range []int{4, 5} {
			b.Add(src, dst, 1)
		}
	}
	for _, src := range []int{4, 5} {
		for _, dst := range []int{2, 3} {
			b.Add(src, dst, 1)
		}
	}
	return b.Build()
}

func randomDirected(rng *rand.Rand, n int, avgDeg float64) *matrix.CSR {
	b := matrix.NewBuilder(n, n)
	edges := int(float64(n) * avgDeg)
	for e := 0; e < edges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.Add(u, v, 1)
		}
	}
	return b.Build()
}

func TestMethodString(t *testing.T) {
	cases := map[Method]string{
		AAT:              "A+A'",
		RandomWalk:       "RandomWalk",
		Bibliometric:     "Bibliometric",
		DegreeDiscounted: "DegreeDiscounted",
		Method(99):       "Method(99)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestAATBasic(t *testing.T) {
	a := matrix.FromDense([][]float64{
		{0, 2, 0},
		{1, 0, 0},
		{0, 3, 0},
	})
	u := SymmetrizeAAT(a)
	if !u.IsSymmetric(0) {
		t.Fatal("A+Aᵀ not symmetric")
	}
	if u.At(0, 1) != 3 || u.At(1, 0) != 3 {
		t.Fatalf("reciprocal weights not summed: %v", u.ToDense())
	}
	if u.At(1, 2) != 3 || u.At(2, 1) != 3 {
		t.Fatalf("one-way edge not mirrored: %v", u.ToDense())
	}
}

func TestAATFailsOnFigure1(t *testing.T) {
	// The defining weakness (§2.1.1): nodes 4 and 5 stay unconnected.
	u := SymmetrizeAAT(figure1())
	if u.At(4, 5) != 0 {
		t.Fatal("A+Aᵀ connected nodes 4 and 5, expected no edge")
	}
}

func TestRandomWalkStructureMatchesAAT(t *testing.T) {
	// §3.2: the random-walk symmetrization has exactly the same edge set
	// as A + Aᵀ; only weights differ.
	rng := rand.New(rand.NewSource(21))
	a := randomDirected(rng, 40, 4)
	u, err := SymmetrizeRandomWalk(a, walk.DefaultTeleport)
	if err != nil {
		t.Fatal(err)
	}
	aat := SymmetrizeAAT(a)
	if u.NNZ() != aat.NNZ() {
		t.Fatalf("edge sets differ: rw %d vs a+at %d", u.NNZ(), aat.NNZ())
	}
	for i := 0; i < u.Rows; i++ {
		uc, _ := u.Row(i)
		ac, _ := aat.Row(i)
		for k := range uc {
			if uc[k] != ac[k] {
				t.Fatalf("row %d structure differs", i)
			}
		}
	}
	if !u.IsSymmetric(1e-12) {
		t.Fatal("random-walk symmetrization not symmetric")
	}
}

func TestRandomWalkNCutEquivalence(t *testing.T) {
	// Gleich's result: for U = (ΠP + PᵀΠ)/2, the undirected NCut of any
	// subset S in G_U equals the directed NCut of S in G. Verify on a
	// random graph and random subsets.
	//
	// The identity needs π exactly stationary for the *unteleported*
	// chain P (flow conservation across the cut makes the outgoing and
	// incoming cut probabilities equal). Build an ergodic graph with no
	// dangling nodes: random edges + a Hamiltonian cycle + a self-loop
	// for aperiodicity.
	rng := rand.New(rand.NewSource(5))
	b := matrix.NewBuilder(25, 25)
	for i := 0; i < 25; i++ {
		b.Add(i, (i+1)%25, 1)
	}
	b.Add(0, 0, 1)
	a := matrix.Add(randomDirected(rng, 25, 3), b.Build(), 1, 1)
	p := walk.TransitionMatrix(a)
	pi, err := walk.StationaryDistribution(p, walk.Options{Teleport: 0, Tol: 1e-14, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	piP := p.ScaleRows(pi)
	u := matrix.Add(piP, piP.Transpose(), 0.5, 0.5)

	for trial := 0; trial < 10; trial++ {
		inS := make([]bool, 25)
		for i := range inS {
			inS[i] = rng.Intn(2) == 0
		}
		// Directed ncut via π, P.
		var cutOut, cutIn, volS, volSbar float64
		for i := 0; i < 25; i++ {
			if inS[i] {
				volS += pi[i]
			} else {
				volSbar += pi[i]
			}
			cols, vals := p.Row(i)
			for k, c := range cols {
				if inS[i] && !inS[c] {
					cutOut += pi[i] * vals[k]
				}
				if !inS[i] && inS[c] {
					cutIn += pi[i] * vals[k]
				}
			}
		}
		if volS == 0 || volSbar == 0 {
			continue
		}
		ncutDir := cutOut/volS + cutIn/volSbar

		// Undirected ncut on U. Weighted degree of U is π (row sums of
		// (ΠP + PᵀΠ)/2 equal π when P is stochastic).
		var uCut, uVolS, uVolSbar float64
		deg := u.RowSums()
		for i := 0; i < 25; i++ {
			if inS[i] {
				uVolS += deg[i]
			} else {
				uVolSbar += deg[i]
			}
			cols, vals := u.Row(i)
			for k, c := range cols {
				if inS[i] != inS[int(c)] {
					uCut += vals[k]
				}
			}
		}
		uCut /= 2 // each cut edge visited from both sides
		ncutUndir := uCut/uVolS + uCut/uVolSbar

		if math.Abs(ncutDir-ncutUndir) > 1e-9 {
			t.Fatalf("trial %d: directed ncut %v != undirected ncut %v", trial, ncutDir, ncutUndir)
		}
	}
}

func TestBibliometricOnFigure1(t *testing.T) {
	u := SymmetrizeBibliometric(figure1(), Options{DropDiagonal: true})
	// Nodes 4 and 5 share out-links {2,3} and in-links {0,1}: AAᵀ gives
	// 2, AᵀA gives 2, so U(4,5) = 4.
	if got := u.At(4, 5); got != 4 {
		t.Fatalf("U(4,5) = %v, want 4", got)
	}
	if !u.IsSymmetric(0) {
		t.Fatal("bibliometric not symmetric")
	}
	// Co-cited pair {2,3}: both pointed to by {4,5} → AᵀA = 2.
	if got := u.At(2, 3); got != 2 {
		t.Fatalf("U(2,3) = %v, want 2", got)
	}
	// Coupling pair {0,1}: both point to {4,5} → AAᵀ = 2.
	if got := u.At(0, 1); got != 2 {
		t.Fatalf("U(0,1) = %v, want 2", got)
	}
}

func TestBibliometricSelfLoopsPreserveEdges(t *testing.T) {
	// §3.3: with A := A + I, every original edge survives symmetrization.
	a := matrix.FromDense([][]float64{
		{0, 1, 0},
		{0, 0, 1},
		{0, 0, 0},
	})
	plain := SymmetrizeBibliometric(a, Options{DropDiagonal: true})
	if plain.At(0, 1) == 0 {
		// 0→1: without self-loops, the pair (0,1) shares no links here?
		// 0 points to {1}, 1 points to {2}: no common out-links; in-links
		// of 0 = {}, of 1 = {0}: no common in-links. Edge vanishes.
		// That's the expected failure the option fixes.
	} else {
		t.Fatalf("expected edge (0,1) to vanish without self-loops, got %v", plain.At(0, 1))
	}
	withLoops := SymmetrizeBibliometric(a, Options{AddSelfLoops: true, DropDiagonal: true})
	if withLoops.At(0, 1) == 0 || withLoops.At(1, 2) == 0 {
		t.Fatalf("self-loop option failed to preserve original edges: %v", withLoops.ToDense())
	}
}

func TestBibliometricThresholdPrunes(t *testing.T) {
	u0 := SymmetrizeBibliometric(figure1(), Options{DropDiagonal: true})
	u3 := SymmetrizeBibliometric(figure1(), Options{Threshold: 3, DropDiagonal: true})
	if u3.NNZ() >= u0.NNZ() {
		t.Fatalf("threshold did not prune: %d vs %d", u3.NNZ(), u0.NNZ())
	}
	// The (4,5) entry is 2+2 where each term is 2 < 3: both pruned.
	if u3.At(4, 5) != 0 {
		t.Fatalf("U(4,5) = %v after per-term threshold 3", u3.At(4, 5))
	}
}

func TestDegreeDiscountedMatchesExplicitFormula(t *testing.T) {
	// Cross-check the factored X·Xᵀ implementation against the naive
	// three-matrix product of Eqn 8 on random graphs.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		a := randomDirected(rng, 20, 3)
		opt := Options{Alpha: 0.5, Beta: 0.5}
		got, err := SymmetrizeDegreeDiscounted(a, opt)
		if err != nil {
			t.Fatal(err)
		}

		outDeg := a.RowCounts()
		inDeg := a.ColCounts()
		doInv := make([]float64, len(outDeg))
		diInv := make([]float64, len(inDeg))
		for i := range doInv {
			if outDeg[i] > 0 {
				doInv[i] = math.Pow(float64(outDeg[i]), -0.5)
			} else {
				doInv[i] = 1
			}
		}
		for i := range diInv {
			if inDeg[i] > 0 {
				diInv[i] = math.Pow(float64(inDeg[i]), -0.5)
			} else {
				diInv[i] = 1
			}
		}
		at := a.Transpose()
		bd := matrix.Mul(matrix.Mul(a.ScaleRows(doInv), matrix.Diagonal(diInv)), at.ScaleCols(doInv))
		cd := matrix.Mul(matrix.Mul(at.ScaleRows(diInv), matrix.Diagonal(doInv)), a.ScaleCols(diInv))
		want := matrix.Add(bd, cd, 1, 1)

		if !matrix.Equal(got, want, 1e-9) {
			t.Fatalf("trial %d: factored implementation disagrees with Eqn 8", trial)
		}
	}
}

func TestDegreeDiscountedOnFigure1(t *testing.T) {
	u, err := SymmetrizeDegreeDiscounted(figure1(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if !u.IsSymmetric(1e-12) {
		t.Fatal("degree-discounted not symmetric")
	}
	// Nodes 4 and 5: out-degree 2 each, in-degree 2 each; shared
	// out-links 2,3 have in-degree 2; shared in-links 0,1 have
	// out-degree 2. With α = β = 0.5:
	// B_d(4,5) = (1/√2)(1/√2)·(1/√2 + 1/√2) = 1/√2, same for C_d →
	// U(4,5) = √2.
	if got := u.At(4, 5); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("U(4,5) = %v, want √2", got)
	}
}

func TestDegreeDiscountedDownweightsHubs(t *testing.T) {
	// Two leaf pairs: (1,2) share a low-in-degree target, (3,4) share a
	// hub target with many other in-links. After discounting, the
	// similarity through the hub must be strictly smaller.
	n := 20
	b := matrix.NewBuilder(n, n)
	// Pair (1,2) → node 0 (in-degree stays 2).
	b.Add(1, 0, 1)
	b.Add(2, 0, 1)
	// Pair (3,4) → node 5 (hub: in-degree 2 + 10).
	b.Add(3, 5, 1)
	b.Add(4, 5, 1)
	for i := 6; i < 16; i++ {
		b.Add(i, 5, 1)
	}
	u, err := SymmetrizeDegreeDiscounted(b.Build(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	low := u.At(1, 2)
	high := u.At(3, 4)
	if low <= high {
		t.Fatalf("hub-mediated similarity %v not below non-hub similarity %v", high, low)
	}
	// Undiscounted bibliometric sees both pairs identically.
	bib := SymmetrizeBibliometric(b.Build(), Options{DropDiagonal: true})
	if bib.At(1, 2) != bib.At(3, 4) {
		t.Fatalf("bibliometric should not distinguish: %v vs %v", bib.At(1, 2), bib.At(3, 4))
	}
}

func TestDegreeDiscountedHubNodePenalty(t *testing.T) {
	// Figure 3(b): sharing an out-link counts for less when one of the
	// sharing nodes is itself a hub with many out-links.
	n := 20
	b := matrix.NewBuilder(n, n)
	// i=0 and j=1 both point to k=2; j is otherwise quiet.
	b.Add(0, 2, 1)
	b.Add(1, 2, 1)
	// i=0 and h=3 both point to k2=4; h is a hub with many out-links.
	b.Add(0, 4, 1)
	b.Add(3, 4, 1)
	for t2 := 5; t2 < 15; t2++ {
		b.Add(3, t2, 1)
	}
	// Give targets equal in-degree by adding one extra pointer to node 2
	// so deg_in(2) = deg_in(4) = 2: already true (2←{0,1}, 4←{0,3}).
	u, err := SymmetrizeDegreeDiscounted(b.Build(), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if u.At(0, 1) <= u.At(0, 3) {
		t.Fatalf("similarity to hub %v not below similarity to non-hub %v", u.At(0, 3), u.At(0, 1))
	}
}

func TestDegreeDiscountedAlphaBetaZeroIsBibliometric(t *testing.T) {
	// α = β = 0 must reduce to the plain bibliometric symmetrization
	// (the Table 4 "no discounting" row).
	rng := rand.New(rand.NewSource(8))
	a := randomDirected(rng, 15, 3)
	dd, err := SymmetrizeDegreeDiscounted(a, Options{Alpha: 0, Beta: 0, DropDiagonal: true})
	if err != nil {
		t.Fatal(err)
	}
	bib := SymmetrizeBibliometric(a, Options{DropDiagonal: true})
	if !matrix.Equal(dd, bib, 1e-9) {
		t.Fatal("α=β=0 degree-discounted != bibliometric")
	}
}

func TestDegreeDiscountedLogVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomDirected(rng, 15, 3)
	u, err := SymmetrizeDegreeDiscounted(a, Options{
		AlphaKind: LogDiscount, BetaKind: LogDiscount, DropDiagonal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !u.IsSymmetric(1e-9) {
		t.Fatal("log-discounted matrix not symmetric")
	}
	// Log discount must lie strictly between no discount and α=β=1 for a
	// hub-mediated pair. Build the hub scenario from the earlier test.
	n := 20
	b := matrix.NewBuilder(n, n)
	b.Add(3, 5, 1)
	b.Add(4, 5, 1)
	for i := 6; i < 16; i++ {
		b.Add(i, 5, 1)
	}
	g := b.Build()
	none, _ := SymmetrizeDegreeDiscounted(g, Options{Alpha: 0, Beta: 0, DropDiagonal: true})
	logv, _ := SymmetrizeDegreeDiscounted(g, Options{AlphaKind: LogDiscount, BetaKind: LogDiscount, DropDiagonal: true})
	fullv, _ := SymmetrizeDegreeDiscounted(g, Options{Alpha: 1, Beta: 1, DropDiagonal: true})
	if !(fullv.At(3, 4) < logv.At(3, 4) && logv.At(3, 4) < none.At(3, 4)) {
		t.Fatalf("discount ordering violated: full %v, log %v, none %v",
			fullv.At(3, 4), logv.At(3, 4), none.At(3, 4))
	}
}

func TestDegreeDiscountedRejectsNegativeExponents(t *testing.T) {
	if _, err := SymmetrizeDegreeDiscounted(matrix.Identity(3), Options{Alpha: -1}); err == nil {
		t.Fatal("accepted negative alpha")
	}
}

func TestSymmetrizeDispatch(t *testing.T) {
	g, err := graph.NewDirected(figure1(), []string{"a", "b", "c", "d", "e", "f"})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods {
		u, err := Symmetrize(g, m, Defaults())
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if u.N() != 6 {
			t.Fatalf("%v: node count changed", m)
		}
		if u.Labels == nil || u.Labels[0] != "a" {
			t.Fatalf("%v: labels dropped", m)
		}
		if !u.Adj.IsSymmetric(1e-9) {
			t.Fatalf("%v: asymmetric output", m)
		}
	}
	if _, err := Symmetrize(g, Method(42), Defaults()); err == nil {
		t.Fatal("accepted unknown method")
	}
}

func TestSymmetrizeNonNegativeOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g, _ := graph.NewDirected(randomDirected(rng, 30, 4), nil)
	for _, m := range Methods {
		u, err := Symmetrize(g, m, Defaults())
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for _, v := range u.Adj.Val {
			if v < 0 {
				t.Fatalf("%v produced negative weight %v", m, v)
			}
		}
	}
}

func TestCalibrateThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	a := randomDirected(rng, 200, 8)
	opt := Defaults()
	th, err := CalibrateThreshold(a, opt, 10, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if th < 0 {
		t.Fatalf("negative threshold %v", th)
	}
	opt.Threshold = th
	u, err := SymmetrizeDegreeDiscounted(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	avg := float64(u.NNZ()) / float64(u.Rows)
	// The calibration is approximate; accept a generous band.
	if avg < 2 || avg > 50 {
		t.Fatalf("calibrated average degree %v far from target 10", avg)
	}
}

func TestCalibrateThresholdRejectsBadTarget(t *testing.T) {
	if _, err := CalibrateThreshold(matrix.Identity(4), Defaults(), 0, 2, 1); err == nil {
		t.Fatal("accepted non-positive target degree")
	}
}
