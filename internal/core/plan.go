package core

import "fmt"

// A symmetrization plan is the declarative middle layer between the
// method catalog and the kernels: each product-shaped method describes
// *what* to compute — optional self-loop augmentation, either a
// mirror (scale·A + scale·Aᵀ) or a sum of scaled self-product terms,
// and diagonal handling — and the executor in executor.go lowers that
// one description to either the in-core fused kernels or the
// mmap-backed out-of-core strategy. Both execution paths therefore
// share a single dataflow definition; the duplicated per-method
// kernels the plan replaced lived in this package's symmetrize.go and
// outofcore.go through PR 7.

// degreeSide selects which unweighted degree vector a scaleSpec is
// derived from.
type degreeSide int

const (
	outDegrees degreeSide = iota
	inDegrees
)

// scaleSpec describes one diagonal discount factor symbolically:
// f(d)^share over the chosen degree vector, resolved to a concrete
// []float64 by the executor via discountVector once degrees are known.
// A nil *scaleSpec is the identity (no scaling).
type scaleSpec struct {
	side  degreeSide
	kind  DiscountKind
	exp   float64
	share float64
}

// productTerm is one fused self-product contribution
// S = X·Xᵀ with X = diag(rowScale)·base·diag(colScale), where base is
// the (augmented) adjacency A, or Aᵀ when transposed is set. The
// executor provides both A and one shared Aᵀ, so a transposed term
// costs no extra transpose: (Aᵀ)ᵀ is A again, bit-exactly, since
// transposition copies values unchanged.
type productTerm struct {
	transposed bool
	rowScale   *scaleSpec
	colScale   *scaleSpec
}

// symPlan is a complete symmetrization dataflow. Exactly one of mirror
// or terms is active: mirror computes mirrorScale·(A + Aᵀ); terms sums
// the listed fused self-products and then applies dropDiagonal.
type symPlan struct {
	addSelfLoops bool
	mirror       bool
	mirrorScale  float64
	terms        []productTerm
	dropDiagonal bool
}

// aatPlan is U = A + Aᵀ (§3.1): a pure mirror with unit scale.
// Self-loop augmentation and diagonal dropping are product-method
// concepts and do not apply.
func aatPlan() *symPlan {
	return &symPlan{mirror: true, mirrorScale: 1}
}

// bibliometricPlan is U = AAᵀ + AᵀA (§3.3): two unscaled self-product
// terms — bibliographic coupling over A, co-citation over Aᵀ.
func bibliometricPlan(opt Options) *symPlan {
	return &symPlan{
		addSelfLoops: opt.AddSelfLoops,
		terms: []productTerm{
			{transposed: false}, // AAᵀ
			{transposed: true},  // AᵀA
		},
		dropDiagonal: opt.DropDiagonal,
	}
}

// degreeDiscountedPlan is the paper's proposal (§3.4):
//
//	U_d = D_o^{-α} A D_i^{-β} Aᵀ D_o^{-α} + D_i^{-β} Aᵀ D_o^{-α} A D_i^{-β}
//
// expressed as two scaled self-products: with X = D_o^{-α} A D_i^{-β/2}
// the coupling term is X·Xᵀ, and with Y = D_i^{-β} Aᵀ D_o^{-α/2} the
// co-citation term is Y·Yᵀ — the half-exponent column factor is the
// full middle discount split across the two sides of each product.
func degreeDiscountedPlan(opt Options) (*symPlan, error) {
	if opt.Alpha < 0 || opt.Beta < 0 {
		return nil, fmt.Errorf("core: negative discount exponents α=%v β=%v", opt.Alpha, opt.Beta)
	}
	alphaFull := &scaleSpec{side: outDegrees, kind: opt.AlphaKind, exp: opt.Alpha, share: 1}
	alphaHalf := &scaleSpec{side: outDegrees, kind: opt.AlphaKind, exp: opt.Alpha, share: 0.5}
	betaFull := &scaleSpec{side: inDegrees, kind: opt.BetaKind, exp: opt.Beta, share: 1}
	betaHalf := &scaleSpec{side: inDegrees, kind: opt.BetaKind, exp: opt.Beta, share: 0.5}
	return &symPlan{
		addSelfLoops: opt.AddSelfLoops,
		terms: []productTerm{
			{transposed: false, rowScale: alphaFull, colScale: betaHalf}, // X·Xᵀ
			{transposed: true, rowScale: betaFull, colScale: alphaHalf},  // Y·Yᵀ
		},
		dropDiagonal: opt.DropDiagonal,
	}, nil
}

// needsDegrees reports whether lowering the plan requires the degree
// vectors (any term carries a scale spec). Gates the out-of-core
// resident-budget charge for the vectors.
func (p *symPlan) needsDegrees() bool {
	for _, t := range p.terms {
		if t.rowScale != nil || t.colScale != nil {
			return true
		}
	}
	return false
}
