package core

import (
	"context"

	"symcluster/internal/matrix"
	"symcluster/internal/simjoin"
)

// runPlan lowers a symmetrization plan to one of two execution
// strategies sharing the same arithmetic:
//
//   - In-core (s == nil): the fused kernels of internal/matrix consume
//     the heap-resident adjacency and one shared heap transpose; the
//     diagonal scalings and prune threshold fold into the tiled SpGEMM
//     accumulator loop, so no scaled factor matrix is ever
//     materialised, and mirrors go through the triangle-and-mirror
//     helper instead of a full transpose.
//
//   - Out-of-core (s != nil): the adjacency and its transpose live in
//     mmap'd binary CSR files (the transpose built by external sort)
//     and the same fused kernels stream rows from the mapped views, so
//     peak resident memory is the pruned products plus the degree
//     vectors — metered against the configured budget.
//
// Both lowerings are bit-identical to each other and to the
// materialized pre-fusion dataflow: the fused kernels reproduce the
// ScaleRows-then-ScaleCols value order and Gustavson accumulation
// order exactly (see the invariants on matrix.MulXXTScaledPrunedCtx
// and matrix.AddTransposeSym, and DESIGN.md §15).
func runPlan(ctx context.Context, a *matrix.CSR, plan *symPlan, opt Options, s *oocState) (*matrix.CSR, error) {
	var err error
	if plan.addSelfLoops {
		if s != nil {
			a, err = s.augmented(ctx, opt)
			if err != nil {
				return nil, err
			}
		} else {
			a = a.AddIdentity()
		}
	}

	if plan.mirror {
		if s != nil {
			// File-streamed mirror: the transpose never touches the heap,
			// only the (input-sized) sum does.
			at, err := s.transpose(ctx, a, "at.csr")
			if err != nil {
				return nil, err
			}
			u := matrix.Add(a, at, plan.mirrorScale, plan.mirrorScale)
			if err := s.charge(matBytes(u)); err != nil {
				return nil, err
			}
			return u, nil
		}
		return matrix.AddTransposeSym(a, plan.mirrorScale), nil
	}

	// Product terms. Degrees are read once from the (augmented) input;
	// one transpose is shared by every term, since a transposed term's
	// own transpose is the original matrix again, bit-exactly.
	var outDeg, inDeg []int
	if plan.needsDegrees() {
		outDeg = a.RowCounts()
		inDeg = a.ColCounts()
		if s != nil {
			if err := s.charge(16 * int64(a.Rows)); err != nil { // two []int
				return nil, err
			}
		}
	}
	var at *matrix.CSR
	if s != nil {
		at, err = s.transpose(ctx, a, "at.csr")
	} else {
		at = a.Transpose()
	}
	if err != nil {
		return nil, err
	}

	var u *matrix.CSR
	for _, term := range plan.terms {
		x, xt := a, at
		if term.transposed {
			x, xt = at, a
		}
		rs := resolveScale(term.rowScale, outDeg, inDeg)
		cs := resolveScale(term.colScale, outDeg, inDeg)
		p, err := fusedSelfProduct(ctx, x, xt, rs, cs, opt)
		if err != nil {
			return nil, err
		}
		if s != nil {
			if err := s.charge(matBytes(p)); err != nil {
				return nil, err
			}
		}
		if u == nil {
			u = p
		} else {
			u = matrix.Add(u, p, 1, 1)
		}
	}
	if plan.dropDiagonal {
		u = u.DropDiagonal()
	}
	return u, nil
}

// resolveScale lowers a symbolic scale spec to the concrete per-node
// factor vector. nil spec means identity (nil vector).
func resolveScale(spec *scaleSpec, outDeg, inDeg []int) []float64 {
	if spec == nil {
		return nil
	}
	deg := outDeg
	if spec.side == inDegrees {
		deg = inDeg
	}
	return discountVector(deg, spec.kind, spec.exp, spec.share)
}

// fusedSelfProduct computes S = X·Xᵀ for X = diag(rowScale)·x·diag(colScale)
// given x and its exact transpose xt (heap or mapped view — the fused
// kernel only reads rows). This is the single kernel-selection point
// for every product-shaped symmetrization, in-core or out-of-core:
//
//   - Default: the fused triangle kernel, sequential or tiled-parallel
//     per opt.Workers, with the scalings and threshold folded in.
//   - opt.UseAPSS with a positive threshold: the Bayardo-style
//     all-pairs similarity search (paper §3.6). APSS builds its own
//     inverted index over the scaled rows, so the scaled factor is
//     materialised for it — the one backend that still needs the copy.
//     The APSS backend omits the diagonal, so it is restored for
//     callers that keep self-similarities; negative weights or other
//     join errors fall back to the fused kernel, which handles both.
func fusedSelfProduct(ctx context.Context, x, xt *matrix.CSR, rowScale, colScale []float64, opt Options) (*matrix.CSR, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if !opt.UseAPSS || opt.Threshold <= 0 {
		return matrix.MulXXTScaledPrunedCtx(ctx, x, xt, rowScale, colScale, opt.Threshold, workers)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	xs := x
	if rowScale != nil {
		xs = xs.ScaleRows(rowScale)
	}
	if colScale != nil {
		xs = xs.ScaleCols(colScale)
	}
	p, err := simjoin.SelfJoin(xs, opt.Threshold)
	if err != nil {
		return matrix.MulXXTScaledPrunedCtx(ctx, x, xt, rowScale, colScale, opt.Threshold, workers)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opt.DropDiagonal {
		return p, nil
	}
	diag := make([]float64, xs.Rows)
	for i := 0; i < xs.Rows; i++ {
		_, vals := xs.Row(i)
		for _, v := range vals {
			diag[i] += v * v
		}
		if diag[i] < opt.Threshold {
			diag[i] = 0
		}
	}
	return matrix.Add(p, matrix.Diagonal(diag), 1, 1), nil
}
