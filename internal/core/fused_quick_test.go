package core

import (
	"context"
	"testing"
	"testing/quick"

	"symcluster/internal/matrix"
)

// fusedVsReference runs one method through the fused execution layer
// (the production kernels map) and through the pre-fusion materialized
// dataflow, requiring bit-identical output.
func fusedVsReference(t *testing.T, a *matrix.CSR, m Method, opt Options) {
	t.Helper()
	want, err := ReferenceSymmetrize(context.Background(), a, m, opt)
	if err != nil {
		t.Fatalf("%v: reference: %v", m, err)
	}
	got, err := kernels[m](context.Background(), a, opt)
	if err != nil {
		t.Fatalf("%v: fused: %v", m, err)
	}
	bitIdentical(t, want, got)
}

// TestQuickFusedMatchesReference is the fusion contract over random
// graphs: for every method, threshold, self-loop setting, and diagonal
// handling, the fused plan/executor path reproduces the materialized
// pre-fusion dataflow bit-for-bit.
func TestQuickFusedMatchesReference(t *testing.T) {
	f := func(g digraphGen, thRaw uint8, selfLoops, keepDiag bool) bool {
		opt := Defaults()
		opt.Threshold = float64(thRaw) / 512 // 0 .. ~0.5
		opt.AddSelfLoops = selfLoops
		opt.DropDiagonal = !keepDiag
		for _, m := range Methods {
			want, err1 := ReferenceSymmetrize(context.Background(), g.A, m, opt)
			got, err2 := kernels[m](context.Background(), g.A, opt)
			if err1 != nil || err2 != nil {
				return false
			}
			if !sameBits(want, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// sameBits is bitIdentical as a predicate for quick.Check.
func sameBits(want, got *matrix.CSR) bool {
	if want.Rows != got.Rows || want.Cols != got.Cols || want.NNZ() != got.NNZ() {
		return false
	}
	for i := range want.RowPtr {
		if want.RowPtr[i] != got.RowPtr[i] {
			return false
		}
	}
	for k := range want.ColIdx {
		if want.ColIdx[k] != got.ColIdx[k] {
			return false
		}
	}
	for k := range want.Val {
		// NaNs cannot occur (non-negative weights); exact comparison is
		// the bit-identity contract.
		if want.Val[k] != got.Val[k] {
			return false
		}
	}
	return true
}

// TestFusedMatchesReferenceLargeGraph drives the fused path through
// the tiled parallel driver (≥ 2 row tiles) and the worker-count
// matrix, on a hub-heavy deterministic graph.
func TestFusedMatchesReferenceLargeGraph(t *testing.T) {
	g := oocTestGraph(t, 1200, 5, 17)
	for _, m := range []Method{Bibliometric, DegreeDiscounted} {
		for _, th := range []float64{0, 0.01} {
			for _, workers := range []int{1, 2, 4} {
				opt := Defaults()
				opt.Threshold = th
				opt.Workers = workers
				fusedVsReference(t, g.Adj, m, opt)
			}
		}
	}
}

// TestFusedMatchesReferenceVariants covers the option corners the
// quick generator leaves fixed: log discounting, asymmetric exponents,
// and kept diagonals under a threshold.
func TestFusedMatchesReferenceVariants(t *testing.T) {
	g := oocTestGraph(t, 300, 6, 23)
	for _, tc := range []struct {
		name string
		m    Method
		opt  func() Options
	}{
		{"dd-log", DegreeDiscounted, func() Options {
			o := Defaults()
			o.AlphaKind, o.BetaKind = LogDiscount, LogDiscount
			return o
		}},
		{"dd-asymmetric", DegreeDiscounted, func() Options {
			o := Defaults()
			o.Alpha, o.Beta = 0.25, 0.75
			o.Threshold = 0.005
			return o
		}},
		{"dd-keep-diag-thr", DegreeDiscounted, func() Options {
			o := Defaults()
			o.DropDiagonal = false
			o.Threshold = 0.01
			return o
		}},
		{"bib-selfloops-workers", Bibliometric, func() Options {
			o := Defaults()
			o.AddSelfLoops = true
			o.Threshold = 0.5
			o.Workers = 3
			return o
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fusedVsReference(t, g.Adj, tc.m, tc.opt())
		})
	}
}

// TestOutOfCoreMatchesReference closes the triangle: the out-of-core
// lowering of the shared plan must also be bit-identical to the
// materialized pre-fusion dataflow (TestOutOfCoreBitIdentity covers
// out-of-core vs in-core; this pins both to the reference).
func TestOutOfCoreMatchesReference(t *testing.T) {
	g := oocTestGraph(t, 300, 6, 29)
	for _, tc := range []struct {
		name string
		m    Method
		opt  func() Options
	}{
		{"dd", DegreeDiscounted, Defaults},
		{"dd-thr-workers", DegreeDiscounted, func() Options {
			o := Defaults()
			o.Threshold = 0.01
			o.Workers = 4
			return o
		}},
		{"bib-selfloops", Bibliometric, func() Options {
			o := Defaults()
			o.AddSelfLoops = true
			return o
		}},
		{"aat", AAT, Defaults},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := tc.opt()
			want, err := ReferenceSymmetrize(context.Background(), g.Adj, tc.m, opt)
			if err != nil {
				t.Fatal(err)
			}
			ctx := WithOutOfCore(context.Background(), OutOfCoreConfig{ScratchDir: t.TempDir()})
			got, err := SymmetrizeCtx(ctx, g, tc.m, opt)
			if err != nil {
				t.Fatal(err)
			}
			bitIdentical(t, want, got.Adj)
		})
	}
}
