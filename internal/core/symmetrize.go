// Package core implements the paper's primary contribution: the four
// graph symmetrizations of "Symmetrizations for Clustering Directed
// Graphs" (Satuluri & Parthasarathy, EDBT 2011).
//
// A symmetrization transforms a directed graph G with (asymmetric)
// adjacency matrix A into an undirected graph G_U with symmetric
// adjacency U, so that any off-the-shelf undirected graph clustering
// algorithm can be applied (the paper's two-stage framework, Figure 2):
//
//   - A + Aᵀ (§3.1): drop directionality, summing reciprocal weights.
//   - Random walk (§3.2): U = (ΠP + PᵀΠ)/2 where P is the transition
//     matrix and Π = diag(π) its stationary distribution. By Gleich's
//     result, NCut on G_U equals the directed NCut on G.
//   - Bibliometric (§3.3): U = AAᵀ + AᵀA — bibliographic coupling plus
//     co-citation strength, connecting nodes that share out- or
//     in-links.
//   - Degree-discounted (§3.4): the paper's proposal,
//     U_d = D_o^{-α} A D_i^{-β} Aᵀ D_o^{-α} + D_i^{-β} Aᵀ D_o^{-α} A D_i^{-β},
//     which discounts the similarity contributed through and by hub
//     nodes; α = β = 0.5 works best (Table 4).
package core

import (
	"context"
	"fmt"
	"math"

	"symcluster/internal/faultinject"
	"symcluster/internal/graph"
	"symcluster/internal/matrix"
	"symcluster/internal/obs"
	"symcluster/internal/walk"
)

// Method identifies a symmetrization method.
type Method int

const (
	// AAT is the A + Aᵀ symmetrization (§3.1).
	AAT Method = iota
	// RandomWalk is the (ΠP + PᵀΠ)/2 symmetrization (§3.2).
	RandomWalk
	// Bibliometric is the AAᵀ + AᵀA symmetrization (§3.3).
	Bibliometric
	// DegreeDiscounted is the degree-discounted symmetrization (§3.4).
	DegreeDiscounted
)

// methodNames maps each method to the name used in the paper's
// figures. Kept as data (not a switch) so the catalog of methods is
// owned by internal/pipeline's registry; this file only wires kernels.
var methodNames = map[Method]string{
	AAT:              "A+A'",
	RandomWalk:       "RandomWalk",
	Bibliometric:     "Bibliometric",
	DegreeDiscounted: "DegreeDiscounted",
}

// String returns the method's name as used in the paper's figures.
func (m Method) String() string {
	if name, ok := methodNames[m]; ok {
		return name
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Methods lists all symmetrizations in the order the paper's plots use.
var Methods = []Method{DegreeDiscounted, Bibliometric, AAT, RandomWalk}

// DiscountKind selects the degree-discount schedule for the similarity
// variants studied in Table 4. PowerDiscount with exponent 0.5 is the
// paper's recommended setting; LogDiscount is the IDF-style variant the
// paper reports as an insufficient penalty.
type DiscountKind int

const (
	// PowerDiscount divides by degree^exponent.
	PowerDiscount DiscountKind = iota
	// LogDiscount divides by 1 + log(degree) (IDF-style, §3.4).
	LogDiscount
)

// Options configures Symmetrize.
type Options struct {
	// Alpha is the out-degree discount exponent α (DegreeDiscounted
	// only). The paper's default is 0.5.
	Alpha float64
	// Beta is the in-degree discount exponent β (DegreeDiscounted only).
	// The paper's default is 0.5.
	Beta float64
	// AlphaKind and BetaKind select power-law or logarithmic
	// discounting. Both default to PowerDiscount; LogDiscount ignores
	// the corresponding exponent.
	AlphaKind, BetaKind DiscountKind
	// Threshold prunes product entries with absolute value below it
	// (Bibliometric and DegreeDiscounted only). Applied while each
	// output row is produced, so the unpruned product never
	// materialises.
	Threshold float64
	// AddSelfLoops sets A := A + I before Bibliometric or
	// DegreeDiscounted symmetrization, which guarantees the original
	// edges survive in the symmetrized graph (§3.3).
	AddSelfLoops bool
	// Teleport is the teleport probability for the stationary
	// distribution (RandomWalk only). Defaults to walk.DefaultTeleport.
	Teleport float64
	// DropDiagonal removes self-similarities from the product-based
	// symmetrizations. On by default in Defaults(); the diagonal of
	// AAᵀ + AᵀA is a node's own degree mass and only adds self-loops
	// that clustering algorithms must then ignore.
	DropDiagonal bool
	// UseAPSS routes the thresholded self-products of Bibliometric and
	// DegreeDiscounted through the all-pairs similarity search of
	// Bayardo et al. (paper §3.6) instead of row-wise SpGEMM. Requires
	// Threshold > 0; results are identical, only the candidate-pruning
	// strategy differs.
	UseAPSS bool
	// Workers parallelises the similarity products over row blocks
	// (> 1 enables; results are bit-identical to sequential). The
	// paper's experiments stay single-threaded to mirror its setup;
	// this is for production use. Ignored when UseAPSS is set.
	Workers int
}

// Defaults returns the paper's recommended options: α = β = 0.5,
// teleport 0.05, self-loop augmentation off, self-similarities dropped.
func Defaults() Options {
	return Options{
		Alpha:        0.5,
		Beta:         0.5,
		Teleport:     walk.DefaultTeleport,
		DropDiagonal: true,
	}
}

// Symmetrize applies the selected symmetrization to the directed graph
// g and returns the resulting undirected graph. Node labels carry over.
func Symmetrize(g *graph.Directed, method Method, opt Options) (*graph.Undirected, error) {
	return SymmetrizeCtx(context.Background(), g, method, opt)
}

// SymmetrizeCtx is Symmetrize with cancellation: ctx is threaded into
// the sparse products and power iterations underneath, which poll it at
// iteration and row-block boundaries, so a cancelled context aborts the
// symmetrization within one block of kernel work with ctx's error.
//
// Each call opens a "core.symmetrize" span and records nnz in/out and
// the number of entries killed by the prune threshold through the obs
// hooks (no-ops without a trace/meter in ctx).
func SymmetrizeCtx(ctx context.Context, g *graph.Directed, method Method, opt Options) (out *graph.Undirected, err error) {
	// Check once at entry so even methods with no internal poll points
	// (AAT is a single sparse add) respect an already-cancelled context.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, sp := obs.StartSpan(ctx, "core.symmetrize",
		obs.A("method", method.String()), obs.A("nnz_in", g.Adj.NNZ()))
	ctx, prune := obs.WithPruneStats(ctx)
	defer func() {
		nnzOut := 0
		if out != nil {
			nnzOut = out.Adj.NNZ()
		}
		sp.SetAttr("nnz_out", nnzOut)
		sp.SetAttr("pruned_entries", prune.Killed())
		sp.EndErr(err)
		if err == nil {
			obs.ObserveSymmetrize(ctx, method.String(), g.Adj.NNZ(), nnzOut, prune.Killed())
		}
	}()
	if err := faultinject.Fire("core.symmetrize"); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg := OutOfCoreFrom(ctx); cfg != nil {
		sp.SetAttr("out_of_core", true)
		u, err := symmetrizeOutOfCore(ctx, g.Adj, method, opt, cfg)
		if err != nil {
			return nil, err
		}
		return &graph.Undirected{Adj: u, Labels: g.Labels}, nil
	}
	kernel, ok := kernels[method]
	if !ok {
		return nil, fmt.Errorf("core: unknown symmetrization method %v", method)
	}
	u, err := kernel(ctx, g.Adj, opt)
	if err != nil {
		return nil, err
	}
	return &graph.Undirected{Adj: u, Labels: g.Labels}, nil
}

// kernels maps each method to its math kernel. The kernel wiring lives
// here next to the kernels; everything catalog-shaped (names, aliases,
// validation, cost models) lives in internal/pipeline. The
// product-shaped methods build a symmetrization plan (plan.go) lowered
// by the shared executor (executor.go); RandomWalk keeps a bespoke
// kernel because its core is an iterative stationary-distribution
// solve, not a plan-shaped product.
var kernels = map[Method]func(ctx context.Context, a *matrix.CSR, opt Options) (*matrix.CSR, error){
	AAT: func(ctx context.Context, a *matrix.CSR, opt Options) (*matrix.CSR, error) {
		return runPlan(ctx, a, aatPlan(), opt, nil)
	},
	RandomWalk: func(ctx context.Context, a *matrix.CSR, opt Options) (*matrix.CSR, error) {
		return SymmetrizeRandomWalkCtx(ctx, a, opt.Teleport)
	},
	Bibliometric:     SymmetrizeBibliometricCtx,
	DegreeDiscounted: SymmetrizeDegreeDiscountedCtx,
}

// SymmetrizeAAT returns U = A + Aᵀ (§3.1), computed by the
// triangle-and-mirror helper so the transpose is never materialised.
func SymmetrizeAAT(a *matrix.CSR) *matrix.CSR {
	return matrix.AddTransposeSym(a, 1)
}

// SymmetrizeRandomWalk returns U = (ΠP + PᵀΠ)/2 (§3.2), where P is the
// row-stochastic transition matrix of A and Π the diagonal matrix of
// its stationary distribution computed with the given teleport
// probability (0 means walk.DefaultTeleport). U has the same non-zero
// structure as A + Aᵀ; only the weights differ.
func SymmetrizeRandomWalk(a *matrix.CSR, teleport float64) (*matrix.CSR, error) {
	return SymmetrizeRandomWalkCtx(context.Background(), a, teleport)
}

// SymmetrizeRandomWalkCtx is SymmetrizeRandomWalk with cancellation at
// power-iteration boundaries of the stationary distribution.
func SymmetrizeRandomWalkCtx(ctx context.Context, a *matrix.CSR, teleport float64) (*matrix.CSR, error) {
	if teleport == 0 {
		teleport = walk.DefaultTeleport
	}
	p := walk.TransitionMatrix(a)
	pi, err := walk.StationaryDistributionCtx(ctx, p, walk.Options{Teleport: teleport})
	if err != nil {
		return nil, fmt.Errorf("core: random-walk symmetrization: %w", err)
	}
	piP := p.ScaleRows(pi) // ΠP
	// (ΠP + PᵀΠ)/2 = (ΠP + (ΠP)ᵀ)/2: a half-scale mirror, fused through
	// the triangle helper instead of materializing (ΠP)ᵀ.
	return matrix.AddTransposeSym(piP, 0.5), nil
}

// SymmetrizeBibliometric returns U = AAᵀ + AᵀA (§3.3), honouring
// opt.AddSelfLoops, opt.Threshold and opt.DropDiagonal. Alpha/Beta are
// ignored. Note that the threshold is applied to each of the two
// product terms as they are formed; an entry present in both terms
// survives if either contribution passes the threshold, matching the
// paper's integer thresholds on shared-link counts (Table 2).
func SymmetrizeBibliometric(a *matrix.CSR, opt Options) *matrix.CSR {
	u, _ := SymmetrizeBibliometricCtx(context.Background(), a, opt)
	return u
}

// SymmetrizeBibliometricCtx is SymmetrizeBibliometric with
// cancellation: the two self-products poll ctx at row-block boundaries
// and a cancelled context aborts with ctx's error.
func SymmetrizeBibliometricCtx(ctx context.Context, a *matrix.CSR, opt Options) (*matrix.CSR, error) {
	return runPlan(ctx, a, bibliometricPlan(opt), opt, nil)
}

// SymmetrizeDegreeDiscounted returns the degree-discounted similarity
// matrix (§3.4, Eqn 8 generalised to arbitrary α, β):
//
//	U_d = D_o^{-α} A D_i^{-β} Aᵀ D_o^{-α} + D_i^{-β} Aᵀ D_o^{-α} A D_i^{-β}
//
// Both terms are computed as scaled self-products: with
// X = D_o^{-α} A D_i^{-β/2} the coupling term is B_d = X·Xᵀ, and with
// Y = D_i^{-β} Aᵀ D_o^{-α/2} the co-citation term is C_d = Y·Yᵀ. The
// fused execution layer never materialises X or Y: the discount
// factors and the prune threshold fold into the self-product kernel
// itself (see plan.go and executor.go).
//
// Degrees are unweighted in/out degrees of A (after optional self-loop
// augmentation); zero-degree factors are treated as 1 so isolated
// directions contribute nothing rather than dividing by zero.
func SymmetrizeDegreeDiscounted(a *matrix.CSR, opt Options) (*matrix.CSR, error) {
	return SymmetrizeDegreeDiscountedCtx(context.Background(), a, opt)
}

// SymmetrizeDegreeDiscountedCtx is SymmetrizeDegreeDiscounted with
// cancellation at row-block boundaries of the two scaled self-products.
func SymmetrizeDegreeDiscountedCtx(ctx context.Context, a *matrix.CSR, opt Options) (*matrix.CSR, error) {
	plan, err := degreeDiscountedPlan(opt)
	if err != nil {
		return nil, err
	}
	return runPlan(ctx, a, plan, opt, nil)
}

// discountVector returns per-node factors f(d)^share where f(d) is
// d^{-exp} for PowerDiscount or (1+ln d)^{-1} for LogDiscount, and
// share ∈ {1, 0.5} splits the factor across the two sides of a
// self-product. Zero degrees map to factor 1.
func discountVector(degrees []int, kind DiscountKind, exp, share float64) []float64 {
	f := make([]float64, len(degrees))
	for i, d := range degrees {
		if d <= 0 {
			f[i] = 1
			continue
		}
		switch kind {
		case LogDiscount:
			f[i] = math.Pow(1/(1+math.Log(float64(d))), share)
		default:
			f[i] = math.Pow(float64(d), -exp*share)
		}
	}
	return f
}

// CalibrateThreshold estimates a prune threshold for the
// degree-discounted symmetrization such that the symmetrized graph's
// average degree is close to targetAvgDegree, following the sampling
// recipe of §5.3.1: compute the full similarity rows for a random
// sample of nodes and pick the threshold whose induced average sampled
// degree matches the target. sample is the number of sampled nodes;
// rows are sampled deterministically with the given seed.
func CalibrateThreshold(a *matrix.CSR, opt Options, targetAvgDegree float64, sample int, seed int64) (float64, error) {
	if targetAvgDegree <= 0 {
		return 0, fmt.Errorf("core: target average degree must be positive")
	}
	if sample <= 0 {
		sample = 100
	}
	n := a.Rows
	if sample > n {
		sample = n
	}
	// Compute the unpruned degree-discounted similarity once and read
	// off the value distribution of a deterministic sample of rows. For
	// the dataset sizes this library targets the full product is
	// affordable; the sampling bounds the selection work.
	probe := opt
	probe.Threshold = 0
	probe.DropDiagonal = true
	full, err := SymmetrizeDegreeDiscounted(a, probe)
	if err != nil {
		return 0, err
	}
	vals := sampleRowValues(full, sample, seed)
	if len(vals) == 0 {
		return 0, fmt.Errorf("core: sampled rows have no similarities; graph too sparse to calibrate")
	}
	// Choose the threshold that keeps ~targetAvgDegree entries per
	// sampled row: the (sample·target)-th largest sampled value.
	keep := int(targetAvgDegree * float64(sample))
	if keep >= len(vals) {
		return 0, nil // keep everything
	}
	quickselectDesc(vals, keep)
	return vals[keep], nil
}

// sampleRowValues collects the entry values of `sample` deterministic
// pseudo-random rows of u.
func sampleRowValues(u *matrix.CSR, sample int, seed int64) []float64 {
	n := u.Rows
	if sample > n {
		sample = n
	}
	var vals []float64
	// Low-discrepancy deterministic row selection: stride by a large
	// odd constant mixed with the seed.
	stride := int64(2654435761)
	x := seed
	seen := make(map[int]bool, sample)
	for len(seen) < sample {
		x = x*stride + 12345
		r := int((x%int64(n) + int64(n)) % int64(n))
		if seen[r] {
			r = (r + 1) % n
			for seen[r] {
				r = (r + 1) % n
			}
		}
		seen[r] = true
		_, rowVals := u.Row(r)
		vals = append(vals, rowVals...)
	}
	return vals
}

// quickselectDesc partially sorts vals so that vals[k] is the k-th
// largest element (0-based).
func quickselectDesc(vals []float64, k int) {
	lo, hi := 0, len(vals)-1
	for lo < hi {
		p := vals[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for vals[i] > p {
				i++
			}
			for vals[j] < p {
				j--
			}
			if i <= j {
				vals[i], vals[j] = vals[j], vals[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}
