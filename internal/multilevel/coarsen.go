// Package multilevel implements the graph-coarsening machinery shared
// by the three multilevel clustering substrates (MLR-MCL, the
// Metis-like partitioner and the Graclus-like clusterer): heavy-edge
// matching, contraction, and projection of assignments back to finer
// levels.
package multilevel

import (
	"context"
	"fmt"
	"math/rand"

	"symcluster/internal/faultinject"
	"symcluster/internal/matrix"
	"symcluster/internal/obs"
)

// Level is one level of a coarsening hierarchy. Adj is the symmetric
// weighted adjacency at this level, NodeWeight the aggregated number of
// original vertices inside each coarse node, and Map the mapping from
// the previous (finer) level's nodes to this level's nodes (nil at the
// finest level).
type Level struct {
	Adj        *matrix.CSR
	NodeWeight []float64
	Map        []int32
}

// Hierarchy is a sequence of levels, finest first.
type Hierarchy struct {
	Levels []*Level
}

// Coarsest returns the last (smallest) level.
func (h *Hierarchy) Coarsest() *Level { return h.Levels[len(h.Levels)-1] }

// Depth returns the number of levels, including the finest.
func (h *Hierarchy) Depth() int { return len(h.Levels) }

// Options configures Coarsen.
type Options struct {
	// MinNodes stops coarsening when a level has at most this many
	// nodes. Defaults to 100.
	MinNodes int
	// MaxLevels bounds the hierarchy depth (finest level included).
	// Defaults to 20.
	MaxLevels int
	// Seed drives the random visit order of the matching.
	Seed int64
	// MinShrink aborts coarsening when a level shrinks by less than this
	// factor (e.g. 0.9 means "stop unless the coarse graph has < 90% of
	// the nodes"), which prevents stalling on star-like graphs.
	// Defaults to 0.95.
	MinShrink float64
}

func (o *Options) fill() {
	if o.MinNodes <= 0 {
		o.MinNodes = 100
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 20
	}
	if o.MinShrink <= 0 || o.MinShrink >= 1 {
		o.MinShrink = 0.95
	}
}

// Coarsen builds a coarsening hierarchy of the symmetric adjacency adj
// by repeated heavy-edge matching. Self-loops are preserved through
// contraction (internal edge weight accumulates on the diagonal), which
// the kernel-k-means refinement in Graclus relies on.
func Coarsen(adj *matrix.CSR, opt Options) (*Hierarchy, error) {
	return CoarsenCtx(context.Background(), adj, opt)
}

// CoarsenCtx is Coarsen with cancellation: ctx is polled before each
// level is built, so a cancelled context aborts the hierarchy within
// one matching-and-contraction round with ctx's error. Each call opens
// a "multilevel.coarsen" span and records the hierarchy depth and
// coarsest-level size through the obs hooks.
func CoarsenCtx(ctx context.Context, adj *matrix.CSR, opt Options) (hier *Hierarchy, err error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("multilevel: adjacency %dx%d not square", adj.Rows, adj.Cols)
	}
	opt.fill()
	rng := rand.New(rand.NewSource(opt.Seed))

	ctx, sp := obs.StartSpan(ctx, "multilevel.coarsen", obs.A("nodes", adj.Rows))
	h := &Hierarchy{Levels: []*Level{{Adj: adj, NodeWeight: ones(adj.Rows)}}}
	defer func() {
		sp.SetAttr("levels", h.Depth())
		sp.SetAttr("coarsest_nodes", h.Coarsest().Adj.Rows)
		sp.EndErr(err)
		if err == nil {
			obs.ObserveCoarsen(ctx, h.Depth(), h.Coarsest().Adj.Rows)
		}
	}()
	for h.Depth() < opt.MaxLevels {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faultinject.Fire("multilevel.level"); err != nil {
			return nil, fmt.Errorf("multilevel: %w", err)
		}
		cur := h.Coarsest()
		if cur.Adj.Rows <= opt.MinNodes {
			break
		}
		match := heavyEdgeMatching(cur.Adj, rng)
		next, ok := contract(cur, match, opt.MinShrink)
		if !ok {
			break
		}
		h.Levels = append(h.Levels, next)
	}
	return h, nil
}

func ones(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// heavyEdgeMatching visits nodes in random order; each unmatched node
// is matched to its unmatched neighbour with the heaviest connecting
// edge (ties broken by lower index for determinism given the visit
// order). Returns match[i] = j (with match[j] = i) or match[i] = i for
// unmatched nodes.
func heavyEdgeMatching(adj *matrix.CSR, rng *rand.Rand) []int32 {
	n := adj.Rows
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, u := range order {
		if match[u] != -1 {
			continue
		}
		cols, vals := adj.Row(u)
		best := int32(-1)
		bestW := 0.0
		for k, c := range cols {
			if int(c) == u || match[c] != -1 {
				continue
			}
			if vals[k] > bestW || (vals[k] == bestW && best != -1 && c < best) {
				best, bestW = c, vals[k]
			}
		}
		if best == -1 {
			match[u] = int32(u)
		} else {
			match[u] = best
			match[best] = int32(u)
		}
	}
	return match
}

// contract merges matched pairs into coarse nodes. Returns the new
// level and whether the contraction shrank the graph enough to be
// worth keeping.
func contract(cur *Level, match []int32, minShrink float64) (*Level, bool) {
	n := cur.Adj.Rows
	coarseID := make([]int32, n)
	for i := range coarseID {
		coarseID[i] = -1
	}
	next := int32(0)
	for i := 0; i < n; i++ {
		if coarseID[i] != -1 {
			continue
		}
		coarseID[i] = next
		if m := match[i]; int(m) != i {
			coarseID[m] = next
		}
		next++
	}
	cn := int(next)
	if float64(cn) > minShrink*float64(n) {
		return nil, false
	}

	b := matrix.NewBuilder(cn, cn)
	b.Reserve(cur.Adj.NNZ())
	for i := 0; i < n; i++ {
		cols, vals := cur.Adj.Row(i)
		ci := coarseID[i]
		for k, c := range cols {
			b.Add(int(ci), int(coarseID[c]), vals[k])
		}
	}
	weight := make([]float64, cn)
	for i := 0; i < n; i++ {
		weight[coarseID[i]] += cur.NodeWeight[i]
	}
	return &Level{Adj: b.Build(), NodeWeight: weight, Map: coarseID}, true
}

// Project maps an assignment over the nodes of h.Levels[level] down to
// the nodes of h.Levels[level-1] (one level finer).
func (h *Hierarchy) Project(level int, assign []int) []int {
	if level <= 0 || level >= h.Depth() {
		panic(fmt.Sprintf("multilevel: Project level %d outside (0,%d)", level, h.Depth()))
	}
	m := h.Levels[level].Map
	fine := make([]int, len(m))
	for i, c := range m {
		fine[i] = assign[c]
	}
	return fine
}

// ProjectToFinest maps an assignment over the coarsest level's nodes
// all the way down to the finest level.
func (h *Hierarchy) ProjectToFinest(assign []int) []int {
	for level := h.Depth() - 1; level >= 1; level-- {
		assign = h.Project(level, assign)
	}
	return assign
}
