package multilevel

import (
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

// ring builds an undirected n-cycle with unit weights.
func ring(n int) *matrix.CSR {
	b := matrix.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		b.Add(i, j, 1)
		b.Add(j, i, 1)
	}
	return b.Build()
}

// randomSym builds a random symmetric adjacency.
func randomSym(rng *rand.Rand, n int, avgDeg float64) *matrix.CSR {
	b := matrix.NewBuilder(n, n)
	edges := int(float64(n) * avgDeg / 2)
	for e := 0; e < edges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		w := 1 + rng.Float64()
		b.Add(u, v, w)
		b.Add(v, u, w)
	}
	return b.Build()
}

func TestCoarsenShrinks(t *testing.T) {
	h, err := Coarsen(ring(256), Options{MinNodes: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() < 2 {
		t.Fatal("no coarsening happened")
	}
	for l := 1; l < h.Depth(); l++ {
		if h.Levels[l].Adj.Rows >= h.Levels[l-1].Adj.Rows {
			t.Fatalf("level %d did not shrink: %d >= %d", l, h.Levels[l].Adj.Rows, h.Levels[l-1].Adj.Rows)
		}
	}
	if h.Coarsest().Adj.Rows > 32 {
		t.Fatalf("coarsest level still has %d nodes", h.Coarsest().Adj.Rows)
	}
}

func TestCoarsenPreservesTotalNodeWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	adj := randomSym(rng, 300, 6)
	h, err := Coarsen(adj, Options{MinNodes: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for l, lev := range h.Levels {
		var sum float64
		for _, w := range lev.NodeWeight {
			sum += w
		}
		if sum != 300 {
			t.Fatalf("level %d total node weight %v, want 300", l, sum)
		}
	}
}

func TestCoarsenPreservesTotalEdgeWeight(t *testing.T) {
	// Contraction folds edge weight into diagonals but never loses it:
	// the total of all entries (including diagonal) is invariant.
	rng := rand.New(rand.NewSource(4))
	adj := randomSym(rng, 200, 5)
	var total float64
	for _, v := range adj.Val {
		total += v
	}
	h, err := Coarsen(adj, Options{MinNodes: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for l, lev := range h.Levels {
		var sum float64
		for _, v := range lev.Adj.Val {
			sum += v
		}
		if diff := sum - total; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("level %d total edge weight %v, want %v", l, sum, total)
		}
	}
}

func TestCoarsenKeepsSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	adj := randomSym(rng, 150, 4)
	h, err := Coarsen(adj, Options{MinNodes: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for l, lev := range h.Levels {
		if !lev.Adj.IsSymmetric(1e-9) {
			t.Fatalf("level %d adjacency not symmetric", l)
		}
	}
}

func TestCoarsenRespectsMinNodes(t *testing.T) {
	h, err := Coarsen(ring(1000), Options{MinNodes: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The level *above* the last must exceed MinNodes.
	if h.Depth() >= 2 {
		prev := h.Levels[h.Depth()-2]
		if prev.Adj.Rows <= 200 {
			t.Fatalf("coarsening continued past MinNodes: previous level %d nodes", prev.Adj.Rows)
		}
	}
}

func TestCoarsenRejectsNonSquare(t *testing.T) {
	if _, err := Coarsen(matrix.Zero(2, 3), Options{}); err == nil {
		t.Fatal("accepted non-square adjacency")
	}
}

func TestCoarsenEdgelessGraphStops(t *testing.T) {
	// No edges: matching leaves everything unmatched, contraction
	// cannot shrink, and coarsening must stop rather than loop.
	h, err := Coarsen(matrix.Zero(50, 50), Options{MinNodes: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 1 {
		t.Fatalf("edgeless graph coarsened to depth %d", h.Depth())
	}
}

func TestProjectRoundTrip(t *testing.T) {
	h, err := Coarsen(ring(64), Options{MinNodes: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() < 2 {
		t.Fatal("need at least two levels")
	}
	coarseN := h.Coarsest().Adj.Rows
	assign := make([]int, coarseN)
	for i := range assign {
		assign[i] = i % 3
	}
	fine := h.ProjectToFinest(assign)
	if len(fine) != 64 {
		t.Fatalf("projected length %d", len(fine))
	}
	// Every fine node's cluster must equal its coarse ancestor's.
	ancestor := make([]int, 64)
	for i := range ancestor {
		ancestor[i] = i
	}
	for l := 1; l < h.Depth(); l++ {
		m := h.Levels[l].Map
		for i := range ancestor {
			ancestor[i] = int(m[ancestor[i]])
		}
	}
	for i := range fine {
		if fine[i] != assign[ancestor[i]] {
			t.Fatalf("node %d: projected %d, ancestor says %d", i, fine[i], assign[ancestor[i]])
		}
	}
}

func TestProjectPanicsOnBadLevel(t *testing.T) {
	h, _ := Coarsen(ring(32), Options{MinNodes: 4, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Project(0, nil)
}

func TestHeavyEdgeMatchingIsValidMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	adj := randomSym(rng, 120, 5)
	for seed := int64(0); seed < 5; seed++ {
		m := heavyEdgeMatching(adj, rand.New(rand.NewSource(seed)))
		for u := range m {
			v := int(m[u])
			if v < 0 || v >= len(m) {
				t.Fatalf("seed %d: match[%d] = %d out of range", seed, u, v)
			}
			if int(m[v]) != u {
				t.Fatalf("seed %d: matching not symmetric at %d↔%d", seed, u, v)
			}
			if v != u && adj.At(u, v) == 0 {
				t.Fatalf("seed %d: matched non-adjacent pair %d,%d", seed, u, v)
			}
		}
	}
}

func TestHeavyEdgeMatchingPicksHeaviestNeighbour(t *testing.T) {
	// A star where the centre's heaviest spoke must win whenever the
	// centre is visited first. With leaves having no other edges, any
	// visit order still matches the centre to SOME neighbour; when the
	// centre chooses, it must choose weight 9.
	b := matrix.NewBuilder(4, 4)
	add := func(u, v int, w float64) { b.Add(u, v, w); b.Add(v, u, w) }
	add(0, 1, 1)
	add(0, 2, 9)
	add(0, 3, 1)
	adj := b.Build()
	sawCentreChoice := false
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := heavyEdgeMatching(adj, rng)
		// If the centre was visited before any leaf, all neighbours were
		// unmatched and it must have picked node 2.
		if m[0] != 0 && m[1] == 1 && m[3] == 3 {
			sawCentreChoice = true
			if m[0] != 2 {
				t.Fatalf("seed %d: centre chose %d, want heaviest neighbour 2", seed, m[0])
			}
		}
	}
	if !sawCentreChoice {
		t.Skip("no seed visited the centre first; widen the seed range")
	}
}
