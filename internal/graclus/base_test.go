package graclus

import (
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

func TestBaseClusteringCoversAllNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	adj, _ := blockGraph(rng, 3, 15, 0.4, 0.02)
	for seed := int64(0); seed < 5; seed++ {
		assign := baseClustering(adj, 4, rand.New(rand.NewSource(seed)))
		if len(assign) != adj.Rows {
			t.Fatalf("len %d", len(assign))
		}
		for i, a := range assign {
			if a < 0 || a >= 4 {
				t.Fatalf("node %d unassigned or out of range: %d", i, a)
			}
		}
	}
}

func TestBaseClusteringDisconnectedLeftovers(t *testing.T) {
	// Graph with isolated nodes: region growing cannot reach them, the
	// round-robin fallback must.
	b := matrix.NewBuilder(10, 10)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	adj := b.Build()
	assign := baseClustering(adj, 3, rand.New(rand.NewSource(1)))
	for i, a := range assign {
		if a < 0 || a >= 3 {
			t.Fatalf("node %d out of range: %d", i, a)
		}
	}
}

func TestBaseClusteringKGreaterEqualN(t *testing.T) {
	adj := matrix.Zero(4, 4)
	assign := baseClustering(adj, 6, rand.New(rand.NewSource(2)))
	for i, a := range assign {
		if a != i%6 {
			t.Fatalf("k>=n fallback wrong at %d: %d", i, a)
		}
	}
}

func TestQuotient(t *testing.T) {
	if quotient(4, 2) != 2 {
		t.Fatal("quotient wrong")
	}
	if quotient(4, 0) != 0 {
		t.Fatal("zero denominator must yield 0")
	}
	if quotient(4, -1) != 0 {
		t.Fatal("negative denominator must yield 0")
	}
}
