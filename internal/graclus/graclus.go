// Package graclus implements a multilevel normalised-cut clusterer in
// the style of Graclus (Dhillon, Guan & Kulis, "Weighted Graph Cuts
// without Eigenvectors: A Multilevel Approach", TPAMI 2007): the graph
// is coarsened by heavy-edge matching, a base clustering is computed on
// the coarsest graph by region growing, and at every level the
// clustering is refined with weighted-kernel-k-means boundary moves
// that directly optimise the normalised cut objective — no eigenvector
// computation anywhere.
//
// The objective used throughout: minimising
//
//	NCut(C) = Σ_c cut(c)/deg(c) = k − Σ_c links(c,c)/deg(c)
//
// is equivalent to maximising Σ_c links(c,c)/deg(c), where links(c,c)
// is the total edge weight inside cluster c (self-loops included) and
// deg(c) the total weighted degree. The refinement evaluates the exact
// objective delta for moving a boundary node to any neighbouring
// cluster and applies the best strictly-improving move.
package graclus

import (
	"context"
	"fmt"
	"math/rand"

	"symcluster/internal/matrix"
	"symcluster/internal/multilevel"
)

// Options configures Cluster.
type Options struct {
	// CoarsenTo stops coarsening once the graph has at most
	// max(CoarsenTo, 4·k) nodes. Defaults to 256.
	CoarsenTo int
	// RefinePasses bounds the kernel-k-means passes per level.
	// Defaults to 10.
	RefinePasses int
	// Seed drives the randomised base clustering and coarsening.
	Seed int64
}

func (o *Options) fill() {
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 256
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 10
	}
}

// Result carries the clustering output.
type Result struct {
	// Assign maps each node to a cluster id in [0, K).
	Assign []int
	// K is the requested number of clusters.
	K int
	// NCut is the normalised cut of the final clustering.
	NCut float64
}

// Cluster partitions the symmetric weighted adjacency adj into k
// clusters minimising normalised cut.
func Cluster(adj *matrix.CSR, k int, opt Options) (*Result, error) {
	return ClusterCtx(context.Background(), adj, k, opt)
}

// ClusterCtx is Cluster with cancellation: ctx is polled before each
// coarsening level, each refinement level and each kernel-k-means pass,
// so a cancelled context aborts the clustering within one pass with
// ctx's error.
func ClusterCtx(ctx context.Context, adj *matrix.CSR, k int, opt Options) (*Result, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("graclus: adjacency %dx%d not square", adj.Rows, adj.Cols)
	}
	if k < 1 {
		return nil, fmt.Errorf("graclus: k = %d, want >= 1", k)
	}
	if k > adj.Rows && adj.Rows > 0 {
		return nil, fmt.Errorf("graclus: k = %d exceeds node count %d", k, adj.Rows)
	}
	opt.fill()
	rng := rand.New(rand.NewSource(opt.Seed))

	if adj.Rows == 0 {
		return &Result{Assign: []int{}, K: k}, nil
	}
	if k == 1 {
		return &Result{Assign: make([]int, adj.Rows), K: 1, NCut: 0}, nil
	}

	minNodes := opt.CoarsenTo
	if 4*k > minNodes {
		minNodes = 4 * k
	}
	h, err := multilevel.CoarsenCtx(ctx, adj, multilevel.Options{MinNodes: minNodes, Seed: rng.Int63()})
	if err != nil {
		return nil, fmt.Errorf("graclus: coarsening: %w", err)
	}

	coarse := h.Coarsest()
	assign := baseClustering(coarse.Adj, k, rng)
	assign = refine(ctx, coarse.Adj, assign, k, opt.RefinePasses)
	for level := h.Depth() - 1; level >= 1; level-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		assign = h.Project(level, assign)
		assign = refine(ctx, h.Levels[level-1].Adj, assign, k, opt.RefinePasses)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{Assign: assign, K: k, NCut: NCut(adj, assign, k)}, nil
}

// NCut returns the normalised cut Σ_c cut(c)/deg(c) of the assignment.
// Clusters with zero weighted degree contribute nothing.
func NCut(adj *matrix.CSR, assign []int, k int) float64 {
	cut := make([]float64, k)
	deg := make([]float64, k)
	for i := 0; i < adj.Rows; i++ {
		ci := assign[i]
		cols, vals := adj.Row(i)
		for t, c := range cols {
			deg[ci] += vals[t]
			if assign[c] != ci {
				cut[ci] += vals[t]
			}
		}
	}
	var total float64
	for c := 0; c < k; c++ {
		if deg[c] > 0 {
			total += cut[c] / deg[c]
		}
	}
	return total
}

// baseClustering produces an initial k-clustering of the coarsest graph
// by region growing from k random seeds, breadth-first with
// strongest-connection preference, then assigns leftovers arbitrarily.
func baseClustering(adj *matrix.CSR, k int, rng *rand.Rand) []int {
	n := adj.Rows
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	if k >= n {
		for i := range assign {
			assign[i] = i % k
		}
		return assign
	}
	seeds := rng.Perm(n)[:k]
	var frontier [][]int32
	frontier = make([][]int32, k)
	for c, s := range seeds {
		assign[s] = c
		frontier[c] = []int32{int32(s)}
	}
	remaining := n - k
	for remaining > 0 {
		progress := false
		for c := 0; c < k && remaining > 0; c++ {
			var next []int32
			for _, u := range frontier[c] {
				cols, _ := adj.Row(int(u))
				for _, v := range cols {
					if assign[v] == -1 {
						assign[v] = c
						remaining--
						next = append(next, v)
						progress = true
					}
				}
			}
			frontier[c] = next
		}
		if !progress {
			// Disconnected leftovers: spread them round-robin.
			c := 0
			for i := 0; i < n && remaining > 0; i++ {
				if assign[i] == -1 {
					assign[i] = c % k
					c++
					remaining--
				}
			}
		}
	}
	return assign
}

// refine performs weighted-kernel-k-means boundary passes: for each
// node adjacent to another cluster, evaluate the exact NCut delta of
// moving it to each neighbouring cluster and apply the best improving
// move. Passes repeat until no move improves or the pass budget is
// exhausted. ctx is polled once per pass; a cancelled context stops
// refining early (the caller surfaces the cancellation).
func refine(ctx context.Context, adj *matrix.CSR, assign []int, k, maxPasses int) []int {
	n := adj.Rows
	deg := adj.RowSums()

	clusterDeg := make([]float64, k)
	clusterLinks := make([]float64, k) // Σ internal edge weight, both directions + self-loops
	clusterSize := make([]int, k)
	for i := 0; i < n; i++ {
		c := assign[i]
		clusterDeg[c] += deg[i]
		clusterSize[c]++
		cols, vals := adj.Row(i)
		for t, cc := range cols {
			if assign[cc] == c {
				clusterLinks[c] += vals[t]
			}
		}
	}

	linkTo := make([]float64, k)
	var touched []int
	for pass := 0; pass < maxPasses; pass++ {
		if ctx.Err() != nil {
			break
		}
		moved := 0
		for i := 0; i < n; i++ {
			a := assign[i]
			if clusterSize[a] <= 1 {
				continue // never empty a cluster
			}
			cols, vals := adj.Row(i)
			var selfLoop float64
			touched = touched[:0]
			for t, c := range cols {
				if int(c) == i {
					selfLoop = vals[t]
					continue
				}
				cc := assign[c]
				if linkTo[cc] == 0 {
					touched = append(touched, cc)
				}
				linkTo[cc] += vals[t]
			}
			// Objective value contributed by clusters a and b before and
			// after moving i from a to b, using
			// Σ_c links(c)/deg(c) (to be maximised).
			cur := quotient(clusterLinks[a], clusterDeg[a])
			bestDelta := 0.0
			bestB := -1
			for _, b := range touched {
				if b == a {
					continue
				}
				curB := quotient(clusterLinks[b], clusterDeg[b])
				// Moving i: links(a) loses 2·linkTo[a] + selfLoop;
				// links(b) gains 2·linkTo[b] + selfLoop.
				newA := quotient(clusterLinks[a]-2*linkTo[a]-selfLoop, clusterDeg[a]-deg[i])
				newB := quotient(clusterLinks[b]+2*linkTo[b]+selfLoop, clusterDeg[b]+deg[i])
				delta := (newA + newB) - (cur + curB)
				if delta > bestDelta+1e-12 {
					bestDelta = delta
					bestB = b
				}
			}
			if bestB >= 0 {
				b := bestB
				clusterLinks[a] -= 2*linkTo[a] + selfLoop
				clusterLinks[b] += 2*linkTo[b] + selfLoop
				clusterDeg[a] -= deg[i]
				clusterDeg[b] += deg[i]
				clusterSize[a]--
				clusterSize[b]++
				assign[i] = b
				moved++
			}
			for _, c := range touched {
				linkTo[c] = 0
			}
		}
		if moved == 0 {
			break
		}
	}
	return assign
}

// quotient returns num/den, or 0 when the denominator vanishes (an
// empty or degree-less cluster contributes nothing to the objective).
func quotient(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}
