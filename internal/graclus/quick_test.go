package graclus

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"symcluster/internal/matrix"
)

// symGen generates random symmetric weighted graphs for testing/quick.
type symGen struct {
	Adj *matrix.CSR
}

// Generate implements quick.Generator.
func (symGen) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 2 + rng.Intn(40)
	b := matrix.NewBuilder(n, n)
	edges := rng.Intn(4 * n)
	for e := 0; e < edges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		w := 0.5 + rng.Float64()
		b.Add(u, v, w)
		b.Add(v, u, w)
	}
	return reflect.ValueOf(symGen{Adj: b.Build()})
}

func TestQuickClusterAlwaysValid(t *testing.T) {
	f := func(g symGen, kRaw uint8, seed int64) bool {
		n := g.Adj.Rows
		k := 1 + int(kRaw)%n
		res, err := Cluster(g.Adj, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		if len(res.Assign) != n || res.K != k {
			return false
		}
		for _, a := range res.Assign {
			if a < 0 || a >= k {
				return false
			}
		}
		// NCut is within [0, k].
		return res.NCut >= 0 && res.NCut <= float64(k)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNCutMatchesEvalConvention(t *testing.T) {
	// Internal NCut and a recomputation from scratch agree.
	f := func(g symGen, seed int64) bool {
		n := g.Adj.Rows
		if n < 2 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		k := 2
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		got := NCut(g.Adj, assign, k)
		// Reference: per cluster, cut/deg.
		cut := make([]float64, k)
		deg := make([]float64, k)
		for i := 0; i < n; i++ {
			cols, vals := g.Adj.Row(i)
			for t2, c := range cols {
				deg[assign[i]] += vals[t2]
				if assign[c] != assign[i] {
					cut[assign[i]] += vals[t2]
				}
			}
		}
		var want float64
		for c := 0; c < k; c++ {
			if deg[c] > 0 {
				want += cut[c] / deg[c]
			}
		}
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
