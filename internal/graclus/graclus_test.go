package graclus

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
)

func blockGraph(rng *rand.Rand, k, sz int, pin, pout float64) (*matrix.CSR, []int) {
	n := k * sz
	truth := make([]int, n)
	for i := range truth {
		truth[i] = i / sz
	}
	b := matrix.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pout
			if truth[i] == truth[j] {
				p = pin
			}
			if rng.Float64() < p {
				b.Add(i, j, 1)
				b.Add(j, i, 1)
			}
		}
	}
	return b.Build(), truth
}

func TestClusterValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	adj, _ := blockGraph(rng, 4, 25, 0.4, 0.02)
	res, err := Cluster(adj, 4, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 || len(res.Assign) != 100 {
		t.Fatalf("K=%d len=%d", res.K, len(res.Assign))
	}
	for _, a := range res.Assign {
		if a < 0 || a >= 4 {
			t.Fatalf("cluster id %d out of range", a)
		}
	}
}

func TestClusterRecoversBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	adj, _ := blockGraph(rng, 4, 25, 0.5, 0.01)
	res, err := Cluster(adj, 4, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for blk := 0; blk < 4; blk++ {
		counts := map[int]int{}
		for i := blk * 25; i < (blk+1)*25; i++ {
			counts[res.Assign[i]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		if best < 20 {
			t.Fatalf("block %d scattered: %v", blk, counts)
		}
	}
}

func TestClusterNCutBeatsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	adj, _ := blockGraph(rng, 4, 30, 0.4, 0.02)
	res, err := Cluster(adj, 4, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	randAssign := make([]int, adj.Rows)
	for i := range randAssign {
		randAssign[i] = rng.Intn(4)
	}
	if res.NCut >= NCut(adj, randAssign, 4) {
		t.Fatalf("graclus ncut %v not below random %v", res.NCut, NCut(adj, randAssign, 4))
	}
}

func TestClusterK1(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	adj, _ := blockGraph(rng, 2, 10, 0.5, 0.1)
	res, err := Cluster(adj, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assign {
		if a != 0 {
			t.Fatal("k=1 must be a single cluster")
		}
	}
	if res.NCut != 0 {
		t.Fatalf("k=1 ncut = %v", res.NCut)
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(matrix.Zero(2, 3), 2, Options{}); err == nil {
		t.Fatal("accepted non-square")
	}
	if _, err := Cluster(matrix.Zero(3, 3), 0, Options{}); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := Cluster(matrix.Zero(3, 3), 5, Options{}); err == nil {
		t.Fatal("accepted k>n")
	}
}

func TestClusterEmptyAndEdgeless(t *testing.T) {
	res, err := Cluster(matrix.Zero(0, 0), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 0 {
		t.Fatalf("empty graph assign len %d", len(res.Assign))
	}
	res2, err := Cluster(matrix.Zero(10, 10), 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Assign) != 10 {
		t.Fatalf("assign len %d", len(res2.Assign))
	}
}

func TestClusterDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	adj, _ := blockGraph(rng, 3, 20, 0.5, 0.05)
	a, _ := Cluster(adj, 3, Options{Seed: 9})
	b, _ := Cluster(adj, 3, Options{Seed: 9})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestNCutTwoTriangles(t *testing.T) {
	// Two triangles joined by a single unit edge. Perfect split:
	// cut = 1 each side, deg = 2·3+1 = 7 per side → ncut = 2/7.
	b := matrix.NewBuilder(6, 6)
	add := func(u, v int) { b.Add(u, v, 1); b.Add(v, u, 1) }
	add(0, 1)
	add(1, 2)
	add(0, 2)
	add(3, 4)
	add(4, 5)
	add(3, 5)
	add(2, 3)
	adj := b.Build()
	got := NCut(adj, []int{0, 0, 0, 1, 1, 1}, 2)
	if math.Abs(got-2.0/7.0) > 1e-12 {
		t.Fatalf("ncut = %v, want 2/7", got)
	}
}

func TestRefineFindsNaturalSplit(t *testing.T) {
	b := matrix.NewBuilder(6, 6)
	add := func(u, v int) { b.Add(u, v, 1); b.Add(v, u, 1) }
	add(0, 1)
	add(1, 2)
	add(0, 2)
	add(3, 4)
	add(4, 5)
	add(3, 5)
	add(2, 3)
	adj := b.Build()
	bad := []int{0, 1, 0, 1, 0, 1}
	refined := refine(context.Background(), adj, append([]int(nil), bad...), 2, 20)
	if got := NCut(adj, refined, 2); math.Abs(got-2.0/7.0) > 1e-9 {
		t.Fatalf("refined ncut = %v, want 2/7", got)
	}
}

func TestRefineNeverEmptiesCluster(t *testing.T) {
	// A graph where one cluster wants to absorb everything; the other
	// must keep at least one node.
	b := matrix.NewBuilder(4, 4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.Add(i, j, 1)
			b.Add(j, i, 1)
		}
	}
	assign := refine(context.Background(), b.Build(), []int{0, 0, 0, 1}, 2, 50)
	counts := map[int]int{}
	for _, a := range assign {
		counts[a]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("refine emptied a cluster: %v", assign)
	}
}

func TestRefineImprovesMonotonically(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	adj, _ := blockGraph(rng, 3, 20, 0.5, 0.05)
	assign := make([]int, adj.Rows)
	for i := range assign {
		assign[i] = rng.Intn(3)
	}
	before := NCut(adj, assign, 3)
	after := NCut(adj, refine(context.Background(), adj, assign, 3, 10), 3)
	if after > before+1e-9 {
		t.Fatalf("refine worsened ncut: %v -> %v", before, after)
	}
}
