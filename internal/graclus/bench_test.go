package graclus

import (
	"math/rand"
	"testing"
)

func BenchmarkClusterK8(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	adj, _ := blockGraph(rng, 8, 80, 0.15, 0.004)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(adj, 8, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterK64(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	adj, _ := blockGraph(rng, 16, 60, 0.15, 0.004)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(adj, 64, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
