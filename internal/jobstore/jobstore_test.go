package jobstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"symcluster/internal/faultinject"
)

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func createJob(t *testing.T, s *Store, id, key string) {
	t.Helper()
	err := s.Create(&JobRecord{
		ID:             id,
		State:          Pending,
		IdempotencyKey: key,
		Request:        json.RawMessage(`{"algorithm":"mcl"}`),
		Created:        time.Unix(1000, 0),
	})
	if err != nil {
		t.Fatalf("Create(%s): %v", id, err)
	}
}

func TestReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	createJob(t, s, "job-000001", "k1")
	if err := s.Start("job-000001", "", time.Unix(1001, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCheckpoint("job-000001", "mcl", Checkpoint{Seq: 1, Iter: 7, Blob: []byte("flow")}); err != nil {
		t.Fatal(err)
	}
	createJob(t, s, "job-000002", "")
	if err := s.Finish("job-000002", Done, json.RawMessage(`{"k":3}`), "", nil, time.Unix(1002, 0)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := mustOpen(t, dir)
	jobs := r.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	// The running job was interrupted: replay re-marks it pending with
	// its checkpoint intact.
	j1, ok := r.Lookup("job-000001")
	if !ok || j1.State != Pending {
		t.Fatalf("job-000001 = %+v, %v; want pending", j1, ok)
	}
	ck, ok := j1.Checkpoints["mcl"]
	if !ok || ck.Iter != 7 || ck.Seq != 1 || string(ck.Blob) != "flow" {
		t.Fatalf("checkpoint = %+v, %v", ck, ok)
	}
	if j1.IdempotencyKey != "k1" {
		t.Fatalf("idempotency key = %q", j1.IdempotencyKey)
	}
	j2, _ := r.Lookup("job-000002")
	if j2.State != Done || string(j2.Result) != `{"k":3}` {
		t.Fatalf("job-000002 = %+v", j2)
	}
	if j2.Checkpoints != nil {
		t.Fatal("finished job retained checkpoints")
	}
	if r.MaxSeq() != 2 {
		t.Fatalf("MaxSeq = %d, want 2", r.MaxSeq())
	}
}

// TestTornTailTruncation is the satellite torn-write drill: with a WAL
// holding intact records plus one final record, truncating the file at
// EVERY byte boundary of the last record must (a) never panic, (b)
// never resurrect the truncated record, and (c) keep every earlier
// record intact.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	createJob(t, s, "job-000001", "")
	if err := s.Start("job-000001", "", time.Unix(1001, 0)); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "wal")
	before, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// The last record: job-000002's create.
	createJob(t, s, "job-000002", "")
	s.Close()
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(before) {
		t.Fatalf("wal did not grow: %d -> %d", len(before), len(full))
	}

	for cut := len(before); cut < len(full); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			tdir := t.TempDir()
			if err := os.MkdirAll(filepath.Join(tdir, "graphs"), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(tdir, "wal"), full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			r := mustOpen(t, tdir)
			if _, ok := r.Lookup("job-000002"); ok {
				t.Fatal("torn create record resurrected a job")
			}
			j, ok := r.Lookup("job-000001")
			if !ok {
				t.Fatal("intact prefix record lost")
			}
			// Interrupted running job comes back pending.
			if j.State != Pending {
				t.Fatalf("state = %s, want pending", j.State)
			}
			// The healed log accepts appends and they survive a reopen.
			createJob(t, r, "job-000003", "")
			r.Close()
			r2 := mustOpen(t, tdir)
			if _, ok := r2.Lookup("job-000003"); !ok {
				t.Fatal("append after truncation lost")
			}
		})
	}
}

// A frame that passes its CRC but holds garbage JSON is treated as a
// torn tail, not applied.
func TestCorruptJSONRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	createJob(t, s, "job-000001", "")
	s.Close()
	w, _, err := openWAL(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append([]byte("{not json")); err != nil {
		t.Fatal(err)
	}
	w.close()
	r := mustOpen(t, dir)
	if len(r.Jobs()) != 1 {
		t.Fatalf("jobs = %d, want 1", len(r.Jobs()))
	}
}

func TestCompactionShrinksAndPreservesState(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	for i := 1; i <= 20; i++ {
		id := fmt.Sprintf("job-%06d", i)
		createJob(t, s, id, "")
		if err := s.Start(id, "", time.Unix(int64(1000+i), 0)); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := s.Finish(id, Done, json.RawMessage(`{"k":1}`), "", nil, time.Unix(int64(2000+i), 0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 2; i <= 20; i += 4 {
		if err := s.Drop(fmt.Sprintf("job-%06d", i)); err != nil {
			t.Fatal(err)
		}
	}
	grown := s.LogBytes()
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if s.LogBytes() >= grown {
		t.Fatalf("compaction did not shrink the log: %d -> %d", grown, s.LogBytes())
	}
	if s.Compactions() != 1 {
		t.Fatalf("compactions = %d", s.Compactions())
	}
	want := make(map[string]State)
	for _, j := range s.Jobs() {
		st := j.State
		if st == Running {
			// Reopen coerces interrupted running jobs back to pending.
			st = Pending
		}
		want[j.ID] = st
	}
	// Post-compaction appends land in the new log.
	createJob(t, s, "job-000099", "")
	s.Close()

	r := mustOpen(t, dir)
	for id, st := range want {
		j, ok := r.Lookup(id)
		if !ok || j.State != st {
			t.Fatalf("after compaction job %s = %+v, %v; want state %s", id, j, ok, st)
		}
	}
	if _, ok := r.Lookup("job-000099"); !ok {
		t.Fatal("append after compaction lost")
	}
}

func TestAutoCompactionOnThreshold(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	s.CompactThreshold = 2048
	for i := 1; i <= 50; i++ {
		id := fmt.Sprintf("job-%06d", i)
		createJob(t, s, id, "")
		if err := s.Finish(id, Done, nil, "", nil, time.Unix(int64(2000+i), 0)); err != nil {
			t.Fatal(err)
		}
		if err := s.Drop(id); err != nil {
			t.Fatal(err)
		}
	}
	if s.Compactions() == 0 {
		t.Fatal("threshold never triggered a compaction")
	}
	if s.LogBytes() > 2048+1024 {
		t.Fatalf("log still %d bytes after auto compaction", s.LogBytes())
	}
}

func TestFaultInjectAppendAndCompact(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s := mustOpen(t, dir)
	createJob(t, s, "job-000001", "")

	faultinject.Set("jobstore.append", faultinject.Fault{Mode: faultinject.Error})
	if err := s.Start("job-000001", "", time.Unix(1001, 0)); err == nil {
		t.Fatal("injected append fault not surfaced")
	}
	faultinject.Clear("jobstore.append")
	// The failed append must not have mutated the mirror.
	if j, _ := s.Lookup("job-000001"); j.State != Pending {
		t.Fatalf("state = %s after failed append, want pending", j.State)
	}

	faultinject.Set("jobstore.compact", faultinject.Fault{Mode: faultinject.Error})
	if err := s.Compact(); err == nil {
		t.Fatal("injected compact fault not surfaced")
	}
	faultinject.Clear("jobstore.compact")
	// The old log is intact: a reopen still replays the job.
	s.Close()
	r := mustOpen(t, dir)
	if _, ok := r.Lookup("job-000001"); !ok {
		t.Fatal("failed compaction lost the log")
	}
}

func TestGraphPersistence(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.SaveGraph("g-abc", []byte("0 1\n1 0\n")); err != nil {
		t.Fatal(err)
	}
	// Idempotent: same content-derived id, second save is a no-op.
	if err := s.SaveGraph("g-abc", []byte("ignored")); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveGraph("../evil", []byte("x")); err == nil {
		t.Fatal("path-escaping graph id accepted")
	}
	got := map[string]string{}
	if err := s.ForEachGraph(func(id string, data []byte) error {
		got[id] = string(data)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["g-abc"] != "0 1\n1 0\n" {
		t.Fatalf("graphs = %v", got)
	}
}

func TestImportGraphFile(t *testing.T) {
	src := filepath.Join(t.TempDir(), "donor.csr")
	if err := os.WriteFile(src, []byte("fake csr bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, t.TempDir())
	dst, err := s.ImportGraphFile("g-import", src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil || string(got) != "fake csr bytes" {
		t.Fatalf("imported content = %q, %v", got, err)
	}
	// The source stays in place: the donor store may come back for it.
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("source removed by import: %v", err)
	}
	// Re-import is a no-op (content-derived ids: present == correct).
	if _, err := s.ImportGraphFile("g-import", src); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ImportGraphFile("../evil", src); err == nil {
		t.Fatal("path-escaping graph id accepted")
	}
	if _, err := s.ImportGraphFile("g-missing", filepath.Join(t.TempDir(), "nope.csr")); err == nil {
		t.Fatal("missing source accepted")
	}
}

func TestJobSeqParsing(t *testing.T) {
	for id, want := range map[string]int64{
		"job-000042": 42,
		"job-1":      1,
		"weird":      0,
		"job-x":      0,
	} {
		if got := jobSeq(id); got != want {
			t.Fatalf("jobSeq(%q) = %d, want %d", id, got, want)
		}
	}
}
