package jobstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// WAL framing. Each record is one frame:
//
//	u32 payload length (little-endian)
//	u32 CRC32 (IEEE) of the payload
//	payload bytes
//
// Appends write the whole frame with a single write(2) followed by
// fsync, so a crash leaves at most one torn frame at the tail. Replay
// scans frames front to back and stops at the first frame whose length
// header overruns the file or whose checksum fails; everything from
// that point on is a torn tail and is truncated away, which is safe
// because frames are only ever appended.
//
// Corruption contract — halt, never skip. A bad frame ANYWHERE in the
// file, mid-file bit rot included, ends replay at that frame: the
// intact prefix is kept, everything from the bad frame on is
// discarded and truncated so appends restart at a known-good
// boundary. Skipping past a bad frame is deliberately not attempted:
// with length-prefixed framing a corrupt length header poisons every
// downstream frame boundary, so "the next frame" cannot be trusted —
// and resynchronizing heuristically could resurrect stale records
// (e.g. re-running a finished job, or reviving a canceled one that a
// cluster peer already adopted). Losing the suffix is always safe:
// the store's records are monotonic per job, so a truncated suffix
// can only roll a job back to an earlier state, which replay already
// handles (Running replays as Pending). TestReplayHaltsAtMidFileCorruption
// asserts this contract.

const (
	frameHeaderBytes = 8
	// maxFrameBytes defends replay against a corrupt length header
	// asking for gigabytes: any frame claiming more than this is torn.
	maxFrameBytes = 256 << 20
)

// wal is an append-only framed log file.
type wal struct {
	f     *os.File
	path  string
	bytes int64
}

// openWAL opens (creating if absent) the log at path, replays every
// intact frame, truncates any torn tail, and returns the log
// positioned for appending plus the replayed payloads in append order.
func openWAL(path string) (*wal, [][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("jobstore: reading wal: %w", err)
	}
	payloads, valid := scanFrames(data)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobstore: opening wal: %w", err)
	}
	if int64(len(data)) > valid {
		// Torn tail from a crash mid-append: cut it so the next append
		// starts at a frame boundary.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("jobstore: truncating torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("jobstore: syncing truncated wal: %w", err)
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("jobstore: seeking wal tail: %w", err)
	}
	return &wal{f: f, path: path, bytes: valid}, payloads, nil
}

// scanFrames walks the framed payloads in data and returns every intact
// payload plus the byte offset where the intact prefix ends.
func scanFrames(data []byte) (payloads [][]byte, valid int64) {
	off := 0
	for off+frameHeaderBytes <= len(data) {
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxFrameBytes || off+frameHeaderBytes+int(n) > len(data) {
			break
		}
		payload := data[off+frameHeaderBytes : off+frameHeaderBytes+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		payloads = append(payloads, payload)
		off += frameHeaderBytes + int(n)
	}
	return payloads, int64(off)
}

// append frames and writes one payload, then fsyncs. On a write error
// the file is truncated back to the last known-good boundary so a
// partial frame never lingers ahead of the append cursor.
func (w *wal) append(payload []byte) error {
	frame := make([]byte, frameHeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderBytes:], payload)
	if _, err := w.f.Write(frame); err != nil {
		w.f.Truncate(w.bytes)
		w.f.Seek(w.bytes, 0)
		return fmt.Errorf("jobstore: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("jobstore: wal sync: %w", err)
	}
	w.bytes += int64(len(frame))
	return nil
}

// close releases the file handle.
func (w *wal) close() error { return w.f.Close() }

// frameSize returns the on-disk size of a payload once framed.
func frameSize(payload []byte) int64 { return int64(frameHeaderBytes + len(payload)) }
