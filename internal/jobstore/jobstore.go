// Package jobstore is the durability layer under symclusterd's async
// jobs: a write-ahead-logged, fsync'd on-disk store of job lifecycle
// records plus the kernel checkpoints that let an interrupted run
// resume mid-iteration. internal/server keeps its in-memory job map as
// the fast read path and journals every mutation here; on startup the
// replayed records rebuild that map and re-enqueue interrupted work.
//
// Layout under the data directory:
//
//	wal           the job journal (framed records, see wal.go)
//	graphs/       one edge-list file per registered graph, written
//	              atomically (tmp + fsync + rename), so replayed jobs
//	              can re-resolve their graph after a restart
//
// The WAL is length-prefixed and CRC32-framed; replay truncates any
// torn tail (a crash mid-append) at the last intact frame, so a crash
// can lose at most the record being written — it can never corrupt or
// resurrect a job. Records are JSON inside the frame: the volume is a
// handful of records per job, so debuggability beats density.
//
// Compaction rewrites the log as one snapshot record per live job once
// the file grows past CompactThreshold, bounding disk usage under
// long-running churn. The rewrite goes to a temporary file that is
// fsync'd and renamed over the log, so a crash mid-compaction leaves
// either the old log or the new one, never a mix.
//
// Fault injection: the "jobstore.append" site fires before every WAL
// append and "jobstore.compact" before every compaction rewrite, so
// chaos tests can exercise torn writes and failed compactions.
package jobstore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"symcluster/internal/faultinject"
)

// State is the persisted lifecycle phase of a job. The values mirror
// internal/server's JobState; jobstore keeps its own copy so the
// dependency points upward only.
type State string

// Job lifecycle states as persisted.
const (
	Pending  State = "pending"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
)

// Checkpoint is one kernel checkpoint: the serialized mid-iteration
// state of a compute kernel ("mcl" flow matrix, "walk" π vector).
type Checkpoint struct {
	// Seq is which invocation of the kernel within the job produced the
	// checkpoint (1-based): a job may run the same kernel more than once
	// (e.g. two power-iteration solves), and a checkpoint must only be
	// restored into the invocation that wrote it.
	Seq int `json:"seq"`
	// Iter is the number of kernel iterations completed at the moment of
	// the checkpoint; the restored run resumes there.
	Iter int `json:"iter"`
	// Blob is the kernel-defined serialized state.
	Blob []byte `json:"blob"`
}

// JobRecord is the durable state of one job, as rebuilt by replay.
type JobRecord struct {
	ID             string `json:"id"`
	State          State  `json:"state"`
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Request is the original ClusterRequest JSON, replayed on startup
	// to rebuild the run.
	Request json.RawMessage `json:"request,omitempty"`
	// Result is the ClusterResponse JSON of a done job, so results
	// survive restarts and idempotent retries of finished work are
	// answered without recomputing.
	Result   json.RawMessage `json:"result,omitempty"`
	Err      string          `json:"err,omitempty"`
	Created  time.Time       `json:"created"`
	Started  time.Time       `json:"started,omitempty"`
	Finished time.Time       `json:"finished,omitempty"`
	// TraceID is the distributed-trace id the job ran (or is running)
	// under, journaled at start. A surviving node that adopts this job
	// after a crash records it as the adopted run's trace link, so the
	// new trace still points back at the original lineage.
	TraceID string `json:"trace_id,omitempty"`
	// LinkTraceID is the originating trace of an adopted job (the dead
	// owner's TraceID), carried so the link survives adopter restarts.
	LinkTraceID string `json:"link_trace_id,omitempty"`
	// Stats is the job's resource accounting (obs.JobStatsSnapshot
	// JSON), journaled at finish so per-job cost attribution survives
	// restarts alongside the result.
	Stats json.RawMessage `json:"stats,omitempty"`
	// Checkpoints holds the latest checkpoint per kernel for a job that
	// has not finished; cleared on finish.
	Checkpoints map[string]Checkpoint `json:"checkpoints,omitempty"`
}

// record is one WAL entry. Op selects which fields are meaningful.
type record struct {
	// Op is "create", "start", "requeue", "checkpoint", "finish",
	// "drop", or "snapshot" (compaction's whole-job form).
	Op   string    `json:"op"`
	Time time.Time `json:"time,omitempty"`
	// Job carries the full record for create and snapshot.
	Job *JobRecord `json:"job,omitempty"`
	// ID addresses every other op.
	ID     string          `json:"id,omitempty"`
	Kernel string          `json:"kernel,omitempty"`
	Ckpt   *Checkpoint     `json:"ckpt,omitempty"`
	State  State           `json:"state,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Err    string          `json:"err,omitempty"`
	// Trace rides the start op; Stats rides the finish op.
	Trace string          `json:"trace,omitempty"`
	Stats json.RawMessage `json:"stats,omitempty"`
}

// Store is the WAL-backed job store. All methods are safe for
// concurrent use. The in-memory record map mirrors the log exactly and
// exists so compaction can rewrite the live set without re-reading the
// file.
type Store struct {
	// CompactThreshold is the log size in bytes past which appends
	// trigger a compaction (set before concurrent use; defaults to
	// 4 MiB in Open).
	CompactThreshold int64

	mu     sync.Mutex
	dir    string
	w      *wal
	jobs   map[string]*JobRecord
	order  []string // creation order, for deterministic replay
	maxSeq int64

	appends     int64
	compactions int64
}

// Open opens (creating if needed) the store rooted at dir, replays the
// WAL — truncating any torn tail — and returns the store ready for
// appends. Jobs that were running when the previous process died are
// re-marked pending: they will be re-enqueued, not silently lost.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "graphs"), 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: creating data dir: %w", err)
	}
	w, payloads, err := openWAL(filepath.Join(dir, "wal"))
	if err != nil {
		return nil, err
	}
	s := &Store{
		CompactThreshold: 4 << 20,
		dir:              dir,
		w:                w,
		jobs:             make(map[string]*JobRecord),
	}
	for _, p := range payloads {
		var rec record
		if err := json.Unmarshal(p, &rec); err != nil {
			// A frame that passes its checksum but does not decode is
			// treated exactly like a torn tail: stop replaying here.
			// Better to lose the suffix than resurrect a corrupt job.
			break
		}
		s.applyLocked(&rec)
	}
	// Running jobs were interrupted by the crash or kill: they resume
	// as pending so the caller re-enqueues them.
	interrupted := false
	for _, j := range s.jobs {
		if j.State == Running {
			j.State = Pending
			interrupted = true
		}
	}
	// Compact on open when the log has grown well past its live state
	// (or if interrupted-job states need rewriting anyway and the log
	// is already over threshold).
	if s.w.bytes > s.CompactThreshold || (interrupted && s.w.bytes > s.CompactThreshold/2) {
		if err := s.compactLocked(); err != nil {
			s.w.close()
			return nil, err
		}
	}
	return s, nil
}

// applyLocked folds one replayed or freshly appended record into the
// in-memory mirror.
func (s *Store) applyLocked(rec *record) {
	switch rec.Op {
	case "create", "snapshot":
		if rec.Job == nil || rec.Job.ID == "" {
			return
		}
		j := *rec.Job
		if j.State == "" {
			j.State = Pending
		}
		if _, exists := s.jobs[j.ID]; !exists {
			s.order = append(s.order, j.ID)
		}
		s.jobs[j.ID] = &j
		if seq := jobSeq(j.ID); seq > s.maxSeq {
			s.maxSeq = seq
		}
	case "start":
		if j := s.jobs[rec.ID]; j != nil {
			j.State = Running
			j.Started = rec.Time
			if rec.Trace != "" {
				j.TraceID = rec.Trace
			}
		}
	case "requeue":
		if j := s.jobs[rec.ID]; j != nil {
			j.State = Pending
			j.Started = time.Time{}
		}
	case "checkpoint":
		if j := s.jobs[rec.ID]; j != nil && rec.Ckpt != nil {
			if j.Checkpoints == nil {
				j.Checkpoints = make(map[string]Checkpoint)
			}
			j.Checkpoints[rec.Kernel] = *rec.Ckpt
		}
	case "finish":
		if j := s.jobs[rec.ID]; j != nil {
			j.State = rec.State
			j.Result = rec.Result
			j.Err = rec.Err
			j.Stats = rec.Stats
			j.Finished = rec.Time
			j.Checkpoints = nil // resumable state is dead weight now
		}
	case "drop":
		if _, ok := s.jobs[rec.ID]; ok {
			delete(s.jobs, rec.ID)
			for i, id := range s.order {
				if id == rec.ID {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
		}
	}
}

// jobSeq parses the numeric suffix of a "job-NNNNNN" id, so the id
// sequence resumes past every replayed job after a restart.
func jobSeq(id string) int64 {
	suffix, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0
	}
	n, err := strconv.ParseInt(suffix, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// appendLocked journals one record (fault-injectable at
// "jobstore.append") and folds it into the mirror only after the write
// succeeded, so memory never runs ahead of disk.
func (s *Store) appendLocked(rec *record) error {
	if err := faultinject.Fire("jobstore.append"); err != nil {
		return fmt.Errorf("jobstore: append: %w", err)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobstore: encoding record: %w", err)
	}
	if err := s.w.append(payload); err != nil {
		return err
	}
	s.appends++
	s.applyLocked(rec)
	return nil
}

// Create journals a new job. The record's ID, Created time and state
// must be set by the caller (state defaults to pending).
func (s *Store) Create(j *JobRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(&record{Op: "create", Job: j})
}

// Start journals the pending→running transition, recording the trace
// id the run joined (empty is allowed; the last non-empty one wins
// across requeue/resume cycles).
func (s *Store) Start(id, traceID string, t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(&record{Op: "start", ID: id, Trace: traceID, Time: t})
}

// Requeue journals a preempted job going back to pending (graceful
// drain checkpointed it; the next boot finishes it).
func (s *Store) Requeue(id string, t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(&record{Op: "requeue", ID: id, Time: t})
}

// SaveCheckpoint journals the latest checkpoint of one kernel
// invocation within a job, replacing any previous checkpoint for that
// kernel.
func (s *Store) SaveCheckpoint(id, kernel string, ck Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(&record{Op: "checkpoint", ID: id, Kernel: kernel, Ckpt: &ck})
}

// Finish journals the terminal state of a job (done/failed/canceled)
// with its result or error and its resource-accounting snapshot, then
// compacts if the log has outgrown its threshold — finishes are where
// checkpoint weight becomes garbage.
func (s *Store) Finish(id string, state State, result json.RawMessage, errMsg string, stats json.RawMessage, t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(&record{Op: "finish", ID: id, State: state, Result: result, Err: errMsg, Stats: stats, Time: t}); err != nil {
		return err
	}
	return s.maybeCompactLocked()
}

// Drop journals the removal of a job (retention eviction or TTL
// expiry).
func (s *Store) Drop(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(&record{Op: "drop", ID: id}); err != nil {
		return err
	}
	return s.maybeCompactLocked()
}

// Jobs returns a deep copy of every live record in creation order —
// the replay surface the server rebuilds its job map from.
func (s *Store) Jobs() []*JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*JobRecord, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			out = append(out, copyRecord(j))
		}
	}
	return out
}

// Lookup returns a deep copy of one record.
func (s *Store) Lookup(id string) (*JobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return copyRecord(j), true
}

func copyRecord(j *JobRecord) *JobRecord {
	c := *j
	if j.Checkpoints != nil {
		c.Checkpoints = make(map[string]Checkpoint, len(j.Checkpoints))
		for k, v := range j.Checkpoints {
			c.Checkpoints[k] = v
		}
	}
	return &c
}

// MaxSeq returns the highest numeric job-id suffix seen, so a restarted
// server's id sequence never collides with a replayed job.
func (s *Store) MaxSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxSeq
}

// maybeCompactLocked compacts when the log has outgrown its threshold.
func (s *Store) maybeCompactLocked() error {
	if s.CompactThreshold > 0 && s.w.bytes > s.CompactThreshold {
		return s.compactLocked()
	}
	return nil
}

// Compact rewrites the log as one snapshot record per live job.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// compactLocked writes the snapshot to wal.compacting, fsyncs it, and
// renames it over the log — crash-atomic on POSIX filesystems. The
// "jobstore.compact" fault site fires before any byte is written, and
// any error aborts with the old log intact.
func (s *Store) compactLocked() error {
	if err := faultinject.Fire("jobstore.compact"); err != nil {
		return fmt.Errorf("jobstore: compact: %w", err)
	}
	tmpPath := filepath.Join(s.dir, "wal.compacting")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: compact: %w", err)
	}
	nw := &wal{f: tmp, path: tmpPath}
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		payload, err := json.Marshal(&record{Op: "snapshot", Job: j})
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("jobstore: compact: %w", err)
		}
		if err := nw.append(payload); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("jobstore: compact: %w", err)
	}
	walPath := filepath.Join(s.dir, "wal")
	if err := os.Rename(tmpPath, walPath); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("jobstore: compact: %w", err)
	}
	syncDir(s.dir)
	s.w.close()
	nw.path = walPath
	s.w = nw
	s.compactions++
	return nil
}

// syncDir fsyncs a directory so a just-renamed file is durable. Errors
// are ignored: the rename already happened and some filesystems refuse
// directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close releases the WAL handle. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.close()
}

// LogBytes returns the current WAL size, for the wal-bytes gauge.
func (s *Store) LogBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.bytes
}

// Appends returns the number of records journaled since Open.
func (s *Store) Appends() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appends
}

// Compactions returns the number of compactions performed since Open.
func (s *Store) Compactions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactions
}

// SaveGraph persists a registered graph's edge-list bytes under the
// graphs/ directory, atomically (tmp + fsync + rename). Graph ids are
// content-derived, so an already-present file is already correct and
// the save is a no-op.
func (s *Store) SaveGraph(id string, data []byte) error {
	if id == "" || strings.ContainsAny(id, "/\\") {
		return fmt.Errorf("jobstore: bad graph id %q", id)
	}
	path := filepath.Join(s.dir, "graphs", id+".edges")
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: saving graph: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobstore: saving graph: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobstore: saving graph: %w", err)
	}
	f.Close()
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobstore: saving graph: %w", err)
	}
	syncDir(filepath.Join(s.dir, "graphs"))
	return nil
}

// ForEachGraph calls fn with every persisted graph's id and edge-list
// bytes, in sorted id order. A fn error stops the walk.
func (s *Store) ForEachGraph(fn func(id string, data []byte) error) error {
	dir := filepath.Join(s.dir, "graphs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("jobstore: listing graphs: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".edges") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("jobstore: reading graph %s: %w", name, err)
		}
		if err := fn(strings.TrimSuffix(name, ".edges"), data); err != nil {
			return err
		}
	}
	return nil
}

// GraphCSRPath returns where graph id's binary CSR file lives (or
// would live). It does not check existence.
func (s *Store) GraphCSRPath(id string) string {
	return filepath.Join(s.dir, "graphs", id+".csr")
}

// AdoptGraphFile moves an already-written binary CSR file (produced by
// a csr.Writer, so already fsynced) into the graphs/ directory as
// graph id. The rename preserves the inode: any live memory mapping of
// srcPath stays valid at the new path. An already-present destination
// wins — graph ids are content-derived — and srcPath is removed.
func (s *Store) AdoptGraphFile(id, srcPath string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\") {
		return "", fmt.Errorf("jobstore: bad graph id %q", id)
	}
	dst := s.GraphCSRPath(id)
	if _, err := os.Stat(dst); err == nil {
		os.Remove(srcPath)
		return dst, nil
	}
	if err := os.Rename(srcPath, dst); err != nil {
		return "", fmt.Errorf("jobstore: adopting graph file: %w", err)
	}
	syncDir(filepath.Join(s.dir, "graphs"))
	return dst, nil
}

// ImportGraphFile brings a binary CSR file from another store into
// this one's graphs/ directory as graph id, leaving the source in
// place (the exporting store may come back and still own it — WAL
// adoption imports from a dead peer's directory). Same-filesystem
// imports hardlink (no copy, shared immutable content); across
// filesystems the file is copied through a tmp name and renamed so a
// crash never leaves a half-written graph under its final name. An
// already-present destination wins — graph ids are content-derived.
func (s *Store) ImportGraphFile(id, srcPath string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\") {
		return "", fmt.Errorf("jobstore: bad graph id %q", id)
	}
	dst := s.GraphCSRPath(id)
	if _, err := os.Stat(dst); err == nil {
		return dst, nil
	}
	if err := os.Link(srcPath, dst); err == nil {
		syncDir(filepath.Join(s.dir, "graphs"))
		return dst, nil
	}
	src, err := os.Open(srcPath)
	if err != nil {
		return "", fmt.Errorf("jobstore: importing graph file: %w", err)
	}
	defer src.Close()
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "graphs"), id+".import-*")
	if err != nil {
		return "", fmt.Errorf("jobstore: importing graph file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := io.Copy(tmp, src); err != nil {
		tmp.Close()
		return "", fmt.Errorf("jobstore: copying graph file: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("jobstore: syncing imported graph: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("jobstore: closing imported graph: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return "", fmt.Errorf("jobstore: importing graph file: %w", err)
	}
	syncDir(filepath.Join(s.dir, "graphs"))
	return dst, nil
}

// RemoveLegacyGraph deletes graph id's legacy edge-list file, called
// after a successful migration to the binary format. Missing files are
// fine.
func (s *Store) RemoveLegacyGraph(id string) {
	os.Remove(filepath.Join(s.dir, "graphs", id+".edges"))
}

// ForEachGraphFile calls fn with every persisted graph's id, file path
// and format, in sorted id order, preferring the binary .csr file when
// a graph has both (mid-migration crash). legacy is true for edge-list
// text files from stores written before the binary format existed; the
// caller is expected to migrate those (read, SaveGraph via csr.Writer
// + AdoptGraphFile, RemoveLegacyGraph). A fn error stops the walk.
func (s *Store) ForEachGraphFile(fn func(id, path string, legacy bool) error) error {
	dir := filepath.Join(s.dir, "graphs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("jobstore: listing graphs: %w", err)
	}
	type gfile struct {
		path   string
		legacy bool
	}
	files := make(map[string]gfile)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".csr"):
			id := strings.TrimSuffix(name, ".csr")
			files[id] = gfile{filepath.Join(dir, name), false}
		case strings.HasSuffix(name, ".edges"):
			id := strings.TrimSuffix(name, ".edges")
			if _, have := files[id]; !have {
				files[id] = gfile{filepath.Join(dir, name), true}
			}
		}
	}
	ids := make([]string, 0, len(files))
	for id := range files {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		f := files[id]
		if err := fn(id, f.path, f.legacy); err != nil {
			return err
		}
	}
	return nil
}
