package jobstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"symcluster/internal/faultinject"
)

// frameOffsets returns the byte offset of every intact frame in a WAL
// image, using the same scanner replay uses.
func frameOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	var offs []int
	off := 0
	for off+frameHeaderBytes <= len(data) {
		n := binary.LittleEndian.Uint32(data[off:])
		if off+frameHeaderBytes+int(n) > len(data) {
			break
		}
		offs = append(offs, off)
		off += frameHeaderBytes + int(n)
	}
	if off != len(data) {
		t.Fatalf("wal image has %d trailing bytes past the last frame", len(data)-off)
	}
	return offs
}

// walImage builds a store with three jobs (job 1 finished, jobs 2 and
// 3 pending) and returns its directory and the raw WAL bytes.
func walImage(t *testing.T) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	s := mustOpen(t, dir)
	createJob(t, s, "job-000001", "k1")
	if err := s.Finish("job-000001", Done, nil, "", nil, time.Unix(1001, 0)); err != nil {
		t.Fatal(err)
	}
	createJob(t, s, "job-000002", "k2")
	createJob(t, s, "job-000003", "k3")
	s.Close()
	data, err := os.ReadFile(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	return dir, data
}

// reopenCorrupted writes image into a fresh store directory and opens
// it, returning the replayed store.
func reopenCorrupted(t *testing.T, image []byte) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "graphs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal"), image, 0o644); err != nil {
		t.Fatal(err)
	}
	return mustOpen(t, dir), dir
}

// TestReplayHaltsAtMidFileCorruption pins the corruption contract:
// replay of a WAL with a bad frame in the MIDDLE (not a torn tail)
// halts at that frame — the intact prefix survives, the corrupt frame
// AND every intact frame after it are discarded (never skipped over),
// and the file is truncated so subsequent appends land at a clean
// boundary. Three corruption flavors: a flipped payload byte (CRC
// mismatch), a flipped CRC field (same, from the other side), and a
// length header rewritten to an absurd size.
func TestReplayHaltsAtMidFileCorruption(t *testing.T) {
	_, full := walImage(t)
	offs := frameOffsets(t, full)
	if len(offs) < 4 {
		t.Fatalf("wal image has %d frames, want >= 4", len(offs))
	}
	// Corrupt the third frame: job-000002's create. Frames 1-2
	// (job-000001's create and finish) are the intact prefix; frame 4
	// (job-000003's create) is intact but downstream of the damage.
	target := offs[2]

	corrupt := map[string]func(img []byte){
		"payload-bit-flip": func(img []byte) { img[target+frameHeaderBytes] ^= 0x01 },
		"crc-bit-flip":     func(img []byte) { img[target+4] ^= 0x01 },
		"length-header": func(img []byte) {
			binary.LittleEndian.PutUint32(img[target:], maxFrameBytes+1)
		},
	}
	for name, mutate := range corrupt {
		t.Run(name, func(t *testing.T) {
			img := append([]byte(nil), full...)
			mutate(img)
			r, dir := reopenCorrupted(t, img)

			// Prefix intact: the finished job replays with its final state.
			j1, ok := r.Lookup("job-000001")
			if !ok || j1.State != Done {
				t.Fatalf("job-000001 = %+v, %v; want done", j1, ok)
			}
			// The corrupted record's job is gone.
			if _, ok := r.Lookup("job-000002"); ok {
				t.Fatal("corrupted create record resurrected job-000002")
			}
			// Halt, not skip: the intact frame AFTER the corruption must
			// not be applied — its boundary was derived from a frame we no
			// longer trust.
			if _, ok := r.Lookup("job-000003"); ok {
				t.Fatal("replay skipped past a corrupt frame and applied a downstream record")
			}
			// The log was truncated back to the intact prefix...
			st, err := os.Stat(filepath.Join(dir, "wal"))
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != int64(target) {
				t.Fatalf("wal size = %d after replay, want %d (intact prefix)", st.Size(), target)
			}
			// ...and accepts appends that survive a clean reopen.
			createJob(t, r, "job-000004", "")
			r.Close()
			r2 := mustOpen(t, dir)
			if _, ok := r2.Lookup("job-000004"); !ok {
				t.Fatal("append after corruption truncation lost")
			}
			if _, ok := r2.Lookup("job-000003"); ok {
				t.Fatal("discarded record reappeared after reopen")
			}
		})
	}
}

// TestMidRunAppendCrashChaos is the faultinject drill for the same
// contract: a panic injected mid-append (a crash at the worst moment,
// after some records landed) must leave a log that replays the intact
// prefix and keeps accepting work — exercising the halt-and-truncate
// path through the real append machinery rather than hand-corrupted
// bytes.
func TestMidRunAppendCrashChaos(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s := mustOpen(t, dir)
	createJob(t, s, "job-000001", "")

	// Panic on the SECOND append from now: the Start lands, the Finish
	// "crashes the process".
	faultinject.Set("jobstore.append", faultinject.Fault{Mode: faultinject.Panic, Skip: 1})
	if err := s.Start("job-000001", "", time.Unix(1001, 0)); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected panic did not fire")
			}
		}()
		s.Finish("job-000001", Done, nil, "", nil, time.Unix(1002, 0))
	}()
	faultinject.Clear("jobstore.append")
	s.Close()

	r := mustOpen(t, dir)
	j, ok := r.Lookup("job-000001")
	if !ok {
		t.Fatal("job lost after mid-append crash")
	}
	// The Finish never hit the log; the interrupted running job replays
	// as pending, ready to re-run — never as done.
	if j.State != Pending {
		t.Fatalf("state = %s after crash before finish append, want pending", j.State)
	}
	createJob(t, r, fmt.Sprintf("job-%06d", r.MaxSeq()+1), "")
	r.Close()
}
