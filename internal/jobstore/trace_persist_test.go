package jobstore

import (
	"encoding/json"
	"testing"
	"time"
)

// TestTraceAndStatsPersistence covers the observability fields riding
// the WAL: the trace id journaled with the start op, the link to an
// adopted job's originating trace, and the resource-accounting
// snapshot journaled with the finish op — all of which must survive
// replay and compaction.
func TestTraceAndStatsPersistence(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)

	createJob(t, s, "job-000001", "")
	if err := s.Start("job-000001", "t-abc-000001", time.Unix(1001, 0)); err != nil {
		t.Fatal(err)
	}
	stats := json.RawMessage(`{"queue_wait_millis":1.5,"stages":{"cluster":{"wall_millis":20,"cpu_millis":6,"alloc_bytes":150}}}`)
	if err := s.Finish("job-000001", Done, json.RawMessage(`{"k":2}`), "", stats, time.Unix(1002, 0)); err != nil {
		t.Fatal(err)
	}

	// An adopted job's record carries the dead owner's trace as a link.
	if err := s.Create(&JobRecord{
		ID:          "job-000002",
		State:       Pending,
		Request:     json.RawMessage(`{"algorithm":"mcl"}`),
		Created:     time.Unix(1003, 0),
		LinkTraceID: "t-dead-000007",
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	check := func(s *Store, when string) {
		t.Helper()
		rec, ok := s.Lookup("job-000001")
		if !ok {
			t.Fatalf("%s: job-000001 gone", when)
		}
		if rec.TraceID != "t-abc-000001" {
			t.Fatalf("%s: TraceID = %q", when, rec.TraceID)
		}
		if string(rec.Stats) != string(stats) {
			t.Fatalf("%s: Stats = %s, want %s", when, rec.Stats, stats)
		}
		adopted, ok := s.Lookup("job-000002")
		if !ok || adopted.LinkTraceID != "t-dead-000007" {
			t.Fatalf("%s: adopted record = %+v, ok=%v", when, adopted, ok)
		}
	}

	r := mustOpen(t, dir)
	check(r, "after replay")
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	check(r, "after compaction")
	r.Close()

	r2 := mustOpen(t, dir)
	check(r2, "after compacted replay")
}
