// Package ensemble implements consensus clustering: run a base
// clusterer several times with different seeds, score each graph edge
// by how often its endpoints land in the same cluster, and keep the
// groups that survive a co-association threshold. Randomised
// clusterers (MLR-MCL's matching order, k-means seeding) produce
// seed-dependent results; the consensus extracts their stable core.
//
// Co-association is evaluated only on the edges of the input graph, so
// the cost is O(runs · edges) instead of the quadratic all-pairs
// co-association matrix.
package ensemble

import (
	"fmt"

	"symcluster/internal/matrix"
)

// Clusterer produces one clustering of the fixed graph per seed.
type Clusterer func(seed int64) ([]int, error)

// Options configures Consensus.
type Options struct {
	// Runs is the ensemble size. Defaults to 10.
	Runs int
	// Agreement is the fraction of runs two adjacent nodes must share a
	// cluster in for their edge to survive into the consensus graph.
	// Defaults to 0.7.
	Agreement float64
	// BaseSeed offsets the per-run seeds.
	BaseSeed int64
}

func (o *Options) fill() {
	if o.Runs <= 0 {
		o.Runs = 10
	}
	if o.Agreement <= 0 || o.Agreement > 1 {
		o.Agreement = 0.7
	}
}

// Result carries the consensus clustering.
type Result struct {
	// Assign maps nodes to consensus cluster ids in [0, K).
	Assign []int
	// K is the number of consensus clusters.
	K int
	// Stability is the mean per-edge co-association over the ensemble,
	// in [0, 1]: how much the base clusterer agrees with itself.
	Stability float64
}

// Consensus runs the clusterer Runs times over the symmetric adjacency
// adj and returns the connected components of the edges whose
// endpoints co-cluster in at least Agreement of the runs.
func Consensus(adj *matrix.CSR, cluster Clusterer, opt Options) (*Result, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("ensemble: adjacency %dx%d not square", adj.Rows, adj.Cols)
	}
	opt.fill()
	n := adj.Rows

	// Count co-associations per stored edge.
	counts := make([]int, adj.NNZ())
	for r := 0; r < opt.Runs; r++ {
		assign, err := cluster(opt.BaseSeed + int64(r))
		if err != nil {
			return nil, fmt.Errorf("ensemble: run %d: %w", r, err)
		}
		if len(assign) != n {
			return nil, fmt.Errorf("ensemble: run %d returned %d assignments for %d nodes", r, len(assign), n)
		}
		for i := 0; i < n; i++ {
			cols, _ := adj.Row(i)
			base := adj.RowPtr[i]
			for k, c := range cols {
				if assign[i] == assign[c] {
					counts[int(base)+k]++
				}
			}
		}
	}

	var stability float64
	if adj.NNZ() > 0 {
		var sum int
		for _, c := range counts {
			sum += c
		}
		stability = float64(sum) / float64(adj.NNZ()*opt.Runs)
	}

	// Union-find over surviving edges.
	need := int(opt.Agreement*float64(opt.Runs) + 0.999999)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		cols, _ := adj.Row(i)
		base := adj.RowPtr[i]
		for k, c := range cols {
			if counts[int(base)+k] >= need {
				ri, rc := find(int32(i)), find(c)
				if ri != rc {
					parent[ri] = rc
				}
			}
		}
	}

	ids := map[int32]int{}
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		r := find(int32(i))
		id, ok := ids[r]
		if !ok {
			id = len(ids)
			ids[r] = id
		}
		assign[i] = id
	}
	return &Result{Assign: assign, K: len(ids), Stability: stability}, nil
}
