package ensemble

import (
	"fmt"
	"math/rand"
	"testing"

	"symcluster/internal/matrix"
	"symcluster/internal/mcl"
)

func blocks(rng *rand.Rand, k, sz int, pin, pout float64) (*matrix.CSR, []int) {
	n := k * sz
	truth := make([]int, n)
	for i := range truth {
		truth[i] = i / sz
	}
	b := matrix.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pout
			if truth[i] == truth[j] {
				p = pin
			}
			if rng.Float64() < p {
				b.Add(i, j, 1)
				b.Add(j, i, 1)
			}
		}
	}
	return b.Build(), truth
}

func TestConsensusRecoversStableBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	adj, truth := blocks(rng, 4, 25, 0.4, 0.01)
	res, err := Consensus(adj, func(seed int64) ([]int, error) {
		r, err := mcl.Cluster(adj, mcl.Options{Inflation: 1.5, Multilevel: true, CoarsenTo: 30, Seed: seed})
		if err != nil {
			return nil, err
		}
		return r.Assign, nil
	}, Options{Runs: 5, Agreement: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stability < 0.5 {
		t.Fatalf("stability %v too low for clean blocks", res.Stability)
	}
	// Each block should stay together in the consensus.
	for blk := 0; blk < 4; blk++ {
		counts := map[int]int{}
		for i := blk * 25; i < (blk+1)*25; i++ {
			counts[res.Assign[i]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		if best < 20 {
			t.Fatalf("block %d scattered in consensus: %v", blk, counts)
		}
	}
	_ = truth
}

func TestConsensusPerfectAgreement(t *testing.T) {
	adj, truth := blocks(rand.New(rand.NewSource(2)), 3, 10, 0.8, 0)
	res, err := Consensus(adj, func(seed int64) ([]int, error) {
		return truth, nil // deterministic clusterer
	}, Options{Runs: 4, Agreement: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stability < 0.99 {
		t.Fatalf("stability %v for deterministic clusterer", res.Stability)
	}
	if res.K != 3 {
		t.Fatalf("K = %d, want 3", res.K)
	}
}

func TestConsensusDisagreementSplits(t *testing.T) {
	// A clusterer that alternates between two incompatible partitions:
	// no edge survives a 0.9 agreement bar on the cross pairs.
	adj, _ := blocks(rand.New(rand.NewSource(3)), 1, 10, 1, 0)
	res, err := Consensus(adj, func(seed int64) ([]int, error) {
		assign := make([]int, 10)
		for i := range assign {
			if seed%2 == 0 {
				assign[i] = i % 2
			} else {
				assign[i] = i / 5
			}
		}
		return assign, nil
	}, Options{Runs: 4, Agreement: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Only pairs agreeing under BOTH partitions survive: same parity
	// AND same half — {0,2,4}, {1,3}, {5,7,9}, {6,8}.
	if res.K != 4 {
		t.Fatalf("K = %d; want the 4 doubly-consistent groups", res.K)
	}
	if res.Assign[0] == res.Assign[1] || res.Assign[0] == res.Assign[5] {
		t.Fatalf("incompatible nodes merged: %v", res.Assign)
	}
	if res.Assign[0] != res.Assign[2] || res.Assign[2] != res.Assign[4] {
		t.Fatalf("doubly-consistent nodes split: %v", res.Assign)
	}
}

func TestConsensusErrors(t *testing.T) {
	if _, err := Consensus(matrix.Zero(2, 3), nil, Options{}); err == nil {
		t.Fatal("accepted non-square")
	}
	adj := matrix.Identity(3)
	if _, err := Consensus(adj, func(int64) ([]int, error) {
		return nil, fmt.Errorf("boom")
	}, Options{Runs: 2}); err == nil {
		t.Fatal("clusterer error not propagated")
	}
	if _, err := Consensus(adj, func(int64) ([]int, error) {
		return []int{0}, nil
	}, Options{Runs: 1}); err == nil {
		t.Fatal("accepted wrong assignment length")
	}
}
