package gen

import (
	"strings"
	"testing"
)

func TestControlledAllFlow(t *testing.T) {
	d, err := Controlled(ControlledOptions{Clusters: 6, MembersPerCluster: 10, Seed: 1}.WithSharedFraction(0))
	if err != nil {
		t.Fatal(err)
	}
	if d.Graph.N() != 60 {
		t.Fatalf("N = %d, want 60 (no anchors)", d.Graph.N())
	}
	for _, l := range d.Graph.Labels {
		if strings.HasPrefix(l, "Shared:") {
			t.Fatal("shared cluster present at fraction 0")
		}
	}
	if d.Truth.K != 6 {
		t.Fatalf("truth K = %d", d.Truth.K)
	}
}

func TestControlledAllShared(t *testing.T) {
	d, err := Controlled(ControlledOptions{Clusters: 5, MembersPerCluster: 8, AnchorsPerCluster: 3, NoiseEdges: -1, Seed: 2}.WithSharedFraction(1))
	if err != nil {
		t.Fatal(err)
	}
	// 5*8 members + 2 pools of max(2*3, 5/2) = 6 anchors = 52.
	if d.Graph.N() != 52 {
		t.Fatalf("N = %d, want 52", d.Graph.N())
	}
	// Members of a shared cluster never link to one another.
	var members []int
	for i, l := range d.Graph.Labels {
		if strings.HasPrefix(l, "Shared:0:Member:") {
			members = append(members, i)
		}
	}
	if len(members) != 8 {
		t.Fatalf("found %d members", len(members))
	}
	for _, u := range members {
		for _, v := range members {
			if u != v && d.Graph.Adj.At(u, v) != 0 {
				t.Fatal("shared-cluster members directly linked (noise disabled)")
			}
		}
	}
	// Anchors are unlabelled and shared: the pool is smaller than the
	// total anchor demand, so at least two clusters reuse an anchor.
	for i, l := range d.Graph.Labels {
		if strings.HasPrefix(l, "Anchor:") {
			if len(d.Truth.Categories[i]) != 0 {
				t.Fatalf("anchor %q labelled", l)
			}
		}
	}
}

func TestControlledDefaultFraction(t *testing.T) {
	d, err := Controlled(ControlledOptions{Clusters: 10, MembersPerCluster: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	shared, flow := 0, 0
	for _, l := range d.Graph.Labels {
		if strings.HasPrefix(l, "Shared:") && strings.Contains(l, ":Member:0") && strings.HasSuffix(l, ":Member:0") {
			shared++
		}
		if strings.HasPrefix(l, "Flow:") && strings.HasSuffix(l, ":Member:0") {
			flow++
		}
	}
	if shared != 5 || flow != 5 {
		t.Fatalf("default mixture: %d shared, %d flow; want 5/5", shared, flow)
	}
}

func TestControlledRejectsBadFraction(t *testing.T) {
	if _, err := Controlled(ControlledOptions{}.WithSharedFraction(1.5)); err == nil {
		t.Fatal("accepted fraction > 1")
	}
	if _, err := Controlled(ControlledOptions{}.WithSharedFraction(-0.1)); err == nil {
		t.Fatal("accepted negative fraction")
	}
}

func TestControlledDeterminism(t *testing.T) {
	a, _ := Controlled(ControlledOptions{Clusters: 8, MembersPerCluster: 6, Seed: 4})
	b, _ := Controlled(ControlledOptions{Clusters: 8, MembersPerCluster: 6, Seed: 4})
	if a.Graph.M() != b.Graph.M() {
		t.Fatal("same seed differs")
	}
}
