package gen

import (
	"fmt"
	"math/rand"

	"symcluster/internal/graph"
	"symcluster/internal/matrix"
)

// KroneckerOptions configures the stochastic Kronecker (R-MAT style)
// generator used as the Flickr / LiveJournal substitute (the paper
// itself points to Leskovec et al.'s Kronecker graphs as the realistic
// directed-network generator; it produces power-law structure but no
// ground-truth clusters, which is fine because these datasets are used
// only for timing).
type KroneckerOptions struct {
	// Scale gives 2^Scale nodes. Defaults to 14 (16384 nodes).
	Scale int
	// EdgeFactor is the number of directed edges per node. Defaults
	// to 12 (Flickr's 22.6M/1.86M).
	EdgeFactor int
	// A, B, C are the R-MAT quadrant probabilities (D = 1-A-B-C).
	// Defaults 0.57, 0.19, 0.19.
	A, B, C float64
	// Reciprocity adds the reverse edge with this probability per
	// sampled edge. Flickr ≈ 0.62, LiveJournal ≈ 0.73. Defaults to 0.6.
	Reciprocity float64
	// Seed drives sampling.
	Seed int64
}

func (o *KroneckerOptions) fill() {
	if o.Scale <= 0 {
		o.Scale = 14
	}
	if o.EdgeFactor <= 0 {
		o.EdgeFactor = 12
	}
	if o.A == 0 && o.B == 0 && o.C == 0 {
		o.A, o.B, o.C = 0.57, 0.19, 0.19
	}
	if o.Reciprocity < 0 {
		o.Reciprocity = 0.6
	}
}

// Kronecker samples a directed R-MAT graph: each edge picks one of the
// four quadrants of the adjacency matrix recursively Scale times, which
// yields the skewed, power-law-like degree distributions of real social
// networks. Duplicate edges collapse; self-loops are rejected.
func Kronecker(opt KroneckerOptions) (*Dataset, error) {
	opt.fill()
	if opt.A < 0 || opt.B < 0 || opt.C < 0 || opt.A+opt.B+opt.C >= 1 {
		return nil, fmt.Errorf("gen: kronecker quadrant probabilities invalid: a=%v b=%v c=%v", opt.A, opt.B, opt.C)
	}
	if opt.Reciprocity > 1 {
		return nil, fmt.Errorf("gen: kronecker reciprocity %v > 1", opt.Reciprocity)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	n := 1 << opt.Scale
	target := n * opt.EdgeFactor

	b := matrix.NewBuilder(n, n)
	b.Reserve(target + target/2)
	// Quadrant noise makes degree distributions smoother (standard
	// R-MAT practice).
	for e := 0; e < target; e++ {
		u, v := 0, 0
		for bit := 0; bit < opt.Scale; bit++ {
			a := opt.A * (0.9 + 0.2*rng.Float64())
			bb := opt.B * (0.9 + 0.2*rng.Float64())
			c := opt.C * (0.9 + 0.2*rng.Float64())
			d := 1 - opt.A - opt.B - opt.C
			d *= 0.9 + 0.2*rng.Float64()
			total := a + bb + c + d
			r := rng.Float64() * total
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+bb:
				v |= 1 << bit
			case r < a+bb+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		b.Add(u, v, 1)
		if rng.Float64() < opt.Reciprocity {
			b.Add(v, u, 1)
		}
	}
	adj := b.Build()
	// Collapse duplicate weights back to unit edges: Kronecker sampling
	// with replacement creates multi-edges whose weights would otherwise
	// skew the symmetrizations.
	for i := range adj.Val {
		adj.Val[i] = 1
	}
	g, err := graph.NewDirected(adj, nil)
	if err != nil {
		return nil, fmt.Errorf("gen: kronecker: %w", err)
	}
	return &Dataset{Name: "kronecker", Graph: g}, nil
}
