package gen

import (
	"fmt"
	"math/rand"

	"symcluster/internal/eval"
	"symcluster/internal/graph"
	"symcluster/internal/matrix"
)

// WikiOptions configures the Wikipedia-like generator.
type WikiOptions struct {
	// ListClusters is the number of "list-pattern" clusters (the
	// Guzmania pattern of §5.7): members share out-links to common
	// concept pages and in-links from common index pages, plus a
	// reciprocal link with a genus hub, but never link to one another.
	// Defaults to 120.
	ListClusters int
	// ListMembersMin/Max bound the members per list cluster.
	// Defaults 10 and 30.
	ListMembersMin, ListMembersMax int
	// GenusProb is the probability that a list cluster has a "genus"
	// page with reciprocal links to every member (as Guzmania does).
	// The remaining clusters are pure shared-link clusters with no
	// internal edges at all — invisible to direction-dropping
	// symmetrizations. Defaults to 0.5.
	GenusProb float64
	// RecipClusters is the number of conventional densely
	// interconnected clusters with mostly reciprocal links.
	// Defaults to 120.
	RecipClusters int
	// RecipMembersMin/Max bound members per reciprocal cluster.
	// Defaults 15 and 40.
	RecipMembersMin, RecipMembersMax int
	// RecipIntraProb is the intra-cluster link probability in
	// reciprocal clusters. Defaults to 0.3.
	RecipIntraProb float64
	// RecipBothWaysProb makes an intra-cluster link bidirectional.
	// Defaults to 0.7 (Wikipedia has 42% symmetric links overall).
	RecipBothWaysProb float64
	// ConceptPages is the size of the shared concept-page pool
	// ("Poales", "Ecuador"). The pool must be small relative to the
	// cluster count — concept pages serve MANY clusters, which is what
	// makes them functional hubs and keeps clusters from being trivial
	// connected components. Defaults to max(ListClusters/2, 20).
	ConceptPages int
	// IndexPages is the size of the index-page pool ("Lists of…").
	// Defaults to max(ListClusters/4, 10).
	IndexPages int
	// GlobalHubs is the number of hub pages ("Area", "Geographic
	// coordinate system") that a large share of all pages link to.
	// Defaults to 15.
	GlobalHubs int
	// HubLinkProb is the probability that any given page links to any
	// given global hub. Defaults to 0.08, giving hubs in-degrees a
	// thousand times typical pages' — the pathology that breaks
	// Bibliometric symmetrization.
	HubLinkProb float64
	// DuplicatePairs adds near-duplicate page pairs with identical
	// link sets (the "Cyathea / Cyathea (Subgenus Cyathea)" analog
	// behind Table 5). Defaults to 8.
	DuplicatePairs int
	// NoisePages is the number of unlabelled background pages.
	// Defaults to 20% of the structured pages.
	NoisePages int
	// NoiseEdgesPerPage is the mean number of random out-links per
	// noise page. Defaults to 6.
	NoiseEdgesPerPage float64
	// ParentCategoryEvery groups this many consecutive list clusters
	// under an additional overlapping parent category (Wikipedia pages
	// belong to multiple categories). 0 disables. Defaults to 10.
	ParentCategoryEvery int
	// Seed drives all randomness.
	Seed int64
}

func (o *WikiOptions) fill() {
	def := func(p *int, v int) {
		if *p <= 0 {
			*p = v
		}
	}
	def(&o.ListClusters, 120)
	def(&o.ListMembersMin, 10)
	def(&o.ListMembersMax, 30)
	def(&o.RecipClusters, 120)
	def(&o.RecipMembersMin, 15)
	def(&o.RecipMembersMax, 40)
	def(&o.ConceptPages, maxInt(o.ListClusters/2, 20))
	def(&o.IndexPages, maxInt(o.ListClusters/4, 10))
	def(&o.GlobalHubs, 15)
	def(&o.DuplicatePairs, 8)
	if o.GenusProb <= 0 {
		o.GenusProb = 0.5
	}
	if o.RecipIntraProb <= 0 {
		o.RecipIntraProb = 0.3
	}
	if o.RecipBothWaysProb <= 0 {
		o.RecipBothWaysProb = 0.7
	}
	if o.HubLinkProb <= 0 {
		o.HubLinkProb = 0.08
	}
	if o.NoiseEdgesPerPage <= 0 {
		o.NoiseEdgesPerPage = 6
	}
	if o.ParentCategoryEvery < 0 {
		o.ParentCategoryEvery = 0
	} else if o.ParentCategoryEvery == 0 {
		o.ParentCategoryEvery = 10
	}
}

// Wiki generates a Wikipedia-like hyperlink graph: a mixture of
// list-pattern clusters (no intra-cluster links; shared out- and
// in-links), conventional reciprocal clusters, global hub pages,
// near-duplicate page pairs and unlabelled noise. Ground-truth
// categories cover cluster members; concept/index/hub/noise pages are
// unlabelled, reproducing Wikipedia's ~35% unlabelled share.
func Wiki(opt WikiOptions) (*Dataset, error) {
	opt.fill()
	if opt.ListMembersMax < opt.ListMembersMin || opt.RecipMembersMax < opt.RecipMembersMin {
		return nil, fmt.Errorf("gen: wiki member bounds inverted: %+v", opt)
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Node layout: [list members+hubs][recip members][concepts][indexes]
	// [global hubs][duplicates][noise], assigned sequentially.
	var labels []string
	var cats [][]int
	newNode := func(label string, categories ...int) int {
		labels = append(labels, label)
		if len(categories) > 0 {
			cats = append(cats, categories)
		} else {
			cats = append(cats, nil)
		}
		return len(labels) - 1
	}

	type edge struct{ u, v int }
	var edges []edge
	link := func(u, v int) {
		if u != v {
			edges = append(edges, edge{u, v})
		}
	}

	// Pools created first so clusters can reference them; nodes are
	// created lazily below to keep ids compact.
	concepts := make([]int, opt.ConceptPages)
	for i := range concepts {
		concepts[i] = newNode(fmt.Sprintf("Concept:%d", i))
	}
	indexes := make([]int, opt.IndexPages)
	for i := range indexes {
		indexes[i] = newNode(fmt.Sprintf("Index:%d", i))
	}
	hubs := make([]int, opt.GlobalHubs)
	hubNames := []string{"Area", "Population density", "Geographic coordinate system",
		"Square mile", "Time zone", "Mile", "Geocode", "Degree (angle)", "Octagon",
		"Record label", "Music genre", "Census", "Postal code", "Elevation", "Country"}
	for i := range hubs {
		name := fmt.Sprintf("Hub:%d", i)
		if i < len(hubNames) {
			name = "Hub:" + hubNames[i]
		}
		hubs[i] = newNode(name)
	}

	nextCat := 0
	newCat := func() int {
		c := nextCat
		nextCat++
		return c
	}

	// List-pattern clusters.
	var parentCat = -1
	for c := 0; c < opt.ListClusters; c++ {
		if opt.ParentCategoryEvery > 0 && c%opt.ParentCategoryEvery == 0 {
			parentCat = newCat()
		}
		cat := newCat()
		m := opt.ListMembersMin + rng.Intn(opt.ListMembersMax-opt.ListMembersMin+1)
		hasGenus := rng.Float64() < opt.GenusProb
		genus := -1
		if hasGenus {
			genus = newNode(fmt.Sprintf("List:%d:Genus", c), cat)
		}
		// Shared out-links: 3-6 concept pages; shared in-links: 2-4
		// index pages.
		nOut := 3 + rng.Intn(4)
		nIn := 2 + rng.Intn(3)
		outSet := samplePool(rng, concepts, nOut)
		inSet := samplePool(rng, indexes, nIn)
		for i := 0; i < m; i++ {
			var member int
			if parentCat >= 0 {
				member = newNode(fmt.Sprintf("List:%d:Member:%d", c, i), cat, parentCat)
			} else {
				member = newNode(fmt.Sprintf("List:%d:Member:%d", c, i), cat)
			}
			if hasGenus {
				link(member, genus)
				link(genus, member)
			}
			for _, t := range outSet {
				link(member, t)
			}
			for _, s := range inSet {
				link(s, member)
			}
		}
		// The genus page, when present, links to the concepts too.
		if hasGenus {
			for _, t := range outSet {
				link(genus, t)
			}
		}
	}

	// Reciprocal clusters.
	for c := 0; c < opt.RecipClusters; c++ {
		cat := newCat()
		m := opt.RecipMembersMin + rng.Intn(opt.RecipMembersMax-opt.RecipMembersMin+1)
		members := make([]int, m)
		for i := range members {
			members[i] = newNode(fmt.Sprintf("Recip:%d:Member:%d", c, i), cat)
		}
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				if rng.Float64() < opt.RecipIntraProb {
					link(members[i], members[j])
					if rng.Float64() < opt.RecipBothWaysProb {
						link(members[j], members[i])
					}
				}
			}
		}
		// A couple of concept out-links to tie clusters into the graph.
		for _, t := range samplePool(rng, concepts, 2) {
			link(members[rng.Intn(m)], t)
		}
	}

	// Near-duplicate pairs: identical out-links (to concepts) and
	// identical in-links (from indexes), plus mutual links.
	for d := 0; d < opt.DuplicatePairs; d++ {
		a := newNode(fmt.Sprintf("Dup:%d:a", d))
		bNode := newNode(fmt.Sprintf("Dup:%d:b", d))
		link(a, bNode)
		link(bNode, a)
		for _, t := range samplePool(rng, concepts, 4) {
			link(a, t)
			link(bNode, t)
		}
		for _, s := range samplePool(rng, indexes, 3) {
			link(s, a)
			link(s, bNode)
		}
	}

	// Noise pages.
	structured := len(labels)
	noiseN := opt.NoisePages
	if noiseN <= 0 {
		noiseN = structured / 5
	}
	noiseStart := len(labels)
	for i := 0; i < noiseN; i++ {
		newNode(fmt.Sprintf("Noise:%d", i))
	}
	total := len(labels)
	for i := noiseStart; i < total; i++ {
		deg := poisson(rng, opt.NoiseEdgesPerPage)
		for e := 0; e < deg; e++ {
			link(i, rng.Intn(total))
		}
	}

	// Global hub links: every page links to each hub with HubLinkProb;
	// hubs link back to a tiny random subset.
	for i := 0; i < total; i++ {
		for _, h := range hubs {
			if i != h && rng.Float64() < opt.HubLinkProb {
				link(i, h)
			}
		}
	}
	for _, h := range hubs {
		for e := 0; e < 20; e++ {
			link(h, rng.Intn(total))
		}
	}

	b := matrix.NewBuilder(total, total)
	b.Reserve(len(edges))
	seen := make(map[int64]bool, len(edges))
	for _, e := range edges {
		key := int64(e.u)*int64(total) + int64(e.v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.Add(e.u, e.v, 1)
	}

	g, err := graph.NewDirected(b.Build(), labels)
	if err != nil {
		return nil, fmt.Errorf("gen: wiki: %w", err)
	}
	truth, err := eval.NewGroundTruth(cats)
	if err != nil {
		return nil, fmt.Errorf("gen: wiki truth: %w", err)
	}
	return &Dataset{Name: "wiki", Graph: g, Truth: truth}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// samplePool draws n distinct elements from pool (all of them when
// n >= len(pool)).
func samplePool(rng *rand.Rand, pool []int, n int) []int {
	if n >= len(pool) {
		return append([]int(nil), pool...)
	}
	idx := rng.Perm(len(pool))[:n]
	out := make([]int, n)
	for i, p := range idx {
		out[i] = pool[p]
	}
	return out
}
