package gen

import (
	"fmt"
	"math/rand"

	"symcluster/internal/eval"
	"symcluster/internal/graph"
	"symcluster/internal/matrix"
)

// ControlledOptions configures the synthetically controlled generator
// of the paper's §6 future work ("in addition to evaluation on real
// data we would like to validate results on synthetically controlled
// datasets"). It plants a tunable mixture of two cluster archetypes:
//
//   - flow clusters: densely interlinked directed clusters — the kind
//     every symmetrization can see;
//   - shared-link clusters: the Figure-1 archetype — members never
//     link to each other, but share out-links to a private target set
//     and in-links from a private source set; only in/out-link
//     similarity can see these.
//
// Sweeping SharedFraction from 0 to 1 dials the dataset from "A+Aᵀ
// territory" to "degree-discounted territory", which is exactly the
// controlled validation the paper calls for.
type ControlledOptions struct {
	// Clusters is the number of planted clusters. Defaults to 40.
	Clusters int
	// MembersPerCluster is the size of each cluster. Defaults to 25.
	MembersPerCluster int
	// SharedFraction is the fraction of clusters built as shared-link
	// (Figure-1) clusters; the rest are flow clusters. Defaults to 0.5.
	// Zero is allowed and means all-flow.
	SharedFraction float64
	// IntraProb is the link probability inside flow clusters.
	// Defaults to 0.3.
	IntraProb float64
	// AnchorsPerCluster is how many target and source anchors each
	// shared-link cluster draws from the global pools. Defaults to 4.
	AnchorsPerCluster int
	// AnchorPool is the size of each global anchor pool (targets and
	// sources). Anchors are shared across clusters — like "Ecuador"
	// serving many plant genera in the paper's §5.7 — so clusters are
	// NOT separable as connected components and direction-dropping
	// symmetrizations blur them together. Defaults to
	// max(2·AnchorsPerCluster, Clusters/2).
	AnchorPool int
	// NoiseEdges is the number of uniformly random directed edges
	// added on top. Defaults to 2 per node.
	NoiseEdges int
	// Seed drives all randomness.
	Seed int64

	// sharedSet marks SharedFraction as explicitly set (the zero value
	// must mean "default 0.5", but an explicit 0 is meaningful).
	sharedSet bool
}

// WithSharedFraction returns a copy of o with SharedFraction set
// explicitly (distinguishing an explicit 0 from the default 0.5).
func (o ControlledOptions) WithSharedFraction(f float64) ControlledOptions {
	o.SharedFraction = f
	o.sharedSet = true
	return o
}

func (o *ControlledOptions) fill() {
	if o.Clusters <= 0 {
		o.Clusters = 40
	}
	if o.MembersPerCluster <= 0 {
		o.MembersPerCluster = 25
	}
	if !o.sharedSet && o.SharedFraction == 0 {
		o.SharedFraction = 0.5
	}
	if o.IntraProb <= 0 {
		o.IntraProb = 0.3
	}
	if o.AnchorsPerCluster <= 0 {
		o.AnchorsPerCluster = 4
	}
	if o.AnchorPool <= 0 {
		o.AnchorPool = 2 * o.AnchorsPerCluster
		if o.Clusters/2 > o.AnchorPool {
			o.AnchorPool = o.Clusters / 2
		}
	}
	if o.AnchorPool < o.AnchorsPerCluster {
		o.AnchorPool = o.AnchorsPerCluster
	}
	if o.NoiseEdges < 0 {
		o.NoiseEdges = 0
	} else if o.NoiseEdges == 0 {
		o.NoiseEdges = 2 * o.Clusters * o.MembersPerCluster
	}
}

// Controlled generates the controlled-mixture dataset. Every member
// node carries its cluster as ground truth; anchor nodes (the private
// source/target sets of shared-link clusters) are unlabelled.
func Controlled(opt ControlledOptions) (*Dataset, error) {
	opt.fill()
	if opt.SharedFraction < 0 || opt.SharedFraction > 1 {
		return nil, fmt.Errorf("gen: controlled SharedFraction %v outside [0,1]", opt.SharedFraction)
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	sharedClusters := int(opt.SharedFraction * float64(opt.Clusters))
	members := opt.Clusters * opt.MembersPerCluster
	poolNodes := 0
	if sharedClusters > 0 {
		poolNodes = 2 * opt.AnchorPool
	}
	total := members + poolNodes

	labels := make([]string, 0, total)
	cats := make([][]int, 0, total)
	b := matrix.NewBuilder(total, total)

	node := 0
	newNode := func(label string, cat int) int {
		labels = append(labels, label)
		if cat >= 0 {
			cats = append(cats, []int{cat})
		} else {
			cats = append(cats, nil)
		}
		node++
		return node - 1
	}

	// Global anchor pools, shared across shared-link clusters.
	var targetPool, sourcePool []int
	if sharedClusters > 0 {
		for i := 0; i < opt.AnchorPool; i++ {
			targetPool = append(targetPool, newNode(fmt.Sprintf("Anchor:Target:%d", i), -1))
			sourcePool = append(sourcePool, newNode(fmt.Sprintf("Anchor:Source:%d", i), -1))
		}
	}

	for c := 0; c < opt.Clusters; c++ {
		ms := make([]int, opt.MembersPerCluster)
		if c < sharedClusters {
			// Shared-link cluster: members → cluster's target anchors,
			// cluster's source anchors → members, no intra-member edges.
			// Anchors are drawn from the global pools and reused by
			// other clusters.
			for i := range ms {
				ms[i] = newNode(fmt.Sprintf("Shared:%d:Member:%d", c, i), c)
			}
			targets := samplePool(rng, targetPool, opt.AnchorsPerCluster)
			sources := samplePool(rng, sourcePool, opt.AnchorsPerCluster)
			for _, m := range ms {
				for _, t := range targets {
					b.Add(m, t, 1)
				}
				for _, s := range sources {
					b.Add(s, m, 1)
				}
			}
		} else {
			// Flow cluster: random directed links among members.
			for i := range ms {
				ms[i] = newNode(fmt.Sprintf("Flow:%d:Member:%d", c, i), c)
			}
			for _, u := range ms {
				for _, v := range ms {
					if u != v && rng.Float64() < opt.IntraProb {
						b.Add(u, v, 1)
					}
				}
			}
		}
	}

	for e := 0; e < opt.NoiseEdges; e++ {
		u, v := rng.Intn(total), rng.Intn(total)
		if u != v {
			b.Add(u, v, 1)
		}
	}

	adj := b.Build()
	for i := range adj.Val {
		adj.Val[i] = 1 // collapse duplicate noise edges
	}
	g, err := graph.NewDirected(adj, labels)
	if err != nil {
		return nil, fmt.Errorf("gen: controlled: %w", err)
	}
	truth, err := eval.NewGroundTruth(cats)
	if err != nil {
		return nil, fmt.Errorf("gen: controlled truth: %w", err)
	}
	return &Dataset{Name: fmt.Sprintf("controlled-%.0f%%shared", 100*opt.SharedFraction), Graph: g, Truth: truth}, nil
}
